package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cdt/internal/pattern"
)

var cfg2 = pattern.NewConfig(2)

// mustLabels labels a value series, failing the test on error.
func mustLabels(t *testing.T, values []float64) []pattern.Label {
	t.Helper()
	labels, err := cfg2.LabelSeries(values)
	if err != nil {
		t.Fatal(err)
	}
	return labels
}

func TestWindowsShapeAndClasses(t *testing.T) {
	values := []float64{0, 0.2, 0.4, 0.6, 0.8, 1, 0.8}
	anoms := []bool{false, false, false, true, false, false, false}
	labels := mustLabels(t, values)
	obs, err := Windows(labels, anoms, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != len(labels)-3+1 {
		t.Fatalf("got %d windows, want %d", len(obs), len(labels)-3+1)
	}
	// Window starting at label 0 covers points 1..3 → includes anomaly
	// at point 3.
	if obs[0].Class != Anomaly {
		t.Error("window 0 should be anomalous")
	}
	// Window starting at label 2 covers points 3..5 → anomalous too.
	if obs[2].Class != Anomaly {
		t.Error("window 2 should be anomalous")
	}
}

func TestWindowsUnlabeled(t *testing.T) {
	labels := mustLabels(t, []float64{0, 1, 0, 1, 0})
	obs, err := Windows(labels, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if o.Class != Normal {
			t.Error("unlabeled windows must be Normal")
		}
	}
}

func TestWindowsErrors(t *testing.T) {
	labels := mustLabels(t, []float64{0, 1, 0, 1, 0})
	if _, err := Windows(labels, nil, 0); err == nil {
		t.Error("omega 0 accepted")
	}
	if _, err := Windows(labels, nil, len(labels)+1); err == nil {
		t.Error("oversize omega accepted")
	}
	if _, err := Windows(labels, make([]bool, 2), 2); err == nil {
		t.Error("misaligned anomaly flags accepted")
	}
}

func TestWindowsCountProperty(t *testing.T) {
	f := func(nRaw, omegaRaw uint8) bool {
		n := int(nRaw%100) + 3
		values := make([]float64, n)
		for i := range values {
			values[i] = float64(i % 7)
		}
		labels, err := cfg2.LabelSeries(values)
		if err != nil {
			return false
		}
		omega := int(omegaRaw)%len(labels) + 1
		obs, err := Windows(labels, nil, omega)
		if err != nil {
			return false
		}
		return len(obs) == len(labels)-omega+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func lbl(v pattern.Variation, a, b int) pattern.Label {
	return pattern.Label{Var: v, Alpha: pattern.Interval(a), Beta: pattern.Interval(b)}
}

func TestCompositionMatching(t *testing.T) {
	a := lbl(pattern.PP, 1, 2)
	b := lbl(pattern.PN, -2, -1)
	c := lbl(pattern.CST, 0, 0)
	seq := []pattern.Label{a, b, c, a}
	tests := []struct {
		comp      []pattern.Label
		contig    bool
		subseq    bool
		describes string
	}{
		{[]pattern.Label{a, b}, true, true, "prefix"},
		{[]pattern.Label{b, c, a}, true, true, "suffix"},
		{[]pattern.Label{a, c}, false, true, "gapped"},
		{[]pattern.Label{c, b}, false, false, "wrong order"},
		{[]pattern.Label{a, b, c, a}, true, true, "whole"},
		{[]pattern.Label{a, b, c, a, a}, false, false, "too long"},
		{nil, true, true, "empty"},
	}
	for _, tc := range tests {
		comp := Composition{Labels: tc.comp}
		if got := comp.MatchedBy(seq, MatchContiguous); got != tc.contig {
			t.Errorf("%s: contiguous = %v, want %v", tc.describes, got, tc.contig)
		}
		if got := comp.MatchedBy(seq, MatchSubsequence); got != tc.subseq {
			t.Errorf("%s: subsequence = %v, want %v", tc.describes, got, tc.subseq)
		}
	}
}

// Contiguous matching implies subsequence matching.
func TestMatchingModeImplication(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alphabet := cfg2.Alphabet()
	for trial := 0; trial < 200; trial++ {
		seq := make([]pattern.Label, rng.Intn(10)+1)
		for i := range seq {
			seq[i] = alphabet[rng.Intn(len(alphabet))]
		}
		comp := Composition{Labels: make([]pattern.Label, rng.Intn(4)+1)}
		for i := range comp.Labels {
			comp.Labels[i] = alphabet[rng.Intn(len(alphabet))]
		}
		if comp.MatchedBy(seq, MatchContiguous) && !comp.MatchedBy(seq, MatchSubsequence) {
			t.Fatalf("contiguous match without subsequence match: %v in %v", comp, seq)
		}
	}
}

func TestCompositionKeyIdentity(t *testing.T) {
	a := Composition{Labels: []pattern.Label{lbl(pattern.PP, 1, 2), lbl(pattern.PN, -1, -1)}}
	b := Composition{Labels: []pattern.Label{lbl(pattern.PP, 1, 2), lbl(pattern.PN, -1, -1)}}
	c := Composition{Labels: []pattern.Label{lbl(pattern.PN, -1, -1), lbl(pattern.PP, 1, 2)}}
	if a.Key() != b.Key() {
		t.Error("equal compositions have different keys")
	}
	if a.Key() == c.Key() {
		t.Error("different compositions share a key")
	}
}

func TestUniqueLabels(t *testing.T) {
	c := Composition{Labels: []pattern.Label{
		lbl(pattern.PP, 1, 2), lbl(pattern.PP, 1, 2), lbl(pattern.PN, -1, -1),
	}}
	if got := c.UniqueLabels(); got != 2 {
		t.Errorf("UniqueLabels = %d, want 2", got)
	}
	if got := c.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
}

func TestEnumerateCompositionsFromAnomalousOnly(t *testing.T) {
	a := lbl(pattern.PP, 1, 1)
	b := lbl(pattern.PN, -1, -1)
	c := lbl(pattern.CST, 0, 0)
	obs := []Observation{
		{Labels: []pattern.Label{a, b}, Class: Anomaly},
		{Labels: []pattern.Label{c, c}, Class: Normal},
	}
	comps := enumerateCompositions(obs, 0)
	// Distinct substrings of [a b]: [a], [b], [a b].
	if len(comps) != 3 {
		t.Fatalf("got %d candidates, want 3: %v", len(comps), comps)
	}
	for _, comp := range comps {
		for _, l := range comp.Labels {
			if l == c {
				t.Error("candidate drawn from a normal observation")
			}
		}
	}
}

func TestEnumerateCompositionsMaxLen(t *testing.T) {
	a := lbl(pattern.PP, 1, 1)
	b := lbl(pattern.PN, -1, -1)
	c := lbl(pattern.CST, 0, 0)
	obs := []Observation{{Labels: []pattern.Label{a, b, c}, Class: Anomaly}}
	comps := enumerateCompositions(obs, 1)
	if len(comps) != 3 { // [a], [b], [c]
		t.Fatalf("got %d candidates, want 3", len(comps))
	}
	for _, comp := range comps {
		if comp.Len() != 1 {
			t.Errorf("candidate %v exceeds max length", comp)
		}
	}
}

func TestEnumerateCompositionsDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := cfg2.Alphabet()
	obs := make([]Observation, 20)
	for i := range obs {
		labels := make([]pattern.Label, 6)
		for j := range labels {
			labels[j] = alphabet[rng.Intn(len(alphabet))]
		}
		obs[i] = Observation{Labels: labels, Class: Anomaly}
	}
	first := enumerateCompositions(obs, 0)
	second := enumerateCompositions(obs, 0)
	if len(first) != len(second) {
		t.Fatal("nondeterministic candidate count")
	}
	for i := range first {
		if first[i].Key() != second[i].Key() {
			t.Fatal("nondeterministic candidate order")
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i].Len() < first[i-1].Len() {
			t.Fatal("candidates not sorted by length")
		}
	}
}

func TestGiniImpurity(t *testing.T) {
	tests := []struct {
		cc   ClassCounts
		want float64
	}{
		{ClassCounts{Normal: 10, Anomaly: 0}, 0},
		{ClassCounts{Normal: 0, Anomaly: 7}, 0},
		{ClassCounts{Normal: 5, Anomaly: 5}, 0.5},
		{ClassCounts{}, 0},
	}
	for _, tc := range tests {
		if got := Gini.Impurity(tc.cc); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Gini(%+v) = %v, want %v", tc.cc, got, tc.want)
		}
	}
}

func TestEntropyImpurity(t *testing.T) {
	if got := Entropy.Impurity(ClassCounts{Normal: 5, Anomaly: 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Entropy(balanced) = %v, want 1", got)
	}
	if got := Entropy.Impurity(ClassCounts{Normal: 5}); got != 0 {
		t.Errorf("Entropy(pure) = %v, want 0", got)
	}
}

func TestInformationGainPerfectSplit(t *testing.T) {
	parent := ClassCounts{Normal: 5, Anomaly: 5}
	in := ClassCounts{Anomaly: 5}
	out := ClassCounts{Normal: 5}
	if got := Gini.InformationGain(parent, in, out); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("IG = %v, want 0.5", got)
	}
}

func TestInformationGainDegenerate(t *testing.T) {
	parent := ClassCounts{Normal: 5, Anomaly: 5}
	if got := Gini.InformationGain(parent, parent, ClassCounts{}); got != 0 {
		t.Errorf("IG with empty side = %v, want 0", got)
	}
}

// Information gain is never negative and never exceeds parent impurity.
func TestInformationGainBoundsProperty(t *testing.T) {
	f := func(na, aa, nb, ab uint8) bool {
		in := ClassCounts{Normal: int(na % 50), Anomaly: int(aa % 50)}
		out := ClassCounts{Normal: int(nb % 50), Anomaly: int(ab % 50)}
		parent := ClassCounts{Normal: in.Normal + out.Normal, Anomaly: in.Anomaly + out.Anomaly}
		for _, crit := range []SplitCriterion{Gini, Entropy} {
			ig := crit.InformationGain(parent, in, out)
			if ig < -1e-12 || ig > crit.Impurity(parent)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// synthSeries builds a value series with spike anomalies at given points.
func synthSeries(n int, anomalyAt []int) ([]float64, []bool) {
	values := make([]float64, n)
	anoms := make([]bool, n)
	for i := range values {
		values[i] = 0.4 + 0.1*math.Sin(float64(i)/3)
	}
	for _, idx := range anomalyAt {
		values[idx] = 1.0
		anoms[idx] = true
	}
	return values, anoms
}

func buildTestTree(t *testing.T, omega int, opts Options) (*Tree, []Observation) {
	t.Helper()
	values, anoms := synthSeries(300, []int{40, 41, 120, 200, 260})
	labels, err := cfg2.LabelSeries(values)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := Windows(labels, anoms, omega)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(obs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tree, obs
}

func TestBuildSeparatesTrainingData(t *testing.T) {
	tree, obs := buildTestTree(t, 5, Options{})
	preds := tree.PredictAll(obs)
	errors := 0
	for i := range obs {
		if preds[i] != obs[i].Class {
			errors++
		}
	}
	// Algorithm 1 splits until purity or zero gain; on this cleanly
	// separable synthetic data it must fit the training set exactly.
	if errors != 0 {
		t.Errorf("%d/%d training errors", errors, len(obs))
	}
}

func TestBuildLeavesAreConsistent(t *testing.T) {
	tree, _ := buildTestTree(t, 5, Options{})
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf() {
			if n.Counts.Total() == 0 {
				t.Error("empty leaf")
			}
			return
		}
		if n.ChildTrue == nil || n.ChildFalse == nil {
			t.Fatal("split node missing children")
		}
		sum := ClassCounts{
			Normal:  n.ChildTrue.Counts.Normal + n.ChildFalse.Counts.Normal,
			Anomaly: n.ChildTrue.Counts.Anomaly + n.ChildFalse.Counts.Anomaly,
		}
		if sum != n.Counts {
			t.Errorf("children counts %+v do not sum to parent %+v", sum, n.Counts)
		}
		if n.ChildTrue.Depth != n.Depth+1 || n.ChildFalse.Depth != n.Depth+1 {
			t.Error("child depth wrong")
		}
		walk(n.ChildTrue)
		walk(n.ChildFalse)
	}
	walk(tree.Root)
}

func TestBuildRespectsMaxDepth(t *testing.T) {
	tree, _ := buildTestTree(t, 5, Options{MaxDepth: 1})
	if st := tree.Stats(); st.MaxDepth > 1 {
		t.Errorf("depth %d exceeds cap", st.MaxDepth)
	}
}

func TestBuildRespectsMaxCompositionLen(t *testing.T) {
	tree, _ := buildTestTree(t, 5, Options{MaxCompositionLen: 1})
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf() {
			return
		}
		if n.Composition.Len() > 1 {
			t.Errorf("composition %v exceeds length cap", n.Composition)
		}
		walk(n.ChildTrue)
		walk(n.ChildFalse)
	}
	walk(tree.Root)
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("empty observations accepted")
	}
	obs := []Observation{
		{Labels: []pattern.Label{lbl(pattern.PP, 1, 1)}},
		{Labels: []pattern.Label{lbl(pattern.PP, 1, 1), lbl(pattern.PN, -1, -1)}},
	}
	if _, err := Build(obs, Options{}); err == nil {
		t.Error("ragged observations accepted")
	}
}

func TestBuildAllNormalGivesSingleLeaf(t *testing.T) {
	labels := mustLabels(t, []float64{0, 0.5, 0.2, 0.7, 0.3, 0.8})
	obs, err := Windows(labels, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(obs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.Leaf() {
		t.Error("pure root was split")
	}
	if tree.Predict(obs[0].Labels) != Normal {
		t.Error("prediction on pure-normal tree")
	}
}

func TestBuildDeterministic(t *testing.T) {
	t1, _ := buildTestTree(t, 5, Options{Parallelism: 1})
	t2, _ := buildTestTree(t, 5, Options{Parallelism: 8})
	if t1.Render(cfg2) != t2.Render(cfg2) {
		t.Error("tree depends on parallelism")
	}
}

func TestEntropyCriterionAlsoSeparates(t *testing.T) {
	tree, obs := buildTestTree(t, 5, Options{Criterion: Entropy})
	for i, c := range tree.PredictAll(obs) {
		if c != obs[i].Class {
			t.Fatalf("entropy tree misclassifies training obs %d", i)
		}
	}
}

func TestStats(t *testing.T) {
	tree, _ := buildTestTree(t, 5, Options{})
	st := tree.Stats()
	if st.Nodes != st.Splits*2+1 {
		t.Errorf("binary tree invariant violated: %+v", st)
	}
	if st.Leaves != st.Splits+1 {
		t.Errorf("leaf count invariant violated: %+v", st)
	}
	if st.AnomalyLeaves == 0 {
		t.Error("no anomaly leaves on separable data")
	}
}

func TestRenderMentionsCompositions(t *testing.T) {
	tree, _ := buildTestTree(t, 5, Options{})
	out := tree.Render(cfg2)
	if out == "" || tree.Root.Leaf() {
		t.Fatal("render empty or tree trivial")
	}
	if !strings.Contains(out, "split on") || !strings.Contains(out, "leaf") {
		t.Errorf("render missing structure:\n%s", out)
	}
}

func TestMajorityTieBreaksToAnomaly(t *testing.T) {
	cc := ClassCounts{Normal: 3, Anomaly: 3}
	if cc.Majority() != Anomaly {
		t.Error("tie should prefer anomaly")
	}
	if (ClassCounts{}).Majority() != Normal {
		t.Error("empty counts should be normal")
	}
}

func TestClassString(t *testing.T) {
	if Normal.String() != "normal" || Anomaly.String() != "anomaly" {
		t.Error("class names wrong")
	}
}

func TestMatchModeString(t *testing.T) {
	if MatchContiguous.String() != "contiguous" || MatchSubsequence.String() != "subsequence" {
		t.Error("mode names wrong")
	}
}

// The one-pass substring support counting must agree exactly with direct
// per-candidate matching.
func TestFastSupportCountingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	alphabet := cfg2.Alphabet()
	obs := make([]Observation, 60)
	for i := range obs {
		labels := make([]pattern.Label, 8)
		for j := range labels {
			labels[j] = alphabet[rng.Intn(6)] // small alphabet → repeats
		}
		cls := Normal
		if rng.Intn(3) == 0 {
			cls = Anomaly
		}
		obs[i] = Observation{Labels: labels, Class: cls}
	}
	for _, maxLen := range []int{0, 1, 3} {
		candidates := enumerateCompositions(obs, maxLen)
		if len(candidates) == 0 {
			t.Fatal("no candidates")
		}
		opts := Options{MaxCompositionLen: maxLen}
		fast := countContiguousSupports(obs, candidates, opts)
		slow := countSupportsNaive(obs, candidates, opts)
		for i := range candidates {
			if fast[i] != slow[i] {
				t.Fatalf("maxLen=%d candidate %v: fast %+v, slow %+v",
					maxLen, candidates[i], fast[i], slow[i])
			}
		}
	}
}

// The sliding-run fast path (series-space occurrence counting over
// consecutive windows of one backing array — the shape Windows produces)
// must agree exactly with direct per-candidate matching, including for
// mixed inputs where sliding runs and isolated windows interleave.
func TestSlidingRunSupportCountingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	alphabet := cfg2.Alphabet()
	seq := make([]pattern.Label, 120)
	for j := range seq {
		seq[j] = alphabet[rng.Intn(6)]
	}
	anoms := make([]bool, len(seq)+2)
	for j := range anoms {
		if rng.Intn(9) == 0 {
			anoms[j] = true
		}
	}
	for _, omega := range []int{2, 5, 9} {
		sliding, err := Windows(seq, anoms, omega)
		if err != nil {
			t.Fatal(err)
		}
		// Mixed input: a sliding run, then isolated copies (fresh backing
		// arrays break adjacency), then the tail of the run.
		mixed := append([]Observation(nil), sliding[:40]...)
		for i := 40; i < 50; i++ {
			mixed = append(mixed, Observation{
				Labels: append([]pattern.Label(nil), sliding[i].Labels...),
				Class:  sliding[i].Class,
			})
		}
		mixed = append(mixed, sliding[50:]...)
		for _, obs := range [][]Observation{sliding, mixed} {
			for _, maxLen := range []int{0, 1, 3} {
				candidates := enumerateCompositions(obs, maxLen)
				if len(candidates) == 0 {
					t.Fatal("no candidates")
				}
				opts := Options{MaxCompositionLen: maxLen}
				fast := countContiguousSupports(obs, candidates, opts)
				slow := countSupportsNaive(obs, candidates, opts)
				for i := range candidates {
					if fast[i] != slow[i] {
						t.Fatalf("omega=%d maxLen=%d candidate %v: fast %+v, slow %+v",
							omega, maxLen, candidates[i], fast[i], slow[i])
					}
				}
			}
		}
	}
}

// The sliding-run partition marker must agree with per-window MatchedBy
// on every candidate, over pure sliding input and mixed (run + isolated
// copies) input alike.
func TestMarkMatchesMatchesMatchedBy(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	alphabet := cfg2.Alphabet()
	seq := make([]pattern.Label, 110)
	for j := range seq {
		seq[j] = alphabet[rng.Intn(5)]
	}
	anoms := make([]bool, len(seq)+2)
	for j := range anoms {
		if rng.Intn(8) == 0 {
			anoms[j] = true
		}
	}
	for _, omega := range []int{2, 4, 7} {
		sliding, err := Windows(seq, anoms, omega)
		if err != nil {
			t.Fatal(err)
		}
		mixed := append([]Observation(nil), sliding[:30]...)
		for i := 30; i < 38; i++ {
			mixed = append(mixed, Observation{
				Labels: append([]pattern.Label(nil), sliding[i].Labels...),
				Class:  sliding[i].Class,
			})
		}
		mixed = append(mixed, sliding[38:]...)
		for _, obs := range [][]Observation{sliding, mixed} {
			for _, candidate := range enumerateCompositions(obs, 3) {
				marks := make([]bool, len(obs))
				markMatches(obs, &candidate, MatchContiguous, marks)
				for j := range obs {
					want := candidate.MatchedBy(obs[j].Labels, MatchContiguous)
					if marks[j] != want {
						t.Fatalf("omega=%d candidate %v window %d: marked %v, MatchedBy %v",
							omega, candidate, j, marks[j], want)
					}
				}
			}
		}
	}
}

// Subsequence-mode trees must also fit separable training data.
func TestBuildSubsequenceMode(t *testing.T) {
	tree, obs := buildTestTree(t, 5, Options{Match: MatchSubsequence})
	for i, c := range tree.PredictAll(obs) {
		if c != obs[i].Class {
			t.Fatalf("subsequence tree misclassifies training obs %d", i)
		}
	}
}

func TestDOTExport(t *testing.T) {
	tree, _ := buildTestTree(t, 5, Options{})
	dot := tree.DOT(cfg2)
	for _, want := range []string{"digraph cdt", "∈o", "∉o", "anomaly", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Node count in the DOT source must match the tree.
	st := tree.Stats()
	if got := strings.Count(dot, "[shape="); got != st.Nodes {
		t.Errorf("DOT declares %d nodes, tree has %d", got, st.Nodes)
	}
	// Leaf-only tree renders too.
	leafTree := &Tree{Root: &Node{Counts: ClassCounts{Normal: 3}}, Omega: 2}
	if !strings.Contains(leafTree.DOT(cfg2), "normal=3") {
		t.Error("leaf-only DOT wrong")
	}
}
