package experiments

import (
	"fmt"
	"strings"
	"sync"

	cdt "cdt"
)

// Table2Row is one dataset's optimal hyper-parameters under both
// objectives (paper Table 2).
type Table2Row struct {
	Dataset                string
	F1Omega, F1Delta       int
	FHOmega, FHDelta       int
	F1Score, FHScore       float64
	PaperF1Omega           int
	PaperF1Delta           int
	PaperFHOmega           int
	PaperFHDelta           int
	F1Evaluations, FHEvals int
}

// Table2 runs the Bayesian hyper-parameter optimization per dataset for
// both objectives. The twelve tuning runs (6 datasets × 2 objectives) are
// independent, so they execute concurrently with a small worker pool;
// results land in the suite cache and the rows are assembled in the
// paper's dataset order.
func (s *Suite) Table2() ([]Table2Row, error) {
	type job struct {
		name string
		obj  cdt.Objective
	}
	jobs := make(chan job)
	errs := make(chan error, len(DatasetNames)*2)
	var wg sync.WaitGroup
	workers := 3
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if _, err := s.Tuned(j.name, j.obj); err != nil {
					errs <- err
				}
			}
		}()
	}
	for _, name := range DatasetNames {
		jobs <- job{name, cdt.ObjectiveF1}
		jobs <- job{name, cdt.ObjectiveFH}
	}
	close(jobs)
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	var rows []Table2Row
	for _, name := range DatasetNames {
		f1res, err := s.Tuned(name, cdt.ObjectiveF1)
		if err != nil {
			return nil, err
		}
		fhres, err := s.Tuned(name, cdt.ObjectiveFH)
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			Dataset: name,
			F1Omega: f1res.Best.Omega, F1Delta: f1res.Best.Delta,
			FHOmega: fhres.Best.Omega, FHDelta: fhres.Best.Delta,
			F1Score: f1res.BestScore, FHScore: fhres.BestScore,
			F1Evaluations: f1res.Evaluations, FHEvals: fhres.Evaluations,
		}
		if p, ok := PaperTable2[name]; ok {
			row.PaperF1Omega, row.PaperF1Delta = p[0], p[1]
			row.PaperFHOmega, row.PaperFHDelta = p[2], p[3]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders Table 2 with paper values alongside.
func FormatTable2(rows []Table2Row) string {
	header := []string{"Dataset", "F1 ω", "F1 δ", "F(h) ω", "F(h) δ", "paper F1 (ω,δ)", "paper F(h) (ω,δ)"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Dataset,
			fmt.Sprint(r.F1Omega), fmt.Sprint(r.F1Delta),
			fmt.Sprint(r.FHOmega), fmt.Sprint(r.FHDelta),
			fmt.Sprintf("(%d,%d)", r.PaperF1Omega, r.PaperF1Delta),
			fmt.Sprintf("(%d,%d)", r.PaperFHOmega, r.PaperFHDelta),
		})
	}
	var b strings.Builder
	b.WriteString("Table 2: optimal CDT hyper-parameters per objective\n")
	b.WriteString(FormatTable(header, body))
	// The paper's headline observation: F(h) favors small δ.
	smallDelta := 0
	for _, r := range rows {
		if r.FHDelta <= r.F1Delta {
			smallDelta++
		}
	}
	fmt.Fprintf(&b, "F(h) chose δ ≤ F1's δ on %d/%d datasets (paper: 6/6 with δ ∈ {1,2})\n", smallDelta, len(rows))
	return b.String()
}
