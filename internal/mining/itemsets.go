// Package mining implements the frequent-pattern substrates the PBAD
// baseline builds on (Feremans et al. 2019): closed frequent itemset
// mining over discretized windows (Apriori-style level-wise search, which
// is efficient here because the item alphabet is a handful of value bins)
// and closed frequent sequential-pattern mining (PrefixSpan).
package mining

import (
	"fmt"
	"sort"
)

// Itemset is a sorted set of item ids.
type Itemset []int

// key returns a canonical identity string for a sorted itemset.
func (s Itemset) key() string {
	b := make([]byte, 0, len(s)*2)
	for _, it := range s {
		b = append(b, byte(it), byte(it>>8))
	}
	return string(b)
}

// contains reports whether the sorted itemset s contains item v.
func (s Itemset) contains(v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// SubsetOf reports whether every item of s occurs in the sorted set t.
func (s Itemset) SubsetOf(t Itemset) bool {
	if len(s) > len(t) {
		return false
	}
	i := 0
	for _, v := range s {
		for i < len(t) && t[i] < v {
			i++
		}
		if i >= len(t) || t[i] != v {
			return false
		}
	}
	return true
}

// FrequentItemset is a mined itemset with its absolute support.
type FrequentItemset struct {
	Items   Itemset
	Support int
}

// MineClosedItemsets mines all closed frequent itemsets from
// transactions: itemsets with support >= minSupport (absolute count) such
// that no proper superset has the same support. maxLen caps itemset size
// (0 = unlimited). Transactions are deduplicated-per-transaction item
// lists; order inside a transaction is irrelevant.
//
// The search is level-wise (Apriori): candidates of size k+1 are joined
// from frequent itemsets of size k, pruned by the downward-closure
// property, then support-counted in one pass over the transactions.
func MineClosedItemsets(transactions [][]int, minSupport, maxLen int) ([]FrequentItemset, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("mining: minSupport %d, want >= 1", minSupport)
	}
	// Canonicalize transactions: sorted unique items.
	txs := make([]Itemset, len(transactions))
	for i, t := range transactions {
		seen := make(map[int]struct{}, len(t))
		var set Itemset
		for _, v := range t {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				set = append(set, v)
			}
		}
		sort.Ints(set)
		txs[i] = set
	}

	// Level 1: frequent single items.
	counts := make(map[int]int)
	for _, t := range txs {
		for _, v := range t {
			counts[v]++
		}
	}
	var level []FrequentItemset
	var items []int
	for v, c := range counts {
		if c >= minSupport {
			items = append(items, v)
		}
	}
	sort.Ints(items)
	for _, v := range items {
		level = append(level, FrequentItemset{Items: Itemset{v}, Support: counts[v]})
	}

	all := make(map[string]FrequentItemset)
	for _, fs := range level {
		all[fs.Items.key()] = fs
	}

	for k := 1; len(level) > 0 && (maxLen == 0 || k < maxLen); k++ {
		// Join step: pairs sharing the first k-1 items.
		candSet := make(map[string]Itemset)
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i].Items, level[j].Items
				if !equalPrefix(a, b, k-1) {
					continue
				}
				cand := make(Itemset, k+1)
				copy(cand, a)
				cand[k] = b[k-1]
				if cand[k-1] > cand[k] {
					cand[k-1], cand[k] = cand[k], cand[k-1]
				}
				candSet[cand.key()] = cand
			}
		}
		// Prune + count.
		var next []FrequentItemset
		for _, cand := range candSet {
			sup := 0
			for _, t := range txs {
				if cand.SubsetOf(t) {
					sup++
				}
			}
			if sup >= minSupport {
				next = append(next, FrequentItemset{Items: cand, Support: sup})
			}
		}
		sort.Slice(next, func(i, j int) bool { return lessItemset(next[i].Items, next[j].Items) })
		for _, fs := range next {
			all[fs.Items.key()] = fs
		}
		level = next
	}

	// Closedness filter: drop itemsets with a superset of equal support.
	var result []FrequentItemset
	for _, fs := range all {
		closed := true
		for _, other := range all {
			if len(other.Items) > len(fs.Items) && other.Support == fs.Support && fs.Items.SubsetOf(other.Items) {
				closed = false
				break
			}
		}
		if closed {
			result = append(result, fs)
		}
	}
	sort.Slice(result, func(i, j int) bool { return lessItemset(result[i].Items, result[j].Items) })
	return result, nil
}

func equalPrefix(a, b Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessItemset(a, b Itemset) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
