package analysis

// Lint suppression directives. A comment of the form
//
//	//cdtlint:ignore <analyzer> <reason>
//
// suppresses the named analyzer's findings on the directive's line — or,
// when the directive stands alone on its line, on the line directly
// below it. The reason is mandatory: a suppression is a reviewed,
// justified exception to a machine-enforced invariant, and the
// justification travels with the code (and into SARIF output as an
// inSource suppression). A directive missing its analyzer or reason is
// itself reported as a finding under the reserved analyzer name
// "cdtlint", so a typo cannot silently disable a check.
//
// Suppressed findings do not fail a cdtlint run, but they are not
// discarded: Run returns them separately and the -format json/sarif
// outputs count and carry them, so suppression growth stays visible.

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. Directive comments
// follow the Go convention: no space after "//".
const ignorePrefix = "//cdtlint:ignore"

// DirectiveAnalyzer is the reserved analyzer name under which the driver
// reports malformed directives.
const DirectiveAnalyzer = "cdtlint"

// Suppression is one parsed //cdtlint:ignore directive.
type Suppression struct {
	// Analyzer is the analyzer whose findings the directive suppresses.
	Analyzer string
	// Reason is the mandatory justification.
	Reason string
	// File and Line locate the suppressed line (already adjusted for
	// standalone directives, which cover the line below them).
	File string
	Line int
}

// SuppressedFinding is a finding that matched a suppression directive:
// it does not fail the run but is counted and carried in structured
// output.
type SuppressedFinding struct {
	Finding
	// Reason is the directive's justification.
	Reason string
}

// SuppressionSet indexes one unit's directives by suppressed
// file:line.
type SuppressionSet struct {
	byLine map[string][]Suppression
}

// Match returns the directive suppressing analyzer findings at pos, if
// any.
func (s *SuppressionSet) Match(analyzer string, pos token.Position) (Suppression, bool) {
	if s == nil || len(s.byLine) == 0 {
		return Suppression{}, false
	}
	for _, sup := range s.byLine[posKey(pos.Filename, pos.Line)] {
		if sup.Analyzer == analyzer {
			return sup, true
		}
	}
	return Suppression{}, false
}

func posKey(file string, line int) string {
	return file + ":" + itoa(line)
}

// itoa is a minimal strconv.Itoa for non-negative line numbers, keeping
// the hot match path free of fmt.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// CollectSuppressions parses every //cdtlint:ignore directive in files.
// Malformed directives are returned as findings under the reserved
// "cdtlint" analyzer name. A directive's target line is its own line
// when other code shares it, else the next line.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) (*SuppressionSet, []Finding) {
	set := &SuppressionSet{byLine: make(map[string][]Suppression)}
	var malformed []Finding
	for _, f := range files {
		codeLines := codeLineSet(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// A different directive (e.g. //cdtlint:ignoreX): not ours.
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						Analyzer: DirectiveAnalyzer,
						Position: pos,
						Message:  "malformed //cdtlint:ignore directive: want \"//cdtlint:ignore <analyzer> <reason>\" (the reason is mandatory)",
					})
					continue
				}
				line := pos.Line
				if !codeLines[line] {
					// Standalone directive: it covers the line below.
					line++
				}
				set.byLine[posKey(pos.Filename, line)] = append(set.byLine[posKey(pos.Filename, line)], Suppression{
					Analyzer: fields[0],
					Reason:   strings.Join(fields[1:], " "),
					File:     pos.Filename,
					Line:     line,
				})
			}
		}
	}
	return set, malformed
}

// codeLineSet returns the set of lines in f carrying non-comment syntax,
// so a directive can tell whether it trails code or stands alone.
func codeLineSet(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.File:
			return true
		}
		start, end := fset.Position(n.Pos()), fset.Position(n.End())
		if start.Line == end.Line {
			lines[start.Line] = true
		} else {
			// Only terminal lines matter for trailing-comment detection;
			// marking both bounds the cost for large multi-line nodes.
			lines[start.Line] = true
			lines[end.Line] = true
		}
		return true
	})
	return lines
}
