package evalmetrics

import (
	"testing"
	"testing/quick"
)

func TestKFoldPartition(t *testing.T) {
	folds, err := KFoldIndices(10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := map[int]int{}
	for _, fold := range folds {
		for _, idx := range fold {
			seen[idx]++
		}
	}
	if len(seen) != 10 {
		t.Errorf("covered %d indices", len(seen))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("index %d appears %d times", idx, n)
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	if _, err := KFoldIndices(10, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := KFoldIndices(2, 5, 1); err == nil {
		t.Error("n<k accepted")
	}
	if _, err := StratifiedKFoldIndices(nil, 2, 1); err == nil {
		t.Error("empty stratified input accepted")
	}
	if _, err := StratifiedKFoldIndices(make([]bool, 10), 1, 1); err == nil {
		t.Error("stratified k=1 accepted")
	}
}

func TestKFoldBalancedSizes(t *testing.T) {
	f := func(nRaw, kRaw uint8, seed int64) bool {
		k := int(kRaw%8) + 2
		n := k + int(nRaw%100)
		folds, err := KFoldIndices(n, k, seed)
		if err != nil {
			return false
		}
		min, max := n, 0
		total := 0
		for _, fold := range folds {
			if len(fold) < min {
				min = len(fold)
			}
			if len(fold) > max {
				max = len(fold)
			}
			total += len(fold)
		}
		return total == n && max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStratifiedKFoldPreservesRatio(t *testing.T) {
	positive := make([]bool, 100)
	for i := 0; i < 20; i++ {
		positive[i] = true
	}
	folds, err := StratifiedKFoldIndices(positive, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for f, fold := range folds {
		pos := 0
		for _, idx := range fold {
			if positive[idx] {
				pos++
			}
		}
		if pos != 4 { // 20 positives / 5 folds
			t.Errorf("fold %d has %d positives, want 4", f, pos)
		}
	}
}

func TestStratifiedKFoldCoversAll(t *testing.T) {
	positive := []bool{true, false, true, false, false, true, false, false}
	folds, err := StratifiedKFoldIndices(positive, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, fold := range folds {
		for _, idx := range fold {
			if seen[idx] {
				t.Fatalf("index %d duplicated", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != len(positive) {
		t.Errorf("covered %d of %d", len(seen), len(positive))
	}
}

func TestTrainTestFromFolds(t *testing.T) {
	folds := [][]int{{0, 1}, {2, 3}, {4}}
	train, test := TrainTestFromFolds(folds, 1)
	if len(test) != 2 || test[0] != 2 {
		t.Errorf("test = %v", test)
	}
	if len(train) != 3 {
		t.Errorf("train = %v", train)
	}
}
