package cdt_test

// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§4). Each BenchmarkTableN/BenchmarkFigureN runs the same
// code path as `go run ./cmd/experiments -exp tableN` and prints the
// reproduced table (with the paper's values alongside) once per process.
//
// The tuning budgets here are reduced so `go test -bench=.` completes in
// minutes; `cmd/experiments` uses the larger defaults and `-full`
// switches to paper-scale datasets.
//
// BenchmarkAblation* quantify the design decisions called out in
// DESIGN.md §5: matching mode, leaf policy, split criterion, Boolean
// simplification, and the composition-length cap.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	cdt "cdt"
	"cdt/internal/bayesopt"
	"cdt/internal/core"
	"cdt/internal/experiments"
	"cdt/internal/iforest"
	"cdt/internal/matrixprofile"
	"cdt/internal/pattern"
	"cdt/internal/pav"
	"cdt/internal/pbad"
	"cdt/internal/rules"
)

var (
	suiteOnce  sync.Once
	benchSuite *experiments.Suite
)

// sharedSuite reuses one experiment suite across benchmarks so tuned
// hyper-parameters are computed once per process.
func sharedSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		benchSuite = experiments.NewSuite(experiments.Config{Seed: 42, BOInit: 4, BOIters: 8})
	})
	return benchSuite
}

var printOnce sync.Map

// printTable emits a reproduced table exactly once per process.
func printTable(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

func BenchmarkTable2HyperparamOptimization(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		printTable("table2", experiments.FormatTable2(rows))
	}
}

func BenchmarkTable3PatternBaselines(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		printTable("table3", experiments.FormatTable3(rows))
	}
}

func BenchmarkTable4RuleLearners(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		printTable("table4", experiments.FormatTable4(rows))
	}
}

func BenchmarkTable5ExampleRules(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		printTable("table5", experiments.FormatTable5(rows))
	}
}

func BenchmarkFigure1PatternLabeling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("figure1", experiments.Figure1())
	}
}

func BenchmarkFigure2TreeConstruction(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		out, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		printTable("figure2", out)
	}
}

func BenchmarkFigure3RuleCounts(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		printTable("figure3", experiments.FormatFigure3(rows))
	}
}

// --- ablations --------------------------------------------------------

// ablationData builds one labeled training/test pair used by all
// ablation benches.
func ablationData(b *testing.B) (train, test []*cdt.Series) {
	b.Helper()
	s := sharedSuite()
	p, err := s.Dataset("SGE_Calorie")
	if err != nil {
		b.Fatal(err)
	}
	return p.TrainVal(), p.Test
}

// ablationFit trains with the given options and reports test F1 and rule
// count through benchmark metrics.
func ablationFit(b *testing.B, train, test []*cdt.Series, opts cdt.Options, label string) {
	b.Helper()
	var f1 float64
	var nRules int
	for i := 0; i < b.N; i++ {
		model, err := cdt.Fit(train, opts)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := model.Evaluate(test)
		if err != nil {
			b.Fatal(err)
		}
		f1, nRules = rep.F1, model.NumRules()
	}
	b.ReportMetric(f1, "testF1")
	b.ReportMetric(float64(nRules), "rules")
	printTable("ablation/"+label, fmt.Sprintf("ablation %-28s testF1=%.3f rules=%d", label, f1, nRules))
}

func BenchmarkAblationMatching(b *testing.B) {
	train, test := ablationData(b)
	base := cdt.Options{Omega: 5, Delta: 2, MaxCompositionLen: 3}
	b.Run("contiguous", func(b *testing.B) {
		opts := base
		opts.Match = core.MatchContiguous
		ablationFit(b, train, test, opts, "match=contiguous")
	})
	b.Run("subsequence", func(b *testing.B) {
		opts := base
		opts.Match = core.MatchSubsequence
		ablationFit(b, train, test, opts, "match=subsequence")
	})
}

func BenchmarkAblationLeafPolicy(b *testing.B) {
	train, test := ablationData(b)
	base := cdt.Options{Omega: 5, Delta: 2, MaxCompositionLen: 4}
	b.Run("pure", func(b *testing.B) {
		opts := base
		opts.LeafPolicy = rules.PureAnomalyLeaves
		ablationFit(b, train, test, opts, "leaves=pure")
	})
	b.Run("majority", func(b *testing.B) {
		opts := base
		opts.LeafPolicy = rules.MajorityAnomalyLeaves
		ablationFit(b, train, test, opts, "leaves=majority")
	})
}

func BenchmarkAblationSplitCriterion(b *testing.B) {
	train, test := ablationData(b)
	base := cdt.Options{Omega: 5, Delta: 2, MaxCompositionLen: 4}
	b.Run("gini", func(b *testing.B) {
		opts := base
		opts.Criterion = core.Gini
		ablationFit(b, train, test, opts, "criterion=gini")
	})
	b.Run("entropy", func(b *testing.B) {
		opts := base
		opts.Criterion = core.Entropy
		ablationFit(b, train, test, opts, "criterion=entropy")
	})
}

func BenchmarkAblationMaxCompositionLen(b *testing.B) {
	train, test := ablationData(b)
	for _, maxLen := range []int{1, 2, 4, 8, 0} {
		name := fmt.Sprintf("cap=%d", maxLen)
		if maxLen == 0 {
			name = "cap=unlimited"
		}
		b.Run(name, func(b *testing.B) {
			opts := cdt.Options{Omega: 5, Delta: 2, MaxCompositionLen: maxLen}
			ablationFit(b, train, test, opts, "composition-"+name)
		})
	}
}

func BenchmarkAblationSimplification(b *testing.B) {
	train, _ := ablationData(b)
	model, err := cdt.Fit(train, cdt.Options{Omega: 5, Delta: 2, MaxCompositionLen: 4})
	if err != nil {
		b.Fatal(err)
	}
	raw := model.RawRule()
	var before, after int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simplified := rules.Simplify(raw)
		before, after = countLiterals(raw), countLiterals(simplified)
	}
	b.ReportMetric(float64(before), "literalsBefore")
	b.ReportMetric(float64(after), "literalsAfter")
	printTable("ablation/simplify", fmt.Sprintf("ablation simplification: literals %d -> %d, predicates %d -> %d",
		before, after, raw.Count(), rules.Simplify(raw).Count()))
}

func countLiterals(r rules.Rule) int {
	n := 0
	for _, p := range r.Predicates {
		n += len(p.Literals)
	}
	return n
}

// --- micro-benchmarks on the core primitives --------------------------

func benchValues(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, n)
	for i := range values {
		values[i] = 0.5 + 0.4*math.Sin(float64(i)/7) + 0.05*rng.Float64()
	}
	return values
}

func BenchmarkPatternLabeling(b *testing.B) {
	values := benchValues(10000, 1)
	cfg := pattern.NewConfig(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.LabelSeries(values); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeBuild(b *testing.B) {
	values := benchValues(2000, 2)
	anoms := make([]bool, len(values))
	for _, at := range []int{100, 400, 700, 1000, 1300, 1600, 1900} {
		values[at] = 2
		anoms[at] = true
	}
	cfg := pattern.NewConfig(2)
	labels, err := cfg.LabelSeries(values)
	if err != nil {
		b.Fatal(err)
	}
	obs, err := core.Windows(labels, anoms, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(obs, core.Options{MaxCompositionLen: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuleDetection(b *testing.B) {
	train := cdt.NewLabeledSeries("t", benchValues(1000, 3), make([]bool, 1000))
	train.Values[500] = 2
	train.Anomalies[500] = true
	model, err := cdt.Fit([]*cdt.Series{train}, cdt.Options{Omega: 8, Delta: 2})
	if err != nil {
		b.Fatal(err)
	}
	target := cdt.NewSeries("x", benchValues(5000, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.DetectWindows(target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuleDetectionBaseline is the pre-engine detection path —
// window the series, then re-match every composition of every predicate
// against every window independently (rules.Rule.DetectAll, the
// executable reference semantics). BenchmarkRuleDetection above now
// runs the same workload through the compiled engine's single sweep;
// the pair quantifies what compiling the rule set buys.
// Acceptance target: the engine path ≥2× faster at 1 CPU.
func BenchmarkRuleDetectionBaseline(b *testing.B) {
	train := cdt.NewLabeledSeries("t", benchValues(1000, 3), make([]bool, 1000))
	train.Values[500] = 2
	train.Anomalies[500] = true
	model, err := cdt.Fit([]*cdt.Series{train}, cdt.Options{Omega: 8, Delta: 2})
	if err != nil {
		b.Fatal(err)
	}
	target := cdt.NewSeries("x", benchValues(5000, 4))
	rule := model.Rule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs, err := cdt.ObservationsOf(target, model.Opts)
		if err != nil {
			b.Fatal(err)
		}
		rule.DetectAll(obs)
	}
}

// BenchmarkPyramidDetect measures multi-scale detection end to end: one
// compiled-engine sweep per resolution over downsampled views of the
// target, point-level fusion of the per-scale flags, and anomaly-type
// classification of each fused run. Compare against
// BenchmarkRuleDetection (single scale, no fusion, same target length)
// for the overhead each extra resolution adds.
func BenchmarkPyramidDetect(b *testing.B) {
	train := cdt.NewLabeledSeries("t", benchValues(1000, 3), make([]bool, 1000))
	train.Values[500] = 2
	train.Anomalies[500] = true
	for i := 700; i < 732; i++ { // sustained run, so coarse scales learn too
		train.Values[i] = 1.8
		train.Anomalies[i] = true
	}
	pm, err := cdt.FitPyramid([]*cdt.Series{train}, cdt.Options{Omega: 8, Delta: 2},
		cdt.PyramidConfig{Factors: []int{1, 4, 16}, Aggregator: "max"})
	if err != nil {
		b.Fatal(err)
	}
	target := cdt.NewSeries("x", benchValues(5000, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pm.DetectPyramid(target); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatrixProfileSTOMP(b *testing.B) {
	values := benchValues(2000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrixprofile.Compute(values, 24); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPBADPipeline(b *testing.B) {
	values := benchValues(2000, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pbad.Detect(values, pbad.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPAVScoring(b *testing.B) {
	values := benchValues(10000, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pav.Scores(values, pav.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIsolationForest(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	points := make([][]float64, 2000)
	for i := range points {
		points[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := iforest.Fit(points, iforest.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.ScoreAll(points[:100]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBayesianOptimizationStep(b *testing.B) {
	train := cdt.NewLabeledSeries("t", benchValues(600, 9), make([]bool, 600))
	for _, at := range []int{100, 300, 500} {
		train.Values[at] = 2
		train.Anomalies[at] = true
	}
	val := cdt.NewLabeledSeries("v", benchValues(400, 10), make([]bool, 400))
	val.Values[200] = 2
	val.Anomalies[200] = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cdt.Optimize([]*cdt.Series{train}, []*cdt.Series{val}, cdt.ObjectiveF1, cdt.OptimizeOptions{
			OmegaMax: 9, DeltaMax: 4, InitPoints: 3, Iterations: 4, Seed: int64(i),
			Base: cdt.Options{MaxCompositionLen: 3},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGeneralization measures the future-work extension
// (§5): magnitude generalization validated on the validation windows,
// scored on held-out test windows.
func BenchmarkAblationGeneralization(b *testing.B) {
	s := sharedSuite()
	p, err := s.Dataset("SGE_Calorie")
	if err != nil {
		b.Fatal(err)
	}
	model, err := cdt.Fit(p.TrainVal(), cdt.Options{Omega: 5, Delta: 8, MaxCompositionLen: 4})
	if err != nil {
		b.Fatal(err)
	}
	var exactF1, generalF1 float64
	var nRules int
	for i := 0; i < b.N; i++ {
		general, err := model.Generalize(p.Validation)
		if err != nil {
			b.Fatal(err)
		}
		var tp, fp, fn, gtp, gfp, gfn int
		for _, series := range p.Test {
			obs, err := cdt.ObservationsOf(series, model.Opts)
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range obs {
				actual := o.Class == core.Anomaly
				if model.Rule().Detect(o.Labels) {
					if actual {
						tp++
					} else {
						fp++
					}
				} else if actual {
					fn++
				}
				if general.Detect(o.Labels) {
					if actual {
						gtp++
					} else {
						gfp++
					}
				} else if actual {
					gfn++
				}
			}
		}
		exactF1 = f1Of(tp, fp, fn)
		generalF1 = f1Of(gtp, gfp, gfn)
		nRules = general.Count()
	}
	b.ReportMetric(exactF1, "exactTestF1")
	b.ReportMetric(generalF1, "generalTestF1")
	b.ReportMetric(float64(nRules), "generalRules")
	printTable("ablation/generalize", fmt.Sprintf(
		"ablation generalization: exact rules=%d testF1=%.3f -> generalized rules=%d testF1=%.3f",
		model.NumRules(), exactF1, nRules, generalF1))
}

func f1Of(tp, fp, fn int) float64 {
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}

// BenchmarkAblationOptimizer contrasts the hyper-parameter search
// strategies of §3.6 on one dataset: Bayesian optimization and random
// search at the same budget, exhaustive grid search as the upper bound.
func BenchmarkAblationOptimizer(b *testing.B) {
	s := sharedSuite()
	var rows []experiments.OptimizerComparison
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.CompareOptimizers("SGE_Calorie", 15)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.BestScore, r.Strategy+"F1")
	}
	printTable("ablation/optimizers", experiments.FormatOptimizerComparison("SGE_Calorie", rows))
}

func BenchmarkModelSaveLoad(b *testing.B) {
	train := cdt.NewLabeledSeries("t", benchValues(1500, 11), make([]bool, 1500))
	for _, at := range []int{200, 600, 1000, 1400} {
		train.Values[at] = 2
		train.Anomalies[at] = true
	}
	model, err := cdt.Fit([]*cdt.Series{train}, cdt.Options{Omega: 8, Delta: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := model.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := cdt.Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- corpus pipeline benchmarks ---------------------------------------
//
// The Optimize pair measures the steady-state hyper-parameter search the
// Suite actually runs: repeated searches over the same splits (two
// objectives, repeated budgets). The uncached baseline re-runs
// normalize → label → window for every candidate of every search; the
// cached variant drives OptimizeCorpus against warm corpora, so candidate
// evaluations pay only for tree induction and scoring.

// corpusBenchSeries builds a long sparse-anomaly labeled series: the
// regime where the preprocessing stages dominate tree induction.
func corpusBenchSeries(name string, n int, anomalyEvery int, seed int64) *cdt.Series {
	values := benchValues(n, seed)
	anoms := make([]bool, n)
	for at := anomalyEvery; at < n-1; at += anomalyEvery {
		values[at] = 2
		anoms[at] = true
	}
	return cdt.NewLabeledSeries(name, values, anoms)
}

func corpusBenchSearch() (train, val []*cdt.Series, opts cdt.OptimizeOptions) {
	train = []*cdt.Series{corpusBenchSeries("t", 20000, 4000, 20)}
	val = []*cdt.Series{corpusBenchSeries("v", 8000, 2500, 21)}
	opts = cdt.OptimizeOptions{
		OmegaMin: 3, OmegaMax: 12,
		DeltaMin: 1, DeltaMax: 6,
		InitPoints: 5, Iterations: 7,
		Seed: 42,
		Base: cdt.Options{MaxCompositionLen: 2},
	}
	return train, val, opts
}

// BenchmarkOptimizeUncached is the pre-corpus baseline: every candidate
// evaluation rebuilds the full preprocessing pipeline via bayesopt driven
// by from-scratch Fit/Evaluate (exactly what Optimize did before the
// corpus layer).
func BenchmarkOptimizeUncached(b *testing.B) {
	train, val, opts := corpusBenchSearch()
	space := bayesopt.Space{
		{Name: "omega", Min: opts.OmegaMin, Max: opts.OmegaMax},
		{Name: "delta", Min: opts.DeltaMin, Max: opts.DeltaMax},
	}
	objective := func(x []int) float64 {
		cfg := opts.Base
		cfg.Omega, cfg.Delta = x[0], x[1]
		model, err := cdt.Fit(train, cfg)
		if err != nil {
			return 0
		}
		rep, err := model.Evaluate(val)
		if err != nil {
			return 0
		}
		return rep.F1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := bayesopt.Maximize(objective, space, bayesopt.Options{
			InitPoints:  opts.InitPoints,
			Iterations:  opts.Iterations,
			Seed:        opts.Seed,
			LengthScale: 0.2,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeCached runs the identical search through OptimizeCorpus
// against corpora warmed by one prior search — the Suite's steady state,
// where the F(h) search follows the F1 search over the same splits.
// Acceptance target: ≥2× over BenchmarkOptimizeUncached.
func BenchmarkOptimizeCached(b *testing.B) {
	train, val, opts := corpusBenchSearch()
	trainC, err := cdt.NewCorpus(train)
	if err != nil {
		b.Fatal(err)
	}
	valC, err := cdt.NewCorpus(val)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cdt.OptimizeCorpus(trainC, valC, cdt.ObjectiveF1, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cdt.OptimizeCorpus(trainC, valC, cdt.ObjectiveF1, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// The Fit pair isolates the labeling cache: repeated fits at a fixed δ
// with varying ω share one labeling through the corpus (and, warm, their
// window pools); uncached they re-label the series every time.

var fitSweepOmegas = []int{3, 4, 5, 6, 7, 8, 9, 10}

func BenchmarkRepeatedFitVaryingOmegaUncached(b *testing.B) {
	train := []*cdt.Series{corpusBenchSeries("t", 20000, 4000, 22)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, omega := range fitSweepOmegas {
			if _, err := cdt.Fit(train, cdt.Options{Omega: omega, Delta: 3, MaxCompositionLen: 2}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRepeatedFitVaryingOmegaCached(b *testing.B) {
	train := []*cdt.Series{corpusBenchSeries("t", 20000, 4000, 22)}
	c, err := cdt.NewCorpus(train)
	if err != nil {
		b.Fatal(err)
	}
	for _, omega := range fitSweepOmegas { // warm the per-(ω,δ) window pools
		if _, err := c.Fit(cdt.Options{Omega: omega, Delta: 3, MaxCompositionLen: 2}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, omega := range fitSweepOmegas {
			if _, err := c.Fit(cdt.Options{Omega: omega, Delta: 3, MaxCompositionLen: 2}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkStreamPush(b *testing.B) {
	train := cdt.NewLabeledSeries("t", benchValues(1000, 12), make([]bool, 1000))
	train.Values[500] = 2
	train.Anomalies[500] = true
	model, err := cdt.Fit([]*cdt.Series{train}, cdt.Options{Omega: 8, Delta: 2})
	if err != nil {
		b.Fatal(err)
	}
	stream, err := model.NewStream(cdt.Scale{Min: 0, Max: 2})
	if err != nil {
		b.Fatal(err)
	}
	values := benchValues(4096, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Push(values[i%len(values)])
	}
}

// BenchmarkStreamPushBaseline re-creates the pre-engine streaming hot
// loop — ring-shift the ω most recent labels and re-match the full
// window per point (rules.Rule.Detect) — against the same model and
// feed as BenchmarkStreamPush, which now steps the model's incremental
// engine cursor in O(1) amortized per point instead.
func BenchmarkStreamPushBaseline(b *testing.B) {
	train := cdt.NewLabeledSeries("t", benchValues(1000, 12), make([]bool, 1000))
	train.Values[500] = 2
	train.Anomalies[500] = true
	model, err := cdt.Fit([]*cdt.Series{train}, cdt.Options{Omega: 8, Delta: 2})
	if err != nil {
		b.Fatal(err)
	}
	rule := model.Rule()
	cfg := pattern.NewConfig(model.Opts.Delta)
	omega := model.Opts.Omega
	values := benchValues(4096, 13)
	var lastTwo [2]float64
	window := make([]pattern.Label, 0, omega)
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := values[i%len(values)] / 2 // normalize into [0,1] (scale 0..2)
		n++
		switch n {
		case 1:
			lastTwo[0] = v
			continue
		case 2:
			lastTwo[1] = v
			continue
		}
		label := cfg.LabelPoint(lastTwo[0], lastTwo[1], v)
		lastTwo[0], lastTwo[1] = lastTwo[1], v
		if len(window) < omega {
			window = append(window, label)
		} else {
			copy(window, window[1:])
			window[omega-1] = label
		}
		if len(window) == omega {
			rule.Detect(window)
		}
	}
}
