package engine

import "math/bits"

// Marks is the batch result of a sweep: per window, the bitset of fired
// predicates plus the first (lowest-index) firing predicate — the value
// ordered rule-list evaluation (quality attribution) needs without
// re-deriving it. Immutable once returned.
type Marks struct {
	words int
	rows  []uint64
	first []int32
}

func newMarks(numPreds, n int) *Marks {
	m := &Marks{words: (numPreds + 63) / 64}
	m.first = make([]int32, n)
	for i := range m.first {
		m.first[i] = -1
	}
	// rows is allocated lazily on the first firing window: a sweep over a
	// normal series pays for the flag vector only, never the bitsets.
	return m
}

func (m *Marks) set(w int, fired []int) {
	if len(fired) == 0 {
		return
	}
	m.first[w] = int32(fired[0])
	if m.rows == nil {
		m.rows = make([]uint64, m.words*len(m.first))
	}
	row := m.rows[w*m.words:]
	for _, pi := range fired {
		row[pi>>6] |= 1 << uint(pi&63)
	}
}

// NumWindows returns the number of windows swept.
func (m *Marks) NumWindows() int { return len(m.first) }

// Fired reports whether any predicate fired on window w.
func (m *Marks) Fired(w int) bool { return m.first[w] >= 0 }

// First returns the 0-based index of the first predicate firing on
// window w, or -1 when the window is normal.
func (m *Marks) First(w int) int { return int(m.first[w]) }

// AppendFired appends the 0-based indices of the predicates fired on
// window w to dst, in rule order.
func (m *Marks) AppendFired(dst []int, w int) []int {
	if m.rows == nil {
		return dst
	}
	for wi, word := range m.rows[w*m.words : (w+1)*m.words] {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			dst = append(dst, wi<<6+b)
		}
	}
	return dst
}
