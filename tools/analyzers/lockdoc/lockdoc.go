// Package lockdoc enforces the documentation side of the locking
// contract that internal/modelstore relies on: any exported or
// unexported pointer-receiver method on a struct that carries a
// sync.Mutex/RWMutex field, and that mutates receiver-rooted state
// (field assignment, map write, or delete through the receiver), must
// say in its doc comment how it relates to the lock — by mentioning the
// mutex field by name or using the word "lock" ("takes s.mu", "callers
// must hold mu", "lock-free by design", ...).
//
// The store's manifest and audit sequence are cached in memory and
// mirrored on disk; a mutator whose locking story is undocumented is
// exactly how the next contributor adds an unguarded write. locksafe
// proves critical sections release correctly; lockdoc makes the
// intended discipline legible at the call site.
//
// Methods with no doc comment at all are reported the same as methods
// whose comment is silent about locking. Mutations of the mutex field
// itself do not count (locking is not "mutating state"), and function
// literals inside a method are analyzed as part of the method body —
// a goroutine the method spawns still mutates under whatever story the
// doc comment tells.
package lockdoc

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"cdt/tools/analysis"
)

// Analyzer is the lockdoc check.
var Analyzer = &analysis.Analyzer{
	Name: "lockdoc",
	Doc:  "requires methods that mutate mutex-guarded struct state to document their locking",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			mutexes := receiverMutexFields(pass, fd)
			if len(mutexes) == 0 {
				continue
			}
			recv := receiverName(fd)
			if recv == "" || recv == "_" {
				continue
			}
			field := firstMutation(fd.Body, recv, mutexes)
			if field == "" {
				continue
			}
			if docMentionsLocking(fd.Doc, mutexes) {
				continue
			}
			pass.Reportf(fd.Pos(),
				"%s mutates %s.%s on a mutex-guarded struct but its doc comment does not mention the locking (say which lock guards the write, e.g. %q)",
				fd.Name.Name, recv, field, "takes "+recv+"."+mutexes[0])
		}
	}
	return nil
}

// receiverMutexFields returns the names of sync.Mutex/RWMutex fields on
// the method's receiver struct (nil when the receiver is not a pointer
// to such a struct).
func receiverMutexFields(pass *analysis.Pass, fd *ast.FuncDecl) []string {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isSyncMutex(f.Type()) {
			out = append(out, f.Name())
		}
	}
	return out
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func receiverName(fd *ast.FuncDecl) string {
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return ""
	}
	return names[0].Name
}

// firstMutation returns the name of the first receiver-rooted field the
// body assigns to, writes through as a map/slice element, or deletes
// from — "" when the method never mutates receiver state. Writes to the
// mutex fields themselves are ignored.
func firstMutation(body *ast.BlockStmt, recv string, mutexes []string) string {
	skip := make(map[string]bool, len(mutexes))
	for _, m := range mutexes {
		skip[m] = true
	}
	var found string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if f := rootedField(lhs, recv); f != "" && !skip[f] {
					found = f
					return false
				}
			}
		case *ast.IncDecStmt:
			if f := rootedField(n.X, recv); f != "" && !skip[f] {
				found = f
				return false
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if f := rootedField(n.Args[0], recv); f != "" && !skip[f] {
					found = f
					return false
				}
			}
		}
		return true
	})
	return found
}

// rootedField resolves expressions like recv.f, recv.f[k], recv.f.g to
// the first field name hanging off the receiver ("" otherwise).
func rootedField(e ast.Expr, recv string) string {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && id.Name == recv {
				return x.Sel.Name
			}
			e = x.X
		default:
			return ""
		}
	}
}

// docMentionsLocking accepts a doc comment that names a mutex field (as
// a whole word — "mu" must not hide inside "mutates") or speaks about
// locking at all.
func docMentionsLocking(doc *ast.CommentGroup, mutexes []string) bool {
	if doc == nil {
		return false
	}
	text := strings.ToLower(doc.Text())
	if strings.Contains(text, "lock") {
		return true
	}
	for _, m := range mutexes {
		re := regexp.MustCompile(`\b` + regexp.QuoteMeta(strings.ToLower(m)) + `\b`)
		if re.MatchString(text) {
			return true
		}
	}
	return false
}
