// Package bayesopt implements Bayesian optimization over small integer
// search spaces (paper §3.6): a Gaussian-process surrogate with an RBF
// kernel models the objective, and the next configuration to evaluate
// maximizes expected improvement. The paper uses it to select the CDT
// hyper-parameters (ω, δ) maximizing F1 or F(h) = F1·Q(R).
//
// The optimizer is deterministic given its seed, caches objective values
// (the spaces are small integer grids, so revisiting a configuration
// would waste an expensive CDT training run), and exposes grid and random
// search for comparison.
package bayesopt

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"cdt/internal/telemetry"
)

// Param is one integer dimension of the search space.
type Param struct {
	// Name identifies the dimension in reports ("omega", "delta").
	Name string
	// Min and Max bound the dimension inclusively.
	Min, Max int
}

// Space is the full search space.
type Space []Param

// Validate checks the space is non-empty with sane bounds.
func (s Space) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("bayesopt: empty search space")
	}
	for _, p := range s {
		if p.Max < p.Min {
			return fmt.Errorf("bayesopt: param %q has max %d < min %d", p.Name, p.Max, p.Min)
		}
	}
	return nil
}

// Size returns the number of grid cells in the space.
func (s Space) Size() int {
	n := 1
	for _, p := range s {
		n *= p.Max - p.Min + 1
	}
	return n
}

// normalize maps a configuration to the unit hypercube for the GP kernel.
func (s Space) normalize(x []int) []float64 {
	out := make([]float64, len(s))
	for i, p := range s {
		span := p.Max - p.Min
		if span == 0 {
			out[i] = 0
			continue
		}
		out[i] = float64(x[i]-p.Min) / float64(span)
	}
	return out
}

// enumerate lists every grid cell in deterministic order.
func (s Space) enumerate() [][]int {
	out := make([][]int, 0, s.Size())
	cur := make([]int, len(s))
	for i, p := range s {
		cur[i] = p.Min
	}
	for {
		out = append(out, append([]int(nil), cur...))
		i := len(s) - 1
		for ; i >= 0; i-- {
			cur[i]++
			if cur[i] <= s[i].Max {
				break
			}
			cur[i] = s[i].Min
		}
		if i < 0 {
			return out
		}
	}
}

// Objective evaluates a configuration and returns the value to maximize.
type Objective func(x []int) float64

// Sample records one evaluated configuration. Elapsed is the wall-clock
// cost of the objective call that produced Y — observability payload
// only, never an input to the search (the run stays bit-identical
// whatever the clock says). Clock reads go through telemetry.Stopwatch;
// cdtlint's detfloat analyzer keeps direct time.Now out of this package.
type Sample struct {
	X       []int
	Y       float64
	Elapsed time.Duration
}

// Result reports an optimization run.
type Result struct {
	// Best is the configuration with the highest observed objective.
	Best []int
	// BestValue is the objective at Best.
	BestValue float64
	// History lists every evaluation in order.
	History []Sample
	// Evaluations counts distinct objective calls (cache misses).
	Evaluations int
}

// Options tunes the optimizer. The zero value selects sensible defaults.
type Options struct {
	// InitPoints is the number of random configurations evaluated before
	// the surrogate drives the search (default 5).
	InitPoints int
	// Iterations is the number of surrogate-guided evaluations
	// (default 25).
	Iterations int
	// Seed makes the run reproducible.
	Seed int64
	// LengthScale is the RBF kernel length scale in normalized
	// coordinates. Zero (the default) selects it automatically per refit
	// by maximizing the GP's log marginal likelihood.
	LengthScale float64
	// Noise is the assumed observation-noise standard deviation
	// (default 1e-3).
	Noise float64
	// Xi is the expected-improvement exploration margin (default 0.01).
	Xi float64
	// Acquisition selects the acquisition function (default EI).
	Acquisition Acquisition
	// Parallelism bounds a worker pool that evaluates the random initial
	// design concurrently; the initial points are independent of each
	// other, unlike the surrogate-guided iterations, which stay strictly
	// sequential. Values <= 1 evaluate sequentially. The objective must be
	// safe for concurrent calls when Parallelism > 1. Results (history
	// order, best, evaluation count) are identical at any setting.
	Parallelism int
	// Trace, when non-nil, receives each evaluated sample as the search
	// runs — one call per distinct configuration (memoized repeats do not
	// re-fire), in history order even when the initial design fans out in
	// parallel. The callback runs on the optimizer goroutine; a slow
	// Trace slows the search, not its results.
	Trace func(Sample)
}

// Acquisition selects how the surrogate scores unevaluated cells.
type Acquisition int

const (
	// EI is expected improvement over the incumbent (the default).
	EI Acquisition = iota
	// UCB is the upper confidence bound μ + κσ with κ = 2, a more
	// exploratory alternative (ablated in the benchmarks).
	UCB
)

// String names the acquisition for reports.
func (a Acquisition) String() string {
	if a == UCB {
		return "ucb"
	}
	return "ei"
}

func (o Options) withDefaults() Options {
	if o.InitPoints <= 0 {
		o.InitPoints = 5
	}
	if o.Iterations <= 0 {
		o.Iterations = 25
	}
	if o.Noise <= 0 {
		o.Noise = 1e-3
	}
	if o.Xi <= 0 {
		o.Xi = 0.01
	}
	return o
}

// Maximize runs Bayesian optimization of f over the space and returns the
// best configuration found. Objective values are cached per grid cell, so
// f is called at most once per distinct configuration.
func Maximize(f Objective, space Space, opts Options) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	grid := space.enumerate()
	cache := make(map[string]float64, len(grid))
	var res Result
	// record stores an objective value without re-invoking f; eval is the
	// memoized sequential path built on it.
	record := func(x []int, y float64, elapsed time.Duration) {
		cache[key(x)] = y
		res.Evaluations++
		s := Sample{X: append([]int(nil), x...), Y: y, Elapsed: elapsed}
		res.History = append(res.History, s)
		if res.Best == nil || y > res.BestValue {
			res.Best = append([]int(nil), x...)
			res.BestValue = y
		}
		if opts.Trace != nil {
			opts.Trace(s)
		}
	}
	eval := func(x []int) float64 {
		if y, ok := cache[key(x)]; ok {
			return y
		}
		sw := telemetry.NewStopwatch()
		y := f(x)
		record(x, y, sw.Elapsed())
		return y
	}

	// Initial design: random distinct cells (or the whole grid if it is
	// smaller than the requested design). The cells are distinct and
	// mutually independent, so with Parallelism > 1 they fan out over a
	// bounded worker pool; results are recorded in design order either
	// way, keeping the run bit-identical to a sequential one.
	perm := rng.Perm(len(grid))
	init := opts.InitPoints
	if init > len(grid) {
		init = len(grid)
	}
	if workers := opts.Parallelism; workers > 1 && init > 1 {
		if workers > init {
			workers = init
		}
		ys := make([]float64, init)
		els := make([]time.Duration, init)
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := 0; i < init; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				sw := telemetry.NewStopwatch()
				ys[i] = f(grid[perm[i]])
				els[i] = sw.Elapsed()
			}(i)
		}
		wg.Wait()
		for i := 0; i < init; i++ {
			record(grid[perm[i]], ys[i], els[i])
		}
	} else {
		for i := 0; i < init; i++ {
			eval(grid[perm[i]])
		}
	}

	budget := opts.Iterations
	if budget+init > len(grid) {
		budget = len(grid) - init
	}
	for it := 0; it < budget; it++ {
		xs := make([][]float64, 0, len(res.History))
		ys := make([]float64, 0, len(res.History))
		for _, s := range res.History {
			xs = append(xs, space.normalize(s.X))
			ys = append(ys, s.Y)
		}
		var surrogate *gp
		if opts.LengthScale > 0 {
			surrogate = fitGP(xs, ys, opts.LengthScale, opts.Noise)
		} else {
			surrogate = fitGPAuto(xs, ys, opts.Noise)
		}
		// Maximize EI over unevaluated grid cells (the spaces here are
		// small enough for exhaustive scoring, which makes the
		// acquisition step exact).
		bestEI := math.Inf(-1)
		var next []int
		for _, x := range grid {
			if _, seen := cache[key(x)]; seen {
				continue
			}
			var score float64
			if opts.Acquisition == UCB {
				score = surrogate.upperConfidenceBound(space.normalize(x), 2)
			} else {
				score = surrogate.expectedImprovement(space.normalize(x), res.BestValue, opts.Xi)
			}
			if score > bestEI {
				bestEI = score
				next = x
			}
		}
		if next == nil {
			break // grid exhausted
		}
		eval(next)
	}
	return res, nil
}

// GridSearch exhaustively evaluates every cell — the expensive baseline
// §3.6 contrasts Bayesian optimization with.
func GridSearch(f Objective, space Space) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	for _, x := range space.enumerate() {
		y := f(x)
		res.Evaluations++
		res.History = append(res.History, Sample{X: append([]int(nil), x...), Y: y})
		if res.Best == nil || y > res.BestValue {
			res.Best = append([]int(nil), x...)
			res.BestValue = y
		}
	}
	return res, nil
}

// RandomSearch evaluates n random cells (with replacement avoided through
// the cache) — the cheap baseline of §3.6.
func RandomSearch(f Objective, space Space, n int, seed int64) (Result, error) {
	if err := space.Validate(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	grid := space.enumerate()
	if n > len(grid) {
		n = len(grid)
	}
	perm := rng.Perm(len(grid))
	var res Result
	for i := 0; i < n; i++ {
		x := grid[perm[i]]
		y := f(x)
		res.Evaluations++
		res.History = append(res.History, Sample{X: append([]int(nil), x...), Y: y})
		if res.Best == nil || y > res.BestValue {
			res.Best = append([]int(nil), x...)
			res.BestValue = y
		}
	}
	return res, nil
}

func key(x []int) string {
	b := make([]byte, 0, len(x)*3)
	for _, v := range x {
		b = append(b, byte(v), byte(v>>8), ',')
	}
	return string(b)
}
