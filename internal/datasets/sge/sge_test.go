package sge

import (
	"math"
	"testing"
)

func TestCalorieShape(t *testing.T) {
	d := Calorie(CalorieOptions{Sensors: 3, Days: 300, Seed: 1})
	if len(d.Series) != 3 {
		t.Fatalf("got %d series", len(d.Series))
	}
	for _, s := range d.Series {
		if s.Len() != 300 {
			t.Errorf("series %s has %d points", s.Name, s.Len())
		}
		if !s.Labeled() {
			t.Errorf("series %s unlabeled", s.Name)
		}
	}
	if d.Name != "SGE_Calorie" {
		t.Errorf("name = %q", d.Name)
	}
}

func TestCalorieAnomalyRate(t *testing.T) {
	d := Calorie(CalorieOptions{Sensors: 5, Days: 500, AnomalyRate: 0.02, Seed: 2})
	rate := d.AnomalyRate()
	if math.Abs(rate-0.02) > 0.01 {
		t.Errorf("anomaly rate = %v, want ≈ 0.02", rate)
	}
}

func TestCalorieHasNegativePeaks(t *testing.T) {
	// Negative consumption is the paper's flagship anomaly family; the
	// generator must produce some at reasonable scale.
	d := Calorie(CalorieOptions{Sensors: 10, Days: 500, Seed: 3})
	negatives := 0
	for _, s := range d.Series {
		for i, v := range s.Values {
			if v < 0 {
				negatives++
				if !s.Anomalies[i] {
					t.Fatalf("negative value at %s[%d] not labeled anomalous", s.Name, i)
				}
			}
		}
	}
	if negatives == 0 {
		t.Error("no negative peaks generated across 10 sensors")
	}
}

func TestCalorieConstantRuns(t *testing.T) {
	d := Calorie(CalorieOptions{Sensors: 10, Days: 600, Seed: 4})
	foundRun := false
	for _, s := range d.Series {
		run := 0
		for i := 1; i < s.Len(); i++ {
			if s.Values[i] == s.Values[i-1] && s.Anomalies[i] {
				run++
				if run >= 3 {
					foundRun = true
				}
			} else {
				run = 0
			}
		}
	}
	if !foundRun {
		t.Error("no constant-run anomalies generated")
	}
}

func TestCalorieDeterministic(t *testing.T) {
	a := Calorie(CalorieOptions{Seed: 7})
	b := Calorie(CalorieOptions{Seed: 7})
	for i := range a.Series {
		for j := range a.Series[i].Values {
			if a.Series[i].Values[j] != b.Series[i].Values[j] {
				t.Fatal("same seed, different values")
			}
		}
	}
	c := Calorie(CalorieOptions{Seed: 8})
	same := true
	for j := range a.Series[0].Values {
		if a.Series[0].Values[j] != c.Series[0].Values[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestElectricityShape(t *testing.T) {
	d := Electricity(ElectricityOptions{Hours: 24 * 200, Seed: 1})
	if len(d.Series) != 1 {
		t.Fatalf("got %d series", len(d.Series))
	}
	s := d.Series[0]
	if s.Len() != 24*200 {
		t.Errorf("len = %d", s.Len())
	}
	if d.Name != "SGE_Electricity" {
		t.Errorf("name = %q", d.Name)
	}
	if s.AnomalyCount() == 0 {
		t.Error("no anomalies")
	}
}

func TestElectricityDailySeasonality(t *testing.T) {
	d := Electricity(ElectricityOptions{Hours: 24 * 100, Seed: 2})
	s := d.Series[0]
	// Average consumption by hour-of-day must show a clear daily cycle.
	hourly := make([]float64, 24)
	counts := make([]int, 24)
	for i, v := range s.Values {
		if s.Anomalies[i] {
			continue
		}
		hourly[i%24] += v
		counts[i%24]++
	}
	min, max := math.Inf(1), math.Inf(-1)
	for h := range hourly {
		avg := hourly[h] / float64(counts[h])
		if avg < min {
			min = avg
		}
		if avg > max {
			max = avg
		}
	}
	if max/min < 1.3 {
		t.Errorf("daily cycle too flat: max/min = %v", max/min)
	}
}

func TestAnomaliesAvoidSeriesEdges(t *testing.T) {
	d := Calorie(CalorieOptions{Sensors: 10, Days: 200, Seed: 5})
	for _, s := range d.Series {
		if s.Anomalies[0] || s.Anomalies[1] || s.Anomalies[s.Len()-1] || s.Anomalies[s.Len()-2] {
			t.Errorf("series %s has anomalies at the unlabelable edges", s.Name)
		}
	}
}

func TestAnomalyKindString(t *testing.T) {
	names := map[AnomalyKind]string{
		NegativePeak: "negative-peak",
		PositivePeak: "positive-peak",
		Collective:   "collective",
		ConstantRun:  "constant-run",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}
