package cdt

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

// fireMatrix builds a fired/truth pair from compact rows: each row is
// the member indicators followed by the label.
func fireMatrix(rows [][]bool) (fired [][]bool, truth []bool) {
	for _, r := range rows {
		fired = append(fired, r[:len(r)-1])
		truth = append(truth, r[len(r)-1])
	}
	return fired, truth
}

func TestFitFusionWeightsSeparatesSignalFromNoise(t *testing.T) {
	// Member 0 tracks the truth exactly; member 1 fires at random with no
	// relation to it. The fit must weight member 0 at the 1.0 ceiling and
	// member 1 strictly below, and the resulting rule must reproduce the
	// labels on the training matrix.
	fired, truth := fireMatrix([][]bool{
		{true, false, true},
		{true, true, true},
		{false, true, false},
		{false, false, false},
		{true, false, true},
		{false, true, false},
		{true, true, true},
		{false, false, false},
	})
	fu, err := FitFusionWeights(fired, truth)
	if err != nil {
		t.Fatal(err)
	}
	if fu.Policy != FuseWeighted {
		t.Fatalf("policy = %v", fu.Policy)
	}
	if err := fu.Validate("test", 2); err != nil {
		t.Fatalf("learned fusion invalid: %v", err)
	}
	if fu.Weights[0] != 1 {
		t.Errorf("signal weight = %v, want the normalized ceiling 1", fu.Weights[0])
	}
	if fu.Weights[1] >= fu.Weights[0] {
		t.Errorf("noise weight %v not below signal weight %v", fu.Weights[1], fu.Weights[0])
	}
	for i, row := range fired {
		if got := fu.Decide(row); got != truth[i] {
			t.Errorf("sample %d: Decide = %v, want %v (fusion %+v)", i, got, truth[i], fu)
		}
	}
}

func TestFitFusionWeightsDeterministic(t *testing.T) {
	fired, truth := fireMatrix([][]bool{
		{true, false, true, true},
		{false, true, false, false},
		{true, true, false, true},
		{false, false, true, false},
		{true, false, false, true},
	})
	first, err := FitFusionWeights(fired, truth)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		again, err := FitFusionWeights(fired, truth)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("trial %d: refit diverged: %+v vs %+v", trial, again, first)
		}
	}
}

func TestFitFusionWeightsDegenerateFallsBackToUniform(t *testing.T) {
	// All-normal labels give the fit nothing to separate; the fallback
	// must be the uniform FuseAny-shaped rule, never an all-zero vector
	// (which Validate rejects).
	fired, truth := fireMatrix([][]bool{
		{true, false, false},
		{false, true, false},
		{false, false, false},
	})
	fu, err := FitFusionWeights(fired, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fu.Weights, []float64{1, 1}) || fu.Threshold != 1 {
		t.Errorf("degenerate fit = %+v, want uniform weights with threshold 1", fu)
	}
	if err := fu.Validate("test", 2); err != nil {
		t.Errorf("fallback fusion invalid: %v", err)
	}
}

func TestFitFusionKPicksBestQuorum(t *testing.T) {
	// Single members fire on normals too; only two-member agreement marks
	// the anomalies. k=2 scores perfectly, k=1 takes false positives.
	fired, truth := fireMatrix([][]bool{
		{true, true, true},
		{true, false, false},
		{false, true, false},
		{true, true, true},
		{false, false, false},
	})
	fu, err := FitFusionK(fired, truth)
	if err != nil {
		t.Fatal(err)
	}
	if fu.Policy != FuseKOfN || fu.K != 2 {
		t.Fatalf("fit = %+v, want k=2", fu)
	}
	// Ties keep the smaller, more sensitive quorum: with one member and a
	// perfect signal, k=1 wins outright.
	solo, err := FitFusionK([][]bool{{true}, {false}}, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if solo.K != 1 {
		t.Errorf("solo fit k = %d, want 1", solo.K)
	}
}

func TestFitFusionSampleValidation(t *testing.T) {
	cases := []struct {
		name  string
		fired [][]bool
		truth []bool
	}{
		{"no samples", nil, nil},
		{"label count", [][]bool{{true}}, []bool{true, false}},
		{"no members", [][]bool{{}}, []bool{true}},
		{"ragged rows", [][]bool{{true, false}, {true}}, []bool{true, false}},
	}
	for _, tc := range cases {
		if _, err := FitFusionWeights(tc.fired, tc.truth); err == nil {
			t.Errorf("FitFusionWeights %s: accepted", tc.name)
		}
		if _, err := FitFusionK(tc.fired, tc.truth); err == nil {
			t.Errorf("FitFusionK %s: accepted", tc.name)
		}
	}
}

func TestChainTransformComposes(t *testing.T) {
	dims := []*Series{
		NewSeries("temp", []float64{0, 0, 0, 0}),
		NewSeries("pressure", []float64{1, 3, 5, 7}),
	}
	chain := ChainTransform{DimTransform{Dim: 1}, ResampleTransform{Factor: 2, Aggregator: "max"}}
	got, err := chain.Apply(dims)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Values, []float64{3, 7}) {
		t.Errorf("chained values = %v, want [3 7]", got.Values)
	}
	if s := chain.String(); s != "dim(1)|resample(2,max)" {
		t.Errorf("String() = %q", s)
	}
	if _, err := (ChainTransform{}).Apply(dims); err == nil {
		t.Error("empty chain accepted")
	}
	// A failing stage surfaces its own error.
	bad := ChainTransform{DimTransform{Dim: 5}, ResampleTransform{Factor: 2}}
	if _, err := bad.Apply(dims); err == nil || !strings.Contains(err.Error(), "dimension 5") {
		t.Errorf("out-of-range stage error = %v", err)
	}
}

// TestFusionValidateNamesContext: a rejected fusion names whose fusion
// is broken — the model store's audit log and the CLI relay these
// verbatim, so "3 weights for 2 members" alone is not actionable.
func TestFusionValidateNamesContext(t *testing.T) {
	cases := []struct {
		name string
		f    Fusion
		want string
	}{
		{
			"quorum range",
			Fusion{Policy: FuseKOfN, K: 5},
			"pyramid scales [1 2]: fusion quorum k=5 outside [1,2]",
		},
		{
			"weight arity",
			Fusion{Policy: FuseWeighted, Weights: []float64{1, 1, 1}, Threshold: 1},
			"pyramid scales [1 2]: 3 fusion weights for 2 members",
		},
		{
			"all-zero weights",
			Fusion{Policy: FuseWeighted, Weights: []float64{0, 0}, Threshold: 1},
			"pyramid scales [1 2]: all 2 fusion weights are zero",
		},
		{
			"zero threshold",
			Fusion{Policy: FuseWeighted, Threshold: 0},
			"pyramid scales [1 2]: fusion threshold 0",
		},
	}
	for _, tc := range cases {
		err := tc.f.Validate("pyramid scales [1 2]", 2)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
	// The ensemble surface threads member names into the context.
	ens := &Ensemble{
		Members: []Member{
			{Name: "temp", Model: &Model{}, Transform: DimTransform{Dim: 0}},
			{Name: "pressure", Model: &Model{}, Transform: DimTransform{Dim: 1}},
		},
		Fuse: Fusion{Policy: FuseKOfN, K: 9},
	}
	if err := ens.Validate(); err == nil || !strings.Contains(err.Error(), "ensemble[temp,pressure]") {
		t.Errorf("ensemble validate error = %v, want the member names in context", err)
	}
}

// trainedMultiPyramid trains a weighted pyramid over dimension 1 of a
// two-dimensional feed and learns its fusion weights — the end-to-end
// shape `cdt train -scales 1,2 -dim 1 -fusion weighted` drives.
func trainedMultiPyramid(t *testing.T) (*PyramidModel, *MultiSeries) {
	t.Helper()
	train := makeMultiFeed("train", 400, []int{60, 150, 250, 340}, 1, 11)
	cfg := PyramidConfig{
		Factors:    []int{1, 2},
		Aggregator: "max",
		Fusion:     Fusion{Policy: FuseWeighted, Threshold: 1},
		Dim:        1,
	}
	pm, err := FitPyramidMulti([]*MultiSeries{train}, Options{Omega: 5, Delta: 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.TrainFusionMulti([]*MultiSeries{train}); err != nil {
		t.Fatal(err)
	}
	return pm, train
}

func TestPyramidMultiTrainsWeightedFusionEndToEnd(t *testing.T) {
	pm, train := trainedMultiPyramid(t)
	fu := pm.Config.Fusion
	if fu.Policy != FuseWeighted || len(fu.Weights) != 2 {
		t.Fatalf("learned fusion = %+v", fu)
	}
	if err := pm.Config.Validate(); err != nil {
		t.Fatalf("learned config invalid: %v", err)
	}
	// Point-level scoring: a fired window covers ω points around each
	// one-point spike, so recall is the meaningful gate here, not F1.
	rep, err := pm.EvaluateMulti([]*MultiSeries{train})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Confusion.TP < 3 || rep.F1 <= 0 {
		t.Errorf("training confusion = %+v (F1 %v) after learning weights", rep.Confusion, rep.F1)
	}
	// The member transforms select dimension 1 before resampling.
	for i, f := range pm.Scales() {
		want := "dim(1)|resample("
		if got := pm.ens.Members[i].Transform.String(); !strings.HasPrefix(got, want) {
			t.Errorf("scale x%d transform = %q, want prefix %q", f, got, want)
		}
	}
	// Flags land on the annotated points of the anomalous dimension.
	flags, err := pm.PointFlagsMulti(train)
	if err != nil {
		t.Fatal(err)
	}
	hit := 0
	for p, anom := range train.Anomalies {
		if anom && flags[p] {
			hit++
		}
	}
	if hit < 3 {
		t.Errorf("only %d/4 annotated points flagged", hit)
	}
	// Refitting the same corpus reproduces the same weights bit for bit.
	again, _ := trainedMultiPyramid(t)
	if !reflect.DeepEqual(again.Config.Fusion, fu) {
		t.Errorf("refit fusion diverged: %+v vs %+v", again.Config.Fusion, fu)
	}
}

func TestPyramidDimWeightedPersistRoundTrip(t *testing.T) {
	pm, train := trainedMultiPyramid(t)
	var first bytes.Buffer
	if err := pm.Save(&first); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadPyramid(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.Config, pm.Config) {
		t.Errorf("config diverged: %+v vs %+v", restored.Config, pm.Config)
	}
	want, err := pm.DetectPyramidMulti(train)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.DetectPyramidMulti(train)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("multivariate detections diverged after reload")
	}
	var second bytes.Buffer
	if err := restored.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("save/load/save not stable for a dim+weighted pyramid")
	}
}

func TestPyramidDefaultDocumentOmitsCompositionFields(t *testing.T) {
	// A univariate pyramid's document must not mention the dim field at
	// all: pre-composition artifacts stay byte-stable.
	pm, _ := trainedPyramid(t)
	var buf bytes.Buffer
	if err := pm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"dim"`) {
		t.Error("default pyramid document carries a dim field")
	}
	if strings.Contains(buf.String(), `"weights"`) {
		t.Error("default pyramid document carries fusion weights")
	}
}

func TestLoadPyramidRejectsBadComposedDocuments(t *testing.T) {
	scale := `{"factor":1,"model":{"version":1,"options":{"omega":3,"delta":1},"tree":{"normal":1,"anomaly":0}}}`
	cases := []struct {
		name, doc, wantErr string
	}{
		{
			"negative dim",
			`{"version":1,"kind":"pyramid","fusion":{"policy":"any"},"dim":-1,"scales":[` + scale + `]}`,
			"dim -1",
		},
		{
			"weight arity",
			`{"version":1,"kind":"pyramid","fusion":{"policy":"weighted","weights":[1,1],"threshold":1},"scales":[` + scale + `]}`,
			"2 fusion weights for 1 members",
		},
		{
			"all-zero weights",
			`{"version":1,"kind":"pyramid","fusion":{"policy":"weighted","weights":[0],"threshold":1},"scales":[` + scale + `]}`,
			"fusion weights are zero",
		},
		{
			"zero threshold",
			`{"version":1,"kind":"pyramid","fusion":{"policy":"weighted","threshold":0},"scales":[` + scale + `]}`,
			"threshold 0",
		},
	}
	for _, tc := range cases {
		_, err := LoadPyramid(strings.NewReader(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestMultiModelChainTransformDifferential pins ChainTransform as a
// drop-in for the transforms it composes: a MultiModel whose members
// select their dimension through a one-stage chain must fuse
// bit-identically to the plain DimTransform path.
func TestMultiModelChainTransformDifferential(t *testing.T) {
	train := makeMultiFeed("train", 400, []int{60, 150, 250, 340}, 1, 3)
	mm, err := FitMulti([]*MultiSeries{train}, Options{Omega: 5, Delta: 2}, CombineAny)
	if err != nil {
		t.Fatal(err)
	}
	probe := makeMultiFeed("probe", 400, []int{80, 200, 320}, 1, 4)
	want, err := mm.DetectWindows(probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mm.ens.Members {
		mm.ens.Members[i].Transform = ChainTransform{DimTransform{Dim: i}}
	}
	got, err := mm.DetectWindows(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("chained dimension selection diverged from the plain path")
	}
}

// rangesOf extracts the [start, end] point ranges from explained
// detections, in report order.
func rangesOf(dets []WindowDetection) [][2]int {
	out := make([][2]int, len(dets))
	for i, d := range dets {
		out[i] = [2]int{d.Start, d.End}
	}
	return out
}

// TestScoreRangesMatchesDetectExplained pins the lean shadow-scoring
// surface to the explained path it bypasses: identical detection ranges
// for plain models and for pyramids under both the default and the
// weighted fusion policy, with per-scale counts consistent with the
// explained per-scale breakdowns.
func TestScoreRangesMatchesDetectExplained(t *testing.T) {
	assertSame := func(name string, art Artifact, probe *Series) RangeStats {
		t.Helper()
		st, err := art.ScoreRanges(context.Background(), probe)
		if err != nil {
			t.Fatalf("%s: ScoreRanges: %v", name, err)
		}
		dets, err := art.DetectExplained(context.Background(), probe)
		if err != nil {
			t.Fatalf("%s: DetectExplained: %v", name, err)
		}
		if len(dets) == 0 {
			t.Fatalf("%s: probe produced no detections; the comparison is vacuous", name)
		}
		if want := rangesOf(dets); !reflect.DeepEqual(st.Ranges, want) {
			t.Fatalf("%s: ScoreRanges = %v, DetectExplained ranges = %v", name, st.Ranges, want)
		}
		return st
	}

	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	plainProbe := spikySeries("probe", 300, []int{40, 170, 260}, 5)
	if st := assertSame("plain", model, plainProbe); st.ScaleFired != nil || st.ScaleWindows != nil {
		t.Fatalf("plain: scale stats = %v / %v, want nil", st.ScaleFired, st.ScaleWindows)
	}

	pm, _ := trainedPyramid(t)
	probe := plateauSeries("probe", 480, []int{60, 260}, 300, 40, 11)
	st := assertSame("pyramid/any", pm, probe)
	// Under FuseAny every fired scale window reaches a fused detection's
	// breakdown, so the lean pre-fusion counts must agree with the
	// distinct (scale, window) pairs the explained path reports.
	dets, err := pm.DetectPyramid(probe)
	if err != nil {
		t.Fatal(err)
	}
	fired := make([]map[int]bool, pm.NumScales())
	for i := range fired {
		fired[i] = make(map[int]bool)
	}
	for _, d := range dets {
		for _, sd := range d.Scales {
			for i, f := range pm.Scales() {
				if f == sd.Factor {
					fired[i][sd.Window] = true
				}
			}
		}
	}
	for i := range fired {
		if st.ScaleFired[i] != len(fired[i]) {
			t.Fatalf("scale x%d: ScoreRanges fired %d windows, explained breakdown has %d",
				pm.Scales()[i], st.ScaleFired[i], len(fired[i]))
		}
		if st.ScaleFired[i] == 0 || st.ScaleWindows[i] < st.ScaleFired[i] {
			t.Fatalf("scale x%d: fired %d of %d windows, want firings within swept",
				pm.Scales()[i], st.ScaleFired[i], st.ScaleWindows[i])
		}
	}

	// Weighted fusion exercises the shared fusePoints policy path.
	train := plateauSeries("train", 480, []int{50, 150, 250}, 350, 40, 7)
	wpm, err := FitPyramid([]*Series{train}, Options{Omega: 5, Delta: 2}, PyramidConfig{
		Factors:    []int{1, 4},
		Aggregator: "max",
		Fusion:     Fusion{Policy: FuseWeighted, Threshold: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wpm.TrainFusion([]*Series{train}); err != nil {
		t.Fatal(err)
	}
	assertSame("pyramid/weighted", wpm, train)

	// A dimension-scoring pyramid cannot score a univariate probe; the
	// lean path must fail exactly where the explained path does, so a
	// shadowed candidate records the same hard disagreements either way.
	mpm, _ := trainedMultiPyramid(t)
	if _, err := mpm.ScoreRanges(context.Background(), probe); err == nil {
		t.Fatal("ScoreRanges accepted a univariate probe for a dim-scoring pyramid")
	}
}
