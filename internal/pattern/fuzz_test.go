package pattern

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzParseLabel exercises the label parser with arbitrary strings: it
// must never panic, and anything it accepts must round-trip.
func FuzzParseLabel(f *testing.F) {
	cfg := NewConfig(3)
	for _, l := range cfg.Alphabet() {
		f.Add(cfg.LabelName(l))
	}
	f.Add("")
	f.Add("PP[")
	f.Add("PP[L,H]")
	f.Add("XX[P99,N1]")
	f.Add("PN[-H,-L]extra")
	f.Fuzz(func(t *testing.T, s string) {
		l, err := cfg.ParseLabel(s)
		if err != nil {
			return
		}
		// Accepted labels must render back to something parseable to the
		// same value.
		round, err := cfg.ParseLabel(cfg.LabelName(l))
		if err != nil {
			t.Fatalf("rendered label %q failed to parse: %v", cfg.LabelName(l), err)
		}
		if round != l {
			t.Fatalf("round trip changed %v to %v", l, round)
		}
	})
}

// FuzzClassify checks the interval classifier never panics and stays in
// range for arbitrary inputs.
func FuzzClassify(f *testing.F) {
	f.Add(0.0, uint8(2))
	f.Add(0.5, uint8(1))
	f.Add(-1.5, uint8(21))
	f.Fuzz(func(t *testing.T, diff float64, deltaRaw uint8) {
		delta := int(deltaRaw%21) + 1
		cfg := NewConfig(delta)
		iv := cfg.Classify(diff)
		if iv < Interval(-delta) || iv > Interval(delta) {
			t.Fatalf("Classify(%v) with delta %d = %d out of range", diff, delta, iv)
		}
	})
}

// FuzzLabelSeries feeds arbitrary finite series through the labeler: it
// must never panic, must produce exactly len(values)-2 labels on
// success, and every emitted label must be in the configured alphabet.
func FuzzLabelSeries(f *testing.F) {
	f.Add(uint8(2), []byte{})
	f.Add(uint8(2), mustBytes(1, 2, 3))
	f.Add(uint8(5), mustBytes(0, 0, 0, 0))
	f.Add(uint8(1), mustBytes(-1.5, 3.25, -0.5, 7, 7))
	f.Fuzz(func(t *testing.T, deltaRaw uint8, raw []byte) {
		delta := int(deltaRaw%21) + 1
		cfg := NewConfig(delta)
		values := make([]float64, 0, len(raw)/8)
		for i := 0; i+8 <= len(raw); i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw[i : i+8]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return // contract covers finite inputs only
			}
			values = append(values, v)
		}
		labels, err := cfg.LabelSeries(values)
		if err != nil {
			if len(values) >= 3 {
				t.Fatalf("LabelSeries rejected a finite series of length %d: %v", len(values), err)
			}
			return
		}
		if len(labels) != len(values)-2 {
			t.Fatalf("LabelSeries returned %d labels for %d values, want %d", len(labels), len(values), len(values)-2)
		}
		for i, l := range labels {
			if !cfg.Valid(l) {
				t.Fatalf("label %d (%s) is outside the delta=%d alphabet", i, cfg.LabelName(l), delta)
			}
		}
	})
}

// mustBytes encodes float64s in the little-endian layout FuzzLabelSeries
// decodes.
func mustBytes(vs ...float64) []byte {
	out := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}
