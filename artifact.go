package cdt

// Artifact is the deployable-model surface: the operations the serving
// and storage layers (internal/modelstore, internal/server, cmd/cdt)
// need without knowing whether they hold a single-scale Model or a
// resolution PyramidModel. Both implement it; LoadAny dispatches on the
// persisted document's kind.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
)

// ArtifactKind names a deployable artifact flavor.
const (
	// KindModel is a single-scale CDT (the paper's model).
	KindModel = "model"
	// KindPyramid is a resolution pyramid.
	KindPyramid = "pyramid"
)

// ArtifactInfo is the flat summary registries and CLIs list.
type ArtifactInfo struct {
	// Kind is KindModel or KindPyramid.
	Kind string
	// Omega and Delta are the (shared) training hyper-parameters.
	Omega, Delta int
	// NumRules is the total rule-predicate count (summed over scales).
	NumRules int
	// Scales holds the pyramid's downsample factors; nil for plain
	// models.
	Scales []int
	// ScaleRules counts the rule predicates per scale, aligned with
	// Scales; nil for plain models. The serving layer's per-rule
	// attribution uses it to assign each (scale, rule-index) pair a
	// stable flat metric label without rendering rule text.
	ScaleRules []int
	// Fusion renders a pyramid's fusion policy with its parameters
	// ("any", "2-of-n", "weighted(>=0.8)"); empty for plain models.
	Fusion string
	// FusionWeights holds a weighted pyramid's learned (or hand-set)
	// per-scale weights, aligned with Scales; nil otherwise.
	FusionWeights []float64
}

// RangeStats is the lean scoring result shadow evaluation consumes:
// detection point ranges plus, for pyramids, per-scale fire counts.
// Candidate scoring is pure overhead while a shadow is active, so this
// surface carries only what range comparison reads — no rule-text
// rendering, no per-window explanation assembly.
type RangeStats struct {
	// Ranges holds one [start, end] point range per detection,
	// ascending — exactly the ranges DetectExplained reports.
	Ranges [][2]int
	// ScaleFired and ScaleWindows count, per pyramid scale (aligned
	// with ArtifactInfo.Scales), the windows that fired and the windows
	// swept at that scale. Nil for plain models.
	ScaleFired, ScaleWindows []int
}

// StreamHandle is the online-detector surface shared by Stream and
// PyramidStream: the session layer drives either through it.
type StreamHandle interface {
	// Push consumes the next reading and returns the detections that
	// became decidable with it.
	Push(value float64) []Detection
	// Reset starts a new run, keeping model and scale.
	Reset()
	// Points returns the readings consumed in the current run.
	Points() int
	// Ready reports whether full windows are being evaluated.
	Ready() bool
	// Stats returns lifetime activity counters.
	Stats() StreamStats
}

// Artifact is a deployable trained detector.
type Artifact interface {
	// Info summarizes the artifact for listings.
	Info() ArtifactInfo
	// NumRules is the total rule-predicate count.
	NumRules() int
	// RuleText renders the rules as IF-THEN lines.
	RuleText() string
	// TrainingAnomalyRate is the training-time anomalous-window share —
	// the drift-detection baseline.
	TrainingAnomalyRate() float64
	// Save writes the artifact's versioned JSON document.
	Save(w io.Writer) error
	// DetectExplained scores one series, returning fired windows with
	// their explanations (and, for pyramids, type tags and per-scale
	// breakdowns). ctx carries request-scoped instrumentation — trace
	// spans (internal/trace) and the per-scale sweep observer — through
	// the scoring hot path; context.Background() disables both.
	DetectExplained(ctx context.Context, s *Series) ([]WindowDetection, error)
	// ScoreRanges scores one series for range-level comparison: the
	// same detection ranges DetectExplained reports, without the
	// explanation rendering. Shadow evaluation's scoring path. ctx as
	// in DetectExplained.
	ScoreRanges(ctx context.Context, s *Series) (RangeStats, error)
	// OpenStream starts an online detector under the given value scale.
	OpenStream(scale Scale) (StreamHandle, error)
}

// Info summarizes the model.
func (m *Model) Info() ArtifactInfo {
	return ArtifactInfo{
		Kind:     KindModel,
		Omega:    m.Opts.Omega,
		Delta:    m.Opts.Delta,
		NumRules: m.NumRules(),
	}
}

// OpenStream starts an online detector (NewStream under the Artifact
// surface).
func (m *Model) OpenStream(scale Scale) (StreamHandle, error) {
	return m.NewStream(scale)
}

// Info summarizes the pyramid.
func (pm *PyramidModel) Info() ArtifactInfo {
	var weights []float64
	if len(pm.ens.Fuse.Weights) > 0 {
		weights = make([]float64, len(pm.ens.Fuse.Weights))
		copy(weights, pm.ens.Fuse.Weights)
	}
	scaleRules := make([]int, len(pm.ens.Members))
	for i, mem := range pm.ens.Members {
		scaleRules[i] = mem.Model.NumRules()
	}
	return ArtifactInfo{
		Kind:          KindPyramid,
		Omega:         pm.Opts.Omega,
		Delta:         pm.Opts.Delta,
		NumRules:      pm.NumRules(),
		Scales:        pm.Scales(),
		ScaleRules:    scaleRules,
		Fusion:        pm.ens.Fuse.String(),
		FusionWeights: weights,
	}
}

// OpenStream starts an online pyramid detector (NewStream under the
// Artifact surface).
func (pm *PyramidModel) OpenStream(scale Scale) (StreamHandle, error) {
	return pm.NewStream(scale)
}

// LoadAny reads a saved artifact of either kind: it probes the
// document's "kind" discriminator and dispatches to Load (absent — the
// plain model format predates pyramids) or LoadPyramid ("pyramid").
func LoadAny(r io.Reader) (Artifact, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("cdt: reading artifact: %w", err)
	}
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("cdt: decoding artifact: %w", err)
	}
	switch probe.Kind {
	case artifactKindPyramid:
		return LoadPyramid(bytes.NewReader(raw))
	case KindModel, "":
		// Plain model documents either carry an explicit "model" kind or
		// predate the discriminator entirely.
		return Load(bytes.NewReader(raw))
	default:
		return nil, fmt.Errorf("cdt: kind: unknown artifact kind %q", probe.Kind)
	}
}
