package server

// End-to-end coverage for pyramid artifacts through the serving stack:
// registry listing, batch scoring with anomaly-type tags and per-scale
// breakdowns, streaming sessions over pyramid streams, shadow-start
// rejection, and the slow-request exemplar ring.

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	cdt "cdt"
	"cdt/internal/modelstore"
)

// plateauSpiky is spiky plus a sustained labeled level shift, so a
// multi-scale pyramid has both point-like and collective anomalies to
// learn from.
func plateauSpiky(name string, n int, spikes []int, pStart, pLen int, seed int64) *cdt.Series {
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, n)
	anoms := make([]bool, n)
	for i := range values {
		values[i] = 100 + 20*math.Sin(float64(i)/8) + 2*rng.Float64()
	}
	for _, at := range spikes {
		values[at] = 400
		anoms[at] = true
	}
	for i := pStart; i < pStart+pLen && i < n; i++ {
		values[i] = 320
		anoms[i] = true
	}
	return cdt.NewLabeledSeries(name, values, anoms)
}

func trainPyramid(tb testing.TB) *cdt.PyramidModel {
	tb.Helper()
	pm, err := cdt.FitPyramid(
		[]*cdt.Series{plateauSpiky("train", 600, []int{90, 200, 430}, 300, 48, 7)},
		cdt.Options{Omega: 5, Delta: 2},
		cdt.PyramidConfig{Factors: []int{1, 4}, Aggregator: "max"},
	)
	if err != nil {
		tb.Fatal(err)
	}
	if pm.NumRules() == 0 {
		tb.Fatal("trained pyramid has no rules")
	}
	return pm
}

func writePyramid(tb testing.TB, dir, name string, pm *cdt.PyramidModel) {
	tb.Helper()
	var buf bytes.Buffer
	if err := pm.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), buf.Bytes(), 0o644); err != nil {
		tb.Fatal(err)
	}
}

func TestServePyramidEndToEnd(t *testing.T) {
	s, ts, dir := newTestServer(t, Config{})
	writePyramid(t, dir, "multi", trainPyramid(t))
	if _, err := s.Registry().Reload(); err != nil {
		t.Fatal(err)
	}

	// The listing tags the pyramid with its kind and scales; the plain
	// model keeps the pre-pyramid shape.
	var list struct {
		Models []ModelInfo `json:"models"`
	}
	if code := doJSON(t, "GET", ts.URL+"/models", nil, &list); code != 200 {
		t.Fatalf("models list = %d", code)
	}
	byName := make(map[string]ModelInfo)
	for _, mi := range list.Models {
		byName[mi.Name] = mi
	}
	if mi := byName["multi"]; mi.Kind != "pyramid" || len(mi.Scales) != 2 || mi.Fusion != "any" {
		t.Fatalf("pyramid listing = %+v", mi)
	}
	if mi := byName["spikes"]; mi.Kind != "" || mi.Scales != nil || mi.Fusion != "" || mi.FusionWeights != nil {
		t.Fatalf("plain listing grew pyramid fields: %+v", mi)
	}

	// Batch scoring returns typed detections with per-scale breakdowns.
	eval := plateauSpiky("eval", 600, []int{150}, 380, 48, 11)
	var batch struct {
		Results []struct {
			Detections []struct {
				Start  int    `json:"start"`
				End    int    `json:"end"`
				Type   string `json:"type"`
				Scales []struct {
					Factor int `json:"factor"`
				} `json:"scales"`
			} `json:"detections"`
			Error string `json:"error"`
		} `json:"results"`
	}
	body := map[string]any{"series": []map[string]any{{"name": "eval", "values": eval.Values}}}
	if code := doJSON(t, "POST", ts.URL+"/models/multi/detect", body, &batch); code != 200 {
		t.Fatalf("batch detect = %d", code)
	}
	if len(batch.Results) != 1 || batch.Results[0].Error != "" {
		t.Fatalf("batch results = %+v", batch.Results)
	}
	dets := batch.Results[0].Detections
	if len(dets) == 0 {
		t.Fatal("pyramid batch scored no detections")
	}
	for _, d := range dets {
		switch d.Type {
		case "point", "contextual", "collective":
		default:
			t.Fatalf("detection %+v has unexpected type", d)
		}
		if len(d.Scales) == 0 {
			t.Fatalf("detection %+v has no per-scale breakdown", d)
		}
	}

	// The anomaly-type counter made it to /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `cdtserve_anomaly_types_total{model="multi"`) {
		t.Fatal("cdtserve_anomaly_types_total missing from /metrics")
	}

	// A streaming session over the pyramid tags live detections with the
	// firing scale and a type.
	var created createStreamResponse
	req := map[string]any{"model": "multi", "min": 0, "max": 500}
	if code := doJSON(t, "POST", ts.URL+"/streams", req, &created); code != 201 {
		t.Fatalf("stream create = %d", code)
	}
	var push struct {
		Detections []struct {
			Scale int    `json:"scale"`
			Type  string `json:"type"`
		} `json:"detections"`
	}
	if code := doJSON(t, "POST", ts.URL+"/streams/"+created.ID+"/points",
		map[string]any{"points": eval.Values}, &push); code != 200 {
		t.Fatalf("stream push = %d", code)
	}
	if len(push.Detections) == 0 {
		t.Fatal("pyramid stream scored no detections")
	}
	for _, d := range push.Detections {
		if d.Scale < 1 || d.Type == "" {
			t.Fatalf("stream detection %+v missing scale or type", d)
		}
	}
}

// trainPyramidVariant retrains the pyramid from a different cut of data
// — the stand-in for a retrained pyramid candidate.
func trainPyramidVariant(tb testing.TB, seed int64) *cdt.PyramidModel {
	tb.Helper()
	pm, err := cdt.FitPyramid(
		[]*cdt.Series{plateauSpiky("train", 600, []int{70, 260, 400}, 320, 40, seed)},
		cdt.Options{Omega: 5, Delta: 2},
		cdt.PyramidConfig{Factors: []int{1, 4}, Aggregator: "max"},
	)
	if err != nil {
		tb.Fatal(err)
	}
	return pm
}

// newPyramidStoreServer builds a store with pyramid "multi" v1 promoted
// and a retrained pyramid v2 published unpromoted, plus a server.
func newPyramidStoreServer(tb testing.TB) (*Server, string, *modelstore.Store) {
	tb.Helper()
	st, err := modelstore.Open(tb.TempDir())
	if err != nil {
		tb.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := trainPyramid(tb).Save(&v1); err != nil {
		tb.Fatal(err)
	}
	if _, err := st.Publish("multi", v1.Bytes(), "cli", "v1"); err != nil {
		tb.Fatal(err)
	}
	if err := st.Promote("multi", 1); err != nil {
		tb.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := trainPyramidVariant(tb, 23).Save(&v2); err != nil {
		tb.Fatal(err)
	}
	if _, err := st.Publish("multi", v2.Bytes(), "cli", "v2 candidate"); err != nil {
		tb.Fatal(err)
	}
	s, err := New(Config{Store: st})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	return s, newHTTPServer(tb, s), st
}

// TestPyramidShadowEndToEnd: a pyramid candidate shadows a pyramid
// incumbent — the same-kind comparison over fused point ranges — across
// both traffic paths, and the per-scale fire-rate gauges land on
// /metrics.
func TestPyramidShadowEndToEnd(t *testing.T) {
	s, ts, st := newPyramidStoreServer(t)

	// The same-kind gate cuts both ways: a plain candidate cannot shadow
	// a pyramid incumbent either.
	var plain bytes.Buffer
	if err := trainModel(t).Save(&plain); err != nil {
		t.Fatal(err)
	}
	v3, err := st.Publish("multi", plain.Bytes(), "cli", "plain candidate")
	if err != nil {
		t.Fatal(err)
	}
	var errResp struct {
		Error string `json:"error"`
	}
	if code := doJSON(t, "POST", ts+"/models/multi/shadow", versionRequest{Version: v3.Version}, &errResp); code != 400 {
		t.Fatalf("plain candidate against pyramid incumbent = %d, want 400", code)
	}
	if !strings.Contains(errResp.Error, `serving kind "pyramid"`) {
		t.Fatalf("error %q does not name the serving kind", errResp.Error)
	}

	var sum ShadowSummary
	if code := doJSON(t, "POST", ts+"/models/multi/shadow", versionRequest{Version: 2}, &sum); code != 201 {
		t.Fatalf("pyramid shadow start = %d, want 201", code)
	}
	if sum.CandidateVersion != 2 {
		t.Fatalf("fresh summary = %+v", sum)
	}

	// Batch traffic feeds the candidate through the scoring queue.
	eval := plateauSpiky("eval", 600, []int{150}, 380, 48, 11)
	body := map[string]any{"series": []map[string]any{{"name": "eval", "values": eval.Values}}}
	for i := 0; i < 3; i++ {
		if code := doJSON(t, "POST", ts+"/models/multi/detect", body, nil); code != 200 {
			t.Fatalf("batch detect = %d", code)
		}
	}
	// Stream traffic mirrors point-for-point into a candidate pyramid
	// stream.
	var sess createStreamResponse
	if code := doJSON(t, "POST", ts+"/streams", map[string]any{"model": "multi", "min": 0, "max": 500}, &sess); code != 201 {
		t.Fatalf("stream create = %d", code)
	}
	if code := doJSON(t, "POST", ts+"/streams/"+sess.ID+"/points", map[string]any{"points": eval.Values}, nil); code != 200 {
		t.Fatalf("stream push = %d", code)
	}
	s.shadows.drain()

	if code := doJSON(t, "GET", ts+"/models/multi/shadow", nil, &sum); code != 200 {
		t.Fatalf("shadow summary = %d", code)
	}
	if sum.Windows == 0 {
		t.Fatal("pyramid shadow saw no windows")
	}
	if sum.IncumbentFired == 0 || sum.CandidateFired == 0 {
		t.Fatalf("a side never fired: %+v", sum)
	}
	if sum.Agreement < 0 || sum.Agreement > 1 {
		t.Fatalf("agreement %v out of range", sum.Agreement)
	}

	// Per-scale candidate fire rates are on /metrics, one family child
	// per pyramid scale.
	var metrics string
	{
		resp, err := http.Get(ts + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		metrics = string(b)
	}
	for _, want := range []string{
		`cdtserve_shadow_scale_fire_rate_bucket{model="multi",scale="x1",`,
		`cdtserve_shadow_scale_fire_rate_bucket{model="multi",scale="x4",`,
		`cdtserve_shadow_windows_total{model="multi",outcome="agree"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	// Promoting the candidate retires the shadow, as for plain models.
	if code := doJSON(t, "POST", ts+"/models/multi/promote", versionRequest{Version: 2}, nil); code != 200 {
		t.Fatal("promote failed")
	}
	if code := doJSON(t, "GET", ts+"/models/multi/shadow", nil, nil); code != 404 {
		t.Fatal("shadow survived promotion of its candidate")
	}
}

func TestShadowStartRejectsPyramidCandidate(t *testing.T) {
	st, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if err := trainModel(t).Save(&plain); err != nil {
		t.Fatal(err)
	}
	v1, err := st.Publish("m", plain.Bytes(), "publish", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Promote("m", v1.Version); err != nil {
		t.Fatal(err)
	}
	var pyr bytes.Buffer
	if err := trainPyramid(t).Save(&pyr); err != nil {
		t.Fatal(err)
	}
	v2, err := st.Publish("m", pyr.Bytes(), "publish", "")
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := newHTTPServer(t, s)

	var errResp struct {
		Error string `json:"error"`
	}
	code := doJSON(t, "POST", ts+"/models/m/shadow",
		map[string]any{"version": v2.Version}, &errResp)
	if code != http.StatusBadRequest {
		t.Fatalf("shadow start on pyramid candidate = %d, want 400", code)
	}
	if !strings.Contains(errResp.Error, "pyramid") {
		t.Fatalf("error %q does not name the artifact kind", errResp.Error)
	}
}

func TestSlowRequestRing(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{SlowRequestThreshold: time.Nanosecond})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("no request ID on response")
	}
	for _, e := range slowRequests.snapshot() {
		if e.ID == id {
			if e.Endpoint != "healthz" || e.Path != "/healthz" || e.Status != 200 || e.ElapsedMS <= 0 {
				t.Fatalf("exemplar = %+v", e)
			}
			return
		}
	}
	t.Fatalf("request %s missing from the slow-request ring", id)
}

// newHTTPServer wraps a prebuilt Server in an httptest frontend.
func newHTTPServer(tb testing.TB, s *Server) string {
	tb.Helper()
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return ts.URL
}
