package pbad

import (
	"math"
	"math/rand"
	"testing"

	"cdt/internal/mining"
)

func periodic(n int, period float64, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.5 + 0.3*math.Sin(2*math.Pi*float64(i)/period) + noise*(rng.Float64()-0.5)
	}
	return out
}

func TestDetectScoresAnomalousWindowsHigher(t *testing.T) {
	values := periodic(600, 24, 0.05, 1)
	// Plant a burst of extreme values.
	for i := 300; i < 306; i++ {
		values[i] = 1.0
	}
	windows, err := Detect(values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) == 0 {
		t.Fatal("no windows")
	}
	// Mean score of windows overlapping the burst vs the rest.
	var anomSum, anomN, normSum, normN float64
	for _, w := range windows {
		if w.Start+w.Len > 300 && w.Start < 306 {
			anomSum += w.Score
			anomN++
		} else {
			normSum += w.Score
			normN++
		}
	}
	if anomN == 0 || normN == 0 {
		t.Fatal("degenerate window partition")
	}
	if anomSum/anomN <= normSum/normN {
		t.Errorf("anomalous windows mean score %v <= normal %v", anomSum/anomN, normSum/normN)
	}
}

func TestDetectWindowGeometry(t *testing.T) {
	values := periodic(100, 10, 0, 2)
	windows, err := Detect(values, Options{WindowLen: 12, Step: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := (100-12)/6 + 1
	if len(windows) != want {
		t.Fatalf("got %d windows, want %d", len(windows), want)
	}
	for i, w := range windows {
		if w.Start != i*6 || w.Len != 12 {
			t.Errorf("window %d = %+v", i, w)
		}
	}
}

func TestDetectTooShort(t *testing.T) {
	if _, err := Detect([]float64{1, 2, 3}, Options{WindowLen: 12}); err == nil {
		t.Error("short series accepted")
	}
}

func TestDetectDeterministic(t *testing.T) {
	values := periodic(400, 20, 0.1, 3)
	w1, err := Detect(values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Detect(values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1 {
		if w1[i].Score != w2[i].Score {
			t.Fatal("nondeterministic scores")
		}
	}
}

func TestBin(t *testing.T) {
	if bin(-0.5, 10) != 0 || bin(0, 10) != 0 {
		t.Error("low clamp wrong")
	}
	if bin(1, 10) != 9 || bin(2, 10) != 9 {
		t.Error("high clamp wrong")
	}
	if bin(0.55, 10) != 5 {
		t.Errorf("bin(0.55) = %d", bin(0.55, 10))
	}
}

func TestItemsetSimilarity(t *testing.T) {
	p := mining.Itemset{1, 3}
	if got := itemsetSimilarity(p, mining.Itemset{1, 2, 3}); got != 1 {
		t.Errorf("full containment = %v", got)
	}
	if got := itemsetSimilarity(p, mining.Itemset{1, 2}); got != 0.5 {
		t.Errorf("half overlap = %v", got)
	}
	if got := itemsetSimilarity(p, mining.Itemset{4}); got != 0 {
		t.Errorf("no overlap = %v", got)
	}
	if got := itemsetSimilarity(mining.Itemset{}, mining.Itemset{1}); got != 0 {
		t.Errorf("empty pattern = %v", got)
	}
}

func TestSequenceSimilarity(t *testing.T) {
	if got := sequenceSimilarity([]int{1, 2}, []int{0, 1, 5, 2}); got != 1 {
		t.Errorf("subsequence = %v", got)
	}
	if got := sequenceSimilarity([]int{1, 2}, []int{2, 1}); got != 0.5 {
		t.Errorf("partial = %v", got)
	}
	if got := sequenceSimilarity(nil, []int{1}); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestToItemset(t *testing.T) {
	got := toItemset([]int{3, 1, 3, 2, 1})
	want := mining.Itemset{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

func TestTopItemsetsKeepsMostFrequent(t *testing.T) {
	in := []mining.FrequentItemset{
		{Items: mining.Itemset{1}, Support: 1},
		{Items: mining.Itemset{2}, Support: 9},
		{Items: mining.Itemset{3}, Support: 5},
	}
	out := topItemsets(in, 2)
	if len(out) != 2 || out[0].Support != 9 || out[1].Support != 5 {
		t.Errorf("topItemsets = %v", out)
	}
	if got := topItemsets(in, 10); len(got) != 3 {
		t.Error("short input should pass through")
	}
}

func TestTopSequencesKeepsMostFrequent(t *testing.T) {
	in := []mining.FrequentSequence{
		{Seq: []int{1}, Support: 2},
		{Seq: []int{2}, Support: 7},
	}
	out := topSequences(in, 1)
	if len(out) != 1 || out[0].Support != 7 {
		t.Errorf("topSequences = %v", out)
	}
}

func TestMovingAverageChannel(t *testing.T) {
	got := movingAverage([]float64{0, 3, 0, 3, 0}, 3)
	want := []float64{1.5, 1, 2, 1, 1.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("ma[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDisableSmoothedChangesEmbedding(t *testing.T) {
	values := periodic(400, 20, 0.1, 11)
	with, err := Detect(values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Detect(values, Options{DisableSmoothed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(with) != len(without) {
		t.Fatal("window geometry changed")
	}
	same := true
	for i := range with {
		if with[i].Score != without[i].Score {
			same = false
			break
		}
	}
	if same {
		t.Error("smoothed channel has no effect on scores")
	}
}
