package metriclabel_test

import (
	"testing"

	"cdt/tools/analysistest"
	"cdt/tools/analyzers/metriclabel"
)

func TestMetricLabel(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), metriclabel.Analyzer, "metriclabel")
}
