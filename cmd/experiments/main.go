// Command experiments regenerates every table and figure of the paper's
// evaluation section (§4) on the synthetic stand-in datasets and prints
// them with the paper's reported values alongside.
//
// Usage:
//
//	experiments                       # everything, laptop scale
//	experiments -exp table3,figure3   # a subset
//	experiments -full                 # paper-scale datasets (slow)
//	experiments -seed 7 -bo-iters 25  # tuning budget / reproducibility
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cdt/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "comma-separated subset of: table2,table3,table4,table5,figure1,figure2,figure3,cv")
	seed := flag.Int64("seed", 42, "seed for data generation and tuning")
	full := flag.Bool("full", false, "paper-scale dataset sizes (slow)")
	boInit := flag.Int("bo-init", 5, "random initial points for Bayesian optimization")
	boIters := flag.Int("bo-iters", 12, "surrogate-guided evaluations for Bayesian optimization")
	mdPath := flag.String("md", "", "also write a Markdown report to this path")
	progress := flag.Bool("progress", false, "stream per-trial tuning progress to stderr")
	flag.Parse()

	wanted := map[string]bool{}
	if *exp == "all" {
		for _, e := range []string{"table2", "table3", "table4", "table5", "figure1", "figure2", "figure3"} {
			wanted[e] = true
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			wanted[strings.TrimSpace(strings.ToLower(e))] = true
		}
	}

	cfg := experiments.Config{
		Seed:    *seed,
		Full:    *full,
		BOInit:  *boInit,
		BOIters: *boIters,
	}
	if *progress {
		cfg.Progress = os.Stderr
	}
	suite := experiments.NewSuite(cfg)
	start := time.Now()

	if wanted["figure1"] {
		fmt.Println(experiments.Figure1())
	}
	if wanted["table2"] {
		rows, err := suite.Table2()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable2(rows))
	}
	if wanted["table3"] {
		rows, err := suite.Table3()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable3(rows))
	}
	if wanted["table4"] {
		rows, err := suite.Table4()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable4(rows))
	}
	if wanted["figure3"] {
		rows, err := suite.Figure3()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure3(rows))
	}
	if wanted["table5"] {
		rows, err := suite.Table5()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable5(rows))
	}
	if wanted["cv"] {
		for _, name := range experiments.DatasetNames {
			rows, err := suite.RuleLearnersCV(name, 10)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatCV(name, rows))
		}
	}
	if wanted["figure2"] {
		out, err := suite.Figure2()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			return err
		}
		if err := suite.WriteMarkdownReport(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("markdown report written to %s\n", *mdPath)
	}
	fmt.Printf("done in %v\n", time.Since(start))
	return nil
}
