package corpusshare_test

import (
	"testing"

	"cdt/tools/analysistest"
	"cdt/tools/analyzers/corpusshare"
)

func TestCorpusShare(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), corpusshare.Analyzer, "corpusshare")
}
