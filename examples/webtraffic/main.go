// Web-traffic anomaly detection: a Yahoo-S5-style workload. Compares the
// supervised CDT rules against the unsupervised Matrix Profile discord
// detector on the same synthetic traffic, mirroring the paper's §4.2
// comparison on one dataset.
//
//	go run ./examples/webtraffic
package main

import (
	"fmt"
	"log"

	cdt "cdt"
	"cdt/internal/datasets/yahoo"
	"cdt/internal/evalmetrics"
	"cdt/internal/matrixprofile"
	"cdt/internal/timeseries"
)

func main() {
	corpus := yahoo.A1(yahoo.Options{Files: 4, Points: 600, Seed: 5})
	if _, err := corpus.Normalize(); err != nil {
		log.Fatal(err)
	}

	// 60/20/20 chronological split per series, as in the paper.
	var train, val, test []*cdt.Series
	for _, s := range corpus.Series {
		sp, err := timeseries.ChronologicalSplit(s, 0.6, 0.2, 0.2)
		if err != nil {
			log.Fatal(err)
		}
		train = append(train, sp.Train)
		val = append(val, sp.Validation)
		test = append(test, sp.Test)
	}

	// Let Bayesian optimization pick (ω, δ) on the validation split.
	res, err := cdt.Optimize(train, val, cdt.ObjectiveF1, cdt.OptimizeOptions{
		InitPoints: 4, Iterations: 10, Seed: 1,
		Base: cdt.Options{MaxCompositionLen: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Bayesian optimization chose omega=%d delta=%d (validation F1 %.2f, %d configurations tried)\n",
		res.Best.Omega, res.Best.Delta, res.BestScore, res.Evaluations)

	model, err := cdt.Fit(append(append([]*cdt.Series{}, train...), val...), res.Best)
	if err != nil {
		log.Fatal(err)
	}
	cdtRep, err := model.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}

	// Matrix Profile: unsupervised, windows of 12 step 6 on the full
	// series, thresholded at the contamination quantile.
	var scores []float64
	var truth []bool
	const windowLen, step = 12, 6
	for _, s := range corpus.Series {
		profile, err := matrixprofile.Compute(s.Values, windowLen)
		if err != nil {
			log.Fatal(err)
		}
		var starts []int
		for at := 0; at+windowLen <= s.Len(); at += step {
			starts = append(starts, at)
			anom := false
			for i := at; i < at+windowLen; i++ {
				if s.Anomalies[i] {
					anom = true
					break
				}
			}
			truth = append(truth, anom)
		}
		scores = append(scores, profile.WindowScores(starts, windowLen)...)
	}
	contamination := 0.0
	for _, a := range truth {
		if a {
			contamination++
		}
	}
	contamination /= float64(len(truth))
	mpF1 := evalmetrics.FromBools(evalmetrics.BinarizeTop(scores, contamination), truth).F1()

	fmt.Printf("\nCDT (supervised, held-out windows):      F1 = %.2f with %d rules\n", cdtRep.F1, model.NumRules())
	fmt.Printf("Matrix Profile (unsupervised discords):  F1 = %.2f\n\n", mpF1)
	fmt.Println("CDT's rules (what the Matrix Profile cannot give you):")
	fmt.Print(model.RuleText())
}
