package timeseries

import (
	"fmt"
	"math"
)

// Sensor feeds lose readings; the paper's preprocessing assumes uniformly
// spaced complete series, so gaps must be repaired before labeling. NaN
// marks a missing reading.

// MissingCount returns the number of NaN values.
func (s *Series) MissingCount() int {
	n := 0
	for _, v := range s.Values {
		if math.IsNaN(v) {
			n++
		}
	}
	return n
}

// FillPolicy selects how Repair fills gaps.
type FillPolicy int

const (
	// FillLinear interpolates linearly between the nearest present
	// neighbors (leading/trailing gaps copy the nearest present value).
	FillLinear FillPolicy = iota
	// FillPrevious repeats the last present value (leading gaps copy the
	// first present value).
	FillPrevious
)

// String names the policy.
func (p FillPolicy) String() string {
	if p == FillPrevious {
		return "previous"
	}
	return "linear"
}

// Repair returns a copy of the series with NaN gaps filled according to
// the policy. It fails if the series has no present value at all.
// Anomaly flags are preserved; filled points keep their original flag
// (a missing reading's flag is whatever the annotator recorded for it).
func Repair(s *Series, policy FillPolicy) (*Series, error) {
	if len(s.Values) == 0 {
		return nil, ErrEmpty
	}
	out := s.Clone()
	present := false
	for _, v := range out.Values {
		if !math.IsNaN(v) {
			present = true
			break
		}
	}
	if !present {
		return nil, fmt.Errorf("timeseries: series %q is entirely missing", s.Name)
	}
	switch policy {
	case FillPrevious:
		fillPrevious(out.Values)
	case FillLinear:
		fillLinear(out.Values)
	default:
		return nil, fmt.Errorf("timeseries: unknown fill policy %d", policy)
	}
	return out, nil
}

// fillPrevious repeats the last seen value; a leading gap copies the
// first present value backwards.
func fillPrevious(values []float64) {
	first := math.NaN()
	for _, v := range values {
		if !math.IsNaN(v) {
			first = v
			break
		}
	}
	last := first
	for i, v := range values {
		if math.IsNaN(v) {
			values[i] = last
		} else {
			last = v
		}
	}
}

// fillLinear interpolates interior gaps and extends edge gaps with the
// nearest present value.
func fillLinear(values []float64) {
	n := len(values)
	i := 0
	for i < n {
		if !math.IsNaN(values[i]) {
			i++
			continue
		}
		// Gap [i, j).
		j := i
		for j < n && math.IsNaN(values[j]) {
			j++
		}
		switch {
		case i == 0 && j == n:
			// Unreachable: Repair checked for at least one present value.
		case i == 0:
			for k := i; k < j; k++ {
				values[k] = values[j]
			}
		case j == n:
			for k := i; k < j; k++ {
				values[k] = values[i-1]
			}
		default:
			lo, hi := values[i-1], values[j]
			span := float64(j - i + 1)
			for k := i; k < j; k++ {
				t := float64(k-i+1) / span
				values[k] = lo + (hi-lo)*t
			}
		}
		i = j
	}
}
