package engine_test

import (
	"slices"
	"testing"

	"cdt/internal/core"
	"cdt/internal/engine"
	"cdt/internal/pattern"
	"cdt/internal/rules"
)

// FuzzEngineMatch decodes a rule set, a window size, and a label series
// from raw bytes, then checks the compiled engine against per-window
// Composition.MatchedBy (via rules.Predicate.Matches) in the byte-selected
// match mode — the bit-identity contract, fuzzer-driven.
func FuzzEngineMatch(f *testing.F) {
	f.Add([]byte{3, 1, 2, 2, 0, 1, 4, 0, 1, 2, 3, 4, 0, 1, 2})
	f.Add([]byte{1, 0})
	f.Add([]byte{6, 2, 5, 3, 9, 8, 7, 1, 0, 0, 0, 2, 2, 2, 1, 3, 5, 7})
	f.Add([]byte{2, 255, 0, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		alphabet := cfg2.Alphabet()
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		label := func(b byte) pattern.Label { return alphabet[int(b)%len(alphabet)] }

		mode := core.MatchContiguous
		if next()&1 == 1 {
			mode = core.MatchSubsequence
		}
		omega := 1 + int(next())%8
		r := rules.Rule{Mode: mode}
		for np := int(next()) % 5; len(r.Predicates) <= np; {
			var pred rules.Predicate
			for nl := int(next()) % 4; len(pred.Literals) < nl; {
				comp := make([]pattern.Label, int(next())%5) // 0 => empty
				for j := range comp {
					comp[j] = label(next())
				}
				pred.Literals = append(pred.Literals, rules.Literal{
					Comp: core.Composition{Labels: comp},
					Neg:  next()&1 == 1,
				})
			}
			r.Predicates = append(r.Predicates, pred)
		}
		labels := make([]pattern.Label, len(data))
		for i := range labels {
			labels[i] = label(data[i])
		}

		e := engine.Compile(r, omega)

		// Batch view.
		marks := e.Sweep(labels)
		var got []int
		for w := 0; w < marks.NumWindows(); w++ {
			window := labels[w : w+omega]
			want := oracleFired(r, window)
			got = marks.AppendFired(got[:0], w)
			if !firedEqual(got, want) {
				t.Fatalf("sweep mode=%v omega=%d window %d: engine %v, oracle %v",
					mode, omega, w, got, want)
			}
		}

		// Incremental view, with a run boundary mid-series.
		cur := e.NewCursor()
		cut := 0
		if len(labels) > 0 {
			cut = int(labels[0].Var) % (len(labels) + 1)
		}
		for _, run := range [][]pattern.Label{labels[:cut], labels[cut:]} {
			cur.Reset()
			for i, l := range run {
				fired, complete := cur.Step(l)
				if !complete {
					continue
				}
				want := oracleFired(r, run[i+1-omega:i+1])
				if !firedEqual(fired, want) {
					t.Fatalf("cursor mode=%v omega=%d step %d: engine %v, oracle %v",
						mode, omega, i, fired, want)
				}
			}
		}

		// Isolated-window view on an arbitrary-length prefix.
		window := labels[:min(len(labels), omega+3)]
		if gotW := e.EvalWindow(window, nil); !firedEqual(gotW, oracleFired(r, window)) {
			t.Fatalf("evalwindow mode=%v: engine %v, oracle %v",
				mode, gotW, oracleFired(r, window))
		}
	})
}

func firedEqual(a, b []int) bool {
	return len(a) == len(b) && (len(a) == 0 || slices.Equal(a, b))
}
