package rules

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"cdt/internal/core"
	"cdt/internal/pattern"
)

var cfg2 = pattern.NewConfig(2)

func lbl(v pattern.Variation, a, b int) pattern.Label {
	return pattern.Label{Var: v, Alpha: pattern.Interval(a), Beta: pattern.Interval(b)}
}

func comp(labels ...pattern.Label) core.Composition {
	return core.Composition{Labels: labels}
}

var (
	la = lbl(pattern.PP, 1, 2)
	lb = lbl(pattern.PN, -2, -1)
	lc = lbl(pattern.SCP, 1, 0)
	ld = lbl(pattern.ECN, 0, 2)
)

func pos(c core.Composition) Literal { return Literal{Comp: c} }
func neg(c core.Composition) Literal { return Literal{Comp: c, Neg: true} }

// TestSimplifyPaperExample reproduces the worked example of §3.4:
// (c1) ∨ (c2∧¬c1) ∨ (c3∧¬c2∧¬c1) = c1 ∨ c2 ∨ c3.
func TestSimplifyPaperExample(t *testing.T) {
	c1 := comp(lb, lc)
	c2 := comp(ld, la)
	c3 := comp(la, lb)
	r := Rule{Predicates: []Predicate{
		{Literals: []Literal{pos(c1)}},
		{Literals: []Literal{pos(c2), neg(c1)}},
		{Literals: []Literal{pos(c3), neg(c2), neg(c1)}},
	}}
	s := Simplify(r)
	if len(s.Predicates) != 3 {
		t.Fatalf("got %d predicates, want 3:\n%s", len(s.Predicates), s.Format(cfg2))
	}
	for i, p := range s.Predicates {
		if len(p.Literals) != 1 || p.Literals[0].Neg {
			t.Errorf("predicate %d not reduced to a single positive composition: %s", i, p.Format(cfg2))
		}
	}
}

func TestSimplifyAbsorption(t *testing.T) {
	c1 := comp(la)
	c2 := comp(lb)
	r := Rule{Predicates: []Predicate{
		{Literals: []Literal{pos(c1)}},
		{Literals: []Literal{pos(c1), pos(c2)}}, // implied by the first
	}}
	s := Simplify(r)
	if len(s.Predicates) != 1 {
		t.Fatalf("got %d predicates, want 1", len(s.Predicates))
	}
}

func TestSimplifyContradiction(t *testing.T) {
	c1 := comp(la)
	r := Rule{Predicates: []Predicate{
		{Literals: []Literal{pos(c1), neg(c1)}},
	}}
	s := Simplify(r)
	if len(s.Predicates) != 0 {
		t.Fatalf("contradictory predicate survived: %s", s.Format(cfg2))
	}
}

func TestSimplifyDuplicatePredicates(t *testing.T) {
	c1 := comp(la, lb)
	r := Rule{Predicates: []Predicate{
		{Literals: []Literal{pos(c1)}},
		{Literals: []Literal{pos(c1)}},
	}}
	if s := Simplify(r); len(s.Predicates) != 1 {
		t.Fatalf("duplicate predicates survived: %d", len(s.Predicates))
	}
}

func TestSimplifyDuplicateLiterals(t *testing.T) {
	c1 := comp(la)
	r := Rule{Predicates: []Predicate{
		{Literals: []Literal{pos(c1), pos(c1)}},
	}}
	s := Simplify(r)
	if len(s.Predicates) != 1 || len(s.Predicates[0].Literals) != 1 {
		t.Fatalf("idempotence not applied: %s", s.Format(cfg2))
	}
}

func TestSimplifyGeneralNegationElimination(t *testing.T) {
	// P = a∧x, Q = a∧b∧¬x with {a} ⊆ {a,b}: ¬x must vanish from Q.
	a, b, x := comp(la), comp(lb), comp(lc)
	r := Rule{Predicates: []Predicate{
		{Literals: []Literal{pos(a), pos(x)}},
		{Literals: []Literal{pos(a), pos(b), neg(x)}},
	}}
	s := Simplify(r)
	if len(s.Predicates) != 2 {
		t.Fatalf("got %d predicates, want 2", len(s.Predicates))
	}
	for _, p := range s.Predicates {
		for _, lit := range p.Literals {
			if lit.Neg {
				t.Fatalf("negation survived: %s", s.Format(cfg2))
			}
		}
	}
}

func TestSimplifyKeepsNecessaryNegation(t *testing.T) {
	// P = a∧x, Q = b∧¬x with {a} ⊄ {b}: rewrite does not apply.
	a, b, x := comp(la), comp(lb), comp(lc)
	r := Rule{Predicates: []Predicate{
		{Literals: []Literal{pos(a), pos(x)}},
		{Literals: []Literal{pos(b), neg(x)}},
	}}
	s := Simplify(r)
	found := false
	for _, p := range s.Predicates {
		for _, lit := range p.Literals {
			if lit.Neg {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("necessary negation removed: %s", s.Format(cfg2))
	}
}

// Semantic equivalence: simplification must never change what the rule
// detects. Exhaustively check over random label windows.
func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alphabet := cfg2.Alphabet()
	randComp := func() core.Composition {
		n := rng.Intn(2) + 1
		ls := make([]pattern.Label, n)
		for i := range ls {
			ls[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return core.Composition{Labels: ls}
	}
	for trial := 0; trial < 100; trial++ {
		var r Rule
		nPred := rng.Intn(4) + 1
		for i := 0; i < nPred; i++ {
			var p Predicate
			nLit := rng.Intn(3) + 1
			for j := 0; j < nLit; j++ {
				p.Literals = append(p.Literals, Literal{Comp: randComp(), Neg: rng.Intn(2) == 0})
			}
			r.Predicates = append(r.Predicates, p)
		}
		s := Simplify(r)
		for w := 0; w < 50; w++ {
			window := make([]pattern.Label, rng.Intn(6)+1)
			for i := range window {
				window[i] = alphabet[rng.Intn(len(alphabet))]
			}
			if r.Detect(window) != s.Detect(window) {
				t.Fatalf("semantics changed:\nbefore:\n%s\nafter:\n%s\nwindow %v",
					r.Format(cfg2), s.Format(cfg2), window)
			}
		}
	}
}

// Simplification is idempotent: applying it twice changes nothing.
func TestSimplifyIdempotent(t *testing.T) {
	c1, c2, c3 := comp(la), comp(lb), comp(lc)
	r := Rule{Predicates: []Predicate{
		{Literals: []Literal{pos(c1)}},
		{Literals: []Literal{pos(c2), neg(c1)}},
		{Literals: []Literal{pos(c3), neg(c2), neg(c1)}},
	}}
	once := Simplify(r)
	twice := Simplify(once)
	if once.Format(cfg2) != twice.Format(cfg2) {
		t.Fatalf("not idempotent:\n%s\nvs\n%s", once.Format(cfg2), twice.Format(cfg2))
	}
}

func buildSeparableTree(t *testing.T) (*core.Tree, []core.Observation) {
	t.Helper()
	values := make([]float64, 200)
	anoms := make([]bool, 200)
	for i := range values {
		values[i] = 0.4 + 0.1*math.Sin(float64(i)/3)
	}
	for _, idx := range []int{30, 90, 150} {
		values[idx] = 1
		anoms[idx] = true
	}
	labels, err := cfg2.LabelSeries(values)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := core.Windows(labels, anoms, 5)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := core.Build(obs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tree, obs
}

func TestFromTreeMatchesTreePredictions(t *testing.T) {
	tree, obs := buildSeparableTree(t)
	r := FromTree(tree, PureAnomalyLeaves)
	if r.Count() == 0 {
		t.Fatal("no predicates extracted")
	}
	for i := range obs {
		want := tree.Predict(obs[i].Labels) == core.Anomaly
		if got := r.Detect(obs[i].Labels); got != want {
			t.Fatalf("obs %d: rule %v, tree %v", i, got, want)
		}
	}
}

func TestExtractSimplifiedStillMatchesTree(t *testing.T) {
	tree, obs := buildSeparableTree(t)
	r := Extract(tree, PureAnomalyLeaves)
	for i := range obs {
		want := tree.Predict(obs[i].Labels) == core.Anomaly
		if got := r.Detect(obs[i].Labels); got != want {
			t.Fatalf("obs %d: simplified rule %v, tree %v", i, got, want)
		}
	}
}

func TestSimplifyShrinksTreeRules(t *testing.T) {
	tree, _ := buildSeparableTree(t)
	raw := FromTree(tree, PureAnomalyLeaves)
	simplified := Simplify(raw)
	rawLits, simpLits := 0, 0
	for _, p := range raw.Predicates {
		rawLits += len(p.Literals)
	}
	for _, p := range simplified.Predicates {
		simpLits += len(p.Literals)
	}
	if simpLits > rawLits {
		t.Errorf("simplification grew the rule: %d -> %d literals", rawLits, simpLits)
	}
	if len(simplified.Predicates) > len(raw.Predicates) {
		t.Errorf("simplification grew predicate count: %d -> %d", len(raw.Predicates), len(simplified.Predicates))
	}
}

func TestLeafPolicies(t *testing.T) {
	tree, _ := buildSeparableTree(t)
	pure := FromTree(tree, PureAnomalyLeaves)
	majority := FromTree(tree, MajorityAnomalyLeaves)
	if len(majority.Predicates) < len(pure.Predicates) {
		t.Error("majority policy extracted fewer predicates than pure policy")
	}
}

func TestPredicateMatchesNegation(t *testing.T) {
	c1 := comp(la, lb)
	p := Predicate{Literals: []Literal{neg(c1)}}
	if p.Matches([]pattern.Label{la, lb, lc}, core.MatchContiguous) {
		t.Error("negated literal matched a window containing the composition")
	}
	if !p.Matches([]pattern.Label{lc, lc}, core.MatchContiguous) {
		t.Error("negated literal failed on a window without the composition")
	}
}

func TestEmptyPredicateMatchesEverything(t *testing.T) {
	p := Predicate{}
	if !p.Matches([]pattern.Label{la}, core.MatchContiguous) {
		t.Error("empty conjunction should be TRUE")
	}
	if p.Format(cfg2) != "TRUE" {
		t.Errorf("Format = %q", p.Format(cfg2))
	}
}

func TestRuleFormat(t *testing.T) {
	r := Rule{Predicates: []Predicate{
		{Literals: []Literal{pos(comp(lb, lc)), neg(comp(la))}},
	}}
	out := r.Format(cfg2)
	for _, want := range []string{"R1:", "IF", "PN[-H,-L]", "SCP[L,Z]", "AND NOT", "THEN anomaly"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	empty := Rule{}
	if !strings.Contains(empty.Format(cfg2), "no anomaly rules") {
		t.Error("empty rule format wrong")
	}
}

func TestDetectAll(t *testing.T) {
	r := Rule{Predicates: []Predicate{{Literals: []Literal{pos(comp(la))}}}}
	obs := []core.Observation{
		{Labels: []pattern.Label{la, lb}},
		{Labels: []pattern.Label{lb, lc}},
	}
	got := r.DetectAll(obs)
	if !got[0] || got[1] {
		t.Errorf("DetectAll = %v", got)
	}
}

func TestPositiveCompositions(t *testing.T) {
	p := Predicate{Literals: []Literal{pos(comp(la)), neg(comp(lb)), pos(comp(lc))}}
	if got := len(p.PositiveCompositions()); got != 2 {
		t.Errorf("PositiveCompositions = %d, want 2", got)
	}
	if got := len(p.Compositions()); got != 3 {
		t.Errorf("Compositions = %d, want 3", got)
	}
}

func TestLiteralKeyPolarity(t *testing.T) {
	c := comp(la)
	if pos(c).Key() == neg(c).Key() {
		t.Error("polarities share a key")
	}
}

func TestLeafPolicyString(t *testing.T) {
	if PureAnomalyLeaves.String() != "pure-anomaly" || MajorityAnomalyLeaves.String() != "majority-anomaly" {
		t.Error("policy names wrong")
	}
}
