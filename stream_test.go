package cdt

import (
	"reflect"
	"testing"
)

func TestStreamMatchesBatchDetection(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	target := spikySeries("target", 300, []int{80, 190}, 44)

	// The stream normalizes with a fixed scale; use the target's own
	// range so batch (min-max) and stream agree.
	tmin, tmax, err := target.MinMax()
	if err != nil {
		t.Fatal(err)
	}
	stream, err := model.NewStream(Scale{Min: tmin, Max: tmax})
	if err != nil {
		t.Fatal(err)
	}
	var streamFired = map[int]bool{} // window start -> fired
	for _, v := range target.Values {
		for _, d := range stream.Push(v) {
			streamFired[d.WindowStart] = true
			if d.WindowEnd-d.WindowStart+1 != model.Opts.Omega {
				t.Fatalf("detection span %d..%d, want width %d", d.WindowStart, d.WindowEnd, model.Opts.Omega)
			}
		}
	}
	batch, err := model.DetectWindows(target)
	if err != nil {
		t.Fatal(err)
	}
	for wi, fired := range batch {
		// Batch window wi covers points wi+1..wi+ω → stream start wi+1.
		if fired != streamFired[wi+1] {
			t.Fatalf("window %d: batch %v, stream %v", wi, fired, streamFired[wi+1])
		}
	}
	if !stream.Ready() {
		t.Error("stream should be ready after a full series")
	}
	if stream.Points() != target.Len() {
		t.Errorf("points = %d", stream.Points())
	}
}

func TestStreamWarmup(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	stream, err := model.NewStream(Scale{Min: 0, Max: 100})
	if err != nil {
		t.Fatal(err)
	}
	// ω labels need ω+2 points; until then nothing can fire.
	for i := 0; i < model.Opts.Omega+1; i++ {
		if got := stream.Push(50); got != nil {
			t.Fatalf("detection during warm-up at point %d", i)
		}
	}
	if stream.Ready() {
		t.Error("ready before the first full window")
	}
}

func TestStreamRejectsDegenerateScale(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	if _, err := model.NewStream(Scale{Min: 5, Max: 5}); err == nil {
		t.Error("degenerate scale accepted")
	}
	if _, err := model.NewStream(Scale{Min: 7, Max: 3}); err == nil {
		t.Error("inverted scale accepted")
	}
}

func TestStreamClampsOutOfRange(t *testing.T) {
	sc := Scale{Min: 0, Max: 10}
	if sc.normalize(-5) != 0 || sc.normalize(15) != 1 {
		t.Error("clamping wrong")
	}
	if sc.normalize(5) != 0.5 {
		t.Error("normalization wrong")
	}
}

func TestStreamReset(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 4, Delta: 2})
	stream, err := model.NewStream(Scale{Min: 0, Max: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		stream.Push(float64(i))
	}
	stream.Reset()
	if stream.Points() != 0 || stream.Ready() {
		t.Error("reset incomplete")
	}
	// Usable again after reset.
	for i := 0; i < 20; i++ {
		stream.Push(float64(i))
	}
	if !stream.Ready() {
		t.Error("stream not ready after refill")
	}
}

// TestStreamLatencyAndReset pins the latency contract documented at the
// top of stream.go: a window's detection is returned by the Push of its
// last covered point's successor (never earlier, never later, at most
// one window per Push), and the incremental engine cursor does not
// change that — including after Reset, where the replayed feed must
// yield detections identical to a fresh stream's, with the first one
// again ω+2 pushes in.
func TestStreamLatencyAndReset(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	feed := spikySeries("live", 160, []int{60, 120}, 91)
	tmin, tmax, err := feed.MinMax()
	if err != nil {
		t.Fatal(err)
	}
	stream, err := model.NewStream(Scale{Min: tmin, Max: tmax})
	if err != nil {
		t.Fatal(err)
	}
	run := func() []Detection {
		var all []Detection
		for i, v := range feed.Values {
			dets := stream.Push(v)
			if len(dets) > 1 {
				t.Fatalf("push %d returned %d detections, want at most 1", i, len(dets))
			}
			for _, d := range dets {
				// The window's last covered point is the previous push's
				// point (its label needed this push's value), so the
				// detection arrives exactly one point after WindowEnd.
				if d.WindowEnd != i-1 {
					t.Fatalf("push %d detected window ending at %d, want %d", i, d.WindowEnd, i-1)
				}
				if i < model.Opts.Omega+2 {
					t.Fatalf("detection at push %d, before the first window is decidable", i)
				}
				all = append(all, d)
			}
		}
		return all
	}
	fresh := run()
	if len(fresh) == 0 {
		t.Fatal("no detections over a feed with two spikes")
	}
	stream.Reset()
	if replay := run(); !reflect.DeepEqual(fresh, replay) {
		t.Fatalf("post-Reset replay diverged:\nfresh:  %+v\nreplay: %+v", fresh, replay)
	}
}

func TestStreamDetectsSpikeLive(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	stream, err := model.NewStream(Scale{Min: 40, Max: 200})
	if err != nil {
		t.Fatal(err)
	}
	spike := spikySeries("live", 200, []int{100}, 77)
	var hits []Detection
	for _, v := range spike.Values {
		hits = append(hits, stream.Push(v)...)
	}
	if len(hits) == 0 {
		t.Fatal("spike not detected in streaming mode")
	}
	covered := false
	for _, d := range hits {
		if d.WindowStart <= 100 && 100 <= d.WindowEnd {
			covered = true
		}
	}
	if !covered {
		t.Errorf("no detection covers the spike: %+v", hits)
	}
}

// TestStreamStats checks the activity counters: Points tracks the
// current run, Detections accumulates across resets, Resets counts Reset
// calls.
func TestStreamStats(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	target := spikySeries("target", 300, []int{80, 190}, 44)
	tmin, tmax, err := target.MinMax()
	if err != nil {
		t.Fatal(err)
	}
	stream, err := model.NewStream(Scale{Min: tmin, Max: tmax})
	if err != nil {
		t.Fatal(err)
	}
	if st := stream.Stats(); st != (StreamStats{}) {
		t.Fatalf("fresh stream stats = %+v, want zero", st)
	}
	feed := func() uint64 {
		var n uint64
		for _, v := range target.Values {
			n += uint64(len(stream.Push(v)))
		}
		return n
	}
	firstRun := feed()
	if firstRun == 0 {
		t.Fatal("no detections over a feed with two spikes")
	}
	st := stream.Stats()
	want := StreamStats{Points: target.Len(), Detections: firstRun}
	if st != want {
		t.Fatalf("after first run: stats = %+v, want %+v", st, want)
	}

	stream.Reset()
	if st := stream.Stats(); st.Points != 0 || st.Detections != firstRun || st.Resets != 1 {
		t.Fatalf("after reset: stats = %+v, want points=0 detections=%d resets=1", st, firstRun)
	}
	secondRun := feed()
	st = stream.Stats()
	want = StreamStats{Points: target.Len(), Detections: firstRun + secondRun, Resets: 1}
	if st != want {
		t.Fatalf("after replay: stats = %+v, want %+v", st, want)
	}
}
