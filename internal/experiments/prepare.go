// Package experiments is the harness that regenerates every table and
// figure of the paper's evaluation (§4) on the synthetic stand-in
// datasets: Table 2 (optimal hyper-parameters), Table 3 (CDT vs
// pattern-based baselines), Table 4 (CDT vs rule learners), Figure 3
// (rule counts), Table 5 (example rules), and the illustrative Figures 1
// and 2. Each experiment is exposed as a method on Suite so the
// benchmarks, the CLI, and EXPERIMENTS.md all run the same code.
package experiments

import (
	"fmt"
	"io"
	"sync"

	cdt "cdt"
	"cdt/internal/datasets"
	"cdt/internal/datasets/sge"
	"cdt/internal/datasets/yahoo"
	"cdt/internal/timeseries"
)

// DatasetNames lists the six evaluation datasets in the paper's order.
var DatasetNames = []string{
	"SGE_Electricity",
	"SGE_Calorie",
	"Yahoo_A1",
	"Yahoo_A2",
	"Yahoo_A3",
	"Yahoo_A4",
}

// Config scales the harness.
type Config struct {
	// Full switches from laptop-scale to paper-scale dataset sizes.
	Full bool
	// Seed drives dataset generation and every stochastic component.
	Seed int64
	// BOInit and BOIters budget the Bayesian optimization per dataset
	// and objective (defaults 5 and 15).
	BOInit, BOIters int
	// Progress, when non-nil, receives optimizer progress as the suite
	// runs: one line per hyper-parameter trial (ω, δ, score, duration)
	// and a corpus cache-stats summary after each search. Purely
	// observational — results are identical with or without it.
	Progress io.Writer
}

func (c Config) withDefaults() Config {
	if c.BOInit <= 0 {
		c.BOInit = 5
	}
	if c.BOIters <= 0 {
		c.BOIters = 15
	}
	return c
}

// Prepared is one evaluation dataset after the shared preprocessing of
// §4.1/§4.2: per-series normalization (and hour→day downsampling for the
// electricity data), split 60/20/20 chronologically.
type Prepared struct {
	Name string
	// Train, Validation, Test are the per-series chronological segments.
	Train, Validation, Test []*timeseries.Series
	// Series are the full normalized series (the unsupervised baselines
	// of §4.2 build their models on the full data).
	Series []*timeseries.Series

	// corpora lazily caches one cdt.Corpus per split so every consumer —
	// tuning under both objectives, the final refits, the rule-learner
	// feature builders, cross-validation — shares the same labeling and
	// window caches for this dataset.
	corporaMu sync.Mutex
	corpora   map[string]*cdt.Corpus
}

// corpusFor returns (building on first use) the shared corpus over one
// split of the dataset.
func (p *Prepared) corpusFor(kind string, series []*timeseries.Series) (*cdt.Corpus, error) {
	p.corporaMu.Lock()
	defer p.corporaMu.Unlock()
	if c, ok := p.corpora[kind]; ok {
		return c, nil
	}
	c, err := cdt.NewCorpus(series)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s %s corpus: %w", p.Name, kind, err)
	}
	if p.corpora == nil {
		p.corpora = make(map[string]*cdt.Corpus)
	}
	p.corpora[kind] = c
	return c, nil
}

// TrainCorpus returns the shared corpus over the training split.
func (p *Prepared) TrainCorpus() (*cdt.Corpus, error) {
	return p.corpusFor("train", p.Train)
}

// ValidationCorpus returns the shared corpus over the validation split.
func (p *Prepared) ValidationCorpus() (*cdt.Corpus, error) {
	return p.corpusFor("validation", p.Validation)
}

// TestCorpus returns the shared corpus over the held-out test split.
func (p *Prepared) TestCorpus() (*cdt.Corpus, error) {
	return p.corpusFor("test", p.Test)
}

// TrainValCorpus returns the shared corpus over the pooled
// train+validation refit data.
func (p *Prepared) TrainValCorpus() (*cdt.Corpus, error) {
	return p.corpusFor("trainval", p.TrainVal())
}

// FullCorpus returns the shared corpus over the full normalized series.
func (p *Prepared) FullCorpus() (*cdt.Corpus, error) {
	return p.corpusFor("full", p.Series)
}

// Contamination returns the point-level anomaly rate of the full data,
// used to threshold the unsupervised baselines' scores.
func (p *Prepared) Contamination() float64 {
	points, anoms := 0, 0
	for _, s := range p.Series {
		points += s.Len()
		anoms += s.AnomalyCount()
	}
	if points == 0 {
		return 0
	}
	return float64(anoms) / float64(points)
}

// Prepare builds one dataset by name.
func Prepare(name string, cfg Config) (*Prepared, error) {
	cfg = cfg.withDefaults()
	var d *datasets.Dataset
	switch name {
	case "SGE_Calorie":
		opts := sge.CalorieOptions{Seed: cfg.Seed + 1}
		if cfg.Full {
			opts.Sensors = 25
			opts.Days = 1341
		}
		d = sge.Calorie(opts)
	case "SGE_Electricity":
		opts := sge.ElectricityOptions{Seed: cfg.Seed + 2}
		if cfg.Full {
			opts.Hours = 10 * 365 * 24
		}
		raw := sge.Electricity(opts)
		// §4.2: electricity is downsampled from hours to days.
		day, err := raw.Downsample(24, timeseries.Mean)
		if err != nil {
			return nil, err
		}
		d = day
	case "Yahoo_A1":
		d = yahoo.A1(yahooOpts(cfg, 3))
	case "Yahoo_A2":
		d = yahoo.A2(yahooOpts(cfg, 4))
	case "Yahoo_A3":
		d = yahoo.A3(yahooOpts(cfg, 5))
	case "Yahoo_A4":
		d = yahoo.A4(yahooOpts(cfg, 6))
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	if _, err := d.Normalize(); err != nil {
		return nil, err
	}
	p := &Prepared{Name: name, Series: d.Series}
	for _, s := range d.Series {
		sp, err := timeseries.ChronologicalSplit(s, 0.6, 0.2, 0.2)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s: %w", name, s.Name, err)
		}
		p.Train = append(p.Train, sp.Train)
		p.Validation = append(p.Validation, sp.Validation)
		p.Test = append(p.Test, sp.Test)
	}
	return p, nil
}

// yahooOpts sizes a Yahoo family. The synthetic generators emit data at
// the post-downsampling working resolution directly (see DESIGN.md §4):
// the real S5 corpus is hourly and the paper resamples it to days, which
// would leave our scaled files too short to split. At laptop scale the
// generator's boosted default anomaly rates apply; at full scale the
// corpora are large enough to carry the paper's documented rates.
func yahooOpts(cfg Config, salt int64) yahoo.Options {
	o := yahoo.Options{Seed: cfg.Seed + salt}
	if cfg.Full {
		o.Files = 40
		o.Points = 1400
		switch salt {
		case 3: // A1
			o.AnomalyRate = 0.018
		case 4: // A2
			o.AnomalyRate = 0.0033
		case 5: // A3
			o.AnomalyRate = 0.0056
		default: // A4
			o.AnomalyRate = 0.005
		}
	}
	return o
}

// PrepareAll builds all six datasets.
func PrepareAll(cfg Config) ([]*Prepared, error) {
	out := make([]*Prepared, 0, len(DatasetNames))
	for _, name := range DatasetNames {
		p, err := Prepare(name, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// TrainVal pools the train and validation segments — the refit pool used
// after hyper-parameter selection (the optimized parameters were chosen
// on validation, so the final model may train on both).
func (p *Prepared) TrainVal() []*cdt.Series {
	out := make([]*cdt.Series, 0, len(p.Train)+len(p.Validation))
	out = append(out, p.Train...)
	out = append(out, p.Validation...)
	return out
}
