// Package ascii renders time-series as terminal charts: a quick look at
// the data and the detections without leaving the shell, in the spirit
// of the paper's Figure 1 illustrations.
package ascii

import (
	"fmt"
	"math"
	"strings"
)

// PlotOptions sizes a chart.
type PlotOptions struct {
	// Width is the number of columns (default 72). Series longer than
	// Width are bucketed; each column shows its bucket's mean, and a
	// column is marked anomalous if any bucketed point is.
	Width int
	// Height is the number of value rows (default 12).
	Height int
}

func (o PlotOptions) withDefaults() PlotOptions {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 12
	}
	return o
}

// Plot renders values as an ASCII chart. flags, when non-nil, marks
// anomalous points: their columns are drawn with 'x' instead of '·' and
// an alarm row at the bottom carries '^' markers.
func Plot(values []float64, flags []bool, opts PlotOptions) string {
	opts = opts.withDefaults()
	if len(values) == 0 {
		return "(empty series)\n"
	}
	cols := opts.Width
	if len(values) < cols {
		cols = len(values)
	}
	colVal := make([]float64, cols)
	colAnom := make([]bool, cols)
	for c := 0; c < cols; c++ {
		lo := c * len(values) / cols
		hi := (c + 1) * len(values) / cols
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += values[i]
			if flags != nil && flags[i] {
				colAnom[c] = true
			}
		}
		colVal[c] = sum / float64(hi-lo)
	}

	min, max := colVal[0], colVal[0]
	for _, v := range colVal[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	span := max - min
	rowOf := func(v float64) int {
		if span == 0 {
			return opts.Height / 2
		}
		r := int(math.Round((max - v) / span * float64(opts.Height-1)))
		if r < 0 {
			r = 0
		}
		if r >= opts.Height {
			r = opts.Height - 1
		}
		return r
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for c, v := range colVal {
		glyph := byte('.')
		if colAnom[c] {
			glyph = 'x'
		}
		grid[rowOf(v)][c] = glyph
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%10.4g ┤\n", max)
	for r := range grid {
		b.WriteString("           │")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%10.4g ┤", min)
	b.WriteString(strings.Repeat("─", cols))
	b.WriteByte('\n')
	if flags != nil {
		b.WriteString("   alarms   ")
		for c := 0; c < cols; c++ {
			if colAnom[c] {
				b.WriteByte('^')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
