package server

// Model-lifecycle endpoints, live when the server is backed by a
// modelstore.Store:
//
//	POST   /models/{name}/shadow    {"version": N}  start shadowing
//	GET    /models/{name}/shadow                    agreement summary
//	DELETE /models/{name}/shadow                    stop shadowing
//	POST   /models/{name}/promote   {"version": N}  promote atomically
//	POST   /models/{name}/rollback                  undo last promote
//
// Promote is atomic from the traffic's point of view: the store pointer
// moves first, then the registry reloads and swaps its model map in one
// write; if the reload fails the pointer is rolled back, so serving
// state and store state never diverge. Live stream sessions pin the
// model they were created with, so promotion never disturbs them.

import (
	"fmt"
	"net/http"

	"cdt/internal/modelstore"
)

// requireStore rejects lifecycle requests on a directory-backed server.
func (s *Server) requireStore(w http.ResponseWriter) *modelstore.Store {
	st := s.registry.Store()
	if st == nil {
		writeError(w, http.StatusBadRequest,
			"model lifecycle endpoints require a store-backed server (-store)")
	}
	return st
}

type versionRequest struct {
	Version int `json:"version"`
}

func (s *Server) handleShadowStart(w http.ResponseWriter, r *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	name := r.PathValue("name")
	var req versionRequest
	if !readJSON(w, r, &req) {
		return
	}
	incumbent, ok := s.registry.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model %q", name)
		return
	}
	serving, _ := s.registry.Version(name)
	if req.Version == serving {
		writeError(w, http.StatusBadRequest,
			"version %d is already serving as %q", req.Version, name)
		return
	}
	candidate, _, err := st.LoadVersion(name, req.Version)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	// Shadow scoring replays incumbent traffic through the candidate and
	// compares detection point ranges; that comparison is defined within
	// one artifact kind (two plain models compare window ranges, two
	// pyramids fused point ranges) but not across kinds — a fused run and
	// a single window describe different things even when they overlap.
	if ck, ik := candidate.Info().Kind, incumbent.Info().Kind; ck != ik {
		writeError(w, http.StatusBadRequest,
			"shadow evaluation requires a candidate of the serving kind %q; version %d of %q is a %q artifact",
			ik, req.Version, name, ck)
		return
	}
	sh := s.shadows.Start(name, req.Version, candidate)
	_ = st.Note(modelstore.EventShadow, name, req.Version,
		fmt.Sprintf("shadow started against serving version %d", serving))
	writeJSON(w, http.StatusCreated, sh.summary())
}

func (s *Server) handleShadowSummary(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sh := s.shadows.Get(name)
	if sh == nil {
		writeError(w, http.StatusNotFound, "no shadow active for model %q", name)
		return
	}
	writeJSON(w, http.StatusOK, sh.summary())
}

func (s *Server) handleShadowStop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sh := s.shadows.Get(name)
	if sh == nil || !s.shadows.Stop(name) {
		writeError(w, http.StatusNotFound, "no shadow active for model %q", name)
		return
	}
	if st := s.registry.Store(); st != nil {
		_ = st.Note(modelstore.EventShadow, name, sh.Version, "shadow stopped")
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	name := r.PathValue("name")
	var req versionRequest
	if !readJSON(w, r, &req) {
		return
	}
	previous, _ := s.registry.Version(name)
	if err := st.Promote(name, req.Version); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if _, err := s.registry.Reload(); err != nil {
		// The new pointer does not load; put the old one back so the store
		// and the (unchanged) serving set stay in agreement.
		if _, rbErr := st.Rollback(name); rbErr != nil {
			writeError(w, http.StatusInternalServerError,
				"promote reload failed (%v) and rollback failed too (%v)", err, rbErr)
			return
		}
		writeError(w, http.StatusInternalServerError,
			"promote rolled back: reloading promoted version: %v", err)
		return
	}
	// The candidate (if it was shadowing) is now the incumbent.
	if sh := s.shadows.Get(name); sh != nil && sh.Version == req.Version {
		s.shadows.Stop(name)
		_ = st.Note(modelstore.EventShadow, name, req.Version, "shadow stopped: candidate promoted")
	}
	s.drift.reset(name)
	s.tel.promotes.Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"model":    name,
		"version":  req.Version,
		"previous": previous,
	})
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	name := r.PathValue("name")
	version, err := st.Rollback(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if _, err := s.registry.Reload(); err != nil {
		// Symmetric to promote: restore the pointer we just moved.
		if _, rbErr := st.Rollback(name); rbErr != nil {
			writeError(w, http.StatusInternalServerError,
				"rollback reload failed (%v) and restore failed too (%v)", err, rbErr)
			return
		}
		writeError(w, http.StatusInternalServerError,
			"rollback undone: reloading previous version: %v", err)
		return
	}
	s.drift.reset(name)
	s.tel.rollbacks.Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"model":   name,
		"version": version,
	})
}
