// Package hotalloc keeps allocations out of the hot paths: the engine's
// sweep/cursor loops and the fastjson appenders, where a per-call or
// per-iteration allocation turns into GC pressure at stream rates
// (ROADMAP: "every allocation in the sweep loop is paid per window").
//
// Hot paths are declared in the source, not hardcoded in the analyzer:
//
//	//cdtlint:hotpath        — the whole function body is hot
//	//cdtlint:hotpath loops  — only the function's loops are hot
//
// placed in a function's doc comment. Hotness then propagates through
// the program call graph: everything a hot region statically calls is
// itself fully hot, transitively (a helper called from a hot loop
// cannot allocate either). For a loops-only function, calls outside its
// loops stay cold — the engine's sweeps may allocate their result
// slices up front, just not per window.
//
// Inside a hot region the analyzer flags the allocation shapes Go makes
// easy to write and hard to see in a profile: make/new, slice and map
// composite literals, &-literals, closures (func literals), go
// statements, capacity-growing appends, string<->[]byte conversions,
// and fmt/strconv formatting calls that return fresh strings.
//
// Three scratch-reuse idioms the repo already relies on are recognized
// and exempt:
//
//   - self-append        x = append(x, ...)   (amortized growth)
//   - reslice reuse      append(buf[:0], ...) (reuses capacity)
//   - parameter append   append(dst, ...)     (caller owns amortization;
//     the fastjson appenders' contract)
//   - lazy init          if x == nil { x = make(...) }  (pays once;
//     Marks.set's idiom)
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"cdt/tools/analysis"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbids allocation in //cdtlint:hotpath functions and everything they call, modulo scratch-reuse idioms",
	Run:  run,
}

// hotpathDirective marks a function as a hot-path root in its doc
// comment.
const hotpathDirective = "//cdtlint:hotpath"

// hotness is a function's required allocation discipline, ordered so a
// stricter requirement overrides a looser one.
type hotness int

const (
	cold hotness = iota
	loopsHot
	bodyHot
)

func run(pass *analysis.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	cg := pass.Prog.CallGraph()
	hot := propagate(cg)
	for id, h := range hot {
		node := cg.Nodes[id]
		if node == nil || h == cold || node.Unit.Pkg != pass.Pkg {
			continue
		}
		for _, region := range regions(node.Decl, h) {
			checkRegion(pass, node.Decl, region)
		}
	}
	return nil
}

// markerOf reads the function's hotpath directive, if any.
func markerOf(fd *ast.FuncDecl) hotness {
	if fd.Doc == nil {
		return cold
	}
	for _, c := range fd.Doc.List {
		if !strings.HasPrefix(c.Text, hotpathDirective) {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(c.Text, hotpathDirective))
		if rest == "loops" {
			return loopsHot
		}
		return bodyHot
	}
	return cold
}

// propagate seeds hotness from source markers and floods it through the
// call graph: any call site inside a hot region makes its callee
// whole-body hot.
func propagate(cg *analysis.CallGraph) map[string]hotness {
	hot := make(map[string]hotness)
	var queue []string
	raise := func(id string, h hotness) {
		if h > hot[id] {
			hot[id] = h
			queue = append(queue, id)
		}
	}
	for id, node := range cg.Nodes {
		raise(id, markerOf(node.Decl))
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		node := cg.Nodes[id]
		if node == nil {
			continue
		}
		h := hot[id]
		for _, cs := range node.Calls {
			if h == bodyHot || cs.InLoop {
				raise(cs.Callee, bodyHot)
			}
		}
	}
	return hot
}

// regions selects the parts of fd's body the discipline applies to: the
// whole body, or each loop statement (the loop in its entirety — its
// condition, post statement, and body all run per iteration).
func regions(fd *ast.FuncDecl, h hotness) []ast.Node {
	if fd.Body == nil {
		return nil
	}
	if h == bodyHot {
		return []ast.Node{fd.Body}
	}
	var out []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			out = append(out, n)
			return false // the whole loop is one region; don't double-count nested loops
		}
		return true
	})
	return out
}

// checkRegion reports every disallowed allocation site inside region.
func checkRegion(pass *analysis.Pass, fd *ast.FuncDecl, region ast.Node) {
	allowed := allowedCalls(pass, region)
	params := paramObjects(pass, fd, region)
	ast.Inspect(region, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement on a hot path spawns a goroutine per call; use a worker pool")
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "func literal allocates a closure on a hot path; hoist it or use a named function")
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&-literal escapes to the heap on a hot path; hoist it or reuse a struct")
					return false // don't re-flag the literal itself
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s composite literal allocates on a hot path; hoist it or reuse scratch", kindWord(tv.Type))
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, allowed, params)
		}
		return true
	})
}

func kindWord(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}

// checkCall flags one call expression: builtins make/new/append,
// string<->[]byte conversions, and fmt/strconv formatting.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, allowed map[*ast.CallExpr]bool, params map[types.Object]bool) {
	if allowed[call] {
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch pass.TypesInfo.Uses[fun].(type) {
		case *types.Builtin:
			switch fun.Name {
			case "make":
				pass.Reportf(call.Pos(), "make allocates on a hot path; hoist it or reuse a scratch buffer (lazy `if x == nil` init is exempt)")
			case "new":
				pass.Reportf(call.Pos(), "new allocates on a hot path; hoist the allocation")
			case "append":
				if !appendReusesCapacity(pass, call, params) {
					pass.Reportf(call.Pos(), "append into a fresh slice grows on a hot path; self-append, append into buf[:0], or append to a parameter to reuse capacity")
				}
			}
			return
		}
	case *ast.SelectorExpr:
		if pkg := packageOf(pass, fun); pkg != "" {
			name := fun.Sel.Name
			switch {
			case pkg == "fmt":
				pass.Reportf(call.Pos(), "fmt.%s allocates on a hot path; use strconv.Append* into a scratch buffer", name)
			case pkg == "strconv" && (name == "Itoa" || strings.HasPrefix(name, "Format") || strings.HasPrefix(name, "Quote")):
				suffix := strings.TrimPrefix(name, "Format")
				if name == "Itoa" {
					suffix = "Int"
				}
				pass.Reportf(call.Pos(), "strconv.%s returns a fresh string on a hot path; use strconv.Append%s into a scratch buffer", name, suffix)
			}
			return
		}
	}
	checkConversion(pass, call)
}

// packageOf resolves a selector's base to an imported package path, or
// "" when the selector is not package-qualified.
func packageOf(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// checkConversion flags string<->[]byte/[]rune conversions, which copy.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	argTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	dst, src := tv.Type, argTV.Type
	if isString(dst) && isByteOrRuneSlice(src) || isByteOrRuneSlice(dst) && isString(src) {
		pass.Reportf(call.Pos(), "string/[]byte conversion copies on a hot path; keep one representation or append into scratch")
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// allowedCalls pre-walks the region and exempts the recognized reuse
// idioms: self-appends and lazily-initialized makes guarded by a nil
// check on the same expression.
func allowedCalls(pass *analysis.Pass, region ast.Node) map[*ast.CallExpr]bool {
	allowed := make(map[*ast.CallExpr]bool)
	ast.Inspect(region, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
					if types.ExprString(n.Lhs[i]) == types.ExprString(call.Args[0]) {
						allowed[call] = true
					}
				}
			}
		case *ast.IfStmt:
			target, ok := nilCheckTarget(n.Cond)
			if !ok {
				return true
			}
			ast.Inspect(n.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, rhs := range as.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" &&
						types.ExprString(as.Lhs[i]) == target {
						allowed[call] = true
					}
				}
				return true
			})
		}
		return true
	})
	return allowed
}

// nilCheckTarget matches `x == nil` (either order) and returns x's
// expression string.
func nilCheckTarget(cond ast.Expr) (string, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op.String() != "==" {
		return "", false
	}
	if isNilIdent(be.Y) {
		return types.ExprString(be.X), true
	}
	if isNilIdent(be.X) {
		return types.ExprString(be.Y), true
	}
	return "", false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// appendReusesCapacity reports whether the append's destination is an
// existing buffer: a reslice (buf[:0]) or a parameter of the enclosing
// function (the fastjson appender contract — the caller amortizes).
// Self-appends were already exempted by allowedCalls.
func appendReusesCapacity(pass *analysis.Pass, call *ast.CallExpr, params map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return true // type error; not ours
	}
	switch dst := ast.Unparen(call.Args[0]).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[dst]; obj != nil && params[obj] {
			return true
		}
	}
	return false
}

// paramObjects collects the parameter objects of fd and of every func
// literal in the region; appending to any of them is the caller's
// amortization to manage.
func paramObjects(pass *analysis.Pass, fd *ast.FuncDecl, region ast.Node) map[types.Object]bool {
	params := make(map[types.Object]bool)
	addFieldList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	addFieldList(fd.Type.Params)
	ast.Inspect(region, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			addFieldList(lit.Type.Params)
		}
		return true
	})
	return params
}
