// Hyper-parameter optimization: how the F1 and F(h) = F1·Q(R) objectives
// (paper §3.6) steer the choice of (ω, δ) differently, and how Bayesian
// optimization compares against grid search on cost.
//
//	go run ./examples/hyperopt
package main

import (
	"fmt"
	"log"

	cdt "cdt"
	"cdt/internal/datasets/sge"
	"cdt/internal/timeseries"
)

func main() {
	corpus := sge.Calorie(sge.CalorieOptions{Sensors: 6, Days: 500, Seed: 3})
	if _, err := corpus.Normalize(); err != nil {
		log.Fatal(err)
	}
	var train, val, test []*cdt.Series
	for _, s := range corpus.Series {
		sp, err := timeseries.ChronologicalSplit(s, 0.6, 0.2, 0.2)
		if err != nil {
			log.Fatal(err)
		}
		train = append(train, sp.Train)
		val = append(val, sp.Validation)
		test = append(test, sp.Test)
	}

	common := cdt.OptimizeOptions{
		OmegaMax: 15, DeltaMax: 8,
		InitPoints: 5, Iterations: 12, Seed: 9,
		Base: cdt.Options{MaxCompositionLen: 4},
	}

	for _, obj := range []cdt.Objective{cdt.ObjectiveF1, cdt.ObjectiveFH} {
		res, err := cdt.Optimize(train, val, obj, common)
		if err != nil {
			log.Fatal(err)
		}
		model, err := cdt.Fit(append(append([]*cdt.Series{}, train...), val...), res.Best)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := model.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("objective %-5s -> omega=%-2d delta=%-2d | validation %.3f | test F1=%.2f Q=%.2f F(h)=%.2f | %d rules\n",
			obj, res.Best.Omega, res.Best.Delta, res.BestScore, rep.F1, rep.Q, rep.FH, model.NumRules())
		fmt.Println("  search trajectory (first 8 evaluations):")
		for i, sample := range res.History {
			if i == 8 {
				break
			}
			fmt.Printf("    eval %2d: omega=%-2d delta=%-2d score=%.3f\n", i+1, sample.Omega, sample.Delta, sample.Score)
		}
	}

	// Cost comparison: the Bayesian optimizer evaluates a fraction of the
	// 13·8 = 104-cell grid that exhaustive search would train.
	gridCells := (common.OmegaMax - 3 + 1) * (common.DeltaMax - 1 + 1)
	fmt.Printf("\ngrid search would train %d configurations; Bayesian optimization trained %d\n",
		gridCells, common.InitPoints+common.Iterations)
}
