// Command cdt trains Composition-based Decision Trees on CSV time-series
// and detects anomalies with the learned rules.
//
// Usage:
//
//	cdt label    -in data.csv -delta 2
//	cdt train    -in labeled.csv -omega 5 -delta 2 [-explain] [-save model.json]
//	cdt train    -in labeled.csv -scales 1,4,16 [-agg max] [-fusion any] [-save pyramid.json]
//	cdt detect   -train labeled.csv -in fresh.csv -omega 5 -delta 2
//	cdt detect   -model model.json -in fresh.csv
//	cdt optimize -in labeled.csv [-objective fh] [-iters 25]
//	cdt audit    -train labeled.csv -eval other.csv -omega 5 -delta 2
//	cdt plot     -in data.csv [-detect -train labeled.csv]
//	cdt stream   -model model.json -in feed.csv -min 0 -max 100
//	cdt store    <versions|audit|publish|promote|rollback|gc|diff> -dir store [flags]
//
// Passing -scales to train fits a resolution pyramid — one rule model
// per downsample factor, fused at detection time — whose detections
// carry an anomaly-type tag (point, contextual, collective). Saved
// pyramid artifacts load anywhere a plain model does (detect, stream,
// the store, cdtserve).
//
// CSV files carry one "value[,is_anomaly]" row per point after an
// optional header (the format written by cmd/datagen and
// datasets.WriteCSV).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	cdt "cdt"
	"cdt/internal/ascii"
	"cdt/internal/datasets"
	"cdt/internal/pattern"
	"cdt/internal/timeseries"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: cdt <label|train|detect|optimize|audit|stream|plot|store> [flags]")
	}
	switch args[0] {
	case "label":
		return runLabel(args[1:])
	case "train":
		return runTrain(args[1:])
	case "detect":
		return runDetect(args[1:])
	case "optimize":
		return runOptimize(args[1:])
	case "audit":
		return runAudit(args[1:])
	case "stream":
		return runStream(args[1:])
	case "plot":
		return runPlot(args[1:])
	case "store":
		return runStore(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want label, train, detect, optimize, audit, stream, plot, or store)", args[0])
	}
}

// loadSeries reads a CSV series from disk.
func loadSeries(path string) (*timeseries.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return datasets.ReadCSV(f, path)
}

func runLabel(args []string) error {
	fs := flag.NewFlagSet("label", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV (value[,is_anomaly] rows)")
	delta := fs.Int("delta", 2, "magnitude granularity δ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("label: -in is required")
	}
	s, err := loadSeries(*in)
	if err != nil {
		return err
	}
	if _, err := s.Normalize(); err != nil {
		return err
	}
	cfg := pattern.NewConfig(*delta)
	labels, err := cfg.LabelSeries(s.Values)
	if err != nil {
		return err
	}
	for i, l := range labels {
		marker := ""
		if s.Anomalies != nil && s.Anomalies[i+1] {
			marker = "  <- anomaly"
		}
		fmt.Printf("%6d  %-14s%s\n", i+1, cfg.LabelName(l), marker)
	}
	return nil
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	in := fs.String("in", "", "labeled training CSV")
	omega := fs.Int("omega", 5, "window size ω")
	delta := fs.Int("delta", 2, "magnitude granularity δ")
	explain := fs.Bool("explain", false, "render rule sketches and readings")
	showTree := fs.Bool("tree", false, "render the decision tree")
	savePath := fs.String("save", "", "write the trained model as JSON to this path")
	scales := fs.String("scales", "", `comma-separated downsample factors for a resolution pyramid (e.g. "1,4,16"; must start with 1)`)
	agg := fs.String("agg", "mean", `pyramid downsample aggregator: "mean" or "max"`)
	fusion := fs.String("fusion", "any", `pyramid fusion policy: "any", "majority", or "all"`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("train: -in is required")
	}
	s, err := loadSeries(*in)
	if err != nil {
		return err
	}
	if !s.Labeled() {
		return fmt.Errorf("train: %s has no is_anomaly column", *in)
	}
	if *scales != "" {
		return trainPyramid(s, *omega, *delta, *scales, *agg, *fusion, *explain, *savePath)
	}
	model, err := cdt.Fit([]*cdt.Series{s}, cdt.Options{Omega: *omega, Delta: *delta})
	if err != nil {
		return err
	}
	rep, err := model.Evaluate([]*cdt.Series{s})
	if err != nil {
		return err
	}
	fmt.Printf("trained CDT: omega=%d delta=%d rules=%d\n", *omega, *delta, model.NumRules())
	fmt.Printf("training fit: F1=%.3f Q=%.3f F(h)=%.3f\n\n", rep.F1, rep.Q, rep.FH)
	fmt.Print(model.RuleText())
	if *explain {
		fmt.Println()
		fmt.Print(model.Explain())
	}
	if *showTree {
		fmt.Println()
		fmt.Print(model.TreeText())
	}
	if *savePath != "" {
		return saveArtifact(model, *savePath)
	}
	return nil
}

// saveArtifact writes a trained artifact (plain model or pyramid) as
// JSON to path.
func saveArtifact(art cdt.Artifact, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := art.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", path)
	return nil
}

// parseScales parses the -scales flag ("1,4,16") into pyramid factors.
func parseScales(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		f, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("train: -scales: bad factor %q", part)
		}
		out = append(out, f)
	}
	return out, nil
}

// trainPyramid handles `cdt train -scales ...`: fit one rule model per
// downsample factor and report the fused result.
func trainPyramid(s *cdt.Series, omega, delta int, scales, agg, fusion string, explain bool, savePath string) error {
	factors, err := parseScales(scales)
	if err != nil {
		return err
	}
	policy, err := cdt.ParseFusionPolicy(fusion)
	if err != nil {
		return fmt.Errorf("train: -fusion: %w", err)
	}
	pm, err := cdt.FitPyramid([]*cdt.Series{s}, cdt.Options{Omega: omega, Delta: delta}, cdt.PyramidConfig{
		Factors:    factors,
		Aggregator: agg,
		Fusion:     cdt.Fusion{Policy: policy},
	})
	if err != nil {
		return err
	}
	rep, err := pm.Evaluate([]*cdt.Series{s})
	if err != nil {
		return err
	}
	fmt.Printf("trained CDT pyramid: omega=%d delta=%d scales=%s fusion=%s rules=%d\n",
		omega, delta, scales, policy, pm.NumRules())
	// Pyramid evaluation is point-level; recall is the meaningful fit
	// number (window flags over-cover single points by construction).
	fmt.Printf("training fit: precision=%.3f recall=%.3f F1=%.3f\n\n",
		rep.Confusion.Precision(), rep.Confusion.Recall(), rep.F1)
	fmt.Print(pm.RuleText())
	if explain {
		fmt.Println()
		fmt.Print(pm.Explain())
	}
	if savePath != "" {
		return saveArtifact(pm, savePath)
	}
	return nil
}

func runDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	trainPath := fs.String("train", "", "labeled training CSV (alternative to -model)")
	modelPath := fs.String("model", "", "saved model JSON (alternative to -train)")
	in := fs.String("in", "", "series to scan")
	omega := fs.Int("omega", 5, "window size ω (with -train)")
	delta := fs.Int("delta", 2, "magnitude granularity δ (with -train)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*trainPath == "") == (*modelPath == "") {
		return fmt.Errorf("detect: exactly one of -train or -model is required")
	}
	if *in == "" {
		return fmt.Errorf("detect: -in is required")
	}
	var model cdt.Artifact
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		model, err = cdt.LoadAny(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		train, err := loadSeries(*trainPath)
		if err != nil {
			return err
		}
		model, err = cdt.Fit([]*cdt.Series{train}, cdt.Options{Omega: *omega, Delta: *delta})
		if err != nil {
			return err
		}
	}
	target, err := loadSeries(*in)
	if err != nil {
		return err
	}
	// Every artifact kind flags points; pyramids additionally classify
	// each fused detection, reported below the per-point listing.
	pf, ok := model.(interface {
		PointFlags(*cdt.Series) ([]bool, error)
	})
	if !ok {
		return fmt.Errorf("detect: %q artifacts cannot flag points", model.Info().Kind)
	}
	flags, err := pf.PointFlags(target)
	if err != nil {
		return err
	}
	n := 0
	for i, flagged := range flags {
		if flagged {
			fmt.Printf("anomaly at point %d (value %g)\n", i, target.Values[i])
			n++
		}
	}
	fmt.Printf("%d/%d points flagged\n", n, len(flags))
	if pm, ok := model.(*cdt.PyramidModel); ok {
		dets, err := pm.DetectPyramid(target)
		if err != nil {
			return err
		}
		for _, d := range dets {
			fmt.Printf("%s anomaly spanning points %d..%d (fired at %s)\n",
				d.Type, d.Start, d.End, scaleList(d.Scales))
		}
	}
	return nil
}

// scaleList renders the firing scales of a fused detection ("x1, x4").
func scaleList(scales []cdt.ScaleDetection) string {
	seen := make(map[int]bool)
	var parts []string
	for _, sd := range scales {
		if !seen[sd.Factor] {
			seen[sd.Factor] = true
			parts = append(parts, fmt.Sprintf("x%d", sd.Factor))
		}
	}
	return strings.Join(parts, ", ")
}

func runOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	in := fs.String("in", "", "labeled CSV (split 60/20/20 internally)")
	objective := fs.String("objective", "fh", `objective: "f1" or "fh"`)
	iters := fs.Int("iters", 25, "surrogate-guided evaluations")
	init := fs.Int("init", 5, "random initial evaluations")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("optimize: -in is required")
	}
	var obj cdt.Objective
	switch *objective {
	case "f1":
		obj = cdt.ObjectiveF1
	case "fh":
		obj = cdt.ObjectiveFH
	default:
		return fmt.Errorf("optimize: unknown objective %q", *objective)
	}
	s, err := loadSeries(*in)
	if err != nil {
		return err
	}
	if !s.Labeled() {
		return fmt.Errorf("optimize: %s has no is_anomaly column", *in)
	}
	if _, err := s.Normalize(); err != nil {
		return err
	}
	split, err := timeseries.ChronologicalSplit(s, 0.6, 0.2, 0.2)
	if err != nil {
		return err
	}
	res, err := cdt.Optimize([]*cdt.Series{split.Train}, []*cdt.Series{split.Validation}, obj, cdt.OptimizeOptions{
		InitPoints: *init,
		Iterations: *iters,
		Seed:       *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("best: omega=%d delta=%d (validation %s=%.3f after %d evaluations)\n",
		res.Best.Omega, res.Best.Delta, obj, res.BestScore, res.Evaluations)
	model, err := cdt.Fit([]*cdt.Series{split.Train, split.Validation}, res.Best)
	if err != nil {
		return err
	}
	rep, err := model.Evaluate([]*cdt.Series{split.Test})
	if err != nil {
		return err
	}
	fmt.Printf("test: F1=%.3f Q=%.3f F(h)=%.3f rules=%d\n", rep.F1, rep.Q, rep.FH, rep.NumRules)
	fmt.Print(model.RuleText())
	return nil
}

func runAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	trainPath := fs.String("train", "", "labeled training CSV")
	evalPath := fs.String("eval", "", "labeled evaluation CSV (defaults to the training file)")
	omega := fs.Int("omega", 5, "window size ω")
	delta := fs.Int("delta", 2, "magnitude granularity δ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trainPath == "" {
		return fmt.Errorf("audit: -train is required")
	}
	if *evalPath == "" {
		*evalPath = *trainPath
	}
	train, err := loadSeries(*trainPath)
	if err != nil {
		return err
	}
	eval, err := loadSeries(*evalPath)
	if err != nil {
		return err
	}
	if !eval.Labeled() {
		return fmt.Errorf("audit: %s has no is_anomaly column", *evalPath)
	}
	model, err := cdt.Fit([]*cdt.Series{train}, cdt.Options{Omega: *omega, Delta: *delta})
	if err != nil {
		return err
	}
	stats, err := model.Audit([]*cdt.Series{eval})
	if err != nil {
		return err
	}
	fmt.Printf("%-4s %-10s %-12s %-10s %-8s rule\n", "#", "support", "false-alarms", "precision", "I(Rs)")
	for _, st := range stats {
		fmt.Printf("R%-3d %-10d %-12d %-10.2f %-8.2f IF %s THEN anomaly\n",
			st.Index, st.Support, st.FalseAlarms, st.Precision(), st.Interpretability, st.Text)
	}
	return nil
}

func runStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	modelPath := fs.String("model", "", "saved model JSON")
	in := fs.String("in", "", "CSV feed to replay point-by-point")
	min := fs.Float64("min", 0, "expected minimum sensor value")
	max := fs.Float64("max", 0, "expected maximum sensor value")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *in == "" {
		return fmt.Errorf("stream: -model and -in are required")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := cdt.LoadAny(f)
	f.Close()
	if err != nil {
		return err
	}
	feed, err := loadSeries(*in)
	if err != nil {
		return err
	}
	scale := cdt.Scale{Min: *min, Max: *max}
	if scale.Max <= scale.Min {
		// Derive the scale from the feed itself when not provided.
		lo, hi, err := feed.MinMax()
		if err != nil {
			return err
		}
		scale = cdt.Scale{Min: lo, Max: hi}
	}
	stream, err := model.OpenStream(scale)
	if err != nil {
		return err
	}
	alerts := 0
	for i, v := range feed.Values {
		for _, d := range stream.Push(v) {
			alerts++
			fmt.Printf("alert after point %d: window %d..%d", i, d.WindowStart, d.WindowEnd)
			if d.Scale > 1 {
				fmt.Printf(" scale=x%d", d.Scale)
			}
			if d.Type != "" {
				fmt.Printf(" type=%s", d.Type)
			}
			fmt.Println()
		}
	}
	fmt.Printf("%d alerts over %d points\n", alerts, feed.Len())
	return nil
}

func runPlot(args []string) error {
	fs := flag.NewFlagSet("plot", flag.ContinueOnError)
	in := fs.String("in", "", "CSV series to chart")
	trainPath := fs.String("train", "", "labeled training CSV: train a model and overlay detections")
	omega := fs.Int("omega", 5, "window size ω (with -train)")
	delta := fs.Int("delta", 2, "magnitude granularity δ (with -train)")
	width := fs.Int("width", 72, "chart width in columns")
	height := fs.Int("height", 12, "chart height in rows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("plot: -in is required")
	}
	s, err := loadSeries(*in)
	if err != nil {
		return err
	}
	var flags []bool
	switch {
	case *trainPath != "":
		train, err := loadSeries(*trainPath)
		if err != nil {
			return err
		}
		model, err := cdt.Fit([]*cdt.Series{train}, cdt.Options{Omega: *omega, Delta: *delta})
		if err != nil {
			return err
		}
		flags, err = model.PointFlags(s)
		if err != nil {
			return err
		}
	case s.Labeled():
		flags = s.Anomalies
	}
	fmt.Print(ascii.Plot(s.Values, flags, ascii.PlotOptions{Width: *width, Height: *height}))
	return nil
}
