package mining

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMineClosedItemsetsBasic(t *testing.T) {
	txs := [][]int{
		{1, 2, 3},
		{1, 2},
		{1, 2, 4},
		{5},
	}
	got, err := MineClosedItemsets(txs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Frequent: {1}(3) {2}(3) {1,2}(3). {1} and {2} are not closed
	// (superset {1,2} has equal support); {1,2} is closed.
	if len(got) != 1 {
		t.Fatalf("got %d closed itemsets: %v", len(got), got)
	}
	if got[0].Support != 3 || !equalInts(got[0].Items, []int{1, 2}) {
		t.Errorf("closed itemset = %+v", got[0])
	}
}

func TestMineClosedItemsetsKeepsDistinctSupports(t *testing.T) {
	txs := [][]int{
		{1, 2},
		{1, 2},
		{1},
	}
	got, err := MineClosedItemsets(txs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// {1} support 3 (closed: only superset {1,2} has support 2);
	// {1,2} support 2 (closed). {2} support 2 not closed.
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestMineClosedItemsetsMaxLen(t *testing.T) {
	txs := [][]int{{1, 2, 3}, {1, 2, 3}}
	got, err := MineClosedItemsets(txs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range got {
		if len(fs.Items) > 1 {
			t.Errorf("itemset %v exceeds maxLen", fs.Items)
		}
	}
}

func TestMineClosedItemsetsDuplicateItemsInTransaction(t *testing.T) {
	txs := [][]int{{1, 1, 1}, {1}}
	got, err := MineClosedItemsets(txs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Support != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestMineClosedItemsetsBadSupport(t *testing.T) {
	if _, err := MineClosedItemsets(nil, 0, 0); err == nil {
		t.Error("minSupport 0 accepted")
	}
}

// Every reported support must equal a direct recount, and every reported
// itemset must be closed.
func TestMineClosedItemsetsSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		txs := make([][]int, rng.Intn(20)+5)
		for i := range txs {
			n := rng.Intn(5) + 1
			for j := 0; j < n; j++ {
				txs[i] = append(txs[i], rng.Intn(6))
			}
		}
		minSup := rng.Intn(3) + 2
		got, err := MineClosedItemsets(txs, minSup, 0)
		if err != nil {
			t.Fatal(err)
		}
		canon := make([]Itemset, len(txs))
		for i, tx := range txs {
			canon[i] = dedupeSorted(tx)
		}
		for _, fs := range got {
			sup := 0
			for _, tx := range canon {
				if fs.Items.SubsetOf(tx) {
					sup++
				}
			}
			if sup != fs.Support {
				t.Fatalf("itemset %v reported support %d, actual %d", fs.Items, fs.Support, sup)
			}
			if sup < minSup {
				t.Fatalf("itemset %v infrequent", fs.Items)
			}
			for _, other := range got {
				if len(other.Items) > len(fs.Items) && other.Support == fs.Support && fs.Items.SubsetOf(other.Items) {
					t.Fatalf("itemset %v not closed (%v)", fs.Items, other.Items)
				}
			}
		}
	}
}

func dedupeSorted(t []int) Itemset {
	seen := map[int]struct{}{}
	var out Itemset
	for _, v := range t {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

func TestSubsetOf(t *testing.T) {
	tests := []struct {
		a, b Itemset
		want bool
	}{
		{Itemset{1, 2}, Itemset{1, 2, 3}, true},
		{Itemset{1, 4}, Itemset{1, 2, 3}, false},
		{Itemset{}, Itemset{1}, true},
		{Itemset{1, 2, 3}, Itemset{1, 2}, false},
		{Itemset{2}, Itemset{1, 2, 3}, true},
	}
	for _, tc := range tests {
		if got := tc.a.SubsetOf(tc.b); got != tc.want {
			t.Errorf("%v ⊆ %v = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMineClosedSequencesBasic(t *testing.T) {
	seqs := [][]int{
		{1, 2, 3},
		{1, 3, 2},
		{1, 2},
	}
	got, err := MineClosedSequences(seqs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	bySupport := make(map[string]int)
	for _, fs := range got {
		bySupport[keyOf(fs.Seq)] = fs.Support
	}
	// [1 2] occurs in all three (subsequence in {1,3,2}).
	if bySupport[keyOf([]int{1, 2})] != 3 {
		t.Errorf("support of [1 2] = %d, want 3; mined %v", bySupport[keyOf([]int{1, 2})], got)
	}
	// [1] support 3 is NOT closed ([1 2] has equal support).
	if _, ok := bySupport[keyOf([]int{1})]; ok {
		t.Errorf("[1] should be absorbed by [1 2]: %v", got)
	}
}

func keyOf(s []int) string {
	b := make([]byte, len(s))
	for i, v := range s {
		b[i] = byte(v)
	}
	return string(b)
}

func TestMineClosedSequencesMaxLen(t *testing.T) {
	seqs := [][]int{{1, 2, 3, 4}, {1, 2, 3, 4}}
	got, err := MineClosedSequences(seqs, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range got {
		if len(fs.Seq) > 2 {
			t.Errorf("sequence %v exceeds maxLen", fs.Seq)
		}
	}
}

func TestMineClosedSequencesRepeatedItems(t *testing.T) {
	seqs := [][]int{{1, 1, 2}, {1, 1, 3}}
	got, err := MineClosedSequences(seqs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fs := range got {
		if equalInts(fs.Seq, []int{1, 1}) {
			found = true
			if fs.Support != 2 {
				t.Errorf("[1 1] support = %d, want 2", fs.Support)
			}
		}
	}
	if !found {
		t.Errorf("[1 1] not mined: %v", got)
	}
}

func TestMineClosedSequencesSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		seqs := make([][]int, rng.Intn(15)+5)
		for i := range seqs {
			n := rng.Intn(6) + 1
			for j := 0; j < n; j++ {
				seqs[i] = append(seqs[i], rng.Intn(4))
			}
		}
		minSup := rng.Intn(3) + 2
		got, err := MineClosedSequences(seqs, minSup, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, fs := range got {
			sup := 0
			for _, s := range seqs {
				if isSubsequence(fs.Seq, s) {
					sup++
				}
			}
			if sup != fs.Support {
				t.Fatalf("sequence %v reported support %d, actual %d", fs.Seq, fs.Support, sup)
			}
			if sup < minSup {
				t.Fatalf("sequence %v infrequent", fs.Seq)
			}
		}
	}
}

func TestMineClosedSequencesBadSupport(t *testing.T) {
	if _, err := MineClosedSequences(nil, 0, 0); err == nil {
		t.Error("minSupport 0 accepted")
	}
}

func TestContainsSequence(t *testing.T) {
	if !ContainsSequence([]int{1, 3}, []int{1, 2, 3}) {
		t.Error("gapped subsequence not found")
	}
	if ContainsSequence([]int{3, 1}, []int{1, 2, 3}) {
		t.Error("order ignored")
	}
	if !ContainsSequence(nil, []int{1}) {
		t.Error("empty pattern should match")
	}
}

func TestLongestCommonSubsequence(t *testing.T) {
	tests := []struct {
		a, b []int
		want int
	}{
		{[]int{1, 2, 3}, []int{1, 3}, 2},
		{[]int{1, 2, 3}, []int{4, 5}, 0},
		{nil, []int{1}, 0},
		{[]int{1, 2, 3}, []int{1, 2, 3}, 3},
		{[]int{2, 1, 3}, []int{1, 2, 3}, 2},
	}
	for _, tc := range tests {
		if got := LongestCommonSubsequence(tc.a, tc.b); got != tc.want {
			t.Errorf("LCS(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// LCS is symmetric and bounded by min length; equals len when one is a
// subsequence of the other.
func TestLCSProperties(t *testing.T) {
	f := func(aRaw, bRaw []byte) bool {
		a := make([]int, len(aRaw)%12)
		b := make([]int, len(bRaw)%12)
		for i := range a {
			a[i] = int(aRaw[i] % 4)
		}
		for i := range b {
			b[i] = int(bRaw[i] % 4)
		}
		l := LongestCommonSubsequence(a, b)
		if l != LongestCommonSubsequence(b, a) {
			return false
		}
		min := len(a)
		if len(b) < min {
			min = len(b)
		}
		if l > min || l < 0 {
			return false
		}
		if isSubsequence(a, b) && l != len(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func equalInts(a []int, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
