package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	cdt "cdt"
)

// Sessions manages live streaming-detection sessions. cdt.Stream is not
// safe for concurrent use (it owns an incremental cursor over its
// model's shared read-only rule engine), so each session wraps its
// stream in a mutex; the manager itself guards the id→session map and
// evicts sessions that have been idle longer than the TTL (a monitor
// that silently went away must not leak its cursor state forever).
type Sessions struct {
	ttl time.Duration
	tel *serverMetrics // nil in unit tests that build Sessions bare

	mu sync.Mutex
	m  map[string]*Session

	stop chan struct{}
	once sync.Once
}

// Session is one live stream handle. All stream access goes through
// Push/Reset, which serialize on the session mutex.
type Session struct {
	ID    string
	Model string // registry name the stream was created from
	Omega int
	tel   *serverMetrics // nil in unit tests that build Sessions bare

	mu       sync.Mutex
	stream   *cdt.Stream
	lastUsed time.Time
}

// NewSessions starts a session manager; ttl <= 0 disables eviction. The
// janitor wakes at ttl/4 so an idle session lives at most ~1.25·ttl.
// tel (which may be nil) receives eviction counts and Push latencies.
func NewSessions(ttl time.Duration, tel *serverMetrics) *Sessions {
	s := &Sessions{ttl: ttl, tel: tel, m: make(map[string]*Session), stop: make(chan struct{})}
	if ttl > 0 {
		go s.janitor()
	}
	return s
}

func (s *Sessions) janitor() {
	tick := s.ttl / 4
	if tick <= 0 {
		tick = s.ttl
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			s.evictIdle(now)
		}
	}
}

// evictIdle removes sessions idle longer than the TTL.
func (s *Sessions) evictIdle(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, sess := range s.m {
		sess.mu.Lock()
		idle := now.Sub(sess.lastUsed)
		sess.mu.Unlock()
		if idle > s.ttl {
			delete(s.m, id)
			stats.Add("sessions_evicted", 1)
			stats.Add("active_sessions", -1)
			if s.tel != nil {
				s.tel.sessionsEvicted.Inc()
			}
		}
	}
}

// Close stops the eviction janitor. Live sessions are simply dropped.
func (s *Sessions) Close() {
	s.once.Do(func() { close(s.stop) })
}

// newSessionID returns a random 128-bit hex id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade loudly.
		panic(fmt.Sprintf("server: session id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Create opens a stream on model (named name in the registry) and
// registers it. The session pins the model it was created with, so a
// registry reload does not disturb live streams.
func (s *Sessions) Create(name string, model *cdt.Model, scale cdt.Scale) (*Session, error) {
	stream, err := model.NewStream(scale)
	if err != nil {
		return nil, err
	}
	sess := &Session{
		ID:       newSessionID(),
		Model:    name,
		Omega:    model.Opts.Omega,
		tel:      s.tel,
		stream:   stream,
		lastUsed: time.Now(),
	}
	s.mu.Lock()
	s.m[sess.ID] = sess
	s.mu.Unlock()
	stats.Add("active_sessions", 1)
	return sess, nil
}

// Get resolves a session by id.
func (s *Sessions) Get(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.m[id]
	return sess, ok
}

// Delete removes a session, reporting whether it existed.
func (s *Sessions) Delete(id string) bool {
	s.mu.Lock()
	_, ok := s.m[id]
	delete(s.m, id)
	s.mu.Unlock()
	if ok {
		stats.Add("active_sessions", -1)
	}
	return ok
}

// Len returns the number of live sessions.
func (s *Sessions) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Push feeds values through the session's stream in order and returns
// every detection they produced, tagged with the number of points the
// stream had consumed when the detection fired.
func (sess *Session) Push(values []float64) ([]cdt.Detection, int, bool) {
	start := time.Now()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	var out []cdt.Detection
	for _, v := range values {
		out = append(out, sess.stream.Push(v)...)
	}
	sess.lastUsed = time.Now()
	if sess.tel != nil {
		// Includes any wait on the session mutex: an operator alerting on
		// push latency cares about time-to-result, not just scoring.
		sess.tel.pushLatency.Observe(time.Since(start).Seconds())
	}
	return out, sess.stream.Points(), sess.stream.Ready()
}

// Reset clears the stream state, keeping model and scale.
func (sess *Session) Reset() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.stream.Reset()
	sess.lastUsed = time.Now()
}
