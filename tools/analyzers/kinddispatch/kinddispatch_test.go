package kinddispatch_test

import (
	"testing"

	"cdt/tools/analysistest"
	"cdt/tools/analyzers/kinddispatch"
)

func TestKindDispatch(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), kinddispatch.Analyzer, "kinddispatch")
}
