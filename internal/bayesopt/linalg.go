package bayesopt

import (
	"errors"
	"math"
)

// errNotPD is returned when a kernel matrix is not positive definite even
// after jitter; callers respond by increasing jitter.
var errNotPD = errors.New("bayesopt: matrix not positive definite")

// cholesky computes the lower-triangular factor L of a symmetric
// positive-definite matrix A (row-major, n×n) so that A = L·Lᵀ. A is not
// modified.
func cholesky(a []float64, n int) ([]float64, error) {
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return nil, errNotPD
				}
				l[i*n+j] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return l, nil
}

// solveLower solves L·x = b for lower-triangular L.
func solveLower(l []float64, n int, b []float64) []float64 {
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x
}

// solveUpperT solves Lᵀ·x = b for lower-triangular L.
func solveUpperT(l []float64, n int, b []float64) []float64 {
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x
}

// normPDF is the standard normal density.
func normPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// normCDF is the standard normal cumulative distribution, via erf.
func normCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}
