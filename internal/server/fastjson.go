package server

// Hand-rolled JSON codec for the two scoring hot paths: POST
// /models/{name}/detect and POST /streams/{id}/points. encoding/json's
// reflective decoder and indenting encoder dominated those endpoints'
// profiles (the detection work itself is a small fraction of request
// time), so their request shapes are parsed by a small recursive-descent
// scanner and their responses emitted by direct appenders. Every other
// endpoint keeps the generic readJSON/writeJSON plumbing — the fast
// path buys throughput only where requests carry thousands of numbers.
//
// Contract parity with readJSON, which the handler tests pin:
//
//   - unknown object fields are rejected with encoding/json's own
//     message ("json: unknown field %q"), mapped to 400;
//   - non-whitespace bytes after the document map to 400 "trailing data
//     after JSON body" (errTrailingData);
//   - an oversized body surfaces http.MaxBytesError, mapped to 413;
//   - field names match case-insensitively, null is accepted wherever
//     encoding/json accepts it, and numbers follow the JSON grammar
//     (no leading zeros, hex, or bare '.5') with strconv.ParseFloat
//     rounding.
//
// Known divergences, all on malformed input only: syntax-error wording
// differs (callers only surface that a 400 has *a* message), and
// invalid UTF-8 inside strings is passed through rather than replaced
// with U+FFFD.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"unicode/utf16"
	"unicode/utf8"
)

// errTrailingData flags non-whitespace bytes after a valid JSON body.
var errTrailingData = errors.New("trailing data after JSON body")

// writeBodyError maps a body read/parse error to the same status codes
// and messages readJSON produces.
func writeBodyError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
	case errors.Is(err, errTrailingData):
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
	default:
		writeError(w, http.StatusBadRequest, "decoding body: %v", err)
	}
}

// --- request parsing ----------------------------------------------------

type jsonParser struct {
	data []byte
	pos  int
}

func (p *jsonParser) syntaxf(format string, args ...any) error {
	return fmt.Errorf("invalid JSON: "+format+" at offset %d", append(args, p.pos)...)
}

func (p *jsonParser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *jsonParser) consume(c byte) bool {
	if p.pos < len(p.data) && p.data[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// tryNull consumes a leading "null" keyword. A trailing identifier
// character (as in "nullx") is left for the caller's next expectation
// to reject.
func (p *jsonParser) tryNull() bool {
	if len(p.data)-p.pos >= 4 && string(p.data[p.pos:p.pos+4]) == "null" {
		p.pos += 4
		return true
	}
	return false
}

// end verifies nothing but whitespace follows the document.
func (p *jsonParser) end() error {
	p.skipSpace()
	if p.pos != len(p.data) {
		return errTrailingData
	}
	return nil
}

// object parses {"key": value, ...}, invoking field with each key; field
// must consume the value.
func (p *jsonParser) object(field func(key string) error) error {
	p.skipSpace()
	if !p.consume('{') {
		return p.syntaxf("expected object")
	}
	p.skipSpace()
	if p.consume('}') {
		return nil
	}
	for {
		p.skipSpace()
		key, err := p.stringValue()
		if err != nil {
			return err
		}
		p.skipSpace()
		if !p.consume(':') {
			return p.syntaxf("expected ':' after object key")
		}
		if err := field(key); err != nil {
			return err
		}
		p.skipSpace()
		if p.consume(',') {
			continue
		}
		if p.consume('}') {
			return nil
		}
		return p.syntaxf("expected ',' or '}' in object")
	}
}

// array parses [value, ...]; elem must consume one value.
func (p *jsonParser) array(elem func() error) error {
	p.skipSpace()
	if !p.consume('[') {
		return p.syntaxf("expected array")
	}
	p.skipSpace()
	if p.consume(']') {
		return nil
	}
	for {
		if err := elem(); err != nil {
			return err
		}
		p.skipSpace()
		if p.consume(',') {
			continue
		}
		if p.consume(']') {
			return nil
		}
		return p.syntaxf("expected ',' or ']' in array")
	}
}

// stringValue parses a JSON string. The fast path slices escape-free
// strings straight out of the input.
func (p *jsonParser) stringValue() (string, error) {
	d := p.data
	if p.pos >= len(d) || d[p.pos] != '"' {
		return "", p.syntaxf("expected string")
	}
	p.pos++
	start := p.pos
	for i := p.pos; i < len(d); i++ {
		switch c := d[i]; {
		case c == '"':
			p.pos = i + 1
			return string(d[start:i]), nil
		case c == '\\' || c < 0x20:
			return p.stringSlow(start, i)
		}
	}
	p.pos = len(d)
	return "", p.syntaxf("unterminated string")
}

// stringSlow finishes a string that contains escapes, starting from the
// first non-literal byte at index i (content begins at start).
func (p *jsonParser) stringSlow(start, i int) (string, error) {
	d := p.data
	buf := append(make([]byte, 0, 2*(i-start)+16), d[start:i]...)
	for i < len(d) {
		c := d[i]
		switch {
		case c == '"':
			p.pos = i + 1
			return string(buf), nil
		case c < 0x20:
			p.pos = i
			return "", p.syntaxf("control character in string")
		case c != '\\':
			buf = append(buf, c)
			i++
		default:
			if i+1 >= len(d) {
				p.pos = i
				return "", p.syntaxf("unterminated escape")
			}
			i++
			switch e := d[i]; e {
			case '"', '\\', '/':
				buf = append(buf, e)
				i++
			case 'b':
				buf = append(buf, '\b')
				i++
			case 'f':
				buf = append(buf, '\f')
				i++
			case 'n':
				buf = append(buf, '\n')
				i++
			case 'r':
				buf = append(buf, '\r')
				i++
			case 't':
				buf = append(buf, '\t')
				i++
			case 'u':
				if len(d) < i+5 {
					p.pos = i
					return "", p.syntaxf("unterminated \\u escape")
				}
				r, ok := hex4(d[i+1 : i+5])
				if !ok {
					p.pos = i
					return "", p.syntaxf("invalid \\u escape")
				}
				i += 5
				if utf16.IsSurrogate(r) {
					// A valid low surrogate in the next escape combines;
					// anything else leaves U+FFFD (encoding/json semantics)
					// and reprocesses the next bytes normally.
					r2 := rune(-1)
					if len(d) >= i+6 && d[i] == '\\' && d[i+1] == 'u' {
						if h, ok := hex4(d[i+2 : i+6]); ok {
							r2 = h
						}
					}
					if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
						r = dec
						i += 6
					} else {
						r = utf8.RuneError
					}
				}
				buf = utf8.AppendRune(buf, r)
			default:
				p.pos = i
				return "", p.syntaxf("invalid escape character %q", e)
			}
		}
	}
	p.pos = len(d)
	return "", p.syntaxf("unterminated string")
}

func hex4(d []byte) (rune, bool) {
	var r rune
	for _, c := range d[:4] {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, false
		}
	}
	return r, true
}

// pow10 holds the exactly-representable small powers of ten used by the
// fast float path.
var pow10 = [16]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15}

// number parses one JSON number. The token is validated against the
// JSON grammar (so "01", "+1", ".5" and "1." are rejected exactly as
// encoding/json rejects them), then converted: plain decimals with at
// most 15 significant digits take an exact integer-scale path (mantissa
// < 2⁵³ and divisor a small power of ten make the single division
// correctly rounded, so it equals strconv.ParseFloat); everything else
// falls back to strconv.ParseFloat.
func (p *jsonParser) number() (float64, error) {
	d := p.data
	start := p.pos
	i := p.pos
	if i < len(d) && d[i] == '-' {
		i++
	}
	switch {
	case i < len(d) && d[i] == '0':
		i++
	case i < len(d) && d[i] >= '1' && d[i] <= '9':
		for i < len(d) && d[i] >= '0' && d[i] <= '9' {
			i++
		}
	default:
		return 0, p.syntaxf("expected number")
	}
	sawExp := false
	if i < len(d) && d[i] == '.' {
		i++
		if i >= len(d) || d[i] < '0' || d[i] > '9' {
			p.pos = i
			return 0, p.syntaxf("digits required after decimal point")
		}
		for i < len(d) && d[i] >= '0' && d[i] <= '9' {
			i++
		}
	}
	if i < len(d) && (d[i] == 'e' || d[i] == 'E') {
		sawExp = true
		i++
		if i < len(d) && (d[i] == '+' || d[i] == '-') {
			i++
		}
		if i >= len(d) || d[i] < '0' || d[i] > '9' {
			p.pos = i
			return 0, p.syntaxf("digits required in exponent")
		}
		for i < len(d) && d[i] >= '0' && d[i] <= '9' {
			i++
		}
	}
	tok := d[start:i]
	p.pos = i
	if !sawExp {
		if f, ok := fastFloat(tok); ok {
			return f, nil
		}
	}
	f, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return 0, p.syntaxf("invalid number %q", tok)
	}
	return f, nil
}

// fastFloat converts a grammar-validated, exponent-free decimal token
// with at most 15 digits without allocating.
func fastFloat(b []byte) (float64, bool) {
	i := 0
	neg := false
	if b[0] == '-' {
		neg = true
		i = 1
	}
	var mant uint64
	nd, frac := 0, 0
	seenDot := false
	for ; i < len(b); i++ {
		c := b[i]
		if c == '.' {
			seenDot = true
			continue
		}
		mant = mant*10 + uint64(c-'0')
		nd++
		if seenDot {
			frac++
		}
		if nd > 15 {
			return 0, false
		}
	}
	f := float64(mant)
	if frac > 0 {
		f /= pow10[frac]
	}
	if neg {
		f = -f
	}
	return f, true
}

// floatArray parses an array of numbers (or null → nil slice).
func (p *jsonParser) floatArray() ([]float64, error) {
	p.skipSpace()
	if p.tryNull() {
		return nil, nil
	}
	out := []float64{}
	err := p.array(func() error {
		p.skipSpace()
		f, err := p.number()
		if err != nil {
			return err
		}
		out = append(out, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// parseBatchRequest decodes the body of POST /models/{name}/detect.
func parseBatchRequest(data []byte) (batchRequest, error) {
	var req batchRequest
	p := &jsonParser{data: data}
	p.skipSpace()
	if p.pos == len(p.data) {
		return req, io.EOF
	}
	if p.tryNull() {
		return req, p.end()
	}
	err := p.object(func(key string) error {
		if !strings.EqualFold(key, "series") {
			return fmt.Errorf("json: unknown field %q", key)
		}
		p.skipSpace()
		if p.tryNull() {
			req.Series = nil
			return nil
		}
		req.Series = []seriesPayload{}
		return p.array(func() error {
			var sp seriesPayload
			if err := p.seriesPayload(&sp); err != nil {
				return err
			}
			req.Series = append(req.Series, sp)
			return nil
		})
	})
	if err != nil {
		return req, err
	}
	return req, p.end()
}

func (p *jsonParser) seriesPayload(sp *seriesPayload) error {
	return p.object(func(key string) error {
		switch {
		case strings.EqualFold(key, "name"):
			p.skipSpace()
			if p.tryNull() {
				return nil
			}
			s, err := p.stringValue()
			if err != nil {
				return err
			}
			sp.Name = s
			return nil
		case strings.EqualFold(key, "values"):
			vs, err := p.floatArray()
			if err != nil {
				return err
			}
			sp.Values = vs
			return nil
		default:
			return fmt.Errorf("json: unknown field %q", key)
		}
	})
}

// parsePushPoints decodes the body of POST /streams/{id}/points.
func parsePushPoints(data []byte) (pushPointsRequest, error) {
	var req pushPointsRequest
	p := &jsonParser{data: data}
	p.skipSpace()
	if p.pos == len(p.data) {
		return req, io.EOF
	}
	if p.tryNull() {
		return req, p.end()
	}
	err := p.object(func(key string) error {
		if !strings.EqualFold(key, "points") {
			return fmt.Errorf("json: unknown field %q", key)
		}
		vs, err := p.floatArray()
		if err != nil {
			return err
		}
		req.Points = vs
		return nil
	})
	if err != nil {
		return req, err
	}
	return req, p.end()
}

// --- response encoding --------------------------------------------------

// respBufPool recycles response buffers across hot-path requests.
var respBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1<<12); return &b }}

// writeRawJSON sends a pre-encoded JSON body.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body) // the status line is already out; nothing to recover
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted, escaped JSON string.
//
//cdtlint:hotpath
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' || c == '\\' || c < 0x20 {
			dst = append(dst, s[start:i]...)
			switch c {
			case '"', '\\':
				dst = append(dst, '\\', c)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			start = i + 1
		}
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

//cdtlint:hotpath
func appendFiredRules(dst []byte, rules []firedRule) []byte {
	if rules == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, fr := range rules {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"index":`...)
		dst = strconv.AppendInt(dst, int64(fr.Index), 10)
		dst = append(dst, `,"text":`...)
		dst = appendJSONString(dst, fr.Text)
		if fr.Description != "" {
			dst = append(dst, `,"description":`...)
			dst = appendJSONString(dst, fr.Description)
		}
		dst = append(dst, '}')
	}
	return append(dst, ']')
}

// appendBatchResponse encodes a batchResponse exactly as encoding/json
// would (modulo indentation): nil slices render as null, and Error
// keeps its omitempty behavior.
//
//cdtlint:hotpath
func appendBatchResponse(dst []byte, v batchResponse) []byte {
	dst = append(dst, `{"model":`...)
	dst = appendJSONString(dst, v.Model)
	dst = append(dst, `,"results":`...)
	if v.Results == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range v.Results {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendSeriesResult(dst, &v.Results[i])
		}
		dst = append(dst, ']')
	}
	return append(dst, '}', '\n')
}

//cdtlint:hotpath
func appendSeriesResult(dst []byte, r *seriesResult) []byte {
	dst = append(dst, `{"name":`...)
	dst = appendJSONString(dst, r.Name)
	dst = append(dst, `,"detections":`...)
	if r.Detections == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i, d := range r.Detections {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"window":`...)
			dst = strconv.AppendInt(dst, int64(d.Window), 10)
			dst = append(dst, `,"start":`...)
			dst = strconv.AppendInt(dst, int64(d.Start), 10)
			dst = append(dst, `,"end":`...)
			dst = strconv.AppendInt(dst, int64(d.End), 10)
			dst = append(dst, `,"rules":`...)
			dst = appendFiredRules(dst, d.Rules)
			if d.Type != "" {
				dst = append(dst, `,"type":`...)
				dst = appendJSONString(dst, d.Type)
			}
			if len(d.Scales) > 0 {
				dst = append(dst, `,"scales":`...)
				dst = appendScaleDetails(dst, d.Scales)
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if r.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, r.Error)
	}
	return append(dst, '}')
}

// appendScaleDetails encodes a pyramid detection's per-scale breakdown.
//
//cdtlint:hotpath
func appendScaleDetails(dst []byte, scales []scaleDetail) []byte {
	dst = append(dst, '[')
	for i, sd := range scales {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"factor":`...)
		dst = strconv.AppendInt(dst, int64(sd.Factor), 10)
		dst = append(dst, `,"window":`...)
		dst = strconv.AppendInt(dst, int64(sd.Window), 10)
		dst = append(dst, `,"start":`...)
		dst = strconv.AppendInt(dst, int64(sd.Start), 10)
		dst = append(dst, `,"end":`...)
		dst = strconv.AppendInt(dst, int64(sd.End), 10)
		dst = append(dst, `,"rules":`...)
		dst = appendFiredRules(dst, sd.Rules)
		dst = append(dst, '}')
	}
	return append(dst, ']')
}

// appendPushPointsResponse encodes a pushPointsResponse like
// encoding/json would (modulo indentation).
//
//cdtlint:hotpath
func appendPushPointsResponse(dst []byte, v pushPointsResponse) []byte {
	dst = append(dst, `{"detections":`...)
	if v.Detections == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i, d := range v.Detections {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"window_start":`...)
			dst = strconv.AppendInt(dst, int64(d.WindowStart), 10)
			dst = append(dst, `,"window_end":`...)
			dst = strconv.AppendInt(dst, int64(d.WindowEnd), 10)
			dst = append(dst, `,"rules":`...)
			dst = appendFiredRules(dst, d.Rules)
			if d.Scale != 0 {
				dst = append(dst, `,"scale":`...)
				dst = strconv.AppendInt(dst, int64(d.Scale), 10)
			}
			if d.Type != "" {
				dst = append(dst, `,"type":`...)
				dst = appendJSONString(dst, d.Type)
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"points_consumed":`...)
	dst = strconv.AppendInt(dst, int64(v.PointsConsumed), 10)
	dst = append(dst, `,"ready":`...)
	dst = strconv.AppendBool(dst, v.Ready)
	return append(dst, '}', '\n')
}
