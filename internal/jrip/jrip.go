// Package jrip implements the RIPPER rule learner (Cohen 1995; WEKA's
// JRip, the §4.3 baseline): classes are handled from rarest to most
// frequent; per class, rules are grown condition-by-condition by FOIL
// information gain on a grow set, pruned greedily on a prune set, and
// accepted while the description length does not blow past the best seen
// (the MDL stopping rule) and the pruned rule stays better than random.
// A final optimization pass re-grows each rule in context and keeps the
// variant with the smaller training error, the essence of RIPPER's
// rule-optimization phase.
package jrip

import (
	"fmt"
	"math"
	"math/rand"

	"cdt/internal/c45"
)

// Rule is a conjunction of attribute tests implying the positive class of
// its learning round.
type Rule struct {
	Conditions []c45.Condition
	Class      int
}

// Matches reports whether the conjunction holds.
func (r Rule) Matches(attrs []int) bool {
	for _, c := range r.Conditions {
		if attrs[c.Attr] != c.Value {
			return false
		}
	}
	return true
}

// Classifier is an ordered RIPPER rule list with a default class.
type Classifier struct {
	Rules        []Rule
	DefaultClass int
}

// Options tunes learning. The zero value reproduces the reference
// configuration (2/3–1/3 grow/prune split, 64-bit MDL slack, one
// optimization pass).
type Options struct {
	// Seed drives the stratified grow/prune shuffles.
	Seed int64
	// DLSlack is the description-length budget above the minimum before
	// rule adding stops (default 64, Cohen's d).
	DLSlack float64
	// Optimizations is the number of optimization passes (default 1;
	// negative disables).
	Optimizations int
	// MinCoverage is the minimum positives a rule must cover
	// (default 1).
	MinCoverage int
}

func (o Options) withDefaults() Options {
	if o.DLSlack <= 0 {
		o.DLSlack = 64
	}
	if o.Optimizations == 0 {
		o.Optimizations = 1
	}
	if o.MinCoverage <= 0 {
		o.MinCoverage = 1
	}
	return o
}

// Learn trains a RIPPER classifier on the dataset.
func Learn(ds *c45.Dataset, opts Options) (*Classifier, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if len(ds.Instances) == 0 {
		return nil, fmt.Errorf("jrip: no instances")
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Order classes rarest first; the most frequent becomes the default.
	freq := make([]int, ds.NumClasses)
	for _, inst := range ds.Instances {
		freq[inst.Class]++
	}
	order := classOrder(freq)

	remaining := make([]int, len(ds.Instances))
	for i := range remaining {
		remaining[i] = i
	}
	cls := &Classifier{DefaultClass: order[len(order)-1]}
	for _, target := range order[:len(order)-1] {
		rules := learnClass(ds, remaining, target, opts, rng)
		cls.Rules = append(cls.Rules, rules...)
		// Remove instances covered by the new rules.
		var next []int
		for _, i := range remaining {
			covered := false
			for _, r := range rules {
				if r.Matches(ds.Instances[i].Attrs) {
					covered = true
					break
				}
			}
			if !covered {
				next = append(next, i)
			}
		}
		remaining = next
	}
	return cls, nil
}

// classOrder returns class indices sorted by ascending frequency (stable
// on index for ties).
func classOrder(freq []int) []int {
	order := make([]int, len(freq))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && freq[order[j]] < freq[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// learnClass runs the IREP* loop for one positive class over the
// remaining instance pool.
func learnClass(ds *c45.Dataset, pool []int, target int, opts Options, rng *rand.Rand) []Rule {
	var pos, neg []int
	for _, i := range pool {
		if ds.Instances[i].Class == target {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	if len(pos) == 0 {
		return nil
	}
	nConds := 0
	for _, card := range ds.AttrCard {
		nConds += card
	}

	var rules []Rule
	uncoveredPos := append([]int(nil), pos...)
	uncoveredNeg := append([]int(nil), neg...)
	bestDL := math.Inf(1)
	for len(uncoveredPos) > 0 {
		growPos, prunePos := split23(uncoveredPos, rng)
		growNeg, pruneNeg := split23(uncoveredNeg, rng)
		rule := growRule(ds, growPos, growNeg, target)
		rule = pruneRule(ds, rule, prunePos, pruneNeg)
		p, n := coverage(ds, rule, uncoveredPos), coverage(ds, rule, uncoveredNeg)
		if p < opts.MinCoverage {
			break
		}
		// Cohen's stopping rule: reject the rule (and stop) when its
		// error rate on the *prune* set exceeds 50%. A rule the prune
		// set never exercises is accepted on the grow set's evidence.
		pp, pn := coverage(ds, rule, prunePos), coverage(ds, rule, pruneNeg)
		if pp+pn > 0 && pn >= pp {
			break
		}
		if pp+pn == 0 && n >= p {
			break
		}
		rules = append(rules, rule)
		uncoveredPos = removeCovered(ds, rule, uncoveredPos)
		uncoveredNeg = removeCovered(ds, rule, uncoveredNeg)
		dl := descriptionLength(ds, rules, pos, neg, nConds)
		if dl < bestDL {
			bestDL = dl
		} else if dl > bestDL+opts.DLSlack {
			// MDL stop: drop the offending rule and finish.
			rules = rules[:len(rules)-1]
			break
		}
	}

	for pass := 0; pass < opts.Optimizations; pass++ {
		rules = optimize(ds, rules, pos, neg, opts, rng)
	}
	return rules
}

// split23 shuffles and splits indices 2/3 grow, 1/3 prune; a set too
// small to split is used for both roles.
func split23(indices []int, rng *rand.Rand) (grow, prune []int) {
	if len(indices) < 3 {
		return indices, indices
	}
	shuffled := append([]int(nil), indices...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	cut := len(shuffled) * 2 / 3
	return shuffled[:cut], shuffled[cut:]
}

// growRule adds the condition with the best FOIL information gain until
// the rule covers no grow-set negatives or no condition helps.
func growRule(ds *c45.Dataset, growPos, growNeg []int, target int) Rule {
	rule := Rule{Class: target}
	pos := append([]int(nil), growPos...)
	neg := append([]int(nil), growNeg...)
	used := make(map[int]bool)
	for len(neg) > 0 {
		p0, n0 := float64(len(pos)), float64(len(neg))
		bestGain := 0.0
		var bestCond c45.Condition
		found := false
		for attr := range ds.AttrNames {
			if used[attr] {
				continue
			}
			// Count coverage per value in one pass.
			pCounts := make([]int, ds.AttrCard[attr])
			nCounts := make([]int, ds.AttrCard[attr])
			for _, i := range pos {
				pCounts[ds.Instances[i].Attrs[attr]]++
			}
			for _, i := range neg {
				nCounts[ds.Instances[i].Attrs[attr]]++
			}
			for v := 0; v < ds.AttrCard[attr]; v++ {
				p1, n1 := float64(pCounts[v]), float64(nCounts[v])
				if p1 == 0 {
					continue
				}
				gain := p1 * (math.Log2(p1/(p1+n1)) - math.Log2(p0/(p0+n0)))
				if gain > bestGain+1e-12 {
					bestGain = gain
					bestCond = c45.Condition{Attr: attr, Value: v}
					found = true
				}
			}
		}
		if !found {
			break
		}
		rule.Conditions = append(rule.Conditions, bestCond)
		used[bestCond.Attr] = true
		pos = filterByCond(ds, bestCond, pos)
		neg = filterByCond(ds, bestCond, neg)
	}
	return rule
}

// pruneRule considers the deletion of every final sequence of conditions
// (Cohen's IREP* formulation) and keeps the prefix maximizing RIPPER's
// pruning metric (p + (N − n))/(P + N) on the prune set — the rule's
// prune-set accuracy, whose ordering is that of p − n. Ties prefer the
// longer prefix so the grow set's evidence stands when the prune set
// cannot distinguish candidates.
func pruneRule(ds *c45.Dataset, rule Rule, prunePos, pruneNeg []int) Rule {
	metric := func(conds []c45.Condition) int {
		r := Rule{Conditions: conds, Class: rule.Class}
		return coverage(ds, r, prunePos) - coverage(ds, r, pruneNeg)
	}
	bestLen := len(rule.Conditions)
	bestMetric := metric(rule.Conditions)
	for k := len(rule.Conditions) - 1; k >= 1; k-- {
		if m := metric(rule.Conditions[:k]); m > bestMetric {
			bestMetric = m
			bestLen = k
		}
	}
	rule.Conditions = rule.Conditions[:bestLen]
	return rule
}

// optimize re-grows each rule in the context of the others and keeps the
// variant (original, replacement, revision) with the fewest total errors
// on the training pool.
func optimize(ds *c45.Dataset, rules []Rule, pos, neg []int, opts Options, rng *rand.Rand) []Rule {
	totalErrors := func(rs []Rule) int {
		e := 0
		for _, i := range pos {
			if !anyMatches(ds, rs, i) {
				e++
			}
		}
		for _, i := range neg {
			if anyMatches(ds, rs, i) {
				e++
			}
		}
		return e
	}
	for ri := range rules {
		others := append(append([]Rule(nil), rules[:ri]...), rules[ri+1:]...)
		// Instances not covered by the other rules are this rule's
		// responsibility.
		var rpos, rneg []int
		for _, i := range pos {
			if !anyMatches(ds, others, i) {
				rpos = append(rpos, i)
			}
		}
		for _, i := range neg {
			if !anyMatches(ds, others, i) {
				rneg = append(rneg, i)
			}
		}
		if len(rpos) == 0 {
			continue
		}
		growPos, prunePos := split23(rpos, rng)
		growNeg, pruneNeg := split23(rneg, rng)
		replacement := pruneRule(ds, growRule(ds, growPos, growNeg, rules[ri].Class), prunePos, pruneNeg)
		revision := reviseRule(ds, rules[ri], growPos, growNeg)
		bestRules := rules
		bestErr := totalErrors(rules)
		for _, cand := range []Rule{replacement, revision} {
			if len(cand.Conditions) == 0 {
				continue
			}
			trial := append(append([]Rule(nil), rules[:ri]...), cand)
			trial = append(trial, rules[ri+1:]...)
			if e := totalErrors(trial); e < bestErr {
				bestErr = e
				bestRules = trial
			}
		}
		rules = bestRules
	}
	// Drop rules that no longer cover any positive.
	var kept []Rule
	for _, r := range rules {
		if coverage(ds, r, pos) > 0 {
			kept = append(kept, r)
		}
	}
	return kept
}

// reviseRule extends an existing rule with further grown conditions.
func reviseRule(ds *c45.Dataset, rule Rule, growPos, growNeg []int) Rule {
	pos := removeUncovered(ds, rule, growPos)
	neg := removeUncovered(ds, rule, growNeg)
	ext := growRule(ds, pos, neg, rule.Class)
	out := Rule{Class: rule.Class, Conditions: append(append([]c45.Condition(nil), rule.Conditions...), ext.Conditions...)}
	return dedupeConditions(out)
}

func dedupeConditions(r Rule) Rule {
	seen := make(map[c45.Condition]bool)
	var conds []c45.Condition
	for _, c := range r.Conditions {
		if !seen[c] {
			seen[c] = true
			conds = append(conds, c)
		}
	}
	r.Conditions = conds
	return r
}

// descriptionLength is the MDL cost of the ruleset: bits to encode each
// rule's conditions plus bits to encode its exceptions (false positives
// among covered, false negatives among uncovered).
func descriptionLength(ds *c45.Dataset, rules []Rule, pos, neg []int, nConds int) float64 {
	ruleBits := 0.0
	for _, r := range rules {
		k := float64(len(r.Conditions))
		// ~log2(k)+k·log2(#possible conditions) bits per rule.
		ruleBits += math.Log2(k+1) + k*math.Log2(float64(nConds))
	}
	covered, fp := 0, 0
	uncovered, fn := 0, 0
	for _, i := range pos {
		if anyMatches(ds, rules, i) {
			covered++
		} else {
			uncovered++
			fn++
		}
	}
	for _, i := range neg {
		if anyMatches(ds, rules, i) {
			covered++
			fp++
		} else {
			uncovered++
		}
	}
	return ruleBits + logBinomial(covered, fp) + logBinomial(uncovered, fn)
}

// logBinomial is log2 C(n,k) via lgamma.
func logBinomial(n, k int) float64 {
	if k < 0 || k > n || n == 0 {
		return 0
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return (ln - lk - lnk) / math.Ln2
}

func anyMatches(ds *c45.Dataset, rules []Rule, i int) bool {
	for _, r := range rules {
		if r.Matches(ds.Instances[i].Attrs) {
			return true
		}
	}
	return false
}

func coverage(ds *c45.Dataset, rule Rule, indices []int) int {
	n := 0
	for _, i := range indices {
		if rule.Matches(ds.Instances[i].Attrs) {
			n++
		}
	}
	return n
}

func filterByCond(ds *c45.Dataset, cond c45.Condition, indices []int) []int {
	var out []int
	for _, i := range indices {
		if ds.Instances[i].Attrs[cond.Attr] == cond.Value {
			out = append(out, i)
		}
	}
	return out
}

func removeCovered(ds *c45.Dataset, rule Rule, indices []int) []int {
	var out []int
	for _, i := range indices {
		if !rule.Matches(ds.Instances[i].Attrs) {
			out = append(out, i)
		}
	}
	return out
}

func removeUncovered(ds *c45.Dataset, rule Rule, indices []int) []int {
	var out []int
	for _, i := range indices {
		if rule.Matches(ds.Instances[i].Attrs) {
			out = append(out, i)
		}
	}
	return out
}

// Predict classifies by the first matching rule, else the default class.
func (c *Classifier) Predict(attrs []int) int {
	for _, r := range c.Rules {
		if r.Matches(attrs) {
			return r.Class
		}
	}
	return c.DefaultClass
}

// NumRules returns the rule-list size (the Figure 3 metric).
func (c *Classifier) NumRules() int { return len(c.Rules) }
