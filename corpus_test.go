package cdt

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cdt/internal/core"
	"cdt/internal/rules"
)

// fitFromScratch reproduces the pre-corpus training pipeline verbatim —
// per-series normalize → label → window, pooled, then tree induction and
// rule extraction — as the golden reference the cached Corpus pipeline
// must match byte for byte.
func fitFromScratch(train []*Series, opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("cdt: no training series")
	}
	pcfg := opts.patternConfig()
	var pooled []core.Observation
	for _, s := range train {
		obs, err := observations(s, pcfg, opts.Omega)
		if err != nil {
			return nil, err
		}
		pooled = append(pooled, obs...)
	}
	tree, err := core.Build(pooled, opts.coreOptions())
	if err != nil {
		return nil, err
	}
	m := &Model{Opts: opts, tree: tree, pcfg: pcfg}
	m.raw = rules.FromTree(tree, opts.LeafPolicy)
	m.finalizeRules()
	return m, nil
}

func saveBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := m.Save(&b); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return b.Bytes()
}

// corpusTestSeries is the shared two-series training set: different
// lengths, different spike layouts, raw (unnormalized) magnitudes.
func corpusTestSeries() []*Series {
	return []*Series{
		spikySeries("a", 400, []int{50, 120, 200, 310}, 1),
		spikySeries("b", 300, []int{40, 150, 260}, 2),
	}
}

// TestCorpusFitGoldenEquivalence fits over a grid of (ω, δ) three ways —
// the from-scratch reference pipeline, the cached corpus (twice, so the
// second fit is served entirely from the cache), and the package-level
// Fit wrapper — and requires byte-identical Save artifacts and identical
// rendered rules.
func TestCorpusFitGoldenEquivalence(t *testing.T) {
	train := corpusTestSeries()
	c, err := NewCorpus(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, omega := range []int{3, 5, 8} {
		for _, delta := range []int{1, 2, 4} {
			opts := Options{Omega: omega, Delta: delta}
			name := fmt.Sprintf("omega=%d/delta=%d", omega, delta)
			want, err := fitFromScratch(train, opts)
			if err != nil {
				t.Fatalf("%s: reference pipeline: %v", name, err)
			}
			wantSave := saveBytes(t, want)
			wantRules := want.RuleText()

			for pass := 0; pass < 2; pass++ { // pass 1 hits the warm cache
				got, err := c.Fit(opts)
				if err != nil {
					t.Fatalf("%s pass %d: corpus fit: %v", name, pass, err)
				}
				if gotSave := saveBytes(t, got); !bytes.Equal(gotSave, wantSave) {
					t.Errorf("%s pass %d: Save artifact differs from reference pipeline", name, pass)
				}
				if gotRules := got.RuleText(); gotRules != wantRules {
					t.Errorf("%s pass %d: RuleText differs:\ngot:\n%s\nwant:\n%s", name, pass, gotRules, wantRules)
				}
			}

			viaFit, err := Fit(train, opts)
			if err != nil {
				t.Fatalf("%s: Fit wrapper: %v", name, err)
			}
			if !bytes.Equal(saveBytes(t, viaFit), wantSave) {
				t.Errorf("%s: Fit wrapper Save artifact differs from reference pipeline", name)
			}
		}
	}
}

// TestCorpusObservationsMatchObservationsOf checks the cached pooled
// windows are exactly the per-series ObservationsOf pools concatenated in
// series order.
func TestCorpusObservationsMatchObservationsOf(t *testing.T) {
	train := corpusTestSeries()
	c, err := NewCorpus(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, omega := range []int{3, 7} {
		for _, delta := range []int{1, 3} {
			opts := Options{Omega: omega, Delta: delta}
			var want []Observation
			for _, s := range train {
				obs, err := ObservationsOf(s, opts)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, obs...)
			}
			got, err := c.Observations(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("omega=%d delta=%d: pooled observations differ", omega, delta)
			}
		}
	}
}

// TestCorpusEvictionStaysBoundedAndCorrect drives a tiny 2-entry cache
// across more configurations than it can hold: the maps must stay within
// bounds and every (evicted, recomputed) result must still match a fresh
// uncached corpus.
func TestCorpusEvictionStaysBoundedAndCorrect(t *testing.T) {
	train := corpusTestSeries()
	c, err := NewCorpusSize(train, 2)
	if err != nil {
		t.Fatal(err)
	}
	configs := []Options{
		{Omega: 3, Delta: 1},
		{Omega: 4, Delta: 2},
		{Omega: 5, Delta: 3},
		{Omega: 6, Delta: 4},
		{Omega: 3, Delta: 1}, // evicted by now — must recompute correctly
	}
	for _, opts := range configs {
		got, err := c.Observations(opts)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewCorpus(train)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Observations(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("omega=%d delta=%d: observations after eviction differ", opts.Omega, opts.Delta)
		}
		c.mu.RLock()
		nl, nw := len(c.labels), len(c.windows)
		c.mu.RUnlock()
		if nl > 2 || nw > 2 {
			t.Fatalf("cache exceeded bound: %d labelings, %d window pools", nl, nw)
		}
	}
}

// TestCorpusErrorsAreCachedPerConfig checks a failing configuration (ω
// larger than a series' label count) reports the same error through the
// cache, repeatedly, without poisoning other entries.
func TestCorpusErrorsAreCachedPerConfig(t *testing.T) {
	short := spikySeries("short", 10, []int{5}, 3)
	c, err := NewCorpus([]*Series{short})
	if err != nil {
		t.Fatal(err)
	}
	bad := Options{Omega: 9, Delta: 1} // 10 points → 8 labels
	for i := 0; i < 2; i++ {
		if _, err := c.Observations(bad); err == nil {
			t.Fatalf("attempt %d: expected omega-exceeds error", i)
		}
	}
	if _, err := c.Observations(Options{Omega: 3, Delta: 1}); err != nil {
		t.Fatalf("good configuration failed after cached error: %v", err)
	}
}

func TestNewCorpusValidation(t *testing.T) {
	if _, err := NewCorpus(nil); err == nil {
		t.Error("expected error for empty corpus")
	}
	if c, err := NewCorpusSize(corpusTestSeries(), -5); err != nil || c.limit != 1 {
		t.Errorf("cache size not clamped to 1: limit=%v err=%v", c.limit, err)
	}
}

// TestCorpusConcurrentHammer pounds one small-cache corpus from many
// goroutines over an overlapping (ω, δ) grid — concurrent first-misses,
// warm hits, and evictions all interleave — and checks under -race that
// every fit still produces the exact expected rules.
func TestCorpusConcurrentHammer(t *testing.T) {
	train := corpusTestSeries()
	grid := []Options{
		{Omega: 3, Delta: 1},
		{Omega: 3, Delta: 2},
		{Omega: 5, Delta: 1},
		{Omega: 5, Delta: 2},
		{Omega: 7, Delta: 3},
		{Omega: 8, Delta: 4},
	}
	// Golden rules per configuration, computed sequentially up front.
	want := make([]string, len(grid))
	for i, opts := range grid {
		m, err := fitFromScratch(train, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m.RuleText()
	}

	// Cache bound 3 < 6 grid cells forces constant eviction under load.
	c, err := NewCorpusSize(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	workers := 8
	iters := 10
	if testing.Short() {
		workers, iters = 4, 3
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				gi := (w + it) % len(grid)
				opts := grid[gi]
				if (w+it)%3 == 0 {
					// Mix plain window reads in with full fits.
					if _, err := c.Observations(opts); err != nil {
						errs <- fmt.Errorf("worker %d: observations %+v: %w", w, opts, err)
						return
					}
					continue
				}
				m, err := c.Fit(opts)
				if err != nil {
					errs <- fmt.Errorf("worker %d: fit %+v: %w", w, opts, err)
					return
				}
				if got := m.RuleText(); got != want[gi] {
					errs <- fmt.Errorf("worker %d: rules for %+v diverged under concurrency", w, opts)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestOptimizeCorpusMatchesOptimize checks the corpus-backed search is
// bit-identical to the wrapper, and that parallel initial-design
// evaluation changes nothing but wall-clock.
func TestOptimizeCorpusMatchesOptimize(t *testing.T) {
	train := []*Series{spikySeries("train", 300, []int{50, 120, 200}, 1)}
	val := []*Series{spikySeries("val", 300, []int{80, 170, 240}, 2)}
	base := OptimizeOptions{
		OmegaMin: 3, OmegaMax: 9,
		DeltaMin: 1, DeltaMax: 4,
		InitPoints: 4, Iterations: 4,
		Seed: 7,
	}

	ref, err := Optimize(train, val, ObjectiveF1, base)
	if err != nil {
		t.Fatal(err)
	}

	trainC, err := NewCorpus(train)
	if err != nil {
		t.Fatal(err)
	}
	valC, err := NewCorpus(val)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{-1, 1, 4} {
		opts := base
		opts.Parallelism = par
		got, err := OptimizeCorpus(trainC, valC, ObjectiveF1, opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("parallelism %d: result diverged from Optimize wrapper:\ngot  %+v\nwant %+v", par, got, ref)
		}
	}

	if _, err := OptimizeCorpus(nil, valC, ObjectiveF1, base); err == nil {
		t.Error("expected error for nil training corpus")
	}
}
