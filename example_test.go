package cdt_test

import (
	"fmt"
	"math"

	cdt "cdt"
)

// demoSeries builds a deterministic sensor-like series with two labeled
// spikes.
func demoSeries() *cdt.Series {
	values := make([]float64, 200)
	anomalies := make([]bool, 200)
	for i := range values {
		values[i] = 50 + 10*math.Sin(float64(i)/6)
	}
	values[60], anomalies[60] = 200, true
	values[140], anomalies[140] = 200, true
	return cdt.NewLabeledSeries("sensor", values, anomalies)
}

func ExampleFit() {
	model, err := cdt.Fit([]*cdt.Series{demoSeries()}, cdt.Options{Omega: 5, Delta: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(model.RuleText())
	// Output:
	// R1: IF [PP[H,H]] THEN anomaly
}

func ExampleModel_Evaluate() {
	series := demoSeries()
	model, err := cdt.Fit([]*cdt.Series{series}, cdt.Options{Omega: 5, Delta: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := model.Evaluate([]*cdt.Series{series})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("F1=%.2f rules=%d\n", rep.F1, rep.NumRules)
	// Output:
	// F1=1.00 rules=1
}

func ExampleModel_PointFlags() {
	series := demoSeries()
	model, err := cdt.Fit([]*cdt.Series{series}, cdt.Options{Omega: 5, Delta: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	flags, err := model.PointFlags(series)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(flags[60], flags[140], flags[0])
	// Output:
	// true true false
}

func ExampleModel_NewStream() {
	model, err := cdt.Fit([]*cdt.Series{demoSeries()}, cdt.Options{Omega: 5, Delta: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	stream, err := model.NewStream(cdt.Scale{Min: 40, Max: 200})
	if err != nil {
		fmt.Println(err)
		return
	}
	alerts := 0
	for i := 0; i < 100; i++ {
		v := 50 + 10*math.Sin(float64(i)/6)
		if i == 70 {
			v = 200
		}
		alerts += len(stream.Push(v))
	}
	fmt.Println(alerts > 0)
	// Output:
	// true
}
