// Package corpusshare enforces the sharing contract of the training
// corpus (root corpus.go): a Corpus is one RWMutex-guarded cache shared
// across goroutines (OptimizeCorpus fans candidate fits over a worker
// pool; cdtserve's retrainer re-optimizes over live corpora), and every
// consumer must go through its locked API — the methods on *Corpus.
// This was the ROADMAP's deferred "Corpus misuse across goroutines"
// analyzer.
//
// The check is structural so it covers the real cdt.Corpus and test
// fodder alike: a target is any struct type named "Corpus" carrying a
// sync.Mutex/RWMutex field and at least one map field. Three misuse
// shapes are reported:
//
//  1. Copy by value. A Corpus travelling by value duplicates the mutex
//     and the cache maps' headers: two goroutines then "synchronize" on
//     different locks over the same map storage. Flagged at value-typed
//     declarations (params, results, struct fields, variables, value
//     receivers) and at *p dereferences that copy the struct.
//  2. Raw guarded-field access outside the API. The mutex and map
//     fields may only be touched by methods of the Corpus itself;
//     any other function reaching into c.labels or c.mu is bypassing
//     the locked API (locksafe then cannot see the discipline either).
//  3. Goroutine capture inside the API. Even within a method, a func
//     literal spawned via `go` that touches a guarded field escapes the
//     critical section that the enclosing method documents; the spawned
//     goroutine must use the public methods instead.
//
// Immutable fields (series, limit) are deliberately not guarded:
// sharing them read-only is the point of the corpus. sync.Once-driven
// fill closures (entry.once.Do) touch entry state, not corpus maps, and
// stay clean.
package corpusshare

import (
	"go/ast"
	"go/types"

	"cdt/tools/analysis"
)

// Analyzer is the corpusshare check.
var Analyzer = &analysis.Analyzer{
	Name: "corpusshare",
	Doc:  "requires shared Corpus caches to be used via their locked API: no value copies, raw field access, or goroutine field capture",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	targets := targetStructs(pass)
	if len(targets) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		checkValueDecls(pass, f, targets)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFieldAccess(pass, fd, targets)
		}
	}
	return nil
}

// guardedStruct is one matched Corpus type: its named type plus the
// names of the fields only its own methods may touch.
type guardedStruct struct {
	named   *types.Named
	guarded map[string]bool
}

// targetStructs finds every struct type named Corpus with a mutex and a
// map field, in the package being analyzed and in every package it
// imports (the cdt.Corpus seen through internal/server is an imported
// type).
func targetStructs(pass *analysis.Pass) []*guardedStruct {
	var out []*guardedStruct
	seen := map[*types.Named]bool{}
	add := func(scope *types.Scope) {
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.Name() != "Corpus" {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || seen[named] {
				continue
			}
			if g := guardedOf(named); g != nil {
				seen[named] = true
				out = append(out, g)
			}
		}
	}
	add(pass.Pkg.Scope())
	for _, imp := range pass.Pkg.Imports() {
		add(imp.Scope())
	}
	return out
}

// guardedOf matches one named type against the structural Corpus shape,
// returning its guarded fields (mutexes and maps) or nil.
func guardedOf(named *types.Named) *guardedStruct {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	guarded := map[string]bool{}
	hasMutex, hasMap := false, false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch {
		case isSyncLock(f.Type()):
			hasMutex = true
			guarded[f.Name()] = true
		case isMapType(f.Type()):
			hasMap = true
			guarded[f.Name()] = true
		}
	}
	if !hasMutex || !hasMap {
		return nil
	}
	return &guardedStruct{named: named, guarded: guarded}
}

func isSyncLock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// matchTarget returns the guarded struct t denotes (value form), or nil.
func matchTarget(targets []*guardedStruct, t types.Type) *guardedStruct {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	for _, g := range targets {
		if g.named.Obj() == named.Obj() {
			return g
		}
	}
	return nil
}

// matchTargetPtrOrValue resolves t through one pointer level.
func matchTargetPtrOrValue(targets []*guardedStruct, t types.Type) *guardedStruct {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return matchTarget(targets, t)
}

// checkValueDecls flags value-typed Corpus declarations and *p copy
// dereferences anywhere in the file. The Corpus's own type declaration
// is exempt (defining the struct is not copying it).
func checkValueDecls(pass *analysis.Pass, f *ast.File, targets []*guardedStruct) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.TypeSpec:
			// Walk only the fields of a struct definition: a field of
			// type Corpus embeds a second mutex+caches by value.
			if st, ok := n.Type.(*ast.StructType); ok {
				for _, fld := range st.Fields.List {
					reportValueType(pass, fld.Type, targets, "struct field")
				}
				return false
			}
			return true
		case *ast.Field:
			return true
		case *ast.FuncDecl:
			if n.Recv != nil {
				for _, r := range n.Recv.List {
					reportValueType(pass, r.Type, targets, "method receiver")
				}
			}
			if n.Type.Params != nil {
				for _, p := range n.Type.Params.List {
					reportValueType(pass, p.Type, targets, "parameter")
				}
			}
			if n.Type.Results != nil {
				for _, p := range n.Type.Results.List {
					reportValueType(pass, p.Type, targets, "result")
				}
			}
			return true
		case *ast.ValueSpec:
			reportValueType(pass, n.Type, targets, "variable")
			return true
		case *ast.StarExpr:
			// *p as a value copies the struct; *p in a selector chain or
			// type position does not reach here with struct type.
			if tv, ok := pass.TypesInfo.Types[n]; ok && tv.IsValue() {
				if g := matchTarget(targets, tv.Type); g != nil {
					pass.Reportf(n.Pos(), "dereferencing copies the %s by value; share the pointer (the RWMutex and cache maps must not be duplicated)", g.named.Obj().Name())
				}
			}
			return true
		}
		return true
	})
}

// reportValueType flags a type expression denoting a bare (non-pointer)
// Corpus.
func reportValueType(pass *analysis.Pass, t ast.Expr, targets []*guardedStruct, where string) {
	if t == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[t]
	if !ok {
		return
	}
	// Pointers, slices of pointers, maps to pointers are fine; only a
	// bare value type (possibly nested in a container) is a copy hazard.
	if g := valueCarrier(targets, tv.Type); g != nil {
		pass.Reportf(t.Pos(), "%s holds a %s by value; use *%s (copying duplicates the RWMutex and cache-map headers)", where, g.named.Obj().Name(), g.named.Obj().Name())
	}
}

// valueCarrier reports whether t stores a target struct by value,
// looking through containers (slices, arrays, maps, channels) but not
// pointers.
func valueCarrier(targets []*guardedStruct, t types.Type) *guardedStruct {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return valueCarrier(targets, u.Elem())
	case *types.Array:
		return valueCarrier(targets, u.Elem())
	case *types.Map:
		return valueCarrier(targets, u.Elem())
	case *types.Chan:
		return valueCarrier(targets, u.Elem())
	}
	return matchTarget(targets, t)
}

// checkFieldAccess flags guarded-field selectors outside the Corpus's
// own methods, and — inside those methods — guarded-field selectors
// reached from goroutines the method spawns.
func checkFieldAccess(pass *analysis.Pass, fd *ast.FuncDecl, targets []*guardedStruct) {
	owner := methodOwner(pass, fd, targets)

	// goLits collects the func literals this declaration starts with
	// `go` (directly or via a named literal is out of scope — direct
	// `go func(){...}()` is the pattern the repo uses).
	goLits := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				goLits[lit] = true
			}
		}
		return true
	})

	var walk func(n ast.Node, inGo bool)
	walk = func(n ast.Node, inGo bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m == n {
					return true
				}
				walk(m.Body, inGo || goLits[m])
				return false
			case *ast.SelectorExpr:
				g, field := guardedSelector(pass, m, targets)
				if g == nil {
					return true
				}
				switch {
				case owner != g:
					pass.Reportf(m.Pos(), "raw access to %s.%s outside the %s's locked API; use its methods", g.named.Obj().Name(), field, g.named.Obj().Name())
				case inGo:
					pass.Reportf(m.Pos(), "%s.%s touched from a goroutine spawned inside a method; the goroutine must use the locked API", g.named.Obj().Name(), field)
				}
				return true
			}
			return true
		})
	}
	walk(fd.Body, false)
}

// methodOwner returns the guarded struct fd is a method of (pointer or
// value receiver), or nil.
func methodOwner(pass *analysis.Pass, fd *ast.FuncDecl, targets []*guardedStruct) *guardedStruct {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return matchTargetPtrOrValue(targets, tv.Type)
}

// guardedSelector resolves sel to (target, field) when it selects a
// guarded field of a Corpus (through a value or pointer base).
func guardedSelector(pass *analysis.Pass, sel *ast.SelectorExpr, targets []*guardedStruct) (*guardedStruct, string) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, ""
	}
	g := matchTargetPtrOrValue(targets, s.Recv())
	if g == nil || !g.guarded[sel.Sel.Name] {
		return nil, ""
	}
	return g, sel.Sel.Name
}
