// Package cdt is the public API of this reproduction of
// "Human-Interpretable Rules for Anomaly Detection in Time-series"
// (Ben Kraiem, Ghozzi, Péninou, Roman-Jimenez & Teste, EDBT 2021).
//
// The Composition-based Decision Tree (CDT) learns a minimized set of
// human-readable IF-THEN rules that detect anomalies in univariate
// time-series:
//
//	series := cdt.NewLabeledSeries("sensor", values, anomalyFlags)
//	model, err := cdt.Fit([]*cdt.Series{series}, cdt.Options{Omega: 5, Delta: 2})
//	fmt.Print(model.RuleText())      // IF [PN[-H,-L], SCP[L,Z]] THEN anomaly ...
//	flags, err := model.PointFlags(other)
//
// Hyper-parameters ω (window size) and δ (magnitude granularity) can be
// selected automatically with Bayesian optimization (Optimize), targeting
// either pure F1 or the paper's interpretability-weighted objective
// F(h) = F1 · Q(R).
//
// The heavy lifting lives in internal packages: pattern (the 9-variation
// labeling alphabet of §3.2), core (the tree of §3.3), rules (extraction
// and Boolean simplification, §3.4), quality (I, M, Q and F(h), §3.5),
// and bayesopt (§3.6).
package cdt

import (
	"fmt"

	"cdt/internal/core"
	"cdt/internal/pattern"
	"cdt/internal/rules"
	"cdt/internal/timeseries"
)

// Series is a univariate time-series with optional anomaly annotations.
type Series = timeseries.Series

// NewSeries returns an unlabeled series.
func NewSeries(name string, values []float64) *Series {
	return timeseries.New(name, values)
}

// NewLabeledSeries returns a series with per-point anomaly flags (same
// length as values).
func NewLabeledSeries(name string, values []float64, anomalies []bool) *Series {
	return timeseries.NewLabeled(name, values, anomalies)
}

// Label is one pattern label (variation type + magnitude intervals).
type Label = pattern.Label

// Observation is one sliding window of labels with its class.
type Observation = core.Observation

// Rule is a disjunction of conjunctive rule predicates.
type Rule = rules.Rule

// Options configures CDT training. Omega and Delta are the paper's two
// hyper-parameters; everything else has faithful defaults.
type Options struct {
	// Omega is the sliding-window size ω (observations, Definition 4).
	Omega int
	// Delta is the magnitude granularity δ (2δ+1 intervals on [-1,1]).
	Delta int
	// Epsilon is the value-equality tolerance for "constant" variations
	// (default 1e-9).
	Epsilon float64
	// MaxCompositionLen caps candidate composition length (0 = up to ω).
	MaxCompositionLen int
	// MaxDepth caps tree depth (0 = unlimited, as in Algorithm 1).
	MaxDepth int
	// MinGain is the minimum information gain required to split
	// (0 reproduces the paper's strictly-positive-gain stop).
	MinGain float64
	// Criterion is the split impurity (default Gini, as in the paper).
	Criterion core.SplitCriterion
	// Match is the ⊆o semantics (default contiguous).
	Match core.MatchMode
	// LeafPolicy selects which leaves become rules (default the paper's
	// pure-anomaly leaves).
	LeafPolicy rules.LeafPolicy
	// Parallelism bounds split-scoring goroutines (0 = GOMAXPROCS).
	Parallelism int
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Omega < 1 {
		return fmt.Errorf("cdt: omega %d, want >= 1", o.Omega)
	}
	if o.Delta < 1 {
		return fmt.Errorf("cdt: delta %d, want >= 1", o.Delta)
	}
	if o.Epsilon < 0 {
		return fmt.Errorf("cdt: epsilon %v, want >= 0", o.Epsilon)
	}
	return nil
}

func (o Options) patternConfig() pattern.Config {
	eps := o.Epsilon
	if eps == 0 {
		eps = pattern.DefaultEpsilon
	}
	return pattern.Config{Delta: o.Delta, Epsilon: eps}
}

func (o Options) coreOptions() core.Options {
	return core.Options{
		Criterion:         o.Criterion,
		Match:             o.Match,
		MaxCompositionLen: o.MaxCompositionLen,
		MaxDepth:          o.MaxDepth,
		MinGain:           o.MinGain,
		Parallelism:       o.Parallelism,
	}
}

// ensureNormalized returns a series whose values lie in [0,1]: the input
// itself when already in range (so pre-normalized splits keep a common
// scale), otherwise a min-max-normalized clone (§3.1).
func ensureNormalized(s *Series) (*Series, error) {
	if s.Len() == 0 {
		return nil, timeseries.ErrEmpty
	}
	min, max, err := s.MinMax()
	if err != nil {
		return nil, err
	}
	if min >= 0 && max <= 1 {
		return s, nil
	}
	c := s.Clone()
	if _, err := c.Normalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// labeledSeries normalizes and labels a series and validates ω against
// its label count — the shared front half of observations (training,
// truth pooling) and of the engine sweep (detection), so both paths
// reject the same inputs with the same errors.
func labeledSeries(s *Series, pcfg pattern.Config, omega int) ([]pattern.Label, []bool, error) {
	ns, err := ensureNormalized(s)
	if err != nil {
		return nil, nil, fmt.Errorf("cdt: series %q: %w", s.Name, err)
	}
	labels, err := pcfg.LabelSeries(ns.Values)
	if err != nil {
		return nil, nil, fmt.Errorf("cdt: series %q: %w", s.Name, err)
	}
	if omega > len(labels) {
		return nil, nil, fmt.Errorf("cdt: series %q: omega %d exceeds %d labels", s.Name, omega, len(labels))
	}
	return labels, ns.Anomalies, nil
}

// observations labels a series and cuts it into classed windows.
func observations(s *Series, pcfg pattern.Config, omega int) ([]core.Observation, error) {
	labels, anomalies, err := labeledSeries(s, pcfg, omega)
	if err != nil {
		return nil, err
	}
	obs, err := core.Windows(labels, anomalies, omega)
	if err != nil {
		return nil, fmt.Errorf("cdt: series %q: %w", s.Name, err)
	}
	return obs, nil
}

// ObservationsOf exposes the preprocessing pipeline (normalize → label →
// window) so callers can inspect what the model sees. The series may be
// unlabeled, in which case every observation is Normal-classed.
func ObservationsOf(s *Series, opts Options) ([]Observation, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return observations(s, opts.patternConfig(), opts.Omega)
}
