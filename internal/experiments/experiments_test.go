package experiments

import (
	"strings"
	"testing"

	cdt "cdt"
	"cdt/internal/c45"
)

// fastConfig keeps harness tests quick: tiny Bayesian-optimization
// budgets over the shared laptop-scale datasets.
func fastConfig() Config {
	return Config{Seed: 7, BOInit: 2, BOIters: 2}
}

func TestPrepareAllDatasets(t *testing.T) {
	prepared, err := PrepareAll(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(prepared) != len(DatasetNames) {
		t.Fatalf("prepared %d datasets", len(prepared))
	}
	for _, p := range prepared {
		if len(p.Train) == 0 || len(p.Validation) == 0 || len(p.Test) == 0 {
			t.Errorf("%s: empty split", p.Name)
		}
		if len(p.Series) != len(p.Train) {
			t.Errorf("%s: %d series but %d train segments", p.Name, len(p.Series), len(p.Train))
		}
		// Every dataset must carry anomalies in every split segment pool.
		for segName, seg := range map[string][]*cdt.Series{"train": p.Train, "test": p.Test} {
			anoms := 0
			for _, s := range seg {
				anoms += s.AnomalyCount()
			}
			if anoms == 0 {
				t.Errorf("%s: no anomalies in %s", p.Name, segName)
			}
		}
		// Preprocessing normalizes everything into [0,1].
		for _, s := range p.Series {
			min, max, err := s.MinMax()
			if err != nil {
				t.Fatal(err)
			}
			if min < 0 || max > 1 {
				t.Errorf("%s/%s not normalized: [%v,%v]", p.Name, s.Name, min, max)
			}
		}
		if c := p.Contamination(); c <= 0 || c >= 0.5 {
			t.Errorf("%s: contamination %v out of (0,0.5)", p.Name, c)
		}
	}
}

func TestPrepareUnknownDataset(t *testing.T) {
	if _, err := Prepare("nope", fastConfig()); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestPrepareDeterministic(t *testing.T) {
	a, err := Prepare("Yahoo_A2", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Prepare("Yahoo_A2", fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		for j := range a.Series[i].Values {
			if a.Series[i].Values[j] != b.Series[i].Values[j] {
				t.Fatal("same config, different data")
			}
		}
	}
}

func TestSuiteCachesTuning(t *testing.T) {
	s := NewSuite(fastConfig())
	first, err := s.Tuned("SGE_Calorie", cdt.ObjectiveF1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Tuned("SGE_Calorie", cdt.ObjectiveF1)
	if err != nil {
		t.Fatal(err)
	}
	if first.Best.Omega != second.Best.Omega || first.Best.Delta != second.Best.Delta {
		t.Error("cache returned a different result")
	}
}

func TestFitTunedProducesWorkingModel(t *testing.T) {
	s := NewSuite(fastConfig())
	model, prep, err := s.FitTuned("SGE_Calorie", cdt.ObjectiveF1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := model.Evaluate(prep.Test)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Confusion.Total() == 0 {
		t.Error("no test windows evaluated")
	}
	if model.NumRules() == 0 {
		t.Error("tuned model has no rules")
	}
}

func TestBaselineF1AllMethods(t *testing.T) {
	s := NewSuite(fastConfig())
	p, err := s.Dataset("Yahoo_A2")
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"PBAD", "PAV", "MP"} {
		f1, err := s.baselineF1(p, method)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if f1 < 0 || f1 > 1 {
			t.Errorf("%s F1 = %v", method, f1)
		}
	}
	if _, err := s.baselineF1(p, "nope"); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestWindowHelpers(t *testing.T) {
	starts := windowStarts(20, 12, 6)
	if len(starts) != 2 || starts[0] != 0 || starts[1] != 6 {
		t.Errorf("starts = %v", starts)
	}
	if got := windowStarts(5, 12, 6); got != nil {
		t.Errorf("short series starts = %v", got)
	}
	if rate([]bool{true, false, false, true}) != 0.5 {
		t.Error("rate wrong")
	}
	if rate(nil) != 0 {
		t.Error("empty rate wrong")
	}
}

func TestNominalDatasetShape(t *testing.T) {
	s := NewSuite(fastConfig())
	p, err := s.Dataset("Yahoo_A2")
	if err != nil {
		t.Fatal(err)
	}
	opts := cdt.Options{Omega: 4, Delta: 2}
	ds, nObs, err := NominalDatasetForDebug(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Instances) != nObs {
		t.Errorf("instances %d != observations %d", len(ds.Instances), nObs)
	}
	if len(ds.AttrNames) != 4 {
		t.Errorf("attrs = %d, want omega", len(ds.AttrNames))
	}
	if ds.AttrCard[0] != 25 { // (2·2+1)²
		t.Errorf("cardinality = %d, want 25", ds.AttrCard[0])
	}
	pos := 0
	for _, inst := range ds.Instances {
		if inst.Class == 1 {
			pos++
		}
	}
	if pos == 0 || pos == len(ds.Instances) {
		t.Errorf("degenerate class distribution: %d/%d", pos, len(ds.Instances))
	}
}

func TestEvaluateRuleList(t *testing.T) {
	// Two rules: one anomaly rule matching attr0==1 and one normal rule
	// matching attr0==0; default normal.
	rules := []genericRule{
		{conds: 1, uniq: 1, class: 1, matches: func(a []int) bool { return a[0] == 1 }},
		{conds: 1, uniq: 1, class: 0, matches: func(a []int) bool { return a[0] == 0 }},
	}
	test := nominalTest([][2]int{{1, 1}, {1, 1}, {0, 0}, {0, 0}, {1, 0}})
	f1, q := evaluateRuleList(rules, 0, test, 5, 25)
	// attr0==1 instances: 2 true anomalies + 1 false positive.
	if f1 <= 0.7 || f1 > 1 {
		t.Errorf("F1 = %v", f1)
	}
	if q <= 0 || q > 1 {
		t.Errorf("Q = %v", q)
	}
}

func TestEvaluateRuleListFirstMatchWins(t *testing.T) {
	// A normal rule shadowing a later anomaly rule: instances matching
	// both must be classified normal.
	rules := []genericRule{
		{conds: 1, uniq: 1, class: 0, matches: func(a []int) bool { return true }},
		{conds: 1, uniq: 1, class: 1, matches: func(a []int) bool { return true }},
	}
	test := nominalTest([][2]int{{1, 1}, {0, 0}})
	f1, q := evaluateRuleList(rules, 1, test, 5, 25)
	if f1 != 0 {
		t.Errorf("F1 = %v, want 0 (anomaly rule shadowed)", f1)
	}
	if q != 0 {
		t.Errorf("Q = %v, want 0", q)
	}
}

// nominalTest builds a tiny one-attribute dataset from (attr, class)
// pairs.
func nominalTest(rows [][2]int) *c45.Dataset {
	ds := &c45.Dataset{AttrNames: []string{"a"}, AttrCard: []int{2}, NumClasses: 2}
	for _, r := range rows {
		ds.Instances = append(ds.Instances, c45.Instance{Attrs: []int{r[0]}, Class: r[1]})
	}
	return ds
}

func TestFormatters(t *testing.T) {
	t2 := FormatTable2([]Table2Row{{Dataset: "D", F1Omega: 5, F1Delta: 2, FHOmega: 7, FHDelta: 1}})
	if !strings.Contains(t2, "Table 2") || !strings.Contains(t2, "D") {
		t.Error("Table 2 format broken")
	}
	t3 := FormatTable3([]Table3Row{{Dataset: "D", F1: [4]float64{0.9, 0.5, 0.6, 0.7}}})
	if !strings.Contains(t3, "Average") || !strings.Contains(t3, "0.90") {
		t.Error("Table 3 format broken")
	}
	t4 := FormatTable4([]Table4Row{{Dataset: "D", F1: [3]float64{0.9, 0.5, 0.6}}})
	if !strings.Contains(t4, "paper avg") {
		t.Error("Table 4 format broken")
	}
	f3 := FormatFigure3([]Figure3Row{{Dataset: "D", NumRules: [3]int{3, 10, 5}}})
	if !strings.Contains(f3, "CDT") || !strings.Contains(f3, "█") {
		t.Error("Figure 3 format broken")
	}
	t5 := FormatTable5([]Table5Rule{{Text: "IF x THEN anomaly", Sketch: "*", Description: "peak"}})
	if !strings.Contains(t5, "IF x THEN anomaly") || !strings.Contains(t5, "peak") {
		t.Error("Table 5 format broken")
	}
	if !strings.Contains(Figure1(), "PP[L,H]") {
		t.Error("Figure 1 missing pattern names")
	}
}

func TestFormatTableAlignment(t *testing.T) {
	out := FormatTable([]string{"a", "bb"}, [][]string{{"xxx", "y"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Error("missing separator")
	}
}

func TestRankOf(t *testing.T) {
	ranks := rankOf([]float64{0.5, 0.9, 0.5})
	if ranks[1] != 1 || ranks[0] != 2.5 || ranks[2] != 2.5 {
		t.Errorf("ranks = %v", ranks)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.BOInit != 5 || cfg.BOIters != 15 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestPaperConstantsCoverAllDatasets(t *testing.T) {
	for _, name := range DatasetNames {
		if _, ok := PaperTable2[name]; !ok {
			t.Errorf("PaperTable2 missing %s", name)
		}
		if _, ok := PaperTable3[name]; !ok {
			t.Errorf("PaperTable3 missing %s", name)
		}
		if _, ok := PaperTable4[name]; !ok {
			t.Errorf("PaperTable4 missing %s", name)
		}
	}
}

func TestRuleLearnersCV(t *testing.T) {
	s := NewSuite(fastConfig())
	results, err := s.RuleLearnersCV("SGE_Calorie", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Method != "PART" && r.Method != "JRip" {
			t.Errorf("unexpected method %q", r.Method)
		}
		if r.F1 < 0 || r.F1 > 1 || r.Q < 0 || r.Q > 1 {
			t.Errorf("%s: scores out of range: %+v", r.Method, r)
		}
		if r.FH > r.F1+1e-9 {
			t.Errorf("%s: FH %v exceeds F1 %v", r.Method, r.FH, r.F1)
		}
	}
}

func TestSubsetView(t *testing.T) {
	ds := nominalTest([][2]int{{0, 0}, {1, 1}, {0, 1}})
	sub := subset(ds, []int{2, 0})
	if len(sub.Instances) != 2 || sub.Instances[0].Class != 1 || sub.Instances[1].Class != 0 {
		t.Errorf("subset = %+v", sub.Instances)
	}
	if sub.NumClasses != 2 || len(sub.AttrNames) != 1 {
		t.Error("metadata lost")
	}
}

func TestCompareOptimizers(t *testing.T) {
	s := NewSuite(fastConfig())
	rows, err := s.CompareOptimizers("SGE_Calorie", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d strategies", len(rows))
	}
	byName := map[string]OptimizerComparison{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	// Grid search evaluates the whole 13×6 grid and is therefore an
	// upper bound on the budgeted strategies.
	if byName["grid"].Evaluations != 13*6 {
		t.Errorf("grid evaluated %d cells", byName["grid"].Evaluations)
	}
	if byName["bayesian"].Evaluations > 6 || byName["random"].Evaluations != 6 {
		t.Errorf("budgets violated: %+v", rows)
	}
	for _, r := range rows {
		if r.BestScore < 0 || r.BestScore > 1 {
			t.Errorf("%s best score %v", r.Strategy, r.BestScore)
		}
		if byName["grid"].BestScore+1e-9 < r.BestScore {
			t.Errorf("%s beat exhaustive grid search", r.Strategy)
		}
	}
	out := FormatOptimizerComparison("SGE_Calorie", rows)
	if !strings.Contains(out, "bayesian") || !strings.Contains(out, "grid") {
		t.Error("format broken")
	}
}

func TestWriteMarkdownReport(t *testing.T) {
	s := NewSuite(fastConfig())
	var buf strings.Builder
	if err := s.WriteMarkdownReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# CDT reproduction report",
		"## Table 2", "## Table 3", "## Table 4",
		"## Figure 3", "## Table 5", "## Figure 2",
		"| Dataset |", "| --- |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestTable3AcrossSeeds(t *testing.T) {
	rows, err := Table3AcrossSeeds(fastConfig(), []int64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table3Methods) {
		t.Fatalf("got %d methods", len(rows))
	}
	for _, r := range rows {
		if r.Mean < 0 || r.Mean > 1 {
			t.Errorf("%s mean = %v", r.Method, r.Mean)
		}
		if r.SD < 0 {
			t.Errorf("%s sd = %v", r.Method, r.SD)
		}
	}
	if _, err := Table3AcrossSeeds(fastConfig(), nil); err == nil {
		t.Error("no seeds accepted")
	}
}

func TestMeanSD(t *testing.T) {
	mean, sd := meanSD([]float64{1, 3})
	if mean != 2 || sd == 0 {
		t.Errorf("meanSD = %v, %v", mean, sd)
	}
	mean, sd = meanSD([]float64{5})
	if mean != 5 || sd != 0 {
		t.Errorf("single-element meanSD = %v, %v", mean, sd)
	}
}
