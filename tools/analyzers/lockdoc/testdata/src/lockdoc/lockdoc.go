// Package lockdoc is lint-test fodder for the lockdoc analyzer: methods
// that mutate mutex-guarded struct state must document their locking.
package lockdoc

import "sync"

type store struct {
	mu      sync.Mutex
	entries map[string]int
	count   int
}

// SetDocumented takes s.mu and records one entry.
func (s *store) SetDocumented(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[k] = v
}

// DeleteDocumented removes k. Callers must hold s.mu.
func (s *store) DeleteDocumented(k string) {
	delete(s.entries, k)
}

// SetUndocumented writes an entry without saying how the write is guarded.
func (s *store) SetUndocumented(k string, v int) { // want `SetUndocumented mutates s\.entries on a mutex-guarded struct`
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[k] = v
}

func (s *store) SetNoDoc(k string, v int) { // want `SetNoDoc mutates s\.entries on a mutex-guarded struct`
	s.entries[k] = v
}

// BumpUndocumented increments the counter without mentioning anything.
func (s *store) BumpUndocumented() { // want `BumpUndocumented mutates s\.count on a mutex-guarded struct`
	s.count++
}

// DeleteUndocumented drops k from the map.
func (s *store) DeleteUndocumented(k string) { // want `DeleteUndocumented mutates s\.entries on a mutex-guarded struct`
	delete(s.entries, k)
}

// SpawnUndocumented mutates from a goroutine the method launches; the
// function literal is still part of the method body.
func (s *store) SpawnUndocumented() { // want `SpawnUndocumented mutates s\.count on a mutex-guarded struct`
	go func() {
		s.count = 0
	}()
}

// Get only reads, so no doc requirement applies.
func (s *store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[k]
}

// LockOnly touches only the mutex field itself — not a state mutation.
func (s *store) LockOnly() {
	s.mu.Lock()
	s.mu.Unlock()
}

type rwstore struct {
	rw sync.RWMutex
	v  int
}

// SetRW names the rw field, which satisfies the check.
func (r *rwstore) SetRW(v int) {
	r.rw.Lock()
	defer r.rw.Unlock()
	r.v = v
}

// SetRWUndocumented is silent about synchronization.
func (r *rwstore) SetRWUndocumented(v int) { // want `SetRWUndocumented mutates r\.v on a mutex-guarded struct`
	r.v = v
}

type plain struct {
	v int
}

// Set on a lock-free struct needs no locking doc.
func (p *plain) Set(v int) {
	p.v = v
}

// valueRecv has a value receiver; copies cannot usefully guard state.
func (p plain) valueRecv() {
	p.v = 1
}
