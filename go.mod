module cdt

go 1.23
