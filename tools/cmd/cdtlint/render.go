package main

// Structured output renderers. The JSON form is cdtlint's own stable
// shape (findings + suppressed + counts, for scripts and the golden
// tests); the SARIF form is the 2.1.0 interchange subset GitHub code
// scanning consumes: one run, one driver carrying a rule per analyzer,
// one result per finding. Suppressed findings are emitted as results
// carrying an inSource suppression with the directive's justification —
// code scanning shows them as dismissed instead of open, and suppression
// growth stays reviewable.

import (
	"encoding/json"
	"path/filepath"

	"cdt/tools/analysis"
)

// jsonFinding is one finding in -format json output.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	// Reason is the suppression justification; only set under
	// "suppressed".
	Reason string `json:"reason,omitempty"`
}

// jsonCounts summarizes a run.
type jsonCounts struct {
	Findings   int `json:"findings"`
	Suppressed int `json:"suppressed"`
}

// jsonReport is the -format json document.
type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	Suppressed []jsonFinding `json:"suppressed"`
	Counts     jsonCounts    `json:"counts"`
}

func renderJSON(findings []analysis.Finding, suppressed []analysis.SuppressedFinding, root string) ([]byte, error) {
	report := jsonReport{
		Findings:   make([]jsonFinding, 0, len(findings)),
		Suppressed: make([]jsonFinding, 0, len(suppressed)),
		Counts:     jsonCounts{Findings: len(findings), Suppressed: len(suppressed)},
	}
	for _, f := range findings {
		report.Findings = append(report.Findings, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relPath(root, f.Position.Filename),
			Line:     f.Position.Line,
			Column:   f.Position.Column,
			Message:  f.Message,
		})
	}
	for _, s := range suppressed {
		report.Suppressed = append(report.Suppressed, jsonFinding{
			Analyzer: s.Analyzer,
			File:     relPath(root, s.Position.Filename),
			Line:     s.Position.Line,
			Column:   s.Position.Column,
			Message:  s.Message,
			Reason:   s.Reason,
		})
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// SARIF 2.1.0 subset.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

const sarifSchema = "https://json.schemastore.org/sarif-2.1.0.json"

func renderSARIF(findings []analysis.Finding, suppressed []analysis.SuppressedFinding, analyzers []*analysis.Analyzer, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	index := make(map[string]int, len(analyzers)+1)
	addRule := func(id, doc string) {
		if _, ok := index[id]; ok {
			return
		}
		index[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifText{Text: doc}})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	// The reserved rule for malformed //cdtlint:ignore directives.
	addRule(analysis.DirectiveAnalyzer, "malformed cdtlint suppression directive")

	toResult := func(f analysis.Finding, sup []sarifSuppression) sarifResult {
		return sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: index[f.Analyzer],
			Level:     "error",
			Message:   sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(relPath(root, f.Position.Filename)),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Position.Line, StartColumn: f.Position.Column},
				},
			}},
			Suppressions: sup,
		}
	}

	results := make([]sarifResult, 0, len(findings)+len(suppressed))
	for _, f := range findings {
		results = append(results, toResult(f, nil))
	}
	for _, s := range suppressed {
		results = append(results, toResult(s.Finding, []sarifSuppression{{Kind: "inSource", Justification: s.Reason}}))
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cdtlint", Rules: rules}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
