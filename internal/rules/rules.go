// Package rules converts a trained CDT into human-interpretable decision
// rules (paper §3.4): each branch leading to an anomaly leaf becomes a
// *rule predicate* — a conjunction of positive and negated compositions —
// and the rule is the disjunction of all predicates. Boolean
// sum-of-products simplification then minimizes the predicates, e.g.
// (c1) ∨ (c2∧¬c1) ∨ (c3∧¬c2∧¬c1) = c1 ∨ c2 ∨ c3.
package rules

import (
	"fmt"
	"strings"

	"cdt/internal/core"
	"cdt/internal/pattern"
)

// Literal is a possibly negated composition inside a predicate.
type Literal struct {
	Comp core.Composition
	// Neg marks a negative branch (c ∉o d).
	Neg bool
}

// Key identifies the literal (composition identity plus polarity).
func (l Literal) Key() string {
	if l.Neg {
		return "!" + l.Comp.Key()
	}
	return "+" + l.Comp.Key()
}

// Format renders the literal, prefixing negations with "NOT ".
func (l Literal) Format(cfg pattern.Config) string {
	if l.Neg {
		return "NOT " + l.Comp.Format(cfg)
	}
	return l.Comp.Format(cfg)
}

// Predicate is a conjunction of literals: one branch of the CDT from an
// anomaly leaf back to the root (Definition 6).
type Predicate struct {
	Literals []Literal
}

// Matches evaluates the conjunction against a window of labels.
func (p Predicate) Matches(labels []pattern.Label, mode core.MatchMode) bool {
	for _, lit := range p.Literals {
		if lit.Comp.MatchedBy(labels, mode) == lit.Neg {
			return false
		}
	}
	return true
}

// PositiveCompositions returns the non-negated compositions of the
// predicate; the quality measure M(I_Rs) averages I(c) over these.
func (p Predicate) PositiveCompositions() []core.Composition {
	var out []core.Composition
	for _, lit := range p.Literals {
		if !lit.Neg {
			out = append(out, lit.Comp)
		}
	}
	return out
}

// Compositions returns every composition of the predicate, negated or not.
func (p Predicate) Compositions() []core.Composition {
	out := make([]core.Composition, len(p.Literals))
	for i, lit := range p.Literals {
		out[i] = lit.Comp
	}
	return out
}

// Format renders the conjunction, e.g.
// "[ECP[Z,-L], PP[L,H]] AND NOT [PN[-H,-L], SCP[L,Z]]".
func (p Predicate) Format(cfg pattern.Config) string {
	if len(p.Literals) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(p.Literals))
	for i, lit := range p.Literals {
		parts[i] = lit.Format(cfg)
	}
	return strings.Join(parts, " AND ")
}

// Rule is the disjunction of rule predicates (Definition 7): an
// observation is anomalous when any predicate matches.
type Rule struct {
	Predicates []Predicate
	// Mode is the ⊆o matching semantics inherited from the tree.
	Mode core.MatchMode
}

// Detect evaluates the rule against one window of labels.
func (r Rule) Detect(labels []pattern.Label) bool {
	for _, p := range r.Predicates {
		if p.Matches(labels, r.Mode) {
			return true
		}
	}
	return false
}

// DetectAll evaluates the rule over a batch of observations.
func (r Rule) DetectAll(obs []core.Observation) []bool {
	out := make([]bool, len(obs))
	for i := range obs {
		out[i] = r.Detect(obs[i].Labels)
	}
	return out
}

// Count returns the number of rule predicates — the paper's "number of
// rules" metric (Figure 3 counts each branch/predicate as one rule).
func (r Rule) Count() int { return len(r.Predicates) }

// Format renders the whole rule as one IF-THEN line per predicate.
func (r Rule) Format(cfg pattern.Config) string {
	if len(r.Predicates) == 0 {
		return "(no anomaly rules)"
	}
	var b strings.Builder
	for i, p := range r.Predicates {
		fmt.Fprintf(&b, "R%d: IF %s THEN anomaly\n", i+1, p.Format(cfg))
	}
	return b.String()
}

// LeafPolicy selects which leaves of the CDT yield rule predicates.
type LeafPolicy int

const (
	// PureAnomalyLeaves follows the paper exactly: "we only consider
	// pure leaf-nodes leading to the anomaly class".
	PureAnomalyLeaves LeafPolicy = iota
	// MajorityAnomalyLeaves also extracts predicates from impure leaves
	// whose majority class is anomaly — useful when noise prevents pure
	// leaves (ablated in the benchmarks).
	MajorityAnomalyLeaves
)

// String names the policy for reports.
func (lp LeafPolicy) String() string {
	if lp == MajorityAnomalyLeaves {
		return "majority-anomaly"
	}
	return "pure-anomaly"
}

// FromTree extracts the rule from a trained CDT: every root-to-leaf
// branch ending in an anomaly leaf (per policy) becomes one predicate,
// with positive branches contributing c and negative branches ¬c
// (Definition 6). Predicates appear in left-to-right leaf order.
func FromTree(t *core.Tree, policy LeafPolicy) Rule {
	r := Rule{Mode: t.Opts.Match}
	var path []Literal
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		if n.Leaf() {
			take := n.Class() == core.Anomaly
			if policy == PureAnomalyLeaves {
				take = take && n.Pure() && n.Counts.Anomaly > 0
			}
			if take {
				r.Predicates = append(r.Predicates, Predicate{Literals: append([]Literal(nil), path...)})
			}
			return
		}
		path = append(path, Literal{Comp: *n.Composition})
		walk(n.ChildTrue)
		path[len(path)-1].Neg = true
		walk(n.ChildFalse)
		path = path[:len(path)-1]
	}
	walk(t.Root)
	return r
}

// Extract builds and simplifies the rule in one call — the pipeline the
// paper applies after tree induction.
func Extract(t *core.Tree, policy LeafPolicy) Rule {
	return Simplify(FromTree(t, policy))
}
