package rules

import (
	"strings"
	"testing"

	"cdt/internal/core"
	"cdt/internal/pattern"
)

func TestShapePointsLength(t *testing.T) {
	c := comp(la, lb, lc)
	pts := ShapePoints(c, cfg2)
	if len(pts) != len(c.Labels)+2 {
		t.Fatalf("got %d points, want %d", len(pts), len(c.Labels)+2)
	}
	if ShapePoints(core.Composition{}, cfg2) != nil {
		t.Error("empty composition should give nil points")
	}
}

// For labels produced from actual data, the reconstruction realizes every
// β step: a positive peak must come back down.
func TestShapePointsPeakShape(t *testing.T) {
	c := comp(lbl(pattern.PP, 1, 2))
	pts := ShapePoints(c, cfg2)
	if len(pts) != 3 {
		t.Fatal("wrong size")
	}
	if !(pts[1] > pts[0] && pts[1] > pts[2]) {
		t.Errorf("PP shape not a peak: %v", pts)
	}
}

func TestShapePointsNegativePeak(t *testing.T) {
	pts := ShapePoints(comp(lbl(pattern.PN, -2, -2)), cfg2)
	if !(pts[1] < pts[0] && pts[1] < pts[2]) {
		t.Errorf("PN shape not a trough: %v", pts)
	}
}

func TestSketchContainsPoints(t *testing.T) {
	out := Sketch(comp(lbl(pattern.PP, 1, 2)), cfg2, 5)
	if strings.Count(out, "*") != 3 {
		t.Errorf("sketch should plot 3 points:\n%s", out)
	}
	if len(strings.Split(out, "\n")) != 5 {
		t.Errorf("sketch should have 5 rows:\n%s", out)
	}
}

func TestSketchConstant(t *testing.T) {
	out := Sketch(comp(lbl(pattern.CST, 0, 0)), cfg2, 5)
	if !strings.Contains(out, "*") {
		t.Error("constant sketch missing points")
	}
	if strings.Contains(out, "/") || strings.Contains(out, "\\") {
		t.Errorf("constant sketch has slopes:\n%s", out)
	}
}

func TestSketchEmpty(t *testing.T) {
	if got := Sketch(core.Composition{}, cfg2, 5); got != "(empty)" {
		t.Errorf("Sketch(empty) = %q", got)
	}
}

func TestSketchDefaultsHeight(t *testing.T) {
	out := Sketch(comp(la), cfg2, 0)
	if len(strings.Split(out, "\n")) != 5 {
		t.Error("height default not applied")
	}
}

func TestExplainListsRulesAndShapes(t *testing.T) {
	r := Rule{Predicates: []Predicate{
		{Literals: []Literal{pos(comp(lb, lc))}},
		{Literals: []Literal{pos(comp(la)), neg(comp(lb))}},
	}}
	out := Explain(r, cfg2)
	for _, want := range []string{"Rule R1", "Rule R2", "shape of", "THEN anomaly"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(Explain(Rule{}, cfg2), "no anomaly rules") {
		t.Error("empty rule explanation wrong")
	}
}

func TestDescribe(t *testing.T) {
	got := Describe(comp(lbl(pattern.PN, -2, -1), lbl(pattern.SCP, 1, 0)))
	if got != "negative peak, then rise into constant segment" {
		t.Errorf("Describe = %q", got)
	}
}

func TestRepresentativeMagnitudes(t *testing.T) {
	if representative(0, 2) != 0 {
		t.Error("Z should be 0")
	}
	if representative(1, 2) != 0.25 {
		t.Errorf("L midpoint = %v, want 0.25", representative(1, 2))
	}
	if representative(-2, 2) != -0.75 {
		t.Errorf("-H midpoint = %v, want -0.75", representative(-2, 2))
	}
}
