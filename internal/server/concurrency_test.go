package server

// Concurrency hammer: batch scoring against one registry model from N
// goroutines while the registry hot-reloads underneath them, plus M
// parallel streaming sessions. Run under `go test -race` — the race
// detector is the assertion; the explicit checks only confirm no
// request was dropped mid-reload.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	cdt "cdt"
)

func TestConcurrentBatchDetectReloadAndStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency hammer")
	}
	_, ts, dir := newTestServer(t, Config{Workers: 4})

	const (
		batchClients  = 8
		batchRequests = 10
		reloads       = 20
		streamClients = 6
		streamChunks  = 10
	)
	feed := spiky("feed", 240, []int{120}, 11)
	var (
		wg            sync.WaitGroup
		batchFailures atomic.Int64
		detections    atomic.Int64
	)

	// N batch clients hammering one model.
	for c := 0; c < batchClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < batchRequests; i++ {
				req := batchRequest{Series: []seriesPayload{
					{Name: "a", Values: feed.Values},
					{Name: "b", Values: feed.Values[:200]},
				}}
				var resp batchResponse
				if code := doJSON(t, "POST", ts.URL+"/models/spikes/detect", req, &resp); code != 200 {
					batchFailures.Add(1)
					continue
				}
				for _, r := range resp.Results {
					if r.Error != "" {
						batchFailures.Add(1)
					}
					detections.Add(int64(len(r.Detections)))
				}
			}
		}()
	}

	// Concurrent hot-reloads: every in-flight batch request must keep
	// serving off the model pointer it resolved before the swap.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			writeModel(t, dir, "spikes", trainModel(t))
			var rel struct {
				Models int `json:"models"`
			}
			if code := doJSON(t, "POST", ts.URL+"/models/reload", nil, &rel); code != 200 {
				t.Errorf("reload %d failed with %d", i, code)
			}
		}
	}()

	// M parallel streaming sessions, each with its own handle.
	for c := 0; c < streamClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var created createStreamResponse
			if code := doJSON(t, "POST", ts.URL+"/streams",
				createStreamRequest{Model: "spikes", Min: 60, Max: 420}, &created); code != 201 {
				t.Errorf("client %d: create stream = %d", c, code)
				return
			}
			url := ts.URL + "/streams/" + created.ID + "/points"
			chunk := len(feed.Values) / streamChunks
			for i := 0; i < streamChunks; i++ {
				points := feed.Values[i*chunk : (i+1)*chunk]
				var resp pushPointsResponse
				if code := doJSON(t, "POST", url, pushPointsRequest{Points: points}, &resp); code != 200 {
					t.Errorf("client %d: push = %d", c, code)
					return
				}
				detections.Add(int64(len(resp.Detections)))
			}
			if code := doJSON(t, "DELETE", ts.URL+"/streams/"+created.ID, nil, nil); code != 204 {
				t.Errorf("client %d: delete = %d", c, code)
			}
		}(c)
	}

	wg.Wait()
	if n := batchFailures.Load(); n != 0 {
		t.Fatalf("%d batch requests failed during concurrent reloads", n)
	}
	if detections.Load() == 0 {
		t.Fatal("hammer produced zero detections; the test is not exercising the scoring path")
	}
}

// TestConcurrentSessionsOnOneStream serializes concurrent pushes to the
// SAME session through the per-session mutex — cdt.Stream itself is not
// concurrency-safe, so this is the guard the session handle exists for.
func TestConcurrentPushesToOneSession(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	model, _ := s.registry.Get("spikes")
	sess, err := s.sessions.Create("spikes", model, cdt.Scale{Min: 60, Max: 420}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	feed := spiky("feed", 200, []int{100}, 5)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range feed.Values {
				sess.Push(context.Background(), []float64{v})
			}
		}()
	}
	wg.Wait()
	if _, consumed, _ := sess.Push(context.Background(), nil); consumed != 8*len(feed.Values) {
		t.Fatalf("consumed %d points, want %d", consumed, 8*len(feed.Values))
	}
}
