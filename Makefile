# Developer entry points. CI runs the same commands; see
# .github/workflows/ci.yml.

GO ?= go

# Every Fuzz* target in the repo, as "package:FuzzName" pairs. Go runs
# one fuzz target per invocation, so the smoke loop iterates.
FUZZ_TARGETS := \
	.:FuzzLoad \
	./internal/pattern:FuzzParseLabel \
	./internal/pattern:FuzzClassify \
	./internal/pattern:FuzzLabelSeries \
	./internal/datasets:FuzzReadCSV \
	./internal/engine:FuzzEngineMatch
FUZZTIME ?= 10s

.PHONY: all lint lint-sarif test test-hammer bench bench-trace fuzz-smoke fmt-check tidy-check vuln

all: lint test

# lint: the project-specific analyzers (both modules), vet, and gofmt.
lint: fmt-check
	$(GO) vet ./...
	cd tools && $(GO) vet ./...
	$(GO) run ./tools/cmd/cdtlint ./... ./tools/...

# lint-sarif: the same cdtlint run, emitting SARIF 2.1.0 to
# cdtlint.sarif for code-scanning upload. cdtlint exits 1 on findings;
# the SARIF file is written either way so CI can upload before failing.
lint-sarif:
	@$(GO) run ./tools/cmd/cdtlint -format sarif ./... ./tools/... > cdtlint.sarif; \
		status=$$?; echo "wrote cdtlint.sarif"; exit $$status

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

tidy-check:
	$(GO) mod tidy -diff
	cd tools && $(GO) mod tidy -diff

test:
	$(GO) test -race ./...
	$(GO) test ./tools/...

# test-hammer: only the concurrency hammer tests (corpus sharing,
# server lifecycle) under the race detector — the quick loop for lock
# or sharing changes.
test-hammer:
	$(GO) test -race -run Hammer ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# bench-trace: the traced/untraced serving pair behind the tracing
# overhead gate (<3% median with sampling off; REPORT.md). One
# iteration in CI proves both paths run; pass BENCHTIME=2s and -count
# locally when measuring.
BENCHTIME ?= 1x
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkServerBatchDetect(Traced)?$$' \
		-benchtime=$(BENCHTIME) ./internal/server

fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "fuzz $$pkg $$fn"; \
		$(GO) test -run '^$$' -fuzz "^$$fn$$" -fuzztime $(FUZZTIME) $$pkg; \
	done

# vuln: advisory scan; requires network to fetch govulncheck and the
# vulnerability database, so it is gated on availability.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...; \
	fi
