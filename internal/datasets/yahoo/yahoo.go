// Package yahoo generates synthetic stand-ins for the Yahoo Webscope S5
// benchmark (Laptev & Amizadeh 2015), which is license-gated. The four
// benchmark families are reproduced with their documented structure:
//
//   - A1: "real production traffic from actual web services" — trend plus
//     multi-period seasonality with bursty, heteroscedastic noise and
//     point anomalies;
//   - A2: clean synthetic seasonality with random point outliers;
//   - A3: mixtures of sinusoids with trend and Gaussian noise, anomalies
//     inserted at random positions;
//   - A4: as A3 plus change points (level/trend shifts), whose onset is
//     also labeled anomalous.
//
// File counts and lengths default to a laptop-scale version of the
// corpus (the real S5 is 371 files, ~565k points). Default anomaly rates
// are scaled *up* relative to the paper's totals (A1 1669/94778 ≈ 1.8%,
// A2 466/142002 ≈ 0.33%, A3 943/168000 ≈ 0.56%, A4 837/168000 ≈ 0.5%):
// at a few thousand points the documented rates would leave only a
// handful of anomalies per train/validation/test split, making every
// evaluation metric degenerate. Pass AnomalyRate explicitly (as the
// paper-scale experiment harness does) to override.
package yahoo

import (
	"fmt"
	"math"
	"math/rand"

	"cdt/internal/datasets"
	"cdt/internal/timeseries"
)

// Options sizes one benchmark family.
type Options struct {
	// Files is the number of series (defaults per family: 6).
	Files int
	// Points per series (default 480; real S5 files are ~1420).
	Points int
	// AnomalyRate overrides the family's documented rate when > 0.
	AnomalyRate float64
	// Seed drives generation.
	Seed int64
}

func (o Options) withDefaults(rate float64) Options {
	if o.Files <= 0 {
		o.Files = 8
	}
	if o.Points <= 0 {
		o.Points = 600
	}
	if o.AnomalyRate <= 0 {
		o.AnomalyRate = rate
	}
	return o
}

// A1 generates the real-traffic-like benchmark.
func A1(opts Options) *datasets.Dataset {
	opts = opts.withDefaults(0.02)
	rng := rand.New(rand.NewSource(opts.Seed))
	d := &datasets.Dataset{Name: "Yahoo_A1"}
	for f := 0; f < opts.Files; f++ {
		values := make([]float64, opts.Points)
		base := 100 + rng.Float64()*400
		trend := (rng.Float64() - 0.3) * 0.2
		amp1 := 0.2 + rng.Float64()*0.4
		amp2 := 0.1 + rng.Float64()*0.2
		burst := 0.0
		for i := range values {
			t := float64(i)
			season := amp1*math.Sin(2*math.Pi*t/24) + amp2*math.Sin(2*math.Pi*t/168)
			// Bursty noise: occasionally the noise level jumps for a
			// while (traffic volatility).
			if rng.Float64() < 0.01 {
				burst = 0.1 + rng.Float64()*0.2
			}
			if rng.Float64() < 0.05 {
				burst = 0
			}
			noise := (0.03 + burst) * rng.NormFloat64()
			values[i] = base * (1 + trend*t/float64(opts.Points) + season + noise)
		}
		s := timeseries.NewLabeled(fmt.Sprintf("A1-%03d", f), values, make([]bool, opts.Points))
		injectPointAnomalies(s, opts.AnomalyRate, rng)
		d.Series = append(d.Series, s)
	}
	return d
}

// A2 generates the clean synthetic benchmark with random outliers.
func A2(opts Options) *datasets.Dataset {
	opts = opts.withDefaults(0.01)
	rng := rand.New(rand.NewSource(opts.Seed))
	d := &datasets.Dataset{Name: "Yahoo_A2"}
	for f := 0; f < opts.Files; f++ {
		values := make([]float64, opts.Points)
		base := 50 + rng.Float64()*100
		period := 12 + rng.Float64()*50
		amp := 0.3 + rng.Float64()*0.5
		for i := range values {
			t := float64(i)
			values[i] = base * (1 + amp*math.Sin(2*math.Pi*t/period) + 0.01*rng.NormFloat64())
		}
		s := timeseries.NewLabeled(fmt.Sprintf("A2-%03d", f), values, make([]bool, opts.Points))
		injectPointAnomalies(s, opts.AnomalyRate, rng)
		d.Series = append(d.Series, s)
	}
	return d
}

// A3 generates sinusoid mixtures with trend and Gaussian noise.
func A3(opts Options) *datasets.Dataset {
	return sinusoidMixture(opts.withDefaults(0.012), "Yahoo_A3", false)
}

// A4 generates sinusoid mixtures with change points in addition to point
// anomalies; change-point onsets are labeled anomalous.
func A4(opts Options) *datasets.Dataset {
	return sinusoidMixture(opts.withDefaults(0.012), "Yahoo_A4", true)
}

func sinusoidMixture(opts Options, name string, changePoints bool) *datasets.Dataset {
	rng := rand.New(rand.NewSource(opts.Seed))
	d := &datasets.Dataset{Name: name}
	for f := 0; f < opts.Files; f++ {
		values := make([]float64, opts.Points)
		base := 80 + rng.Float64()*200
		trend := (rng.Float64() - 0.5) * 0.3
		p1 := 12 + rng.Float64()*30
		p2 := 50 + rng.Float64()*120
		a1 := 0.2 + rng.Float64()*0.3
		a2 := 0.1 + rng.Float64()*0.2
		level := 0.0
		var shifts []int
		if changePoints {
			nShift := 1 + rng.Intn(2)
			for k := 0; k < nShift; k++ {
				shifts = append(shifts, opts.Points/4+rng.Intn(opts.Points/2))
			}
		}
		for i := range values {
			t := float64(i)
			for _, sh := range shifts {
				if i == sh {
					level += (rng.Float64() - 0.5) * 1.2
				}
			}
			season := a1*math.Sin(2*math.Pi*t/p1) + a2*math.Sin(2*math.Pi*t/p2)
			values[i] = base * (1 + level + trend*t/float64(opts.Points) + season + 0.02*rng.NormFloat64())
		}
		anoms := make([]bool, opts.Points)
		for _, sh := range shifts {
			anoms[sh] = true
		}
		s := timeseries.NewLabeled(fmt.Sprintf("%s-%03d", name[len(name)-2:], f), values, anoms)
		injectPointAnomalies(s, opts.AnomalyRate, rng)
		d.Series = append(d.Series, s)
	}
	return d
}

// injectPointAnomalies plants additive outliers at random non-adjacent
// positions until the target rate is reached — the S5 documentation's
// "anomalies inserted at random positions".
func injectPointAnomalies(s *timeseries.Series, rate float64, rng *rand.Rand) {
	n := s.Len()
	target := int(math.Round(rate * float64(n)))
	if target < 1 {
		target = 1
	}
	// Typical local scale, for sizing outliers relative to the signal.
	scale := 0.0
	for i := 1; i < n; i++ {
		scale += math.Abs(s.Values[i] - s.Values[i-1])
	}
	scale /= float64(n - 1)
	if scale == 0 {
		scale = 1
	}
	guard := 0
	for s.AnomalyCount() < target && guard < 100*n {
		guard++
		i := 2 + rng.Intn(n-4)
		if nearAnomaly(s, i) {
			continue
		}
		sign := 1.0
		if rng.Intn(2) == 0 {
			sign = -1
		}
		s.Values[i] += sign * scale * (8 + rng.Float64()*12)
		s.Anomalies[i] = true
	}
}

// nearAnomaly reports whether an anomaly exists within two points of i.
func nearAnomaly(s *timeseries.Series, i int) bool {
	for j := i - 2; j <= i+2; j++ {
		if j >= 0 && j < s.Len() && s.Anomalies[j] {
			return true
		}
	}
	return false
}
