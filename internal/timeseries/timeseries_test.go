package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestNormalizeRange(t *testing.T) {
	s := New("s", []float64{10, 20, 15, 30, 10})
	sc, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Min != 10 || sc.Max != 30 {
		t.Fatalf("scale = %+v, want {10 30}", sc)
	}
	want := []float64{0, 0.5, 0.25, 1, 0}
	for i, v := range s.Values {
		if !almostEqual(v, want[i]) {
			t.Errorf("Values[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestNormalizeConstant(t *testing.T) {
	s := New("s", []float64{7, 7, 7})
	if _, err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Values {
		if v != 0 {
			t.Errorf("Values[%d] = %v, want 0", i, v)
		}
	}
}

func TestNormalizeEmpty(t *testing.T) {
	s := New("s", nil)
	if _, err := s.Normalize(); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestNormalizePropertyRangeAndInverse(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return true
		}
		orig := append([]float64(nil), vals...)
		s := New("p", vals)
		sc, err := s.Normalize()
		if err != nil {
			return false
		}
		for i, v := range s.Values {
			if v < 0 || v > 1 {
				return false
			}
			// Inverting must recover the original within relative error.
			back := sc.Invert(v)
			if diff := math.Abs(back - orig[i]); diff > 1e-6*(1+math.Abs(orig[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScaleApplyInvertRoundTrip(t *testing.T) {
	sc := Scale{Min: -4, Max: 12}
	for _, v := range []float64{-4, 0, 3.5, 12} {
		if got := sc.Invert(sc.Apply(v)); !almostEqual(got, v) {
			t.Errorf("round trip of %v = %v", v, got)
		}
	}
}

func TestDownsampleMean(t *testing.T) {
	s := NewLabeled("s", []float64{1, 3, 5, 7, 9}, []bool{false, true, false, false, false})
	out, err := Downsample(s, 2, Mean)
	if err != nil {
		t.Fatal(err)
	}
	wantVals := []float64{2, 6, 9}
	wantAnom := []bool{true, false, false}
	if len(out.Values) != 3 {
		t.Fatalf("len = %d, want 3", len(out.Values))
	}
	for i := range wantVals {
		if !almostEqual(out.Values[i], wantVals[i]) {
			t.Errorf("Values[%d] = %v, want %v", i, out.Values[i], wantVals[i])
		}
		if out.Anomalies[i] != wantAnom[i] {
			t.Errorf("Anomalies[%d] = %v, want %v", i, out.Anomalies[i], wantAnom[i])
		}
	}
}

func TestDownsampleFactorOneClones(t *testing.T) {
	s := New("s", []float64{1, 2})
	out, err := Downsample(s, 1, Mean)
	if err != nil {
		t.Fatal(err)
	}
	out.Values[0] = 99
	if s.Values[0] == 99 {
		t.Error("Downsample(1) shares storage with the input")
	}
}

func TestDownsampleErrors(t *testing.T) {
	if _, err := Downsample(New("s", []float64{1}), 0, Mean); err == nil {
		t.Error("factor 0 accepted")
	}
	if _, err := Downsample(New("s", nil), 2, Mean); err == nil {
		t.Error("empty series accepted")
	}
}

func TestDownsamplePreservesAnomalyPresence(t *testing.T) {
	f := func(n uint8, factor uint8, anomalyAt uint8) bool {
		size := int(n%200) + 1
		fac := int(factor%10) + 1
		vals := make([]float64, size)
		anoms := make([]bool, size)
		idx := int(anomalyAt) % size
		anoms[idx] = true
		s := NewLabeled("p", vals, anoms)
		out, err := Downsample(s, fac, Mean)
		if err != nil {
			return false
		}
		return out.AnomalyCount() >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregators(t *testing.T) {
	b := []float64{2, 4, 9}
	if got := Mean(b); !almostEqual(got, 5) {
		t.Errorf("Mean = %v", got)
	}
	if got := Sum(b); !almostEqual(got, 15) {
		t.Errorf("Sum = %v", got)
	}
	if got := Max(b); !almostEqual(got, 9) {
		t.Errorf("Max = %v", got)
	}
}

func TestMovingAverage(t *testing.T) {
	s := New("s", []float64{0, 3, 0, 3, 0})
	out, err := MovingAverage(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 1, 2, 1, 1.5}
	for i := range want {
		if !almostEqual(out.Values[i], want[i]) {
			t.Errorf("Values[%d] = %v, want %v", i, out.Values[i], want[i])
		}
	}
}

func TestMovingAverageRejectsEvenWidth(t *testing.T) {
	if _, err := MovingAverage(New("s", []float64{1, 2}), 2); err == nil {
		t.Error("even width accepted")
	}
}

func TestChronologicalSplitProportions(t *testing.T) {
	vals := make([]float64, 100)
	s := New("s", vals)
	sp, err := ChronologicalSplit(s, 0.6, 0.2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Train.Len() != 60 || sp.Validation.Len() != 20 || sp.Test.Len() != 20 {
		t.Fatalf("split sizes = %d/%d/%d", sp.Train.Len(), sp.Validation.Len(), sp.Test.Len())
	}
}

func TestChronologicalSplitCoversEveryPointOnce(t *testing.T) {
	f := func(n uint16) bool {
		size := int(n%5000) + 3
		vals := make([]float64, size)
		for i := range vals {
			vals[i] = float64(i)
		}
		s := New("p", vals)
		sp, err := ChronologicalSplit(s, 0.6, 0.2, 0.2)
		if err != nil {
			return false
		}
		if sp.Train.Len()+sp.Validation.Len()+sp.Test.Len() != size {
			return false
		}
		// Segments must be contiguous and ordered.
		return sp.Train.Values[0] == 0 &&
			sp.Validation.Values[0] == float64(sp.Train.Len()) &&
			sp.Test.Values[0] == float64(sp.Train.Len()+sp.Validation.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChronologicalSplitRejectsBadFractions(t *testing.T) {
	s := New("s", make([]float64, 10))
	for _, fr := range [][3]float64{{0.5, 0.5, 0.5}, {0, 0.5, 0.5}, {-0.2, 0.6, 0.6}} {
		if _, err := ChronologicalSplit(s, fr[0], fr[1], fr[2]); err == nil {
			t.Errorf("fractions %v accepted", fr)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := NewLabeled("s", []float64{1, 2, 3, 4}, []bool{true, false, false, true})
	st, err := Summarize(s)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 4 || st.Min != 1 || st.Max != 4 || st.Anomalies != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if !almostEqual(st.Mean, 2.5) {
		t.Errorf("mean = %v", st.Mean)
	}
	if !almostEqual(st.Std, math.Sqrt(1.25)) {
		t.Errorf("std = %v", st.Std)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewLabeled("s", []float64{1, 2}, []bool{true, false})
	c := s.Clone()
	c.Values[0] = 9
	c.Anomalies[1] = true
	if s.Values[0] == 9 || s.Anomalies[1] {
		t.Error("Clone shares storage")
	}
}

func TestNewLabeledPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for mismatched lengths")
		}
	}()
	NewLabeled("s", []float64{1, 2}, []bool{true})
}

func TestSliceSharesStorage(t *testing.T) {
	s := NewLabeled("s", []float64{1, 2, 3}, []bool{false, true, false})
	sub := s.Slice(1, 3)
	if sub.Len() != 2 || sub.Values[0] != 2 || !sub.Anomalies[0] {
		t.Fatalf("slice = %+v", sub)
	}
}

func TestDownsampleRandomizedLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(500) + 1
		factor := rng.Intn(20) + 1
		s := New("s", make([]float64, n))
		out, err := Downsample(s, factor, Mean)
		if err != nil {
			t.Fatal(err)
		}
		want := (n + factor - 1) / factor
		if out.Len() != want {
			t.Fatalf("n=%d factor=%d: len = %d, want %d", n, factor, out.Len(), want)
		}
	}
}
