package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"testing"

	"cdt/internal/trace"
)

// BenchmarkServerBatchDetect measures end-to-end serving throughput
// (series scored per second) through the real HTTP handler: JSON decode,
// worker-pool fan-out, detection with rule rendering, JSON encode. This
// is the serving-path baseline future perf PRs compare against.
func BenchmarkServerBatchDetect(b *testing.B) {
	_, ts, _ := newTestServer(b, Config{})

	const seriesPerRequest = 8
	req := batchRequest{}
	for i := 0; i < seriesPerRequest; i++ {
		req.Series = append(req.Series, seriesPayload{
			Name:   "s",
			Values: spiky("s", 300, []int{120, 240}, int64(i)).Values,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	url := ts.URL + "/models/spikes/detect"

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out batchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || len(out.Results) != seriesPerRequest {
			b.Fatalf("status %d, %d results", resp.StatusCode, len(out.Results))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*seriesPerRequest)/b.Elapsed().Seconds(), "series/sec")
}

// BenchmarkServerBatchDetectTelemetry is BenchmarkServerBatchDetect at
// the maximum observability setting: metrics (always on) plus structured
// JSON access logging with request IDs. The delta against
// BenchmarkServerBatchDetect isolates the access-log cost; the delta of
// BenchmarkServerBatchDetect itself against its pre-telemetry number
// (REPORT.md) isolates the always-on metrics cost, which the <3%
// regression gate bounds.
func BenchmarkServerBatchDetectTelemetry(b *testing.B) {
	logger := slog.New(slog.NewJSONHandler(io.Discard, nil))
	_, ts, _ := newTestServer(b, Config{AccessLog: logger})

	const seriesPerRequest = 8
	req := batchRequest{}
	for i := 0; i < seriesPerRequest; i++ {
		req.Series = append(req.Series, seriesPayload{
			Name:   "s",
			Values: spiky("s", 300, []int{120, 240}, int64(i)).Values,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	url := ts.URL + "/models/spikes/detect"

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out batchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || len(out.Results) != seriesPerRequest {
			b.Fatalf("status %d, %d results", resp.StatusCode, len(out.Results))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*seriesPerRequest)/b.Elapsed().Seconds(), "series/sec")
}

// BenchmarkServerBatchDetectTraced is BenchmarkServerBatchDetect with a
// tracer configured but head sampling off — the everyone-pays cost of
// the tracing instrumentation points (one context lookup per span site,
// per-rule attribution tallies, drift rule window). The delta against
// BenchmarkServerBatchDetect is the overhead the <3% median gate
// (REPORT.md) bounds; per-request span recording is opt-in via the
// sample rate and is not part of the gate.
func BenchmarkServerBatchDetectTraced(b *testing.B) {
	tr := trace.New(trace.Config{SampleRate: 0})
	_, ts, _ := newTestServer(b, Config{Tracer: tr})

	const seriesPerRequest = 8
	req := batchRequest{}
	for i := 0; i < seriesPerRequest; i++ {
		req.Series = append(req.Series, seriesPayload{
			Name:   "s",
			Values: spiky("s", 300, []int{120, 240}, int64(i)).Values,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	url := ts.URL + "/models/spikes/detect"

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out batchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || len(out.Results) != seriesPerRequest {
			b.Fatalf("status %d, %d results", resp.StatusCode, len(out.Results))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*seriesPerRequest)/b.Elapsed().Seconds(), "series/sec")
}

// BenchmarkServerBatchDetectPyramid is BenchmarkServerBatchDetect with
// a two-scale pyramid artifact serving the same traffic shape: per-scale
// engine sweeps, point-level fusion, anomaly typing, and the per-scale
// response breakdown all ride the batch path. The delta against
// BenchmarkServerBatchDetect is the serving cost of multi-resolution
// scoring (REPORT.md).
func BenchmarkServerBatchDetectPyramid(b *testing.B) {
	s, ts, dir := newTestServer(b, Config{})
	writePyramid(b, dir, "multi", trainPyramid(b))
	if _, err := s.Registry().Reload(); err != nil {
		b.Fatal(err)
	}

	const seriesPerRequest = 8
	req := batchRequest{}
	for i := 0; i < seriesPerRequest; i++ {
		req.Series = append(req.Series, seriesPayload{
			Name:   "s",
			Values: plateauSpiky("s", 300, []int{120, 240}, 60, 24, int64(i)).Values,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	url := ts.URL + "/models/multi/detect"

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out batchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || len(out.Results) != seriesPerRequest {
			b.Fatalf("status %d, %d results", resp.StatusCode, len(out.Results))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*seriesPerRequest)/b.Elapsed().Seconds(), "series/sec")
}

// BenchmarkServerBatchDetectShadow is BenchmarkServerBatchDetect with a
// candidate version shadow-scoring every request. The serving path pays
// only an incumbent-range copy and a non-blocking enqueue — candidate
// scoring happens on background workers — so the delta against
// BenchmarkServerBatchDetect is the shadow overhead the <5% median gate
// (REPORT.md) bounds.
func BenchmarkServerBatchDetectShadow(b *testing.B) {
	s, ts, _ := newStoreServer(b, Config{})
	if code := doJSON(b, "POST", ts.URL+"/models/spikes/shadow", versionRequest{Version: 2}, nil); code != 201 {
		b.Fatalf("shadow start: status %d", code)
	}

	const seriesPerRequest = 8
	req := batchRequest{}
	for i := 0; i < seriesPerRequest; i++ {
		req.Series = append(req.Series, seriesPayload{
			Name:   "s",
			Values: spiky("s", 300, []int{120, 240}, int64(i)).Values,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	url := ts.URL + "/models/spikes/detect"

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out batchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || len(out.Results) != seriesPerRequest {
			b.Fatalf("status %d, %d results", resp.StatusCode, len(out.Results))
		}
	}
	b.StopTimer()
	s.shadows.drain() // candidate scoring runs off-path; settle before reporting
	if sh := s.shadows.Get("spikes"); sh == nil || sh.windows.Load() == 0 {
		b.Fatal("shadow scored nothing; the benchmark is not exercising the shadow path")
	}
	b.ReportMetric(float64(b.N*seriesPerRequest)/b.Elapsed().Seconds(), "series/sec")
}

// BenchmarkServerBatchDetectPyramidShadow is
// BenchmarkServerBatchDetectPyramid with a retrained pyramid candidate
// shadow-scoring every request — the same-kind comparison over fused
// point ranges plus the per-scale fire-rate observations, all on
// background workers. The delta against BenchmarkServerBatchDetectPyramid
// is the pyramid shadow overhead the <5% median gate (REPORT.md) bounds.
func BenchmarkServerBatchDetectPyramidShadow(b *testing.B) {
	s, ts, _ := newPyramidStoreServer(b)
	if code := doJSON(b, "POST", ts+"/models/multi/shadow", versionRequest{Version: 2}, nil); code != 201 {
		b.Fatalf("shadow start: status %d", code)
	}

	const seriesPerRequest = 8
	req := batchRequest{}
	for i := 0; i < seriesPerRequest; i++ {
		req.Series = append(req.Series, seriesPayload{
			Name:   "s",
			Values: plateauSpiky("s", 300, []int{120, 240}, 60, 24, int64(i)).Values,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	url := ts + "/models/multi/detect"

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out batchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || len(out.Results) != seriesPerRequest {
			b.Fatalf("status %d, %d results", resp.StatusCode, len(out.Results))
		}
	}
	b.StopTimer()
	s.shadows.drain() // candidate scoring runs off-path; settle before reporting
	if sh := s.shadows.Get("multi"); sh == nil || sh.windows.Load() == 0 {
		b.Fatal("shadow scored nothing; the benchmark is not exercising the shadow path")
	}
	b.ReportMetric(float64(b.N*seriesPerRequest)/b.Elapsed().Seconds(), "series/sec")
}

// BenchmarkServerSessionPush measures streaming-session throughput
// (points scored per second) through the real HTTP handler: one live
// session whose stream rides the model's shared compiled engine, fed
// chunked points. Steady-state cost per point is the engine cursor's
// O(1) incremental step plus the HTTP/JSON overhead.
func BenchmarkServerSessionPush(b *testing.B) {
	_, ts, _ := newTestServer(b, Config{})

	var created createStreamResponse
	cBody, err := json.Marshal(createStreamRequest{Model: "spikes", Min: 60, Max: 420})
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/streams", "application/json", bytes.NewReader(cBody))
	if err != nil {
		b.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if created.ID == "" {
		b.Fatal("no session id")
	}

	const pointsPerPush = 256
	feed := spiky("live", pointsPerPush, []int{60, 180}, 7)
	body, err := json.Marshal(pushPointsRequest{Points: feed.Values})
	if err != nil {
		b.Fatal(err)
	}
	url := ts.URL + "/streams/" + created.ID + "/points"

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out pushPointsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || !out.Ready {
			b.Fatalf("status %d, ready %v", resp.StatusCode, out.Ready)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*pointsPerPush)/b.Elapsed().Seconds(), "points/sec")
}
