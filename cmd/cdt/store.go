package main

// `cdt store` operates a versioned model store (the directory cdtserve
// serves with -store): publish candidate model documents, inspect
// versions and the audit trail, and move the "current" promotion
// pointer. Every mutation lands in the store's append-only audit log,
// so `cdt store audit` reconstructs exactly what happened and when.
//
//	cdt store versions -dir store [-model name]
//	cdt store audit    -dir store [-n 20]
//	cdt store publish  -dir store -model name -in model.json [-note text]
//	cdt store promote  -dir store -model name -version N
//	cdt store rollback -dir store -model name

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cdt/internal/modelstore"
)

func runStore(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: cdt store <versions|audit|publish|promote|rollback> [flags]")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("store "+sub, flag.ContinueOnError)
	dir := fs.String("dir", "", "model-store directory (required)")
	model := fs.String("model", "", "model name")
	version := fs.Int("version", 0, "store version number")
	in := fs.String("in", "", "model JSON to publish (written by `cdt train -save`)")
	note := fs.String("note", "", "free-form note recorded on the published version")
	limit := fs.Int("n", 0, "show only the last n audit events (0 = all)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("store %s: -dir is required", sub)
	}
	st, err := modelstore.Open(*dir)
	if err != nil {
		return err
	}
	switch sub {
	case "versions":
		return storeVersions(st, *model)
	case "audit":
		return storeAudit(st, *limit)
	case "publish":
		return storePublish(st, *model, *in, *note)
	case "promote":
		return storePromote(st, *model, *version)
	case "rollback":
		return storeRollback(st, *model)
	default:
		return fmt.Errorf("unknown store subcommand %q (want versions, audit, publish, promote, or rollback)", sub)
	}
}

// storeVersions lists every version of one model (or of all models),
// marking the promoted current with '*'.
func storeVersions(st *modelstore.Store, model string) error {
	names := st.Models()
	if model != "" {
		names = []string{model}
	}
	if len(names) == 0 {
		fmt.Println("store is empty")
		return nil
	}
	for _, name := range names {
		versions, current, err := st.Versions(name)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", name)
		for _, v := range versions {
			marker := " "
			if v.Version == current {
				marker = "*"
			}
			fmt.Printf("  %s v%-3d %s  omega=%d delta=%d rules=%d  source=%s",
				marker, v.Version, time.Unix(v.CreatedAt, 0).UTC().Format("2006-01-02 15:04:05"),
				v.Omega, v.Delta, v.NumRules, v.Source)
			if v.Note != "" {
				fmt.Printf("  (%s)", v.Note)
			}
			fmt.Println()
		}
	}
	return nil
}

// storeAudit prints the audit trail, oldest first.
func storeAudit(st *modelstore.Store, limit int) error {
	events, err := st.Audit(limit)
	if err != nil {
		return err
	}
	for _, e := range events {
		fmt.Printf("%6d  %s  %-8s %s", e.Seq,
			time.Unix(e.Time, 0).UTC().Format("2006-01-02 15:04:05"), e.Event, e.Model)
		if e.Version != 0 {
			fmt.Printf(" v%d", e.Version)
		}
		if e.Detail != "" {
			fmt.Printf("  %s", e.Detail)
		}
		fmt.Println()
	}
	return nil
}

func storePublish(st *modelstore.Store, model, in, note string) error {
	if model == "" || in == "" {
		return fmt.Errorf("store publish: -model and -in are required")
	}
	doc, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	v, err := st.Publish(model, doc, "cli", note)
	if err != nil {
		return err
	}
	fmt.Printf("published %s v%d (omega=%d delta=%d rules=%d); promote with:\n", model, v.Version, v.Omega, v.Delta, v.NumRules)
	fmt.Printf("  cdt store promote -dir %s -model %s -version %d\n", st.Dir(), model, v.Version)
	return nil
}

func storePromote(st *modelstore.Store, model string, version int) error {
	if model == "" || version == 0 {
		return fmt.Errorf("store promote: -model and -version are required")
	}
	if err := st.Promote(model, version); err != nil {
		return err
	}
	fmt.Printf("promoted %s v%d to current\n", model, version)
	return nil
}

func storeRollback(st *modelstore.Store, model string) error {
	if model == "" {
		return fmt.Errorf("store rollback: -model is required")
	}
	v, err := st.Rollback(model)
	if err != nil {
		return err
	}
	fmt.Printf("rolled back %s to v%d\n", model, v)
	return nil
}
