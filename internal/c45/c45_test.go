package c45

import (
	"math"
	"math/rand"
	"testing"
)

// xorDataset builds a dataset where class = attr0 XOR attr1 with a third
// irrelevant attribute.
func xorDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{
		AttrNames:  []string{"a", "b", "noise"},
		AttrCard:   []int{2, 2, 4},
		NumClasses: 2,
	}
	for i := 0; i < n; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		ds.Instances = append(ds.Instances, Instance{
			Attrs: []int{a, b, rng.Intn(4)},
			Class: a ^ b,
		})
	}
	return ds
}

func TestBuildLearnsXOR(t *testing.T) {
	ds := xorDataset(200, 1)
	tree, err := Build(ds, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for _, inst := range ds.Instances {
		if tree.Predict(inst.Attrs) != inst.Class {
			errs++
		}
	}
	if errs != 0 {
		t.Errorf("%d training errors on noiseless XOR", errs)
	}
}

func TestBuildPureDataSingleLeaf(t *testing.T) {
	ds := &Dataset{
		AttrNames:  []string{"a"},
		AttrCard:   []int{2},
		NumClasses: 2,
	}
	for i := 0; i < 10; i++ {
		ds.Instances = append(ds.Instances, Instance{Attrs: []int{i % 2}, Class: 1})
	}
	tree, err := Build(ds, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.Leaf() {
		t.Error("pure data split")
	}
	if tree.Predict([]int{0}) != 1 {
		t.Error("wrong prediction")
	}
}

func TestValidate(t *testing.T) {
	bad := []*Dataset{
		{AttrNames: []string{"a"}, AttrCard: []int{2, 3}, NumClasses: 2},
		{AttrNames: []string{"a"}, AttrCard: []int{2}, NumClasses: 1},
		{AttrNames: []string{"a"}, AttrCard: []int{2}, NumClasses: 2,
			Instances: []Instance{{Attrs: []int{0, 1}, Class: 0}}},
		{AttrNames: []string{"a"}, AttrCard: []int{2}, NumClasses: 2,
			Instances: []Instance{{Attrs: []int{5}, Class: 0}}},
		{AttrNames: []string{"a"}, AttrCard: []int{2}, NumClasses: 2,
			Instances: []Instance{{Attrs: []int{0}, Class: 7}}},
	}
	for i, ds := range bad {
		if err := ds.Validate(); err == nil {
			t.Errorf("bad dataset %d accepted", i)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	ds := &Dataset{AttrNames: []string{"a"}, AttrCard: []int{2}, NumClasses: 2}
	if _, err := Build(ds, nil, Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
	ds.Instances = []Instance{{Attrs: []int{0}, Class: 0}}
	if _, err := Build(ds, []int{}, Options{}); err == nil {
		t.Error("empty index set accepted")
	}
}

func TestPruningShrinksNoisyTree(t *testing.T) {
	// Random classes: an unpruned tree overfits; pruning should collapse
	// most of it.
	rng := rand.New(rand.NewSource(3))
	ds := &Dataset{
		AttrNames:  []string{"a", "b", "c", "d"},
		AttrCard:   []int{3, 3, 3, 3},
		NumClasses: 2,
	}
	for i := 0; i < 300; i++ {
		ds.Instances = append(ds.Instances, Instance{
			Attrs: []int{rng.Intn(3), rng.Intn(3), rng.Intn(3), rng.Intn(3)},
			Class: rng.Intn(2),
		})
	}
	unpruned, err := Build(ds, nil, Options{Confidence: 1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Build(ds, nil, Options{Confidence: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Size() > unpruned.Size() {
		t.Errorf("pruned size %d > unpruned %d", pruned.Size(), unpruned.Size())
	}
}

func TestBuildOnSubset(t *testing.T) {
	ds := xorDataset(100, 4)
	indices := []int{0, 1, 2, 3, 4, 5, 6, 7}
	tree, err := Build(ds, indices, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Total() != len(indices) {
		t.Errorf("root total = %d, want %d", tree.Root.Total(), len(indices))
	}
}

func TestLeavesPathsConsistent(t *testing.T) {
	ds := xorDataset(150, 5)
	tree, err := Build(ds, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	if len(leaves) < 2 {
		t.Fatal("tree did not split")
	}
	total := 0
	for _, l := range leaves {
		total += l.Node.Total()
		// Routing any instance matching the path must reach this leaf.
		for _, inst := range ds.Instances {
			match := true
			for _, c := range l.Conditions {
				if inst.Attrs[c.Attr] != c.Value {
					match = false
					break
				}
			}
			if match && tree.Predict(inst.Attrs) != l.Node.MajorityClass {
				// Only check when paths fully determine routing; with a
				// deterministic tree this must hold.
				t.Fatalf("instance matching leaf path predicted differently")
			}
		}
	}
	if total != len(ds.Instances) {
		t.Errorf("leaf totals %d != instances %d", total, len(ds.Instances))
	}
}

func TestEntropyHelper(t *testing.T) {
	if got := entropy([]int{5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("entropy balanced = %v", got)
	}
	if got := entropy([]int{7, 0}); got != 0 {
		t.Errorf("entropy pure = %v", got)
	}
	if got := entropy(nil); got != 0 {
		t.Errorf("entropy empty = %v", got)
	}
}

func TestPessimisticErrorsMonotonic(t *testing.T) {
	// More observed errors → higher estimate; estimate > observed.
	e1 := pessimisticErrors(100, 0, 0.25)
	e2 := pessimisticErrors(100, 10, 0.25)
	if e2 <= e1 {
		t.Error("estimate not monotone in errors")
	}
	if e2 <= 10 {
		t.Errorf("estimate %v not pessimistic", e2)
	}
	if pessimisticErrors(0, 0, 0.25) != 0 {
		t.Error("zero instances should cost 0")
	}
}

func TestNormQuantile(t *testing.T) {
	// Φ⁻¹(0.975) ≈ 1.95996.
	if got := normQuantile(0.975); math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("quantile(0.975) = %v", got)
	}
	if got := normQuantile(0.5); math.Abs(got) > 1e-9 {
		t.Errorf("quantile(0.5) = %v", got)
	}
	if got := normQuantile(0.025); math.Abs(got+1.95996) > 1e-3 {
		t.Errorf("quantile(0.025) = %v", got)
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("edge quantiles wrong")
	}
}

func TestPredictUnseenValueFallsBack(t *testing.T) {
	ds := xorDataset(100, 6)
	tree, err := Build(ds, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range attribute value routes to the node majority instead of
	// panicking.
	got := tree.Predict([]int{-1, -1, -1})
	if got != 0 && got != 1 {
		t.Errorf("fallback prediction = %d", got)
	}
}

func TestSize(t *testing.T) {
	ds := xorDataset(100, 7)
	tree, err := Build(ds, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() < 3 {
		t.Errorf("size = %d for an XOR tree", tree.Size())
	}
}

func TestMajorityHelper(t *testing.T) {
	if majority([]int{1, 5, 3}) != 1 {
		t.Error("majority wrong")
	}
	if majority([]int{2, 2}) != 0 {
		t.Error("tie should break low")
	}
}

// Hand-computed gain-ratio check: a perfectly splitting binary attribute
// must be preferred over a noisy one even when the noisy one has more
// values (the gain-ratio correction for multiway splits).
func TestBestSplitPrefersInformativeAttribute(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := &Dataset{
		AttrNames:  []string{"clean", "manyvalues"},
		AttrCard:   []int{2, 8},
		NumClasses: 2,
	}
	for i := 0; i < 160; i++ {
		cls := i % 2
		ds.Instances = append(ds.Instances, Instance{
			Attrs: []int{cls, rng.Intn(8)},
			Class: cls,
		})
	}
	tree, err := Build(ds, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Leaf() {
		t.Fatal("no split at all")
	}
	if tree.Root.Attr != 0 {
		t.Errorf("split on attribute %d, want the clean attribute 0", tree.Root.Attr)
	}
	// One split should suffice for a perfect attribute.
	if tree.Size() != 3 {
		t.Errorf("tree size = %d, want 3 nodes", tree.Size())
	}
}

// Entropy arithmetic verified against a hand computation:
// H({6,2}) = -(0.75·log2 0.75 + 0.25·log2 0.25) ≈ 0.8113.
func TestEntropyHandComputed(t *testing.T) {
	got := entropy([]int{6, 2})
	want := 0.8112781244591328
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("entropy = %v, want %v", got, want)
	}
}

func TestBuildPartialLearnsDominantBranch(t *testing.T) {
	ds := xorDataset(200, 12)
	tree, err := BuildPartial(ds, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The partial tree must classify at least the instances routed to its
	// developed branch correctly; overall it cannot be worse than the
	// majority baseline.
	errs := 0
	for _, inst := range ds.Instances {
		if tree.Predict(inst.Attrs) != inst.Class {
			errs++
		}
	}
	if errs > len(ds.Instances)/2 {
		t.Errorf("%d/%d errors — worse than majority", errs, len(ds.Instances))
	}
	// A partial tree is never larger than the full tree.
	full, err := Build(ds, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() > full.Size() {
		t.Errorf("partial tree (%d nodes) larger than full (%d)", tree.Size(), full.Size())
	}
}

func TestBuildPartialPureData(t *testing.T) {
	ds := &Dataset{AttrNames: []string{"a"}, AttrCard: []int{2}, NumClasses: 2}
	for i := 0; i < 10; i++ {
		ds.Instances = append(ds.Instances, Instance{Attrs: []int{i % 2}, Class: 0})
	}
	tree, err := BuildPartial(ds, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.Leaf() {
		t.Error("pure data split")
	}
}

func TestBuildPartialErrors(t *testing.T) {
	ds := &Dataset{AttrNames: []string{"a"}, AttrCard: []int{2}, NumClasses: 2}
	if _, err := BuildPartial(ds, nil, Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
	ds.Instances = []Instance{{Attrs: []int{0}, Class: 0}}
	if _, err := BuildPartial(ds, []int{}, Options{}); err == nil {
		t.Error("empty index set accepted")
	}
}

func TestBuildPartialLeavesCoverEverything(t *testing.T) {
	ds := xorDataset(150, 13)
	tree, err := BuildPartial(ds, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Prediction must work for every instance (unexpanded children are
	// usable leaves).
	for _, inst := range ds.Instances {
		if c := tree.Predict(inst.Attrs); c < 0 || c > 1 {
			t.Fatalf("prediction %d out of range", c)
		}
	}
	if len(tree.Leaves()) < 2 {
		t.Error("partial tree has no structure")
	}
}
