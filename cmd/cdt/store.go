package main

// `cdt store` operates a versioned model store (the directory cdtserve
// serves with -store): publish candidate model documents, inspect
// versions and the audit trail, and move the "current" promotion
// pointer. Every mutation lands in the store's append-only audit log,
// so `cdt store audit` reconstructs exactly what happened and when.
//
//	cdt store versions -dir store [-model name]
//	cdt store audit    -dir store [-n 20]
//	cdt store publish  -dir store -model name -in model.json [-note text]
//	cdt store promote  -dir store -model name -version N
//	cdt store rollback -dir store -model name
//	cdt store gc       -dir store
//	cdt store diff     -dir store <name> <v1> <v2>

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	cdt "cdt"
	"cdt/internal/modelstore"
)

func runStore(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: cdt store <versions|audit|publish|promote|rollback|gc|diff> [flags]")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("store "+sub, flag.ContinueOnError)
	dir := fs.String("dir", "", "model-store directory (required)")
	model := fs.String("model", "", "model name")
	version := fs.Int("version", 0, "store version number")
	in := fs.String("in", "", "model JSON to publish (written by `cdt train -save`)")
	note := fs.String("note", "", "free-form note recorded on the published version")
	limit := fs.Int("n", 0, "show only the last n audit events (0 = all)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("store %s: -dir is required", sub)
	}
	st, err := modelstore.Open(*dir)
	if err != nil {
		return err
	}
	switch sub {
	case "versions":
		return storeVersions(st, *model)
	case "audit":
		return storeAudit(st, *limit)
	case "publish":
		return storePublish(st, *model, *in, *note)
	case "promote":
		return storePromote(st, *model, *version)
	case "rollback":
		return storeRollback(st, *model)
	case "gc":
		return storeGC(st)
	case "diff":
		return storeDiff(st, fs.Args())
	default:
		return fmt.Errorf("unknown store subcommand %q (want versions, audit, publish, promote, rollback, gc, or diff)", sub)
	}
}

// storeVersions lists every version of one model (or of all models),
// marking the promoted current with '*'.
func storeVersions(st *modelstore.Store, model string) error {
	names := st.Models()
	if model != "" {
		names = []string{model}
	}
	if len(names) == 0 {
		fmt.Println("store is empty")
		return nil
	}
	for _, name := range names {
		versions, current, err := st.Versions(name)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", name)
		for _, v := range versions {
			marker := " "
			if v.Version == current {
				marker = "*"
			}
			fmt.Printf("  %s v%-3d %s  omega=%d delta=%d rules=%d  source=%s",
				marker, v.Version, time.Unix(v.CreatedAt, 0).UTC().Format("2006-01-02 15:04:05"),
				v.Omega, v.Delta, v.NumRules, v.Source)
			if v.Note != "" {
				fmt.Printf("  (%s)", v.Note)
			}
			fmt.Println()
		}
	}
	return nil
}

// storeAudit prints the audit trail, oldest first.
func storeAudit(st *modelstore.Store, limit int) error {
	events, err := st.Audit(limit)
	if err != nil {
		return err
	}
	for _, e := range events {
		fmt.Printf("%6d  %s  %-8s %s", e.Seq,
			time.Unix(e.Time, 0).UTC().Format("2006-01-02 15:04:05"), e.Event, e.Model)
		if e.Version != 0 {
			fmt.Printf(" v%d", e.Version)
		}
		if e.Detail != "" {
			fmt.Printf("  %s", e.Detail)
		}
		fmt.Println()
	}
	return nil
}

func storePublish(st *modelstore.Store, model, in, note string) error {
	if model == "" || in == "" {
		return fmt.Errorf("store publish: -model and -in are required")
	}
	doc, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	v, err := st.Publish(model, doc, "cli", note)
	if err != nil {
		return err
	}
	fmt.Printf("published %s v%d (omega=%d delta=%d rules=%d); promote with:\n", model, v.Version, v.Omega, v.Delta, v.NumRules)
	fmt.Printf("  cdt store promote -dir %s -model %s -version %d\n", st.Dir(), model, v.Version)
	return nil
}

func storePromote(st *modelstore.Store, model string, version int) error {
	if model == "" || version == 0 {
		return fmt.Errorf("store promote: -model and -version are required")
	}
	if err := st.Promote(model, version); err != nil {
		return err
	}
	fmt.Printf("promoted %s v%d to current\n", model, version)
	return nil
}

func storeRollback(st *modelstore.Store, model string) error {
	if model == "" {
		return fmt.Errorf("store rollback: -model is required")
	}
	v, err := st.Rollback(model)
	if err != nil {
		return err
	}
	fmt.Printf("rolled back %s to v%d\n", model, v)
	return nil
}

// storeGC sweeps blobs no manifest version references (the sweep itself
// lands in the audit log).
func storeGC(st *modelstore.Store) error {
	removed, err := st.GC()
	if err != nil {
		return err
	}
	for _, digest := range removed {
		fmt.Printf("removed %s\n", digest)
	}
	fmt.Printf("%d unreferenced blob(s) removed\n", len(removed))
	return nil
}

// storeDiff renders the rule-level difference between two versions of
// one model: rules only in v1 (removed), only in v2 (added), and
// removed/added pairs that share a leading condition (changed — the
// same rule family with shifted conditions).
func storeDiff(st *modelstore.Store, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("store diff: usage: cdt store diff -dir store <name> <v1> <v2>")
	}
	name := args[0]
	v1, err1 := strconv.Atoi(args[1])
	v2, err2 := strconv.Atoi(args[2])
	if err1 != nil || err2 != nil {
		return fmt.Errorf("store diff: versions must be integers, got %q %q", args[1], args[2])
	}
	a, _, err := st.LoadVersion(name, v1)
	if err != nil {
		return err
	}
	b, _, err := st.LoadVersion(name, v2)
	if err != nil {
		return err
	}
	removed, added, changed := diffRules(ruleLines(a), ruleLines(b))
	fmt.Printf("%s: v%d (%d rules) -> v%d (%d rules)\n", name, v1, a.NumRules(), v2, b.NumRules())
	if fa, fb := fusionDesc(a), fusionDesc(b); fa != fb {
		fmt.Printf("fusion: %s -> %s\n", fa, fb)
	}
	if len(removed)+len(added)+len(changed) == 0 {
		fmt.Println("no rule changes")
		return nil
	}
	for _, pair := range changed {
		fmt.Printf("~ %s\n  -> %s\n", pair[0], pair[1])
	}
	for _, r := range removed {
		fmt.Printf("- %s\n", r)
	}
	for _, r := range added {
		fmt.Printf("+ %s\n", r)
	}
	return nil
}

// fusionDesc renders an artifact's fusion policy for the diff header,
// including learned per-scale weights when present ("none" for plain
// models, so a kind change between versions reads clearly).
func fusionDesc(art cdt.Artifact) string {
	info := art.Info()
	if info.Fusion == "" {
		return "none"
	}
	if len(info.FusionWeights) == 0 {
		return info.Fusion
	}
	parts := make([]string, len(info.FusionWeights))
	for i, w := range info.FusionWeights {
		parts[i] = strconv.FormatFloat(w, 'g', 6, 64)
	}
	return fmt.Sprintf("%s weights=[%s]", info.Fusion, strings.Join(parts, " "))
}

// ruleLines flattens an artifact's RuleText into one rule body per
// entry. Pyramid scale headers become a "scale xN: " prefix so rules at
// different resolutions never collide; the "Rn:" numbering is dropped
// (rule order is not identity across retrains).
func ruleLines(art cdt.Artifact) []string {
	var out []string
	prefix := ""
	for _, line := range strings.Split(art.RuleText(), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "scale x") && strings.HasSuffix(trimmed, ":") {
			prefix = trimmed[:strings.Index(trimmed, " (")] + ": "
			continue
		}
		if i := strings.Index(trimmed, ": "); i > 0 && strings.HasPrefix(trimmed, "R") {
			trimmed = trimmed[i+2:]
		}
		out = append(out, prefix+trimmed)
	}
	return out
}

// diffRules partitions two rule sets into removed, added, and changed.
// A removed and an added rule sharing their first condition (the text up
// to the first " AND ") pair up as one changed rule.
func diffRules(v1, v2 []string) (removed, added []string, changed [][2]string) {
	in1 := make(map[string]bool, len(v1))
	for _, r := range v1 {
		in1[r] = true
	}
	in2 := make(map[string]bool, len(v2))
	for _, r := range v2 {
		in2[r] = true
	}
	for _, r := range v1 {
		if !in2[r] {
			removed = append(removed, r)
		}
	}
	for _, r := range v2 {
		if !in1[r] {
			added = append(added, r)
		}
	}
	sort.Strings(removed)
	sort.Strings(added)
	// Pair up removed/added rules that open with the same condition.
	byHead := make(map[string]int)
	for i, r := range removed {
		byHead[ruleHead(r)] = i
	}
	usedRemoved := make(map[int]bool)
	var keptAdded []string
	for _, r := range added {
		if i, ok := byHead[ruleHead(r)]; ok && !usedRemoved[i] && removed[i] != "" {
			changed = append(changed, [2]string{removed[i], r})
			usedRemoved[i] = true
			continue
		}
		keptAdded = append(keptAdded, r)
	}
	var keptRemoved []string
	for i, r := range removed {
		if !usedRemoved[i] {
			keptRemoved = append(keptRemoved, r)
		}
	}
	return keptRemoved, keptAdded, changed
}

// ruleHead returns a rule body's first condition ("IF [PP[L,H]]").
func ruleHead(rule string) string {
	if i := strings.Index(rule, " AND "); i > 0 {
		return rule[:i]
	}
	return rule
}
