package pattern

import "testing"

// FuzzParseLabel exercises the label parser with arbitrary strings: it
// must never panic, and anything it accepts must round-trip.
func FuzzParseLabel(f *testing.F) {
	cfg := NewConfig(3)
	for _, l := range cfg.Alphabet() {
		f.Add(cfg.LabelName(l))
	}
	f.Add("")
	f.Add("PP[")
	f.Add("PP[L,H]")
	f.Add("XX[P99,N1]")
	f.Add("PN[-H,-L]extra")
	f.Fuzz(func(t *testing.T, s string) {
		l, err := cfg.ParseLabel(s)
		if err != nil {
			return
		}
		// Accepted labels must render back to something parseable to the
		// same value.
		round, err := cfg.ParseLabel(cfg.LabelName(l))
		if err != nil {
			t.Fatalf("rendered label %q failed to parse: %v", cfg.LabelName(l), err)
		}
		if round != l {
			t.Fatalf("round trip changed %v to %v", l, round)
		}
	})
}

// FuzzClassify checks the interval classifier never panics and stays in
// range for arbitrary inputs.
func FuzzClassify(f *testing.F) {
	f.Add(0.0, uint8(2))
	f.Add(0.5, uint8(1))
	f.Add(-1.5, uint8(21))
	f.Fuzz(func(t *testing.T, diff float64, deltaRaw uint8) {
		delta := int(deltaRaw%21) + 1
		cfg := NewConfig(delta)
		iv := cfg.Classify(diff)
		if iv < Interval(-delta) || iv > Interval(delta) {
			t.Fatalf("Classify(%v) with delta %d = %d out of range", diff, delta, iv)
		}
	})
}
