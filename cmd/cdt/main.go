// Command cdt trains Composition-based Decision Trees on CSV time-series
// and detects anomalies with the learned rules.
//
// Usage:
//
//	cdt label    -in data.csv -delta 2
//	cdt train    -in labeled.csv -omega 5 -delta 2 [-explain] [-save model.json]
//	cdt train    -in labeled.csv -scales 1,4,16 [-agg max] [-fusion any] [-save pyramid.json]
//	cdt train    -in multi.csv -scales 1,4,16 -dim 1 -fusion weighted [-save pyramid.json]
//	cdt detect   -train labeled.csv -in fresh.csv -omega 5 -delta 2
//	cdt detect   -model model.json -in fresh.csv [-dim 1]
//	cdt optimize -in labeled.csv [-objective fh] [-iters 25]
//	cdt audit    -train labeled.csv -eval other.csv -omega 5 -delta 2
//	cdt plot     -in data.csv [-detect -train labeled.csv]
//	cdt stream   -model model.json -in feed.csv -min 0 -max 100 [-dim 1]
//	cdt store    <versions|audit|publish|promote|rollback|gc|diff> -dir store [flags]
//
// Passing -scales to train fits a resolution pyramid — one rule model
// per downsample factor, fused at detection time — whose detections
// carry an anomaly-type tag (point, contextual, collective). Saved
// pyramid artifacts load anywhere a plain model does (detect, stream,
// the store, cdtserve). The fusion policy is pluggable: "any",
// "majority", and "all" are fixed votes; "k-of-n" and "weighted" are
// trainable — without an explicit -k or -threshold, train learns the
// quorum (best point-level F1) or the per-scale weights and threshold
// (deterministic logistic fit) from the training labels.
//
// Passing -dim additionally trains the pyramid over one column of a
// multivariate CSV; detect and stream then read multivariate input and
// score that column (a saved pyramid remembers its dimension).
//
// Univariate CSV files carry one "value[,is_anomaly]" row per point
// after an optional header (the format written by cmd/datagen and
// datasets.WriteCSV). Multivariate CSVs require a header naming each
// column, one float per column per row, optionally ending in an
// "is_anomaly" label column.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	cdt "cdt"
	"cdt/internal/ascii"
	"cdt/internal/datasets"
	"cdt/internal/pattern"
	"cdt/internal/timeseries"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: cdt <label|train|detect|optimize|audit|stream|plot|store> [flags]")
	}
	switch args[0] {
	case "label":
		return runLabel(args[1:])
	case "train":
		return runTrain(args[1:])
	case "detect":
		return runDetect(args[1:])
	case "optimize":
		return runOptimize(args[1:])
	case "audit":
		return runAudit(args[1:])
	case "stream":
		return runStream(args[1:])
	case "plot":
		return runPlot(args[1:])
	case "store":
		return runStore(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want label, train, detect, optimize, audit, stream, plot, or store)", args[0])
	}
}

// loadSeries reads a CSV series from disk.
func loadSeries(path string) (*timeseries.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return datasets.ReadCSV(f, path)
}

// loadMultiSeries reads a multivariate CSV (header required, optional
// trailing is_anomaly column) as one feed.
func loadMultiSeries(path string) (*cdt.MultiSeries, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dims, labels, err := datasets.ReadMultiCSV(f, path)
	if err != nil {
		return nil, err
	}
	return &cdt.MultiSeries{Name: path, Dims: dims, Anomalies: labels}, nil
}

func runLabel(args []string) error {
	fs := flag.NewFlagSet("label", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV (value[,is_anomaly] rows)")
	delta := fs.Int("delta", 2, "magnitude granularity δ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("label: -in is required")
	}
	s, err := loadSeries(*in)
	if err != nil {
		return err
	}
	if _, err := s.Normalize(); err != nil {
		return err
	}
	cfg := pattern.NewConfig(*delta)
	labels, err := cfg.LabelSeries(s.Values)
	if err != nil {
		return err
	}
	for i, l := range labels {
		marker := ""
		if s.Anomalies != nil && s.Anomalies[i+1] {
			marker = "  <- anomaly"
		}
		fmt.Printf("%6d  %-14s%s\n", i+1, cfg.LabelName(l), marker)
	}
	return nil
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	in := fs.String("in", "", "labeled training CSV")
	omega := fs.Int("omega", 5, "window size ω")
	delta := fs.Int("delta", 2, "magnitude granularity δ")
	explain := fs.Bool("explain", false, "render rule sketches and readings")
	showTree := fs.Bool("tree", false, "render the decision tree")
	savePath := fs.String("save", "", "write the trained model as JSON to this path")
	scales := fs.String("scales", "", `comma-separated downsample factors for a resolution pyramid (e.g. "1,4,16"; must start with 1)`)
	agg := fs.String("agg", "mean", `pyramid downsample aggregator: "mean" or "max"`)
	fusion := fs.String("fusion", "any", `pyramid fusion policy: "any", "majority", "all", "k-of-n", or "weighted"`)
	dim := fs.Int("dim", -1, "0-based column of a multivariate CSV to train the pyramid over (requires -scales)")
	quorum := fs.Int("k", 0, `firing-scale quorum for -fusion k-of-n (0 learns the best quorum from the training labels)`)
	threshold := fs.Float64("threshold", 0, `firing weight sum for -fusion weighted (0 learns weights and threshold from the training labels)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("train: -in is required")
	}
	if *dim >= 0 && *scales == "" {
		return fmt.Errorf("train: -dim requires -scales (dimension selection is a pyramid feature)")
	}
	var s *cdt.Series
	var ms *cdt.MultiSeries
	var err error
	if *dim >= 0 {
		ms, err = loadMultiSeries(*in)
		if err != nil {
			return err
		}
		if ms.Anomalies == nil {
			return fmt.Errorf("train: %s has no is_anomaly column", *in)
		}
		if *dim >= len(ms.Dims) {
			return fmt.Errorf("train: -dim %d, but %s has %d value columns", *dim, *in, len(ms.Dims))
		}
	} else {
		s, err = loadSeries(*in)
		if err != nil {
			return err
		}
		if !s.Labeled() {
			return fmt.Errorf("train: %s has no is_anomaly column", *in)
		}
	}
	if *scales != "" {
		return trainPyramid(pyramidTrainArgs{
			s: s, ms: ms,
			omega: *omega, delta: *delta, dim: *dim,
			scales: *scales, agg: *agg, fusion: *fusion,
			k: *quorum, threshold: *threshold,
			explain: *explain, savePath: *savePath,
		})
	}
	model, err := cdt.Fit([]*cdt.Series{s}, cdt.Options{Omega: *omega, Delta: *delta})
	if err != nil {
		return err
	}
	rep, err := model.Evaluate([]*cdt.Series{s})
	if err != nil {
		return err
	}
	fmt.Printf("trained CDT: omega=%d delta=%d rules=%d\n", *omega, *delta, model.NumRules())
	fmt.Printf("training fit: F1=%.3f Q=%.3f F(h)=%.3f\n\n", rep.F1, rep.Q, rep.FH)
	fmt.Print(model.RuleText())
	if *explain {
		fmt.Println()
		fmt.Print(model.Explain())
	}
	if *showTree {
		fmt.Println()
		fmt.Print(model.TreeText())
	}
	if *savePath != "" {
		return saveArtifact(model, *savePath)
	}
	return nil
}

// saveArtifact writes a trained artifact (plain model or pyramid) as
// JSON to path.
func saveArtifact(art cdt.Artifact, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := art.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", path)
	return nil
}

// parseScales parses the -scales flag ("1,4,16") into pyramid factors.
func parseScales(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		f, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("train: -scales: bad factor %q", part)
		}
		out = append(out, f)
	}
	return out, nil
}

// pyramidTrainArgs carries `cdt train -scales ...` inputs: exactly one
// of s (univariate) or ms (multivariate, -dim) is set.
type pyramidTrainArgs struct {
	s            *cdt.Series
	ms           *cdt.MultiSeries
	omega, delta int
	dim          int
	scales       string
	agg          string
	fusion       string
	k            int
	threshold    float64
	explain      bool
	savePath     string
}

// trainPyramid handles `cdt train -scales ...`: fit one rule model per
// downsample factor, learn any trainable fusion parameters from the
// labels, and report the fused result.
func trainPyramid(a pyramidTrainArgs) error {
	factors, err := parseScales(a.scales)
	if err != nil {
		return err
	}
	policy, err := cdt.ParseFusionPolicy(a.fusion)
	if err != nil {
		return fmt.Errorf("train: -fusion: %w", err)
	}
	// Trainable policies without explicit parameters start from
	// placeholders that pass config validation; TrainFusion overwrites
	// them with the learned fit below.
	fuse := cdt.Fusion{Policy: policy}
	learn := false
	switch policy {
	case cdt.FuseKOfN:
		if a.k > 0 {
			fuse.K = a.k
		} else {
			fuse.K = 1
			learn = true
		}
	case cdt.FuseWeighted:
		if a.threshold > 0 {
			fuse.Threshold = a.threshold
		} else {
			fuse.Threshold = 1
			learn = true
		}
	}
	cfg := cdt.PyramidConfig{Factors: factors, Aggregator: a.agg, Fusion: fuse}
	opts := cdt.Options{Omega: a.omega, Delta: a.delta}
	var pm *cdt.PyramidModel
	if a.ms != nil {
		cfg.Dim = a.dim
		pm, err = cdt.FitPyramidMulti([]*cdt.MultiSeries{a.ms}, opts, cfg)
	} else {
		pm, err = cdt.FitPyramid([]*cdt.Series{a.s}, opts, cfg)
	}
	if err != nil {
		return err
	}
	if learn {
		if a.ms != nil {
			err = pm.TrainFusionMulti([]*cdt.MultiSeries{a.ms})
		} else {
			err = pm.TrainFusion([]*cdt.Series{a.s})
		}
		if err != nil {
			return err
		}
	}
	var rep cdt.Report
	if a.ms != nil {
		rep, err = pm.EvaluateMulti([]*cdt.MultiSeries{a.ms})
	} else {
		rep, err = pm.Evaluate([]*cdt.Series{a.s})
	}
	if err != nil {
		return err
	}
	fmt.Printf("trained CDT pyramid: omega=%d delta=%d scales=%s fusion=%s rules=%d\n",
		a.omega, a.delta, a.scales, pm.Config.Fusion, pm.NumRules())
	if a.ms != nil {
		fmt.Printf("scoring dimension %d (%q) of %d\n", a.dim, a.ms.Dims[a.dim].Name, len(a.ms.Dims))
	}
	if learn {
		switch policy {
		case cdt.FuseWeighted:
			fmt.Printf("learned fusion: threshold=%g weights=%v\n",
				pm.Config.Fusion.Threshold, pm.Config.Fusion.Weights)
		case cdt.FuseKOfN:
			fmt.Printf("learned fusion: quorum %d of %d scales\n",
				pm.Config.Fusion.K, pm.NumScales())
		}
	}
	// Pyramid evaluation is point-level; recall is the meaningful fit
	// number (window flags over-cover single points by construction).
	fmt.Printf("training fit: precision=%.3f recall=%.3f F1=%.3f\n\n",
		rep.Confusion.Precision(), rep.Confusion.Recall(), rep.F1)
	fmt.Print(pm.RuleText())
	if a.explain {
		fmt.Println()
		fmt.Print(pm.Explain())
	}
	if a.savePath != "" {
		return saveArtifact(pm, a.savePath)
	}
	return nil
}

func runDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	trainPath := fs.String("train", "", "labeled training CSV (alternative to -model)")
	modelPath := fs.String("model", "", "saved model JSON (alternative to -train)")
	in := fs.String("in", "", "series to scan")
	omega := fs.Int("omega", 5, "window size ω (with -train)")
	delta := fs.Int("delta", 2, "magnitude granularity δ (with -train)")
	dim := fs.Int("dim", -1, "treat -in as a multivariate CSV and score this 0-based column (must match a pyramid model's trained dimension)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*trainPath == "") == (*modelPath == "") {
		return fmt.Errorf("detect: exactly one of -train or -model is required")
	}
	if *in == "" {
		return fmt.Errorf("detect: -in is required")
	}
	var model cdt.Artifact
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		model, err = cdt.LoadAny(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		train, err := loadSeries(*trainPath)
		if err != nil {
			return err
		}
		model, err = cdt.Fit([]*cdt.Series{train}, cdt.Options{Omega: *omega, Delta: *delta})
		if err != nil {
			return err
		}
	}
	// A pyramid trained over one dimension of a multivariate feed needs
	// the whole feed (and remembers its dimension); otherwise -dim just
	// selects a column to score univariately.
	if pm, ok := model.(*cdt.PyramidModel); ok && (*dim >= 0 || pm.Config.Dim > 0) {
		if *dim >= 0 && *dim != pm.Config.Dim {
			return fmt.Errorf("detect: -dim %d, but the pyramid was trained over dimension %d", *dim, pm.Config.Dim)
		}
		return detectMulti(pm, *in)
	}
	var target *cdt.Series
	if *dim >= 0 {
		ms, err := loadMultiSeries(*in)
		if err != nil {
			return err
		}
		if *dim >= len(ms.Dims) {
			return fmt.Errorf("detect: -dim %d, but %s has %d value columns", *dim, *in, len(ms.Dims))
		}
		target = ms.Dims[*dim]
	} else {
		var err error
		target, err = loadSeries(*in)
		if err != nil {
			return err
		}
	}
	// Every artifact kind flags points; pyramids additionally classify
	// each fused detection, reported below the per-point listing.
	pf, ok := model.(interface {
		PointFlags(*cdt.Series) ([]bool, error)
	})
	if !ok {
		return fmt.Errorf("detect: %q artifacts cannot flag points", model.Info().Kind)
	}
	flags, err := pf.PointFlags(target)
	if err != nil {
		return err
	}
	n := 0
	for i, flagged := range flags {
		if flagged {
			fmt.Printf("anomaly at point %d (value %g)\n", i, target.Values[i])
			n++
		}
	}
	fmt.Printf("%d/%d points flagged\n", n, len(flags))
	if pm, ok := model.(*cdt.PyramidModel); ok {
		dets, err := pm.DetectPyramid(target)
		if err != nil {
			return err
		}
		printPyramidDetections(dets)
	}
	return nil
}

// detectMulti scans a multivariate CSV with a pyramid, scoring the
// model's configured dimension.
func detectMulti(pm *cdt.PyramidModel, path string) error {
	ms, err := loadMultiSeries(path)
	if err != nil {
		return err
	}
	if pm.Config.Dim >= len(ms.Dims) {
		return fmt.Errorf("detect: pyramid scores dimension %d, but %s has %d value columns", pm.Config.Dim, path, len(ms.Dims))
	}
	scored := ms.Dims[pm.Config.Dim]
	flags, err := pm.PointFlagsMulti(ms)
	if err != nil {
		return err
	}
	n := 0
	for i, flagged := range flags {
		if flagged {
			fmt.Printf("anomaly at point %d (value %g)\n", i, scored.Values[i])
			n++
		}
	}
	fmt.Printf("%d/%d points flagged on dimension %d (%q)\n", n, len(flags), pm.Config.Dim, scored.Name)
	dets, err := pm.DetectPyramidMulti(ms)
	if err != nil {
		return err
	}
	printPyramidDetections(dets)
	return nil
}

// printPyramidDetections lists fused pyramid detections with their
// anomaly type and firing scales.
func printPyramidDetections(dets []cdt.WindowDetection) {
	for _, d := range dets {
		fmt.Printf("%s anomaly spanning points %d..%d (fired at %s)\n",
			d.Type, d.Start, d.End, scaleList(d.Scales))
	}
}

// scaleList renders the firing scales of a fused detection ("x1, x4").
func scaleList(scales []cdt.ScaleDetection) string {
	seen := make(map[int]bool)
	var parts []string
	for _, sd := range scales {
		if !seen[sd.Factor] {
			seen[sd.Factor] = true
			parts = append(parts, fmt.Sprintf("x%d", sd.Factor))
		}
	}
	return strings.Join(parts, ", ")
}

func runOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	in := fs.String("in", "", "labeled CSV (split 60/20/20 internally)")
	objective := fs.String("objective", "fh", `objective: "f1" or "fh"`)
	iters := fs.Int("iters", 25, "surrogate-guided evaluations")
	init := fs.Int("init", 5, "random initial evaluations")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("optimize: -in is required")
	}
	var obj cdt.Objective
	switch *objective {
	case "f1":
		obj = cdt.ObjectiveF1
	case "fh":
		obj = cdt.ObjectiveFH
	default:
		return fmt.Errorf("optimize: unknown objective %q", *objective)
	}
	s, err := loadSeries(*in)
	if err != nil {
		return err
	}
	if !s.Labeled() {
		return fmt.Errorf("optimize: %s has no is_anomaly column", *in)
	}
	if _, err := s.Normalize(); err != nil {
		return err
	}
	split, err := timeseries.ChronologicalSplit(s, 0.6, 0.2, 0.2)
	if err != nil {
		return err
	}
	res, err := cdt.Optimize([]*cdt.Series{split.Train}, []*cdt.Series{split.Validation}, obj, cdt.OptimizeOptions{
		InitPoints: *init,
		Iterations: *iters,
		Seed:       *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("best: omega=%d delta=%d (validation %s=%.3f after %d evaluations)\n",
		res.Best.Omega, res.Best.Delta, obj, res.BestScore, res.Evaluations)
	model, err := cdt.Fit([]*cdt.Series{split.Train, split.Validation}, res.Best)
	if err != nil {
		return err
	}
	rep, err := model.Evaluate([]*cdt.Series{split.Test})
	if err != nil {
		return err
	}
	fmt.Printf("test: F1=%.3f Q=%.3f F(h)=%.3f rules=%d\n", rep.F1, rep.Q, rep.FH, rep.NumRules)
	fmt.Print(model.RuleText())
	return nil
}

func runAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	trainPath := fs.String("train", "", "labeled training CSV")
	evalPath := fs.String("eval", "", "labeled evaluation CSV (defaults to the training file)")
	omega := fs.Int("omega", 5, "window size ω")
	delta := fs.Int("delta", 2, "magnitude granularity δ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trainPath == "" {
		return fmt.Errorf("audit: -train is required")
	}
	if *evalPath == "" {
		*evalPath = *trainPath
	}
	train, err := loadSeries(*trainPath)
	if err != nil {
		return err
	}
	eval, err := loadSeries(*evalPath)
	if err != nil {
		return err
	}
	if !eval.Labeled() {
		return fmt.Errorf("audit: %s has no is_anomaly column", *evalPath)
	}
	model, err := cdt.Fit([]*cdt.Series{train}, cdt.Options{Omega: *omega, Delta: *delta})
	if err != nil {
		return err
	}
	stats, err := model.Audit([]*cdt.Series{eval})
	if err != nil {
		return err
	}
	fmt.Printf("%-4s %-10s %-12s %-10s %-8s rule\n", "#", "support", "false-alarms", "precision", "I(Rs)")
	for _, st := range stats {
		fmt.Printf("R%-3d %-10d %-12d %-10.2f %-8.2f IF %s THEN anomaly\n",
			st.Index, st.Support, st.FalseAlarms, st.Precision(), st.Interpretability, st.Text)
	}
	return nil
}

func runStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	modelPath := fs.String("model", "", "saved model JSON")
	in := fs.String("in", "", "CSV feed to replay point-by-point")
	min := fs.Float64("min", 0, "expected minimum sensor value")
	max := fs.Float64("max", 0, "expected maximum sensor value")
	dim := fs.Int("dim", -1, "treat -in as a multivariate CSV and stream this 0-based column (must match a pyramid model's trained dimension)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *in == "" {
		return fmt.Errorf("stream: -model and -in are required")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := cdt.LoadAny(f)
	f.Close()
	if err != nil {
		return err
	}
	// Streaming is scalar by construction: a pyramid trained over one
	// dimension streams that column's readings (the dimension selection
	// happens at the feed boundary, not per push).
	column := *dim
	if pm, ok := model.(*cdt.PyramidModel); ok && pm.Config.Dim > 0 {
		if column >= 0 && column != pm.Config.Dim {
			return fmt.Errorf("stream: -dim %d, but the pyramid was trained over dimension %d", column, pm.Config.Dim)
		}
		column = pm.Config.Dim
	}
	var feed *cdt.Series
	if column >= 0 {
		ms, err := loadMultiSeries(*in)
		if err != nil {
			return err
		}
		if column >= len(ms.Dims) {
			return fmt.Errorf("stream: dimension %d, but %s has %d value columns", column, *in, len(ms.Dims))
		}
		feed = ms.Dims[column]
	} else {
		feed, err = loadSeries(*in)
		if err != nil {
			return err
		}
	}
	scale := cdt.Scale{Min: *min, Max: *max}
	if scale.Max <= scale.Min {
		// Derive the scale from the feed itself when not provided.
		lo, hi, err := feed.MinMax()
		if err != nil {
			return err
		}
		scale = cdt.Scale{Min: lo, Max: hi}
	}
	stream, err := model.OpenStream(scale)
	if err != nil {
		return err
	}
	alerts := 0
	for i, v := range feed.Values {
		for _, d := range stream.Push(v) {
			alerts++
			fmt.Printf("alert after point %d: window %d..%d", i, d.WindowStart, d.WindowEnd)
			if d.Scale > 1 {
				fmt.Printf(" scale=x%d", d.Scale)
			}
			if d.Type != "" {
				fmt.Printf(" type=%s", d.Type)
			}
			fmt.Println()
		}
	}
	fmt.Printf("%d alerts over %d points\n", alerts, feed.Len())
	return nil
}

func runPlot(args []string) error {
	fs := flag.NewFlagSet("plot", flag.ContinueOnError)
	in := fs.String("in", "", "CSV series to chart")
	trainPath := fs.String("train", "", "labeled training CSV: train a model and overlay detections")
	omega := fs.Int("omega", 5, "window size ω (with -train)")
	delta := fs.Int("delta", 2, "magnitude granularity δ (with -train)")
	width := fs.Int("width", 72, "chart width in columns")
	height := fs.Int("height", 12, "chart height in rows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("plot: -in is required")
	}
	s, err := loadSeries(*in)
	if err != nil {
		return err
	}
	var flags []bool
	switch {
	case *trainPath != "":
		train, err := loadSeries(*trainPath)
		if err != nil {
			return err
		}
		model, err := cdt.Fit([]*cdt.Series{train}, cdt.Options{Omega: *omega, Delta: *delta})
		if err != nil {
			return err
		}
		flags, err = model.PointFlags(s)
		if err != nil {
			return err
		}
	case s.Labeled():
		flags = s.Anomalies
	}
	fmt.Print(ascii.Plot(s.Values, flags, ascii.PlotOptions{Width: *width, Height: *height}))
	return nil
}
