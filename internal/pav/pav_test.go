package pav

import (
	"math"
	"testing"
)

func sine(n int, period float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.5 + 0.4*math.Sin(2*math.Pi*float64(i)/period)
	}
	return out
}

func TestSpikeGetsHighScore(t *testing.T) {
	values := sine(300, 30)
	values[150] = 1.0 // spike breaking the smooth pattern
	scores, err := Scores(values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	if best < 148 || best > 152 {
		t.Errorf("max score at %d, want near 150", best)
	}
	if scores[150] < 0.5 {
		t.Errorf("spike score %v too low", scores[150])
	}
}

func TestSmoothSeriesModestScores(t *testing.T) {
	values := sine(300, 30)
	scores, err := Scores(values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, s := range scores {
		mean += s
	}
	mean /= float64(len(scores))
	if mean > 0.8 {
		t.Errorf("mean score %v on smooth periodic data too high", mean)
	}
}

func TestScoresBounds(t *testing.T) {
	values := sine(100, 11)
	values[50] = 0
	scores, err := Scores(values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(values) {
		t.Fatalf("got %d scores for %d points", len(scores), len(values))
	}
	for i, s := range scores {
		if s < 0 || s > 1 {
			t.Errorf("score[%d] = %v out of [0,1]", i, s)
		}
	}
}

func TestScoresErrors(t *testing.T) {
	if _, err := Scores([]float64{1, 2}, Options{}); err == nil {
		t.Error("too-short series accepted")
	}
	if _, err := Scores(sine(50, 5), Options{Scales: []int{0}}); err == nil {
		t.Error("scale 0 accepted")
	}
}

func TestConstantSeriesAllCommon(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = 0.5
	}
	scores, err := Scores(values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if s != 0 {
			t.Errorf("score[%d] = %v on constant data, want 0", i, s)
		}
	}
}

func TestMultiScaleCatchesSlowAnomaly(t *testing.T) {
	// A level shift only visible after downsampling-level smoothing:
	// single-scale slopes stay small, coarse slopes jump.
	values := make([]float64, 200)
	for i := range values {
		values[i] = 0.3
		if i >= 100 {
			values[i] = 0.31 + 0.003*float64(i-100) // slow drift after the shift
		}
	}
	single, err := Scores(values, Options{Scales: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Scores(values, Options{Scales: []int{1, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if multi[100] < single[100] {
		t.Errorf("multi-scale score %v < single-scale %v at the change point", multi[100], single[100])
	}
}

func TestSlopeBin(t *testing.T) {
	if slopeBin(0, 8) != 0 {
		t.Error("zero slope should bin to 0")
	}
	if slopeBin(0.9, 8) <= 0 || slopeBin(-0.9, 8) >= 0 {
		t.Error("sign not preserved")
	}
	if slopeBin(5, 8) != 8 || slopeBin(-5, 8) != -8 {
		t.Error("clamping wrong")
	}
	// Larger magnitude → larger bin.
	if slopeBin(0.9, 8) <= slopeBin(0.1, 8) {
		t.Error("magnitude ordering wrong")
	}
}

func TestDownsampleHelper(t *testing.T) {
	got := downsample([]float64{1, 3, 5, 7, 9}, 2)
	want := []float64{2, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	same := []float64{1, 2}
	if &downsample(same, 1)[0] != &same[0] {
		t.Error("factor 1 should return the input")
	}
}

func TestWindowScoresAggregation(t *testing.T) {
	points := []float64{0, 0, 0.9, 0, 0, 0, 0.2, 0}
	scores := WindowScores(points, []int{0, 4}, 4)
	if scores[0] != 0.9 || scores[1] != 0.2 {
		t.Errorf("window scores = %v", scores)
	}
}
