package modelstore

// The audit log: one JSON object per line, append-only, recording every
// lifecycle transition a model goes through. The log is the store's
// narrative — "who promoted what when, and why was that candidate
// refused" — and the compliance artifact the paper's human-sign-off
// story implies. Nothing in this package rewrites or truncates it;
// sequence numbers are strictly increasing across process restarts
// (Open resumes from the last line).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Audit event types.
const (
	EventPublish  = "publish"  // a candidate entered the store
	EventPromote  = "promote"  // the current pointer moved forward
	EventRollback = "rollback" // the current pointer moved back
	EventRetrain  = "retrain"  // drift triggered a re-optimization
	EventRefuse   = "refuse"   // a candidate failed validation
	EventShadow   = "shadow"   // shadow evaluation started or stopped
	EventGC       = "gc"       // unreferenced blobs were swept
)

// Event is one audit-log record.
type Event struct {
	// Seq is the strictly increasing record number (1-based).
	Seq uint64 `json:"seq"`
	// Time is the record time (unix seconds).
	Time int64 `json:"time"`
	// Event is one of the Event* constants.
	Event string `json:"event"`
	// Model names the model the event concerns.
	Model string `json:"model"`
	// Version is the version the event concerns (0 when not applicable,
	// e.g. a refused candidate that never got a number).
	Version int `json:"version,omitempty"`
	// Detail carries event context: digests, replaced versions, refusal
	// reasons (including cdt.Load's field path), drift statistics.
	Detail string `json:"detail,omitempty"`
}

// Note appends a lifecycle event on behalf of a store client (the
// serving layer audits shadow starts/stops and drift-triggered retrains
// through here). Publish/Promote/Rollback append their own events.
//
// Note takes s.mu for the audit write.
func (s *Store) Note(event, model string, version int, detail string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendAuditLocked(Event{Event: event, Model: model, Version: version, Detail: detail})
}

// Audit returns the audit trail in append order. A limit > 0 returns
// only the most recent limit events.
func (s *Store) Audit(limit int) ([]Event, error) {
	// Serialize against writers so a read never sees a torn final line.
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.Open(s.auditPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	defer f.Close()
	var out []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("modelstore: corrupt audit line %q: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out, nil
}

// appendAuditLocked stamps and appends one event to the log. Callers
// must hold s.mu (it assigns the next sequence number).
func (s *Store) appendAuditLocked(e Event) error {
	e.Seq = s.seq + 1
	e.Time = time.Now().Unix()
	raw, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("modelstore: encoding audit event: %w", err)
	}
	f, err := os.OpenFile(s.auditPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("modelstore: appending audit log: %w", err)
	}
	s.seq = e.Seq
	return nil
}

// lastAuditSeq reads the final record's sequence number so a reopened
// store keeps the sequence strictly increasing.
func lastAuditSeq(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("modelstore: %w", err)
	}
	defer f.Close()
	var last uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			// A torn final line from a crash mid-append: keep the last
			// intact sequence and let the next append continue past it.
			continue
		}
		last = e.Seq
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("modelstore: %w", err)
	}
	return last, nil
}
