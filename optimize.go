package cdt

import (
	"fmt"
	"runtime"
	"time"

	"cdt/internal/bayesopt"
)

// Objective selects what hyper-parameter optimization maximizes (§4.1
// optimizes both and reports both columns of Table 2).
type Objective int

const (
	// ObjectiveF1 maximizes the validation F1 score alone.
	ObjectiveF1 Objective = iota
	// ObjectiveFH maximizes F(h) = F1 · Q(R), trading accuracy against
	// rule interpretability (Equation 5).
	ObjectiveFH
)

// String names the objective.
func (o Objective) String() string {
	if o == ObjectiveFH {
		return "F(h)"
	}
	return "F1"
}

// OptimizeOptions configures the Bayesian hyper-parameter search. The
// zero value reproduces §4.1: ω ∈ [3,31], δ ∈ [1,21].
type OptimizeOptions struct {
	// OmegaMin/OmegaMax bound ω (defaults 3 and 31).
	OmegaMin, OmegaMax int
	// DeltaMin/DeltaMax bound δ (defaults 1 and 21).
	DeltaMin, DeltaMax int
	// InitPoints and Iterations drive the optimizer (defaults 5 and 25).
	InitPoints, Iterations int
	// Seed makes the search reproducible.
	Seed int64
	// LengthScale is the GP kernel length scale in normalized
	// coordinates. The default 0.2 works well for the smooth ω×δ
	// landscapes here; set to a negative value to select the scale
	// automatically per refit by log marginal likelihood (less stable at
	// the small sample counts typical of hyper-parameter budgets).
	LengthScale float64
	// Parallelism bounds the worker pool that evaluates the optimizer's
	// random initial design concurrently (init-point candidates are
	// independent CDT trainings against the shared corpus cache; the
	// surrogate-guided iterations that follow are inherently sequential).
	// 0 uses GOMAXPROCS; negative forces sequential evaluation. Results
	// are identical at any setting — only wall-clock changes.
	Parallelism int
	// Base carries the non-optimized options (criterion, matching,
	// epsilon, ...); its Omega/Delta are ignored.
	Base Options
	// Trace, when non-nil, receives one OptimizeTrial per evaluated
	// configuration as the search runs — the optimizer-progress feed the
	// experiments harness prints and a long search can surface to
	// operators. Trials arrive in evaluation order (deterministic at any
	// Parallelism); memoized repeats of a configuration do not re-fire.
	// The callback runs on the optimizer goroutine: keep it cheap, and do
	// not call back into the search. Durations are observability payload
	// only — they never influence the search, which stays bit-identical
	// run to run.
	Trace func(OptimizeTrial)
}

// OptimizeTrial reports one hyper-parameter evaluation to
// OptimizeOptions.Trace.
type OptimizeTrial struct {
	// Evaluation is the 1-based index of this trial in evaluation order.
	Evaluation int
	// Omega and Delta are the evaluated configuration.
	Omega, Delta int
	// Score is the validation objective at (Omega, Delta).
	Score float64
	// Elapsed is the wall-clock cost of training and scoring the
	// configuration.
	Elapsed time.Duration
}

func (o OptimizeOptions) withDefaults() OptimizeOptions {
	if o.OmegaMin <= 0 {
		o.OmegaMin = 3
	}
	if o.OmegaMax <= 0 {
		o.OmegaMax = 31
	}
	if o.DeltaMin <= 0 {
		o.DeltaMin = 1
	}
	if o.DeltaMax <= 0 {
		o.DeltaMax = 21
	}
	return o
}

// OptimizeResult reports a hyper-parameter search.
type OptimizeResult struct {
	// Best holds the winning options (Base with the optimized Omega and
	// Delta filled in).
	Best Options
	// BestScore is the validation objective at Best.
	BestScore float64
	// Evaluations counts distinct (ω,δ) configurations trained.
	Evaluations int
	// History lists every evaluated configuration in order.
	History []OptimizeSample
}

// OptimizeSample is one evaluated configuration. Elapsed is the
// wall-clock cost of the evaluation (observability only; see
// OptimizeTrial).
type OptimizeSample struct {
	Omega, Delta int
	Score        float64
	Elapsed      time.Duration
}

// Optimize selects (ω, δ) by Bayesian optimization (§3.6): each candidate
// configuration trains on the training series and is scored on the
// validation series with the chosen objective; a Gaussian-process
// surrogate with expected improvement picks the next candidate.
// Configurations that fail to train (e.g. ω larger than a series allows)
// score zero rather than aborting the search.
//
// Optimize is a wrapper over OptimizeCorpus with corpora built for this
// call; callers running several searches over the same splits (two
// objectives, repeated budgets) should build the corpora once and call
// OptimizeCorpus so candidate evaluations share the pipeline cache across
// searches.
func Optimize(train, validation []*Series, obj Objective, opts OptimizeOptions) (OptimizeResult, error) {
	if len(train) == 0 || len(validation) == 0 {
		return OptimizeResult{}, fmt.Errorf("cdt: optimize needs training and validation series")
	}
	trainCorpus, err := NewCorpus(train)
	if err != nil {
		return OptimizeResult{}, err
	}
	valCorpus, err := NewCorpus(validation)
	if err != nil {
		return OptimizeResult{}, err
	}
	return OptimizeCorpus(trainCorpus, valCorpus, obj, opts)
}

// OptimizeCorpus runs the Bayesian hyper-parameter search against
// pre-built corpora. Every candidate (ω, δ) trains via train.Fit and is
// scored via Model.EvaluateCorpus, so candidates sharing a δ share one
// labeling, repeated (ω, δ) candidates (within a search via the
// optimizer's own memo, and across searches via the corpus) share their
// windows, and the random init points fan out over a bounded worker pool
// (OptimizeOptions.Parallelism).
func OptimizeCorpus(train, validation *Corpus, obj Objective, opts OptimizeOptions) (OptimizeResult, error) {
	opts = opts.withDefaults()
	if train == nil || validation == nil {
		return OptimizeResult{}, fmt.Errorf("cdt: optimize needs training and validation corpora")
	}
	if opts.OmegaMax < opts.OmegaMin || opts.DeltaMax < opts.DeltaMin {
		return OptimizeResult{}, fmt.Errorf("cdt: inverted hyper-parameter bounds")
	}
	space := bayesopt.Space{
		{Name: "omega", Min: opts.OmegaMin, Max: opts.OmegaMax},
		{Name: "delta", Min: opts.DeltaMin, Max: opts.DeltaMax},
	}
	objective := func(x []int) float64 {
		cfg := opts.Base
		cfg.Omega, cfg.Delta = x[0], x[1]
		model, err := train.Fit(cfg)
		if err != nil {
			return 0
		}
		rep, err := model.EvaluateCorpus(validation)
		if err != nil {
			return 0
		}
		if obj == ObjectiveFH {
			return rep.FH
		}
		return rep.F1
	}
	ls := opts.LengthScale
	switch {
	case ls == 0:
		ls = 0.2
	case ls < 0:
		ls = 0 // bayesopt interprets 0 as automatic selection
	}
	workers := opts.Parallelism
	switch {
	case workers == 0:
		workers = runtime.GOMAXPROCS(0)
	case workers < 0:
		workers = 1
	}
	var trace func(bayesopt.Sample)
	if opts.Trace != nil {
		n := 0
		trace = func(s bayesopt.Sample) {
			n++
			opts.Trace(OptimizeTrial{
				Evaluation: n,
				Omega:      s.X[0],
				Delta:      s.X[1],
				Score:      s.Y,
				Elapsed:    s.Elapsed,
			})
		}
	}
	res, err := bayesopt.Maximize(objective, space, bayesopt.Options{
		InitPoints:  opts.InitPoints,
		Iterations:  opts.Iterations,
		Seed:        opts.Seed,
		LengthScale: ls,
		Parallelism: workers,
		Trace:       trace,
	})
	if err != nil {
		return OptimizeResult{}, err
	}
	out := OptimizeResult{BestScore: res.BestValue, Evaluations: res.Evaluations}
	out.Best = opts.Base
	out.Best.Omega, out.Best.Delta = res.Best[0], res.Best[1]
	for _, s := range res.History {
		out.History = append(out.History, OptimizeSample{Omega: s.X[0], Delta: s.X[1], Score: s.Y, Elapsed: s.Elapsed})
	}
	return out, nil
}
