package cdt

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// spikySeries generates a smooth seasonal series with labeled spike
// anomalies at fixed positions.
func spikySeries(name string, n int, spikes []int, seed int64) *Series {
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, n)
	anoms := make([]bool, n)
	for i := range values {
		values[i] = 50 + 10*math.Sin(float64(i)/5) + rng.Float64()
	}
	for _, idx := range spikes {
		values[idx] = 200
		anoms[idx] = true
	}
	return NewLabeledSeries(name, values, anoms)
}

func TestFitAndEvaluatePerfectOnSeparableData(t *testing.T) {
	train := spikySeries("train", 400, []int{50, 120, 200, 310}, 1)
	model, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := model.Evaluate([]*Series{train})
	if err != nil {
		t.Fatal(err)
	}
	if rep.F1 < 0.99 {
		t.Errorf("training F1 = %v, want ~1", rep.F1)
	}
	if rep.NumRules == 0 {
		t.Error("no rules extracted")
	}
	if rep.Q <= 0 || rep.Q > 1 {
		t.Errorf("Q = %v out of (0,1]", rep.Q)
	}
	if math.Abs(rep.FH-rep.F1*rep.Q) > 1e-12 {
		t.Error("FH != F1*Q")
	}
}

func TestModelGeneralizesToHeldOutSeries(t *testing.T) {
	train := spikySeries("train", 500, []int{60, 150, 250, 380}, 2)
	test := spikySeries("test", 300, []int{80, 190}, 99)
	model, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := model.Evaluate([]*Series{test})
	if err != nil {
		t.Fatal(err)
	}
	if rep.F1 < 0.8 {
		t.Errorf("held-out F1 = %v, want >= 0.8", rep.F1)
	}
}

func TestFitMultipleSeries(t *testing.T) {
	a := spikySeries("a", 200, []int{50, 120}, 3)
	b := spikySeries("b", 200, []int{70}, 4)
	model, err := Fit([]*Series{a, b}, Options{Omega: 4, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := model.Evaluate([]*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if rep.F1 < 0.9 {
		t.Errorf("pooled F1 = %v", rep.F1)
	}
}

func TestFitValidation(t *testing.T) {
	s := spikySeries("s", 100, []int{50}, 5)
	if _, err := Fit(nil, Options{Omega: 5, Delta: 2}); err == nil {
		t.Error("no series accepted")
	}
	if _, err := Fit([]*Series{s}, Options{Omega: 0, Delta: 2}); err == nil {
		t.Error("omega 0 accepted")
	}
	if _, err := Fit([]*Series{s}, Options{Omega: 5, Delta: 0}); err == nil {
		t.Error("delta 0 accepted")
	}
	if _, err := Fit([]*Series{s}, Options{Omega: 5, Delta: 2, Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := Fit([]*Series{s}, Options{Omega: 500, Delta: 2}); err == nil {
		t.Error("oversized omega accepted")
	}
}

func TestPointFlagsCoverSpikes(t *testing.T) {
	train := spikySeries("train", 400, []int{50, 120, 200, 310}, 6)
	model, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	flags, err := model.PointFlags(train)
	if err != nil {
		t.Fatal(err)
	}
	if len(flags) != train.Len() {
		t.Fatalf("got %d flags for %d points", len(flags), train.Len())
	}
	for _, spike := range []int{50, 120, 200, 310} {
		if !flags[spike] {
			t.Errorf("spike at %d not flagged", spike)
		}
	}
}

func TestDetectWindowsOnUnlabeledSeries(t *testing.T) {
	train := spikySeries("train", 300, []int{60, 150}, 7)
	model, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	fresh := spikySeries("fresh", 200, []int{100}, 8)
	unlabeled := NewSeries("u", fresh.Values)
	windows, err := model.DetectWindows(unlabeled)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for _, w := range windows {
		if w {
			fired = true
		}
	}
	if !fired {
		t.Error("no detection on a series containing a spike")
	}
}

func TestRuleTextAndExplain(t *testing.T) {
	train := spikySeries("train", 300, []int{60, 150}, 9)
	model, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	text := model.RuleText()
	if !strings.Contains(text, "THEN anomaly") {
		t.Errorf("RuleText missing IF-THEN form:\n%s", text)
	}
	explained := model.Explain()
	if !strings.Contains(explained, "shape of") {
		t.Errorf("Explain missing sketches:\n%s", explained)
	}
	if !strings.Contains(model.TreeText(), "split on") {
		t.Error("TreeText missing structure")
	}
}

func TestTreeStats(t *testing.T) {
	train := spikySeries("train", 300, []int{60, 150}, 10)
	model, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := model.TreeStats()
	if st.Splits == 0 || st.AnomalyLeaves == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPredictWindowDirectly(t *testing.T) {
	train := spikySeries("train", 300, []int{60}, 11)
	model, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := ObservationsOf(train, model.Opts)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, o := range obs {
		if model.Predict(o.Labels) == model.Rule().Detect(o.Labels) {
			agree++
		}
	}
	if agree != len(obs) {
		t.Errorf("tree and rule disagree on %d/%d windows", len(obs)-agree, len(obs))
	}
}

func TestObservationsOfValidation(t *testing.T) {
	s := spikySeries("s", 100, []int{50}, 12)
	if _, err := ObservationsOf(s, Options{Omega: 0, Delta: 2}); err == nil {
		t.Error("invalid options accepted")
	}
	obs, err := ObservationsOf(s, Options{Omega: 3, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 100-2-3+1 {
		t.Errorf("got %d observations", len(obs))
	}
}

func TestEnsureNormalizedPassThrough(t *testing.T) {
	in := NewSeries("n", []float64{0, 0.5, 1})
	got, err := ensureNormalized(in)
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Error("in-range series should pass through unchanged")
	}
	out, err := ensureNormalized(NewSeries("m", []float64{-5, 5, 15}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Values[0] != 0 || out.Values[2] != 1 {
		t.Errorf("normalization wrong: %v", out.Values)
	}
	if _, err := ensureNormalized(NewSeries("e", nil)); err == nil {
		t.Error("empty series accepted")
	}
}

func TestOptimizeFindsWorkingConfiguration(t *testing.T) {
	train := spikySeries("train", 400, []int{50, 120, 200, 310}, 13)
	val := spikySeries("val", 300, []int{80, 190}, 14)
	res, err := Optimize([]*Series{train}, []*Series{val}, ObjectiveF1, OptimizeOptions{
		OmegaMax: 9, DeltaMax: 4, InitPoints: 4, Iterations: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore < 0.8 {
		t.Errorf("best validation F1 = %v", res.BestScore)
	}
	if res.Best.Omega < 3 || res.Best.Omega > 9 || res.Best.Delta < 1 || res.Best.Delta > 4 {
		t.Errorf("best config out of bounds: %+v", res.Best)
	}
	if res.Evaluations == 0 || len(res.History) != res.Evaluations {
		t.Errorf("history inconsistent: %d vs %d", len(res.History), res.Evaluations)
	}
}

func TestOptimizeFHPrefersInterpretableConfigs(t *testing.T) {
	train := spikySeries("train", 400, []int{50, 120, 200, 310}, 15)
	val := spikySeries("val", 300, []int{80, 190}, 16)
	res, err := Optimize([]*Series{train}, []*Series{val}, ObjectiveFH, OptimizeOptions{
		OmegaMax: 9, DeltaMax: 6, InitPoints: 4, Iterations: 10, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore <= 0 {
		t.Errorf("best F(h) = %v", res.BestScore)
	}
	// Table 2's observation: F(h) favors small δ.
	if res.Best.Delta > 4 {
		t.Logf("note: F(h) chose delta %d (paper expects small deltas)", res.Best.Delta)
	}
}

func TestOptimizeValidation(t *testing.T) {
	s := spikySeries("s", 100, []int{50}, 17)
	if _, err := Optimize(nil, []*Series{s}, ObjectiveF1, OptimizeOptions{}); err == nil {
		t.Error("missing train accepted")
	}
	if _, err := Optimize([]*Series{s}, nil, ObjectiveF1, OptimizeOptions{}); err == nil {
		t.Error("missing validation accepted")
	}
	if _, err := Optimize([]*Series{s}, []*Series{s}, ObjectiveF1, OptimizeOptions{OmegaMin: 10, OmegaMax: 5}); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestObjectiveString(t *testing.T) {
	if ObjectiveF1.String() != "F1" || ObjectiveFH.String() != "F(h)" {
		t.Error("objective names wrong")
	}
}

func TestEvaluateValidation(t *testing.T) {
	train := spikySeries("train", 200, []int{60}, 18)
	model, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Evaluate(nil); err == nil {
		t.Error("empty evaluation accepted")
	}
}

// multiMagnitudeSeries plants spikes of varying magnitude so exact
// magnitude rules cannot cover all of them.
func multiMagnitudeSeries(name string, n int, seed int64, spikes map[int]float64) *Series {
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, n)
	anoms := make([]bool, n)
	for i := range values {
		values[i] = 50 + 5*math.Sin(float64(i)/5) + rng.Float64()
	}
	for at, v := range spikes {
		values[at] = v
		anoms[at] = true
	}
	return NewLabeledSeries(name, values, anoms)
}

func TestGeneralizeImprovesTransfer(t *testing.T) {
	train := multiMagnitudeSeries("train", 400, 31, map[int]float64{
		60: 200, 150: 200, 250: 200, 340: 200,
	})
	reference := multiMagnitudeSeries("ref", 400, 32, map[int]float64{
		70: 200, 160: 150, 260: 120, 330: 180,
	})
	model, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 8})
	if err != nil {
		t.Fatal(err)
	}
	general, err := model.Generalize([]*Series{reference})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := ObservationsOf(reference, model.Opts)
	if err != nil {
		t.Fatal(err)
	}
	exactHits, generalHits := 0, 0
	for _, o := range obs {
		if model.Rule().Detect(o.Labels) {
			exactHits++
		}
		if general.Detect(o.Labels) {
			generalHits++
		}
	}
	if generalHits < exactHits {
		t.Errorf("generalization lost detections: %d -> %d", exactHits, generalHits)
	}
	if model.GeneralRuleText(general) == "" {
		t.Error("no text rendered")
	}
}

func TestPruneRedundantDropsOnly(t *testing.T) {
	train := spikySeries("train", 400, []int{50, 120, 200, 310}, 33)
	model, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := model.PruneRedundant([]*Series{train})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Count() > model.NumRules() {
		t.Error("pruning grew the rule set")
	}
	// Pruning against the training data itself must keep at least one
	// predicate (the training anomalies are detected by construction).
	if pruned.Count() == 0 {
		t.Error("pruning removed everything")
	}
	if _, err := model.PruneRedundant(nil); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := model.Generalize(nil); err == nil {
		t.Error("empty reference accepted by Generalize")
	}
}

func TestAuditPerRuleStatistics(t *testing.T) {
	train := spikySeries("train", 400, []int{50, 120, 200, 310}, 61)
	model, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := model.Audit([]*Series{train})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != model.NumRules() {
		t.Fatalf("got %d stats for %d rules", len(stats), model.NumRules())
	}
	totalSupport := 0
	for i, st := range stats {
		if st.Index != i+1 {
			t.Errorf("stat %d has index %d", i, st.Index)
		}
		if st.Text == "" {
			t.Error("empty rule text")
		}
		if st.Interpretability <= 0 || st.Interpretability > 1 {
			t.Errorf("rule %d interpretability %v", st.Index, st.Interpretability)
		}
		if p := st.Precision(); p < 0 || p > 1 {
			t.Errorf("rule %d precision %v", st.Index, p)
		}
		totalSupport += st.Support
	}
	// Total support equals the model's TP count on the same data.
	rep, err := model.Evaluate([]*Series{train})
	if err != nil {
		t.Fatal(err)
	}
	if totalSupport != rep.Confusion.TP {
		t.Errorf("supports sum %d != TP %d", totalSupport, rep.Confusion.TP)
	}
	if _, err := model.Audit(nil); err == nil {
		t.Error("empty audit accepted")
	}
}

func TestRuleStatPrecisionZeroWhenSilent(t *testing.T) {
	st := RuleStat{}
	if st.Precision() != 0 {
		t.Error("silent rule precision should be 0")
	}
}

func TestMaxDepthAndMinGainOptions(t *testing.T) {
	train := spikySeries("train", 400, []int{50, 120, 200, 310}, 71)
	shallow, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 2, MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := shallow.TreeStats(); st.MaxDepth > 1 {
		t.Errorf("depth %d exceeds facade cap", st.MaxDepth)
	}
	strict, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 2, MinGain: 0.49})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Fit([]*Series{train}, Options{Omega: 5, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if strict.TreeStats().Splits > loose.TreeStats().Splits {
		t.Error("MinGain did not restrict splitting")
	}
}
