package server

// End-to-end coverage for request tracing and per-rule attribution:
// traceparent honor/generate round-trips, the /debug/traces span-tree
// shape for a sampled batch detect, rule/scale attribution metrics on
// /metrics with bounded index labels, slow-request exemplars linking to
// traces, drift naming its top rule on /healthz, and shadow-worker log
// lines carrying the originating request ID.

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"testing"

	cdt "cdt"
	"cdt/internal/trace"
)

// getTraces fetches /debug/traces (optionally filtered to one trace)
// and decodes the span list.
func getTraces(tb testing.TB, base, traceID string) []trace.SpanData {
	tb.Helper()
	url := base + "/debug/traces"
	if traceID != "" {
		url += "?trace=" + traceID
	}
	var out tracesResponse
	if code := doJSON(tb, "GET", url, nil, &out); code != 200 {
		tb.Fatalf("debug/traces = %d", code)
	}
	return out.Spans
}

// TestTraceBatchDetectSpanTree samples one pyramid batch detect at rate
// 1 and checks the acceptance-shape trace: request → batch_pool →
// series → detect → scale_sweep/engine_sweep → fusion_decide, all under
// the trace ID the response's traceparent header advertises.
func TestTraceBatchDetectSpanTree(t *testing.T) {
	tr := trace.New(trace.Config{SampleRate: 1})
	s, ts, dir := newTestServer(t, Config{Tracer: tr})
	writePyramid(t, dir, "multi", trainPyramid(t))
	if _, err := s.Registry().Reload(); err != nil {
		t.Fatal(err)
	}

	req := batchRequest{Series: []seriesPayload{{
		Name:   "probe",
		Values: plateauSpiky("probe", 300, []int{120, 240}, 60, 24, 3).Values,
	}}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/models/multi/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("detect = %d", resp.StatusCode)
	}
	tp := resp.Header.Get("traceparent")
	traceID, _, sampled, ok := trace.ParseTraceparent(tp)
	if !ok || !sampled {
		t.Fatalf("response traceparent %q not a sampled traceparent", tp)
	}

	spans := getTraces(t, ts.URL, traceID)
	byName := map[string][]trace.SpanData{}
	for _, sd := range spans {
		if sd.TraceID != traceID {
			t.Fatalf("span %q has trace %s, filter asked for %s", sd.Name, sd.TraceID, traceID)
		}
		byName[sd.Name] = append(byName[sd.Name], sd)
	}
	for _, name := range []string{"request", "batch_pool", "series", "detect", "fusion_decide"} {
		if len(byName[name]) != 1 {
			t.Fatalf("want exactly one %q span, got %d (spans: %v)", name, len(byName[name]), names(spans))
		}
	}
	// Two pyramid scales: one sweep span and one engine sweep each.
	if len(byName["scale_sweep"]) != 2 || len(byName["engine_sweep"]) != 2 {
		t.Fatalf("want 2 scale_sweep + 2 engine_sweep spans, got %d + %d",
			len(byName["scale_sweep"]), len(byName["engine_sweep"]))
	}

	// Parent links stitch the tree together.
	parentOf := map[string]string{
		"batch_pool":    "request",
		"series":        "batch_pool",
		"detect":        "series",
		"scale_sweep":   "detect",
		"fusion_decide": "detect",
		"engine_sweep":  "scale_sweep",
	}
	spanIDs := map[string]map[string]bool{}
	for _, sd := range spans {
		if spanIDs[sd.Name] == nil {
			spanIDs[sd.Name] = map[string]bool{}
		}
		spanIDs[sd.Name][sd.SpanID] = true
	}
	for child, parent := range parentOf {
		for _, sd := range byName[child] {
			if !spanIDs[parent][sd.ParentID] {
				t.Errorf("%q span parent %s is not a %q span", child, sd.ParentID, parent)
			}
		}
	}
	if byName["request"][0].ParentID != "" {
		t.Errorf("request span has parent %q, want root", byName["request"][0].ParentID)
	}
	if got := byName["batch_pool"][0].Attrs["model"]; got != "multi" {
		t.Errorf("batch_pool model attr = %q", got)
	}
}

func names(spans []trace.SpanData) []string {
	out := make([]string, len(spans))
	for i, sd := range spans {
		out[i] = sd.Name
	}
	return out
}

// TestTraceparentPropagation checks the W3C header contract with head
// sampling off: a sampled inbound traceparent forces a trace that
// continues the upstream trace ID and parents the request span on the
// upstream span; an unsampled inbound header keeps the request
// untraced and un-headered.
func TestTraceparentPropagation(t *testing.T) {
	tr := trace.New(trace.Config{SampleRate: 0})
	_, ts, _ := newTestServer(t, Config{Tracer: tr})

	const upTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const upSpan = "00f067aa0ba902b7"
	req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+upTrace+"-"+upSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	traceID, _, sampled, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || !sampled || traceID != upTrace {
		t.Fatalf("response traceparent %q, want sampled continuation of %s",
			resp.Header.Get("traceparent"), upTrace)
	}
	spans := getTraces(t, ts.URL, upTrace)
	if len(spans) != 1 || spans[0].Name != "request" || spans[0].ParentID != upSpan {
		t.Fatalf("spans under upstream trace = %+v, want one request span parented on %s", spans, upSpan)
	}

	// flags 00: the upstream decided not to sample; honor it.
	req, err = http.NewRequest("GET", ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	const offTrace = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaab"
	req.Header.Set("traceparent", "00-"+offTrace+"-"+upSpan+"-00")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("traceparent"); got != "" {
		t.Fatalf("unsampled inbound produced response traceparent %q", got)
	}
	if spans := getTraces(t, ts.URL, offTrace); len(spans) != 0 {
		t.Fatalf("unsampled inbound recorded %d spans", len(spans))
	}
}

// TestRuleAttributionMetrics scores both artifact kinds and checks the
// exposition: rule_fired children keyed by stable bounded indices (r<i>
// for the plain model, x<factor>.r<i> for the pyramid), per-scale sweep
// latency histograms for the pyramid only, and no rendered rule text
// anywhere in a label.
func TestRuleAttributionMetrics(t *testing.T) {
	s, ts, dir := newTestServer(t, Config{})
	writePyramid(t, dir, "multi", trainPyramid(t))
	if _, err := s.Registry().Reload(); err != nil {
		t.Fatal(err)
	}

	for model, series := range map[string]*cdt.Series{
		"spikes": spiky("probe", 300, []int{60, 120, 240}, 3),
		"multi":  plateauSpiky("probe", 300, []int{120, 240}, 60, 24, 3),
	} {
		body, err := json.Marshal(batchRequest{Series: []seriesPayload{{Name: "probe", Values: series.Values}}})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/models/"+model+"/detect", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("detect %s = %d", model, resp.StatusCode)
		}
	}

	metrics := metricsText(t, ts)
	plainFired := regexp.MustCompile(`cdtserve_rule_fired_total\{model="spikes",rule="r\d+"\} [1-9]`)
	pyramidFired := regexp.MustCompile(`cdtserve_rule_fired_total\{model="multi",rule="x\d+\.r\d+"\} [1-9]`)
	if !plainFired.MatchString(metrics) {
		t.Error("no plain-model rule_fired child with a positive count on /metrics")
	}
	if !pyramidFired.MatchString(metrics) {
		t.Error("no pyramid rule_fired child with a positive count on /metrics")
	}
	for _, want := range []string{
		`cdtserve_scale_sweep_seconds_bucket{model="multi",scale="x1",`,
		`cdtserve_scale_sweep_seconds_bucket{model="multi",scale="x4",`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("missing %s on /metrics", want)
		}
	}
	if strings.Contains(metrics, `cdtserve_scale_sweep_seconds_bucket{model="spikes"`) {
		t.Error("plain model grew scale-sweep histograms")
	}
	// metriclabel's substance: every rule label is a bounded index, never
	// rendered predicate text.
	ruleLabel := regexp.MustCompile(`cdtserve_rule_fired_total\{model="[^"]*",rule="([^"]*)"\}`)
	validLabel := regexp.MustCompile(`^(r\d+|x\d+\.r\d+|other)$`)
	for _, m := range ruleLabel.FindAllStringSubmatch(metrics, -1) {
		if !validLabel.MatchString(m[1]) {
			t.Errorf("rule label %q is not a bounded index", m[1])
		}
	}
}

// TestSlowRequestExemplarCarriesTraceID checks the /debug/vars →
// /debug/traces pivot: with a zero threshold every request is an
// exemplar, and a sampled one records the trace ID an operator pastes
// into ?trace=.
func TestSlowRequestExemplarCarriesTraceID(t *testing.T) {
	tr := trace.New(trace.Config{SampleRate: 1})
	_, ts, _ := newTestServer(t, Config{Tracer: tr, SlowRequestThreshold: 1})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	traceID, _, _, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("no traceparent on response: %q", resp.Header.Get("traceparent"))
	}

	found := false
	for _, e := range slowRequests.snapshot() {
		if e.TraceID == traceID {
			found = true
			if e.Endpoint != "healthz" {
				t.Errorf("exemplar endpoint = %q", e.Endpoint)
			}
		}
	}
	if !found {
		t.Fatalf("no slow-request exemplar carries trace %s", traceID)
	}
	if spans := getTraces(t, ts.URL, traceID); len(spans) == 0 {
		t.Fatal("exemplar trace ID resolves to no spans")
	}
}

// TestDriftNamesTopRuleOnHealthz drives drift-tripping traffic and
// expects /healthz to name the rule behind the stale flag (the
// interpretable half of the drift signal) and the drift warn log to
// carry the tripping request's ID.
func TestDriftNamesTopRuleOnHealthz(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	_, ts, _ := newTestServer(t, Config{
		DriftWindow: 64,
		DriftBound:  0.02,
		AccessLog:   logger,
	})

	spikes := make([]int, 0, 30)
	for i := 10; i < 300; i += 10 {
		spikes = append(spikes, i)
	}
	body, err := json.Marshal(batchRequest{Series: []seriesPayload{{
		Name: "hot", Values: spiky("hot", 300, spikes, 3).Values,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/models/spikes/detect", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var health struct {
		Status     string            `json:"status"`
		StaleRules map[string]string `json:"stale_rules"`
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if health.Status != "degraded" {
		t.Fatalf("health status = %q, want degraded", health.Status)
	}
	rule, ok := health.StaleRules["spikes"]
	if !ok || !regexp.MustCompile(`^r\d+$`).MatchString(rule) {
		t.Fatalf("stale_rules = %v, want a bounded rule index for spikes", health.StaleRules)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "model drift detected") ||
		!strings.Contains(logs, "top_rule="+rule) ||
		!strings.Contains(logs, "request_id=") {
		t.Fatalf("drift warn log missing model/rule/request-id context:\n%s", logs)
	}
}

// TestShadowWorkerLogsRequestID enqueues a sample the candidate cannot
// score and checks the worker's warn line carries the request ID the
// sample arrived under — the fix for background work logging without
// request context.
func TestShadowWorkerLogsRequestID(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	tel := newServerMetrics()
	shadows := NewShadows(tel, 1, logger, nil)
	defer shadows.Close()

	sh := shadows.Start("spikes", 2, trainModel(t))
	shadows.enqueue(shadowJob{
		sh:        sh,
		values:    []float64{1, 2}, // shorter than ω: candidate scoring errors
		incRanges: [][2]int{{1, 5}},
		windows:   3,
		rid:       "rid-shadow-test",
	})
	shadows.drain()

	logs := logBuf.String()
	if !strings.Contains(logs, "shadow scoring error") ||
		!strings.Contains(logs, "request_id=rid-shadow-test") {
		t.Fatalf("shadow warn log missing request id:\n%s", logs)
	}
	if sh.incOnly.Load() != 1 {
		t.Fatalf("unscorable sample not counted as disagreement: incOnly=%d", sh.incOnly.Load())
	}
}
