package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusExpositionGolden pins the exact exposition format: the
// server's /metrics endpoint is a public contract with scrapers, so any
// change to HELP/TYPE lines, label rendering, bucket cumulation, or
// number formatting must show up as a diff here.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()

	reqs := r.CounterVec("test_requests_total", "Requests by endpoint and code class.", "endpoint", "code")
	reqs.With("detect", "2xx").Add(41)
	reqs.With("detect", "2xx").Inc()
	reqs.With("detect", "5xx").Inc()
	reqs.With("healthz", "2xx").Add(7)

	g := r.Gauge("test_in_flight", "In-flight requests.")
	g.Add(3)
	g.Add(-1)

	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	r.GaugeFunc("test_sessions_active", "Live sessions.", func() int64 { return 12 })
	r.CounterFunc("test_cache_hits_total", "Cache hits.", func() uint64 { return 99 })

	got := r.Render()
	want := strings.Join([]string{
		`# HELP test_cache_hits_total Cache hits.`,
		`# TYPE test_cache_hits_total counter`,
		`test_cache_hits_total 99`,
		`# HELP test_in_flight In-flight requests.`,
		`# TYPE test_in_flight gauge`,
		`test_in_flight 2`,
		`# HELP test_latency_seconds Request latency.`,
		`# TYPE test_latency_seconds histogram`,
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 3`,
		`test_latency_seconds_bucket{le="1"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_sum 5.605`,
		`test_latency_seconds_count 5`,
		`# HELP test_requests_total Requests by endpoint and code class.`,
		`# TYPE test_requests_total counter`,
		`test_requests_total{code="2xx",endpoint="detect"} 42`,
		`test_requests_total{code="5xx",endpoint="detect"} 1`,
		`test_requests_total{code="2xx",endpoint="healthz"} 7`,
		`# HELP test_sessions_active Live sessions.`,
		`# TYPE test_sessions_active gauge`,
		`test_sessions_active 12`,
	}, "\n") + "\n"
	if got != want {
		t.Errorf("exposition drifted.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketEdges pins the "le" upper-bound-inclusive semantics
// Prometheus requires: a value exactly on a bound lands in that bound's
// bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_seconds", "edges", []float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	out := r.Render()
	for _, want := range []string{
		`edge_seconds_bucket{le="1"} 1`,
		`edge_seconds_bucket{le="2"} 2`,
		`edge_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 3 || h.Sum() != 6 {
		t.Errorf("count=%d sum=%v, want 3 and 6", h.Count(), h.Sum())
	}
}

// TestVecResolvesSameChild verifies that With with equal label values
// returns the same underlying metric (the pre-resolution contract hot
// paths rely on).
func TestVecResolvesSameChild(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("vec_total", "vec", "a")
	if v.With("x") != v.With("x") {
		t.Error("With(x) returned distinct counters for equal labels")
	}
	if v.With("x") == v.With("y") {
		t.Error("With(x) and With(y) share a counter")
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("gvec", "per-model flag", "model")
	if v.With("a") != v.With("a") {
		t.Error("With(a) returned distinct gauges for equal labels")
	}
	if v.With("a") == v.With("b") {
		t.Error("With(a) and With(b) share a gauge")
	}
	v.With("a").Set(1)
	out := r.Render()
	for _, want := range []string{`gvec{model="a"} 1`, `gvec{model="b"} 0`} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The unlabeled Gauge and a GaugeVec child share a family without
	// colliding.
	r.Gauge("gvec2", "flag").Set(5)
	if got := r.GaugeVec("gvec2", "flag", "m").With("x"); got.Value() != 0 {
		t.Errorf("labeled child inherited unlabeled value %d", got.Value())
	}
}

// TestLabelEscaping covers the three escaped characters in label values.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "esc", "p").With("a\"b\\c\nd").Inc()
	out := r.Render()
	want := `esc_total{p="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped line %q missing from:\n%s", want, out)
	}
}

// TestKindMismatchPanics: re-registering a name as a different metric
// type is a programming error and must fail loudly.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_total", "first")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("dual_total", "second")
}

// TestConcurrentObserveAndScrape is the -race hammer over the lock-free
// hot path: writers pound counters, gauges, and histogram buckets while
// readers scrape continuously; afterwards the totals must balance
// exactly (atomic increments lose nothing).
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "hammer")
	g := r.Gauge("hammer_gauge", "hammer")
	h := r.Histogram("hammer_seconds", "hammer", DefBuckets)
	vec := r.CounterVec("hammer_vec_total", "hammer", "worker")

	const (
		writers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers run for the whole write phase; every render must stay
	// internally parseable and monotone in the counter.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				out := r.Render()
				if !strings.Contains(out, "hammer_total") {
					t.Error("scrape lost a family")
					return
				}
				if v := c.Value(); v < last {
					t.Errorf("counter went backwards: %d -> %d", last, v)
					return
				} else {
					last = v
				}
			}
		}()
	}
	var writerWg sync.WaitGroup
	for wkr := 0; wkr < writers; wkr++ {
		writerWg.Add(1)
		go func(wkr int) {
			defer writerWg.Done()
			child := vec.With("w")
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%7) * 0.003)
				child.Inc()
			}
		}(wkr)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()

	if got := c.Value(); got != writers*perG {
		t.Errorf("counter = %d, want %d", got, writers*perG)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != writers*perG {
		t.Errorf("histogram count = %d, want %d", got, writers*perG)
	}
	// Sum check: each writer contributes sum over i of (i%7)*0.003.
	var per float64
	for i := 0; i < perG; i++ {
		per += float64(i%7) * 0.003
	}
	if got, want := h.Sum(), per*writers; math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
	if got := vec.With("w").Value(); got != writers*perG {
		t.Errorf("vec counter = %d, want %d", got, writers*perG)
	}
}

func TestStopwatch(t *testing.T) {
	sw := NewStopwatch()
	time.Sleep(time.Millisecond)
	if sw.Elapsed() < time.Millisecond {
		t.Errorf("stopwatch measured %v after 1ms sleep", sw.Elapsed())
	}
}
