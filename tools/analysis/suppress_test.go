package analysis

// In-package tests for the suppression layer: directives are parsed,
// matched against findings in Run, diverted rather than dropped, and
// malformed directives surface as findings of their own.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseUnit type-checks one in-memory file as a Lib unit, mirroring the
// loader's check().
func parseUnit(t *testing.T, src string) (*token.FileSet, *Unit) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, &Unit{
		ImportPath: "p",
		Kind:       Lib,
		Files:      []*ast.File{f},
		Pkg:        pkg,
		Info:       info,
		reportable: map[string]bool{"p.go": true},
	}
}

// lineReporter reports one diagnostic per line that contains "BAD".
var lineReporter = &Analyzer{
	Name: "probe",
	Doc:  "flags lines containing BAD",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, "BAD") {
						p.Reportf(c.Pos(), "bad thing")
					}
				}
			}
		}
		return nil
	},
}

func TestRunSuppression(t *testing.T) {
	src := `package p

var a = 1 // BAD
var b = 2 //cdtlint:ignore probe reviewed: BAD but fine here

//cdtlint:ignore probe standalone covers next line
var c = 3 // BAD

//cdtlint:ignore otherprobe wrong analyzer name
var d = 4 // BAD
`
	fset, u := parseUnit(t, src)
	findings, suppressed, err := Run(fset, []*Unit{u}, []*Analyzer{lineReporter}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %d (%v), want 2 (lines of a and d)", len(findings), findings)
	}
	for _, f := range findings {
		if f.Position.Line != 3 && f.Position.Line != 10 {
			t.Errorf("unexpected surviving finding at line %d: %s", f.Position.Line, f.Message)
		}
	}
	if len(suppressed) != 2 {
		t.Fatalf("suppressed = %d (%v), want 2 (lines of b and c)", len(suppressed), suppressed)
	}
	wantReasons := map[int]string{4: "reviewed: BAD but fine here", 7: "standalone covers next line"}
	for _, s := range suppressed {
		if want, ok := wantReasons[s.Position.Line]; !ok || s.Reason != want {
			t.Errorf("suppressed at line %d reason %q, want %q", s.Position.Line, s.Reason, want)
		}
	}
}

func TestRunMalformedDirective(t *testing.T) {
	src := `package p

//cdtlint:ignore probe
var a = 1 // BAD
`
	fset, u := parseUnit(t, src)
	findings, suppressed, err := Run(fset, []*Unit{u}, []*Analyzer{lineReporter}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The reason-less directive suppresses nothing and is itself a
	// finding, so the run carries two findings and no suppressions.
	if len(suppressed) != 0 {
		t.Fatalf("suppressed = %v, want none (directive is malformed)", suppressed)
	}
	var sawDirective, sawProbe bool
	for _, f := range findings {
		switch f.Analyzer {
		case DirectiveAnalyzer:
			sawDirective = true
			if !strings.Contains(f.Message, "reason is mandatory") {
				t.Errorf("directive finding message = %q", f.Message)
			}
		case "probe":
			sawProbe = true
		}
	}
	if !sawDirective || !sawProbe {
		t.Fatalf("findings = %v, want both a cdtlint directive finding and the probe finding", findings)
	}
}

func TestCollectSuppressionsTargetLine(t *testing.T) {
	src := `package p

var x = map[string]int{
	"k": 1, //cdtlint:ignore probe trailing on literal element
}
`
	fset, u := parseUnit(t, src)
	sups, malformed := CollectSuppressions(fset, u.Files)
	if len(malformed) != 0 {
		t.Fatalf("malformed = %v", malformed)
	}
	if _, ok := sups.Match("probe", token.Position{Filename: "p.go", Line: 4}); !ok {
		t.Error("trailing directive on a composite-literal element does not cover its own line")
	}
}
