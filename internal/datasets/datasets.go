// Package datasets provides the labeled-dataset container and CSV
// plumbing shared by the synthetic SGE and Yahoo Webscope S5 generators
// (see DESIGN.md §4 for the substitution rationale: both corpora used in
// the paper are proprietary or license-gated, so the experiments run on
// generators that reproduce their documented structure and anomaly
// types).
package datasets

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cdt/internal/timeseries"
)

// Dataset is a named collection of labeled series (the paper's datasets
// are collections of files: 25 calorie sensors, 67 Yahoo A1 files, ...).
type Dataset struct {
	Name   string
	Series []*timeseries.Series
}

// TotalPoints sums the lengths of all member series.
func (d *Dataset) TotalPoints() int {
	n := 0
	for _, s := range d.Series {
		n += s.Len()
	}
	return n
}

// TotalAnomalies sums the annotated anomalies of all member series.
func (d *Dataset) TotalAnomalies() int {
	n := 0
	for _, s := range d.Series {
		n += s.AnomalyCount()
	}
	return n
}

// AnomalyRate is the fraction of anomalous points.
func (d *Dataset) AnomalyRate() float64 {
	p := d.TotalPoints()
	if p == 0 {
		return 0
	}
	return float64(d.TotalAnomalies()) / float64(p)
}

// WriteCSV writes a series as "value,anomaly" rows with a header.
func WriteCSV(w io.Writer, s *timeseries.Series) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "value,is_anomaly"); err != nil {
		return err
	}
	for i, v := range s.Values {
		a := 0
		if s.Anomalies != nil && s.Anomalies[i] {
			a = 1
		}
		if _, err := fmt.Fprintf(bw, "%g,%d\n", v, a); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the WriteCSV format (a header line then "value,anomaly"
// rows; the anomaly column is optional).
func ReadCSV(r io.Reader, name string) (*timeseries.Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var values []float64
	var anomalies []bool
	sawAnomaly := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 && strings.ContainsAny(text, "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ") {
			continue // header
		}
		parts := strings.Split(text, ",")
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("datasets: %s line %d: %w", name, line, err)
		}
		values = append(values, v)
		if len(parts) > 1 {
			sawAnomaly = true
			a, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil {
				return nil, fmt.Errorf("datasets: %s line %d: %w", name, line, err)
			}
			anomalies = append(anomalies, a != 0)
		} else {
			anomalies = append(anomalies, false)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("datasets: %s: no data rows", name)
	}
	if !sawAnomaly {
		return timeseries.New(name, values), nil
	}
	return timeseries.NewLabeled(name, values, anomalies), nil
}

// ReadMultiCSV parses a multivariate CSV: a required header naming one
// column per dimension (optionally ending in "is_anomaly" for a shared
// label column), then one row of float values per time point. It
// returns the aligned per-dimension series — named after their header
// columns — and the shared anomaly labels (nil when the file is
// unlabeled). Unlike ReadCSV, the header is not optional: without
// names, column identity across train and detect runs would be
// guesswork.
func ReadMultiCSV(r io.Reader, name string) ([]*timeseries.Series, []bool, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cols []string
	hasAnomaly := false
	var values [][]float64
	var anomalies []bool
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if cols == nil {
			if !strings.ContainsAny(text, "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ") {
				return nil, nil, fmt.Errorf("datasets: %s line %d: multivariate CSV requires a header naming each column", name, line)
			}
			for _, c := range parts {
				cols = append(cols, strings.TrimSpace(c))
			}
			if cols[len(cols)-1] == "is_anomaly" {
				hasAnomaly = true
				cols = cols[:len(cols)-1]
			}
			if len(cols) == 0 {
				return nil, nil, fmt.Errorf("datasets: %s: no value columns in header", name)
			}
			values = make([][]float64, len(cols))
			continue
		}
		want := len(cols)
		if hasAnomaly {
			want++
		}
		if len(parts) != want {
			return nil, nil, fmt.Errorf("datasets: %s line %d: %d fields, want %d", name, line, len(parts), want)
		}
		for i := range cols {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("datasets: %s line %d: %w", name, line, err)
			}
			values[i] = append(values[i], v)
		}
		if hasAnomaly {
			a, err := strconv.Atoi(strings.TrimSpace(parts[len(parts)-1]))
			if err != nil {
				return nil, nil, fmt.Errorf("datasets: %s line %d: %w", name, line, err)
			}
			anomalies = append(anomalies, a != 0)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if cols == nil || len(values[0]) == 0 {
		return nil, nil, fmt.Errorf("datasets: %s: no data rows", name)
	}
	dims := make([]*timeseries.Series, len(cols))
	for i, c := range cols {
		dims[i] = timeseries.New(c, values[i])
	}
	if !hasAnomaly {
		return dims, nil, nil
	}
	return dims, anomalies, nil
}

// Downsample returns a copy of the dataset with every series downsampled
// by the given factor (the hour→day resampling of §4.2).
func (d *Dataset) Downsample(factor int, agg timeseries.Aggregator) (*Dataset, error) {
	out := &Dataset{Name: d.Name}
	for _, s := range d.Series {
		ds, err := timeseries.Downsample(s, factor, agg)
		if err != nil {
			return nil, fmt.Errorf("datasets: %s/%s: %w", d.Name, s.Name, err)
		}
		out.Series = append(out.Series, ds)
	}
	return out, nil
}

// Normalize min-max normalizes every series in place (§3.1) and returns
// the dataset for chaining.
func (d *Dataset) Normalize() (*Dataset, error) {
	for _, s := range d.Series {
		if _, err := s.Normalize(); err != nil {
			return nil, fmt.Errorf("datasets: %s/%s: %w", d.Name, s.Name, err)
		}
	}
	return d, nil
}
