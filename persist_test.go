package cdt

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cdt/internal/core"
	"cdt/internal/rules"
)

func trainedModel(t *testing.T, opts Options) (*Model, *Series) {
	t.Helper()
	train := spikySeries("train", 400, []int{50, 120, 200, 310}, 21)
	model, err := Fit([]*Series{train}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return model, train
}

func TestSaveLoadRoundTrip(t *testing.T) {
	model, train := trainedModel(t, Options{Omega: 5, Delta: 2})
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Opts.Omega != 5 || restored.Opts.Delta != 2 {
		t.Fatalf("options = %+v", restored.Opts)
	}
	// The restored model must detect identically.
	obs, err := ObservationsOf(train, model.Opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range obs {
		if model.Predict(o.Labels) != restored.Predict(o.Labels) {
			t.Fatalf("window %d: predictions diverge after reload", i)
		}
	}
	if model.RuleText() != restored.RuleText() {
		t.Errorf("rules diverge:\n%s\nvs\n%s", model.RuleText(), restored.RuleText())
	}
}

func TestSaveLoadNonDefaultOptions(t *testing.T) {
	model, _ := trainedModel(t, Options{
		Omega: 4, Delta: 3,
		Criterion:         core.Entropy,
		Match:             core.MatchSubsequence,
		LeafPolicy:        rules.MajorityAnomalyLeaves,
		MaxCompositionLen: 2,
	})
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Opts.Criterion != core.Entropy {
		t.Error("criterion lost")
	}
	if restored.Opts.Match != core.MatchSubsequence {
		t.Error("match mode lost")
	}
	if restored.Opts.LeafPolicy != rules.MajorityAnomalyLeaves {
		t.Error("leaf policy lost")
	}
	if restored.Opts.MaxCompositionLen != 2 {
		t.Error("composition cap lost")
	}
}

func TestLoadRejectsCorruptDocuments(t *testing.T) {
	cases := map[string]string{
		"junk":             "not json",
		"wrong version":    `{"version": 99, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0}}`,
		"no tree":          `{"version": 1, "options": {"omega": 5, "delta": 2}}`,
		"bad criterion":    `{"version": 1, "options": {"omega": 5, "delta": 2, "criterion": "x"}, "tree": {"normal": 1, "anomaly": 0}}`,
		"bad match":        `{"version": 1, "options": {"omega": 5, "delta": 2, "match": "x"}, "tree": {"normal": 1, "anomaly": 0}}`,
		"bad policy":       `{"version": 1, "options": {"omega": 5, "delta": 2, "leaf_policy": "x"}, "tree": {"normal": 1, "anomaly": 0}}`,
		"bad omega":        `{"version": 1, "options": {"omega": 0, "delta": 2}, "tree": {"normal": 1, "anomaly": 0}}`,
		"negative counts":  `{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": -1, "anomaly": 0}}`,
		"orphan child":     `{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0, "true": {"normal": 1, "anomaly": 0}}}`,
		"half split":       `{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0, "composition": [[0,1,1]], "true": {"normal": 1, "anomaly": 0}}}`,
		"label out of δ":   `{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0, "composition": [[0,9,9]], "true": {"normal": 1, "anomaly": 0}, "false": {"normal": 0, "anomaly": 1}}}`,
		"inconsistent lbl": `{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0, "composition": [[0,-1,1]], "true": {"normal": 1, "anomaly": 0}, "false": {"normal": 0, "anomaly": 1}}}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestLoadErrorsNameOffendingField: rejections carry the JSON path of
// the field that failed, so the model store's audit log and the CLI can
// say why a candidate was refused.
func TestLoadErrorsNameOffendingField(t *testing.T) {
	cases := map[string]struct {
		doc  string
		want string
	}{
		"criterion": {
			`{"version": 1, "options": {"omega": 5, "delta": 2, "criterion": "x"}, "tree": {"normal": 1, "anomaly": 0}}`,
			"options.criterion",
		},
		"match": {
			`{"version": 1, "options": {"omega": 5, "delta": 2, "match": "x"}, "tree": {"normal": 1, "anomaly": 0}}`,
			"options.match",
		},
		"leaf policy": {
			`{"version": 1, "options": {"omega": 5, "delta": 2, "leaf_policy": "x"}, "tree": {"normal": 1, "anomaly": 0}}`,
			"options.leaf_policy",
		},
		"implausible omega": {
			`{"version": 1, "options": {"omega": 9999999, "delta": 2}, "tree": {"normal": 1, "anomaly": 0}}`,
			"options.omega",
		},
		"implausible delta": {
			`{"version": 1, "options": {"omega": 5, "delta": 9999999}, "tree": {"normal": 1, "anomaly": 0}}`,
			"options.delta",
		},
		"missing tree": {
			`{"version": 1, "options": {"omega": 5, "delta": 2}}`,
			"tree",
		},
		"root label": {
			`{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0, "composition": [[0,9,9],[0,1,1]], "true": {"normal": 1, "anomaly": 0}, "false": {"normal": 0, "anomaly": 1}}}`,
			"tree.composition[0]",
		},
		"nested negative counts": {
			`{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0, "composition": [[0,1,1]], "true": {"normal": 1, "anomaly": 0, "composition": [[0,1,1]], "true": {"normal": -1, "anomaly": 0}, "false": {"normal": 0, "anomaly": 1}}, "false": {"normal": 0, "anomaly": 1}}}`,
			"tree.true.true",
		},
		"nested half split": {
			`{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0, "composition": [[0,1,1]], "true": {"normal": 1, "anomaly": 0}, "false": {"normal": 0, "anomaly": 1, "composition": [[0,1,1]], "true": {"normal": 1, "anomaly": 0}}}}`,
			"tree.false",
		},
	}
	for name, tc := range cases {
		_, err := Load(strings.NewReader(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name field path %q", name, err, tc.want)
		}
	}
}

func TestLoadMinimalValidDocument(t *testing.T) {
	doc := `{"version": 1, "options": {"omega": 5, "delta": 2},
	         "tree": {"normal": 0, "anomaly": 3}}`
	m, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	// A single anomaly leaf classifies everything anomalous.
	obs := make([]Label, 5)
	if !m.Predict(obs) {
		t.Error("anomaly leaf should predict anomaly")
	}
}

func TestSaveLoadStable(t *testing.T) {
	// Saving a loaded model reproduces the same bytes (stable format).
	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	var first bytes.Buffer
	if err := model.Save(&first); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := restored.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("save/load/save not stable")
	}
}

// Property: for randomly shaped trained models, save/load preserves
// predictions on random windows.
func TestSaveLoadPropertyRandomModels(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 10; trial++ {
		n := 150 + rng.Intn(200)
		values := make([]float64, n)
		anoms := make([]bool, n)
		for i := range values {
			values[i] = 50 + 10*math.Sin(float64(i)/float64(3+rng.Intn(6))) + rng.Float64()
		}
		for k := 0; k < 2+rng.Intn(3); k++ {
			at := 5 + rng.Intn(n-10)
			values[at] = 200 + 50*rng.Float64()
			anoms[at] = true
		}
		opts := Options{Omega: 3 + rng.Intn(6), Delta: 1 + rng.Intn(5)}
		model, err := Fit([]*Series{NewLabeledSeries("p", values, anoms)}, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := model.Save(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := Load(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		alphabet := model.pcfg.Alphabet()
		for w := 0; w < 50; w++ {
			window := make([]Label, opts.Omega)
			for i := range window {
				window[i] = alphabet[rng.Intn(len(alphabet))]
			}
			if model.Predict(window) != restored.Predict(window) {
				t.Fatalf("trial %d: prediction diverged after reload", trial)
			}
		}
	}
}

func trainedPyramid(t *testing.T) (*PyramidModel, *Series) {
	t.Helper()
	train := plateauSeries("train", 480, []int{50, 150, 250}, 350, 40, 7)
	pm, err := FitPyramid([]*Series{train}, Options{Omega: 5, Delta: 2}, PyramidConfig{
		Factors:    []int{1, 4},
		Aggregator: "max",
		Fusion:     Fusion{Policy: FuseAny},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pm, train
}

func TestPyramidSaveLoadRoundTrip(t *testing.T) {
	pm, train := trainedPyramid(t)
	var buf bytes.Buffer
	if err := pm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadPyramid(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.Config, pm.Config) {
		t.Errorf("config diverged: %+v vs %+v", restored.Config, pm.Config)
	}
	// Epsilon persists in its defaulted (effective) form, like plain
	// model round-trips.
	if restored.Opts.Omega != pm.Opts.Omega || restored.Opts.Delta != pm.Opts.Delta ||
		restored.Opts.Epsilon != pm.ScaleModel(0).pcfg.Epsilon {
		t.Errorf("options diverged: %+v vs %+v", restored.Opts, pm.Opts)
	}
	if restored.RuleText() != pm.RuleText() {
		t.Error("rule text diverged after reload")
	}
	want, err := pm.DetectPyramid(train)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.DetectPyramid(train)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("detections diverged after reload")
	}
	if restored.TrainingAnomalyRate() != pm.TrainingAnomalyRate() {
		t.Error("training anomaly rate diverged after reload")
	}
}

func TestLoadAnyDispatchesOnKind(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	pm, _ := trainedPyramid(t)

	var mbuf bytes.Buffer
	if err := model.Save(&mbuf); err != nil {
		t.Fatal(err)
	}
	art, err := LoadAny(bytes.NewReader(mbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info := art.Info(); info.Kind != KindModel || info.Scales != nil {
		t.Errorf("model artifact info = %+v", info)
	}
	if _, ok := art.(*Model); !ok {
		t.Errorf("LoadAny returned %T for a model document", art)
	}

	var pbuf bytes.Buffer
	if err := pm.Save(&pbuf); err != nil {
		t.Fatal(err)
	}
	art, err = LoadAny(bytes.NewReader(pbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	info := art.Info()
	if info.Kind != KindPyramid || !reflect.DeepEqual(info.Scales, []int{1, 4}) {
		t.Errorf("pyramid artifact info = %+v", info)
	}
	if _, ok := art.(*PyramidModel); !ok {
		t.Errorf("LoadAny returned %T for a pyramid document", art)
	}
	if _, err := LoadAny(strings.NewReader(`{"kind":"teapot"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	// A pyramid document fed to the plain model loader fails cleanly.
	if _, err := Load(bytes.NewReader(pbuf.Bytes())); err == nil {
		t.Error("plain Load accepted a pyramid document")
	}
}

func TestLoadPyramidRejectsBadDocuments(t *testing.T) {
	pm, _ := trainedPyramid(t)
	var buf bytes.Buffer
	if err := pm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := []struct {
		name, doc, wantErr string
	}{
		{"bad version", `{"version":9,"kind":"pyramid","fusion":{"policy":"any"},"scales":[]}`, "version"},
		{"bad kind", `{"version":1,"kind":"model","fusion":{"policy":"any"},"scales":[]}`, "kind"},
		{"bad policy", `{"version":1,"kind":"pyramid","fusion":{"policy":"psychic"},"scales":[{"factor":1,"model":{"version":1,"options":{"omega":3,"delta":1},"tree":{"normal":1,"anomaly":0}}}]}`, "fusion.policy"},
		{"no scales", `{"version":1,"kind":"pyramid","fusion":{"policy":"any"},"scales":[]}`, "scales"},
		{"missing base factor", `{"version":1,"kind":"pyramid","fusion":{"policy":"any"},"scales":[{"factor":2,"model":{"version":1,"options":{"omega":3,"delta":1},"tree":{"normal":1,"anomaly":0}}}]}`, "scales"},
		{"broken scale model", `{"version":1,"kind":"pyramid","fusion":{"policy":"any"},"scales":[{"factor":1,"model":{"version":1,"options":{"omega":3,"delta":1}}}]}`, "scales[0].model.tree"},
		{"mixed omega", `{"version":1,"kind":"pyramid","fusion":{"policy":"any"},"scales":[` +
			`{"factor":1,"model":{"version":1,"options":{"omega":3,"delta":1},"tree":{"normal":1,"anomaly":0}}},` +
			`{"factor":2,"model":{"version":1,"options":{"omega":4,"delta":1},"tree":{"normal":1,"anomaly":0}}}]}`, "scales[1].model.options"},
	}
	for _, tc := range cases {
		_, err := LoadPyramid(strings.NewReader(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.wantErr)
		}
	}
	// Sanity: the known-good document still loads.
	if _, err := LoadPyramid(strings.NewReader(good)); err != nil {
		t.Errorf("good document rejected: %v", err)
	}
}
