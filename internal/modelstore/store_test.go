package modelstore

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	cdt "cdt"
)

// spiky generates a labeled seasonal series with spike anomalies.
func spiky(name string, n int, spikes []int, seed int64) *cdt.Series {
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, n)
	anoms := make([]bool, n)
	for i := range values {
		values[i] = 100 + 20*math.Sin(float64(i)/8) + 2*rng.Float64()
	}
	for _, at := range spikes {
		values[at] = 400
		anoms[at] = true
	}
	return cdt.NewLabeledSeries(name, values, anoms)
}

// modelDoc trains a model and returns its serialized document.
func modelDoc(tb testing.TB, seed int64) []byte {
	tb.Helper()
	model, err := cdt.Fit(
		[]*cdt.Series{spiky("train", 500, []int{90, 200, 330, 430}, seed)},
		cdt.Options{Omega: 5, Delta: 2},
	)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func TestPublishPromoteRollbackRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	v1, err := st.Publish("spikes", modelDoc(t, 7), "publish", "initial")
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version != 1 || v1.Omega != 5 || v1.Delta != 2 || v1.NumRules == 0 {
		t.Fatalf("v1 = %+v", v1)
	}
	if !strings.HasPrefix(v1.Digest, "sha256-") {
		t.Fatalf("digest %q not content-addressed", v1.Digest)
	}
	if _, ok := st.Current("spikes"); ok {
		t.Fatal("unpromoted publish became current")
	}

	if err := st.Promote("spikes", 1); err != nil {
		t.Fatal(err)
	}
	if cur, ok := st.Current("spikes"); !ok || cur.Version != 1 {
		t.Fatalf("current after promote = %+v, %v", cur, ok)
	}

	v2, err := st.Publish("spikes", modelDoc(t, 11), "publish", "candidate")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Version != 2 {
		t.Fatalf("v2 = %+v", v2)
	}
	if err := st.Promote("spikes", 2); err != nil {
		t.Fatal(err)
	}
	m, v, err := st.LoadCurrent("spikes")
	if err != nil || v.Version != 2 || m.NumRules() == 0 {
		t.Fatalf("LoadCurrent = %+v, %v", v, err)
	}

	back, err := st.Rollback("spikes")
	if err != nil || back != 1 {
		t.Fatalf("Rollback = %d, %v", back, err)
	}
	if cur, _ := st.Current("spikes"); cur.Version != 1 {
		t.Fatalf("current after rollback = %+v", cur)
	}
	// Rollback toggles: rolling back again returns to v2.
	if back, err = st.Rollback("spikes"); err != nil || back != 2 {
		t.Fatalf("second Rollback = %d, %v", back, err)
	}

	// Round-trip through a fresh Open: manifest state survives.
	st2, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	vers, cur, err := st2.Versions("spikes")
	if err != nil || len(vers) != 2 || cur != 2 {
		t.Fatalf("reopened Versions = %+v, current %d, %v", vers, cur, err)
	}
	models, versions, err := st2.CurrentModels()
	if err != nil || len(models) != 1 || versions["spikes"] != 2 {
		t.Fatalf("CurrentModels = %v, %v, %v", models, versions, err)
	}
}

// TestIdenticalContentSharesBlob: publishing the same bytes twice
// creates two versions over one content-addressed blob.
func TestIdenticalContentSharesBlob(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	doc := modelDoc(t, 3)
	v1, err := st.Publish("m", doc, "publish", "")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := st.Publish("m", doc, "publish", "")
	if err != nil {
		t.Fatal(err)
	}
	if v1.Digest != v2.Digest || v2.Version != 2 {
		t.Fatalf("v1=%+v v2=%+v", v1, v2)
	}
	blobs, err := os.ReadDir(filepath.Join(st.Dir(), "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 1 {
		t.Fatalf("%d blobs for identical content, want 1", len(blobs))
	}
}

// TestAuditAppendOnlyGolden pins the audit trail for a fixed lifecycle:
// the event sequence, ordering, and strictly increasing sequence
// numbers are a contract — and earlier records must be byte-identical
// after later operations append (append-only property).
func TestAuditAppendOnlyGolden(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish("spikes", modelDoc(t, 7), "publish", ""); err != nil {
		t.Fatal(err)
	}
	if err := st.Promote("spikes", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish("spikes", modelDoc(t, 11), "retrain", "drift"); err != nil {
		t.Fatal(err)
	}
	if err := st.Promote("spikes", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Rollback("spikes"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish("spikes", []byte("{not a model"), "publish", ""); err == nil {
		t.Fatal("corrupt candidate accepted")
	}

	events, err := st.Audit(0)
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		event   string
		version int
	}{
		{EventPublish, 1},
		{EventPromote, 1},
		{EventPublish, 2},
		{EventPromote, 2},
		{EventRollback, 1},
		{EventRefuse, 0},
	}
	if len(events) != len(golden) {
		t.Fatalf("%d audit events, want %d: %+v", len(events), len(golden), events)
	}
	for i, g := range golden {
		e := events[i]
		if e.Event != g.event || e.Version != g.version || e.Model != "spikes" {
			t.Errorf("event[%d] = %+v, want %s v%d", i, e, g.event, g.version)
		}
		if e.Seq != uint64(i+1) {
			t.Errorf("event[%d] seq = %d, want %d", i, e.Seq, i+1)
		}
	}

	// Append-only: the raw bytes of the existing log are a strict prefix
	// of the log after more operations.
	before, err := os.ReadFile(filepath.Join(st.Dir(), "audit.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Note(EventShadow, "spikes", 2, "start"); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(st.Dir(), "audit.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(after, before) {
		t.Fatal("audit log rewrote earlier records")
	}

	// Reopen continues the sequence instead of restarting it.
	st2, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Note(EventShadow, "spikes", 2, "stop"); err != nil {
		t.Fatal(err)
	}
	events, err = st2.Audit(0)
	if err != nil {
		t.Fatal(err)
	}
	last := events[len(events)-1]
	if last.Seq != uint64(len(events)) || last.Detail != "stop" {
		t.Fatalf("sequence did not survive reopen: %+v", last)
	}
}

// TestRefusalNamesOffendingField: a refused candidate's audit record
// carries cdt.Load's field path, so the log says why.
func TestRefusalNamesOffendingField(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A structurally valid document with an out-of-range label.
	bad := []byte(`{"version":1,"options":{"omega":5,"delta":2,"epsilon":0.01,
		"criterion":"gini","match":"contiguous","leaf_policy":"pure-anomaly"},
		"tree":{"composition":[[9,99,99]],
		"true":{"normal":0,"anomaly":3},"false":{"normal":7,"anomaly":0},
		"normal":7,"anomaly":3}}`)
	_, err = st.Publish("m", bad, "publish", "")
	if err == nil {
		t.Fatal("invalid candidate accepted")
	}
	if !strings.Contains(err.Error(), "tree.composition[0]") {
		t.Errorf("refusal %q does not name the offending field path", err)
	}
	events, auditErr := st.Audit(0)
	if auditErr != nil || len(events) != 1 {
		t.Fatalf("audit = %+v, %v", events, auditErr)
	}
	if events[0].Event != EventRefuse || !strings.Contains(events[0].Detail, "tree.composition[0]") {
		t.Errorf("refusal audit record %+v does not carry the field path", events[0])
	}
}

// TestCrashSafety: a leftover partial manifest.json.tmp (torn write
// from a crash) is ignored, while a corrupt manifest.json proper fails
// loudly.
func TestCrashSafety(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish("m", modelDoc(t, 3), "publish", ""); err != nil {
		t.Fatal(err)
	}
	if err := st.Promote("m", 1); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-save: garbage in the temp file.
	if err := os.WriteFile(filepath.Join(dir, "manifest.json.tmp"), []byte(`{"format":1,"mod`), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with leftover tmp manifest: %v", err)
	}
	if cur, ok := st2.Current("m"); !ok || cur.Version != 1 {
		t.Fatalf("state lost behind tmp file: %+v, %v", cur, ok)
	}
	if err := st2.CheckReady(); err != nil {
		t.Fatalf("CheckReady with leftover tmp: %v", err)
	}

	// A torn manifest.json proper must refuse to open.
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"format":1,"mod`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt manifest.json accepted")
	}
}

// TestCheckReadyMissingBlob: deleting a promoted blob out from under
// the store flips readiness.
func TestCheckReadyMissingBlob(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	v, err := st.Publish("m", modelDoc(t, 3), "publish", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Promote("m", 1); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckReady(); err != nil {
		t.Fatalf("ready store reported %v", err)
	}
	if err := os.Remove(filepath.Join(st.Dir(), "blobs", v.Digest+".json")); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckReady(); err == nil {
		t.Fatal("missing promoted blob not detected")
	}
}

// TestConcurrentPublishPromote hammers the store from many goroutines
// under -race: every version number must come out unique and the final
// manifest consistent.
func TestConcurrentPublishPromote(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	doc := modelDoc(t, 5)
	const workers = 8
	const perWorker = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v, err := st.Publish("m", doc, "publish", fmt.Sprintf("w%d-%d", w, i))
				if err != nil {
					t.Error(err)
					return
				}
				if err := st.Promote("m", v.Version); err != nil {
					t.Error(err)
					return
				}
				if _, ok := st.Current("m"); !ok {
					t.Error("no current after promote")
					return
				}
				if _, err := st.Audit(4); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	vers, cur, err := st.Versions("m")
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != workers*perWorker || cur == 0 {
		t.Fatalf("%d versions (want %d), current %d", len(vers), workers*perWorker, cur)
	}
	seen := make(map[int]bool)
	for _, v := range vers {
		if seen[v.Version] {
			t.Fatalf("duplicate version %d", v.Version)
		}
		seen[v.Version] = true
	}
	events, err := st.Audit(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("audit seq %d at index %d", e.Seq, i)
		}
	}
}

// TestCorpusRetrainer: the drift retrainer produces a loadable
// candidate document and a note naming the winning configuration.
func TestCorpusRetrainer(t *testing.T) {
	train, err := cdt.NewCorpus([]*cdt.Series{spiky("tr", 400, []int{90, 200, 330}, 7)})
	if err != nil {
		t.Fatal(err)
	}
	val, err := cdt.NewCorpus([]*cdt.Series{spiky("va", 300, []int{120, 240}, 9)})
	if err != nil {
		t.Fatal(err)
	}
	incumbent, err := train.Fit(cdt.Options{Omega: 5, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := &CorpusRetrainer{
		Train:      train,
		Validation: val,
		Objective:  cdt.ObjectiveFH,
		Opts:       cdt.OptimizeOptions{InitPoints: 3, Iterations: 2, Seed: 1},
	}
	doc, note, err := r.Retrain("spikes", incumbent)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note, "omega=") || !strings.Contains(note, "evaluations") {
		t.Errorf("note %q lacks configuration summary", note)
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	v, err := st.Publish("spikes", doc, "retrain", note)
	if err != nil {
		t.Fatalf("retrained candidate refused: %v", err)
	}
	if v.Source != "retrain" || v.NumRules == 0 {
		t.Fatalf("published retrain version = %+v", v)
	}
}
