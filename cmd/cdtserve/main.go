// Command cdtserve serves trained CDT models over HTTP: batch scoring,
// live streaming-detection sessions, and a hot-reloadable model
// registry. Every detection in a response carries the fired rule
// predicates in human-readable form — the interpretable payload the
// paper argues anomaly detectors owe their operators.
//
// Usage:
//
//	cdtserve -models dir [-addr :8080] [-workers 8] [-session-ttl 15m] [-timeout 30s]
//	         [-log-format text|json] [-log-level info] [-debug-addr 127.0.0.1:6060]
//	         [-slow-request 250ms] [-trace-sample 0.01] [-trace-export spans.jsonl]
//	cdtserve -store dir  [-drift-window 512] [-drift-bound 0.05] [-retrain-data dir]
//
// With -models, the directory holds one <name>.json per model (written
// by `cdt train -save` or Model.Save); the basename becomes the model
// name. SIGHUP or POST /models/reload atomically swaps in the
// directory's current contents without dropping in-flight requests.
// SIGINT/SIGTERM drain in-flight requests before exiting.
//
// With -store, models come from a versioned model store (managed with
// `cdt store ...`): each model serves its promoted "current" version,
// and the lifecycle endpoints — shadow evaluation, atomic promote,
// rollback — come alive. -drift-bound > 0 turns on drift detection
// (live fire rate vs. the training-time anomaly rate, over a sliding
// window of -drift-window scored windows); a drifted model is flagged
// on /metrics and /healthz, and when -retrain-data names a directory of
// <name>.csv labeled series, the server retrains in the background and
// publishes the candidate to the store unpromoted.
//
// Logs are structured (log/slog): one "request" record per served
// request carrying the request ID, endpoint, status, and latency, plus
// lifecycle events (start, reload, shutdown). -log-format json emits
// machine-parseable lines for log shippers; -log-level debug|info|warn|
// error gates verbosity (access logs log at info).
//
// Endpoints:
//
//	GET    /healthz                    liveness + model/session counts
//	GET    /models                     registered models with rule counts
//	POST   /models/reload              atomic hot-reload from the model dir
//	POST   /models/{name}/detect       batch scoring: {"series":[{"name","values"}]}
//	POST   /models/{name}/shadow       shadow a store version: {"version":N}
//	GET    /models/{name}/shadow       shadow agreement summary
//	DELETE /models/{name}/shadow       stop shadowing
//	POST   /models/{name}/promote      promote a store version: {"version":N}
//	POST   /models/{name}/rollback     undo the last promote
//	POST   /streams                    open a session: {"model","min","max"}
//	POST   /streams/{id}/points        push readings: {"points":[...]}
//	POST   /streams/{id}/reset         clear a session's window state
//	DELETE /streams/{id}               close a session
//	GET    /metrics                    Prometheus text exposition
//	GET    /debug/vars                 expvar counters (map "cdtserve"); with
//	                                   -slow-request, the last 32 over-threshold
//	                                   requests under "cdtserve_slow_requests"
//	GET    /debug/traces               recent sampled spans, newest first
//	                                   (?trace=<id> filters to one request)
//
// With -trace-sample > 0, that fraction of requests (plus any request
// arriving with a sampled W3C traceparent header) records a span tree —
// request, batch pool, per-series detect, per-scale sweeps, fusion —
// into a bounded in-memory ring served at /debug/traces; -trace-export
// additionally appends each finished span as a JSON line to a file.
//
// With -debug-addr set, a second listener (keep it private — bind
// loopback or a management network) additionally serves /debug/pprof/
// profiles alongside /metrics, /debug/vars, and /debug/traces.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cdt/internal/modelstore"
	"cdt/internal/server"
	"cdt/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdtserve:", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger from the flag values. Handlers
// write to stderr, keeping stdout clean for potential tooling.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdtserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	models := fs.String("models", "", "directory of <name>.json model artifacts (exclusive with -store)")
	storeDir := fs.String("store", "", "versioned model-store directory (exclusive with -models)")
	driftWindow := fs.Int("drift-window", 512, "scored windows aggregated before drift is evaluated")
	driftBound := fs.Float64("drift-bound", 0, "absolute fire-rate drift from the training baseline that marks a model stale (0 = disabled)")
	retrainData := fs.String("retrain-data", "", "directory of <name>.csv labeled series for drift-triggered retraining (requires -store)")
	retrainIters := fs.Int("retrain-iters", 15, "surrogate-guided evaluations per drift retrain")
	workers := fs.Int("workers", 0, "batch-scoring worker pool size (0 = GOMAXPROCS)")
	sessionTTL := fs.Duration("session-ttl", 15*time.Minute, "evict streaming sessions idle longer than this")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request handler timeout")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	debugAddr := fs.String("debug-addr", "", "serve /debug/pprof, /metrics, and /debug/vars on this extra address (empty = disabled; keep it private)")
	slowRequest := fs.Duration("slow-request", 0, "record requests slower than this into the /debug/vars exemplar ring (0 = disabled)")
	traceSample := fs.Float64("trace-sample", 0, "fraction of requests to trace into /debug/traces (0 = disabled; inbound sampled traceparent headers always trace)")
	traceExport := fs.String("trace-export", "", "append finished spans as JSON lines to this file (requires -trace-sample > 0)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceExport != "" && *traceSample <= 0 {
		return fmt.Errorf("-trace-export requires -trace-sample > 0")
	}
	if (*models == "") == (*storeDir == "") {
		return fmt.Errorf("exactly one of -models and -store is required")
	}
	if *retrainData != "" && *storeDir == "" {
		return fmt.Errorf("-retrain-data requires -store (candidates are published to the store)")
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}

	cfg := server.Config{
		ModelDir:             *models,
		DriftWindow:          *driftWindow,
		DriftBound:           *driftBound,
		SessionTTL:           *sessionTTL,
		Workers:              *workers,
		AccessLog:            logger,
		SlowRequestThreshold: *slowRequest,
	}
	if *traceSample > 0 {
		tcfg := trace.Config{SampleRate: *traceSample}
		if *traceExport != "" {
			f, err := os.OpenFile(*traceExport, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("-trace-export: %w", err)
			}
			defer f.Close()
			tcfg.Export = f
		}
		cfg.Tracer = trace.New(tcfg)
	}
	if *storeDir != "" {
		st, err := modelstore.Open(*storeDir)
		if err != nil {
			return err
		}
		cfg.Store = st
		if *retrainData != "" {
			cfg.Retrainer = &csvRetrainer{dir: *retrainData, iters: *retrainIters, seed: 1}
		}
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           http.TimeoutHandler(s.Handler(), *timeout, `{"error":"request timed out"}`),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *timeout + 10*time.Second,
		WriteTimeout:      *timeout + 10*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGHUP hot-reloads the registry; SIGINT/SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			n, err := s.Registry().Reload()
			if err != nil {
				logger.Error("reload failed, previous models still serving",
					"trigger", "SIGHUP", "error", err)
				continue
			}
			logger.Info("models reloaded", "trigger", "SIGHUP", "models", n)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The debug listener carries the profiling endpoints the public mux
	// deliberately omits; its lifetime is best-effort — it never blocks
	// serving and dies with the process.
	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: s.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "error", err)
			}
		}()
		defer dbg.Close()
	}

	errc := make(chan error, 1)
	go func() {
		backend := *models
		if *storeDir != "" {
			backend = *storeDir + " (store)"
		}
		logger.Info("cdtserve listening",
			"addr", *addr, "models", s.Registry().Len(), "backend", backend)
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down, draining in-flight requests", "drain_budget", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpServer.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
