package experiments

import (
	"fmt"
	"strings"

	cdt "cdt"
	"cdt/internal/c45"
	"cdt/internal/core"
	"cdt/internal/evalmetrics"
	"cdt/internal/jrip"
	"cdt/internal/part"
	"cdt/internal/pattern"
)

// Table4Methods lists the §4.3 comparison's methods in column order.
var Table4Methods = []string{"CDT", "PART", "JRip"}

// Table4Row is one dataset's F1, Q(R) and F(h) per method (paper
// Table 4), plus the rule counts behind Figure 3.
type Table4Row struct {
	Dataset  string
	F1       [3]float64
	Q        [3]float64
	FH       [3]float64
	NumRules [3]int
	PaperF1  [3]float64
	PaperQ   [3]float64
	PaperFH  [3]float64
}

// Table4 compares CDT with the PART and JRip rule learners. All three
// methods use the F(h)-optimal hyper-parameters (§4.3) and see the same
// ω-windows of pattern labels; PART and JRip receive them as nominal
// attribute vectors (position → label id). Scores are measured on the
// held-out test windows; Q(R) follows Equation 3 with each learner's
// conjunctions as rule predicates.
func (s *Suite) Table4() ([]Table4Row, error) {
	s.mu.Lock()
	if s.table4 != nil {
		rows := s.table4
		s.mu.Unlock()
		return rows, nil
	}
	s.mu.Unlock()
	var rows []Table4Row
	for _, name := range DatasetNames {
		model, prep, err := s.FitTuned(name, cdt.ObjectiveFH)
		if err != nil {
			return nil, err
		}
		row := Table4Row{Dataset: name}
		if p, ok := PaperTable4[name]; ok {
			row.PaperF1, row.PaperQ, row.PaperFH = p.F1, p.Q, p.FH
		}

		testCorpus, err := prep.TestCorpus()
		if err != nil {
			return nil, err
		}
		rep, err := model.EvaluateCorpus(testCorpus)
		if err != nil {
			return nil, err
		}
		row.F1[0], row.Q[0], row.FH[0] = rep.F1, rep.Q, rep.FH
		row.NumRules[0] = model.NumRules()

		opts := model.Opts
		tvCorpus, err := prep.TrainValCorpus()
		if err != nil {
			return nil, err
		}
		trainDS, _, err := nominalDataset(tvCorpus, opts)
		if err != nil {
			return nil, err
		}
		testDS, _, err := nominalDataset(testCorpus, opts)
		if err != nil {
			return nil, err
		}
		maxL := pattern.Config{Delta: opts.Delta}.AlphabetSize()

		partCls, err := part.Learn(trainDS, part.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: PART on %s: %w", name, err)
		}
		f1, q := evaluateRuleList(partRulesOf(partCls), partCls.DefaultClass, testDS, opts.Omega, maxL)
		row.F1[1], row.Q[1], row.FH[1] = f1, q, f1*q
		row.NumRules[1] = partCls.NumRules()

		jripCls, err := jrip.Learn(trainDS, jrip.Options{Seed: s.Config.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: JRip on %s: %w", name, err)
		}
		f1, q = evaluateRuleList(jripRulesOf(jripCls), jripCls.DefaultClass, testDS, opts.Omega, maxL)
		row.F1[2], row.Q[2], row.FH[2] = f1, q, f1*q
		row.NumRules[2] = jripCls.NumRules()

		rows = append(rows, row)
	}
	s.mu.Lock()
	s.table4 = rows
	s.mu.Unlock()
	return rows, nil
}

// nominalDataset converts a corpus into the nominal-attribute form the
// rule learners consume: one instance per ω-window, attribute j = the
// alphabet id of the label at position j, class 1 = anomaly. The windows
// come from the corpus cache, so learners sharing (ω, δ) with the CDT
// reuse its preprocessing.
func nominalDataset(c *cdt.Corpus, opts cdt.Options) (*c45.Dataset, []core.Observation, error) {
	pcfg := pattern.Config{Delta: opts.Delta, Epsilon: opts.Epsilon}
	if pcfg.Epsilon == 0 {
		pcfg.Epsilon = pattern.DefaultEpsilon
	}
	alphabet := pcfg.Alphabet()
	ids := make(map[pattern.Label]int, len(alphabet))
	for i, l := range alphabet {
		ids[l] = i
	}
	ds := &c45.Dataset{NumClasses: 2}
	for j := 0; j < opts.Omega; j++ {
		ds.AttrNames = append(ds.AttrNames, fmt.Sprintf("pos%d", j))
		ds.AttrCard = append(ds.AttrCard, len(alphabet))
	}
	pooled, err := c.Observations(opts)
	if err != nil {
		return nil, nil, err
	}
	for _, o := range pooled {
		attrs := make([]int, len(o.Labels))
		for j, l := range o.Labels {
			attrs[j] = ids[l]
		}
		class := 0
		if o.Class == core.Anomaly {
			class = 1
		}
		ds.Instances = append(ds.Instances, c45.Instance{Attrs: attrs, Class: class})
	}
	if err := ds.Validate(); err != nil {
		return nil, nil, err
	}
	return ds, pooled, nil
}

// genericRule abstracts a PART/JRip rule for shared evaluation.
type genericRule struct {
	conds, uniq int
	class       int
	matches     func(attrs []int) bool
}

// evaluateRuleList scores an ordered rule list on a nominal test set:
// window-level F1 (class 1 = anomaly positive) and Q(R) per Equation 3,
// where each anomaly-predicting conjunction is a rule predicate whose
// interpretability is 1 − (len · uniqueValues)/(ω · MaxL).
func evaluateRuleList(rules []genericRule, defaultClass int, test *c45.Dataset, omega, maxL int) (f1, q float64) {
	var conf evalmetrics.Confusion
	supports := make([]int, len(rules))
	for _, inst := range test.Instances {
		matched := -1
		for ri := range rules {
			if rules[ri].matches(inst.Attrs) {
				matched = ri
				break
			}
		}
		class := defaultClass
		if matched >= 0 {
			class = rules[matched].class
		}
		predicted := class == 1
		actual := inst.Class == 1
		conf.Add(predicted, actual)
		if matched >= 0 && predicted && actual {
			supports[matched]++
		}
	}
	s := conf.TP + conf.TN
	if s > 0 {
		num := 0.0
		for ri := range rules {
			if rules[ri].class != 1 {
				continue
			}
			m := 1 - float64(rules[ri].conds*rules[ri].uniq)/float64(omega*maxL)
			if m < 0 {
				m = 0
			}
			if m > 1 {
				m = 1
			}
			num += float64(supports[ri]) * m
		}
		q = num / float64(s)
	}
	return conf.F1(), q
}

// uniqueConditionValues counts distinct label ids used in a conjunction —
// the N_L analogue for attribute-value rules.
func uniqueConditionValues(conds []c45.Condition) int {
	seen := make(map[int]struct{}, len(conds))
	for _, c := range conds {
		seen[c.Value] = struct{}{}
	}
	return len(seen)
}

// FormatTable4 renders Table 4 with averages and paper values.
func FormatTable4(rows []Table4Row) string {
	header := []string{"Dataset"}
	for _, metric := range []string{"F1", "Q", "F(h)"} {
		for _, m := range Table4Methods {
			header = append(header, metric+" "+m)
		}
	}
	var body [][]string
	var f1Sums, qSums, fhSums [3]float64
	for _, r := range rows {
		line := []string{r.Dataset}
		for i := range Table4Methods {
			line = append(line, fmt.Sprintf("%.2f", r.F1[i]))
			f1Sums[i] += r.F1[i]
		}
		for i := range Table4Methods {
			line = append(line, fmt.Sprintf("%.2f", r.Q[i]))
			qSums[i] += r.Q[i]
		}
		for i := range Table4Methods {
			line = append(line, fmt.Sprintf("%.2f", r.FH[i]))
			fhSums[i] += r.FH[i]
		}
		body = append(body, line)
	}
	n := float64(len(rows))
	avg := []string{"Average"}
	for i := range Table4Methods {
		avg = append(avg, fmt.Sprintf("%.2f", f1Sums[i]/n))
	}
	for i := range Table4Methods {
		avg = append(avg, fmt.Sprintf("%.2f", qSums[i]/n))
	}
	for i := range Table4Methods {
		avg = append(avg, fmt.Sprintf("%.2f", fhSums[i]/n))
	}
	body = append(body, avg)
	paper := []string{"(paper avg)"}
	for i := range Table4Methods {
		paper = append(paper, fmt.Sprintf("%.2f", PaperTable4Average.F1[i]))
	}
	for i := range Table4Methods {
		paper = append(paper, fmt.Sprintf("%.2f", PaperTable4Average.Q[i]))
	}
	for i := range Table4Methods {
		paper = append(paper, fmt.Sprintf("%.2f", PaperTable4Average.FH[i]))
	}
	body = append(body, paper)
	var b strings.Builder
	b.WriteString("Table 4: F1, Q(R) and F(h), CDT vs rule learners (F(h)-optimal hyper-parameters)\n")
	b.WriteString(FormatTable(header, body))
	return b.String()
}

// NominalDatasetForDebug exposes nominalDataset for ad-hoc diagnostics
// from cmd binaries; it builds the train+validation nominal dataset.
func NominalDatasetForDebug(p *Prepared, opts cdt.Options) (*c45.Dataset, int, error) {
	tv, err := p.TrainValCorpus()
	if err != nil {
		return nil, 0, err
	}
	ds, obs, err := nominalDataset(tv, opts)
	return ds, len(obs), err
}
