// Package corpusshare is lint-test fodder for the corpusshare analyzer:
// a mutex-guarded cache-bearing Corpus must be shared by pointer and
// used only through its methods.
package corpusshare

import "sync"

// Corpus mirrors the structural shape of cdt.Corpus: a mutex plus
// cache maps, and immutable configuration that is fine to read raw.
type Corpus struct {
	mu     sync.RWMutex
	labels map[int][]string
	limit  int
}

// Get is the locked API. Takes c.mu.
func (c *Corpus) Get(k int) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.labels[k]
}

// fill is a locked mutator. Takes c.mu.
func (c *Corpus) fill(k int, v []string) {
	c.mu.Lock()
	c.labels[k] = v
	c.mu.Unlock()
}

// Spawn shares the corpus with a goroutine correctly: method calls only.
func (c *Corpus) Spawn(k int) {
	go func() {
		_ = c.Get(k)
	}()
}

// SpawnRaw leaks a guarded field into a goroutine it starts.
func (c *Corpus) SpawnRaw(k int) {
	go func() {
		c.mu.RLock()    // want `Corpus\.mu touched from a goroutine spawned inside a method`
		_ = c.labels[k] // want `Corpus\.labels touched from a goroutine spawned inside a method`
		c.mu.RUnlock()  // want `Corpus\.mu touched from a goroutine spawned inside a method`
	}()
}

// Limit reads immutable configuration — not guarded, methods may hand
// it out and outsiders may not reach it anyway.
func (c *Corpus) Limit() int { return c.limit }

func useRaw(c *Corpus) {
	_ = c.labels[1] // want `raw access to Corpus\.labels outside the Corpus's locked API`
	c.mu.Lock()     // want `raw access to Corpus\.mu outside the Corpus's locked API`
	c.mu.Unlock()   // want `raw access to Corpus\.mu outside the Corpus's locked API`
}

func useRawSuppressed(c *Corpus) {
	_ = c.labels[1] //cdtlint:ignore corpusshare test fixture proves suppression works
}

func copyParam(c Corpus) {} // want `parameter holds a Corpus by value`

func copyDeref(c *Corpus) {
	d := *c // want `dereferencing copies the Corpus by value`
	_ = d
}

func copyResult() (Corpus, error) { // want `result holds a Corpus by value`
	return Corpus{}, nil
}

type holder struct {
	c Corpus // want `struct field holds a Corpus by value`
}

type okHolder struct {
	c *Corpus
}

var pool []Corpus // want `variable holds a Corpus by value`

var okPool []*Corpus

func (c Corpus) valueReceiver() {} // want `method receiver holds a Corpus by value`

func okUse(c *Corpus) []string {
	return c.Get(1)
}
