// Package sge generates synthetic stand-ins for the paper's proprietary
// SGE datasets (Management and Exploitation Service of the Rangueil
// campus, Toulouse): daily calorie consumption from building heating
// sensors and hourly electricity consumption. The generators reproduce
// the documented structure — strong seasonal consumption profiles — and
// inject exactly the anomaly families the paper's experts describe in
// §4.3:
//
//   - negative peaks: impossible negative consumption from meter errors;
//   - positive peaks: overconsumption spikes;
//   - collective anomalies: several successive erratic readings caused by
//     meter-reading faults;
//   - constant anomalies: a stopped meter repeating one value.
//
// Everything is deterministic under the supplied seed.
package sge

import (
	"fmt"
	"math"
	"math/rand"

	"cdt/internal/datasets"
	"cdt/internal/timeseries"
)

// AnomalyKind names the injected anomaly families.
type AnomalyKind int

const (
	// NegativePeak is a single impossible negative reading.
	NegativePeak AnomalyKind = iota
	// PositivePeak is a single overconsumption spike.
	PositivePeak
	// Collective is a run of successive erratic readings.
	Collective
	// ConstantRun is a stopped meter repeating one value.
	ConstantRun
)

// String names the anomaly kind.
func (k AnomalyKind) String() string {
	switch k {
	case NegativePeak:
		return "negative-peak"
	case PositivePeak:
		return "positive-peak"
	case Collective:
		return "collective"
	case ConstantRun:
		return "constant-run"
	}
	return fmt.Sprintf("AnomalyKind(%d)", int(k))
}

// CalorieOptions sizes the calorie dataset. The paper's corpus is 25
// sensors × ~3.7 years of daily data (33536 points, 586 anomalies ≈
// 1.7%); the zero value generates a laptop-scale version with the same
// anomaly rate.
type CalorieOptions struct {
	// Sensors is the number of buildings (default 8; paper 25).
	Sensors int
	// Days per sensor (default 600; paper ~1341).
	Days int
	// AnomalyRate is the fraction of anomalous points (default 0.0175,
	// the paper's rate).
	AnomalyRate float64
	// Seed drives generation.
	Seed int64
}

func (o CalorieOptions) withDefaults() CalorieOptions {
	if o.Sensors <= 0 {
		o.Sensors = 8
	}
	if o.Days <= 0 {
		o.Days = 600
	}
	if o.AnomalyRate <= 0 {
		o.AnomalyRate = 0.0175
	}
	return o
}

// Calorie generates the synthetic calorie dataset.
func Calorie(opts CalorieOptions) *datasets.Dataset {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	d := &datasets.Dataset{Name: "SGE_Calorie"}
	for s := 0; s < opts.Sensors; s++ {
		base := 40 + rng.Float64()*80 // per-building base load
		amp := 0.5 + rng.Float64()*0.4
		phase := rng.Float64() * 2 * math.Pi
		values := make([]float64, opts.Days)
		for i := range values {
			day := float64(i)
			// Annual heating season + weekly workday pattern + noise.
			annual := 1 + amp*math.Cos(2*math.Pi*day/365+phase)
			weekly := 1.0
			if int(day)%7 >= 5 {
				weekly = 0.7 // weekend setback
			}
			noise := 1 + 0.05*rng.NormFloat64()
			values[i] = base * annual * weekly * noise
		}
		series := timeseries.NewLabeled(fmt.Sprintf("calorie-%02d", s), values, make([]bool, opts.Days))
		injectAnomalies(series, opts.AnomalyRate, base, rng)
		d.Series = append(d.Series, series)
	}
	return d
}

// ElectricityOptions sizes the electricity dataset. The paper's corpus is
// one sensor sampled hourly for 10 years (96074 points, 10343 anomalies ≈
// 10.8% of hours); the anomalies are *clustered events* — meter stops and
// reading faults spanning consecutive hours — not isolated points, which
// is what makes the paper's hour→day downsampling meaningful. The
// generator therefore injects whole events and DayEventRate controls the
// fraction of days touched by one.
type ElectricityOptions struct {
	// Hours of data (default 5 years; paper ~10 years).
	Hours int
	// DayEventRate is the target fraction of days containing an
	// anomalous event (default 0.04). Events cluster into multi-day
	// stretches (meter stops can last a week), mirroring how the SGE
	// corpus concentrates its 10.8%% of anomalous hours into long
	// collective episodes rather than isolated points.
	DayEventRate float64
	// Seed drives generation.
	Seed int64
}

func (o ElectricityOptions) withDefaults() ElectricityOptions {
	if o.Hours <= 0 {
		o.Hours = 5 * 365 * 24
	}
	if o.DayEventRate <= 0 {
		o.DayEventRate = 0.06
	}
	return o
}

// Electricity generates the synthetic hourly electricity dataset.
func Electricity(opts ElectricityOptions) *datasets.Dataset {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	base := 200.0
	values := make([]float64, opts.Hours)
	for i := range values {
		hour := float64(i % 24)
		day := float64(i / 24)
		daily := 1 + 0.4*math.Sin(2*math.Pi*(hour-6)/24) // evening peak
		weekly := 1.0
		if int(day)%7 >= 5 {
			weekly = 0.8
		}
		annual := 1 + 0.25*math.Cos(2*math.Pi*day/365)
		noise := 1 + 0.04*rng.NormFloat64()
		values[i] = base * daily * weekly * annual * noise
	}
	series := timeseries.NewLabeled("electricity-00", values, make([]bool, opts.Hours))
	injectHourlyEvents(series, opts.DayEventRate, rng)
	return &datasets.Dataset{Name: "SGE_Electricity", Series: []*timeseries.Series{series}}
}

// injectHourlyEvents plants clustered anomalous events into an hourly
// series until the target fraction of days is touched. Event families
// mirror the SGE expert taxonomy; corrupted values sit at *absolute*
// levels relative to the series' seasonal maximum (a stuck meter or a
// mis-read register does not scale with the season), which keeps the
// normalized magnitude of each anomaly family stable year-round.
func injectHourlyEvents(s *timeseries.Series, dayRate float64, rng *rand.Rand) {
	hours := s.Len()
	days := hours / 24
	maxV := s.Values[0]
	for _, v := range s.Values {
		if v > maxV {
			maxV = v
		}
	}
	targetDays := int(math.Round(dayRate * float64(days)))
	anomalousDays := func() int {
		n := 0
		for d := 0; d < days; d++ {
			for h := d * 24; h < (d+1)*24; h++ {
				if s.Anomalies[h] {
					n++
					break
				}
			}
		}
		return n
	}
	guard := 0
	for anomalousDays() < targetDays && guard < 50*days {
		guard++
		day := 1 + rng.Intn(days-2)
		start := day * 24
		if taken(s, start, start+23) {
			continue
		}
		switch AnomalyKind(rng.Intn(4)) {
		case PositivePeak:
			// Overconsumption pinned far above the all-time peak for half
			// a day to a full day: the daily mean is unmistakable.
			h0 := start + rng.Intn(8)
			span := 12 + rng.Intn(13)
			level := maxV * (1.3 + 0.3*rng.Float64())
			for h := h0; h < h0+span && h < hours; h++ {
				s.Values[h] = level * (1 + 0.05*rng.NormFloat64())
				s.Anomalies[h] = true
			}
		case NegativePeak:
			// Impossible negative readings dominating the day: the daily
			// mean goes negative, the paper's flagship anomaly.
			h0 := start + rng.Intn(8)
			span := 12 + rng.Intn(13)
			level := -maxV * (0.5 + 0.2*rng.Float64())
			for h := h0; h < h0+span && h < hours; h++ {
				s.Values[h] = level * (1 + 0.05*rng.NormFloat64())
				s.Anomalies[h] = true
			}
		case ConstantRun:
			// Meter stop: one to seven days frozen at one value.
			span := 24 * (1 + rng.Intn(7))
			if start+span >= hours {
				continue
			}
			frozen := s.Values[start]
			for h := start; h < start+span; h++ {
				s.Values[h] = frozen
				s.Anomalies[h] = true
			}
		case Collective:
			// Reading fault: daily means swinging between an impossible
			// high and an impossible low across two to four days.
			span := 24 * (2 + rng.Intn(3))
			if start+span >= hours {
				continue
			}
			hi := maxV * (1.2 + 0.2*rng.Float64())
			lo := -maxV * (0.4 + 0.2*rng.Float64())
			for h := start; h < start+span; h++ {
				level := hi
				if (h-start)/24%2 == 1 {
					level = lo
				}
				s.Values[h] = level * (1 + 0.05*rng.NormFloat64())
				s.Anomalies[h] = true
			}
		}
	}
}

// injectAnomalies plants the four SGE anomaly families into a daily
// series until the target share of points is anomalous. Spike levels are
// absolute (relative to the series' maximum) so their normalized
// magnitudes stay stable across seasons. Positions avoid the first/last
// two points (the pattern alphabet needs both neighbors) and never
// overlap an existing anomaly.
func injectAnomalies(s *timeseries.Series, rate float64, base float64, rng *rand.Rand) {
	n := s.Len()
	maxV := s.Values[0]
	for _, v := range s.Values {
		if v > maxV {
			maxV = v
		}
	}
	target := int(math.Round(rate * float64(n)))
	budgetGuard := 0
	for s.AnomalyCount() < target && budgetGuard < 100*n {
		budgetGuard++
		kind := AnomalyKind(rng.Intn(4))
		switch kind {
		case NegativePeak:
			i := 2 + rng.Intn(n-4)
			if taken(s, i, i) {
				continue
			}
			s.Values[i] = -maxV * (0.4 + 0.3*rng.Float64())
			s.Anomalies[i] = true
		case PositivePeak:
			i := 2 + rng.Intn(n-4)
			if taken(s, i, i) {
				continue
			}
			s.Values[i] = maxV * (1.3 + 0.4*rng.Float64())
			s.Anomalies[i] = true
		case Collective:
			length := 3 + rng.Intn(3)
			i := 2 + rng.Intn(n-4-length)
			if taken(s, i, i+length-1) {
				continue
			}
			for j := i; j < i+length; j++ {
				// Successive abnormal variations: alternating impossible
				// levels, the meter-reading fault signature.
				if (j-i)%2 == 0 {
					s.Values[j] = maxV * (1.2 + 0.3*rng.Float64())
				} else {
					s.Values[j] = -maxV * (0.3 + 0.3*rng.Float64())
				}
				s.Anomalies[j] = true
			}
		case ConstantRun:
			length := 4 + rng.Intn(4)
			i := 2 + rng.Intn(n-4-length)
			if taken(s, i, i+length-1) {
				continue
			}
			frozen := s.Values[i]
			for j := i; j < i+length; j++ {
				s.Values[j] = frozen
				s.Anomalies[j] = true
			}
		}
	}
}

// taken reports whether any point in [lo,hi] (with one point of margin on
// each side) is already anomalous.
func taken(s *timeseries.Series, lo, hi int) bool {
	for i := lo - 2; i <= hi+2; i++ {
		if i >= 0 && i < s.Len() && s.Anomalies[i] {
			return true
		}
	}
	return false
}
