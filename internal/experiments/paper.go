package experiments

// Reference values transcribed from the paper, printed next to measured
// values so every regenerated table shows paper-vs-reproduction at a
// glance. Absolute agreement is not expected — the datasets here are
// synthetic stand-ins (DESIGN.md §4) — but orderings and rough magnitudes
// should hold.

// PaperTable2 holds the optimal hyper-parameters of Table 2 as
// {F1ω, F1δ, F(h)ω, F(h)δ}.
var PaperTable2 = map[string][4]int{
	"SGE_Electricity": {27, 2, 27, 2},
	"SGE_Calorie":     {5, 4, 21, 1},
	"Yahoo_A1":        {27, 16, 25, 1},
	"Yahoo_A2":        {17, 2, 17, 1},
	"Yahoo_A3":        {29, 12, 17, 1},
	"Yahoo_A4":        {25, 8, 21, 1},
}

// PaperTable3 holds Table 3's F1 scores as {CDT, PBAD, PAV, MP}.
var PaperTable3 = map[string][4]float64{
	"SGE_Electricity": {0.76, 0.70, 0.74, 0.70},
	"SGE_Calorie":     {0.85, 0.80, 0.88, 0.91},
	"Yahoo_A1":        {0.92, 0.72, 0.75, 0.76},
	"Yahoo_A2":        {0.99, 0.65, 0.99, 0.76},
	"Yahoo_A3":        {1.00, 0.73, 0.99, 0.70},
	"Yahoo_A4":        {0.98, 0.75, 0.93, 0.96},
}

// PaperTable3Average holds Table 3's average row {CDT, PBAD, PAV, MP}.
var PaperTable3Average = [4]float64{0.92, 0.72, 0.88, 0.80}

// PaperTable4 holds Table 4 as three metric blocks of {CDT, PART, JRip}.
var PaperTable4 = map[string]struct {
	F1, Q, FH [3]float64
}{
	"SGE_Electricity": {F1: [3]float64{0.76, 0.71, 0.72}, Q: [3]float64{0.67, 0.67, 0.70}, FH: [3]float64{0.51, 0.48, 0.50}},
	"SGE_Calorie":     {F1: [3]float64{0.99, 0.80, 0.79}, Q: [3]float64{0.61, 0.65, 0.69}, FH: [3]float64{0.60, 0.52, 0.54}},
	"Yahoo_A1":        {F1: [3]float64{0.91, 0.70, 0.69}, Q: [3]float64{0.48, 0.50, 0.56}, FH: [3]float64{0.43, 0.35, 0.39}},
	"Yahoo_A2":        {F1: [3]float64{0.99, 0.80, 0.77}, Q: [3]float64{0.69, 0.68, 0.65}, FH: [3]float64{0.68, 0.54, 0.50}},
	"Yahoo_A3":        {F1: [3]float64{0.98, 0.78, 0.71}, Q: [3]float64{0.77, 0.69, 0.70}, FH: [3]float64{0.75, 0.54, 0.50}},
	"Yahoo_A4":        {F1: [3]float64{0.97, 0.73, 0.75}, Q: [3]float64{0.70, 0.70, 0.68}, FH: [3]float64{0.68, 0.51, 0.51}},
}

// PaperTable4Average holds Table 4's average rows {CDT, PART, JRip}.
var PaperTable4Average = struct {
	F1, Q, FH [3]float64
}{
	F1: [3]float64{0.93, 0.75, 0.74},
	Q:  [3]float64{0.65, 0.64, 0.64},
	FH: [3]float64{0.61, 0.49, 0.49},
}

// PaperFigure3 summarizes Figure 3's rule-count ranges per method.
var PaperFigure3 = map[string][2]int{
	"CDT":  {5, 16},
	"JRip": {15, 30},
	"PART": {24, 142},
}
