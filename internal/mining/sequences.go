package mining

import (
	"fmt"
	"sort"
)

// FrequentSequence is a mined sequential pattern with its support: the
// number of input sequences containing the pattern as a (gapped)
// subsequence.
type FrequentSequence struct {
	Seq     []int
	Support int
}

// MineClosedSequences mines frequent sequential patterns from sequences
// with PrefixSpan: patterns of length <= maxLen (0 = unlimited) occurring
// as subsequences in at least minSupport input sequences, then filtered to
// closed patterns (no super-sequence with equal support).
func MineClosedSequences(sequences [][]int, minSupport, maxLen int) ([]FrequentSequence, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("mining: minSupport %d, want >= 1", minSupport)
	}
	// A projected database entry: sequence index + start offset of the
	// remaining suffix.
	type proj struct {
		seq, pos int
	}
	var all []FrequentSequence
	var mine func(prefix []int, db []proj)
	mine = func(prefix []int, db []proj) {
		if maxLen > 0 && len(prefix) >= maxLen {
			return
		}
		// Count each item's support in the projected database (one count
		// per distinct source sequence).
		counts := make(map[int]int)
		lastSeen := make(map[int]int)
		for _, p := range db {
			s := sequences[p.seq]
			for _, v := range s[p.pos:] {
				if last, ok := lastSeen[v]; !ok || last != p.seq+1 {
					counts[v]++
					lastSeen[v] = p.seq + 1
				}
			}
		}
		var frequent []int
		for v, c := range counts {
			if c >= minSupport {
				frequent = append(frequent, v)
			}
		}
		sort.Ints(frequent)
		for _, v := range frequent {
			next := append(append([]int(nil), prefix...), v)
			// Project: first occurrence of v in each suffix.
			var ndb []proj
			for _, p := range db {
				s := sequences[p.seq]
				for i := p.pos; i < len(s); i++ {
					if s[i] == v {
						ndb = append(ndb, proj{p.seq, i + 1})
						break
					}
				}
			}
			all = append(all, FrequentSequence{Seq: next, Support: counts[v]})
			mine(next, ndb)
		}
	}
	root := make([]proj, len(sequences))
	for i := range sequences {
		root[i] = proj{i, 0}
	}
	mine(nil, root)

	// Closedness filter.
	var result []FrequentSequence
	for i, fs := range all {
		closed := true
		for j, other := range all {
			if i == j || len(other.Seq) <= len(fs.Seq) || other.Support != fs.Support {
				continue
			}
			if isSubsequence(fs.Seq, other.Seq) {
				closed = false
				break
			}
		}
		if closed {
			result = append(result, fs)
		}
	}
	sort.Slice(result, func(i, j int) bool { return lessSeq(result[i].Seq, result[j].Seq) })
	return result, nil
}

// isSubsequence reports whether needle occurs in order (gaps allowed) in
// haystack.
func isSubsequence(needle, haystack []int) bool {
	if len(needle) == 0 {
		return true
	}
	j := 0
	for _, v := range haystack {
		if v == needle[j] {
			j++
			if j == len(needle) {
				return true
			}
		}
	}
	return false
}

// ContainsSequence reports whether pattern occurs as a subsequence of seq
// (exported for PBAD's embedding step).
func ContainsSequence(pattern, seq []int) bool { return isSubsequence(pattern, seq) }

// LongestCommonSubsequence returns the LCS length of a and b, used for
// PBAD's weighted (partial) sequence matches.
func LongestCommonSubsequence(a, b []int) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func lessSeq(a, b []int) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
