package yahoo

import (
	"math"
	"testing"

	"cdt/internal/datasets"
)

func families() map[string]func(Options) *datasets.Dataset {
	return map[string]func(Options) *datasets.Dataset{
		"A1": A1, "A2": A2, "A3": A3, "A4": A4,
	}
}

func TestFamiliesShape(t *testing.T) {
	for name, gen := range families() {
		d := gen(Options{Files: 4, Points: 300, Seed: 1})
		if len(d.Series) != 4 {
			t.Errorf("%s: %d series", name, len(d.Series))
		}
		for _, s := range d.Series {
			if s.Len() != 300 {
				t.Errorf("%s/%s: %d points", name, s.Name, s.Len())
			}
			if !s.Labeled() {
				t.Errorf("%s/%s unlabeled", name, s.Name)
			}
		}
		if d.TotalAnomalies() == 0 {
			t.Errorf("%s: no anomalies", name)
		}
	}
}

func TestFamiliesDeterministic(t *testing.T) {
	for name, gen := range families() {
		a := gen(Options{Seed: 5})
		b := gen(Options{Seed: 5})
		for i := range a.Series {
			for j := range a.Series[i].Values {
				if a.Series[i].Values[j] != b.Series[i].Values[j] {
					t.Fatalf("%s: same seed, different values", name)
				}
				if a.Series[i].Anomalies[j] != b.Series[i].Anomalies[j] {
					t.Fatalf("%s: same seed, different anomalies", name)
				}
			}
		}
	}
}

func TestAnomalyRatesFollowDefaultsAndOverrides(t *testing.T) {
	tests := []struct {
		name string
		gen  func(Options) *datasets.Dataset
		want float64 // boosted laptop-scale default
	}{
		{"A1", A1, 0.02},
		{"A2", A2, 0.01},
		{"A3", A3, 0.012},
		{"A4", A4, 0.012},
	}
	for _, tc := range tests {
		d := tc.gen(Options{Files: 10, Points: 1000, Seed: 2})
		rate := d.AnomalyRate()
		// Small corpora are granular; allow slack around the target.
		if rate < tc.want/2 || rate > tc.want*2.5 {
			t.Errorf("%s default rate = %v, want ≈ %v", tc.name, rate, tc.want)
		}
		// The paper-scale rate must be honoured when passed explicitly.
		d = tc.gen(Options{Files: 10, Points: 1000, Seed: 2, AnomalyRate: 0.005})
		rate = d.AnomalyRate()
		if rate < 0.002 || rate > 0.012 {
			t.Errorf("%s explicit rate = %v, want ≈ 0.005", tc.name, rate)
		}
	}
}

func TestA2OutliersAreExtreme(t *testing.T) {
	d := A2(Options{Files: 3, Points: 600, Seed: 3})
	for _, s := range d.Series {
		// Outliers are additive point anomalies: they must deviate from
		// the local interpolation of their neighbors far more than normal
		// points do.
		var normalDev, nNormal float64
		deviation := func(i int) float64 {
			return math.Abs(s.Values[i] - (s.Values[i-1]+s.Values[i+1])/2)
		}
		for i := 1; i < s.Len()-1; i++ {
			if !s.Anomalies[i-1] && !s.Anomalies[i] && !s.Anomalies[i+1] {
				normalDev += deviation(i)
				nNormal++
			}
		}
		normalDev /= nNormal
		for i := 1; i < s.Len()-1; i++ {
			if s.Anomalies[i] && deviation(i) < 4*normalDev {
				t.Errorf("%s[%d]: labeled outlier deviates %v, normal points %v", s.Name, i, deviation(i), normalDev)
			}
		}
	}
}

func TestA4HasChangePoints(t *testing.T) {
	// A4 series must contain at least one labeled change point whose
	// post-shift level differs; A3 must not contain level shifts of that
	// magnitude (its anomalies are point outliers only).
	d := A4(Options{Files: 6, Points: 400, Seed: 4})
	foundShift := false
	for _, s := range d.Series {
		for i := 10; i < s.Len()-10; i++ {
			if !s.Anomalies[i] {
				continue
			}
			before := mean(s.Values[i-8 : i-2])
			after := mean(s.Values[i+2 : i+8])
			if math.Abs(after-before) > 0.15*math.Abs(before) {
				foundShift = true
			}
		}
	}
	if !foundShift {
		t.Error("A4 generated no level shifts")
	}
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func TestDefaultsApplied(t *testing.T) {
	d := A1(Options{Seed: 1})
	if len(d.Series) != 8 || d.Series[0].Len() != 600 {
		t.Errorf("defaults not applied: %d series × %d points", len(d.Series), d.Series[0].Len())
	}
}

func TestNamesDistinct(t *testing.T) {
	d := A3(Options{Files: 5, Seed: 1})
	seen := map[string]bool{}
	for _, s := range d.Series {
		if seen[s.Name] {
			t.Errorf("duplicate series name %q", s.Name)
		}
		seen[s.Name] = true
	}
}
