// Package evalmetrics provides the binary-classification metrics the paper
// evaluates with (§4.1): precision, recall, the F1 score, plus the
// average-rank aggregation used in the comparison tables.
package evalmetrics

import (
	"math"
	"sort"
)

// Confusion is a binary confusion matrix with "anomaly" as the positive
// class.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add accumulates one prediction into the matrix.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// FromBools builds a matrix from aligned prediction/truth slices. The
// slices must have equal length.
func FromBools(predicted, actual []bool) Confusion {
	var c Confusion
	for i := range predicted {
		c.Add(predicted[i], actual[i])
	}
	return c
}

// Total returns the number of accumulated predictions.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision returns TP/(TP+FP), or 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no actual positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or 0 when both
// are 0.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN)/total, or 0 on an empty matrix.
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// AverageRanks computes, for each method (column), its rank averaged over
// datasets (rows), with rank 1 for the best (highest) score and tied
// scores sharing the mean of their rank positions — the aggregation of
// Tables 3 and 4. scores[d][m] is method m's score on dataset d. The
// result has one average rank per method.
func AverageRanks(scores [][]float64) []float64 {
	if len(scores) == 0 {
		return nil
	}
	m := len(scores[0])
	sums := make([]float64, m)
	for _, row := range scores {
		type entry struct {
			idx   int
			score float64
		}
		entries := make([]entry, len(row))
		for i, s := range row {
			entries[i] = entry{i, s}
		}
		sort.SliceStable(entries, func(a, b int) bool { return entries[a].score > entries[b].score })
		for i := 0; i < len(entries); {
			j := i
			for j+1 < len(entries) && entries[j+1].score == entries[i].score {
				j++
			}
			// positions i..j tie: mean rank = (i+j)/2 + 1.
			rank := float64(i+j)/2 + 1
			for k := i; k <= j; k++ {
				sums[entries[k].idx] += rank
			}
			i = j + 1
		}
	}
	for i := range sums {
		sums[i] /= float64(len(scores))
	}
	return sums
}

// ThresholdByQuantile returns the score threshold such that roughly the
// top `contamination` fraction of scores exceed it — the fair operating
// point used to binarize the unsupervised baselines' anomaly scores
// (higher score = more anomalous). contamination is clamped to (0,1].
func ThresholdByQuantile(scores []float64, contamination float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	if contamination <= 0 {
		contamination = 1.0 / float64(len(scores)+1)
	}
	if contamination > 1 {
		contamination = 1
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	// Flag the k highest scores: the threshold is the (k+1)-th highest,
	// so exactly the top k exceed it when scores are distinct.
	k := int(math.Round(float64(len(sorted)) * contamination))
	idx := len(sorted) - k - 1
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// BinarizeTop returns flags marking scores strictly above the
// contamination-quantile threshold.
func BinarizeTop(scores []float64, contamination float64) []bool {
	th := ThresholdByQuantile(scores, contamination)
	out := make([]bool, len(scores))
	for i, s := range scores {
		out[i] = s > th
	}
	return out
}
