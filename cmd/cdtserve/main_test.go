package main

import "testing"

func TestNewLogger(t *testing.T) {
	for _, tc := range []struct {
		format, level string
		ok            bool
	}{
		{"text", "info", true},
		{"json", "debug", true},
		{"text", "WARN", true}, // slog.Level.UnmarshalText is case-insensitive
		{"json", "error", true},
		{"yaml", "info", false},
		{"text", "loud", false},
	} {
		l, err := newLogger(tc.format, tc.level)
		if tc.ok && (err != nil || l == nil) {
			t.Errorf("newLogger(%q, %q): unexpected error %v", tc.format, tc.level, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("newLogger(%q, %q): expected error", tc.format, tc.level)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{},                                     // neither -models nor -store
		{"-models", "x", "-store", "y"},        // both backends
		{"-retrain-data", "d", "-models", "x"}, // retraining without a store
		{"-models", "x", "-log-format", "yaml"},
		{"-models", "x", "-log-level", "loud"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
