package immutview_test

import (
	"testing"

	"cdt/tools/analysistest"
	"cdt/tools/analyzers/immutview"
)

// TestRealAPI checks the analyzer against the real cdt Corpus API using
// the default Views set.
func TestRealAPI(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), immutview.Analyzer, "immut")
}

// TestLocalFixtures registers testdata-local accessors and exercises the
// tracking machinery (tuple returns, nesting, ranging, cleansing).
func TestLocalFixtures(t *testing.T) {
	for _, name := range []string{"(*immutlocal.Box).View", "immutlocal.MakeView", "immutlocal.Rec"} {
		immutview.Views[name] = true
		defer delete(immutview.Views, name)
	}
	analysistest.Run(t, analysistest.TestData(), immutview.Analyzer, "immutlocal")
}
