package experiments

import (
	"fmt"

	cdt "cdt"
	"cdt/internal/c45"
	"cdt/internal/evalmetrics"
	"cdt/internal/jrip"
	"cdt/internal/part"
	"cdt/internal/pattern"
)

// CVResult is one learner's k-fold cross-validation outcome.
type CVResult struct {
	Method   string
	F1       float64
	Q        float64
	FH       float64
	NumRules float64 // mean rules per fold
}

// RuleLearnersCV evaluates PART and JRip with stratified k-fold
// cross-validation over a dataset's pooled windows — the paper's §4.3
// protocol ("we use 10-fold cross validation to test and evaluate the
// PART and JRip with the standard default setting of WEKA"). The main
// Table 4 instead uses the shared chronological split so all three
// methods face identical train/test data; this function exists to check
// that the protocol choice does not change the ordering.
func (s *Suite) RuleLearnersCV(name string, folds int) ([]CVResult, error) {
	p, err := s.Dataset(name)
	if err != nil {
		return nil, err
	}
	res, err := s.Tuned(name, cdt.ObjectiveFH)
	if err != nil {
		return nil, err
	}
	opts := res.Best
	fullCorpus, err := p.FullCorpus()
	if err != nil {
		return nil, err
	}
	full, _, err := nominalDataset(fullCorpus, opts)
	if err != nil {
		return nil, err
	}
	positive := make([]bool, len(full.Instances))
	for i, inst := range full.Instances {
		positive[i] = inst.Class == 1
	}
	foldIdx, err := evalmetrics.StratifiedKFoldIndices(positive, folds, s.Config.Seed)
	if err != nil {
		return nil, err
	}
	maxL := pattern.Config{Delta: opts.Delta}.AlphabetSize()

	type agg struct {
		f1, q, fh, rules float64
	}
	sums := map[string]*agg{"PART": {}, "JRip": {}}
	for holdout := range foldIdx {
		trainIdx, testIdx := evalmetrics.TrainTestFromFolds(foldIdx, holdout)
		trainDS := subset(full, trainIdx)
		testDS := subset(full, testIdx)

		partCls, err := part.Learn(trainDS, part.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: PART CV on %s: %w", name, err)
		}
		f1, q := evaluateRuleList(partRulesOf(partCls), partCls.DefaultClass, testDS, opts.Omega, maxL)
		sums["PART"].f1 += f1
		sums["PART"].q += q
		sums["PART"].fh += f1 * q
		sums["PART"].rules += float64(partCls.NumRules())

		jripCls, err := jrip.Learn(trainDS, jrip.Options{Seed: s.Config.Seed + int64(holdout)})
		if err != nil {
			return nil, fmt.Errorf("experiments: JRip CV on %s: %w", name, err)
		}
		f1, q = evaluateRuleList(jripRulesOf(jripCls), jripCls.DefaultClass, testDS, opts.Omega, maxL)
		sums["JRip"].f1 += f1
		sums["JRip"].q += q
		sums["JRip"].fh += f1 * q
		sums["JRip"].rules += float64(jripCls.NumRules())
	}
	k := float64(len(foldIdx))
	var out []CVResult
	for _, method := range []string{"PART", "JRip"} {
		a := sums[method]
		out = append(out, CVResult{
			Method:   method,
			F1:       a.f1 / k,
			Q:        a.q / k,
			FH:       a.fh / k,
			NumRules: a.rules / k,
		})
	}
	return out, nil
}

// subset builds a dataset view restricted to the given instance indices.
func subset(ds *c45.Dataset, indices []int) *c45.Dataset {
	out := &c45.Dataset{
		AttrNames:  ds.AttrNames,
		AttrCard:   ds.AttrCard,
		NumClasses: ds.NumClasses,
		Instances:  make([]c45.Instance, 0, len(indices)),
	}
	for _, i := range indices {
		out.Instances = append(out.Instances, ds.Instances[i])
	}
	return out
}

func partRulesOf(cls *part.Classifier) []genericRule {
	rules := make([]genericRule, len(cls.Rules))
	for i, r := range cls.Rules {
		rules[i] = genericRule{
			conds:   len(r.Conditions),
			uniq:    uniqueConditionValues(r.Conditions),
			class:   r.Class,
			matches: r.Matches,
		}
	}
	return rules
}

func jripRulesOf(cls *jrip.Classifier) []genericRule {
	rules := make([]genericRule, len(cls.Rules))
	for i, r := range cls.Rules {
		rules[i] = genericRule{
			conds:   len(r.Conditions),
			uniq:    uniqueConditionValues(r.Conditions),
			class:   r.Class,
			matches: r.Matches,
		}
	}
	return rules
}

// FormatCV renders the cross-validation supplement for one dataset.
func FormatCV(name string, rows []CVResult) string {
	header := []string{"Method", "F1", "Q", "F(h)", "rules (mean)"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{
			r.Method,
			fmt.Sprintf("%.2f", r.F1),
			fmt.Sprintf("%.2f", r.Q),
			fmt.Sprintf("%.2f", r.FH),
			fmt.Sprintf("%.1f", r.NumRules),
		})
	}
	return fmt.Sprintf("Rule learners under stratified 10-fold CV on %s (the paper's §4.3 protocol)\n%s",
		name, FormatTable(header, body))
}
