// Package immut exercises immutview against the real cdt API: views
// handed out by Corpus.Observations are shared cache entries and must
// not be written through; clones are owned and may be mutated freely.
package immut

import (
	"slices"
	"sort"

	"cdt"
)

func direct(c *cdt.Corpus, opts cdt.Options) {
	v, _ := c.Observations(opts)
	v[0] = cdt.Observation{}         // want `write through shared v view`
	v[1].Start = 9                   // want `field store into shared`
	v = append(v, cdt.Observation{}) // want `append into shared v view`
	_ = v
}

func throughSubslice(c *cdt.Corpus, opts cdt.Options) {
	v, _ := c.Observations(opts)
	w := v[1:]
	w[0] = cdt.Observation{} // want `write through shared w view`
}

func sorted(c *cdt.Corpus, opts cdt.Options) {
	v, _ := c.Observations(opts)
	sort.Slice(v, func(i, j int) bool { return v[i].Start < v[j].Start }) // want `sort.Slice reorders shared v view`
	slices.Reverse(v)                                                     // want `slices.Reverse reorders shared v view`
}

func copied(c *cdt.Corpus, opts cdt.Options) {
	v, _ := c.Observations(opts)
	copy(v, make([]cdt.Observation, 1)) // want `copy into shared v view`
}

// cloneFirst is the sanctioned pattern: mutating an owned copy of a view
// must not be reported.
func cloneFirst(c *cdt.Corpus, opts cdt.Options) {
	v, _ := c.Observations(opts)
	own := slices.Clone(v)
	own[0] = cdt.Observation{}
	sort.Slice(own, func(i, j int) bool { return own[i].Start < own[j].Start })
	own = append(own, cdt.Observation{})

	legacy := append([]cdt.Observation(nil), v...)
	legacy[0] = cdt.Observation{}
	_ = legacy
}

// reassigned shows cleansing: once the variable holds a clone, later
// writes are fine.
func reassigned(c *cdt.Corpus, opts cdt.Options) {
	v, _ := c.Observations(opts)
	v = slices.Clone(v)
	v[0] = cdt.Observation{}
}

// unrelated slices are never reported.
func unrelated() {
	s := make([]int, 4)
	s[0] = 1
	s = append(s, 2)
	sort.Ints(s)
}

// structCopy: a struct copied out of a view element owns its scalar
// fields, but its slice fields still alias the shared backing.
func structCopy(c *cdt.Corpus, opts cdt.Options) {
	v, _ := c.Observations(opts)
	o := v[0]
	o.Start = 9                                               // owned scalar field of the copy
	o.Labels[0] = cdt.Label{}                                 // want `write through shared o.Labels view`
	o.Labels = nil                                            // rebinding the field is fine
	sort.Slice(o.Labels, func(i, j int) bool { return true }) // want `sort.Slice reorders shared o.Labels view`
}

// rangeStructCopy: the same aliasing applies to range values.
func rangeStructCopy(c *cdt.Corpus, opts cdt.Options) {
	v, _ := c.Observations(opts)
	for _, o := range v {
		o.Labels[0] = cdt.Label{} // want `write through shared o.Labels view`
	}
}

type holder struct {
	obs    []cdt.Observation
	labels []cdt.Label
	n      int
}

// fieldStore: a view stored into a struct field stays a view when read
// back through that field.
func fieldStore(c *cdt.Corpus, opts cdt.Options) {
	var h holder
	h.obs, _ = c.Observations(opts)
	h.n = 3                                  // unrelated field store on our own struct: fine
	h.obs[0] = cdt.Observation{}             // want `write through shared h.obs view`
	h.obs = append(h.obs, cdt.Observation{}) // want `append into shared h.obs view`
	copy(h.labels, []cdt.Label{})            // never assigned a view: fine
	_ = h
}
