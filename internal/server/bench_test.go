package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// BenchmarkServerBatchDetect measures end-to-end serving throughput
// (series scored per second) through the real HTTP handler: JSON decode,
// worker-pool fan-out, detection with rule rendering, JSON encode. This
// is the serving-path baseline future perf PRs compare against.
func BenchmarkServerBatchDetect(b *testing.B) {
	_, ts, _ := newTestServer(b, Config{})

	const seriesPerRequest = 8
	req := batchRequest{}
	for i := 0; i < seriesPerRequest; i++ {
		req.Series = append(req.Series, seriesPayload{
			Name:   "s",
			Values: spiky("s", 300, []int{120, 240}, int64(i)).Values,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	url := ts.URL + "/models/spikes/detect"

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out batchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || len(out.Results) != seriesPerRequest {
			b.Fatalf("status %d, %d results", resp.StatusCode, len(out.Results))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*seriesPerRequest)/b.Elapsed().Seconds(), "series/sec")
}
