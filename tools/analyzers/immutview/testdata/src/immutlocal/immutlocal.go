// Package immutlocal exercises immutview's tracking machinery against
// local fixtures registered into Views by the test: tuple returns,
// nested element propagation, and range-value propagation.
package immutlocal

type Box struct{}

// View is registered as a view accessor by the test.
func (b *Box) View() []int { return nil }

// MakeView mimics the (view, error) shape of pattern.Config.LabelSeries.
func MakeView() ([][]float64, error) { return nil, nil }

func tupleReturn() {
	ls, err := MakeView()
	_ = err
	ls[0] = nil // want `write through shared ls view`
}

func nested() {
	ls, _ := MakeView()
	row := ls[0]
	row[0] = 1 // want `write through shared row view`
}

func rangeValue() {
	ls, _ := MakeView()
	for _, row := range ls {
		row[0] = 1 // want `write through shared row view`
	}
}

func direct(b *Box) {
	b.View()[0] = 1 // want `write through shared`
	v := b.View()
	v[2]++ // want `write through shared v view`
}

// ownCopies is the sanctioned pattern: an explicit make+copy clone is
// owned and never reported.
func ownCopies(b *Box) {
	v := b.View()
	own := make([]int, len(v))
	copy(own, v)
	own[0] = 1
}

type rec struct {
	Rows [][]float64
	ID   int
}

// Rec is registered as a view accessor by the test; its struct elements
// carry slice fields that alias shared storage.
func Rec() []rec { return nil }

// structElem: element copies keep their slice fields tracked, while
// scalar fields and field rebinding stay writable.
func structElem() {
	rs := Rec()
	r := rs[0]
	r.ID = 7
	r.Rows[0] = nil // want `write through shared r.Rows view`
	r.Rows = nil
	for _, e := range rs {
		e.Rows[1] = nil // want `write through shared e.Rows view`
	}
}

type sink struct{ rows [][]float64 }

// fieldStore: views assigned into struct fields are tracked through the
// field selector, conservatively without cleansing.
func fieldStore() {
	var s sink
	ls, _ := MakeView()
	s.rows = ls
	s.rows[0] = nil // want `write through shared s.rows view`
}
