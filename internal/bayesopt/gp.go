package bayesopt

import "math"

// gp is a Gaussian-process regressor with a squared-exponential (RBF)
// kernel over points normalized to the unit hypercube. It is the
// surrogate model of the Bayesian optimizer.
type gp struct {
	xs     [][]float64 // training inputs, normalized
	alpha  []float64   // (K+σ²I)⁻¹ y (centered)
	chol   []float64   // Cholesky factor of K+σ²I
	mean   float64     // empirical mean subtracted from targets
	ls     float64     // kernel length scale
	sigmaF float64     // signal standard deviation
	noise  float64     // observation noise standard deviation
}

// kernel evaluates the RBF kernel σf²·exp(−‖a−b‖²/(2ℓ²)).
func (g *gp) kernel(a, b []float64) float64 {
	d2 := 0.0
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return g.sigmaF * g.sigmaF * math.Exp(-d2/(2*g.ls*g.ls))
}

// fitGP fits the surrogate to normalized inputs xs and targets ys. The
// signal variance is set from the target variance and the noise floor
// grows with jitter retries until the kernel matrix factorizes.
func fitGP(xs [][]float64, ys []float64, lengthScale, noise float64) *gp {
	n := len(xs)
	g := &gp{xs: xs, ls: lengthScale, noise: noise}
	// Center targets and scale the kernel to their spread.
	sum := 0.0
	for _, y := range ys {
		sum += y
	}
	g.mean = sum / float64(n)
	variance := 0.0
	for _, y := range ys {
		d := y - g.mean
		variance += d * d
	}
	variance /= float64(n)
	g.sigmaF = math.Sqrt(variance)
	if g.sigmaF < 1e-6 {
		g.sigmaF = 1e-6
	}
	centered := make([]float64, n)
	for i, y := range ys {
		centered[i] = y - g.mean
	}
	for jitter := noise * noise; ; jitter *= 10 {
		if jitter == 0 {
			jitter = 1e-10
		}
		k := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := g.kernel(xs[i], xs[j])
				k[i*n+j] = v
				k[j*n+i] = v
			}
			k[i*n+i] += jitter
		}
		l, err := cholesky(k, n)
		if err != nil {
			if jitter > 1e3 {
				// Pathological targets; fall back to a diagonal model.
				g.chol = nil
				g.alpha = centered
				return g
			}
			continue
		}
		g.chol = l
		g.alpha = solveUpperT(l, n, solveLower(l, n, centered))
		return g
	}
}

// predict returns the posterior mean and standard deviation at x
// (normalized coordinates).
func (g *gp) predict(x []float64) (mu, sigma float64) {
	n := len(g.xs)
	if g.chol == nil {
		// Degenerate fallback: prior only.
		return g.mean, g.sigmaF
	}
	kx := make([]float64, n)
	for i := range g.xs {
		kx[i] = g.kernel(x, g.xs[i])
	}
	mu = g.mean
	for i := range kx {
		mu += kx[i] * g.alpha[i]
	}
	v := solveLower(g.chol, n, kx)
	var kxKinvKx float64
	for _, vi := range v {
		kxKinvKx += vi * vi
	}
	variance := g.kernel(x, x) - kxKinvKx
	if variance < 0 {
		variance = 0
	}
	return mu, math.Sqrt(variance)
}

// logMarginalLikelihood returns log p(y|X) of the fitted GP (up to the
// shared constant −n/2·log 2π, which cancels when comparing length
// scales): −½ yᵀα − Σ log L_ii.
func (g *gp) logMarginalLikelihood(ys []float64) float64 {
	if g.chol == nil {
		return math.Inf(-1)
	}
	n := len(g.xs)
	fit := 0.0
	for i := 0; i < n; i++ {
		fit += (ys[i] - g.mean) * g.alpha[i]
	}
	logDet := 0.0
	for i := 0; i < n; i++ {
		logDet += math.Log(g.chol[i*n+i])
	}
	return -0.5*fit - logDet
}

// fitGPAuto fits the surrogate trying several length scales and keeping
// the one with the highest log marginal likelihood — cheap model
// selection that adapts the kernel to however smooth the objective
// happens to be.
func fitGPAuto(xs [][]float64, ys []float64, noise float64) *gp {
	candidates := []float64{0.05, 0.1, 0.2, 0.4, 0.8}
	var best *gp
	bestLML := math.Inf(-1)
	for _, ls := range candidates {
		g := fitGP(xs, ys, ls, noise)
		if lml := g.logMarginalLikelihood(ys); lml > bestLML {
			bestLML = lml
			best = g
		}
	}
	return best
}

// upperConfidenceBound scores a cell optimistically: μ(x) + κ·σ(x).
func (g *gp) upperConfidenceBound(x []float64, kappa float64) float64 {
	mu, sigma := g.predict(x)
	return mu + kappa*sigma
}

// expectedImprovement computes EI(x) over the current best observed value
// with exploration margin xi.
func (g *gp) expectedImprovement(x []float64, best, xi float64) float64 {
	mu, sigma := g.predict(x)
	if sigma < 1e-12 {
		return 0
	}
	z := (mu - best - xi) / sigma
	return (mu-best-xi)*normCDF(z) + sigma*normPDF(z)
}
