package datasets

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary text to the CSV reader: it must never
// panic, and anything it accepts must survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("value,is_anomaly\n1,0\n2,1\n")
	f.Add("value\n1\n")
	f.Add("")
	f.Add("1,2,3\n")
	f.Add("nan,0\n")
	f.Add("1e308,1\n-1e308,0\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadCSV(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, s); err != nil {
			t.Fatalf("accepted series failed to write: %v", err)
		}
		back, err := ReadCSV(&buf, "fuzz2")
		if err != nil {
			t.Fatalf("written series failed to read: %v", err)
		}
		if back.Len() != s.Len() {
			t.Fatalf("round trip changed length %d -> %d", s.Len(), back.Len())
		}
	})
}
