module cdt/tools

go 1.23
