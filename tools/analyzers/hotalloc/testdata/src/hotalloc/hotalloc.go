// Package hotalloc is lint-test fodder for the hotalloc analyzer:
// functions marked //cdtlint:hotpath must not allocate, hotness
// propagates through calls, and the scratch-reuse idioms stay clean.
package hotalloc

import (
	"fmt"
	"strconv"
)

type sink struct {
	buf []byte
	m   map[int]int
	tmp []int
}

var global []int

// hotBody exercises every flagged allocation shape inside a whole-body
// hot function, interleaved with the exempt reuse idioms.
//
//cdtlint:hotpath
func hotBody(s *sink, dst []byte, v int) []byte {
	x := make([]int, 4) // want `make allocates on a hot path`
	_ = x
	p := new(int) // want `new allocates on a hot path`
	_ = p
	l := []int{1, 2} // want `slice composite literal allocates on a hot path`
	_ = l
	mm := map[int]int{} // want `map composite literal allocates on a hot path`
	_ = mm
	pt := &sink{} // want `&-literal escapes to the heap on a hot path`
	_ = pt
	go work()      // want `go statement on a hot path`
	f := func() {} // want `func literal allocates a closure on a hot path`
	f()
	y := append(s.tmp, v) // want `append into a fresh slice grows on a hot path`
	_ = y
	str := string(dst) // want `string/\[\]byte conversion copies on a hot path`
	_ = str
	raw := []byte("x") // want `string/\[\]byte conversion copies on a hot path`
	_ = raw
	_ = fmt.Sprintf("%d", v) // want `fmt\.Sprintf allocates on a hot path`
	_ = strconv.Itoa(v)      // want `strconv\.Itoa returns a fresh string on a hot path`

	global = append(global, v)      // exempt: self-append
	s.buf = append(s.buf, byte(v))  // exempt: self-append
	dst = append(dst, byte(v))      // exempt: self-append to parameter
	out := append(dst[:0], byte(v)) // exempt: reslice reuses capacity
	dst = strconv.AppendInt(dst, int64(v), 10)
	return out
}

// work is reached from hotBody's go statement, so it is hot too and
// must stay alloc-free.
func work() {}

// lazy init under a nil guard pays once, not per call: exempt.
//
//cdtlint:hotpath
func (s *sink) lazy(k int) {
	if s.m == nil {
		s.m = make(map[int]int)
	}
	s.m[k] = k
}

// hotLoops is loops-only hot: the up-front result allocation is fine,
// per-iteration allocation is not, and a call inside the loop makes its
// callee whole-body hot.
//
//cdtlint:hotpath loops
func hotLoops(n int) []int {
	out := make([]int, 0, n) // exempt: outside the loops
	for i := 0; i < n; i++ {
		t := make([]int, 1) // want `make allocates on a hot path`
		_ = t
		out = append(out, i) // exempt: self-append
		helper()
	}
	for _, v := range out {
		_ = v
	}
	return out
}

// helper is hot via the call from hotLoops's loop; hotness continues
// transitively into helper2.
func helper() {
	_ = make([]int, 2) // want `make allocates on a hot path`
	helper2()
}

func helper2() {
	_ = new(int) // want `new allocates on a hot path`
}

// loopsColdCall calls its helper outside any loop, so the helper stays
// cold under the loops-only discipline.
//
//cdtlint:hotpath loops
func loopsColdCall(n int) {
	coldAlloc()
	for i := 0; i < n; i++ {
		_ = i
	}
}

func coldAlloc() {
	_ = make([]int, 1)
}

// cold has no marker and is reached by nothing hot: allocate freely.
func cold() {
	_ = make([]int, 3)
	_ = fmt.Sprintf("cold")
}

//cdtlint:hotpath
func hotSuppressed() {
	_ = make([]int, 8) //cdtlint:ignore hotalloc test fixture proves suppression works
}
