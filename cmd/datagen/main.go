// Command datagen writes the synthetic evaluation datasets to CSV files,
// one file per series, in the "value,is_anomaly" format consumed by
// cmd/cdt.
//
// Usage:
//
//	datagen -dataset SGE_Calorie -out ./data [-seed 1] [-full]
//	datagen -dataset all -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cdt/internal/datasets"
	"cdt/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	dataset := flag.String("dataset", "all", "dataset name or \"all\" (SGE_Calorie, SGE_Electricity, Yahoo_A1..A4)")
	out := flag.String("out", "data", "output directory")
	seed := flag.Int64("seed", 1, "generation seed")
	full := flag.Bool("full", false, "paper-scale sizes instead of laptop-scale")
	flag.Parse()

	names := experiments.DatasetNames
	if *dataset != "all" {
		names = []string{*dataset}
	}
	cfg := experiments.Config{Seed: *seed, Full: *full}
	for _, name := range names {
		p, err := experiments.Prepare(name, cfg)
		if err != nil {
			return err
		}
		dir := filepath.Join(*out, strings.ToLower(name))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for _, s := range p.Series {
			path := filepath.Join(dir, s.Name+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := datasets.WriteCSV(f, s); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Printf("%s: %d series, %d points, %d anomalies -> %s\n",
			name, len(p.Series), totalPoints(p), totalAnomalies(p), dir)
	}
	return nil
}

func totalPoints(p *experiments.Prepared) int {
	n := 0
	for _, s := range p.Series {
		n += s.Len()
	}
	return n
}

func totalAnomalies(p *experiments.Prepared) int {
	n := 0
	for _, s := range p.Series {
		n += s.AnomalyCount()
	}
	return n
}
