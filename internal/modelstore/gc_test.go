package modelstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	cdt "cdt"
)

// pyramidDoc trains a two-scale pyramid and returns its serialized
// document.
func pyramidDoc(tb testing.TB, seed int64) []byte {
	tb.Helper()
	pm, err := cdt.FitPyramid(
		[]*cdt.Series{spiky("train", 500, []int{90, 200, 330, 430}, seed)},
		cdt.Options{Omega: 5, Delta: 2},
		cdt.PyramidConfig{Factors: []int{1, 4}, Aggregator: "max"},
	)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pm.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func TestPublishAndLoadPyramidArtifact(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	v, err := st.Publish("multi", pyramidDoc(t, 7), "publish", "two scales")
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != "pyramid" {
		t.Fatalf("Kind = %q, want pyramid", v.Kind)
	}
	if !reflect.DeepEqual(v.Scales, []int{1, 4}) {
		t.Fatalf("Scales = %v, want [1 4]", v.Scales)
	}
	if v.Omega != 5 || v.Delta != 2 || v.NumRules == 0 {
		t.Fatalf("version = %+v", v)
	}
	art, _, err := st.LoadVersion("multi", v.Version)
	if err != nil {
		t.Fatal(err)
	}
	pm, ok := art.(*cdt.PyramidModel)
	if !ok {
		t.Fatalf("LoadVersion returned %T, want *cdt.PyramidModel", art)
	}
	if got := pm.Info().Scales; !reflect.DeepEqual(got, []int{1, 4}) {
		t.Fatalf("loaded scales = %v, want [1 4]", got)
	}

	// Plain-model versions keep the pre-pyramid manifest shape: no kind
	// field appears in their serialized entry.
	if _, err := st.Publish("plain", modelDoc(t, 3), "publish", ""); err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(st.manifestPath())
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(manifest, []byte(`"kind"`)); n != 1 {
		t.Fatalf("manifest mentions \"kind\" %d times, want exactly 1 (pyramid only):\n%s", n, manifest)
	}
}

// TestPublishSurfacesFusion: a trainable-fusion pyramid's learned
// parameters land in its manifest version, so `cdt store list/diff` can
// show what a candidate's fusion actually is without loading the blob.
func TestPublishSurfacesFusion(t *testing.T) {
	train := spiky("train", 500, []int{90, 200, 330, 430}, 7)
	pm, err := cdt.FitPyramid(
		[]*cdt.Series{train},
		cdt.Options{Omega: 5, Delta: 2},
		cdt.PyramidConfig{
			Factors:    []int{1, 4},
			Aggregator: "max",
			Fusion:     cdt.Fusion{Policy: cdt.FuseWeighted, Threshold: 1},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.TrainFusion([]*cdt.Series{train}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	v, err := st.Publish("weighted", buf.Bytes(), "publish", "learned fusion")
	if err != nil {
		t.Fatal(err)
	}
	if v.Fusion == "" || !reflect.DeepEqual(v.FusionWeights, pm.Config.Fusion.Weights) {
		t.Fatalf("version fusion = %q weights = %v, want %q %v",
			v.Fusion, v.FusionWeights, pm.Config.Fusion.String(), pm.Config.Fusion.Weights)
	}
	// The fields survive a manifest reload.
	st2, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	versions, _, err := st2.Versions("weighted")
	if err != nil {
		t.Fatal(err)
	}
	if got := versions[len(versions)-1]; got.Fusion != v.Fusion || !reflect.DeepEqual(got.FusionWeights, v.FusionWeights) {
		t.Fatalf("reloaded fusion = %q %v, want %q %v", got.Fusion, got.FusionWeights, v.Fusion, v.FusionWeights)
	}
	// Plain-model versions stay fusion-free in the serialized manifest.
	if _, err := st2.Publish("plain", modelDoc(t, 3), "publish", ""); err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(st2.manifestPath())
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(manifest, []byte(`"fusion"`)); n != 1 {
		t.Fatalf("manifest mentions \"fusion\" %d times, want exactly 1 (the pyramid only):\n%s", n, manifest)
	}
}

func TestGCRemovesUnreferencedBlobs(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	v1, err := st.Publish("m", modelDoc(t, 7), "publish", "")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := st.Publish("m", pyramidDoc(t, 7), "publish", "")
	if err != nil {
		t.Fatal(err)
	}

	// An orphaned blob (as if its manifest append crashed) and a leftover
	// temp file from an interrupted write.
	blobs := filepath.Dir(st.blobPath("x"))
	orphan := filepath.Join(blobs, "sha256-deadbeef.json")
	if err := os.WriteFile(orphan, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(blobs, "sha256-cafe.json.tmp")
	if err := os.WriteFile(tmp, []byte(`{`), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := st.GC()
	if err != nil {
		t.Fatal(err)
	}
	// The returned list names swept digests; temp files are removed too
	// but are not digests, so they are not listed.
	if !reflect.DeepEqual(removed, []string{"sha256-deadbeef"}) {
		t.Fatalf("removed = %v, want [sha256-deadbeef]", removed)
	}
	for _, p := range []string{orphan, tmp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s survived GC", p)
		}
	}
	// Referenced blobs survive and both versions still load.
	for _, ver := range []int{v1.Version, v2.Version} {
		if _, _, err := st.LoadVersion("m", ver); err != nil {
			t.Fatalf("v%d unloadable after GC: %v", ver, err)
		}
	}

	// The sweep is audit-logged.
	events, err := st.Audit(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Event != EventGC {
		t.Fatalf("last audit event = %+v, want gc", events)
	}

	// A second sweep finds nothing.
	removed, err = st.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("second GC removed %v, want nothing", removed)
	}
}
