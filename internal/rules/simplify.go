package rules

import "sort"

// Simplify minimizes the rule's sum-of-products form with Boolean-algebra
// rewrites, iterated to a fixpoint (paper §3.4, "Rule Simplifications"):
//
//  1. contradiction removal — a predicate containing both c and ¬c is
//     unsatisfiable and is dropped;
//  2. duplicate-literal removal within a predicate (idempotence c∧c = c);
//  3. negation elimination — for predicates P = A∧x and Q = B∧¬x with
//     A∖{x} ⊆ B∖{¬x}, the ¬x in Q is redundant: A∧x ∨ B∧¬x = A∧x ∨ B.
//     The special case A = {x} is the paper's worked example:
//     (c1) ∨ (c2∧¬c1) = (c1) ∨ (c2);
//  4. absorption — if the literal set of P is a subset of Q's, Q is
//     implied by P and is dropped (covers exact duplicates too).
//
// The input is not mutated. Predicate order is preserved for surviving
// predicates (stable), which keeps rule numbering meaningful across the
// simplification.
func Simplify(r Rule) Rule {
	preds := make([]predSet, 0, len(r.Predicates))
	for _, p := range r.Predicates {
		preds = append(preds, newPredSet(p))
	}
	for {
		changed := false
		next := preds[:0]
		// Pass 1: drop contradictions and duplicate literals.
		for _, p := range preds {
			if p.contradictory() {
				changed = true
				continue
			}
			next = append(next, p)
		}
		preds = next
		// Pass 2: negation elimination.
		for i := range preds {
			for j := range preds {
				if i == j {
					continue
				}
				if preds[j].eliminateNegationsUsing(preds[i]) {
					changed = true
				}
			}
		}
		// Pass 3: absorption (keep the first of any implied pair).
		keep := make([]bool, len(preds))
		for i := range keep {
			keep[i] = true
		}
		for i := range preds {
			if !keep[i] {
				continue
			}
			for j := range preds {
				if i == j || !keep[j] {
					continue
				}
				if preds[i].subsetOf(preds[j]) {
					// P_i implies covering P_j: absorb the larger one.
					// On exact equality keep the earlier predicate.
					if !preds[j].subsetOf(preds[i]) || i < j {
						keep[j] = false
						changed = true
					}
				}
			}
		}
		if changed {
			var filtered []predSet
			for i, k := range keep {
				if k {
					filtered = append(filtered, preds[i])
				}
			}
			preds = filtered
		}
		if !changed {
			break
		}
	}
	out := Rule{Mode: r.Mode, Predicates: make([]Predicate, 0, len(preds))}
	for _, p := range preds {
		out.Predicates = append(out.Predicates, p.toPredicate())
	}
	return out
}

// predSet is a predicate as a set of literal keys, retaining the literal
// values for reconstruction.
type predSet struct {
	lits map[string]Literal
}

func newPredSet(p Predicate) predSet {
	ps := predSet{lits: make(map[string]Literal, len(p.Literals))}
	for _, l := range p.Literals {
		ps.lits[l.Key()] = l
	}
	return ps
}

// contradictory reports whether the set holds both polarities of any
// composition.
func (ps predSet) contradictory() bool {
	for k := range ps.lits {
		opposite := "+" + k[1:]
		if k[0] == '+' {
			opposite = "!" + k[1:]
		}
		if _, ok := ps.lits[opposite]; ok {
			return true
		}
	}
	return false
}

// subsetOf reports whether every literal of ps is in other.
func (ps predSet) subsetOf(other predSet) bool {
	if len(ps.lits) > len(other.lits) {
		return false
	}
	for k := range ps.lits {
		if _, ok := other.lits[k]; !ok {
			return false
		}
	}
	return true
}

// eliminateNegationsUsing removes from ps any literal ¬x such that donor
// contains positive x and donor∖{x} ⊆ ps∖{¬x}; under those conditions
// donor∨ps ≡ donor∨(ps without ¬x). Returns whether anything changed.
func (ps predSet) eliminateNegationsUsing(donor predSet) bool {
	changed := false
	for k := range ps.lits {
		if k[0] != '!' {
			continue
		}
		posKey := "+" + k[1:]
		if _, ok := donor.lits[posKey]; !ok {
			continue
		}
		ok := true
		for dk := range donor.lits {
			if dk == posKey {
				continue
			}
			if _, in := ps.lits[dk]; !in {
				ok = false
				break
			}
		}
		if ok {
			delete(ps.lits, k)
			changed = true
		}
	}
	return changed
}

// toPredicate rebuilds a Predicate with literals in a deterministic
// order: positives first (shortest composition first), then negatives.
func (ps predSet) toPredicate() Predicate {
	keys := make([]string, 0, len(ps.lits))
	for k := range ps.lits {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if (a[0] == '+') != (b[0] == '+') {
			return a[0] == '+'
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	p := Predicate{Literals: make([]Literal, 0, len(keys))}
	for _, k := range keys {
		p.Literals = append(p.Literals, ps.lits[k])
	}
	return p
}
