package engine

import (
	"slices"

	"cdt/internal/core"
	"cdt/internal/pattern"
)

// acAutomaton is a dense-table Aho–Corasick automaton over interned
// label ids, matching every compiled composition simultaneously.
// Failure transitions are pre-resolved into the goto table (a full DFA),
// so stepping is one array load per label; out[s] lists the compositions
// with an occurrence ending at state s — the state's own terminals plus,
// via the failure chain, every terminal suffix.
type acAutomaton struct {
	in    *core.Interner
	sigma int
	next  []int32 // numStates × sigma transition table
	out   [][]int32
}

// newAC builds the automaton; comps must be non-empty, deduplicated,
// and free of empty patterns (Compile guarantees all three).
func newAC(comps [][]pattern.Label) *acAutomaton {
	a := &acAutomaton{in: core.NewInterner(slices.Values(comps))}
	a.sigma = a.in.N()
	// Trie of the patterns; -1 marks a missing transition until the BFS
	// below fills it from the failure function.
	a.next = make([]int32, a.sigma)
	for i := range a.next {
		a.next[i] = -1
	}
	a.out = [][]int32{nil}
	for ci, c := range comps {
		st := int32(0)
		for _, l := range c {
			id := int(a.in.ID(l))
			nx := a.next[int(st)*a.sigma+id]
			if nx < 0 {
				nx = int32(len(a.out))
				a.next[int(st)*a.sigma+id] = nx
				row := len(a.next)
				a.next = append(a.next, make([]int32, a.sigma)...)
				for i := row; i < len(a.next); i++ {
					a.next[i] = -1
				}
				a.out = append(a.out, nil)
			}
			st = nx
		}
		a.out[st] = append(a.out[st], int32(ci))
	}
	// BFS over the trie: compute failure links, resolve missing
	// transitions through them (turning the trie into a DFA), and merge
	// each state's suffix outputs. A state's failure target is strictly
	// shallower, so its outputs are already merged when dequeued.
	fail := make([]int32, len(a.out))
	queue := make([]int32, 0, len(a.out))
	for id := 0; id < a.sigma; id++ {
		if nx := a.next[id]; nx >= 0 {
			queue = append(queue, nx)
		} else {
			a.next[id] = 0
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		st := queue[qi]
		f := fail[st]
		if len(a.out[f]) > 0 {
			a.out[st] = append(a.out[st], a.out[f]...)
		}
		for id := 0; id < a.sigma; id++ {
			nx := a.next[int(st)*a.sigma+id]
			if nx >= 0 {
				fail[nx] = a.next[int(f)*a.sigma+id]
				queue = append(queue, nx)
			} else {
				a.next[int(st)*a.sigma+id] = a.next[int(f)*a.sigma+id]
			}
		}
	}
	return a
}

// step advances from state st over label l. Labels outside the rule's
// alphabet cannot appear inside any pattern, so they drop to the root.
func (a *acAutomaton) step(st int32, l pattern.Label) int32 {
	id := a.in.ID(l)
	if id < 0 {
		return 0
	}
	return a.next[int(st)*a.sigma+int(id)]
}
