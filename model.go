package cdt

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"cdt/internal/core"
	"cdt/internal/engine"
	"cdt/internal/evalmetrics"
	"cdt/internal/pattern"
	"cdt/internal/quality"
	"cdt/internal/rules"
	"cdt/internal/trace"
)

// Model is a trained CDT: the tree, the simplified rule set extracted
// from it, and the configuration needed to preprocess new data.
type Model struct {
	// Opts is the training configuration.
	Opts Options

	tree *core.Tree
	rule rules.Rule
	raw  rules.Rule
	pcfg pattern.Config

	// eng is the rule set compiled into one immutable matcher
	// (internal/engine); every detection surface — DetectWindows,
	// DetectExplained, FiredPredicates, EvaluateCorpus, Stream, and the
	// serving layer — evaluates through it. Compiled once in
	// finalizeRules, read-only afterwards.
	eng *engine.Engine

	// predTexts and predDescs cache the per-predicate renderings of
	// rule, indexed like rule.Predicates (see finalizeRules).
	predTexts []string
	predDescs []string

	// predPeaks caches, per predicate, whether any positive composition
	// contains a peak label (PP/PN) — the rule-shape bit the pyramid's
	// anomaly-type classifier reads (see pyramid.go).
	predPeaks []bool
}

// Fit trains a CDT on one or more labeled series: each series is
// normalized to [0,1] (if not already), labeled with the δ pattern
// alphabet, cut into ω-windows, and the pooled windows grow the tree
// (Algorithm 1); rules are then extracted and Boolean-simplified (§3.4).
// At least one series must contain an anomaly, otherwise there is
// nothing to learn rules for.
//
// Fit is a thin wrapper over the Corpus pipeline; callers training
// repeatedly on the same series (hyper-parameter sweeps, cross-validation)
// should build one Corpus and use Corpus.Fit so the preprocessing stages
// are shared across fits.
func Fit(train []*Series, opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("cdt: no training series")
	}
	c, err := NewCorpus(train)
	if err != nil {
		return nil, err
	}
	return c.Fit(opts)
}

// Rule returns the simplified rule set.
func (m *Model) Rule() Rule { return m.rule }

// RawRule returns the rule set as extracted from the tree, before
// Boolean simplification (useful for measuring what simplification
// saves).
func (m *Model) RawRule() Rule { return m.raw }

// NumRules returns the number of rule predicates (the Figure 3 metric).
func (m *Model) NumRules() int { return m.rule.Count() }

// RuleText renders the rules as IF-THEN lines with δ-aware label names.
func (m *Model) RuleText() string { return m.rule.Format(m.pcfg) }

// Explain renders the rules with ASCII shape sketches and plain-language
// descriptions — the presentation of Table 5.
func (m *Model) Explain() string {
	var b strings.Builder
	b.WriteString(rules.Explain(m.rule, m.pcfg))
	for _, p := range m.rule.Predicates {
		for _, c := range p.PositiveCompositions() {
			fmt.Fprintf(&b, "reading of %s: %s\n", c.Format(m.pcfg), rules.Describe(c))
		}
	}
	return b.String()
}

// TreeText renders the underlying decision tree (Figure 2's view).
func (m *Model) TreeText() string { return m.tree.Render(m.pcfg) }

// TreeStats summarizes the tree's shape.
func (m *Model) TreeStats() core.Stats { return m.tree.Stats() }

// TrainingAnomalyRate returns the share of anomalous windows in the
// model's training observations (the class distribution at the tree
// root). It survives Save/Load, so a served model carries its own
// baseline fire-rate expectation — the reference drift detection
// compares live traffic against.
func (m *Model) TrainingAnomalyRate() float64 {
	c := m.tree.Root.Counts
	total := c.Normal + c.Anomaly
	if total == 0 {
		return 0
	}
	return float64(c.Anomaly) / float64(total)
}

// detectMarks labels a series and sweeps the compiled engine over it in
// one pass, returning per-window match marks — the shared back end of
// every batch detection surface. A sampled ctx (internal/trace) gets an
// "engine_sweep" span; the unsampled path pays one context lookup.
func (m *Model) detectMarks(ctx context.Context, s *Series) (*engine.Marks, error) {
	_, span := trace.StartSpan(ctx, "engine_sweep")
	labels, _, err := labeledSeries(s, m.pcfg, m.Opts.Omega)
	if err != nil {
		span.End()
		return nil, err
	}
	marks := m.eng.Sweep(labels)
	span.SetAttr("windows", strconv.Itoa(marks.NumWindows()))
	span.End()
	return marks, nil
}

// DetectWindows runs the rule over a series and returns one flag per
// sliding window (window i covers points [i+1, i+ω] of the series).
func (m *Model) DetectWindows(s *Series) ([]bool, error) {
	marks, err := m.detectMarks(context.Background(), s)
	if err != nil {
		return nil, err
	}
	flags := make([]bool, marks.NumWindows())
	for w := range flags {
		flags[w] = marks.Fired(w)
	}
	return flags, nil
}

// PointFlags projects window detections to per-point anomaly flags: a
// point is flagged when at least one window covering it fires. The
// result has the same length as the series.
func (m *Model) PointFlags(s *Series) ([]bool, error) {
	windows, err := m.DetectWindows(s)
	if err != nil {
		return nil, err
	}
	flags := make([]bool, s.Len())
	for wi, fired := range windows {
		if !fired {
			continue
		}
		// Window wi covers points wi+1 .. wi+ω.
		for p := wi + 1; p <= wi+m.Opts.Omega && p < len(flags); p++ {
			flags[p] = true
		}
	}
	return flags, nil
}

// Report is a full evaluation of the model on labeled data: detection
// quality (F1) plus the paper's rule-quality measures.
type Report struct {
	// Confusion is the window-level confusion matrix.
	Confusion evalmetrics.Confusion
	// F1 is the window-level F1 score.
	F1 float64
	// Q is the rule quality Q(R) (Equation 3).
	Q float64
	// FH is the objective F(h) = F1 · Q(R) (Equation 5).
	FH float64
	// NumRules is the rule-predicate count.
	NumRules int
}

// Evaluate measures the model on labeled series, pooling their windows
// (the protocol of §4.1: window-level classification scored by F1, rule
// quality by Equation 3). For repeated evaluations over the same series
// (e.g. scoring many candidate models against one validation split),
// build a Corpus once and use EvaluateCorpus.
func (m *Model) Evaluate(eval []*Series) (Report, error) {
	if len(eval) == 0 {
		return Report{}, fmt.Errorf("cdt: no evaluation series")
	}
	c, err := NewCorpus(eval)
	if err != nil {
		return Report{}, err
	}
	return m.EvaluateCorpus(c)
}

// EvaluateCorpus is Evaluate against a pre-built Corpus: the evaluation
// windows for this model's (ω, δ) are pulled from the corpus cache, so
// scoring many models that share hyper-parameter candidates against one
// validation corpus re-labels and re-windows nothing.
func (m *Model) EvaluateCorpus(c *Corpus) (Report, error) {
	pooled, err := c.Observations(m.Opts)
	if err != nil {
		return Report{}, err
	}
	marks := m.eng.SweepObservations(pooled)
	qrep := quality.Evaluate(m.rule, pooled, marks, m.Opts.Omega, m.pcfg.AlphabetSize())
	return Report{
		Confusion: qrep.Confusion,
		F1:        qrep.F1(),
		Q:         qrep.Q,
		FH:        qrep.Objective(),
		NumRules:  m.rule.Count(),
	}, nil
}

// Predict classifies one window of labels directly (for callers managing
// their own labeling).
func (m *Model) Predict(labels []Label) bool {
	return m.tree.Predict(labels) == core.Anomaly
}

// GeneralRule is a magnitude-generalized rule set (see Generalize).
type GeneralRule = rules.GeneralRule

// PruneRedundant returns a copy of the rule set without predicates that
// contribute no true positive on the reference series — the paper's
// "eliminate redundant rules" improvement. The reference should be
// labeled data not used for training (e.g. the validation split).
func (m *Model) PruneRedundant(reference []*Series) (Rule, error) {
	obs, err := m.pooledObservations(reference)
	if err != nil {
		return Rule{}, err
	}
	return rules.RemoveRedundant(m.rule, obs), nil
}

// Generalize widens the magnitude intervals of the learned rules —
// PP[L,H] becomes PP[+,+] ("any positive peak") — keeping each widening
// only when the rule's F1 on the reference series does not degrade; the
// paper's "combine rules by a generalization" improvement. Generalized
// rules transfer better across magnitude regimes and read more
// naturally. The reference should be labeled data not used for training.
func (m *Model) Generalize(reference []*Series) (GeneralRule, error) {
	obs, err := m.pooledObservations(reference)
	if err != nil {
		return GeneralRule{}, err
	}
	return rules.Generalize(m.rule, obs, m.Opts.Delta), nil
}

// GeneralRuleText renders a generalized rule set with this model's
// δ-aware label names.
func (m *Model) GeneralRuleText(g GeneralRule) string { return g.Format(m.pcfg) }

// pooledObservations labels and windows a set of series into one pool,
// through a throwaway corpus so every trainer-side consumer shares one
// pipeline implementation.
func (m *Model) pooledObservations(series []*Series) ([]core.Observation, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("cdt: no reference series")
	}
	c, err := NewCorpus(series)
	if err != nil {
		return nil, err
	}
	return c.Observations(m.Opts)
}

// RuleStat summarizes one rule predicate's behaviour on an evaluation
// set — the audit view an analyst reads before trusting a rule.
type RuleStat struct {
	// Index is the 1-based rule number matching RuleText's numbering.
	Index int
	// Text is the rendered predicate.
	Text string
	// Support is the number of anomalous windows the rule correctly
	// claimed (as first matcher).
	Support int
	// FalseAlarms is the number of normal windows it flagged.
	FalseAlarms int
	// Interpretability is M(I_Rs), Equation 2.
	Interpretability float64
}

// Precision is Support/(Support+FalseAlarms), or 0 when the rule never
// fired.
func (r RuleStat) Precision() float64 {
	if r.Support+r.FalseAlarms == 0 {
		return 0
	}
	return float64(r.Support) / float64(r.Support+r.FalseAlarms)
}

// Audit evaluates every rule predicate on labeled series and returns
// per-rule support, false alarms, and interpretability, in rule order.
func (m *Model) Audit(eval []*Series) ([]RuleStat, error) {
	obs, err := m.pooledObservations(eval)
	if err != nil {
		return nil, err
	}
	rep := quality.Evaluate(m.rule, obs, m.eng.SweepObservations(obs), m.Opts.Omega, m.pcfg.AlphabetSize())
	stats := make([]RuleStat, len(m.rule.Predicates))
	for i, p := range m.rule.Predicates {
		stats[i] = RuleStat{
			Index:            i + 1,
			Text:             p.Format(m.pcfg),
			Support:          rep.PredicateSupports[i],
			FalseAlarms:      rep.PredicateFalsePositives[i],
			Interpretability: rep.PredicateQualities[i],
		}
	}
	return stats, nil
}

// TreeDOT renders the decision tree as Graphviz source for
// publication-quality diagrams (render with `dot -Tpng`).
func (m *Model) TreeDOT() string { return m.tree.DOT(m.pcfg) }
