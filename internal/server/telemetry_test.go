package server

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fetch GETs a URL and returns status, body, and headers.
func fetch(tb testing.TB, url string) (int, string, http.Header) {
	tb.Helper()
	resp, err := http.Get(url)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestMetricsScrape is the /metrics smoke the CI gate runs: after real
// traffic (batch detect + a stream session), the Prometheus exposition
// must carry the acceptance families — request latency histograms,
// corpus cache counters, and stream session gauges — and /debug/vars
// must still serve the legacy expvar map alongside it.
func TestMetricsScrape(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	// Traffic: one batch detect, one stream round trip, one 404.
	feed := spiky("feed", 300, []int{120, 240}, 99)
	doJSON(t, "POST", ts.URL+"/models/spikes/detect",
		batchRequest{Series: []seriesPayload{{Name: "feed", Values: feed.Values}}}, nil)
	var created createStreamResponse
	doJSON(t, "POST", ts.URL+"/streams", createStreamRequest{Model: "spikes", Min: 60, Max: 420}, &created)
	doJSON(t, "POST", ts.URL+"/streams/"+created.ID+"/points", pushPointsRequest{Points: feed.Values}, nil)
	doJSON(t, "POST", ts.URL+"/models/nope/detect",
		batchRequest{Series: []seriesPayload{{Name: "x", Values: []float64{1}}}}, nil)

	code, body, hdr := fetch(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	for _, want := range []string{
		`cdtserve_http_requests_total{code="2xx",endpoint="batch_detect"} 1`,
		`cdtserve_http_requests_total{code="4xx",endpoint="batch_detect"} 1`,
		`cdtserve_http_request_seconds_bucket{endpoint="batch_detect",le="+Inf"} 2`,
		`cdtserve_http_request_seconds_count{endpoint="stream_push"} 1`,
		`cdtserve_http_in_flight 1`, // the /metrics request itself
		`cdtserve_stream_sessions_active 1`,
		`cdtserve_stream_sessions_evicted_total 0`,
		`cdtserve_stream_push_seconds_count 1`,
		`cdtserve_batch_series_total 1`,
		`cdtserve_models_loaded 1`,
		`cdtserve_detections_total{source="batch"}`,
		`cdtserve_detections_total{source="stream"}`,
		`cdt_corpus_cache_hits_total{cache="label"}`,
		`cdt_corpus_cache_misses_total{cache="window"}`,
		`cdt_corpus_cache_evictions_total{cache="label"}`,
		`# TYPE cdtserve_http_request_seconds histogram`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Legacy surface: /debug/vars still serves the expvar map.
	code, vars, _ := fetch(t, ts.URL+"/debug/vars")
	if code != 200 || !strings.Contains(vars, `"cdtserve"`) {
		t.Errorf("/debug/vars = %d, body lacks cdtserve map", code)
	}
}

// TestRequestIDs: every response carries X-Request-ID; an inbound ID is
// honored (so IDs survive proxy hops), a missing one is generated.
func TestRequestIDs(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	_, _, hdr := fetch(t, ts.URL+"/healthz")
	if hdr.Get("X-Request-ID") == "" {
		t.Error("response lacks a generated X-Request-ID")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "upstream-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "upstream-7" {
		t.Errorf("inbound request id not honored: got %q", got)
	}
}

// syncBuffer serializes concurrent writes from the access-log handler
// against the test's reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestAccessLog: with Config.AccessLog set, each request produces one
// structured line carrying endpoint, status, and the request ID.
func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts, _ := newTestServer(t, Config{AccessLog: logger})

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "log-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The log line lands after the response is flushed; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		out := buf.String()
		if strings.Contains(out, `"id":"log-probe-1"`) {
			for _, want := range []string{`"endpoint":"healthz"`, `"status":200`, `"method":"GET"`} {
				if !strings.Contains(out, want) {
					t.Errorf("access log missing %s in %s", want, out)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no access log line for request id log-probe-1; log: %q", out)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDebugHandler: the opt-in debug surface serves pprof, expvar, and
// the Prometheus exposition — and is not reachable through Handler().
func TestDebugHandler(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/vars", "/metrics"} {
		if code, _, _ := fetch(t, dbg.URL+path); code != 200 {
			t.Errorf("debug %s = %d, want 200", path, code)
		}
	}
	// The public handler must not expose pprof.
	if code, _, _ := fetch(t, ts.URL+"/debug/pprof/"); code == 200 {
		t.Error("public handler serves /debug/pprof/")
	}
}
