package core

import "math"

// SplitCriterion selects the impurity function used to score splits.
type SplitCriterion int

const (
	// Gini is the paper's impurity (§3.3: "we opt to the Gini index").
	Gini SplitCriterion = iota
	// Entropy (Shannon) is provided for ablation against Gini.
	Entropy
)

// String names the criterion for reports.
func (sc SplitCriterion) String() string {
	if sc == Entropy {
		return "entropy"
	}
	return "gini"
}

// Impurity computes the criterion's impurity for a class distribution.
// Gini of a two-class set is 1 − p₀² − p₁² (0 when pure, 0.5 when
// balanced); entropy is −Σ p·log₂p (0 when pure, 1 when balanced).
func (sc SplitCriterion) Impurity(cc ClassCounts) float64 {
	total := cc.Total()
	if total == 0 {
		return 0
	}
	p0 := float64(cc.Normal) / float64(total)
	p1 := float64(cc.Anomaly) / float64(total)
	if sc == Entropy {
		e := 0.0
		if p0 > 0 {
			e -= p0 * math.Log2(p0)
		}
		if p1 > 0 {
			e -= p1 * math.Log2(p1)
		}
		return e
	}
	return 1 - p0*p0 - p1*p1
}

// InformationGain scores a binary partition of parent into (in, out):
// IG = G(parent) − |in|/|parent|·G(in) − |out|/|parent|·G(out).
// A degenerate partition (either side empty) gains nothing.
func (sc SplitCriterion) InformationGain(parent, in, out ClassCounts) float64 {
	total := parent.Total()
	if total == 0 || in.Total() == 0 || out.Total() == 0 {
		return 0
	}
	g := sc.Impurity(parent)
	g -= float64(in.Total()) / float64(total) * sc.Impurity(in)
	g -= float64(out.Total()) / float64(total) * sc.Impurity(out)
	return g
}
