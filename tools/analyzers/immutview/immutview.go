// Package immutview flags writes through the shared, immutable slice
// views the cdt training pipeline hands out. The Corpus cache (corpus.go)
// returns cached labelings and pooled observation windows to every
// trainer; its contract — "callers must not mutate returned observation
// slices or their labels" — is what makes the cache safe under
// concurrency, and until this analyzer it was enforced only by a comment.
//
// A "view" is the result of one of the functions in Views (Corpus
// accessors and pattern.LabelSeries). The analyzer tracks views
// intra-procedurally through assignments, sub-slicing, element access and
// slice-typed field/element loads, and reports:
//
//   - element or field stores through a view (v[i] = x, v[i].F = x)
//   - append with a view as the first argument (may write the shared
//     backing array when capacity allows)
//   - copy with a view as the destination
//   - sort.*, slices.Sort*, slices.Reverse, slices.Delete/Insert/Compact
//     applied to a view
//
// Views survive two copies that used to drop tracking:
//
//   - struct values copied out of a view element (o := v[0], or a range
//     value over a view of structs): the copy owns its scalar fields, but
//     its slice-typed fields still alias the shared backing, so
//     o.Labels[0] = x is reported while o.Start = 3 is not;
//   - struct-field stores of a view (h.obs = view): later writes through
//     h.obs are reported. Field stores are not flow-tracked, so a clone
//     assigned to the same field later does not cleanse it — the
//     analyzer stays conservative there.
//
// Mutating a clone (slices.Clone, append([]T(nil), v...), explicit
// make+copy) is deliberately not reported: cloning is the sanctioned way
// to obtain an owned copy. Known limits, accepted for a heuristic lint:
// views passed to other functions are not followed.
package immutview

import (
	"go/ast"
	"go/token"
	"go/types"

	"cdt/tools/analysis"
)

// Analyzer is the immutview check.
var Analyzer = &analysis.Analyzer{
	Name: "immutview",
	Doc:  "flags mutations of shared immutable slice views (Corpus accessors, pattern.LabelSeries)",
	Run:  run,
}

// Views lists the fully-qualified functions and methods (in the
// types.Func.FullName form) whose returned slices are shared immutable
// views. Tests may extend this set to cover testdata-local fixtures.
var Views = map[string]bool{
	"(*cdt.Corpus).Observations":                true,
	"(*cdt.Corpus).labelsFor":                   true,
	"(cdt/internal/pattern.Config).LabelSeries": true,
}

// mutators maps in-place mutating functions to the index of the argument
// they mutate.
var mutators = map[string]int{
	"sort.Slice":            0,
	"sort.SliceStable":      0,
	"sort.Ints":             0,
	"sort.Float64s":         0,
	"sort.Strings":          0,
	"slices.Sort":           0,
	"slices.SortFunc":       0,
	"slices.SortStableFunc": 0,
	"slices.Reverse":        0,
	"slices.Delete":         0,
	"slices.Insert":         0,
	"slices.Compact":        0,
	"slices.CompactFunc":    0,
}

// assignEvent records that a variable was (re)assigned at pos, and
// whether the assigned value was a view.
type assignEvent struct {
	pos  token.Pos
	view bool
}

type checker struct {
	pass   *analysis.Pass
	events map[types.Object][]assignEvent
	// fieldViews records struct fields ever assigned a view (x.F = view),
	// keyed by the root variable and then the field object. Field stores
	// are not flow-tracked, so a later clone assigned to the same field
	// does not cleanse it — conservative by design.
	fieldViews map[types.Object]map[types.Object]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:       pass,
		events:     make(map[types.Object][]assignEvent),
		fieldViews: make(map[types.Object]map[types.Object]bool),
	}
	// Pass 1: collect view assignments in source order. Objects are
	// unique per declaration, so one package-wide table is safe.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				c.recordAssign(n)
			case *ast.ValueSpec:
				c.recordValueSpec(n)
			case *ast.RangeStmt:
				c.recordRange(n)
			}
			return true
		})
	}
	// Pass 2: report mutations through views.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					c.checkStore(lhs)
				}
			case *ast.IncDecStmt:
				c.checkStore(n.X)
			case *ast.CallExpr:
				c.checkCall(n)
			}
			return true
		})
	}
	return nil
}

// recordAssign tracks ident := / = rhs for view-ness. The event takes
// effect at the end of the statement: in `v = append(v, x)` the RHS
// still sees v's previous state.
func (c *checker) recordAssign(n *ast.AssignStmt) {
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			c.track(lhs, n.Rhs[i], n.End())
		}
		return
	}
	// Multi-value assignment from a single call: our view APIs return the
	// view first (view, err), so only the first variable can be a view.
	if len(n.Rhs) == 1 {
		for i, lhs := range n.Lhs {
			if i == 0 {
				c.track(lhs, n.Rhs[0], n.End())
			} else {
				c.track(lhs, nil, n.End())
			}
		}
	}
}

func (c *checker) recordValueSpec(n *ast.ValueSpec) {
	if len(n.Values) == len(n.Names) {
		for i, name := range n.Names {
			c.track(name, n.Values[i], n.End())
		}
	} else if len(n.Values) == 1 {
		for i, name := range n.Names {
			if i == 0 {
				c.track(name, n.Values[0], n.End())
			} else {
				c.track(name, nil, n.End())
			}
		}
	}
}

// recordRange tracks `for _, v := range view`: the value variable shares
// backing storage when the element type is itself a slice, or is a
// struct whose slice fields alias the view's backing.
func (c *checker) recordRange(n *ast.RangeStmt) {
	v, ok := n.Value.(*ast.Ident)
	if !ok || !c.isView(n.X) {
		return
	}
	if !canCarryView(c.pass.TypesInfo.TypeOf(v)) {
		return
	}
	if obj := c.objOf(v); obj != nil {
		c.events[obj] = append(c.events[obj], assignEvent{pos: v.Pos(), view: true})
	}
}

// track records one assignment of rhs to lhs (rhs nil means "definitely
// not a view"). Slice-typed variables carry a view directly; struct
// variables copied out of a view element carry it through their
// slice-typed fields. A view assigned to a struct field (x.F = view) is
// recorded in fieldViews so later writes through x.F are seen.
func (c *checker) track(lhs ast.Expr, rhs ast.Expr, at token.Pos) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := c.objOf(lhs)
		if obj == nil {
			return
		}
		view := rhs != nil && c.isView(rhs) && canCarryView(c.pass.TypesInfo.TypeOf(lhs))
		c.events[obj] = append(c.events[obj], assignEvent{pos: at, view: view})
	case *ast.SelectorExpr:
		if rhs == nil || !c.isView(rhs) || !isSliceType(c.pass.TypesInfo.TypeOf(lhs)) {
			return
		}
		root, ok := ast.Unparen(lhs.X).(*ast.Ident)
		if !ok {
			return
		}
		rootObj, fieldObj := c.objOf(root), c.objOf(lhs.Sel)
		if rootObj == nil || fieldObj == nil {
			return
		}
		m := c.fieldViews[rootObj]
		if m == nil {
			m = make(map[types.Object]bool)
			c.fieldViews[rootObj] = m
		}
		m[fieldObj] = true
	}
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// isView reports whether e denotes shared view storage.
func (c *checker) isView(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.isView(e.X)
	case *ast.CallExpr:
		if fn := c.callee(e); fn != nil && Views[fn.FullName()] {
			return true
		}
		return false
	case *ast.IndexExpr:
		return c.isView(e.X)
	case *ast.SliceExpr:
		return c.isView(e.X)
	case *ast.SelectorExpr:
		// A field a view was ever stored into (h.obs = view) is a view.
		if root, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if rootObj := c.objOf(root); rootObj != nil {
				if fieldObj := c.objOf(e.Sel); fieldObj != nil && c.fieldViews[rootObj][fieldObj] {
					return true
				}
			}
		}
		// A slice field of a shared element (v[0].Labels) — or of a struct
		// value copied out of one (o := v[0]; o.Labels) — shares backing
		// storage; scalar selections own their copies, and a plain
		// selection rooted at an untracked variable shares nothing.
		if !canCarryView(c.pass.TypesInfo.TypeOf(e)) {
			return false
		}
		return c.isView(e.X)
	case *ast.Ident:
		obj := c.objOf(e)
		if obj == nil {
			return false
		}
		events := c.events[obj]
		if len(events) == 0 {
			return false
		}
		// The view-ness at a use site is decided by the latest assignment
		// before it: reassigning a clone to the same variable cleanses it.
		latest := events[0]
		for _, ev := range events {
			if ev.pos <= e.Pos() && ev.pos >= latest.pos {
				latest = ev
			}
		}
		return latest.view
	}
	return false
}

func (c *checker) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkStore flags element and field stores whose base is a view.
func (c *checker) checkStore(lhs ast.Expr) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		if c.isView(lhs.X) {
			c.pass.Reportf(lhs.Pos(), "write through shared %s view; clone it before mutating (immutability contract, corpus.go)", c.describe(lhs.X))
		}
	case *ast.SelectorExpr:
		if !c.isView(lhs.X) {
			return
		}
		// A struct value copied out of a view element owns its direct
		// fields: o.Start = 3 (and rebinding o.Labels) writes the copy,
		// not the cache. Only stores whose base is element storage of the
		// view itself (v[0].F = x) alias shared memory.
		if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			if t := c.pass.TypesInfo.TypeOf(id); t != nil {
				if _, isStruct := t.Underlying().(*types.Struct); isStruct {
					return
				}
			}
		}
		c.pass.Reportf(lhs.Pos(), "field store into shared %s view element; clone the view before mutating", c.describe(lhs.X))
	}
}

// checkCall flags append/copy/sorting applied to a view.
func (c *checker) checkCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && len(call.Args) > 0 {
			switch b.Name() {
			case "append":
				if c.isView(call.Args[0]) {
					c.pass.Reportf(call.Pos(), "append into shared %s view may write its backing array; clone it first", c.describe(call.Args[0]))
				}
			case "copy":
				if c.isView(call.Args[0]) {
					c.pass.Reportf(call.Pos(), "copy into shared %s view overwrites cached data; clone it first", c.describe(call.Args[0]))
				}
			}
			return
		}
	}
	fn := c.callee(call)
	if fn == nil {
		return
	}
	if idx, ok := mutators[fn.FullName()]; ok && idx < len(call.Args) && c.isView(call.Args[idx]) {
		c.pass.Reportf(call.Pos(), "%s reorders shared %s view in place; clone it first", fn.FullName(), c.describe(call.Args[idx]))
	}
}

// describe names the view expression for diagnostics.
func (c *checker) describe(e ast.Expr) string {
	return types.ExprString(e)
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// canCarryView reports whether a variable of type t can alias view
// backing storage: slices do directly, struct copies through their
// slice-typed fields.
func canCarryView(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Struct:
		return true
	}
	return false
}
