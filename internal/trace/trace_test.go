package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	h := FormatTraceparent("4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7", true)
	traceID, spanID, sampled, ok := ParseTraceparent(h)
	if !ok || !sampled {
		t.Fatalf("ParseTraceparent(%q) = ok=%v sampled=%v", h, ok, sampled)
	}
	if traceID != "4bf92f3577b34da6a3ce929d0e0e4736" || spanID != "00f067aa0ba902b7" {
		t.Fatalf("round trip lost ids: %q %q", traceID, spanID)
	}
	if _, _, sampled, ok = ParseTraceparent(FormatTraceparent(traceID, spanID, false)); !ok || sampled {
		t.Fatalf("unsampled flag did not round-trip (ok=%v sampled=%v)", ok, sampled)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short-span-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // unknown version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e473X-00f067aa0ba902b7-01", // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", // bad flags
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header", h)
		}
	}
}

func TestSampleRateExact(t *testing.T) {
	for _, tc := range []struct {
		rate float64
		want int // sampled out of 1000
	}{
		{0, 0},
		{1, 1000},
		{0.5, 500},
	} {
		tr := New(Config{SampleRate: tc.rate})
		n := 0
		for i := 0; i < 1000; i++ {
			if _, s := tr.StartRequest(context.Background(), "request", ""); s != nil {
				n++
			}
		}
		if n != tc.want {
			t.Errorf("rate %g: sampled %d/1000, want %d (deterministic accumulator)", tc.rate, n, tc.want)
		}
	}
}

func TestInboundTraceparentOverridesSampling(t *testing.T) {
	tr := New(Config{SampleRate: 0})
	up := FormatTraceparent("4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7", true)
	ctx, s := tr.StartRequest(context.Background(), "request", up)
	if s == nil {
		t.Fatal("sampled inbound traceparent was not honored at rate 0")
	}
	if s.TraceID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id not continued: %q", s.TraceID())
	}
	if FromContext(ctx) != s {
		t.Fatal("root span not threaded through the context")
	}
	// The unsampled flag is a decision, not an absence: never trace.
	if _, s := tr.StartRequest(context.Background(), "request",
		FormatTraceparent("4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7", false)); s != nil {
		t.Fatal("unsampled inbound traceparent started a span")
	}
}

func TestSpanParentLinksAndRing(t *testing.T) {
	tr := New(Config{SampleRate: 1, RingSize: 8})
	ctx, root := tr.StartRequest(context.Background(), "request", "")
	ctx, child := StartSpan(ctx, "detect")
	_, grand := StartSpan(ctx, "engine_sweep")
	grand.SetAttr("windows", "42")
	grand.End()
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("ring holds %d spans, want 3", len(spans))
	}
	// Newest first: root ended last.
	if spans[0].Name != "request" || spans[1].Name != "detect" || spans[2].Name != "engine_sweep" {
		t.Fatalf("snapshot order = %s, %s, %s; want request, detect, engine_sweep",
			spans[0].Name, spans[1].Name, spans[2].Name)
	}
	for _, sd := range spans {
		if sd.TraceID != root.TraceID() {
			t.Fatalf("span %q left the trace: %q vs %q", sd.Name, sd.TraceID, root.TraceID())
		}
	}
	if spans[1].ParentID != root.SpanID() || spans[2].ParentID != child.SpanID() {
		t.Fatal("parent links broken")
	}
	if spans[2].Attrs["windows"] != "42" {
		t.Fatalf("attrs lost: %v", spans[2].Attrs)
	}
}

func TestRingBoundedNewestFirst(t *testing.T) {
	tr := New(Config{SampleRate: 1, RingSize: 4})
	for i := 0; i < 10; i++ {
		_, s := tr.StartRequest(context.Background(), "request", "")
		s.SetAttr("i", string(rune('a'+i)))
		s.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for k, want := range []string{"j", "i", "h", "g"} {
		if got := spans[k].Attrs["i"]; got != want {
			t.Fatalf("snapshot[%d] = %q, want %q (newest first)", k, got, want)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartRequest(context.Background(), "request", "")
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer produced a snapshot")
	}
	_, s = StartSpan(ctx, "child")
	s.SetAttr("k", "v") // all must no-op without panicking
	s.End()
	if s.TraceID() != "" || s.SpanID() != "" || s.Traceparent() != "" {
		t.Fatal("nil span leaked identity")
	}
	if LinkFromContext(ctx).Valid() {
		t.Fatal("unsampled context produced a valid link")
	}
}

func TestStartLinked(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	ctx, root := tr.StartRequest(context.Background(), "request", "")
	link := LinkFromContext(ctx)
	root.End()
	_, s := tr.StartLinked(context.Background(), link, "shadow_score")
	if s == nil {
		t.Fatal("valid link did not start a span")
	}
	s.End()
	spans := tr.Snapshot()
	if spans[0].TraceID != root.TraceID() || spans[0].ParentID != root.SpanID() {
		t.Fatalf("linked span not parented under the enqueuing request: %+v", spans[0])
	}
	if _, s := tr.StartLinked(context.Background(), SpanContext{}, "x"); s != nil {
		t.Fatal("zero link started a span")
	}
}

func TestJSONLExport(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{SampleRate: 1, Export: &buf})
	ctx, root := tr.StartRequest(context.Background(), "request", "")
	_, child := StartSpan(ctx, "detect")
	child.End()
	root.End()

	sc := bufio.NewScanner(&buf)
	var names []string
	for sc.Scan() {
		var sd SpanData
		if err := json.Unmarshal(sc.Bytes(), &sd); err != nil {
			t.Fatalf("export line is not JSON: %v (%q)", err, sc.Text())
		}
		names = append(names, sd.Name)
	}
	if strings.Join(names, ",") != "detect,request" {
		t.Fatalf("exported %v, want [detect request] in end order", names)
	}
}

// TestSpanRingHammer drives concurrent StartRequest/StartSpan/End
// against concurrent Snapshot and export — the -race target for the
// lock-free ring (make test-hammer).
func TestSpanRingHammer(t *testing.T) {
	var buf syncDiscard
	tr := New(Config{SampleRate: 1, RingSize: 32, Export: &buf})
	const (
		writers = 8
		readers = 2
		rounds  = 500
	)
	var writersWG, readersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for i := 0; i < rounds; i++ {
				ctx, root := tr.StartRequest(context.Background(), "request", "")
				_, child := StartSpan(ctx, "detect")
				child.SetAttr("round", "x")
				child.End()
				root.End()
			}
		}()
	}
	done := make(chan struct{})
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, sd := range tr.Snapshot() {
					if sd.TraceID == "" || sd.SpanID == "" {
						t.Error("snapshot surfaced a half-written span")
						return
					}
				}
			}
		}()
	}
	writersWG.Wait()
	close(done)
	readersWG.Wait()
	if got := tr.seq.Load(); got != writers*rounds*2 {
		t.Fatalf("ring recorded %d spans, want %d", got, writers*rounds*2)
	}
}

// syncDiscard is an io.Writer safe for concurrent use (the hammer's
// export sink).
type syncDiscard struct{ mu sync.Mutex }

func (d *syncDiscard) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(p), nil
}
