module cdt

go 1.22
