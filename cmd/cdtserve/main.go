// Command cdtserve serves trained CDT models over HTTP: batch scoring,
// live streaming-detection sessions, and a hot-reloadable model
// registry. Every detection in a response carries the fired rule
// predicates in human-readable form — the interpretable payload the
// paper argues anomaly detectors owe their operators.
//
// Usage:
//
//	cdtserve -models dir [-addr :8080] [-workers 8] [-session-ttl 15m] [-timeout 30s]
//
// The model directory holds one <name>.json per model (written by
// `cdt train -save` or Model.Save); the basename becomes the model name.
// SIGHUP or POST /models/reload atomically swaps in the directory's
// current contents without dropping in-flight requests. SIGINT/SIGTERM
// drain in-flight requests before exiting.
//
// Endpoints:
//
//	GET    /healthz                    liveness + model/session counts
//	GET    /models                     registered models with rule counts
//	POST   /models/reload              atomic hot-reload from the model dir
//	POST   /models/{name}/detect       batch scoring: {"series":[{"name","values"}]}
//	POST   /streams                    open a session: {"model","min","max"}
//	POST   /streams/{id}/points        push readings: {"points":[...]}
//	POST   /streams/{id}/reset         clear a session's window state
//	DELETE /streams/{id}               close a session
//	GET    /debug/vars                 expvar counters (map "cdtserve")
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cdt/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdtserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdtserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	models := fs.String("models", "", "directory of <name>.json model artifacts (required)")
	workers := fs.Int("workers", 0, "batch-scoring worker pool size (0 = GOMAXPROCS)")
	sessionTTL := fs.Duration("session-ttl", 15*time.Minute, "evict streaming sessions idle longer than this")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request handler timeout")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *models == "" {
		return fmt.Errorf("-models is required")
	}

	s, err := server.New(server.Config{
		ModelDir:   *models,
		SessionTTL: *sessionTTL,
		Workers:    *workers,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           http.TimeoutHandler(s.Handler(), *timeout, `{"error":"request timed out"}`),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *timeout + 10*time.Second,
		WriteTimeout:      *timeout + 10*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGHUP hot-reloads the registry; SIGINT/SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			n, err := s.Registry().Reload()
			if err != nil {
				log.Printf("SIGHUP reload failed (previous models still serving): %v", err)
				continue
			}
			log.Printf("SIGHUP reload: %d models live", n)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("cdtserve listening on %s (%d models from %s)", *addr, s.Registry().Len(), *models)
		errc <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining in-flight requests (budget %s)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpServer.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
