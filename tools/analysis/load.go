package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// UnitKind distinguishes the three compilation units a Go package can
// contribute: its library files, the library+in-package-test merge, and
// the external _test package.
type UnitKind int

const (
	// Lib is the package's non-test files.
	Lib UnitKind = iota
	// Test is the package's library files merged with its in-package
	// _test.go files (the package as the test binary compiles it).
	// Diagnostics are restricted to the test files — the library files
	// are re-checked only for type information.
	Test
	// XTest is the external test package (package foo_test).
	XTest
)

// Unit is one type-checked compilation unit.
type Unit struct {
	// ImportPath is the unit's package path; XTest units carry the
	// conventional "_test" suffix.
	ImportPath string
	// Kind says which of the package's file sets this unit covers.
	Kind UnitKind
	// Files are the parsed syntax trees, in go list order.
	Files []*ast.File
	// Pkg and Info are the type-check results.
	Pkg  *types.Package
	Info *types.Info

	reportable map[string]bool
}

// Reportable says whether diagnostics at pos belong to this unit: a Test
// unit re-checks library files for type information but only its
// _test.go files are reportable, so findings in shared files are not
// duplicated across units.
func (u *Unit) Reportable(fset *token.FileSet, pos token.Pos) bool {
	return u.reportable[fset.Position(pos).Filename]
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load enumerates the packages matching patterns (relative to dir, via
// `go list`), parses them, and type-checks every unit from source using
// the standard library's source importer. It is the offline stand-in for
// golang.org/x/tools/go/packages: all dependencies — including the
// standard library — are resolved from source, so no export data, build
// cache, or network is required. Cgo is disabled for the duration; the
// analyzed tree is pure Go and the cgo fallbacks of net et al.
// type-check identically.
func Load(dir string, patterns []string) (*token.FileSet, []*Unit, error) {
	build.Default.CgoEnabled = false

	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var units []*Unit
	for _, p := range pkgs {
		lib := absFiles(p.Dir, p.GoFiles)
		tests := absFiles(p.Dir, p.TestGoFiles)
		xtests := absFiles(p.Dir, p.XTestGoFiles)
		if len(lib) > 0 {
			u, err := check(fset, imp, p.ImportPath, Lib, lib, lib)
			if err != nil {
				return nil, nil, err
			}
			units = append(units, u)
		}
		if len(tests) > 0 {
			u, err := check(fset, imp, p.ImportPath, Test, append(append([]string{}, lib...), tests...), tests)
			if err != nil {
				return nil, nil, err
			}
			units = append(units, u)
		}
		if len(xtests) > 0 {
			u, err := check(fset, imp, p.ImportPath+"_test", XTest, xtests, xtests)
			if err != nil {
				return nil, nil, err
			}
			units = append(units, u)
		}
	}
	return fset, units, nil
}

// check parses and type-checks one unit. reportable lists the files
// diagnostics may target (a subset of files).
func check(fset *token.FileSet, imp types.Importer, path string, kind UnitKind, files, reportable []string) (*Unit, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", f, err)
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	rep := make(map[string]bool, len(reportable))
	for _, f := range reportable {
		rep[f] = true
	}
	return &Unit{ImportPath: path, Kind: kind, Files: syntax, Pkg: pkg, Info: info, reportable: rep}, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

// Finding is one diagnostic resolved to a printable position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

// Run applies every analyzer to every unit (subject to filter; a nil
// filter applies everything everywhere) and returns the findings sorted
// by position, with findings matching a //cdtlint:ignore directive
// diverted to the suppressed list (also sorted). Malformed directives
// are findings under the reserved "cdtlint" analyzer name. Analyzer
// errors abort the run — they indicate a broken analyzer or
// unanalyzable input, not a finding.
func Run(fset *token.FileSet, units []*Unit, analyzers []*Analyzer, filter func(*Analyzer, *Unit) bool) ([]Finding, []SuppressedFinding, error) {
	prog := NewProgram(fset, units)
	var findings []Finding
	var suppressed []SuppressedFinding
	seenMalformed := make(map[string]bool)
	for _, u := range units {
		sups, malformed := CollectSuppressions(fset, u.Files)
		for _, m := range malformed {
			// A Test unit re-parses library files; report each bad
			// directive once, from whichever unit sees it first.
			key := posKey(m.Position.Filename, m.Position.Line)
			if seenMalformed[key] || !u.reportable[m.Position.Filename] {
				continue
			}
			seenMalformed[key] = true
			findings = append(findings, m)
		}
		for _, a := range analyzers {
			if filter != nil && !filter(a, u) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.Info,
				Prog:      prog,
			}
			unit := u
			pass.Report = func(d Diagnostic) {
				if !unit.Reportable(fset, d.Pos) {
					return
				}
				f := Finding{
					Analyzer: a.Name,
					Position: fset.Position(d.Pos),
					Message:  d.Message,
				}
				if sup, ok := sups.Match(a.Name, f.Position); ok {
					suppressed = append(suppressed, SuppressedFinding{Finding: f, Reason: sup.Reason})
					return
				}
				findings = append(findings, f)
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %v", a.Name, u.ImportPath, err)
			}
		}
	}
	sortFindings(findings)
	sort.Slice(suppressed, func(i, j int) bool { return findingLess(suppressed[i].Finding, suppressed[j].Finding) })
	return findings, suppressed, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool { return findingLess(findings[i], findings[j]) })
}

func findingLess(a, b Finding) bool {
	pa, pb := a.Position, b.Position
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	return a.Analyzer < b.Analyzer
}
