package matrixprofile

import (
	"math"
	"math/rand"
	"testing"
)

// sine builds a clean periodic series.
func sine(n int, period float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2 * math.Pi * float64(i) / period)
	}
	return out
}

// bruteForce computes the matrix profile naively for verification.
func bruteForce(values []float64, m, excl int) []float64 {
	n := len(values) - m + 1
	znorm := func(start int) []float64 {
		sub := values[start : start+m]
		mean, sd := stats(sub)
		out := make([]float64, m)
		for i, v := range sub {
			if sd < 1e-12 {
				out[i] = 0
			} else {
				out[i] = (v - mean) / sd
			}
		}
		return out
	}
	profile := make([]float64, n)
	for i := 0; i < n; i++ {
		best := math.Inf(1)
		zi := znorm(i)
		_, sdI := stats(values[i : i+m])
		for j := 0; j < n; j++ {
			if abs(i-j) < excl {
				continue
			}
			_, sdJ := stats(values[j : j+m])
			var d float64
			ci, cj := sdI < 1e-12, sdJ < 1e-12
			switch {
			case ci && cj:
				d = 0
			case ci || cj:
				d = math.Sqrt(float64(m))
			default:
				zj := znorm(j)
				s := 0.0
				for k := 0; k < m; k++ {
					diff := zi[k] - zj[k]
					s += diff * diff
				}
				d = math.Sqrt(s)
			}
			if d < best {
				best = d
			}
		}
		profile[i] = best
	}
	return profile
}

func stats(sub []float64) (mean, sd float64) {
	for _, v := range sub {
		mean += v
	}
	mean /= float64(len(sub))
	ss := 0.0
	for _, v := range sub {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(sub)))
}

func TestComputeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 120)
	for i := range values {
		values[i] = rng.Float64()
	}
	m := 8
	p, err := Compute(values, m)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(values, m, m/2)
	for i := range want {
		if math.Abs(p.Values[i]-want[i]) > 1e-6 {
			t.Fatalf("profile[%d] = %v, want %v", i, p.Values[i], want[i])
		}
	}
}

func TestComputeMatchesBruteForceWithConstantRuns(t *testing.T) {
	values := make([]float64, 80)
	rng := rand.New(rand.NewSource(2))
	for i := range values {
		if i%17 < 6 {
			values[i] = 0.5 // constant stretches
		} else {
			values[i] = rng.Float64()
		}
	}
	m := 6
	p, err := Compute(values, m)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(values, m, m/2)
	for i := range want {
		if math.Abs(p.Values[i]-want[i]) > 1e-6 {
			t.Fatalf("profile[%d] = %v, want %v", i, p.Values[i], want[i])
		}
	}
}

func TestDiscordDetectsAnomaly(t *testing.T) {
	values := sine(400, 40)
	// Plant a discord: distort one cycle.
	for i := 200; i < 210; i++ {
		values[i] += 2.5
	}
	m := 20
	p, err := Compute(values, m)
	if err != nil {
		t.Fatal(err)
	}
	discords := p.Discords(1, 0)
	if len(discords) != 1 {
		t.Fatal("no discord found")
	}
	// The top discord must overlap the planted anomaly region.
	if discords[0] < 200-m || discords[0] > 210 {
		t.Errorf("discord at %d, planted anomaly at 200..210", discords[0])
	}
}

func TestPeriodicSeriesLowProfile(t *testing.T) {
	values := sine(300, 30)
	p, err := Compute(values, 30)
	if err != nil {
		t.Fatal(err)
	}
	// A perfectly periodic series has near-zero profile everywhere.
	for i, v := range p.Values {
		if v > 0.1 {
			t.Fatalf("profile[%d] = %v on periodic data", i, v)
		}
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute([]float64{1, 2, 3}, 1); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := Compute([]float64{1, 2, 3}, 3); err == nil {
		t.Error("too-short series accepted")
	}
}

func TestProfileIndexSymmetricNeighbor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	values := make([]float64, 100)
	for i := range values {
		values[i] = rng.Float64()
	}
	p, err := Compute(values, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range p.Index {
		if j < 0 {
			t.Fatalf("profile[%d] has no neighbor", i)
		}
		if abs(i-j) < 5 {
			t.Fatalf("neighbor %d of %d violates exclusion zone", j, i)
		}
	}
}

func TestDiscordsNonOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	values := make([]float64, 200)
	for i := range values {
		values[i] = rng.Float64()
	}
	m := 10
	p, err := Compute(values, m)
	if err != nil {
		t.Fatal(err)
	}
	discords := p.Discords(5, m)
	for i := 0; i < len(discords); i++ {
		for j := i + 1; j < len(discords); j++ {
			if abs(discords[i]-discords[j]) <= m {
				t.Errorf("discords %d and %d overlap", discords[i], discords[j])
			}
		}
	}
}

func TestWindowScores(t *testing.T) {
	values := sine(200, 20)
	for i := 100; i < 105; i++ {
		values[i] = 3
	}
	p, err := Compute(values, 10)
	if err != nil {
		t.Fatal(err)
	}
	starts := []int{0, 50, 95, 150}
	scores := p.WindowScores(starts, 12)
	// The window covering the anomaly must have the top score.
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	if starts[best] != 95 {
		t.Errorf("best window starts at %d, want 95 (scores %v)", starts[best], scores)
	}
}

func TestRollingStats(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5}
	means, stds := rollingStats(values, 3)
	wantMeans := []float64{2, 3, 4}
	for i := range wantMeans {
		if math.Abs(means[i]-wantMeans[i]) > 1e-12 {
			t.Errorf("mean[%d] = %v, want %v", i, means[i], wantMeans[i])
		}
		wantStd := math.Sqrt(2.0 / 3.0)
		if math.Abs(stds[i]-wantStd) > 1e-12 {
			t.Errorf("std[%d] = %v, want %v", i, stds[i], wantStd)
		}
	}
}
