package cdt

import (
	"testing"
)

func TestStreamMatchesBatchDetection(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	target := spikySeries("target", 300, []int{80, 190}, 44)

	// The stream normalizes with a fixed scale; use the target's own
	// range so batch (min-max) and stream agree.
	tmin, tmax, err := target.MinMax()
	if err != nil {
		t.Fatal(err)
	}
	stream, err := model.NewStream(Scale{Min: tmin, Max: tmax})
	if err != nil {
		t.Fatal(err)
	}
	var streamFired = map[int]bool{} // window start -> fired
	for _, v := range target.Values {
		for _, d := range stream.Push(v) {
			streamFired[d.WindowStart] = true
			if d.WindowEnd-d.WindowStart+1 != model.Opts.Omega {
				t.Fatalf("detection span %d..%d, want width %d", d.WindowStart, d.WindowEnd, model.Opts.Omega)
			}
		}
	}
	batch, err := model.DetectWindows(target)
	if err != nil {
		t.Fatal(err)
	}
	for wi, fired := range batch {
		// Batch window wi covers points wi+1..wi+ω → stream start wi+1.
		if fired != streamFired[wi+1] {
			t.Fatalf("window %d: batch %v, stream %v", wi, fired, streamFired[wi+1])
		}
	}
	if !stream.Ready() {
		t.Error("stream should be ready after a full series")
	}
	if stream.Points() != target.Len() {
		t.Errorf("points = %d", stream.Points())
	}
}

func TestStreamWarmup(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	stream, err := model.NewStream(Scale{Min: 0, Max: 100})
	if err != nil {
		t.Fatal(err)
	}
	// ω labels need ω+2 points; until then nothing can fire.
	for i := 0; i < model.Opts.Omega+1; i++ {
		if got := stream.Push(50); got != nil {
			t.Fatalf("detection during warm-up at point %d", i)
		}
	}
	if stream.Ready() {
		t.Error("ready before the first full window")
	}
}

func TestStreamRejectsDegenerateScale(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	if _, err := model.NewStream(Scale{Min: 5, Max: 5}); err == nil {
		t.Error("degenerate scale accepted")
	}
	if _, err := model.NewStream(Scale{Min: 7, Max: 3}); err == nil {
		t.Error("inverted scale accepted")
	}
}

func TestStreamClampsOutOfRange(t *testing.T) {
	sc := Scale{Min: 0, Max: 10}
	if sc.normalize(-5) != 0 || sc.normalize(15) != 1 {
		t.Error("clamping wrong")
	}
	if sc.normalize(5) != 0.5 {
		t.Error("normalization wrong")
	}
}

func TestStreamReset(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 4, Delta: 2})
	stream, err := model.NewStream(Scale{Min: 0, Max: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		stream.Push(float64(i))
	}
	stream.Reset()
	if stream.Points() != 0 || stream.Ready() {
		t.Error("reset incomplete")
	}
	// Usable again after reset.
	for i := 0; i < 20; i++ {
		stream.Push(float64(i))
	}
	if !stream.Ready() {
		t.Error("stream not ready after refill")
	}
}

func TestStreamDetectsSpikeLive(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	stream, err := model.NewStream(Scale{Min: 40, Max: 200})
	if err != nil {
		t.Fatal(err)
	}
	spike := spikySeries("live", 200, []int{100}, 77)
	var hits []Detection
	for _, v := range spike.Values {
		hits = append(hits, stream.Push(v)...)
	}
	if len(hits) == 0 {
		t.Fatal("spike not detected in streaming mode")
	}
	covered := false
	for _, d := range hits {
		if d.WindowStart <= 100 && 100 <= d.WindowEnd {
			covered = true
		}
	}
	if !covered {
		t.Errorf("no detection covers the spike: %+v", hits)
	}
}
