package analysis

// Cross-function facts. PR 3's analyzers were strictly intra-function;
// the hot-path allocation check needs to reason about what a hot loop
// calls, transitively, across every loaded package. This file adds the
// minimal whole-program layer: a Program wrapping one load's units and a
// lazily-built static call graph over their declared functions.
//
// Identity note: the loader type-checks each unit independently, so a
// package that is both explicitly loaded and imported by another unit
// exists twice as distinct *types.Package universes (the unit's own
// check vs. the shared source importer). Object pointers therefore do
// not work as cross-unit function keys; the graph keys functions by
// their stable full name (types.Func.FullName — e.g.
// "(*cdt/internal/engine.Engine).Sweep"), which both universes agree
// on.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// Program is one load's worth of units plus lazily-computed
// whole-program facts. All passes of a Run share one Program.
type Program struct {
	Fset  *token.FileSet
	Units []*Unit

	cgOnce sync.Once
	cg     *CallGraph
}

// NewProgram wraps a loaded unit set.
func NewProgram(fset *token.FileSet, units []*Unit) *Program {
	return &Program{Fset: fset, Units: units}
}

// CallGraph returns the program's static call graph, built once on
// first use.
func (p *Program) CallGraph() *CallGraph {
	p.cgOnce.Do(func() { p.cg = buildCallGraph(p.Units) })
	return p.cg
}

// CallGraph is a static over-approximation-free call graph: edges exist
// only for calls the type checker resolves to a declared function or
// concrete method. Interface dispatch, function values, and calls into
// packages outside the load (the standard library) have no edges — the
// consumers that need those model them separately.
type CallGraph struct {
	// Nodes maps FuncID to the function's node. Only functions declared
	// in a loaded unit appear.
	Nodes map[string]*CallNode
}

// CallNode is one declared function or method and its resolved call
// sites.
type CallNode struct {
	// ID is the function's FuncID.
	ID string
	// Decl is the function's syntax, body included.
	Decl *ast.FuncDecl
	// Unit is the unit declaring the function. When a function is
	// visible from several units (library files re-checked by a Test
	// unit), the Lib unit wins.
	Unit *Unit
	// Calls lists the body's resolved static call sites, in source
	// order. Calls made inside func literals are attributed to the
	// enclosing declaration.
	Calls []CallSite
}

// CallSite is one resolved call expression.
type CallSite struct {
	// Callee is the called function's FuncID. The callee has a node in
	// the graph only when it is declared in a loaded unit.
	Callee string
	// Pos is the call's position.
	Pos token.Pos
	// InLoop reports whether the call sits inside a for/range statement
	// of the enclosing function (at any nesting depth, including via a
	// func literal declared inside the loop).
	InLoop bool
}

// FuncID returns the stable cross-unit identity of fn: its full
// name, with generic instantiations folded onto their origin.
func FuncID(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return fn.FullName()
}

// buildCallGraph walks every unit's declarations. Lib units are walked
// first so shared declarations resolve to their library unit.
func buildCallGraph(units []*Unit) *CallGraph {
	g := &CallGraph{Nodes: make(map[string]*CallNode)}
	ordered := make([]*Unit, 0, len(units))
	for _, u := range units {
		if u.Kind == Lib {
			ordered = append(ordered, u)
		}
	}
	for _, u := range units {
		if u.Kind != Lib {
			ordered = append(ordered, u)
		}
	}
	for _, u := range ordered {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := FuncID(obj)
				if _, seen := g.Nodes[id]; seen {
					continue
				}
				g.Nodes[id] = &CallNode{
					ID:    id,
					Decl:  fd,
					Unit:  u,
					Calls: collectCalls(u.Info, fd.Body),
				}
			}
		}
	}
	return g
}

// collectCalls resolves the call expressions of one body, tracking loop
// depth so each site knows whether it executes per iteration.
func collectCalls(info *types.Info, body *ast.BlockStmt) []CallSite {
	var sites []CallSite
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m.Init != nil {
					walk(m.Init, inLoop)
				}
				if m.Cond != nil {
					walk(m.Cond, true)
				}
				if m.Post != nil {
					walk(m.Post, true)
				}
				walk(m.Body, true)
				return false
			case *ast.RangeStmt:
				walk(m.X, inLoop)
				walk(m.Body, true)
				return false
			case *ast.CallExpr:
				if fn := calleeOf(info, m); fn != nil {
					sites = append(sites, CallSite{Callee: FuncID(fn), Pos: m.Pos(), InLoop: inLoop})
				}
				return true
			}
			return true
		})
	}
	walk(body, false)
	return sites
}

// calleeOf resolves a call's static target: a declared function, a
// concrete method through a selector, or nil for interface dispatch,
// function values, conversions, and builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface methods have no body to follow; their
				// FullName would never match a declared node anyway, but
				// skipping them keeps edge lists honest.
				if !isInterfaceMethod(fn) {
					return fn
				}
			}
			return nil
		}
		// Package-qualified call (pkg.Fn).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}
