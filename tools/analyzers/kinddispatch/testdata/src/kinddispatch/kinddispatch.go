// Package kinddispatch is lint-test fodder for the kinddispatch
// analyzer: switches over artifact kinds must be exhaustive or carry a
// default.
package kinddispatch

// The kind registry: every string constant whose name matches the
// Kind* convention, deduplicated by value.
const (
	KindModel   = "model"
	KindPyramid = "pyramid"

	// kindPyramidAlias shares a value with KindPyramid; the registry
	// dedupes by value so it does not demand a second case.
	kindPyramidAlias = "pyramid"

	// plainConstant is a string constant outside the naming
	// convention and must not anchor a kind switch.
	plainConstant = "other"
)

// Artifact mirrors the shape of cdt.Artifact.
type Artifact interface {
	Kind() string
}

// Model is a registered artifact implementation.
type Model struct{}

// Kind implements Artifact.
func (*Model) Kind() string { return KindModel }

// Pyramid is the second registered artifact implementation.
type Pyramid struct{}

// Kind implements Artifact.
func (*Pyramid) Kind() string { return KindPyramid }

func missingKind(k string) {
	switch k { // want `switch on artifact kind does not handle registered kind "pyramid" and has no default`
	case KindModel:
	}
}

func missingKindSuppressed(k string) {
	switch k { //cdtlint:ignore kinddispatch test fixture proves suppression works
	case KindModel:
	}
}

func exhaustiveKinds(k string) {
	switch k {
	case KindModel:
	case KindPyramid:
	}
}

func defaultedKind(k string) error {
	switch k {
	case KindModel:
		return nil
	default:
		return errUnknown
	}
}

// mixedLiteralCase covers a registered value by literal rather than by
// constant name; value coverage is what counts.
func mixedLiteralCase(k string) {
	switch k {
	case KindModel:
	case "pyramid":
	}
}

// plainStringSwitch references no kind constant and is not a kind
// switch at all.
func plainStringSwitch(s string) {
	switch s {
	case "a":
	case plainConstant:
	}
}

// kindOf mirrors the serving gate's tag shape: the switched value is a
// call result, not a plain variable.
func kindOf(a Artifact) string { return a.Kind() }

// shadowSameKindGate is the shadow-start shape — dispatch a candidate's
// kind before pairing it with the incumbent. Anchoring must work off
// the case constants even though the tag is a call expression.
func shadowSameKindGate(candidate, incumbent Artifact) bool {
	switch kindOf(candidate) { // want `switch on artifact kind does not handle registered kind "pyramid" and has no default`
	case KindModel:
		return kindOf(incumbent) == KindModel
	}
	return false
}

// shadowSameKindGateExhaustive handles every registered kind; the
// per-kind pairing compiles down to same-kind comparisons.
func shadowSameKindGateExhaustive(candidate, incumbent Artifact) bool {
	switch kindOf(candidate) {
	case KindModel:
		return kindOf(incumbent) == KindModel
	case KindPyramid:
		return kindOf(incumbent) == KindPyramid
	}
	return false
}

func missingImpl(a Artifact) {
	switch a.(type) { // want `type switch on Artifact does not handle implementation kinddispatch\.Pyramid and has no default`
	case *Model:
	}
}

func missingImplBound(a Artifact) {
	switch v := a.(type) { // want `type switch on Artifact does not handle implementation kinddispatch\.Model and has no default`
	case *Pyramid:
		_ = v
	}
}

func exhaustiveImpls(a Artifact) {
	switch a.(type) {
	case *Model:
	case *Pyramid:
	case nil:
	}
}

func defaultedImpl(a Artifact) error {
	switch a.(type) {
	case *Model:
		return nil
	default:
		return errUnknown
	}
}

// otherIface is not named Artifact; type switches over it are out of
// scope no matter how partial.
type otherIface interface{ Kind() string }

func otherSwitch(o otherIface) {
	switch o.(type) {
	case *Model:
	}
}

type lintError string

func (e lintError) Error() string { return string(e) }

var errUnknown error = lintError("unknown artifact kind")
