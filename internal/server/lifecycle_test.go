package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	cdt "cdt"
	"cdt/internal/modelstore"
)

// modelBytes serializes a model to its JSON document.
func modelBytes(tb testing.TB, m *cdt.Model) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// trainVariant trains a second "spikes"-compatible model from a
// different cut of data — the stand-in for a retrained candidate.
func trainVariant(tb testing.TB, seed int64) *cdt.Model {
	tb.Helper()
	model, err := cdt.Fit(
		[]*cdt.Series{spiky("train", 480, []int{70, 180, 290, 400}, seed)},
		cdt.Options{Omega: 5, Delta: 2},
	)
	if err != nil {
		tb.Fatal(err)
	}
	return model
}

// newStoreServer builds a store with "spikes" v1 promoted and v2
// published unpromoted, plus a server over it.
func newStoreServer(tb testing.TB, cfg Config) (*Server, *httptest.Server, *modelstore.Store) {
	tb.Helper()
	st, err := modelstore.Open(tb.TempDir())
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := st.Publish("spikes", modelBytes(tb, trainModel(tb)), "cli", "v1"); err != nil {
		tb.Fatal(err)
	}
	if err := st.Promote("spikes", 1); err != nil {
		tb.Fatal(err)
	}
	if _, err := st.Publish("spikes", modelBytes(tb, trainVariant(tb, 23)), "cli", "v2 candidate"); err != nil {
		tb.Fatal(err)
	}
	cfg.Store = st
	s, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, st
}

// batchDetect posts one batch request of n series against model name.
func batchDetect(tb testing.TB, ts *httptest.Server, name string, n int, seed int64) batchResponse {
	tb.Helper()
	req := batchRequest{}
	for i := 0; i < n; i++ {
		req.Series = append(req.Series, seriesPayload{
			Name:   fmt.Sprintf("s%d", i),
			Values: spiky("s", 300, []int{120, 240}, seed+int64(i)).Values,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/models/"+name+"/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var out batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		tb.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("batch detect: status %d", resp.StatusCode)
	}
	return out
}

func metricsText(tb testing.TB, ts *httptest.Server) string {
	tb.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return string(b)
}

// TestModelLifecycleEndToEnd is the acceptance walk: publish a candidate
// next to the serving incumbent, shadow it against replayed batch and
// stream traffic, read the disagreement counters off /metrics and the
// summary endpoint, promote atomically under a live session, roll back —
// and find every transition in the audit log.
func TestModelLifecycleEndToEnd(t *testing.T) {
	s, ts, st := newStoreServer(t, Config{})

	// Serving v1.
	var models struct{ Models []ModelInfo }
	if code := doJSON(t, "GET", ts.URL+"/models", nil, &models); code != 200 {
		t.Fatalf("list: status %d", code)
	}
	if len(models.Models) != 1 || models.Models[0].Version != 1 {
		t.Fatalf("expected spikes v1 serving, got %+v", models.Models)
	}

	// A session opened before any shadow exists must survive everything.
	var preSession createStreamResponse
	if code := doJSON(t, "POST", ts.URL+"/streams", createStreamRequest{Model: "spikes", Min: 60, Max: 420}, &preSession); code != 201 {
		t.Fatalf("create stream: status %d", code)
	}

	// No shadow yet: summary is 404.
	if code := doJSON(t, "GET", ts.URL+"/models/spikes/shadow", nil, nil); code != 404 {
		t.Fatalf("shadow summary before start: status %d", code)
	}
	// Shadowing the serving version is refused.
	if code := doJSON(t, "POST", ts.URL+"/models/spikes/shadow", versionRequest{Version: 1}, nil); code != 400 {
		t.Fatal("shadowing the serving version was accepted")
	}
	var sum ShadowSummary
	if code := doJSON(t, "POST", ts.URL+"/models/spikes/shadow", versionRequest{Version: 2}, &sum); code != 201 {
		t.Fatalf("shadow start: status %d", code)
	}
	if sum.CandidateVersion != 2 || sum.Windows != 0 {
		t.Fatalf("fresh shadow summary: %+v", sum)
	}

	// Replay batch traffic; every series also feeds the candidate.
	for i := 0; i < 4; i++ {
		batchDetect(t, ts, "spikes", 4, int64(100+i))
	}
	// Stream traffic through a session created under the shadow mirrors
	// point-for-point.
	var mirrored createStreamResponse
	if code := doJSON(t, "POST", ts.URL+"/streams", createStreamRequest{Model: "spikes", Min: 60, Max: 420}, &mirrored); code != 201 {
		t.Fatalf("create mirrored stream: status %d", code)
	}
	feed := spiky("live", 300, []int{80, 220}, 31)
	if code := doJSON(t, "POST", ts.URL+"/streams/"+mirrored.ID+"/points", pushPointsRequest{Points: feed.Values}, nil); code != 200 {
		t.Fatal("push to mirrored stream failed")
	}
	s.shadows.drain()

	if code := doJSON(t, "GET", ts.URL+"/models/spikes/shadow", nil, &sum); code != 200 {
		t.Fatalf("shadow summary: status %d", code)
	}
	if sum.Windows == 0 {
		t.Fatal("shadow saw no windows after replayed traffic")
	}
	if sum.IncumbentFired == 0 {
		t.Fatal("incumbent never fired on spiked traffic")
	}
	if sum.Agreement < 0 || sum.Agreement > 1 {
		t.Fatalf("agreement %v out of range", sum.Agreement)
	}
	if sum.Agree+sum.IncumbentOnly+sum.CandidateOnly == 0 {
		t.Fatal("comparison produced no outcomes")
	}

	// The disagreement counters and fire-rate histograms are on /metrics.
	metrics := metricsText(t, ts)
	for _, want := range []string{
		`cdtserve_shadow_windows_total{model="spikes",outcome="agree"}`,
		`cdtserve_shadow_windows_total{model="spikes",outcome="incumbent_only"}`,
		`cdtserve_shadow_windows_total{model="spikes",outcome="candidate_only"}`,
		`cdtserve_shadow_fire_rate_bucket{model="spikes",role="incumbent",`,
		`cdtserve_shadow_fire_rate_bucket{model="spikes",role="candidate",`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	// Promote v2. Atomic: pointer moves, registry swaps, shadow retires.
	var promoted map[string]any
	if code := doJSON(t, "POST", ts.URL+"/models/spikes/promote", versionRequest{Version: 2}, &promoted); code != 200 {
		t.Fatalf("promote: status %d (%v)", code, promoted)
	}
	if v, _ := s.registry.Version("spikes"); v != 2 {
		t.Fatalf("serving version after promote = %d", v)
	}
	if code := doJSON(t, "GET", ts.URL+"/models/spikes/shadow", nil, nil); code != 404 {
		t.Fatal("shadow still active after its candidate was promoted")
	}

	// The pre-promote session is still alive and scoring (pinned model).
	if code := doJSON(t, "POST", ts.URL+"/streams/"+preSession.ID+"/points", pushPointsRequest{Points: feed.Values}, nil); code != 200 {
		t.Fatal("live session dropped by promote")
	}

	// Roll back to v1.
	var rolled map[string]any
	if code := doJSON(t, "POST", ts.URL+"/models/spikes/rollback", nil, &rolled); code != 200 {
		t.Fatalf("rollback: status %d (%v)", code, rolled)
	}
	if v, _ := s.registry.Version("spikes"); v != 1 {
		t.Fatalf("serving version after rollback = %d", v)
	}

	// Every transition is in the audit log, in order.
	events, err := st.Audit(0)
	if err != nil {
		t.Fatal(err)
	}
	type step struct {
		event   string
		version int
	}
	var got []step
	for _, e := range events {
		got = append(got, step{e.Event, e.Version})
	}
	want := []step{
		{modelstore.EventPublish, 1},
		{modelstore.EventPromote, 1},
		{modelstore.EventPublish, 2},
		{modelstore.EventShadow, 2},  // started
		{modelstore.EventPromote, 2}, // via endpoint
		{modelstore.EventShadow, 2},  // stopped by promote
		{modelstore.EventRollback, 1},
	}
	if len(got) != len(want) {
		t.Fatalf("audit log has %d events, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("audit[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestShadowStopEndpoint covers the explicit DELETE path and its audit
// trail.
func TestShadowStopEndpoint(t *testing.T) {
	_, ts, st := newStoreServer(t, Config{})
	if code := doJSON(t, "POST", ts.URL+"/models/spikes/shadow", versionRequest{Version: 2}, nil); code != 201 {
		t.Fatalf("shadow start: status %d", code)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/models/spikes/shadow", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("shadow stop: status %d", resp.StatusCode)
	}
	if code := doJSON(t, "GET", ts.URL+"/models/spikes/shadow", nil, nil); code != 404 {
		t.Fatal("shadow survived DELETE")
	}
	events, err := st.Audit(0)
	if err != nil {
		t.Fatal(err)
	}
	last := events[len(events)-1]
	if last.Event != modelstore.EventShadow || last.Detail != "shadow stopped" {
		t.Fatalf("last audit event = %+v", last)
	}
}

// TestLifecycleEndpointsRequireStore: a directory-backed server refuses
// the store-only endpoints instead of panicking or half-working.
func TestLifecycleEndpointsRequireStore(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	if code := doJSON(t, "POST", ts.URL+"/models/spikes/promote", versionRequest{Version: 1}, nil); code != 400 {
		t.Errorf("promote on dir-backed server: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/models/spikes/rollback", nil, nil); code != 400 {
		t.Errorf("rollback on dir-backed server: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/models/spikes/shadow", versionRequest{Version: 1}, nil); code != 400 {
		t.Errorf("shadow on dir-backed server: status %d", code)
	}
}

// TestHealthzUnreadyWhenStoreBroken: /healthz flips to 503 when the
// manifest can no longer be resolved.
func TestHealthzStoreReadiness(t *testing.T) {
	s, ts, _ := newStoreServer(t, Config{})
	var health map[string]any
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz: status %d (%v)", code, health)
	}
	if health["status"] != "ok" {
		t.Fatalf("health = %v", health)
	}
	_ = s // store dir is owned by t.TempDir; breaking it is exercised in modelstore's own tests
}

// stubRetrainer hands back a pre-serialized model and signals the call.
type stubRetrainer struct {
	doc    []byte
	called chan string
}

func (r *stubRetrainer) Retrain(name string, incumbent *cdt.Model) ([]byte, string, error) {
	select {
	case r.called <- name:
	default:
	}
	return r.doc, "stub retrain", nil
}

// TestDriftMarksStaleAndRetrains drives batch traffic whose fire rate
// sits far above the training baseline, with a tight bound and a tiny
// window, and expects: the stale flag on /metrics and /healthz, a
// single-flight background retrain publishing an unpromoted candidate,
// and the serving version untouched.
func TestDriftMarksStaleAndRetrains(t *testing.T) {
	stub := &stubRetrainer{called: make(chan string, 1)}
	s, ts, st := newStoreServer(t, Config{
		DriftWindow: 64,
		DriftBound:  0.02,
		Retrainer:   stub,
	})
	stub.doc = modelBytes(t, trainVariant(t, 77))

	// Spike-dense traffic: fire rate far above the ~1% training baseline.
	spikes := make([]int, 0, 30)
	for i := 10; i < 300; i += 10 {
		spikes = append(spikes, i)
	}
	req := batchRequest{Series: []seriesPayload{{Name: "hot", Values: spiky("hot", 300, spikes, 3).Values}}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/models/spikes/detect", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	if stale := s.drift.staleModels(); len(stale) != 1 || stale[0] != "spikes" {
		t.Fatalf("stale models = %v", stale)
	}
	var health map[string]any
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz: status %d", code)
	}
	if health["status"] != "degraded" {
		t.Fatalf("health status = %v, want degraded", health["status"])
	}
	if !strings.Contains(metricsText(t, ts), `cdtserve_model_stale{model="spikes"} 1`) {
		t.Error("stale gauge not on /metrics")
	}

	// The retrain fires once and publishes an unpromoted candidate.
	select {
	case name := <-stub.called:
		if name != "spikes" {
			t.Fatalf("retrained %q", name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retrainer never called")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		versions, current, err := st.Versions("spikes")
		if err != nil {
			t.Fatal(err)
		}
		if last := versions[len(versions)-1]; last.Source == "retrain" {
			if current == last.Version {
				t.Fatal("retrained candidate was auto-promoted")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retrained candidate never published")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v, _ := s.registry.Version("spikes"); v != 1 {
		t.Fatalf("serving version changed to %d during drift", v)
	}

	// Reload clears the stale flag (new baseline epoch).
	if code := doJSON(t, "POST", ts.URL+"/models/reload", nil, nil); code != 200 {
		t.Fatal("reload failed")
	}
	if stale := s.drift.staleModels(); len(stale) != 0 {
		t.Fatalf("stale after reload: %v", stale)
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("health after reload = %v", health)
	}
}

// TestConcurrentShadowPromoteHammer races live batch scoring and stream
// pushes against promote/rollback flips and shadow start/stop churn.
// Run under -race (the repo's test gate does) this is the concurrency
// proof for the lifecycle paths.
func TestConcurrentShadowPromoteHammer(t *testing.T) {
	s, ts, _ := newStoreServer(t, Config{})
	if code := doJSON(t, "POST", ts.URL+"/models/spikes/shadow", versionRequest{Version: 2}, nil); code != 201 {
		t.Fatalf("shadow start: status %d", code)
	}

	const iters = 30
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // batch traffic
		defer wg.Done()
		for i := 0; i < iters; i++ {
			batchDetect(t, ts, "spikes", 2, int64(i))
		}
	}()
	go func() { // stream traffic
		defer wg.Done()
		var sess createStreamResponse
		if code := doJSON(t, "POST", ts.URL+"/streams", createStreamRequest{Model: "spikes", Min: 60, Max: 420}, &sess); code != 201 {
			t.Error("create stream failed")
			return
		}
		feed := spiky("live", 64, []int{30}, 9)
		for i := 0; i < iters; i++ {
			if code := doJSON(t, "POST", ts.URL+"/streams/"+sess.ID+"/points", pushPointsRequest{Points: feed.Values}, nil); code != 200 {
				t.Error("push failed mid-hammer")
				return
			}
		}
	}()
	go func() { // promote/rollback flips
		defer wg.Done()
		for i := 0; i < iters; i++ {
			doJSON(t, "POST", ts.URL+"/models/spikes/promote", versionRequest{Version: 2}, nil)
			doJSON(t, "POST", ts.URL+"/models/spikes/rollback", nil, nil)
		}
	}()
	go func() { // shadow churn
		defer wg.Done()
		for i := 0; i < iters; i++ {
			doJSON(t, "POST", ts.URL+"/models/spikes/shadow", versionRequest{Version: 2}, nil)
			req, _ := http.NewRequest("DELETE", ts.URL+"/models/spikes/shadow", nil)
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	s.shadows.drain()

	// The server must still be coherent: healthz OK and a model serving.
	var health map[string]any
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz after hammer: status %d (%v)", code, health)
	}
	if s.registry.Len() != 1 {
		t.Fatalf("registry lost its model: %d", s.registry.Len())
	}
}
