// Package iforest implements Isolation Forest (Liu, Ting & Zhou 2008),
// the unsupervised scorer the PBAD baseline applies to its
// pattern-occurrence embeddings. Points that isolate in few random splits
// receive scores near 1; deep, hard-to-isolate points score near 0.5 or
// below.
package iforest

import (
	"fmt"
	"math"
	"math/rand"
)

// Options tunes the forest. The zero value selects the reference
// parameters of the original paper.
type Options struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// SampleSize is the sub-sampling size ψ per tree (default 256,
	// clamped to the dataset size).
	SampleSize int
	// Seed makes training reproducible.
	Seed int64
}

func (o Options) withDefaults(n int) Options {
	if o.Trees <= 0 {
		o.Trees = 100
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 256
	}
	if o.SampleSize > n {
		o.SampleSize = n
	}
	return o
}

// node is one isolation-tree node; leaves record the sample count that
// reached them.
type node struct {
	feature     int
	split       float64
	left, right *node
	size        int
}

// Forest is a trained isolation forest.
type Forest struct {
	trees []*node
	// c is the average path-length normalizer c(ψ).
	c float64
	// dims is the expected feature-vector width.
	dims int
}

// avgPathLength is c(n): the average unsuccessful-search path length in a
// BST of n nodes, used to normalize depths.
func avgPathLength(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649015329 // harmonic via ln + Euler–Mascheroni
	return 2*h - 2*float64(n-1)/float64(n)
}

// Fit trains a forest on points (each a feature vector of equal width).
func Fit(points [][]float64, opts Options) (*Forest, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("iforest: no points")
	}
	dims := len(points[0])
	if dims == 0 {
		return nil, fmt.Errorf("iforest: zero-width feature vectors")
	}
	for i, p := range points {
		if len(p) != dims {
			return nil, fmt.Errorf("iforest: point %d has %d features, want %d", i, len(p), dims)
		}
	}
	opts = opts.withDefaults(len(points))
	rng := rand.New(rand.NewSource(opts.Seed))
	maxDepth := int(math.Ceil(math.Log2(float64(opts.SampleSize)))) + 1
	f := &Forest{c: avgPathLength(opts.SampleSize), dims: dims}
	sample := make([][]float64, opts.SampleSize)
	for t := 0; t < opts.Trees; t++ {
		perm := rng.Perm(len(points))
		for i := 0; i < opts.SampleSize; i++ {
			sample[i] = points[perm[i]]
		}
		f.trees = append(f.trees, buildTree(sample, 0, maxDepth, rng))
	}
	return f, nil
}

// buildTree grows one isolation tree by random feature / random split
// until depth cap, singleton, or unsplittable data.
func buildTree(points [][]float64, depth, maxDepth int, rng *rand.Rand) *node {
	if len(points) <= 1 || depth >= maxDepth {
		return &node{size: len(points)}
	}
	dims := len(points[0])
	// Pick a feature with spread; give up after a few attempts (constant
	// block of points).
	for attempt := 0; attempt < dims; attempt++ {
		feat := rng.Intn(dims)
		min, max := points[0][feat], points[0][feat]
		for _, p := range points[1:] {
			if p[feat] < min {
				min = p[feat]
			}
			if p[feat] > max {
				max = p[feat]
			}
		}
		if max == min {
			continue
		}
		split := min + rng.Float64()*(max-min)
		var left, right [][]float64
		for _, p := range points {
			if p[feat] < split {
				left = append(left, p)
			} else {
				right = append(right, p)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			continue
		}
		return &node{
			feature: feat,
			split:   split,
			left:    buildTree(left, depth+1, maxDepth, rng),
			right:   buildTree(right, depth+1, maxDepth, rng),
		}
	}
	return &node{size: len(points)}
}

// pathLength descends to the leaf for p and returns depth plus the
// c(size) adjustment for the unexpanded subtree.
func pathLength(n *node, p []float64, depth int) float64 {
	for n.left != nil {
		if p[n.feature] < n.split {
			n = n.left
		} else {
			n = n.right
		}
		depth++
	}
	return float64(depth) + avgPathLength(n.size)
}

// Score returns the anomaly score s(p) = 2^(−E[h(p)]/c(ψ)) in (0,1];
// higher means more anomalous.
func (f *Forest) Score(p []float64) (float64, error) {
	if len(p) != f.dims {
		return 0, fmt.Errorf("iforest: point has %d features, want %d", len(p), f.dims)
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += pathLength(t, p, 0)
	}
	mean := sum / float64(len(f.trees))
	if f.c == 0 {
		return 0.5, nil
	}
	return math.Pow(2, -mean/f.c), nil
}

// ScoreAll scores a batch of points.
func (f *Forest) ScoreAll(points [][]float64) ([]float64, error) {
	out := make([]float64, len(points))
	for i, p := range points {
		s, err := f.Score(p)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}
