// Package matrixprofile implements the Matrix Profile baseline of §4.2
// (Yeh et al., "Matrix Profile I", ICDM 2016): the self-join matrix
// profile under z-normalized Euclidean distance, computed with the STOMP
// recurrence. Subsequences with a *large* profile value are far from
// every other subsequence — time-series discords — which is the anomaly
// notion the paper's comparison uses.
package matrixprofile

import (
	"fmt"
	"math"
)

// Profile is the self-join matrix profile of a series.
type Profile struct {
	// Values[i] is the z-normalized Euclidean distance from the
	// subsequence starting at i to its nearest non-trivial neighbor.
	Values []float64
	// Index[i] is the position of that nearest neighbor.
	Index []int
	// M is the subsequence length.
	M int
}

// Compute builds the self-join matrix profile of values with subsequence
// length m using the STOMP O(n²) recurrence with an exclusion zone of
// m/2 around the diagonal (trivial matches). It requires at least 2m
// points so every subsequence has a non-excluded neighbor.
func Compute(values []float64, m int) (*Profile, error) {
	if m < 2 {
		return nil, fmt.Errorf("matrixprofile: subsequence length %d, want >= 2", m)
	}
	n := len(values) - m + 1
	if n < 2 {
		return nil, fmt.Errorf("matrixprofile: series of %d points too short for m=%d", len(values), m)
	}
	excl := m / 2
	if excl < 1 {
		excl = 1
	}

	means, stds := rollingStats(values, m)

	p := &Profile{
		Values: make([]float64, n),
		Index:  make([]int, n),
		M:      m,
	}
	for i := range p.Values {
		p.Values[i] = math.Inf(1)
		p.Index[i] = -1
	}

	// First row of the dot-product matrix: QT[j] = Σ values[k]·values[j+k]
	// for query at 0.
	qt := make([]float64, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for k := 0; k < m; k++ {
			s += values[k] * values[j+k]
		}
		qt[j] = s
	}
	qtFirst := append([]float64(nil), qt...)

	update := func(i int) {
		for j := 0; j < n; j++ {
			if abs(i-j) < excl {
				continue
			}
			d := dist(qt[j], means[i], stds[i], means[j], stds[j], m)
			if d < p.Values[i] {
				p.Values[i] = d
				p.Index[i] = j
			}
			// The profile is symmetric: the pair (i,j) also updates j.
			if d < p.Values[j] {
				p.Values[j] = d
				p.Index[j] = i
			}
		}
	}
	update(0)
	for i := 1; i < n; i++ {
		// STOMP recurrence: QT_i[j] = QT_{i-1}[j-1]
		//   − values[i-1]·values[j-1] + values[i+m-1]·values[j+m-1].
		for j := n - 1; j >= 1; j-- {
			qt[j] = qt[j-1] - values[i-1]*values[j-1] + values[i+m-1]*values[j+m-1]
		}
		qt[0] = qtFirst[i]
		update(i)
	}
	return p, nil
}

// rollingStats returns per-window means and standard deviations.
func rollingStats(values []float64, m int) (means, stds []float64) {
	n := len(values) - m + 1
	means = make([]float64, n)
	stds = make([]float64, n)
	sum, sumSq := 0.0, 0.0
	for k := 0; k < m; k++ {
		sum += values[k]
		sumSq += values[k] * values[k]
	}
	for i := 0; i < n; i++ {
		mean := sum / float64(m)
		means[i] = mean
		variance := sumSq/float64(m) - mean*mean
		if variance < 0 {
			variance = 0
		}
		stds[i] = math.Sqrt(variance)
		if i+1 < n {
			sum += values[i+m] - values[i]
			sumSq += values[i+m]*values[i+m] - values[i]*values[i]
		}
	}
	return means, stds
}

// dist converts a dot product into the z-normalized Euclidean distance
// between two subsequences, handling constant (zero-std) subsequences by
// the standard convention: both constant → distance 0, one constant →
// maximal distance √m.
func dist(qt, meanI, stdI, meanJ, stdJ float64, m int) float64 {
	const eps = 1e-12
	ci, cj := stdI < eps, stdJ < eps
	switch {
	case ci && cj:
		return 0
	case ci || cj:
		return math.Sqrt(float64(m))
	}
	corr := (qt - float64(m)*meanI*meanJ) / (float64(m) * stdI * stdJ)
	if corr > 1 {
		corr = 1
	}
	if corr < -1 {
		corr = -1
	}
	return math.Sqrt(2 * float64(m) * (1 - corr))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Discords returns the k subsequence starts with the largest profile
// values, each at least excl apart (non-overlapping discords), best
// first.
func (p *Profile) Discords(k, excl int) []int {
	if excl < 1 {
		excl = p.M / 2
		if excl < 1 {
			excl = 1
		}
	}
	taken := make([]bool, len(p.Values))
	var out []int
	for len(out) < k {
		best, bestVal := -1, math.Inf(-1)
		for i, v := range p.Values {
			if !taken[i] && !math.IsInf(v, 1) && v > bestVal {
				best, bestVal = i, v
			}
		}
		if best < 0 {
			break
		}
		out = append(out, best)
		for i := best - excl; i <= best+excl; i++ {
			if i >= 0 && i < len(taken) {
				taken[i] = true
			}
		}
	}
	return out
}

// WindowScores aggregates the profile into anomaly scores for fixed
// windows (start, length) of the *original* series: a window's score is
// the maximum profile value among subsequences starting inside it. This
// is how the §4.2 comparison converts the profile to the shared
// window-level protocol.
func (p *Profile) WindowScores(starts []int, windowLen int) []float64 {
	out := make([]float64, len(starts))
	for wi, start := range starts {
		max := 0.0
		for i := start; i < start+windowLen && i < len(p.Values); i++ {
			if i >= 0 && !math.IsInf(p.Values[i], 1) && p.Values[i] > max {
				max = p.Values[i]
			}
		}
		out[wi] = max
	}
	return out
}
