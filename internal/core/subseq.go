package core

import (
	"math/bits"
	"slices"
	"sync"

	"cdt/internal/pattern"
)

// SubseqNFA is the incremental matcher for the gapped-subsequence ⊆o
// mode (MatchSubsequence). It consumes one label at a time and
// maintains, per tracked pattern and prefix length, the *latest start*:
// the greatest position s such that pattern[:j+1] embeds in order into
// the labels consumed from position s onward. Stepping a label advances,
// via a per-label-id bitmask, exactly the prefix slots that label can
// extend, so a step costs O(set bits) instead of O(total pattern
// length).
//
// Positions are global — the count of labels consumed since the NFA was
// created — and the NFA is never reset. A window covering global
// positions [ws, ws+n-1] contains pattern p iff, after stepping the
// window's last label, LatestStart(p) >= ws: an embedding that recent
// ends at or before the current position and so lies entirely inside
// the window, while embeddings begun before the window (including in a
// previous, unrelated run of labels) fail the >= ws test. That one
// comparison replaces a per-window rescan and is what makes both the
// incremental rule engine (internal/engine) and subsequence support
// counting O(1) amortized per label per pattern.
//
// The latest-start recurrence on reading label x at position i is, for
// every j with pattern[j] == x taken in descending j order:
//
//	latest[j] = i            if j == 0
//	latest[j] = latest[j-1]  otherwise
//
// The unconditional overwrite is sound because latest is monotone in j
// (an embedding of a longer prefix contains one of the shorter prefix
// with the same start, so latest[j-1] >= latest[j]), and descending
// order reads latest[j-1] before this step updates it.
type SubseqNFA struct {
	in  *Interner
	adv [][]subseqAdvance
	// off[p] is the offset of pattern p's prefix slots in latest; lenp[p]
	// its length.
	off    []int32
	lenp   []int32
	latest []int
	pos    int
}

// subseqAdvance says a label advances pattern pat at the prefix indices
// set in mask.
type subseqAdvance struct {
	pat  int32
	mask []uint64
}

// NewSubseqNFA builds the matcher for a fixed pattern set. Empty
// patterns are legal and match every window (mirroring
// Composition.MatchedBy on an empty composition).
func NewSubseqNFA(patterns [][]pattern.Label) *SubseqNFA {
	n := &SubseqNFA{in: NewInterner(slices.Values(patterns))}
	n.off = make([]int32, len(patterns))
	n.lenp = make([]int32, len(patterns))
	total := 0
	for p, pat := range patterns {
		n.off[p] = int32(total)
		n.lenp[p] = int32(len(pat))
		total += len(pat)
	}
	n.latest = make([]int, total)
	for i := range n.latest {
		n.latest[i] = -1
	}
	n.adv = make([][]subseqAdvance, n.in.N())
	for p, pat := range patterns {
		words := (len(pat) + 63) / 64
		masks := make(map[int32][]uint64)
		var order []int32 // first-occurrence order keeps adv deterministic
		for j, l := range pat {
			id := n.in.ID(l)
			m := masks[id]
			if m == nil {
				m = make([]uint64, words)
				masks[id] = m
				order = append(order, id)
			}
			m[j>>6] |= 1 << uint(j&63)
		}
		for _, id := range order {
			n.adv[id] = append(n.adv[id], subseqAdvance{pat: int32(p), mask: masks[id]})
		}
	}
	return n
}

// Step consumes the next label.
func (n *SubseqNFA) Step(l pattern.Label) {
	if id := n.in.ID(l); id >= 0 {
		for _, ad := range n.adv[id] {
			base := int(n.off[ad.pat])
			for b := len(ad.mask) - 1; b >= 0; b-- {
				w := ad.mask[b]
				for w != 0 {
					hi := 63 - bits.LeadingZeros64(w)
					w &^= 1 << uint(hi)
					j := b<<6 + hi
					if j == 0 {
						n.latest[base] = n.pos
					} else {
						n.latest[base+j] = n.latest[base+j-1]
					}
				}
			}
		}
	}
	n.pos++
}

// Pos returns the number of labels consumed (the next global position).
func (n *SubseqNFA) Pos() int { return n.pos }

// LatestStart returns the greatest global start position of an in-order
// embedding of pattern p in the labels consumed so far, or -1 when none
// exists. An empty pattern embeds at the current position.
func (n *SubseqNFA) LatestStart(p int) int {
	if n.lenp[p] == 0 {
		return n.pos
	}
	return n.latest[int(n.off[p])+int(n.lenp[p])-1]
}

// countSubsequenceSupports returns, per candidate, the class counts of
// the observations containing it as a gapped subsequence — the
// MatchSubsequence analogue of countContiguousSupports. Candidates are
// chunked across workers; each worker makes one pass over the
// observations with its own SubseqNFA, feeding maximal sliding runs one
// label at a time, so the pass costs O(windows·chunk + labels·advances)
// instead of countSupportsNaive's O(windows·ω·chunk) rescan.
func countSubsequenceSupports(obs []Observation, candidates []Composition, opts Options) []ClassCounts {
	counts := make([]ClassCounts, len(candidates))
	if len(candidates) == 0 || len(obs) == 0 {
		return counts
	}
	workers := opts.parallelism()
	if workers > len(candidates) {
		workers = len(candidates)
	}
	chunk := (len(candidates) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(candidates))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			pats := make([][]pattern.Label, hi-lo)
			for i := range pats {
				pats[i] = candidates[lo+i].Labels
			}
			nfa := NewSubseqNFA(pats)
			var prev []pattern.Label
			for i := range obs {
				ls := obs[i].Labels
				if prev != nil && SlidingAdjacent(prev, ls) {
					// Next window of a sliding run: only its last label is new.
					nfa.Step(ls[len(ls)-1])
				} else {
					for _, l := range ls {
						nfa.Step(l)
					}
				}
				prev = ls
				ws := nfa.Pos() - len(ls)
				anom := obs[i].Class == Anomaly
				for ci := range pats {
					if nfa.LatestStart(ci) >= ws {
						if anom {
							counts[lo+ci].Anomaly++
						} else {
							counts[lo+ci].Normal++
						}
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return counts
}
