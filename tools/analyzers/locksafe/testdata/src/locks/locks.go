// Package locks exercises locksafe: release discipline, RWMutex
// upgrades, and blocking operations inside critical sections.
package locks

import (
	"net/http"
	"sync"
	"time"
)

type guarded struct {
	mu sync.RWMutex
	n  int
	ch chan int
}

// leak never releases the lock.
func (g *guarded) leak() {
	g.mu.Lock() // want `g.mu.Lock\(\) is released neither by defer nor later in the same block`
	g.n++
}

// branchOnly releases on one path only: the release is in a nested
// block, not g.mu.Lock's own, so an early fallthrough leaks it.
func (g *guarded) branchOnly(cond bool) {
	g.mu.Lock() // want `g.mu.Lock\(\) is released neither by defer`
	if cond {
		g.n++
		g.mu.Unlock()
	}
}

// deferred is the canonical form.
func (g *guarded) deferred() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// sameBlock is the double-checked-locking idiom corpus.go uses: an
// explicit unlock later in the same block is fine, even with an
// early-return branch that unlocks on its own path first.
func (g *guarded) sameBlock(cond bool) int {
	g.mu.Lock()
	if cond {
		n := g.n
		g.mu.Unlock()
		return n
	}
	g.n++
	g.mu.Unlock()
	return g.n
}

// upgrade deadlocks: Lock while RLock is held.
func (g *guarded) upgrade() {
	g.mu.RLock()
	if g.n > 0 { // the read lock is still held here
		g.mu.Lock() // want `g.mu.Lock\(\) while g.mu.RLock\(\) is still held`
		g.n++
		g.mu.Unlock()
	}
	g.mu.RUnlock()
}

// downgradeThenWrite is the correct sequence: release the read lock
// before taking the write lock.
func (g *guarded) downgradeThenWrite() {
	g.mu.RLock()
	n := g.n
	g.mu.RUnlock()
	if n > 0 {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}
}

// blockingSend holds the lock across a channel send.
func (g *guarded) blockingSend(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch <- v // want `channel send while holding g.mu.Lock\(\)`
}

// blockingRecvExplicit holds an explicitly released lock across a
// receive and a sleep.
func (g *guarded) blockingRecvExplicit() int {
	g.mu.Lock()
	v := <-g.ch             // want `channel receive while holding g.mu.Lock\(\)`
	time.Sleep(time.Second) // want `time.Sleep while holding g.mu.Lock\(\)`
	g.mu.Unlock()
	return v
}

// blockingHTTP holds the read lock across network I/O.
func (g *guarded) blockingHTTP(url string) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	http.Get(url) // want `call into net/http while holding g.mu.RLock\(\)`
}

// blockingSelect: a select with no default blocks under the lock; one
// with a default does not.
func (g *guarded) blockingSelect() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `select without default while holding g.mu.Lock\(\)`
	case v := <-g.ch:
		g.n = v
	case g.ch <- g.n:
	}
}

func (g *guarded) nonBlockingSelect() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-g.ch:
		g.n = v
	default:
	}
}

// afterRelease: blocking after the explicit unlock is fine.
func (g *guarded) afterRelease(v int) {
	g.mu.Lock()
	g.n = v
	g.mu.Unlock()
	g.ch <- v
}

// goroutineOwnDiscipline: a function literal is its own body — the
// goroutine's lock/defer pair is complete and the outer function holds
// nothing across the send inside it.
func (g *guarded) goroutineOwnDiscipline() {
	go func() {
		g.mu.Lock()
		defer g.mu.Unlock()
		g.n++
	}()
}

// twoMutexes: receivers are matched textually, so releasing the right
// lock satisfies only that lock.
type pair struct {
	a, b sync.Mutex
	n    int
}

func (p *pair) crossed() {
	p.a.Lock() // want `p.a.Lock\(\) is released neither by defer`
	defer p.b.Unlock()
	p.n++
}
