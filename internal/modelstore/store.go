// Package modelstore is the versioned, file-backed store for trained CDT
// models — the operational backbone that turns "a JSON file in a
// directory" into an auditable artifact with history.
//
// The paper's pitch (EDBT 2021 §3.4) is that CDT rules are artifacts a
// human can read, audit, and sign off on; this package gives them the
// lifecycle that claim implies at fleet scale. A model name owns a
// monotonically increasing version sequence. Each version's document is
// the exact persist.go JSON format, stored content-addressed under its
// SHA-256 digest (publishing identical bytes twice shares one blob), so
// an operator can always answer "what exactly was serving at version N"
// byte-for-byte. The manifest records per-version metadata and the
// current/previous promotion pointers; every lifecycle transition —
// publish, promote, rollback, retrain, shadow, and refused candidates —
// appends to an append-only JSONL audit log.
//
// On-disk layout under the store directory:
//
//	blobs/sha256-<hex>.json   content-addressed model documents
//	manifest.json             versions + promotion pointers (atomic rename)
//	audit.log                 append-only JSONL event trail
//
// Crash safety: the manifest is written to manifest.json.tmp and
// renamed, so a torn write can never corrupt the published manifest and
// leftover .tmp files are ignored on Open. Blobs are immutable once
// renamed into place. The audit log is append-only by construction
// (O_APPEND) and by contract: nothing in this package rewrites it.
//
// Concurrency: one Store value serializes all manifest and audit-log
// mutations behind its mutex; loading model documents happens outside
// the lock. Multiple processes should not share a store directory for
// writing (single-writer, many-reader is the intended deployment, the
// same contract as the serving registry's model directory).
package modelstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	cdt "cdt"
)

// manifestFormat identifies the manifest serialization.
const manifestFormat = 1

// Version is one published model version's metadata.
type Version struct {
	// Version is the 1-based, monotonically increasing version number
	// within the model name.
	Version int `json:"version"`
	// Digest is the content address of the model document
	// ("sha256-<hex>").
	Digest string `json:"digest"`
	// CreatedAt is the publish time (unix seconds).
	CreatedAt int64 `json:"created_at"`
	// Source records how the version came to be: "publish" (operator),
	// "retrain" (drift-triggered re-optimization), or "import".
	Source string `json:"source"`
	// Note is free-form operator or retrainer context.
	Note string `json:"note,omitempty"`
	// Omega, Delta, and NumRules summarize the document so listings
	// don't need to load blobs.
	Omega    int `json:"omega"`
	Delta    int `json:"delta"`
	NumRules int `json:"num_rules"`
	// Kind discriminates the artifact flavor ("pyramid"); empty for
	// plain models, keeping pre-pyramid manifests byte-stable.
	Kind string `json:"kind,omitempty"`
	// Scales holds a pyramid's downsample factors; nil for plain models.
	Scales []int `json:"scales,omitempty"`
	// Fusion renders a pyramid's fusion policy ("any", "2-of-n",
	// "weighted(>=0.8)"); empty for plain models.
	Fusion string `json:"fusion,omitempty"`
	// FusionWeights lists a weighted pyramid's learned per-scale weights,
	// aligned with Scales; nil otherwise.
	FusionWeights []float64 `json:"fusion_weights,omitempty"`
}

// modelEntry is one model name's manifest record.
type modelEntry struct {
	// Current is the promoted (serving) version; 0 means no version has
	// been promoted yet.
	Current int `json:"current"`
	// Previous is the version Current replaced — the rollback target.
	Previous int `json:"previous,omitempty"`
	// Versions lists every published version in ascending order.
	Versions []Version `json:"versions"`
}

// manifest is the on-disk index of the store.
type manifest struct {
	Format int                    `json:"format"`
	Models map[string]*modelEntry `json:"models"`
}

// Store is a versioned model store rooted at one directory. All
// mutations (publish, promote, rollback, audit notes) serialize behind
// mu; see the package comment for the locking and crash-safety
// contract.
type Store struct {
	dir string

	// mu guards man and seq and serializes manifest/audit writes.
	mu  sync.Mutex
	man manifest
	seq uint64 // last audit sequence number written
}

// Open opens (creating if needed) the store rooted at dir. A missing
// manifest means an empty store; a present but unparseable manifest is
// an error — serving must not come up quietly ignoring its index.
// Leftover manifest.json.tmp files from a crashed write are ignored.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	s := &Store{dir: dir, man: manifest{Format: manifestFormat, Models: make(map[string]*modelEntry)}}
	raw, err := os.ReadFile(s.manifestPath())
	switch {
	case os.IsNotExist(err):
		// Empty store.
	case err != nil:
		return nil, fmt.Errorf("modelstore: reading manifest: %w", err)
	default:
		var man manifest
		if err := json.Unmarshal(raw, &man); err != nil {
			return nil, fmt.Errorf("modelstore: corrupt manifest %s: %w", s.manifestPath(), err)
		}
		if man.Format != manifestFormat {
			return nil, fmt.Errorf("modelstore: manifest format %d, this build reads %d", man.Format, manifestFormat)
		}
		if man.Models == nil {
			man.Models = make(map[string]*modelEntry)
		}
		s.man = man
	}
	seq, err := lastAuditSeq(s.auditPath())
	if err != nil {
		return nil, err
	}
	s.seq = seq
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "manifest.json") }
func (s *Store) auditPath() string    { return filepath.Join(s.dir, "audit.log") }

func (s *Store) blobPath(digest string) string {
	return filepath.Join(s.dir, "blobs", digest+".json")
}

// validName rejects model names that would escape the store layout or
// collide with its bookkeeping files.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("modelstore: empty model name")
	}
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("modelstore: invalid model name %q", name)
	}
	return nil
}

// Publish validates doc (a persist.go artifact document — plain model
// or pyramid), stores it content-addressed, and appends it as the next
// version of name — unpromoted: serving is unaffected until Promote.
// source is "publish", "retrain", or "import"; note is free-form
// context. A document cdt.LoadAny refuses is rejected, and the refusal
// (with the loader's field-path reason) is itself recorded in the audit
// log.
//
// Publish takes s.mu for the manifest append and audit write; document
// validation and the blob write happen before the lock.
func (s *Store) Publish(name string, doc []byte, source, note string) (Version, error) {
	if err := validName(name); err != nil {
		return Version{}, err
	}
	art, err := cdt.LoadAny(bytes.NewReader(doc))
	if err != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		_ = s.appendAuditLocked(Event{Event: EventRefuse, Model: name, Detail: err.Error()})
		return Version{}, fmt.Errorf("modelstore: refusing candidate for %s: %w", name, err)
	}
	sum := sha256.Sum256(doc)
	digest := "sha256-" + hex.EncodeToString(sum[:])
	if err := s.writeBlob(digest, doc); err != nil {
		return Version{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	entry := s.man.Models[name]
	if entry == nil {
		entry = &modelEntry{}
		s.man.Models[name] = entry
	}
	next := 1
	if n := len(entry.Versions); n > 0 {
		next = entry.Versions[n-1].Version + 1
	}
	if source == "" {
		source = "publish"
	}
	info := art.Info()
	v := Version{
		Version:   next,
		Digest:    digest,
		CreatedAt: time.Now().Unix(),
		Source:    source,
		Note:      note,
		Omega:     info.Omega,
		Delta:     info.Delta,
		NumRules:  info.NumRules,
		Scales:    info.Scales,
	}
	if info.Kind != cdt.KindModel {
		v.Kind = info.Kind
		v.Fusion = info.Fusion
		v.FusionWeights = info.FusionWeights
	}
	entry.Versions = append(entry.Versions, v)
	if err := s.saveManifestLocked(); err != nil {
		// Roll the in-memory append back so the store matches disk.
		entry.Versions = entry.Versions[:len(entry.Versions)-1]
		return Version{}, err
	}
	if err := s.appendAuditLocked(Event{Event: EventPublish, Model: name, Version: next,
		Detail: fmt.Sprintf("source=%s digest=%s omega=%d delta=%d rules=%d", source, shortDigest(digest), v.Omega, v.Delta, v.NumRules)}); err != nil {
		return Version{}, err
	}
	return v, nil
}

// writeBlob stores a content-addressed document if absent (tmp+rename,
// so a crashed write never leaves a partial blob under its final name).
func (s *Store) writeBlob(digest string, doc []byte) error {
	path := s.blobPath(digest)
	if _, err := os.Stat(path); err == nil {
		return nil // identical content already stored
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, doc, 0o644); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	return nil
}

// Promote makes version the current (serving) pointer for name,
// remembering the displaced version as the rollback target. Promoting
// the already-current version is a no-op that still audits (an operator
// confirming a pointer is a real event).
//
// Promote takes s.mu for the pointer swap, manifest save, and audit
// write.
func (s *Store) Promote(name string, version int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry := s.man.Models[name]
	if entry == nil {
		return fmt.Errorf("modelstore: unknown model %q", name)
	}
	if _, ok := findVersion(entry, version); !ok {
		return fmt.Errorf("modelstore: model %q has no version %d", name, version)
	}
	prevCurrent, prevPrevious := entry.Current, entry.Previous
	if entry.Current != version {
		entry.Previous = entry.Current
		entry.Current = version
	}
	if err := s.saveManifestLocked(); err != nil {
		entry.Current, entry.Previous = prevCurrent, prevPrevious
		return err
	}
	return s.appendAuditLocked(Event{Event: EventPromote, Model: name, Version: version,
		Detail: fmt.Sprintf("replaced=%d", entry.Previous)})
}

// Rollback restores name's previous promoted version (the one the last
// Promote displaced) and returns it. Rolling back twice toggles between
// the two most recent promotions.
//
// Rollback takes s.mu for the pointer swap, manifest save, and audit
// write.
func (s *Store) Rollback(name string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry := s.man.Models[name]
	if entry == nil {
		return 0, fmt.Errorf("modelstore: unknown model %q", name)
	}
	if entry.Previous == 0 {
		return 0, fmt.Errorf("modelstore: model %q has no previous version to roll back to", name)
	}
	prevCurrent, prevPrevious := entry.Current, entry.Previous
	entry.Current, entry.Previous = entry.Previous, entry.Current
	if err := s.saveManifestLocked(); err != nil {
		entry.Current, entry.Previous = prevCurrent, prevPrevious
		return 0, err
	}
	if err := s.appendAuditLocked(Event{Event: EventRollback, Model: name, Version: entry.Current,
		Detail: fmt.Sprintf("rolled_back_from=%d", entry.Previous)}); err != nil {
		return 0, err
	}
	return entry.Current, nil
}

// findVersion locates a version entry by number.
func findVersion(entry *modelEntry, version int) (Version, bool) {
	for _, v := range entry.Versions {
		if v.Version == version {
			return v, true
		}
	}
	return Version{}, false
}

// Models returns every model name in the store, sorted.
func (s *Store) Models() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.man.Models))
	for name := range s.man.Models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Versions returns name's published versions in ascending order plus
// its current promoted version (0 if none).
func (s *Store) Versions(name string) ([]Version, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry := s.man.Models[name]
	if entry == nil {
		return nil, 0, fmt.Errorf("modelstore: unknown model %q", name)
	}
	out := make([]Version, len(entry.Versions))
	copy(out, entry.Versions)
	return out, entry.Current, nil
}

// Current returns name's promoted version metadata; ok is false when
// name is unknown or nothing has been promoted.
func (s *Store) Current(name string) (Version, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry := s.man.Models[name]
	if entry == nil || entry.Current == 0 {
		return Version{}, false
	}
	return findVersion(entry, entry.Current)
}

// LoadVersion loads and compiles one published version of name. The
// returned artifact is a *cdt.Model or *cdt.PyramidModel depending on
// the stored document's kind.
func (s *Store) LoadVersion(name string, version int) (cdt.Artifact, Version, error) {
	s.mu.Lock()
	entry := s.man.Models[name]
	var (
		v  Version
		ok bool
	)
	if entry != nil {
		v, ok = findVersion(entry, version)
	}
	s.mu.Unlock()
	if !ok {
		return nil, Version{}, fmt.Errorf("modelstore: model %q has no version %d", name, version)
	}
	f, err := os.Open(s.blobPath(v.Digest))
	if err != nil {
		return nil, Version{}, fmt.Errorf("modelstore: %w", err)
	}
	defer f.Close()
	m, err := cdt.LoadAny(f)
	if err != nil {
		return nil, Version{}, fmt.Errorf("modelstore: loading %s v%d (%s): %w", name, version, shortDigest(v.Digest), err)
	}
	return m, v, nil
}

// LoadCurrent loads name's promoted version.
func (s *Store) LoadCurrent(name string) (cdt.Artifact, Version, error) {
	v, ok := s.Current(name)
	if !ok {
		return nil, Version{}, fmt.Errorf("modelstore: model %q has no promoted version", name)
	}
	return s.LoadVersion(name, v.Version)
}

// CurrentModels loads every model with a promoted version — the serving
// registry's view of the store. Any load failure fails the whole call,
// so a registry swap stays all-or-nothing.
func (s *Store) CurrentModels() (map[string]cdt.Artifact, map[string]int, error) {
	models := make(map[string]cdt.Artifact)
	versions := make(map[string]int)
	for _, name := range s.Models() {
		v, ok := s.Current(name)
		if !ok {
			continue // published but never promoted: candidates only
		}
		m, _, err := s.LoadVersion(name, v.Version)
		if err != nil {
			return nil, nil, err
		}
		models[name] = m
		versions[name] = v.Version
	}
	return models, versions, nil
}

// GC deletes content-addressed blobs that no manifest version
// references and returns the deleted digests, sorted. Published
// versions are never deleted — only blobs orphaned by out-of-band
// manifest surgery or by crashed publishes that wrote a blob but died
// before the manifest append. Leftover .tmp files from crashed writes
// are removed too (they are never referenced by construction). The
// sweep is audit-logged with the reclaimed count.
//
// GC takes s.mu across the whole sweep: referenced-digest collection,
// directory scan, deletions, and the audit write all happen under the
// lock, so a concurrent Publish can never race its fresh blob against
// the sweep.
func (s *Store) GC() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	referenced := make(map[string]bool)
	for _, entry := range s.man.Models {
		for _, v := range entry.Versions {
			referenced[v.Digest] = true
		}
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "blobs"))
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	var removed []string
	for _, de := range entries {
		name := de.Name()
		if strings.HasSuffix(name, ".tmp") {
			if err := os.Remove(filepath.Join(s.dir, "blobs", name)); err != nil {
				return removed, fmt.Errorf("modelstore: %w", err)
			}
			continue
		}
		digest := strings.TrimSuffix(name, ".json")
		if referenced[digest] {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, "blobs", name)); err != nil {
			return removed, fmt.Errorf("modelstore: %w", err)
		}
		removed = append(removed, digest)
	}
	sort.Strings(removed)
	if err := s.appendAuditLocked(Event{Event: EventGC,
		Detail: fmt.Sprintf("removed=%d referenced=%d", len(removed), len(referenced))}); err != nil {
		return removed, err
	}
	return removed, nil
}

// CheckReady verifies the store is servable from disk right now: the
// manifest file is present and parseable, and every promoted version's
// blob exists. This is the /healthz readiness probe's view — it checks
// the filesystem, not just the in-memory index, so an operator deleting
// blobs out from under a running server shows up.
func (s *Store) CheckReady() error {
	raw, err := os.ReadFile(s.manifestPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil // empty store: ready, serving nothing
		}
		return fmt.Errorf("modelstore: manifest unreadable: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return fmt.Errorf("modelstore: manifest unparseable: %w", err)
	}
	for name, entry := range man.Models {
		if entry == nil || entry.Current == 0 {
			continue
		}
		v, ok := findVersion(entry, entry.Current)
		if !ok {
			return fmt.Errorf("modelstore: model %q current version %d not in manifest", name, entry.Current)
		}
		if _, err := os.Stat(s.blobPath(v.Digest)); err != nil {
			return fmt.Errorf("modelstore: model %q v%d blob missing: %w", name, v.Version, err)
		}
	}
	return nil
}

// saveManifestLocked writes the manifest atomically (tmp+rename).
// Callers must hold s.mu.
func (s *Store) saveManifestLocked() error {
	raw, err := json.MarshalIndent(s.man, "", "  ")
	if err != nil {
		return fmt.Errorf("modelstore: encoding manifest: %w", err)
	}
	tmp := s.manifestPath() + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	if err := os.Rename(tmp, s.manifestPath()); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	return nil
}

// shortDigest abbreviates a content address for human-facing output.
func shortDigest(d string) string {
	if i := strings.IndexByte(d, '-'); i >= 0 && len(d) > i+13 {
		return d[:i+13]
	}
	return d
}
