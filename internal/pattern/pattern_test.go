package pattern

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLabelPointVariationTypes(t *testing.T) {
	cfg := NewConfig(2)
	tests := []struct {
		name             string
		prev, mid, next  float64
		wantVar          Variation
		wantAlpha, wantB Interval
	}{
		{"positive peak", 0.2, 0.6, 0.0, PP, 1, 2},
		{"negative peak", 0.8, 0.2, 0.9, PN, -2, -2},
		{"start constant positive", 0.1, 0.7, 0.7, SCP, 2, 0},
		{"start constant negative", 0.5, 0.1, 0.1, SCN, -1, 0},
		{"end constant with rise", 0.3, 0.3, 0.55, ECP, 0, -1},
		{"end constant with fall", 0.9, 0.9, 0.2, ECN, 0, 2},
		{"constant", 0.4, 0.4, 0.4, CST, 0, 0},
		{"steady rise", 0.1, 0.4, 0.8, VP, 1, -1},
		{"steady fall", 0.9, 0.5, 0.2, VN, -1, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			l := cfg.LabelPoint(tc.prev, tc.mid, tc.next)
			if l.Var != tc.wantVar {
				t.Errorf("variation = %v, want %v", l.Var, tc.wantVar)
			}
			if l.Alpha != tc.wantAlpha || l.Beta != tc.wantB {
				t.Errorf("intervals = (%d,%d), want (%d,%d)", l.Alpha, l.Beta, tc.wantAlpha, tc.wantB)
			}
		})
	}
}

func TestClassifyBoundaries(t *testing.T) {
	cfg := NewConfig(2) // L = ]0,0.5], H = ]0.5,1]
	tests := []struct {
		diff float64
		want Interval
	}{
		{0, 0},
		{1e-12, 0},    // inside epsilon
		{0.25, 1},     // L
		{0.5, 1},      // boundary belongs to L = ]0,0.5]
		{0.500001, 2}, // just above the boundary is H
		{1.0, 2},      // H upper bound
		{1.5, 2},      // clamped
		{-0.25, -1},
		{-0.5, -1},
		{-0.7, -2},
		{-2, -2}, // clamped
	}
	for _, tc := range tests {
		if got := cfg.Classify(tc.diff); got != tc.want {
			t.Errorf("Classify(%v) = %d, want %d", tc.diff, got, tc.want)
		}
	}
}

func TestClassifyDelta1(t *testing.T) {
	cfg := NewConfig(1)
	if got := cfg.Classify(0.3); got != 1 {
		t.Errorf("Classify(0.3) = %d, want 1", got)
	}
	if got := cfg.Classify(-0.9); got != -1 {
		t.Errorf("Classify(-0.9) = %d, want -1", got)
	}
}

func TestClassifyPropertySignAndBounds(t *testing.T) {
	f := func(diffRaw float64, deltaRaw uint8) bool {
		if math.IsNaN(diffRaw) || math.IsInf(diffRaw, 0) {
			return true
		}
		delta := int(deltaRaw%21) + 1
		cfg := NewConfig(delta)
		diff := math.Mod(diffRaw, 1) // keep in [-1,1]
		iv := cfg.Classify(diff)
		if iv < Interval(-delta) || iv > Interval(delta) {
			return false
		}
		switch {
		case diff > cfg.Epsilon:
			return iv > 0
		case diff < -cfg.Epsilon:
			return iv < 0
		default:
			return iv == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Partition property: for every δ the δ positive sub-intervals exactly
// cover ]ε,1] without gaps — adjacent boundary values map to adjacent
// intervals.
func TestClassifyPartitionIsContiguous(t *testing.T) {
	for delta := 1; delta <= 8; delta++ {
		cfg := NewConfig(delta)
		prev := Interval(0)
		for i := 1; i <= 1000; i++ {
			v := float64(i) / 1000
			iv := cfg.Classify(v)
			if iv < prev {
				t.Fatalf("delta=%d: Classify not monotone at %v: %d after %d", delta, v, iv, prev)
			}
			if iv > prev+1 {
				t.Fatalf("delta=%d: Classify skipped an interval at %v: %d after %d", delta, v, iv, prev)
			}
			prev = iv
		}
		if prev != Interval(delta) {
			t.Fatalf("delta=%d: Classify(1.0) = %d, want %d", delta, prev, delta)
		}
	}
}

func TestLabelSeriesLengthAndAlignment(t *testing.T) {
	cfg := NewConfig(2)
	values := []float64{0, 1, 0, 0.5, 0.5}
	labels, err := cfg.LabelSeries(values)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 3 {
		t.Fatalf("len = %d, want 3", len(labels))
	}
	if labels[0].Var != PP {
		t.Errorf("labels[0] = %v, want PP", labels[0].Var)
	}
	if labels[1].Var != PN {
		t.Errorf("labels[1] = %v, want PN", labels[1].Var)
	}
	if labels[2].Var != SCP {
		t.Errorf("labels[2] = %v, want SCP", labels[2].Var)
	}
}

func TestLabelSeriesTooShort(t *testing.T) {
	cfg := NewConfig(2)
	if _, err := cfg.LabelSeries([]float64{1, 2}); err == nil {
		t.Error("short series accepted")
	}
}

func TestLabelSeriesInvalidConfig(t *testing.T) {
	cfg := Config{Delta: 0}
	if _, err := cfg.LabelSeries([]float64{1, 2, 3}); err == nil {
		t.Error("delta 0 accepted")
	}
	cfg = Config{Delta: 1, Epsilon: -1}
	if _, err := cfg.LabelSeries([]float64{1, 2, 3}); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestAlphabetSizeFormula(t *testing.T) {
	for delta := 1; delta <= 10; delta++ {
		cfg := NewConfig(delta)
		want := (2*delta + 1) * (2*delta + 1)
		if got := cfg.AlphabetSize(); got != want {
			t.Errorf("delta=%d: AlphabetSize = %d, want %d", delta, got, want)
		}
		if got := len(cfg.Alphabet()); got != want {
			t.Errorf("delta=%d: len(Alphabet) = %d, want %d", delta, got, want)
		}
	}
}

func TestAlphabetAllValidAndDistinct(t *testing.T) {
	cfg := NewConfig(3)
	seen := make(map[Label]bool)
	for _, l := range cfg.Alphabet() {
		if !cfg.Valid(l) {
			t.Errorf("alphabet label %v invalid", l)
		}
		if seen[l] {
			t.Errorf("alphabet label %v duplicated", l)
		}
		seen[l] = true
	}
}

func TestLabelPointProducesValidLabels(t *testing.T) {
	f := func(a, b, c float64, deltaRaw uint8) bool {
		clamp := func(v float64) float64 {
			v = math.Abs(math.Mod(v, 1))
			if math.IsNaN(v) {
				return 0
			}
			return v
		}
		delta := int(deltaRaw%6) + 1
		cfg := NewConfig(delta)
		l := cfg.LabelPoint(clamp(a), clamp(b), clamp(c))
		return cfg.Valid(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestLabelNameDelta2(t *testing.T) {
	cfg := NewConfig(2)
	l := Label{Var: PP, Alpha: 1, Beta: 2}
	if got := cfg.LabelName(l); got != "PP[L,H]" {
		t.Errorf("LabelName = %q, want PP[L,H]", got)
	}
	l = Label{Var: PN, Alpha: -2, Beta: -1}
	if got := cfg.LabelName(l); got != "PN[-H,-L]" {
		t.Errorf("LabelName = %q, want PN[-H,-L]", got)
	}
	l = Label{Var: CST, Alpha: 0, Beta: 0}
	if got := cfg.LabelName(l); got != "CST[Z,Z]" {
		t.Errorf("LabelName = %q, want CST[Z,Z]", got)
	}
}

func TestLabelNameGenericDelta(t *testing.T) {
	cfg := NewConfig(4)
	l := Label{Var: VP, Alpha: 3, Beta: -4}
	if got := cfg.LabelName(l); got != "VP[P3,N4]" {
		t.Errorf("LabelName = %q, want VP[P3,N4]", got)
	}
}

func TestParseLabelRoundTrip(t *testing.T) {
	for _, delta := range []int{1, 2, 3, 5} {
		cfg := NewConfig(delta)
		for _, l := range cfg.Alphabet() {
			s := cfg.LabelName(l)
			got, err := cfg.ParseLabel(s)
			if err != nil {
				t.Fatalf("delta=%d: ParseLabel(%q): %v", delta, s, err)
			}
			if got != l {
				t.Fatalf("delta=%d: round trip %q: got %v, want %v", delta, s, got, l)
			}
		}
	}
}

func TestParseLabelErrors(t *testing.T) {
	cfg := NewConfig(2)
	for _, s := range []string{"", "PP", "PP[L]", "PP[L,H,Z]", "XX[L,H]", "PP[Q,H]", "PP[L,H"} {
		if _, err := cfg.ParseLabel(s); err == nil {
			t.Errorf("ParseLabel(%q) accepted", s)
		}
	}
}

func TestParseVariationRoundTrip(t *testing.T) {
	for _, v := range Variations() {
		got, err := ParseVariation(v.String())
		if err != nil || got != v {
			t.Errorf("ParseVariation(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := ParseVariation("nope"); err == nil {
		t.Error("ParseVariation accepted junk")
	}
}

func TestValidRejectsInconsistentSigns(t *testing.T) {
	cfg := NewConfig(2)
	bad := []Label{
		{Var: PP, Alpha: -1, Beta: 1},
		{Var: PN, Alpha: 1, Beta: -1},
		{Var: SCP, Alpha: 1, Beta: 1},
		{Var: CST, Alpha: 1, Beta: 0},
		{Var: VP, Alpha: 1, Beta: 1},
		{Var: PP, Alpha: 3, Beta: 1}, // out of delta range
	}
	for _, l := range bad {
		if cfg.Valid(l) {
			t.Errorf("Valid(%v) = true", l)
		}
	}
}

// Labeling a series then checking every label against the defining
// inequalities of Table 1 — the fundamental soundness property.
func TestLabelSeriesSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := NewConfig(3)
	values := make([]float64, 500)
	for i := range values {
		switch rng.Intn(4) {
		case 0:
			if i > 0 {
				values[i] = values[i-1] // force constant runs
			}
		default:
			values[i] = rng.Float64()
		}
	}
	labels, err := cfg.LabelSeries(values)
	if err != nil {
		t.Fatal(err)
	}
	eq := func(a, b float64) bool { return math.Abs(a-b) <= cfg.Epsilon }
	for j, l := range labels {
		prev, mid, next := values[j], values[j+1], values[j+2]
		var want Variation
		switch {
		case mid > prev && mid > next && !eq(mid, prev) && !eq(mid, next):
			want = PP
		case mid < prev && mid < next && !eq(mid, prev) && !eq(mid, next):
			want = PN
		case !eq(mid, prev) && mid > prev && eq(mid, next):
			want = SCP
		case !eq(mid, prev) && mid < prev && eq(mid, next):
			want = SCN
		case eq(mid, prev) && !eq(mid, next) && mid < next:
			want = ECP
		case eq(mid, prev) && !eq(mid, next) && mid > next:
			want = ECN
		case eq(mid, prev) && eq(mid, next):
			want = CST
		case mid > prev && mid < next:
			want = VP
		default:
			want = VN
		}
		if l.Var != want {
			t.Fatalf("label %d: got %v, want %v (points %v %v %v)", j, l.Var, want, prev, mid, next)
		}
	}
}

func TestIntervalNames(t *testing.T) {
	if Interval(0).Name(2) != "Z" || Interval(1).Name(2) != "L" || Interval(-2).Name(2) != "-H" {
		t.Error("delta-2 names wrong")
	}
	if Interval(3).Name(5) != "P3" || Interval(-1).Name(5) != "N1" {
		t.Error("generic names wrong")
	}
}
