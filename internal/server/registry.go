package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	cdt "cdt"
	"cdt/internal/modelstore"
	"cdt/internal/telemetry"
)

// Registry serves trained models loaded from one of two backends: a
// directory of versioned JSON artifacts (one `<name>.json` per model,
// the format written by Model.Save), or a modelstore.Store, where each
// model resolves through its "current" promotion pointer and carries a
// version number. Lookups take a read lock; Reload builds a complete
// new model set off to the side and swaps it in atomically under the
// write lock, so in-flight requests keep the cdt.Artifact they
// already resolved — artifacts are immutable after load, which makes
// hot-reload (and store promotes/rollbacks, which are just reloads of
// moved pointers) safe without draining traffic. Immutability includes
// each model's compiled rule engine (internal/engine): Load compiles it
// once, and every request against the model — batch detects and stream
// sessions alike — matches through that one shared read-only engine.
type Registry struct {
	dir     string
	store   *modelstore.Store  // nil in directory mode
	reloads *telemetry.Counter // set by server.New; nil for a bare registry

	mu       sync.RWMutex
	models   map[string]cdt.Artifact
	versions map[string]int // store mode: serving version per name; nil in dir mode
}

// ModelInfo summarizes one registered model for listings.
type ModelInfo struct {
	Name     string `json:"name"`
	Omega    int    `json:"omega"`
	Delta    int    `json:"delta"`
	NumRules int    `json:"num_rules"`
	// Version is the model-store version serving as this model (0 when
	// the registry loads from a flat directory).
	Version int `json:"version,omitempty"`
	// Kind distinguishes artifact families; empty for plain models (the
	// pre-pyramid listing shape), "pyramid" for resolution pyramids.
	Kind string `json:"kind,omitempty"`
	// Scales lists a pyramid's downsample factors (nil for plain models).
	Scales []int `json:"scales,omitempty"`
	// Fusion renders a pyramid's fusion policy with its parameters
	// ("any", "2-of-n", "weighted(>=0.8)"); empty for plain models.
	Fusion string `json:"fusion,omitempty"`
	// FusionWeights lists a weighted pyramid's learned per-scale weights,
	// aligned with Scales; nil otherwise.
	FusionWeights []float64 `json:"fusion_weights,omitempty"`
}

// NewRegistry loads every model in dir. The directory must exist and
// every *.json file in it must be a loadable model — a serving process
// should fail fast on a bad artifact rather than come up partial.
func NewRegistry(dir string) (*Registry, error) {
	models, err := loadModelDir(dir)
	if err != nil {
		return nil, err
	}
	return &Registry{dir: dir, models: models}, nil
}

// NewStoreRegistry resolves every promoted "current" pointer in the
// store. At least one model must be promoted — a serving process over
// an empty store has nothing to serve.
func NewStoreRegistry(st *modelstore.Store) (*Registry, error) {
	models, versions, err := loadStore(st)
	if err != nil {
		return nil, err
	}
	return &Registry{store: st, models: models, versions: versions}, nil
}

// loadStore resolves the store's promoted models.
func loadStore(st *modelstore.Store) (map[string]cdt.Artifact, map[string]int, error) {
	models, versions, err := st.CurrentModels()
	if err != nil {
		return nil, nil, fmt.Errorf("server: %w", err)
	}
	if len(models) == 0 {
		return nil, nil, fmt.Errorf("server: no promoted models in store %s", st.Dir())
	}
	return models, versions, nil
}

// loadModelDir reads every *.json artifact in dir, keyed by basename.
func loadModelDir(dir string) (map[string]cdt.Artifact, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: reading model dir: %w", err)
	}
	models := make(map[string]cdt.Artifact)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		m, err := cdt.LoadAny(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("server: loading %s: %w", path, err)
		}
		models[strings.TrimSuffix(e.Name(), ".json")] = m
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("server: no *.json models in %s", dir)
	}
	return models, nil
}

// Get resolves a model by name. The returned artifact stays valid
// across reloads (it is immutable; the registry only swaps the map).
func (r *Registry) Get(name string) (cdt.Artifact, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	return m, ok
}

// Reload re-resolves the backend (directory contents or store "current"
// pointers) and atomically replaces the whole model set. On any load
// error the previous set stays untouched, so a corrupt artifact can
// never take down serving. Returns the number of models now live.
func (r *Registry) Reload() (int, error) {
	var (
		models   map[string]cdt.Artifact
		versions map[string]int
		err      error
	)
	if r.store != nil {
		models, versions, err = loadStore(r.store)
	} else {
		models, err = loadModelDir(r.dir)
	}
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.models = models
	r.versions = versions
	r.mu.Unlock()
	stats.Add("reloads", 1)
	if r.reloads != nil {
		r.reloads.Inc()
	}
	return len(models), nil
}

// Version returns the store version serving as name (0, false in
// directory mode or for unknown names).
func (r *Registry) Version(name string) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.versions[name]
	return v, ok
}

// Store returns the backing model store (nil in directory mode).
func (r *Registry) Store() *modelstore.Store { return r.store }

// CheckSource verifies the registry's backend is loadable right now —
// the /healthz readiness view. Directory mode checks the directory is
// readable and still holds at least one artifact; store mode defers to
// the store's manifest/blob check.
func (r *Registry) CheckSource() error {
	if r.store != nil {
		return r.store.CheckReady()
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("server: model dir unreadable: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			return nil
		}
	}
	return fmt.Errorf("server: no *.json models in %s", r.dir)
}

// List returns the registered models sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.models))
	for name, m := range r.models {
		info := m.Info()
		mi := ModelInfo{
			Name:     name,
			Omega:    info.Omega,
			Delta:    info.Delta,
			NumRules: info.NumRules,
			Version:  r.versions[name],
		}
		// Plain models keep the pre-pyramid listing shape (no kind field).
		if info.Kind != cdt.KindModel {
			mi.Kind = info.Kind
			mi.Scales = info.Scales
			mi.Fusion = info.Fusion
			mi.FusionWeights = info.FusionWeights
		}
		out = append(out, mi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}
