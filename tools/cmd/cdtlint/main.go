// Command cdtlint is the project's static-analysis gate: it type-checks
// every package matching the given patterns (./... by default) and
// applies the repository-specific analyzers that machine-check the
// contracts the concurrent pipeline depends on:
//
//	immutview  mutations of shared Corpus/labeling views
//	locksafe   unreleased locks, RWMutex upgrades, blocking under a lock
//	detfloat   nondeterminism in the training hot path
//	lockdoc    undocumented locking on mutex-guarded state mutators
//
// Test files are analyzed too — a test that corrupts a cached view
// poisons every later test sharing the corpus. detfloat is scoped to the
// training hot path (cdt, internal/core, internal/pattern,
// internal/quality, internal/bayesopt) and to library code: wall clocks
// and global randomness are legitimate in servers, example binaries, and
// tests. lockdoc is scoped to internal/modelstore library code, where
// the cached manifest and audit sequence make an undocumented mutator a
// standing invitation to an unguarded write.
//
// Usage, from the repository root:
//
//	go run ./tools/cmd/cdtlint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cdt/tools/analysis"
	"cdt/tools/analyzers/detfloat"
	"cdt/tools/analyzers/immutview"
	"cdt/tools/analyzers/lockdoc"
	"cdt/tools/analyzers/locksafe"
)

var analyzers = []*analysis.Analyzer{
	immutview.Analyzer,
	locksafe.Analyzer,
	detfloat.Analyzer,
	lockdoc.Analyzer,
}

// detfloatScope is the training hot path: the packages whose results the
// bit-identical-parallelism guarantee covers.
var detfloatScope = map[string]bool{
	"cdt":                   true,
	"cdt/internal/core":     true,
	"cdt/internal/pattern":  true,
	"cdt/internal/quality":  true,
	"cdt/internal/bayesopt": true,
}

// lockdocScope covers the packages whose locking discipline must stay
// legible: the model store's cached manifest/audit state today.
var lockdocScope = map[string]bool{
	"cdt/internal/modelstore": true,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cdtlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset, units, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdtlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(fset, units, analyzers, func(a *analysis.Analyzer, u *analysis.Unit) bool {
		if a == detfloat.Analyzer {
			return u.Kind == analysis.Lib && detfloatScope[u.ImportPath]
		}
		if a == lockdoc.Analyzer {
			return u.Kind == analysis.Lib && lockdocScope[u.ImportPath]
		}
		return true
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdtlint: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Position.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cdtlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
