package server

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	cdt "cdt"
	"cdt/internal/telemetry"
	"cdt/internal/trace"
)

// Shadow evaluation: a candidate model version scores the same live
// traffic as the incumbent it hopes to replace, and the server keeps
// score — agreement and disagreement counters plus per-role fire-rate
// histograms — so an operator promotes on evidence, not hope.
//
// Two traffic paths feed a shadow:
//
//   - Batch detects enqueue the request's series (plus the incumbent's
//     detections) onto a bounded queue scored by background workers, so
//     shadow mode costs the serving path an enqueue, not a second
//     detection — the <5% overhead gate on
//     BenchmarkServerBatchDetectShadow holds because candidate scoring
//     is off the request path. A full queue drops the sample (counted)
//     rather than blocking a request.
//
//   - Stream pushes mirror each point into a candidate stream inside
//     the session lock (the incremental cursor is O(1) per point, cheap
//     enough to keep synchronous and ordered).
//
// Agreement is point-range-exact: a detection agrees when both sides
// report the same [start, end] point range. Candidate and incumbent
// must be the same artifact kind (lifecycle.go enforces it): two plain
// models compare window ranges, two pyramids compare fused point
// ranges — both well-defined, while cross-kind ranges are not (a fused
// pyramid run and a single window describe different things even when
// they overlap). For candidates sharing the incumbent's ω (the common
// case — retrained versions of the same model) agreement is exact; a
// candidate with a different ω or scale set reports shifted ranges and
// shows as disagreement, which is the truthful signal.
//
// Shadow tracks one candidate version scoring next to its incumbent.
// All counters are atomics: batch workers, stream sessions, and the
// summary endpoint touch them without locks.
type Shadow struct {
	Name    string // incumbent registry name
	Version int    // candidate store version

	candidate cdt.Artifact
	omega     int // candidate's window size (fire-rate denominators)

	windows   atomic.Uint64 // windows swept past the comparison
	agree     atomic.Uint64 // ranges both sides reported
	incOnly   atomic.Uint64 // ranges only the incumbent reported
	candOnly  atomic.Uint64 // ranges only the candidate reported
	incFired  atomic.Uint64 // incumbent detections observed
	candFired atomic.Uint64 // candidate detections observed
	dropped   atomic.Uint64 // batch samples dropped on a full queue

	// Pre-resolved telemetry children (per-model labels).
	cAgree, cIncOnly, cCandOnly *telemetry.Counter
	hIncRate, hCandRate         *telemetry.Histogram
	hScaleRate                  []*telemetry.Histogram // per factor, pyramid candidates only
}

// record folds one compared sample into the counters.
func (sh *Shadow) record(windows, agree, incOnly, candOnly int) {
	sh.windows.Add(uint64(windows))
	sh.agree.Add(uint64(agree))
	sh.incOnly.Add(uint64(incOnly))
	sh.candOnly.Add(uint64(candOnly))
	sh.incFired.Add(uint64(agree + incOnly))
	sh.candFired.Add(uint64(agree + candOnly))
	sh.cAgree.Add(uint64(agree))
	sh.cIncOnly.Add(uint64(incOnly))
	sh.cCandOnly.Add(uint64(candOnly))
}

// ShadowSummary is the GET /models/{name}/shadow payload.
type ShadowSummary struct {
	Model            string `json:"model"`
	CandidateVersion int    `json:"candidate_version"`
	Windows          uint64 `json:"windows"`
	Agree            uint64 `json:"agree"`
	IncumbentOnly    uint64 `json:"incumbent_only"`
	CandidateOnly    uint64 `json:"candidate_only"`
	IncumbentFired   uint64 `json:"incumbent_fired"`
	CandidateFired   uint64 `json:"candidate_fired"`
	Dropped          uint64 `json:"dropped"`
	// Agreement is agree / (agree + incumbent_only + candidate_only);
	// 1 when neither side has fired yet.
	Agreement float64 `json:"agreement"`
}

func (sh *Shadow) summary() ShadowSummary {
	s := ShadowSummary{
		Model:            sh.Name,
		CandidateVersion: sh.Version,
		Windows:          sh.windows.Load(),
		Agree:            sh.agree.Load(),
		IncumbentOnly:    sh.incOnly.Load(),
		CandidateOnly:    sh.candOnly.Load(),
		IncumbentFired:   sh.incFired.Load(),
		CandidateFired:   sh.candFired.Load(),
		Dropped:          sh.dropped.Load(),
		Agreement:        1,
	}
	if total := s.Agree + s.IncumbentOnly + s.CandidateOnly; total > 0 {
		s.Agreement = float64(s.Agree) / float64(total)
	}
	return s
}

// shadowJob is one batch sample awaiting candidate scoring. It carries
// the originating request's ID and span link as plain values — the
// request context is gone by the time a worker scores the sample, so
// identity rides the job, not a context.
type shadowJob struct {
	sh        *Shadow
	values    []float64
	incRanges [][2]int          // incumbent detection ranges, ascending
	windows   int               // windows the incumbent swept
	rid       string            // originating X-Request-ID, for worker log lines
	link      trace.SpanContext // originating request span, for shadow_score spans
}

// Shadows manages the active shadow per model name and the background
// worker pool that scores batch samples.
type Shadows struct {
	tel    *serverMetrics
	logger *slog.Logger  // nil-safe: workers log only when set
	tracer *trace.Tracer // nil-safe: shadow_score spans only when sampled

	mu sync.RWMutex
	m  map[string]*Shadow

	queue   chan shadowJob
	stop    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
	pending atomic.Int64 // queued but not yet scored (tests drain on 0)
}

// NewShadows starts the shadow scorer with the given worker count.
// logger and tracer may be nil; workers then score silently and
// untraced.
func NewShadows(tel *serverMetrics, workers int, logger *slog.Logger, tracer *trace.Tracer) *Shadows {
	if workers < 1 {
		workers = 1
	}
	s := &Shadows{
		tel:    tel,
		logger: logger,
		tracer: tracer,
		m:      make(map[string]*Shadow),
		queue:  make(chan shadowJob, 256),
		stop:   make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops the workers; queued samples are abandoned.
func (s *Shadows) Close() {
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// Start activates (or replaces) the shadow for name. Any artifact kind
// shadows: a pyramid candidate additionally gets per-scale fire-rate
// histograms, resolved here (one lifecycle request) rather than per
// scored sample.
func (s *Shadows) Start(name string, version int, candidate cdt.Artifact) *Shadow {
	info := candidate.Info()
	sh := &Shadow{
		Name:      name,
		Version:   version,
		candidate: candidate,
		omega:     info.Omega,
		cAgree:    s.tel.shadowWindows.With(name, "agree"),
		cIncOnly:  s.tel.shadowWindows.With(name, "incumbent_only"),
		cCandOnly: s.tel.shadowWindows.With(name, "candidate_only"),
		hIncRate:  s.tel.shadowFireRate.With(name, "incumbent"),
		hCandRate: s.tel.shadowFireRate.With(name, "candidate"),
	}
	if info.Kind == cdt.KindPyramid {
		sh.hScaleRate = make([]*telemetry.Histogram, len(info.Scales))
		for i, f := range info.Scales {
			//cdtlint:ignore metriclabel resolved once per shadow start (a rare operator lifecycle request), bounded by maxPyramidScales; scoring workers only Observe
			sh.hScaleRate[i] = s.tel.shadowScaleRate.With(name, fmt.Sprintf("x%d", f))
		}
	}
	s.mu.Lock()
	s.m[name] = sh
	s.mu.Unlock()
	return sh
}

// Stop deactivates the shadow for name, reporting whether one existed.
// In-flight samples for the old shadow still count into its (now
// unreferenced) counters; the telemetry children persist on /metrics.
func (s *Shadows) Stop(name string) bool {
	s.mu.Lock()
	_, ok := s.m[name]
	delete(s.m, name)
	s.mu.Unlock()
	return ok
}

// Get returns the active shadow for name (nil if none).
func (s *Shadows) Get(name string) *Shadow {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[name]
}

// Len returns the number of active shadows.
func (s *Shadows) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// enqueue offers one batch sample to the scorer without ever blocking
// the serving path: a full queue drops the sample and counts the drop.
func (s *Shadows) enqueue(job shadowJob) {
	s.pending.Add(1)
	select {
	case s.queue <- job:
	default:
		s.pending.Add(-1)
		job.sh.dropped.Add(1)
		s.tel.shadowDropped.Inc()
	}
}

// drain blocks until every enqueued sample has been scored — a test
// hook, so assertions see deterministic counters despite async scoring.
func (s *Shadows) drain() {
	for s.pending.Load() != 0 {
		time.Sleep(time.Millisecond)
	}
}

func (s *Shadows) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case job := <-s.queue:
			s.score(job)
			s.pending.Add(-1)
		}
	}
}

// score runs the candidate over one batch sample and folds the
// comparison into the shadow's counters. ScoreRanges is the shared
// kind-generic surface: a plain model reports one [w+1, w+ω] range per
// fired window (exactly what a plain incumbent's batch path enqueued),
// a pyramid reports fused point ranges (likewise what a pyramid
// incumbent enqueued), so same-kind comparison stays range-exact
// without a per-kind scoring branch — and the candidate skips the rule
// rendering and explanation assembly the comparison never reads, which
// is most of what keeps this path inside the overhead gate on hosts
// where the workers share cores with serving (REPORT.md).
func (s *Shadows) score(job shadowJob) {
	sh := job.sh
	// The shadow_score span links back to the originating request's span
	// via the job's carried SpanContext, so a sampled request's trace
	// shows its asynchronous shadow work under the same trace ID.
	ctx, span := s.tracer.StartLinked(context.Background(), job.link, "shadow_score")
	if span != nil {
		span.SetAttr("model", sh.Name)
		span.SetAttr("request_id", job.rid)
	}
	st, err := sh.candidate.ScoreRanges(ctx, cdt.NewSeries("shadow", job.values))
	if err != nil {
		// A series the incumbent scored but the candidate cannot (e.g.
		// shorter than the candidate's ω) is a hard disagreement on
		// every incumbent detection.
		sh.record(job.windows, 0, len(job.incRanges), 0)
		observeRates(sh, job.windows, len(job.incRanges), 0, 0)
		if span != nil {
			span.SetAttr("error", err.Error())
			span.End()
		}
		if s.logger != nil {
			s.logger.Warn("shadow scoring error",
				"model", sh.Name, "version", sh.Version,
				"request_id", job.rid, "err", err)
		}
		return
	}
	agree, incOnly, candOnly := compareRanges(job.incRanges, st.Ranges)
	sh.record(job.windows, agree, incOnly, candOnly)
	candWindows := len(job.values) - sh.omega
	if candWindows < 0 {
		candWindows = 0
	}
	observeRates(sh, job.windows, len(job.incRanges), candWindows, len(st.Ranges))
	sh.observeScaleRates(st)
	span.End()
	if s.logger != nil {
		s.logger.Debug("shadow sample scored",
			"model", sh.Name, "version", sh.Version,
			"request_id", job.rid,
			"agree", agree, "incumbent_only", incOnly, "candidate_only", candOnly)
	}
}

// observeScaleRates feeds the per-scale candidate fire-rate histograms
// (pyramid candidates only): fired windows over windows swept at each
// scale, pre-fusion — the diagnostic an operator reads to see which
// resolution a candidate disagrees at, independent of whether the
// fusion policy let those firings through.
func (sh *Shadow) observeScaleRates(st cdt.RangeStats) {
	for i := range sh.hScaleRate {
		if i < len(st.ScaleFired) && st.ScaleWindows[i] > 0 {
			sh.hScaleRate[i].Observe(float64(st.ScaleFired[i]) / float64(st.ScaleWindows[i]))
		}
	}
}

// observeRates feeds the per-role fire-rate histograms (fired windows
// per window swept, one observation per batch sample).
func observeRates(sh *Shadow, incWindows, incFired, candWindows, candFired int) {
	if incWindows > 0 {
		sh.hIncRate.Observe(float64(incFired) / float64(incWindows))
	}
	if candWindows > 0 {
		sh.hCandRate.Observe(float64(candFired) / float64(candWindows))
	}
}

// compareRanges merges two ascending range lists and counts exact
// matches and one-sided reports.
func compareRanges(inc, cand [][2]int) (agree, incOnly, candOnly int) {
	i, j := 0, 0
	for i < len(inc) && j < len(cand) {
		switch {
		case inc[i] == cand[j]:
			agree++
			i++
			j++
		case less(inc[i], cand[j]):
			incOnly++
			i++
		default:
			candOnly++
			j++
		}
	}
	incOnly += len(inc) - i
	candOnly += len(cand) - j
	return agree, incOnly, candOnly
}

func less(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}
