// Command cdtlint is the project's static-analysis gate: it type-checks
// every package matching the given patterns (./... by default) and
// applies the repository-specific analyzers that machine-check the
// contracts the concurrent pipeline depends on:
//
//	immutview     mutations of shared Corpus/labeling views
//	locksafe      unreleased locks, RWMutex upgrades, blocking under a lock
//	detfloat      nondeterminism in the training hot path
//	lockdoc       undocumented locking on mutex-guarded state mutators
//	corpusshare   Corpus copies, raw field access, goroutine capture
//	hotalloc      allocation in //cdtlint:hotpath functions and callees
//	kinddispatch  non-exhaustive switches over artifact kinds
//	metriclabel   Vec.With in loops, unbounded metric label values
//
// Test files are analyzed by the view/lock analyzers too — a test that
// corrupts a cached view poisons every later test sharing the corpus.
// The invariant-specific analyzers are scoped: detfloat to the training
// hot path (cdt, internal/core, internal/pattern, internal/quality,
// internal/bayesopt), lockdoc to internal/modelstore, and the PR 8
// analyzers (corpusshare, hotalloc, kinddispatch, metriclabel) to
// library code, where the contracts they check actually bind.
//
// A finding can be suppressed in source with a justified directive:
//
//	//cdtlint:ignore <analyzer> <reason>
//
// trailing the offending line, or standing alone on the line above it.
// Suppressed findings do not fail the run but are carried (with their
// justifications) in the -format json and sarif outputs.
//
// Usage, from the repository root:
//
//	go run ./tools/cmd/cdtlint ./...
//	go run ./tools/cmd/cdtlint -format sarif ./... > cdtlint.sarif
//
// -format sarif emits SARIF 2.1.0 for GitHub code-scanning upload, with
// file URIs relative to the working directory (%SRCROOT%).
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cdt/tools/analysis"
	"cdt/tools/analyzers/corpusshare"
	"cdt/tools/analyzers/detfloat"
	"cdt/tools/analyzers/hotalloc"
	"cdt/tools/analyzers/immutview"
	"cdt/tools/analyzers/kinddispatch"
	"cdt/tools/analyzers/lockdoc"
	"cdt/tools/analyzers/locksafe"
	"cdt/tools/analyzers/metriclabel"
)

var analyzers = []*analysis.Analyzer{
	immutview.Analyzer,
	locksafe.Analyzer,
	detfloat.Analyzer,
	lockdoc.Analyzer,
	corpusshare.Analyzer,
	hotalloc.Analyzer,
	kinddispatch.Analyzer,
	metriclabel.Analyzer,
}

// detfloatScope is the training hot path: the packages whose results the
// bit-identical-parallelism guarantee covers.
var detfloatScope = map[string]bool{
	"cdt":                   true,
	"cdt/internal/core":     true,
	"cdt/internal/pattern":  true,
	"cdt/internal/quality":  true,
	"cdt/internal/bayesopt": true,
}

// lockdocScope covers the packages whose locking discipline must stay
// legible: the model store's cached manifest/audit state today.
var lockdocScope = map[string]bool{
	"cdt/internal/modelstore": true,
}

// libOnly marks the analyzers that check library contracts: tests may
// copy corpora into fixtures, allocate in marked paths they stub out,
// and mint throwaway metric labels without weakening the shipped
// binaries' invariants.
var libOnly = map[*analysis.Analyzer]bool{
	corpusshare.Analyzer:  true,
	hotalloc.Analyzer:     true,
	kinddispatch.Analyzer: true,
	metriclabel.Analyzer:  true,
}

func scope(a *analysis.Analyzer, u *analysis.Unit) bool {
	switch {
	case a == detfloat.Analyzer:
		return u.Kind == analysis.Lib && detfloatScope[u.ImportPath]
	case a == lockdoc.Analyzer:
		return u.Kind == analysis.Lib && lockdocScope[u.ImportPath]
	case libOnly[a]:
		return u.Kind == analysis.Lib
	}
	return true
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cdtlint [-list] [-format text|json|sarif] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "cdtlint: unknown format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset, units, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdtlint: %v\n", err)
		os.Exit(2)
	}
	findings, suppressed, err := analysis.Run(fset, units, analyzers, scope)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdtlint: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	switch *format {
	case "json":
		out, err := renderJSON(findings, suppressed, cwd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdtlint: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(out)
	case "sarif":
		out, err := renderSARIF(findings, suppressed, analyzers, cwd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdtlint: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(out)
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", relPath(cwd, f.Position.Filename), f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cdtlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// relPath makes name relative to root for display and SARIF URIs,
// falling back to the absolute name outside the tree.
func relPath(root, name string) string {
	if root == "" {
		return name
	}
	rel, err := filepath.Rel(root, name)
	if err != nil || rel == ".." || len(rel) > 1 && rel[0] == '.' && rel[1] == '.' {
		return name
	}
	return rel
}
