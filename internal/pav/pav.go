// Package pav reimplements the Pattern Anomaly Value baseline of §4.2
// (Chen & Zhan 2008): multi-scale anomaly detection based on *infrequent
// linear patterns*. A linear pattern is the pair of discretized slopes
// around a point; its anomaly value is its rarity relative to the most
// frequent pattern at the same scale. Points whose patterns are rare at
// any scale receive high scores.
package pav

import (
	"fmt"
	"math"
)

// Options tunes the detector. The zero value gives the reference
// configuration.
type Options struct {
	// SlopeBins is the number of discretization bins for slopes in
	// [-1,1] (default 8).
	SlopeBins int
	// Scales lists the downsampling factors examined (default {1,2,4}).
	Scales []int
}

func (o Options) withDefaults() Options {
	if o.SlopeBins <= 0 {
		o.SlopeBins = 8
	}
	if len(o.Scales) == 0 {
		o.Scales = []int{1, 2, 4}
	}
	return o
}

// Scores computes a pattern-anomaly value per point of a normalized
// series: the maximum, over scales, of the rarity of the linear pattern
// observed around the point at that scale. Output is aligned with the
// input (endpoints inherit their neighbor's score).
func Scores(values []float64, opts Options) ([]float64, error) {
	opts = opts.withDefaults()
	if len(values) < 3 {
		return nil, fmt.Errorf("pav: series of %d points, want >= 3", len(values))
	}
	out := make([]float64, len(values))
	for _, scale := range opts.Scales {
		if scale < 1 {
			return nil, fmt.Errorf("pav: scale %d, want >= 1", scale)
		}
		scaled := downsample(values, scale)
		if len(scaled) < 3 {
			continue
		}
		pavs := scaleScores(scaled, opts.SlopeBins)
		// Project the scale's scores back to original resolution: point i
		// belongs to coarse bucket i/scale.
		for i := range out {
			b := i / scale
			if b >= len(pavs) {
				b = len(pavs) - 1
			}
			if pavs[b] > out[i] {
				out[i] = pavs[b]
			}
		}
	}
	return out, nil
}

// scaleScores computes, at one scale, the anomaly value of every point's
// linear pattern: PAV(p) = 1 − freq(p)/maxFreq.
func scaleScores(values []float64, slopeBins int) []float64 {
	n := len(values)
	// Pattern at interior point i: (slopeBin(in), slopeBin(out)).
	type pat struct{ in, out int }
	pats := make([]pat, n)
	counts := make(map[pat]int)
	for i := 1; i < n-1; i++ {
		p := pat{
			in:  slopeBin(values[i]-values[i-1], slopeBins),
			out: slopeBin(values[i+1]-values[i], slopeBins),
		}
		pats[i] = p
		counts[p]++
	}
	maxFreq := 0
	for _, c := range counts {
		if c > maxFreq {
			maxFreq = c
		}
	}
	scores := make([]float64, n)
	if maxFreq == 0 {
		return scores
	}
	for i := 1; i < n-1; i++ {
		scores[i] = 1 - float64(counts[pats[i]])/float64(maxFreq)
	}
	// Endpoints inherit their interior neighbor's score.
	scores[0] = scores[1]
	scores[n-1] = scores[n-2]
	return scores
}

// slopeBin discretizes a slope in [-1,1] into 2·bins+1 codes (negative,
// zero-ish, positive magnitudes), clamping out-of-range slopes.
func slopeBin(slope float64, bins int) int {
	if math.Abs(slope) < 1e-9 {
		return 0
	}
	mag := int(math.Abs(slope)*float64(bins)) + 1
	if mag > bins {
		mag = bins
	}
	if slope < 0 {
		return -mag
	}
	return mag
}

// downsample averages consecutive groups of factor points.
func downsample(values []float64, factor int) []float64 {
	if factor == 1 {
		return values
	}
	out := make([]float64, 0, (len(values)+factor-1)/factor)
	for i := 0; i < len(values); i += factor {
		end := i + factor
		if end > len(values) {
			end = len(values)
		}
		sum := 0.0
		for _, v := range values[i:end] {
			sum += v
		}
		out = append(out, sum/float64(end-i))
	}
	return out
}

// WindowScores aggregates point scores to the shared window protocol: a
// window's score is its maximum point score.
func WindowScores(pointScores []float64, starts []int, windowLen int) []float64 {
	out := make([]float64, len(starts))
	for wi, start := range starts {
		max := 0.0
		for i := start; i < start+windowLen && i < len(pointScores); i++ {
			if i >= 0 && pointScores[i] > max {
				max = pointScores[i]
			}
		}
		out[wi] = max
	}
	return out
}
