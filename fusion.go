package cdt

// The ensemble/fusion layer: one general mechanism for "several CDTs
// vote on the same feed". A Member pairs a trained Model with the input
// Transform that maps the ensemble's input to the series that member
// scores — identity/dimension selection for multivariate fusion
// (multivariate.go), a resampler for resolution pyramids (pyramid.go) —
// and a Fusion policy turns per-member verdicts into one decision.
//
// Two consumers share the layer:
//
//   - MultiModel fuses window-aligned members (one per dimension, same
//     ω, same clock) through Ensemble.DetectAligned;
//   - PyramidModel fuses members at different temporal resolutions,
//     which are not window-aligned, by projecting each member's fired
//     windows onto original-resolution points and fusing per point.
//
// The fusion policies are shared verbatim by both.

import (
	"context"
	"fmt"
	"math"
	"strings"

	"cdt/internal/timeseries"
)

// FusionPolicy selects how per-member verdicts combine.
type FusionPolicy int

const (
	// FuseAny fires when any member fires — the sensitive default.
	FuseAny FusionPolicy = iota
	// FuseMajority fires when more than half the members fire.
	FuseMajority
	// FuseAll fires only when every member fires — the high-precision
	// setting.
	FuseAll
	// FuseKOfN fires when at least Fusion.K members fire.
	FuseKOfN
	// FuseWeighted fires when the weight sum of firing members reaches
	// Fusion.Threshold (weights default to 1 per member).
	FuseWeighted
)

// String names the policy.
func (p FusionPolicy) String() string {
	switch p {
	case FuseMajority:
		return "majority"
	case FuseAll:
		return "all"
	case FuseKOfN:
		return "k-of-n"
	case FuseWeighted:
		return "weighted"
	}
	return "any"
}

// ParseFusionPolicy converts a policy name back to its FusionPolicy.
func ParseFusionPolicy(s string) (FusionPolicy, error) {
	switch s {
	case "", "any":
		return FuseAny, nil
	case "majority":
		return FuseMajority, nil
	case "all":
		return FuseAll, nil
	case "k-of-n":
		return FuseKOfN, nil
	case "weighted":
		return FuseWeighted, nil
	}
	return 0, fmt.Errorf("cdt: unknown fusion policy %q", s)
}

// Fusion is a pluggable verdict-combination policy. The zero value is
// FuseAny.
type Fusion struct {
	// Policy selects the combination rule.
	Policy FusionPolicy
	// K is the firing-member quorum for FuseKOfN.
	K int
	// Weights holds one weight per member for FuseWeighted; nil weights
	// every member 1.
	Weights []float64
	// Threshold is the firing weight sum required by FuseWeighted.
	Threshold float64
}

// Validate checks the policy parameters against the member count.
// context names the owning model and its members (a pyramid's scales, an
// ensemble's dimensions), so a rejection says whose fusion is broken —
// the model store's audit log and the CLI relay these verbatim.
func (f Fusion) Validate(context string, members int) error {
	if members < 1 {
		return fmt.Errorf("cdt: %s: fusion needs at least one member", context)
	}
	switch f.Policy {
	case FuseKOfN:
		if f.K < 1 || f.K > members {
			return fmt.Errorf("cdt: %s: fusion quorum k=%d outside [1,%d]", context, f.K, members)
		}
	case FuseWeighted:
		if f.Weights != nil {
			if len(f.Weights) != members {
				return fmt.Errorf("cdt: %s: %d fusion weights for %d members", context, len(f.Weights), members)
			}
			allZero := true
			for _, w := range f.Weights {
				if w != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				// An all-zero weight vector never reaches a positive
				// threshold: the model would silently never fire. Reject it
				// here instead of at the first missed anomaly.
				return fmt.Errorf("cdt: %s: all %d fusion weights are zero; weighted fusion would never fire", context, members)
			}
		}
		if f.Threshold <= 0 {
			return fmt.Errorf("cdt: %s: fusion threshold %v, want > 0", context, f.Threshold)
		}
	case FuseAny, FuseMajority, FuseAll:
	default:
		return fmt.Errorf("cdt: %s: unknown fusion policy %d", context, f.Policy)
	}
	return nil
}

// weight returns member i's voting weight.
func (f Fusion) weight(i int) float64 {
	if f.Weights == nil {
		return 1
	}
	return f.Weights[i]
}

// decide combines an accumulated vote: count members fired (with weight
// sum) out of n. The counting form lets hot detection loops accumulate
// votes without materializing a per-member bool slice per window.
func (f Fusion) decide(count int, weight float64, n int) bool {
	switch f.Policy {
	case FuseMajority:
		return count*2 > n
	case FuseAll:
		return count == n
	case FuseKOfN:
		return count >= f.K
	case FuseWeighted:
		return weight >= f.Threshold
	}
	return count > 0
}

// Decide combines one per-member verdict vector into the fused verdict.
func (f Fusion) Decide(fired []bool) bool {
	count, weight := 0, 0.0
	for i, fi := range fired {
		if fi {
			count++
			weight += f.weight(i)
		}
	}
	return f.decide(count, weight, len(fired))
}

// String renders the policy with its parameters.
func (f Fusion) String() string {
	switch f.Policy {
	case FuseKOfN:
		return fmt.Sprintf("%d-of-n", f.K)
	case FuseWeighted:
		return fmt.Sprintf("weighted(>=%g)", f.Threshold)
	}
	return f.Policy.String()
}

// Transform maps an ensemble input — a set of aligned series — to the
// one series a member scores.
type Transform interface {
	// Apply selects or derives the member's series from the input
	// dimensions.
	Apply(dims []*Series) (*Series, error)
	// String describes the transform for rule listings and artifacts.
	String() string
}

// DimTransform selects one input dimension unchanged — the identity
// transform of per-dimension multivariate fusion.
type DimTransform struct {
	// Dim is the 0-based input dimension.
	Dim int
}

// Apply selects dimension Dim.
func (t DimTransform) Apply(dims []*Series) (*Series, error) {
	if t.Dim < 0 || t.Dim >= len(dims) {
		return nil, fmt.Errorf("cdt: transform selects dimension %d of %d", t.Dim, len(dims))
	}
	return dims[t.Dim], nil
}

// String describes the transform.
func (t DimTransform) String() string { return fmt.Sprintf("dim(%d)", t.Dim) }

// ResampleTransform downsamples the first input dimension by Factor —
// the per-scale transform of resolution pyramids. Factor 1 is the
// identity.
type ResampleTransform struct {
	// Factor is the downsample factor (>= 1).
	Factor int
	// Aggregator names the bucket aggregation: "mean" (default) or
	// "max". "sum" is excluded: it leaves the [0,1] normalization range,
	// which would break scale consistency between batch and streaming
	// detection.
	Aggregator string
}

// canonicalAggregator maps an aggregator name to its canonical form
// ("" is the mean default).
func canonicalAggregator(name string) string {
	if name == "" {
		return "mean"
	}
	return name
}

// aggregatorOf resolves an aggregator name.
func aggregatorOf(name string) (timeseries.Aggregator, error) {
	switch name {
	case "", "mean":
		return timeseries.Mean, nil
	case "max":
		return timeseries.Max, nil
	}
	return nil, fmt.Errorf("cdt: unknown aggregator %q (want mean or max)", name)
}

// Apply downsamples dimension 0 by Factor.
func (t ResampleTransform) Apply(dims []*Series) (*Series, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("cdt: resample transform on empty input")
	}
	agg, err := aggregatorOf(t.Aggregator)
	if err != nil {
		return nil, err
	}
	if t.Factor == 1 {
		return dims[0], nil
	}
	return timeseries.Downsample(dims[0], t.Factor, agg)
}

// String describes the transform.
func (t ResampleTransform) String() string {
	agg := t.Aggregator
	if agg == "" {
		agg = "mean"
	}
	return fmt.Sprintf("resample(%d,%s)", t.Factor, agg)
}

// ChainTransform composes transforms left to right, closing Transform
// under composition: the first stage sees the full ensemble input, every
// subsequent stage sees the previous stage's output as a single-
// dimension input. ChainTransform{DimTransform{1}, ResampleTransform{4,
// "max"}} selects dimension 1 and downsamples it — the member shape that
// lets resolution pyramids ride multivariate feeds.
type ChainTransform []Transform

// Apply runs the stages in order.
func (t ChainTransform) Apply(dims []*Series) (*Series, error) {
	if len(t) == 0 {
		return nil, fmt.Errorf("cdt: empty transform chain")
	}
	s, err := t[0].Apply(dims)
	if err != nil {
		return nil, err
	}
	for _, stage := range t[1:] {
		s, err = stage.Apply([]*Series{s})
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// String renders the stages left to right ("dim(1)|resample(4,max)").
func (t ChainTransform) String() string {
	parts := make([]string, len(t))
	for i, stage := range t {
		parts[i] = stage.String()
	}
	return strings.Join(parts, "|")
}

// validFusionSamples checks a labeled fire-indicator matrix and returns
// the member count.
func validFusionSamples(fired [][]bool, truth []bool) (int, error) {
	if len(fired) == 0 {
		return 0, fmt.Errorf("cdt: no fusion training samples")
	}
	if len(truth) != len(fired) {
		return 0, fmt.Errorf("cdt: %d fusion labels for %d samples", len(truth), len(fired))
	}
	n := len(fired[0])
	if n < 1 {
		return 0, fmt.Errorf("cdt: fusion samples have no members")
	}
	for t, row := range fired {
		if len(row) != n {
			return 0, fmt.Errorf("cdt: fusion sample %d has %d members, want %d", t, len(row), n)
		}
	}
	return n, nil
}

// FitFusionWeights learns FuseWeighted parameters from labeled
// per-member fire indicators: a full-batch logistic fit with a fixed
// iteration budget and slice-ordered accumulation — no randomness, no
// map iteration, no wall-clock — so refitting the same corpus
// reproduces the same weights bit for bit. fired[t][i] reports whether
// member i fired on sample t; truth[t] is the sample's label.
//
// The logistic decision boundary w·x + b >= 0 maps onto weighted
// fusion's monotone form as weights w with Threshold −b. Negative
// weights ("this member firing argues against anomaly") are clamped to
// zero — the monotone weight sum cannot express them and an operator
// cannot read them — and the result is scaled so the largest weight is
// 1 (scaling both sides of the inequality preserves every decision). A
// degenerate fit (no positive weight, or a non-positive threshold)
// falls back to uniform weights with threshold 1 — FuseAny in weighted
// clothing — never an all-zero vector, which Validate rejects.
func FitFusionWeights(fired [][]bool, truth []bool) (Fusion, error) {
	n, err := validFusionSamples(fired, truth)
	if err != nil {
		return Fusion{}, err
	}
	// Full-batch gradient descent on the logistic loss. Step count and
	// rate are fixed: the inputs are 0/1 indicators over at most
	// maxPyramidScales members, so convergence is quick and determinism
	// matters more than the last decimal of the fit.
	const (
		fitIters = 200
		fitRate  = 0.5
	)
	w := make([]float64, n)
	grad := make([]float64, n)
	bias := 0.0
	for it := 0; it < fitIters; it++ {
		for i := range grad {
			grad[i] = 0
		}
		gBias := 0.0
		for t, row := range fired {
			z := bias
			for i, fi := range row {
				if fi {
					z += w[i]
				}
			}
			d := 1 / (1 + math.Exp(-z))
			if truth[t] {
				d--
			}
			gBias += d
			for i, fi := range row {
				if fi {
					grad[i] += d
				}
			}
		}
		step := fitRate / float64(len(fired))
		bias -= step * gBias
		for i := range w {
			w[i] -= step * grad[i]
		}
	}
	maxW := 0.0
	for i := range w {
		if w[i] < 0 {
			w[i] = 0
		}
		if w[i] > maxW {
			maxW = w[i]
		}
	}
	threshold := -bias
	if maxW == 0 || threshold <= 0 {
		uniform := make([]float64, n)
		for i := range uniform {
			uniform[i] = 1
		}
		return Fusion{Policy: FuseWeighted, Weights: uniform, Threshold: 1}, nil
	}
	total := 0.0
	for i := range w {
		w[i] /= maxW
		total += w[i]
	}
	threshold /= maxW
	if threshold > total {
		// A threshold above the total weight can never fire; cap it at
		// "every member agrees" so the learned rule stays reachable.
		threshold = total
	}
	return Fusion{Policy: FuseWeighted, Weights: w, Threshold: threshold}, nil
}

// FitFusionK picks the FuseKOfN quorum maximizing F1 over labeled
// per-member fire indicators — the counting-policy counterpart of
// FitFusionWeights, equally deterministic (an exhaustive sweep of
// k=1..n in order, ties kept at the smaller, more sensitive k).
func FitFusionK(fired [][]bool, truth []bool) (Fusion, error) {
	n, err := validFusionSamples(fired, truth)
	if err != nil {
		return Fusion{}, err
	}
	counts := make([]int, len(fired))
	for t, row := range fired {
		for _, fi := range row {
			if fi {
				counts[t]++
			}
		}
	}
	bestK, bestF1 := 1, -1.0
	for k := 1; k <= n; k++ {
		tp, fp, fn := 0, 0, 0
		for t, c := range counts {
			switch pred := c >= k; {
			case pred && truth[t]:
				tp++
			case pred:
				fp++
			case truth[t]:
				fn++
			}
		}
		f1 := 0.0
		if 2*tp+fp+fn > 0 {
			f1 = 2 * float64(tp) / float64(2*tp+fp+fn)
		}
		if f1 > bestF1 {
			bestK, bestF1 = k, f1
		}
	}
	return Fusion{Policy: FuseKOfN, K: bestK}, nil
}

// Member is one model in an ensemble plus the transform that feeds it.
type Member struct {
	// Name identifies the member in rule listings (a dimension name, a
	// scale like "x4").
	Name string
	// Model is the member's trained CDT.
	Model *Model
	// Transform maps the ensemble input to this member's series.
	Transform Transform
}

// Ensemble is a set of members with a fusion policy — the shared
// mechanism under MultiModel and PyramidModel.
type Ensemble struct {
	// Members are the voting models.
	Members []Member
	// Fuse combines their verdicts.
	Fuse Fusion
}

// Validate checks the ensemble is runnable.
func (e *Ensemble) Validate() error {
	if len(e.Members) == 0 {
		return fmt.Errorf("cdt: ensemble has no members")
	}
	names := make([]string, len(e.Members))
	for i, m := range e.Members {
		if m.Model == nil {
			return fmt.Errorf("cdt: ensemble member %d has no model", i)
		}
		if m.Transform == nil {
			return fmt.Errorf("cdt: ensemble member %d has no transform", i)
		}
		names[i] = m.Name
	}
	return e.Fuse.Validate("ensemble["+strings.Join(names, ",")+"]", len(e.Members))
}

// DetectAligned sweeps every member over its transformed input and
// fuses verdicts per window. All members must produce the same window
// count (same ω over same-length inputs) — the window-aligned fast path
// MultiModel runs on. Votes accumulate into per-window counts, so no
// per-member flag slice is materialized.
func (e *Ensemble) DetectAligned(dims []*Series) ([]bool, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	var (
		counts  []int
		weights []float64
	)
	for i, mem := range e.Members {
		s, err := mem.Transform.Apply(dims)
		if err != nil {
			return nil, fmt.Errorf("cdt: member %d: %w", i, err)
		}
		marks, err := mem.Model.detectMarks(context.Background(), s)
		if err != nil {
			return nil, fmt.Errorf("cdt: member %d: %w", i, err)
		}
		if counts == nil {
			counts = make([]int, marks.NumWindows())
			if e.Fuse.Policy == FuseWeighted {
				weights = make([]float64, marks.NumWindows())
			}
		}
		if marks.NumWindows() != len(counts) {
			return nil, fmt.Errorf("cdt: member %d has %d windows, want %d", i, marks.NumWindows(), len(counts))
		}
		for wi := range counts {
			if marks.Fired(wi) {
				counts[wi]++
				if weights != nil {
					weights[wi] += e.Fuse.weight(i)
				}
			}
		}
	}
	n := len(e.Members)
	out := make([]bool, len(counts))
	for wi, count := range counts {
		w := float64(count)
		if weights != nil {
			w = weights[wi]
		}
		out[wi] = e.Fuse.decide(count, w, n)
	}
	return out, nil
}

// NumRules sums the member models' rule counts.
func (e *Ensemble) NumRules() int {
	n := 0
	for _, m := range e.Members {
		n += m.Model.NumRules()
	}
	return n
}
