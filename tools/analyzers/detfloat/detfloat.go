// Package detfloat guards the training pipeline's determinism contract:
// OptimizeCorpus promises bit-identical results at any Parallelism
// (corpus.go, optimize.go), and the experiment suite reproduces the
// paper's tables from fixed seeds. Floating-point addition is not
// associative and Go's map iteration order is deliberately randomized,
// so any map-ordered accumulation, wall-clock read, or global
// math/rand call in the hot path silently breaks that guarantee.
//
// Reported patterns:
//
//   - time.Now in analyzed packages (wall-clock dependence)
//   - package-level math/rand and math/rand/v2 functions (the global,
//     unseeded source); rand.New(rand.NewSource(seed)) is the sanctioned
//     deterministic form and is not reported
//   - `for ... range m` over a map whose body accumulates into an outer
//     float variable (x += v and friends): the sum depends on iteration
//     order
//   - `for ... range m` over a map whose body appends to an outer slice
//     ("candidate collection") with no later sort of that slice in the
//     same function: the slice order depends on iteration order. A
//     following sort.*/slices.Sort* of the slice dominates the loop and
//     suppresses the report
//   - extremum selection over a map with a non-strict comparison
//     (`<=`/`>=` guarding an assignment of the iteration variables to
//     outer state): ties resolve to the last-iterated key, i.e. by map
//     order — exactly the corpus.go LRU-eviction bug class
//
// The analyzer is intentionally scoped by the cdtlint driver to the
// training hot path (cdt, internal/core, internal/pattern,
// internal/quality, internal/bayesopt); elsewhere wall clocks and global
// randomness are legitimate.
package detfloat

import (
	"go/ast"
	"go/token"
	"go/types"

	"cdt/tools/analysis"
)

// Analyzer is the detfloat check.
var Analyzer = &analysis.Analyzer{
	Name: "detfloat",
	Doc:  "flags nondeterminism in the training hot path: map-ordered accumulation, time.Now, global math/rand",
	Run:  run,
}

// deterministicRand lists math/rand package functions that are
// constructors rather than draws from the global source.
var deterministicRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapLoops(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// checkCall flags wall-clock reads and draws from the global math/rand
// source.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.FullName() {
	case "time.Now":
		pass.Reportf(call.Pos(), "time.Now in the training hot path breaks bit-identical reproducibility; thread explicit inputs instead")
		return
	}
	pkg := fn.Pkg().Path()
	if (pkg == "math/rand" || pkg == "math/rand/v2") && fn.Type().(*types.Signature).Recv() == nil && !deterministicRand[fn.Name()] {
		pass.Reportf(call.Pos(), "global %s.%s draws from a shared unseeded source; use rand.New(rand.NewSource(seed)) and thread it through", pkg, fn.Name())
	}
}

// checkMapLoops inspects every range-over-map in fn's body. Nested
// function literals are walked as part of the enclosing body: an
// accumulation into captured state is order-dependent no matter which
// body performs it.
func checkMapLoops(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.TypeOf(rng.X); t == nil || !isMapType(t) {
			return true
		}
		checkMapBody(pass, body, rng)
		return true
	})
}

func checkMapBody(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	loopVars := rangeVars(pass, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloat(pass.TypesInfo.TypeOf(lhs)) && declaredOutside(pass, lhs, rng) {
						pass.Reportf(n.Pos(), "float accumulation across map iteration is order-dependent; iterate sorted keys instead")
					}
				}
			case token.ASSIGN, token.DEFINE:
				checkAppend(pass, fnBody, rng, n)
			}
		case *ast.IfStmt:
			// Non-strict extremum guard: `if v <= best { best, k = v, key }`.
			if cmp, ok := n.Cond.(*ast.BinaryExpr); ok && (cmp.Op == token.LEQ || cmp.Op == token.GEQ) {
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if as, ok := m.(*ast.AssignStmt); ok {
						checkSelectionAssign(pass, rng, as, loopVars)
					}
					return true
				})
				return true
			}
		}
		return true
	})
}

// checkAppend reports `outer = append(outer, ...)` under map iteration
// unless outer is sorted later in the same function.
func checkAppend(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			continue
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		target, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok || !declaredOutside(pass, target, rng) {
			continue
		}
		if sortedAfter(pass, fnBody, rng, target) {
			continue
		}
		pass.Reportf(as.Pos(), "append to %s under map iteration collects in map order; sort %s afterwards or iterate sorted keys", target.Name, target.Name)
	}
}

// checkSelectionAssign reports assignments of the loop variables to outer
// state under a non-strict comparison: ties then resolve to whichever key
// the map yields last.
func checkSelectionAssign(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt, loopVars map[types.Object]bool) {
	usesLoopVar := false
	for _, rhs := range as.Rhs {
		ast.Inspect(rhs, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[pass.TypesInfo.Uses[id]] {
				usesLoopVar = true
			}
			return true
		})
	}
	if !usesLoopVar {
		return
	}
	for _, lhs := range as.Lhs {
		if declaredOutside(pass, lhs, rng) {
			pass.Reportf(as.Pos(), "extremum selection over a map with a non-strict comparison ties by iteration order; use a strict comparison plus a deterministic tie-break")
			return
		}
	}
}

// sortedAfter reports whether target is passed to a sort function after
// the range loop, anywhere later in the function body.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[target]
	if obj == nil {
		obj = pass.TypesInfo.Defs[target]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := callee(pass, call)
		if fn == nil || !sorters[fn.FullName()] {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

var sorters = map[string]bool{
	"sort.Slice":            true,
	"sort.SliceStable":      true,
	"sort.Sort":             true,
	"sort.Stable":           true,
	"sort.Ints":             true,
	"sort.Float64s":         true,
	"sort.Strings":          true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"slices.SortStableFunc": true,
}

func rangeVars(pass *analysis.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// declaredOutside reports whether the expression's root object is
// declared before the loop (accumulating into it across iterations is
// therefore order-dependent). Selector targets (s.total) always count as
// outside.
func declaredOutside(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos()
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return declaredOutside(pass, e.X, rng)
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
