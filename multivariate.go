package cdt

// Multivariate support — the paper's final future-work item ("we could
// also expand our method to suit multivariate time-series"). Each
// dimension is labeled with its own pattern alphabet and grows its own
// CDT; a combination policy fuses the per-dimension window verdicts.
// Per-dimension rules stay individually interpretable ("dimension
// 'pressure': IF [PN[-H,-H]] THEN anomaly"), which preserves the paper's
// whole point while covering multivariate feeds.
//
// MultiModel is the first consumer of the shared ensemble layer
// (fusion.go): each dimension is a Member whose Transform selects its
// dimension, and CombinePolicy maps onto the matching Fusion policy.
// The fused verdicts are bit-identical to the pre-ensemble
// implementation (pinned by TestMultiModelDifferential).

import (
	"fmt"
	"strings"

	"cdt/internal/core"
	"cdt/internal/evalmetrics"
)

// MultiSeries is a set of aligned series (equal length, same clock) with
// one shared anomaly annotation.
type MultiSeries struct {
	// Name identifies the multivariate feed.
	Name string
	// Dims holds one series per dimension. Per-dimension anomaly flags
	// are ignored; the shared annotation below is the ground truth.
	Dims []*Series
	// Anomalies flags anomalous time points (nil for unlabeled feeds).
	Anomalies []bool
}

// Validate checks alignment.
func (ms *MultiSeries) Validate() error {
	if len(ms.Dims) == 0 {
		return fmt.Errorf("cdt: multivariate series %q has no dimensions", ms.Name)
	}
	n := ms.Dims[0].Len()
	for d, s := range ms.Dims {
		if s.Len() != n {
			return fmt.Errorf("cdt: %q dimension %d has %d points, want %d", ms.Name, d, s.Len(), n)
		}
	}
	if ms.Anomalies != nil && len(ms.Anomalies) != n {
		return fmt.Errorf("cdt: %q has %d anomaly flags for %d points", ms.Name, len(ms.Anomalies), n)
	}
	return nil
}

// Len returns the number of time points.
func (ms *MultiSeries) Len() int {
	if len(ms.Dims) == 0 {
		return 0
	}
	return ms.Dims[0].Len()
}

// CombinePolicy fuses per-dimension window verdicts.
type CombinePolicy int

const (
	// CombineAny flags a window when any dimension's rules fire — the
	// sensitive default (an anomaly may manifest in one dimension only).
	CombineAny CombinePolicy = iota
	// CombineMajority flags a window when more than half the dimensions
	// fire.
	CombineMajority
	// CombineAll flags a window only when every dimension fires — the
	// high-precision setting.
	CombineAll
)

// String names the policy.
func (p CombinePolicy) String() string {
	switch p {
	case CombineMajority:
		return "majority"
	case CombineAll:
		return "all"
	}
	return "any"
}

// fusion maps the policy onto the shared ensemble layer's equivalent.
func (p CombinePolicy) fusion() Fusion {
	switch p {
	case CombineMajority:
		return Fusion{Policy: FuseMajority}
	case CombineAll:
		return Fusion{Policy: FuseAll}
	}
	return Fusion{Policy: FuseAny}
}

// MultiModel is one trained CDT per dimension plus the fusion policy.
type MultiModel struct {
	// Opts is the shared per-dimension training configuration.
	Opts Options
	// Policy fuses dimension verdicts.
	Policy CombinePolicy

	ens   Ensemble
	names []string
}

// FitMulti trains one CDT per dimension over the aligned training feeds.
// Every feed must have the same dimensionality; dimension d of every
// feed trains model d, using the feed's shared anomaly annotation.
func FitMulti(train []*MultiSeries, opts Options, policy CombinePolicy) (*MultiModel, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("cdt: no training feeds")
	}
	dims := len(train[0].Dims)
	for _, ms := range train {
		if err := ms.Validate(); err != nil {
			return nil, err
		}
		if len(ms.Dims) != dims {
			return nil, fmt.Errorf("cdt: feed %q has %d dimensions, want %d", ms.Name, len(ms.Dims), dims)
		}
	}
	mm := &MultiModel{Opts: opts, Policy: policy}
	mm.ens.Fuse = policy.fusion()
	for d := 0; d < dims; d++ {
		var perDim []*Series
		for _, ms := range train {
			// Attach the shared annotation to this dimension's values.
			perDim = append(perDim, NewLabeledSeries(ms.Dims[d].Name, ms.Dims[d].Values, ms.Anomalies))
		}
		// Per-variable training rides the shared Corpus pipeline like the
		// univariate trainers do.
		c, err := NewCorpus(perDim)
		if err != nil {
			return nil, fmt.Errorf("cdt: dimension %d: %w", d, err)
		}
		model, err := c.Fit(opts)
		if err != nil {
			return nil, fmt.Errorf("cdt: dimension %d: %w", d, err)
		}
		mm.ens.Members = append(mm.ens.Members, Member{
			Name:      train[0].Dims[d].Name,
			Model:     model,
			Transform: DimTransform{Dim: d},
		})
		mm.names = append(mm.names, train[0].Dims[d].Name)
	}
	return mm, nil
}

// Dimensions returns the number of per-dimension models.
func (mm *MultiModel) Dimensions() int { return len(mm.ens.Members) }

// DimensionModel returns dimension d's trained CDT.
func (mm *MultiModel) DimensionModel(d int) *Model { return mm.ens.Members[d].Model }

// DetectWindows fuses the per-dimension window verdicts for one feed.
func (mm *MultiModel) DetectWindows(ms *MultiSeries) ([]bool, error) {
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	if len(ms.Dims) != len(mm.ens.Members) {
		return nil, fmt.Errorf("cdt: feed has %d dimensions, model expects %d", len(ms.Dims), len(mm.ens.Members))
	}
	return mm.ens.DetectAligned(ms.Dims)
}

// Evaluate scores the fused detection on labeled feeds, pooling windows.
func (mm *MultiModel) Evaluate(eval []*MultiSeries) (Report, error) {
	if len(eval) == 0 {
		return Report{}, fmt.Errorf("cdt: no evaluation feeds")
	}
	var conf evalmetrics.Confusion
	for _, ms := range eval {
		if ms.Anomalies == nil {
			return Report{}, fmt.Errorf("cdt: feed %q is unlabeled", ms.Name)
		}
		predicted, err := mm.DetectWindows(ms)
		if err != nil {
			return Report{}, err
		}
		// Window wi covers points wi+1..wi+ω (same geometry as the
		// univariate model).
		truthSeries := NewLabeledSeries(ms.Name, ms.Dims[0].Values, ms.Anomalies)
		obs, err := observations(truthSeries, mm.ens.Members[0].Model.pcfg, mm.Opts.Omega)
		if err != nil {
			return Report{}, err
		}
		if len(obs) != len(predicted) {
			return Report{}, fmt.Errorf("cdt: window count mismatch: %d vs %d", len(obs), len(predicted))
		}
		for wi := range obs {
			conf.Add(predicted[wi], obs[wi].Class == core.Anomaly)
		}
	}
	return Report{
		Confusion: conf,
		F1:        conf.F1(),
		NumRules:  mm.NumRules(),
	}, nil
}

// NumRules sums the rule counts of all dimension models.
func (mm *MultiModel) NumRules() int { return mm.ens.NumRules() }

// RuleText renders each dimension's rules under a header.
func (mm *MultiModel) RuleText() string {
	var b strings.Builder
	for d, mem := range mm.ens.Members {
		name := mm.names[d]
		if name == "" {
			name = fmt.Sprintf("dim%d", d)
		}
		fmt.Fprintf(&b, "dimension %q:\n", name)
		for _, line := range strings.Split(strings.TrimRight(mem.Model.RuleText(), "\n"), "\n") {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
