package experiments

import (
	"fmt"
	"strings"

	cdt "cdt"
	"cdt/internal/core"
	"cdt/internal/pattern"
	"cdt/internal/rules"
)

// Figure3Row is one dataset's rule counts per method (paper Figure 3).
type Figure3Row struct {
	Dataset  string
	NumRules [3]int // CDT, PART, JRip
}

// Figure3 reports the number of rules each method produces; it reuses
// Table 4's runs (the paper derives Figure 3 from the same experiment).
func (s *Suite) Figure3() ([]Figure3Row, error) {
	t4, err := s.Table4()
	if err != nil {
		return nil, err
	}
	rows := make([]Figure3Row, len(t4))
	for i, r := range t4 {
		rows[i] = Figure3Row{Dataset: r.Dataset, NumRules: r.NumRules}
	}
	return rows, nil
}

// FormatFigure3 renders the rule counts as a labeled bar chart.
func FormatFigure3(rows []Figure3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3: number of rules generated per method\n")
	header := []string{"Dataset", "CDT", "PART", "JRip"}
	var body [][]string
	mins := [3]int{1 << 30, 1 << 30, 1 << 30}
	maxs := [3]int{}
	for _, r := range rows {
		body = append(body, []string{
			r.Dataset,
			fmt.Sprint(r.NumRules[0]), fmt.Sprint(r.NumRules[1]), fmt.Sprint(r.NumRules[2]),
		})
		order := []int{r.NumRules[0], r.NumRules[1], r.NumRules[2]}
		for i, v := range order {
			if v < mins[i] {
				mins[i] = v
			}
			if v > maxs[i] {
				maxs[i] = v
			}
		}
	}
	b.WriteString(FormatTable(header, body))
	fmt.Fprintf(&b, "Ranges: CDT %d-%d (paper %d-%d), PART %d-%d (paper %d-%d), JRip %d-%d (paper %d-%d)\n",
		mins[0], maxs[0], PaperFigure3["CDT"][0], PaperFigure3["CDT"][1],
		mins[1], maxs[1], PaperFigure3["PART"][0], PaperFigure3["PART"][1],
		mins[2], maxs[2], PaperFigure3["JRip"][0], PaperFigure3["JRip"][1])
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s CDT  %s %d\n", r.Dataset, bar(r.NumRules[0]), r.NumRules[0])
		fmt.Fprintf(&b, "%-16s PART %s %d\n", "", bar(r.NumRules[1]), r.NumRules[1])
		fmt.Fprintf(&b, "%-16s JRip %s %d\n", "", bar(r.NumRules[2]), r.NumRules[2])
	}
	return b.String()
}

func bar(n int) string {
	if n > 60 {
		n = 60
	}
	return strings.Repeat("█", n)
}

// Table5Rule is one interpreted rule from the SGE_Calorie model (paper
// Table 5 shows example rules with pattern sketches and expert
// commentary).
type Table5Rule struct {
	Text        string
	Sketch      string
	Description string
}

// Table5 trains the F(h)-tuned calorie model and renders its rules with
// visual sketches and plain-language readings.
func (s *Suite) Table5() ([]Table5Rule, error) {
	model, _, err := s.FitTuned("SGE_Calorie", cdt.ObjectiveFH)
	if err != nil {
		return nil, err
	}
	pcfg := pattern.Config{Delta: model.Opts.Delta, Epsilon: pattern.DefaultEpsilon}
	var out []Table5Rule
	for _, p := range model.Rule().Predicates {
		r := Table5Rule{Text: "IF " + p.Format(pcfg) + " THEN anomaly"}
		var sketches, descs []string
		for _, c := range p.PositiveCompositions() {
			sketches = append(sketches, rules.Sketch(c, pcfg, 5))
			descs = append(descs, rules.Describe(c))
		}
		r.Sketch = strings.Join(sketches, "\n")
		r.Description = strings.Join(descs, "; ")
		out = append(out, r)
	}
	return out, nil
}

// FormatTable5 renders the example rules.
func FormatTable5(rows []Table5Rule) string {
	var b strings.Builder
	b.WriteString("Table 5: example rules generated on SGE_Calorie\n")
	b.WriteString("(paper examples: negative peak = impossible negative consumption;\n")
	b.WriteString(" positive peak = overconsumption; collective = meter-reading fault;\n")
	b.WriteString(" constant = stopped meter)\n\n")
	for i, r := range rows {
		fmt.Fprintf(&b, "R%d: %s\n", i+1, r.Text)
		if r.Description != "" {
			fmt.Fprintf(&b, "    reading: %s\n", r.Description)
		}
		for _, line := range strings.Split(r.Sketch, "\n") {
			b.WriteString("    ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure1 demonstrates the pattern alphabet: it labels a small example
// series and shows the different magnitudes of the PP pattern the
// paper's Figure 1 illustrates.
func Figure1() string {
	cfg := pattern.NewConfig(2)
	var b strings.Builder
	b.WriteString("Figure 1: pattern magnitudes (δ=2)\n")
	examples := []struct {
		name            string
		prev, mid, next float64
	}{
		{"PP[L,H]", 0.3, 0.7, 0.0}, // α=0.4 (L), β=0.7 (H)
		{"PP[L,L]", 0.3, 0.7, 0.4}, // α=0.4 (L), β=0.3 (L)
		{"PP[H,H]", 0.1, 0.9, 0.1}, // α=0.8 (H), β=0.8 (H)
	}
	for _, ex := range examples {
		l := cfg.LabelPoint(ex.prev, ex.mid, ex.next)
		fmt.Fprintf(&b, "points (%.1f, %.1f, %.1f) → %s (expected %s)\n",
			ex.prev, ex.mid, ex.next, cfg.LabelName(l), ex.name)
		comp := core.Composition{Labels: []pattern.Label{l}}
		for _, line := range strings.Split(rules.Sketch(comp, cfg, 5), "\n") {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Figure2 trains a small CDT and renders its structure — the worked
// illustration of the paper's Figure 2.
func (s *Suite) Figure2() (string, error) {
	model, _, err := s.FitTuned("SGE_Calorie", cdt.ObjectiveFH)
	if err != nil {
		return "", err
	}
	st := model.TreeStats()
	var b strings.Builder
	b.WriteString("Figure 2: composition-based decision tree (SGE_Calorie, F(h) parameters)\n")
	fmt.Fprintf(&b, "splits=%d leaves=%d depth=%d anomaly-leaves=%d\n\n",
		st.Splits, st.Leaves, st.MaxDepth, st.AnomalyLeaves)
	b.WriteString(model.TreeText())
	return b.String(), nil
}
