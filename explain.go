package cdt

// Explained detection: the paper's whole point is that detections come
// with human-readable rules attached (§3.4, Table 5), so the library can
// report not just *where* a window fired but *which* rule predicates
// fired and what shape they describe. The serving subsystem
// (internal/server) returns these alongside every detection.

import (
	"context"
	"strconv"
	"strings"

	"cdt/internal/engine"
	"cdt/internal/pattern"
	"cdt/internal/rules"
	"cdt/internal/trace"
)

// FiredPredicate identifies one rule predicate that matched a window,
// rendered for humans.
type FiredPredicate struct {
	// Index is the 1-based rule number matching RuleText's numbering.
	Index int
	// Text is the rendered predicate, e.g.
	// "[PN[-H,-L], SCP[L,Z]] AND NOT [CST[Z,Z]]".
	Text string
	// Description is the plain-language reading of the predicate's
	// positive compositions (Table 1 phrasing), e.g.
	// "negative peak, then rise into constant segment".
	Description string
}

// WindowDetection is one fired window of a batch scan, with the rule
// predicates that fired on it.
type WindowDetection struct {
	// Window is the 0-based sliding-window index (as in DetectWindows).
	Window int
	// Start and End delimit the covered points (inclusive, 0-based
	// indices into the series): window w covers points [w+1, w+ω].
	Start, End int
	// Fired lists the matching rule predicates in rule order.
	Fired []FiredPredicate
	// Type is the anomaly-type tag pyramid detections carry
	// (point/contextual/collective, see pyramid.go); empty for
	// single-scale models.
	Type AnomalyType
	// Scales breaks a pyramid detection down per resolution; nil for
	// single-scale models.
	Scales []ScaleDetection
}

// finalizeRules derives the simplified rule from the raw extraction,
// compiles it into the model's shared matching engine, and caches the
// per-predicate renderings so hot detection paths (streams, batch
// serving) neither re-match compositions nor re-format rule text per
// window. Fit and Load both call it exactly once; a Model is immutable
// afterwards.
func (m *Model) finalizeRules() {
	m.rule = rules.Simplify(m.raw)
	m.eng = engine.Compile(m.rule, m.Opts.Omega)
	m.predTexts = make([]string, len(m.rule.Predicates))
	m.predDescs = make([]string, len(m.rule.Predicates))
	m.predPeaks = make([]bool, len(m.rule.Predicates))
	for i, p := range m.rule.Predicates {
		m.predTexts[i] = p.Format(m.pcfg)
		m.predDescs[i] = describePredicate(p)
		m.predPeaks[i] = predicateIsPeak(p)
	}
}

// predicateIsPeak reports whether any positive composition of the
// predicate contains a peak label (PP/PN) — a shape that pins an
// anomaly to a single extremal point rather than a sustained run.
func predicateIsPeak(p rules.Predicate) bool {
	for _, c := range p.PositiveCompositions() {
		for _, l := range c.Labels {
			if l.Var == pattern.PP || l.Var == pattern.PN {
				return true
			}
		}
	}
	return false
}

// describePredicate joins the natural-language readings of a predicate's
// positive compositions.
func describePredicate(p rules.Predicate) string {
	var parts []string
	for _, c := range p.PositiveCompositions() {
		parts = append(parts, rules.Describe(c))
	}
	return strings.Join(parts, "; ")
}

// FiredPredicates evaluates every rule predicate against one window of
// labels and returns those that matched, in rule order. It returns nil
// when the window is normal. The window may have any length (it need
// not be ω); whole-window ⊆o semantics apply.
func (m *Model) FiredPredicates(labels []Label) []FiredPredicate {
	return m.firedFromIndices(m.eng.EvalWindow(labels, nil))
}

// firedFromIndices renders engine predicate indices (0-based) into the
// cached human-readable FiredPredicate views (1-based, rule order).
func (m *Model) firedFromIndices(idxs []int) []FiredPredicate {
	if len(idxs) == 0 {
		return nil
	}
	out := make([]FiredPredicate, len(idxs))
	for k, pi := range idxs {
		out[k] = FiredPredicate{
			Index:       pi + 1,
			Text:        m.predTexts[pi],
			Description: m.predDescs[pi],
		}
	}
	return out
}

// DetectExplained runs the rule over a series and returns one entry per
// fired window, each carrying the rule predicates that fired — the
// batch-scoring analogue of DetectWindows for callers who need the
// explanation, not just the flag. A sampled ctx (internal/trace) gets a
// "detect" span over the scoring plus an "engine_sweep" child.
func (m *Model) DetectExplained(ctx context.Context, s *Series) ([]WindowDetection, error) {
	ctx, span := trace.StartSpan(ctx, "detect")
	marks, err := m.detectMarks(ctx, s)
	if err != nil {
		span.End()
		return nil, err
	}
	var out []WindowDetection
	var idxs []int
	for w := 0; w < marks.NumWindows(); w++ {
		if !marks.Fired(w) {
			continue
		}
		idxs = marks.AppendFired(idxs[:0], w)
		out = append(out, WindowDetection{
			Window: w,
			Start:  w + 1,
			End:    w + m.Opts.Omega,
			Fired:  m.firedFromIndices(idxs),
		})
	}
	span.SetAttr("fired", strconv.Itoa(len(out)))
	span.End()
	return out, nil
}

// ScoreRanges reports the same per-window point ranges DetectExplained
// would, skipping the fired-predicate rendering — the lean surface
// shadow scoring runs a candidate through.
func (m *Model) ScoreRanges(ctx context.Context, s *Series) (RangeStats, error) {
	ctx, span := trace.StartSpan(ctx, "score_ranges")
	marks, err := m.detectMarks(ctx, s)
	if err != nil {
		span.End()
		return RangeStats{}, err
	}
	var st RangeStats
	for w := 0; w < marks.NumWindows(); w++ {
		if marks.Fired(w) {
			st.Ranges = append(st.Ranges, [2]int{w + 1, w + m.Opts.Omega})
		}
	}
	span.SetAttr("fired", strconv.Itoa(len(st.Ranges)))
	span.End()
	return st, nil
}
