package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	cdt "cdt"
	"cdt/internal/telemetry"
)

// Registry serves trained models loaded from a directory of versioned
// JSON artifacts (one `<name>.json` per model, the format written by
// Model.Save). Lookups take a read lock; Reload builds a complete new
// model set off to the side and swaps it in atomically under the write
// lock, so in-flight requests keep the *cdt.Model pointer they already
// resolved — models are immutable after load, which makes hot-reload
// safe without draining traffic. Immutability includes each model's
// compiled rule engine (internal/engine): Load compiles it once, and
// every request against the model — batch detects and stream sessions
// alike — matches through that one shared read-only engine.
type Registry struct {
	dir     string
	reloads *telemetry.Counter // set by server.New; nil for a bare registry

	mu     sync.RWMutex
	models map[string]*cdt.Model
}

// ModelInfo summarizes one registered model for listings.
type ModelInfo struct {
	Name     string `json:"name"`
	Omega    int    `json:"omega"`
	Delta    int    `json:"delta"`
	NumRules int    `json:"num_rules"`
}

// NewRegistry loads every model in dir. The directory must exist and
// every *.json file in it must be a loadable model — a serving process
// should fail fast on a bad artifact rather than come up partial.
func NewRegistry(dir string) (*Registry, error) {
	models, err := loadModelDir(dir)
	if err != nil {
		return nil, err
	}
	return &Registry{dir: dir, models: models}, nil
}

// loadModelDir reads every *.json model in dir, keyed by basename.
func loadModelDir(dir string) (map[string]*cdt.Model, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: reading model dir: %w", err)
	}
	models := make(map[string]*cdt.Model)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		m, err := cdt.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("server: loading %s: %w", path, err)
		}
		models[strings.TrimSuffix(e.Name(), ".json")] = m
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("server: no *.json models in %s", dir)
	}
	return models, nil
}

// Get resolves a model by name. The returned model stays valid across
// reloads (it is immutable; the registry only swaps the map).
func (r *Registry) Get(name string) (*cdt.Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	return m, ok
}

// Reload re-reads the model directory and atomically replaces the whole
// model set. On any load error the previous set stays untouched, so a
// corrupt artifact can never take down serving. Returns the number of
// models now live.
func (r *Registry) Reload() (int, error) {
	models, err := loadModelDir(r.dir)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.models = models
	r.mu.Unlock()
	stats.Add("reloads", 1)
	if r.reloads != nil {
		r.reloads.Inc()
	}
	return len(models), nil
}

// List returns the registered models sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.models))
	for name, m := range r.models {
		out = append(out, ModelInfo{
			Name:     name,
			Omega:    m.Opts.Omega,
			Delta:    m.Opts.Delta,
			NumRules: m.NumRules(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}
