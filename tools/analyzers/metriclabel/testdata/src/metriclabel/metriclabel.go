// Package metriclabel is lint-test fodder for the metriclabel
// analyzer: Vec children resolved outside loops, label values bounded.
package metriclabel

import (
	"errors"
	"fmt"
	"strconv"
)

// Counter and CounterVec mirror the structural shape of the telemetry
// package's labeled families.
type Counter struct{ n float64 }

// Inc bumps the counter.
func (c *Counter) Inc() { c.n++ }

// Add bumps the counter by d.
func (c *Counter) Add(d float64) { c.n += d }

// CounterVec is a counter family; With resolves a child.
type CounterVec struct{ children map[string]*Counter }

// With resolves the child for the label values.
func (v *CounterVec) With(values ...string) *Counter {
	c, ok := v.children[values[0]]
	if !ok {
		c = &Counter{}
		v.children[values[0]] = c
	}
	return c
}

// anomalyType is the bounded named-string enum idiom.
type anomalyType string

const typeSpike anomalyType = "spike"

type det struct{ t anomalyType }

func withInLoop(vec *CounterVec, dets []det) {
	for _, d := range dets {
		vec.With("anomaly", string(d.t)).Inc() // want `CounterVec\.With inside a loop re-resolves the child per iteration`
	}
}

func withInLoopSuppressed(vec *CounterVec, dets []det) {
	for _, d := range dets {
		vec.With("anomaly", string(d.t)).Inc() //cdtlint:ignore metriclabel test fixture proves suppression works
	}
}

func withInForLoop(vec *CounterVec, n int) {
	for i := 0; i < n; i++ {
		vec.With("bucket").Inc() // want `CounterVec\.With inside a loop re-resolves the child per iteration`
	}
}

func withInClosureInLoop(vec *CounterVec, fns []func(func())) {
	for _, apply := range fns {
		apply(func() {
			vec.With("cb").Inc() // want `CounterVec\.With inside a loop re-resolves the child per iteration`
		})
	}
}

func hoisted(vec *CounterVec, dets []det) {
	c := vec.With("anomaly", string(typeSpike))
	for range dets {
		c.Inc()
	}
}

// accumulateApply is the sanctioned shape for dynamic-but-bounded
// labels: count per distinct type, then apply once per key. The map
// range is exempt from the loop rule.
func accumulateApply(vec *CounterVec, dets []det) {
	byType := map[anomalyType]float64{}
	for _, d := range dets {
		byType[d.t]++
	}
	for t, n := range byType {
		vec.With("anomaly", string(t)).Add(n)
	}
}

// mapRangeInObservationLoop inherits the outer loop's per-iteration
// cost; the map range does not launder it.
func mapRangeInObservationLoop(vec *CounterVec, batches []map[anomalyType]float64) {
	for _, byType := range batches {
		for t, n := range byType {
			vec.With("anomaly", string(t)).Add(n) // want `CounterVec\.With inside a loop re-resolves the child per iteration`
		}
	}
}

func unboundedFmt(vec *CounterVec, i int) {
	vec.With(fmt.Sprintf("shard-%d", i)).Inc() // want `unbounded label value \(fmt-formatted value\) passed to CounterVec\.With`
}

func unboundedStrconv(vec *CounterVec, i int) {
	vec.With(strconv.Itoa(i)).Inc() // want `unbounded label value \(strconv-formatted value\) passed to CounterVec\.With`
}

func unboundedError(vec *CounterVec) {
	err := errors.New("boom")
	vec.With(err.Error()).Inc() // want `unbounded label value \(error message\) passed to CounterVec\.With`
}

func unboundedNumeric(vec *CounterVec, code int) {
	vec.With(string(rune(code))).Inc() // want `unbounded label value \(numeric conversion\) passed to CounterVec\.With`
}

func boundedEnum(vec *CounterVec, d det) {
	vec.With(string(d.t)).Inc()
	vec.With("constant-label").Inc()
}

// bothAtOnce trips the loop rule and the cardinality rule on one call.
func bothAtOnce(vec *CounterVec, errs []error) {
	for _, err := range errs {
		vec.With(err.Error()).Inc() // want `CounterVec\.With inside a loop re-resolves the child per iteration` `unbounded label value \(error message\) passed to CounterVec\.With`
	}
}

// calledRegistrar loops over With, but its only call sites are plain
// static calls (never in a loop, value never taken): it iterates at
// registration frequency, so the loop rule is waived.
func calledRegistrar(vec *CounterVec, routes []string) {
	for range routes {
		vec.With("route").Inc()
	}
}

func setup(vec *CounterVec) {
	calledRegistrar(vec, []string{"list", "detect", "stream"})
}

// loopCalledRegistrar has a static caller too — but that caller invokes
// it inside an observation loop, so its With runs per iteration squared.
func loopCalledRegistrar(vec *CounterVec, routes []string) {
	for range routes {
		vec.With("route").Inc() // want `CounterVec\.With inside a loop re-resolves the child per iteration`
	}
}

func pump(vec *CounterVec, batches [][]string) {
	for _, b := range batches {
		loopCalledRegistrar(vec, b)
	}
}

// escapingHandler's value is taken (an HTTP-handler-style registration):
// its invocation frequency is unknowable, so it stays flagged even
// though a static call site exists.
func escapingHandler(vec *CounterVec, dets []det) {
	for range dets {
		vec.With("req").Inc() // want `CounterVec\.With inside a loop re-resolves the child per iteration`
	}
}

func registerEscaping(vec *CounterVec) {
	handler := escapingHandler
	handler(vec, nil)
}

// hotCalleeHelper is only ever called by an escaping function: hotness
// floods through the call graph, so its loop is request-frequency too.
func hotCalleeHelper(vec *CounterVec, dets []det) {
	for range dets {
		vec.With("req").Inc() // want `CounterVec\.With inside a loop re-resolves the child per iteration`
	}
}

func escapingDispatcher(vec *CounterVec, dets []det) {
	hotCalleeHelper(vec, dets)
}

var dispatcherRef = escapingDispatcher

// --- per-rule attribution shapes ---------------------------------------
// Serving attribution labels detections by rule. The contract: labels
// are stable bounded indices resolved at artifact-change frequency;
// rendered rule text is unbounded (and re-renders on retrain), so it
// never becomes a label.

// ruleLabels is the sanctioned shape: a bounded table of stable index
// labels ("r<i>", "x<factor>.r<i>"), pre-rendered outside any Vec call.
var ruleLabels = [...]string{"r1", "r2", "r3", "x4.r1", "x4.r2"}

// buildRuleChildren resolves one child per table entry. Its only call
// site is a plain static call, so it runs at registration frequency and
// the loop rule is waived — the attribution-cache build in
// internal/server mirrors this shape.
func buildRuleChildren(vec *CounterVec) []*Counter {
	out := make([]*Counter, 0, len(ruleLabels))
	for _, label := range ruleLabels {
		out = append(out, vec.With("rule", label))
	}
	return out
}

func attributionSetup(vec *CounterVec) []*Counter {
	return buildRuleChildren(vec)
}

// applyRuleCounts is the hot half of the attribution split: slice-
// indexed adds on pre-resolved children, no With in sight.
func applyRuleCounts(children []*Counter, counts []float64) {
	for i, n := range counts {
		if n > 0 {
			children[i].Add(n)
		}
	}
}

// renderedRuleLabels is the anti-pattern the index contract blocks:
// labeling firings by rendered predicate text mints a child per
// wording, per retrain, inside the observation loop.
func renderedRuleLabels(vec *CounterVec, ruleTexts []string) {
	for _, text := range ruleTexts {
		vec.With("rule", text).Inc() // want `CounterVec\.With inside a loop re-resolves the child per iteration`
	}
}

// renderedRuleFmt re-renders the rule text at observation time — both
// unbounded and per-iteration.
func renderedRuleFmt(vec *CounterVec, idx []int) {
	for _, i := range idx {
		vec.With("rule", fmt.Sprintf("avg(w) <= %d", i)).Inc() // want `CounterVec\.With inside a loop re-resolves the child per iteration` `unbounded label value \(fmt-formatted value\) passed to CounterVec\.With`
	}
}

// notAVec has a With method too, but the type name does not end in Vec:
// out of scope.
type registry struct{}

func (r *registry) With(values ...string) *Counter { return &Counter{} }

func otherWith(r *registry, msgs []error) {
	for _, m := range msgs {
		r.With(m.Error()).Inc()
	}
}
