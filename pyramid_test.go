package cdt

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// plateauSeries generates a seasonal series with labeled point spikes
// and one sustained plateau anomaly — the mixed point/collective feed
// the pyramid's typing is about.
func plateauSeries(name string, n int, spikes []int, plateauStart, plateauLen int, seed int64) *Series {
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, n)
	anoms := make([]bool, n)
	for i := range values {
		values[i] = 50 + 10*math.Sin(float64(i)/5) + rng.Float64()
	}
	for _, idx := range spikes {
		values[idx] = 200
		anoms[idx] = true
	}
	for i := plateauStart; i < plateauStart+plateauLen && i < n; i++ {
		values[i] = 150
		anoms[i] = true
	}
	return NewLabeledSeries(name, values, anoms)
}

func TestPyramidConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  PyramidConfig
		ok   bool
	}{
		{"single scale", PyramidConfig{Factors: []int{1}}, true},
		{"three scales", PyramidConfig{Factors: []int{1, 4, 16}, Aggregator: "max"}, true},
		{"empty", PyramidConfig{}, false},
		{"missing base", PyramidConfig{Factors: []int{2, 4}}, false},
		{"not increasing", PyramidConfig{Factors: []int{1, 4, 4}}, false},
		{"too many", PyramidConfig{Factors: []int{1, 2, 3, 4, 5, 6, 7, 8, 9}}, false},
		{"bad aggregator", PyramidConfig{Factors: []int{1, 2}, Aggregator: "sum"}, false},
		{"k of n", PyramidConfig{Factors: []int{1, 2, 4}, Fusion: Fusion{Policy: FuseKOfN, K: 2}}, true},
		{"bad quorum", PyramidConfig{Factors: []int{1, 2}, Fusion: Fusion{Policy: FuseKOfN, K: 3}}, false},
		{"weighted", PyramidConfig{Factors: []int{1, 2}, Fusion: Fusion{Policy: FuseWeighted, Weights: []float64{2, 1}, Threshold: 2}}, true},
		{"weight arity", PyramidConfig{Factors: []int{1, 2}, Fusion: Fusion{Policy: FuseWeighted, Weights: []float64{1}, Threshold: 1}}, false},
		{"zero threshold", PyramidConfig{Factors: []int{1, 2}, Fusion: Fusion{Policy: FuseWeighted, Threshold: 0}}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestFusionDecide(t *testing.T) {
	fired := func(bits ...bool) []bool { return bits }
	cases := []struct {
		name string
		f    Fusion
		in   []bool
		want bool
	}{
		{"any hit", Fusion{Policy: FuseAny}, fired(false, true, false), true},
		{"any miss", Fusion{Policy: FuseAny}, fired(false, false), false},
		{"majority hit", Fusion{Policy: FuseMajority}, fired(true, true, false), true},
		{"majority tie misses", Fusion{Policy: FuseMajority}, fired(true, false), false},
		{"all hit", Fusion{Policy: FuseAll}, fired(true, true), true},
		{"all miss", Fusion{Policy: FuseAll}, fired(true, false), false},
		{"k of n hit", Fusion{Policy: FuseKOfN, K: 2}, fired(true, false, true), true},
		{"k of n miss", Fusion{Policy: FuseKOfN, K: 3}, fired(true, false, true), false},
		{"weighted hit", Fusion{Policy: FuseWeighted, Weights: []float64{3, 1}, Threshold: 3}, fired(true, false), true},
		{"weighted miss", Fusion{Policy: FuseWeighted, Weights: []float64{3, 1}, Threshold: 3}, fired(false, true), false},
		{"weighted default weights", Fusion{Policy: FuseWeighted, Threshold: 2}, fired(true, true, false), true},
	}
	for _, tc := range cases {
		if got := tc.f.Decide(tc.in); got != tc.want {
			t.Errorf("%s: Decide(%v) = %v, want %v", tc.name, tc.in, got, tc.want)
		}
	}
}

// TestPyramidSingleScaleGolden pins the acceptance criterion: a 1-scale
// pyramid under the FuseAny default reproduces the plain model exactly —
// same point flags, same fused ranges, same headline predicates.
func TestPyramidSingleScaleGolden(t *testing.T) {
	train := spikySeries("train", 400, []int{50, 120, 200, 310}, 1)
	test := spikySeries("test", 300, []int{80, 190}, 99)
	opts := Options{Omega: 5, Delta: 2}

	model, err := Fit([]*Series{train}, opts)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := FitPyramid([]*Series{train}, opts, PyramidConfig{Factors: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if pm.NumRules() != model.NumRules() {
		t.Fatalf("NumRules: pyramid %d, model %d", pm.NumRules(), model.NumRules())
	}

	for _, s := range []*Series{train, test} {
		wantFlags, err := model.PointFlags(s)
		if err != nil {
			t.Fatal(err)
		}
		gotFlags, err := pm.PointFlags(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotFlags, wantFlags) {
			t.Fatalf("%s: pyramid point flags diverge from model", s.Name)
		}

		// Fused detections are exactly the maximal runs of the model's
		// point flags, and the headline predicates come from the base
		// scale's firings.
		dets, err := pm.DetectPyramid(s)
		if err != nil {
			t.Fatal(err)
		}
		var runs []rawRange
		for p := 0; p < len(wantFlags); {
			if !wantFlags[p] {
				p++
				continue
			}
			start := p
			for p < len(wantFlags) && wantFlags[p] {
				p++
			}
			runs = append(runs, rawRange{start: start, end: p - 1})
		}
		if len(dets) != len(runs) {
			t.Fatalf("%s: %d fused detections, want %d runs", s.Name, len(dets), len(runs))
		}
		for i, d := range dets {
			if d.Start != runs[i].start || d.End != runs[i].end {
				t.Errorf("%s: detection %d spans [%d,%d], want [%d,%d]", s.Name, i, d.Start, d.End, runs[i].start, runs[i].end)
			}
			if d.Type == "" {
				t.Errorf("%s: detection %d has no type tag", s.Name, i)
			}
			if len(d.Scales) == 0 || d.Scales[0].Factor != 1 {
				t.Errorf("%s: detection %d has no base-scale breakdown", s.Name, i)
			}
			if len(d.Fired) == 0 {
				t.Errorf("%s: detection %d has no fired predicates", s.Name, i)
			}
		}
	}
}

func TestPyramidMultiScaleDetectsAndTypes(t *testing.T) {
	train := plateauSeries("train", 480, []int{50, 150, 250}, 350, 40, 7)
	pm, err := FitPyramid([]*Series{train}, Options{Omega: 5, Delta: 2}, PyramidConfig{
		Factors:    []int{1, 4},
		Aggregator: "max",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pm.Scales(); !reflect.DeepEqual(got, []int{1, 4}) {
		t.Fatalf("Scales() = %v", got)
	}

	dets, err := pm.DetectPyramid(train)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Fatal("no fused detections on training data")
	}
	types := map[AnomalyType]int{}
	for _, d := range dets {
		switch d.Type {
		case TypePoint, TypeContextual, TypeCollective:
			types[d.Type]++
		default:
			t.Fatalf("detection [%d,%d] has invalid type %q", d.Start, d.End, d.Type)
		}
		if len(d.Scales) == 0 {
			t.Errorf("detection [%d,%d] has no scale breakdown", d.Start, d.End)
		}
		for _, sd := range d.Scales {
			if sd.Factor != 1 && sd.Factor != 4 {
				t.Errorf("scale breakdown has factor %d", sd.Factor)
			}
			if len(sd.Fired) == 0 {
				t.Errorf("scale x%d firing carries no predicates", sd.Factor)
			}
		}
	}
	// The plateau spans 40 points: both scales see it, so at least one
	// detection must be typed collective.
	if types[TypeCollective] == 0 {
		t.Errorf("no collective detection over the plateau (types: %v)", types)
	}

	rep, err := pm.Evaluate([]*Series{train})
	if err != nil {
		t.Fatal(err)
	}
	// Point-level scoring over-covers by construction (a fired window
	// flags all ω points around a 1-point spike), so recall is the
	// meaningful floor here, not F1.
	if r := rep.Confusion.Recall(); r < 0.9 {
		t.Errorf("point-level training recall = %v", r)
	}

	text := pm.RuleText()
	for _, header := range []string{"scale x1 ", "scale x4 "} {
		if !strings.Contains(text, header) {
			t.Errorf("RuleText missing %q header:\n%s", header, text)
		}
	}
	if !strings.Contains(pm.Explain(), "scale x4 ") {
		t.Error("Explain missing per-scale header")
	}
}

// TestPyramidStreamMatchesBase pins the streaming contract for the base
// scale: a 1-scale pyramid stream emits exactly the plain stream's
// detections (same windows, same predicates), tagged with scale 1 and a
// type.
func TestPyramidStreamMatchesBase(t *testing.T) {
	train := spikySeries("train", 400, []int{50, 120, 200, 310}, 1)
	test := spikySeries("test", 300, []int{80, 190}, 99)
	opts := Options{Omega: 5, Delta: 2}

	model, err := Fit([]*Series{train}, opts)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := FitPyramid([]*Series{train}, opts, PyramidConfig{Factors: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := test.Values[0], test.Values[0]
	for _, v := range test.Values {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	scale := Scale{Min: lo, Max: hi}
	base, err := model.NewStream(scale)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := pm.NewStream(scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range test.Values {
		want := base.Push(v)
		got := ps.Push(v)
		if len(got) != len(want) {
			t.Fatalf("pyramid stream emitted %d detections, base %d", len(got), len(want))
		}
		for i := range got {
			if got[i].WindowStart != want[i].WindowStart || got[i].WindowEnd != want[i].WindowEnd {
				t.Fatalf("window [%d,%d], want [%d,%d]",
					got[i].WindowStart, got[i].WindowEnd, want[i].WindowStart, want[i].WindowEnd)
			}
			if !reflect.DeepEqual(got[i].Fired, want[i].Fired) {
				t.Fatal("fired predicates diverge")
			}
			if got[i].Scale != 1 || got[i].Type == "" {
				t.Fatalf("detection missing scale/type tags: %+v", got[i])
			}
		}
	}
	if ps.Points() != base.Points() {
		t.Errorf("points: pyramid %d, base %d", ps.Points(), base.Points())
	}
	if ps.Ready() != base.Ready() {
		t.Error("readiness diverges")
	}
}

func TestPyramidStreamMultiScale(t *testing.T) {
	train := plateauSeries("train", 480, []int{50, 150, 250}, 350, 40, 7)
	pm, err := FitPyramid([]*Series{train}, Options{Omega: 5, Delta: 2}, PyramidConfig{
		Factors:    []int{1, 4},
		Aggregator: "max",
	})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := pm.NewStream(Scale{Min: 0, Max: 210})
	if err != nil {
		t.Fatal(err)
	}
	var total int
	seenScales := map[int]bool{}
	for _, v := range train.Values {
		for _, d := range ps.Push(v) {
			total++
			seenScales[d.Scale] = true
			if d.Type != TypePoint && d.Type != TypeContextual && d.Type != TypeCollective {
				t.Fatalf("invalid type %q", d.Type)
			}
			if d.WindowStart < 0 || d.WindowEnd >= ps.Points() {
				t.Fatalf("detection [%d,%d] outside consumed range (n=%d)", d.WindowStart, d.WindowEnd, ps.Points())
			}
		}
	}
	if total == 0 {
		t.Fatal("no streaming detections")
	}
	if !seenScales[1] {
		t.Error("base scale never fired")
	}
	if st := ps.Stats(); st.Detections != uint64(total) || st.Points != len(train.Values) {
		t.Errorf("stats = %+v, want %d detections over %d points", st, total, len(train.Values))
	}
	ps.Reset()
	if ps.Points() != 0 || ps.Ready() {
		t.Error("reset did not clear stream state")
	}
	if st := ps.Stats(); st.Resets != 1 {
		t.Errorf("resets = %d", st.Resets)
	}
}

// TestPyramidReusesCorpusCache pins the "per-resolution corpora are just
// more cache keys" design: two pyramid fits over one corpus share the
// derived resolutions.
func TestPyramidReusesCorpusCache(t *testing.T) {
	train := plateauSeries("train", 480, []int{50, 150, 250}, 350, 40, 7)
	c, err := NewCorpus([]*Series{train})
	if err != nil {
		t.Fatal(err)
	}
	cfg := PyramidConfig{Factors: []int{1, 4}, Aggregator: "max"}
	if _, err := c.FitPyramid(Options{Omega: 5, Delta: 2}, cfg); err != nil {
		t.Fatal(err)
	}
	r1, err := c.AtResolution(4, "max")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.AtResolution(4, "max")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("derived corpus not memoized")
	}
	if base, err := c.AtResolution(1, ""); err != nil || base != c {
		t.Errorf("factor 1 should return the receiver (got %p, %v)", base, err)
	}
	stats := r1.Stats()
	if stats.WindowMisses == 0 {
		t.Error("derived corpus windows were never computed through its cache")
	}
	// A second fit at the same hyper-parameters is all cache hits on the
	// derived corpus.
	if _, err := c.FitPyramid(Options{Omega: 5, Delta: 2}, cfg); err != nil {
		t.Fatal(err)
	}
	after := r1.Stats()
	if after.WindowMisses != stats.WindowMisses {
		t.Errorf("repeat fit recomputed windows: misses %d -> %d", stats.WindowMisses, after.WindowMisses)
	}
}
