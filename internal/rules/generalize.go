package rules

// The paper's future work (§5): "combine rules by a generalization and
// eliminate redundant rules". This file implements both improvements:
//
//   - RemoveRedundant drops rule predicates that never contribute a true
//     positive on a labeled reference set;
//   - Generalize widens the magnitude intervals of rule compositions —
//     e.g. PP[L,H] → PP[+,+] ("any positive peak") — greedily, keeping a
//     widening only when the rule's F1 on a labeled reference set does
//     not degrade. Generalized rules transfer better across magnitude
//     regimes (seasons, sensors) and read even more naturally.

import (
	"fmt"
	"strings"

	"cdt/internal/core"
	"cdt/internal/evalmetrics"
	"cdt/internal/pattern"
)

// RemoveRedundant returns the rule without predicates that detect no
// true positive on the reference observations. Evaluation is ordered:
// a predicate's support is the true positives *it* claims first, so a
// predicate fully shadowed by earlier ones is redundant and removed.
func RemoveRedundant(r Rule, obs []core.Observation) Rule {
	supports := make([]int, len(r.Predicates))
	for i := range obs {
		if obs[i].Class != core.Anomaly {
			continue
		}
		for pi, p := range r.Predicates {
			if p.Matches(obs[i].Labels, r.Mode) {
				supports[pi]++
				break
			}
		}
	}
	out := Rule{Mode: r.Mode}
	for pi, p := range r.Predicates {
		if supports[pi] > 0 {
			out.Predicates = append(out.Predicates, p)
		}
	}
	return out
}

// MagnitudeRange is an inclusive interval-code range. The zero-width
// range pins an exact code; the full positive range [1,δ] means "any
// positive magnitude".
type MagnitudeRange struct {
	Min, Max pattern.Interval
}

// Contains reports whether the code falls inside the range.
func (r MagnitudeRange) Contains(iv pattern.Interval) bool {
	return iv >= r.Min && iv <= r.Max
}

// Exact reports whether the range pins a single code.
func (r MagnitudeRange) Exact() bool { return r.Min == r.Max }

// name renders the range: exact codes use the interval name, widened
// ranges collapse to "+" / "-" (any positive / any negative magnitude).
func (r MagnitudeRange) name(delta int) string {
	if r.Exact() {
		return r.Min.Name(delta)
	}
	if r.Min > 0 {
		return "+"
	}
	return "-"
}

// GeneralLabel matches a pattern label by variation type and magnitude
// ranges.
type GeneralLabel struct {
	Var   pattern.Variation
	Alpha MagnitudeRange
	Beta  MagnitudeRange
}

// Matches reports whether the label satisfies the constraint.
func (g GeneralLabel) Matches(l pattern.Label) bool {
	return l.Var == g.Var && g.Alpha.Contains(l.Alpha) && g.Beta.Contains(l.Beta)
}

// GeneralComposition is an ordered sequence of generalized labels.
type GeneralComposition []GeneralLabel

// MatchedBy reports whether the composition occurs in the labels under
// the given ⊆o mode.
func (c GeneralComposition) MatchedBy(labels []pattern.Label, mode core.MatchMode) bool {
	if len(c) == 0 {
		return true
	}
	if len(c) > len(labels) {
		return false
	}
	if mode == core.MatchSubsequence {
		j := 0
		for _, l := range labels {
			if c[j].Matches(l) {
				j++
				if j == len(c) {
					return true
				}
			}
		}
		return false
	}
outer:
	for start := 0; start+len(c) <= len(labels); start++ {
		for j := range c {
			if !c[j].Matches(labels[start+j]) {
				continue outer
			}
		}
		return true
	}
	return false
}

// Format renders the composition, e.g. "[PP[+,+], PN[-H,-L]]".
func (c GeneralComposition) Format(cfg pattern.Config) string {
	parts := make([]string, len(c))
	for i, g := range c {
		parts[i] = fmt.Sprintf("%s[%s,%s]", g.Var, g.Alpha.name(cfg.Delta), g.Beta.name(cfg.Delta))
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// GeneralPredicate is a conjunction of generalized positive compositions
// and exact negative compositions. Negatives stay exact: widening a
// negated composition would suppress detections the tree never excluded.
type GeneralPredicate struct {
	Positives []GeneralComposition
	Negatives []core.Composition
}

// Matches evaluates the conjunction.
func (p GeneralPredicate) Matches(labels []pattern.Label, mode core.MatchMode) bool {
	for _, c := range p.Positives {
		if !c.MatchedBy(labels, mode) {
			return false
		}
	}
	for _, c := range p.Negatives {
		if c.MatchedBy(labels, mode) {
			return false
		}
	}
	return true
}

// Format renders the conjunction.
func (p GeneralPredicate) Format(cfg pattern.Config) string {
	var parts []string
	for _, c := range p.Positives {
		parts = append(parts, c.Format(cfg))
	}
	for _, c := range p.Negatives {
		parts = append(parts, "NOT "+c.Format(cfg))
	}
	if len(parts) == 0 {
		return "TRUE"
	}
	return strings.Join(parts, " AND ")
}

// GeneralRule is a disjunction of generalized predicates.
type GeneralRule struct {
	Predicates []GeneralPredicate
	Mode       core.MatchMode
}

// Detect evaluates the rule on a window of labels.
func (r GeneralRule) Detect(labels []pattern.Label) bool {
	for _, p := range r.Predicates {
		if p.Matches(labels, r.Mode) {
			return true
		}
	}
	return false
}

// Count returns the number of predicates.
func (r GeneralRule) Count() int { return len(r.Predicates) }

// Format renders the rule as IF-THEN lines.
func (r GeneralRule) Format(cfg pattern.Config) string {
	if len(r.Predicates) == 0 {
		return "(no anomaly rules)"
	}
	var b strings.Builder
	for i, p := range r.Predicates {
		fmt.Fprintf(&b, "R%d: IF %s THEN anomaly\n", i+1, p.Format(cfg))
	}
	return b.String()
}

// F1 scores the rule's window-level detection on labeled observations.
func (r GeneralRule) F1(obs []core.Observation) float64 {
	var conf evalmetrics.Confusion
	for i := range obs {
		conf.Add(r.Detect(obs[i].Labels), obs[i].Class == core.Anomaly)
	}
	return conf.F1()
}

// liftRule converts an exact rule to its generalized form with every
// range pinned.
func liftRule(r Rule) GeneralRule {
	out := GeneralRule{Mode: r.Mode}
	for _, p := range r.Predicates {
		var gp GeneralPredicate
		for _, lit := range p.Literals {
			if lit.Neg {
				gp.Negatives = append(gp.Negatives, lit.Comp)
				continue
			}
			gc := make(GeneralComposition, len(lit.Comp.Labels))
			for i, l := range lit.Comp.Labels {
				gc[i] = GeneralLabel{
					Var:   l.Var,
					Alpha: MagnitudeRange{Min: l.Alpha, Max: l.Alpha},
					Beta:  MagnitudeRange{Min: l.Beta, Max: l.Beta},
				}
			}
			gp.Positives = append(gp.Positives, gc)
		}
		out.Predicates = append(out.Predicates, gp)
	}
	return out
}

// fullRange widens a pinned code to its whole sign class: positive codes
// to [1,δ], negative to [-δ,-1]; the zero code stays exact.
func fullRange(iv pattern.Interval, delta int) MagnitudeRange {
	switch {
	case iv > 0:
		return MagnitudeRange{Min: 1, Max: pattern.Interval(delta)}
	case iv < 0:
		return MagnitudeRange{Min: pattern.Interval(-delta), Max: -1}
	default:
		return MagnitudeRange{}
	}
}

// Generalize widens rule magnitudes greedily: for every positive
// composition label, each magnitude range is widened to its full sign
// class and the widening is kept only if the rule's F1 on the reference
// observations does not drop. Identical predicates produced by the
// widening are merged. The reference set should be labeled data the rule
// was not trained on (validation windows) so the generalization is
// justified by evidence rather than training fit.
func Generalize(r Rule, obs []core.Observation, delta int) GeneralRule {
	g := liftRule(r)
	if len(obs) == 0 {
		return g
	}
	best := g.F1(obs)
	for pi := range g.Predicates {
		for ci := range g.Predicates[pi].Positives {
			comp := g.Predicates[pi].Positives[ci]
			for li := range comp {
				// Try widening α, then β, independently.
				for _, widen := range []func(*GeneralLabel){
					func(gl *GeneralLabel) { gl.Alpha = fullRange(gl.Alpha.Min, delta) },
					func(gl *GeneralLabel) { gl.Beta = fullRange(gl.Beta.Min, delta) },
				} {
					saved := comp[li]
					widen(&comp[li])
					if comp[li] == saved {
						continue
					}
					if f1 := g.F1(obs); f1 >= best {
						best = f1
					} else {
						comp[li] = saved
					}
				}
			}
		}
	}
	return mergeDuplicatePredicates(g)
}

// mergeDuplicatePredicates deduplicates predicates that became identical
// after widening.
func mergeDuplicatePredicates(g GeneralRule) GeneralRule {
	seen := make(map[string]bool)
	out := GeneralRule{Mode: g.Mode}
	cfg := pattern.Config{Delta: 21} // names are only used as identity keys
	for _, p := range g.Predicates {
		key := p.Format(cfg)
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Predicates = append(out.Predicates, p)
	}
	return out
}
