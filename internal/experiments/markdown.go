package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteMarkdownReport runs every experiment and writes a self-contained
// Markdown report (the machine-generated companion to EXPERIMENTS.md).
// Used by `cmd/experiments -md <path>`.
func (s *Suite) WriteMarkdownReport(w io.Writer) error {
	fmt.Fprintf(w, "# CDT reproduction report\n\n")
	fmt.Fprintf(w, "Generated %s · seed %d · scale %s · BO budget %d+%d\n\n",
		time.Now().UTC().Format(time.RFC3339), s.Config.Seed, scaleName(s.Config.Full),
		s.Config.BOInit, s.Config.BOIters)

	t2, err := s.Table2()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Table 2 — optimal hyper-parameters\n\n")
	mdTable(w,
		[]string{"Dataset", "F1 ω", "F1 δ", "F(h) ω", "F(h) δ", "paper F1 (ω,δ)", "paper F(h) (ω,δ)"},
		func(emit func(...string)) {
			for _, r := range t2 {
				emit(r.Dataset,
					fmt.Sprint(r.F1Omega), fmt.Sprint(r.F1Delta),
					fmt.Sprint(r.FHOmega), fmt.Sprint(r.FHDelta),
					fmt.Sprintf("(%d,%d)", r.PaperF1Omega, r.PaperF1Delta),
					fmt.Sprintf("(%d,%d)", r.PaperFHOmega, r.PaperFHDelta))
			}
		})

	t3, err := s.Table3()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Table 3 — F1 vs pattern-based baselines\n\n")
	header := []string{"Dataset"}
	for _, m := range Table3Methods {
		header = append(header, m, m+" (paper)")
	}
	mdTable(w, header, func(emit func(...string)) {
		var sums [4]float64
		for _, r := range t3 {
			row := []string{r.Dataset}
			for i := range Table3Methods {
				row = append(row, fmt.Sprintf("%.2f", r.F1[i]), fmt.Sprintf("%.2f", r.Paper[i]))
				sums[i] += r.F1[i]
			}
			emit(row...)
		}
		avg := []string{"**Average**"}
		for i := range Table3Methods {
			avg = append(avg, fmt.Sprintf("%.2f", sums[i]/float64(len(t3))), fmt.Sprintf("%.2f", PaperTable3Average[i]))
		}
		emit(avg...)
	})

	t4, err := s.Table4()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Table 4 — F1, Q(R), F(h) vs rule learners\n\n")
	header = []string{"Dataset"}
	for _, metric := range []string{"F1", "Q", "F(h)"} {
		for _, m := range Table4Methods {
			header = append(header, metric+" "+m)
		}
	}
	mdTable(w, header, func(emit func(...string)) {
		for _, r := range t4 {
			row := []string{r.Dataset}
			for i := range Table4Methods {
				row = append(row, fmt.Sprintf("%.2f", r.F1[i]))
			}
			for i := range Table4Methods {
				row = append(row, fmt.Sprintf("%.2f", r.Q[i]))
			}
			for i := range Table4Methods {
				row = append(row, fmt.Sprintf("%.2f", r.FH[i]))
			}
			emit(row...)
		}
	})

	f3, err := s.Figure3()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Figure 3 — number of rules\n\n")
	mdTable(w, []string{"Dataset", "CDT", "PART", "JRip"}, func(emit func(...string)) {
		for _, r := range f3 {
			emit(r.Dataset, fmt.Sprint(r.NumRules[0]), fmt.Sprint(r.NumRules[1]), fmt.Sprint(r.NumRules[2]))
		}
	})
	fmt.Fprintf(w, "Paper ranges: CDT %d–%d, PART %d–%d, JRip %d–%d.\n\n",
		PaperFigure3["CDT"][0], PaperFigure3["CDT"][1],
		PaperFigure3["PART"][0], PaperFigure3["PART"][1],
		PaperFigure3["JRip"][0], PaperFigure3["JRip"][1])

	t5, err := s.Table5()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Table 5 — example rules (SGE_Calorie)\n\n```\n")
	for i, r := range t5 {
		fmt.Fprintf(w, "R%d: %s\n", i+1, r.Text)
		if r.Description != "" {
			fmt.Fprintf(w, "    reading: %s\n", r.Description)
		}
	}
	fmt.Fprintf(w, "```\n\n")

	fig2, err := s.Figure2()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Figure 2 — tree structure\n\n```\n%s```\n", fig2)
	return nil
}

func scaleName(full bool) string {
	if full {
		return "paper"
	}
	return "laptop"
}

// mdTable writes one GitHub-flavored Markdown table.
func mdTable(w io.Writer, header []string, body func(emit func(...string))) {
	fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | "))
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	body(func(cells ...string) {
		fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	})
	fmt.Fprintln(w)
}
