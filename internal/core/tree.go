package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"cdt/internal/pattern"
)

// Options configures CDT induction. The zero value is usable and matches
// the paper's setup (contiguous matching, Gini, no depth or length caps).
type Options struct {
	// Criterion is the impurity used to score splits (default Gini).
	Criterion SplitCriterion
	// Match selects the ⊆o semantics (default contiguous).
	Match MatchMode
	// MaxCompositionLen caps candidate composition length; 0 means
	// unlimited (up to ω). Short caps trade accuracy for speed and rule
	// brevity (ablated in the benchmarks).
	MaxCompositionLen int
	// MaxDepth caps tree depth; 0 means unlimited. Algorithm 1 has no
	// cap: it stops only on purity or zero gain.
	MaxDepth int
	// MinGain is the minimum information gain required to split; the
	// paper requires strictly positive gain (maxGain ≠ 0), which the
	// zero value reproduces.
	MinGain float64
	// Parallelism bounds the goroutines scoring candidate compositions;
	// 0 means GOMAXPROCS.
	Parallelism int
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Node is one CDT node: the quadruplet of Algorithm 1 (observations are
// summarized by their class counts rather than retained) plus bookkeeping
// for rule extraction and rendering.
type Node struct {
	// Composition splits this node; nil for leaves.
	Composition *Composition
	// ChildTrue holds observations matched by Composition (c ∈o d),
	// ChildFalse the rest. Both nil for leaves.
	ChildTrue, ChildFalse *Node
	// Counts is the class distribution of the node's observations.
	Counts ClassCounts
	// Depth is the node's distance from the root.
	Depth int
}

// Leaf reports whether the node has no split.
func (n *Node) Leaf() bool { return n.Composition == nil }

// Class returns the node's majority class (ties break to Anomaly).
func (n *Node) Class() Class { return n.Counts.Majority() }

// Pure reports whether all of the node's observations share one class.
func (n *Node) Pure() bool { return n.Counts.Pure() }

// Tree is a trained Composition-based Decision Tree.
type Tree struct {
	// Root is the tree root; never nil after Build succeeds.
	Root *Node
	// Omega is the window size the tree was trained with.
	Omega int
	// Opts are the induction options used.
	Opts Options
}

// Build induces a CDT from training observations (Algorithm 1). All
// observations must share the same window length, which becomes the
// tree's ω.
func Build(obs []Observation, opts Options) (*Tree, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("core: no observations")
	}
	omega := len(obs[0].Labels)
	for i := range obs {
		if len(obs[i].Labels) != omega {
			return nil, fmt.Errorf("core: observation %d has %d labels, want %d", i, len(obs[i].Labels), omega)
		}
	}
	t := &Tree{Omega: omega, Opts: opts}
	t.Root = &Node{Counts: Count(obs)}
	// Algorithm 1 processes a FIFO queue of (node, observations) pairs.
	type item struct {
		node *Node
		obs  []Observation
	}
	queue := []item{{t.Root, obs}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		node, data := it.node, it.obs
		if node.Pure() {
			continue
		}
		if opts.MaxDepth > 0 && node.Depth >= opts.MaxDepth {
			continue
		}
		best, gain := bestComposition(data, opts)
		if best == nil || gain <= opts.MinGain {
			continue
		}
		var in, out []Observation
		for i := range data {
			if best.MatchedBy(data[i].Labels, opts.Match) {
				in = append(in, data[i])
			} else {
				out = append(out, data[i])
			}
		}
		node.Composition = best
		node.ChildTrue = &Node{Counts: Count(in), Depth: node.Depth + 1}
		node.ChildFalse = &Node{Counts: Count(out), Depth: node.Depth + 1}
		queue = append(queue, item{node.ChildTrue, in}, item{node.ChildFalse, out})
	}
	return t, nil
}

// bestComposition scores every candidate composition (all distinct
// contiguous subsequences of the anomalous observations, Algorithm 1
// lines 6-15) and returns the one with the highest information gain.
// Ties resolve to the earliest candidate in the deterministic enumeration
// order (shortest first), mirroring the strict ">" of line 11.
//
// For the default contiguous ⊆o, candidate supports are counted in one
// pass that enumerates each observation's distinct substrings and looks
// them up in the candidate index — O(Σ windows · ω · maxLen) instead of
// O(candidates · windows · ω · maxLen). Subsequence matching falls back
// to direct per-candidate scoring.
func bestComposition(obs []Observation, opts Options) (*Composition, float64) {
	candidates := enumerateCompositions(obs, opts.MaxCompositionLen)
	if len(candidates) == 0 {
		return nil, 0
	}
	parent := Count(obs)
	var counts []ClassCounts
	if opts.Match == MatchContiguous {
		counts = countContiguousSupports(obs, candidates, opts)
	} else {
		counts = countSupportsNaive(obs, candidates, opts)
	}
	bestIdx, bestGain := -1, 0.0
	for i, in := range counts {
		out := ClassCounts{Normal: parent.Normal - in.Normal, Anomaly: parent.Anomaly - in.Anomaly}
		if g := opts.Criterion.InformationGain(parent, in, out); g > bestGain {
			bestGain = g
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return nil, 0
	}
	c := candidates[bestIdx]
	return &c, bestGain
}

// countContiguousSupports returns, per candidate, the class counts of the
// observations containing it as a substring. Each observation enumerates
// its substrings once; a per-candidate last-seen marker deduplicates
// repeated occurrences inside one observation. Map lookups use the
// zero-allocation string(buf) form.
func countContiguousSupports(obs []Observation, candidates []Composition, opts Options) []ClassCounts {
	index := make(map[string]int, len(candidates))
	maxCandLen := 0
	for i, c := range candidates {
		index[c.Key()] = i
		if c.Len() > maxCandLen {
			maxCandLen = c.Len()
		}
	}
	counts := make([]ClassCounts, len(candidates))
	lastSeen := make([]int, len(candidates))
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	var buf []byte
	for wi := range obs {
		labels := obs[wi].Labels
		anom := obs[wi].Class == Anomaly
		for start := 0; start < len(labels); start++ {
			limit := len(labels) - start
			if maxCandLen < limit {
				limit = maxCandLen
			}
			buf = buf[:0]
			for n := 1; n <= limit; n++ {
				l := labels[start+n-1]
				buf = append(buf, byte(l.Var), byte(l.Alpha), byte(l.Beta))
				idx, ok := index[string(buf)]
				if !ok || lastSeen[idx] == wi {
					continue
				}
				lastSeen[idx] = wi
				if anom {
					counts[idx].Anomaly++
				} else {
					counts[idx].Normal++
				}
			}
		}
	}
	return counts
}

// countSupportsNaive scores candidates by direct matching, parallelized
// across candidates (used for the gapped-subsequence ablation mode).
func countSupportsNaive(obs []Observation, candidates []Composition, opts Options) []ClassCounts {
	counts := make([]ClassCounts, len(candidates))
	workers := opts.parallelism()
	if workers > len(candidates) {
		workers = len(candidates)
	}
	var wg sync.WaitGroup
	chunk := (len(candidates) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(candidates) {
			hi = len(candidates)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for ci := lo; ci < hi; ci++ {
				for i := range obs {
					if candidates[ci].MatchedBy(obs[i].Labels, opts.Match) {
						if obs[i].Class == Anomaly {
							counts[ci].Anomaly++
						} else {
							counts[ci].Normal++
						}
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return counts
}

// Predict classifies one window of labels by routing it through the tree.
func (t *Tree) Predict(labels []pattern.Label) Class {
	n := t.Root
	for !n.Leaf() {
		if n.Composition.MatchedBy(labels, t.Opts.Match) {
			n = n.ChildTrue
		} else {
			n = n.ChildFalse
		}
	}
	return n.Class()
}

// PredictAll classifies a batch of observations, returning one class per
// observation.
func (t *Tree) PredictAll(obs []Observation) []Class {
	out := make([]Class, len(obs))
	for i := range obs {
		out[i] = t.Predict(obs[i].Labels)
	}
	return out
}

// Stats summarizes tree shape for reporting (Figure 2 discusses splits
// and leaves).
type Stats struct {
	Nodes, Leaves, Splits, MaxDepth int
	AnomalyLeaves                   int
	PureAnomalyLeaves               int
}

// Stats walks the tree and tallies its shape.
func (t *Tree) Stats() Stats {
	var st Stats
	var walk func(n *Node)
	walk = func(n *Node) {
		st.Nodes++
		if n.Depth > st.MaxDepth {
			st.MaxDepth = n.Depth
		}
		if n.Leaf() {
			st.Leaves++
			if n.Class() == Anomaly {
				st.AnomalyLeaves++
				if n.Pure() {
					st.PureAnomalyLeaves++
				}
			}
			return
		}
		st.Splits++
		walk(n.ChildTrue)
		walk(n.ChildFalse)
	}
	walk(t.Root)
	return st
}

// Render draws the tree as indented text (used for the Figure 2
// illustration), naming compositions with the configuration's interval
// names.
func (t *Tree) Render(cfg pattern.Config) string {
	var b strings.Builder
	var walk func(n *Node, prefix string, branch string)
	walk = func(n *Node, prefix, branch string) {
		b.WriteString(prefix)
		b.WriteString(branch)
		if n.Leaf() {
			fmt.Fprintf(&b, "leaf %s (normal=%d anomaly=%d)\n", n.Class(), n.Counts.Normal, n.Counts.Anomaly)
			return
		}
		fmt.Fprintf(&b, "split on %s (normal=%d anomaly=%d)\n", n.Composition.Format(cfg), n.Counts.Normal, n.Counts.Anomaly)
		walk(n.ChildTrue, prefix+"  ", "∈o → ")
		walk(n.ChildFalse, prefix+"  ", "∉o → ")
	}
	walk(t.Root, "", "")
	return b.String()
}

// DOT renders the tree as Graphviz source (an alternative to Render for
// publication-quality Figure 2 diagrams). Split nodes show their
// composition, leaves their class and counts; true branches are labeled
// "∈o", false branches "∉o".
func (t *Tree) DOT(cfg pattern.Config) string {
	var b strings.Builder
	b.WriteString("digraph cdt {\n  node [fontname=\"Helvetica\"];\n")
	id := 0
	var walk func(n *Node) int
	walk = func(n *Node) int {
		me := id
		id++
		if n.Leaf() {
			shape := "ellipse"
			fill := "white"
			if n.Class() == Anomaly {
				fill = "lightcoral"
			} else {
				fill = "lightgreen"
			}
			fmt.Fprintf(&b, "  n%d [shape=%s, style=filled, fillcolor=%s, label=\"%s\\nnormal=%d anomaly=%d\"];\n",
				me, shape, fill, n.Class(), n.Counts.Normal, n.Counts.Anomaly)
			return me
		}
		fmt.Fprintf(&b, "  n%d [shape=box, label=%q];\n", me, n.Composition.Format(cfg))
		tc := walk(n.ChildTrue)
		fc := walk(n.ChildFalse)
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"∈o\"];\n", me, tc)
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"∉o\"];\n", me, fc)
		return me
	}
	walk(t.Root)
	b.WriteString("}\n")
	return b.String()
}
