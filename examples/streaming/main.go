// Streaming detection: train once, persist the model, then monitor a
// live feed point-by-point — the deployment mode the paper's campus
// sensors imply. Demonstrates Model.Save/cdt.Load and Model.NewStream.
//
//	go run ./examples/streaming
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"math/rand"

	cdt "cdt"
)

func main() {
	// --- offline: train on historical labeled data ---------------------
	rng := rand.New(rand.NewSource(7))
	n := 500
	values := make([]float64, n)
	anoms := make([]bool, n)
	for i := range values {
		values[i] = 100 + 20*math.Sin(float64(i)/8) + 2*rng.Float64()
	}
	for _, at := range []int{90, 200, 330, 430} {
		values[at] = 400 // historical incidents
		anoms[at] = true
	}
	model, err := cdt.Fit(
		[]*cdt.Series{cdt.NewLabeledSeries("history", values, anoms)},
		cdt.Options{Omega: 5, Delta: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Rules deployed to the monitor:")
	fmt.Print(model.RuleText())

	// --- persist and reload, as a deployment would ---------------------
	var artifact bytes.Buffer
	if err := model.Save(&artifact); err != nil {
		log.Fatal(err)
	}
	size := artifact.Len()
	deployed, err := cdt.Load(&artifact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel artifact: %d bytes of JSON\n\n", size)

	// --- online: feed live readings one at a time ----------------------
	stream, err := deployed.NewStream(cdt.Scale{Min: 60, Max: 420})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Live feed:")
	alerts := 0
	for i := 0; i < 300; i++ {
		reading := 100 + 20*math.Sin(float64(i)/8) + 2*rng.Float64()
		if i == 120 || i == 240 {
			reading = 400 // live incidents
		}
		for _, d := range stream.Push(reading) {
			alerts++
			if alerts <= 3 {
				fmt.Printf("  ALERT after point %d: anomalous window covering points %d..%d\n",
					i, d.WindowStart, d.WindowEnd)
			}
		}
	}
	fmt.Printf("%d window alerts raised over 300 readings (incidents at points 120 and 240)\n", alerts)
}
