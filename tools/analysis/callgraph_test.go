package analysis

import "testing"

func TestCallGraph(t *testing.T) {
	src := `package p

type T struct{ n int }

func (t *T) Leaf() { t.n++ }

func helper(t *T) { t.Leaf() }

func Root(t *T, xs []int) {
	setup(t)
	for range xs {
		helper(t)
	}
	for i := 0; i < 3; i++ {
		func() { t.Leaf() }()
	}
}

func setup(t *T) {}
`
	fset, u := parseUnit(t, src)
	g := NewProgram(fset, []*Unit{u}).CallGraph()

	root, ok := g.Nodes["p.Root"]
	if !ok {
		t.Fatalf("no node for p.Root; have %v", keys(g.Nodes))
	}
	byCallee := make(map[string]CallSite)
	for _, c := range root.Calls {
		byCallee[c.Callee] = c
	}
	if c, ok := byCallee["p.setup"]; !ok || c.InLoop {
		t.Errorf("setup call = %+v, want resolved outside any loop", c)
	}
	if c, ok := byCallee["p.helper"]; !ok || !c.InLoop {
		t.Errorf("helper call = %+v, want resolved inside the range loop", c)
	}
	if c, ok := byCallee["(*p.T).Leaf"]; !ok || !c.InLoop {
		t.Errorf("Leaf call via func literal = %+v, want attributed to Root inside the for loop", c)
	}
	if h, ok := g.Nodes["p.helper"]; !ok {
		t.Error("no node for p.helper")
	} else if len(h.Calls) != 1 || h.Calls[0].Callee != "(*p.T).Leaf" || h.Calls[0].InLoop {
		t.Errorf("helper calls = %+v, want one non-loop call to (*p.T).Leaf", h.Calls)
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
