package c45

import "sort"

// BuildPartial grows a *partial* C4.5 tree (Frank & Witten 1998): at each
// split, child subsets are expanded in order of increasing entropy, and
// expansion stops as soon as one child develops into a subtree that
// survives pruning — the remaining children stay unexpanded leaves. PART
// uses the partial tree purely as an efficiency device: only the branch
// that will yield the extracted rule is developed.
func BuildPartial(ds *Dataset, indices []int, opts Options) (*Tree, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if len(ds.Instances) == 0 {
		return nil, errNoInstances
	}
	opts = opts.withDefaults()
	if indices == nil {
		indices = make([]int, len(ds.Instances))
		for i := range indices {
			indices[i] = i
		}
	}
	if len(indices) == 0 {
		return nil, errEmptyIndexSet
	}
	t := &Tree{ds: ds, opts: opts}
	avail := make([]bool, len(ds.AttrNames))
	for i := range avail {
		avail[i] = true
	}
	t.Root = t.expandPartial(indices, avail)
	return t.Root.intoTree(t), nil
}

// intoTree is a small helper so BuildPartial returns the same Tree shape
// as Build.
func (n *Node) intoTree(t *Tree) *Tree {
	t.Root = n
	return t
}

// expandPartial develops one node of the partial tree and returns it,
// possibly pruned back to a leaf.
func (t *Tree) expandPartial(indices []int, avail []bool) *Node {
	counts := t.classCounts(indices)
	node := &Node{Attr: -1, ClassCounts: counts, MajorityClass: majority(counts)}
	if node.Errors() == 0 {
		return node
	}
	attr, children := t.bestSplit(indices, avail)
	if attr < 0 {
		return node
	}
	node.Attr = attr
	node.Children = make([]*Node, t.ds.AttrCard[attr])
	childAvail := append([]bool(nil), avail...)
	childAvail[attr] = false

	// Every child starts as an unexpanded leaf predicting its local (or
	// inherited) majority.
	type childRef struct {
		value   int
		entropy float64
	}
	var order []childRef
	for v, sub := range children {
		if len(sub) == 0 {
			node.Children[v] = &Node{Attr: -1, ClassCounts: make([]int, t.ds.NumClasses), MajorityClass: node.MajorityClass, Unexpanded: true}
			continue
		}
		cc := t.classCounts(sub)
		node.Children[v] = &Node{Attr: -1, ClassCounts: cc, MajorityClass: majority(cc), Unexpanded: true}
		order = append(order, childRef{value: v, entropy: entropy(cc)})
	}
	// Expand children lowest-entropy first; stop at the first expansion
	// that survives as a subtree (is not pruned back to a leaf).
	sort.SliceStable(order, func(i, j int) bool { return order[i].entropy < order[j].entropy })
	for _, ref := range order {
		expanded := t.expandPartial(children[ref.value], childAvail)
		node.Children[ref.value] = expanded
		if !expanded.Leaf() {
			break
		}
	}
	// Pessimistic subtree replacement, as in the full builder.
	if t.opts.Confidence < 1 {
		subtreeErr := 0.0
		for _, c := range node.Children {
			subtreeErr += t.estimatedErrors(c)
		}
		if pessimisticErrors(node.Total(), node.Errors(), t.opts.Confidence) <= subtreeErr+1e-9 {
			node.Attr = -1
			node.Children = nil
		}
	}
	return node
}
