package evalmetrics

import (
	"fmt"
	"math/rand"
)

// KFoldIndices partitions {0..n-1} into k shuffled folds of near-equal
// size — the 10-fold cross-validation protocol the paper uses to
// evaluate the WEKA rule learners (§4.3). Every index appears in exactly
// one fold; fold sizes differ by at most one.
func KFoldIndices(n, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("metrics: k = %d, want >= 2", k)
	}
	if n < k {
		return nil, fmt.Errorf("metrics: %d samples cannot fill %d folds", n, k)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		f := i % k
		folds[f] = append(folds[f], idx)
	}
	return folds, nil
}

// StratifiedKFoldIndices partitions indices into k folds preserving the
// class ratio given by positive flags — important for the heavily
// imbalanced anomaly windows, where plain folds can end up with no
// positive at all.
func StratifiedKFoldIndices(positive []bool, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("metrics: k = %d, want >= 2", k)
	}
	if len(positive) < k {
		return nil, fmt.Errorf("metrics: %d samples cannot fill %d folds", len(positive), k)
	}
	rng := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i, p := range positive {
		if p {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	folds := make([][]int, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds, nil
}

// TrainTestFromFolds returns the train indices (every fold except
// holdout) and the test indices (the holdout fold).
func TrainTestFromFolds(folds [][]int, holdout int) (train, test []int) {
	for f, fold := range folds {
		if f == holdout {
			test = append(test, fold...)
		} else {
			train = append(train, fold...)
		}
	}
	return train, test
}
