package main

import (
	"os"
	"path/filepath"
	"testing"

	"cdt/internal/datasets"
	"cdt/internal/datasets/sge"
)

// writeFixture materializes one synthetic calorie series as a CSV file.
func writeFixture(t *testing.T, dir, name string, seed int64) string {
	t.Helper()
	d := sge.Calorie(sge.CalorieOptions{Sensors: 1, Days: 300, Seed: seed})
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := datasets.WriteCSV(f, d.Series[0]); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestLabelCommand(t *testing.T) {
	dir := t.TempDir()
	in := writeFixture(t, dir, "a.csv", 1)
	if err := run([]string{"label", "-in", in, "-delta", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"label"}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"label", "-in", filepath.Join(dir, "absent.csv")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTrainDetectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trainCSV := writeFixture(t, dir, "train.csv", 2)
	freshCSV := writeFixture(t, dir, "fresh.csv", 3)
	modelPath := filepath.Join(dir, "model.json")

	if err := run([]string{"train", "-in", trainCSV, "-omega", "5", "-delta", "2", "-save", modelPath}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatalf("model not written: %v", err)
	}
	if err := run([]string{"detect", "-model", modelPath, "-in", freshCSV}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"detect", "-train", trainCSV, "-in", freshCSV, "-omega", "5", "-delta", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectFlagValidation(t *testing.T) {
	dir := t.TempDir()
	in := writeFixture(t, dir, "a.csv", 4)
	if err := run([]string{"detect", "-in", in}); err == nil {
		t.Error("neither -train nor -model rejected... accepted")
	}
	if err := run([]string{"detect", "-train", in, "-model", in, "-in", in}); err == nil {
		t.Error("both -train and -model accepted")
	}
	if err := run([]string{"detect", "-train", in}); err == nil {
		t.Error("missing -in accepted")
	}
}

func TestTrainRejectsUnlabeled(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plain.csv")
	if err := os.WriteFile(path, []byte("value\n1\n2\n3\n4\n5\n6\n7\n8\n9\n10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"train", "-in", path}); err == nil {
		t.Error("unlabeled training file accepted")
	}
}

func TestAuditCommand(t *testing.T) {
	dir := t.TempDir()
	trainCSV := writeFixture(t, dir, "train.csv", 5)
	evalCSV := writeFixture(t, dir, "eval.csv", 6)
	if err := run([]string{"audit", "-train", trainCSV, "-eval", evalCSV, "-omega", "5", "-delta", "2"}); err != nil {
		t.Fatal(err)
	}
	// Defaults -eval to -train.
	if err := run([]string{"audit", "-train", trainCSV}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"audit"}); err == nil {
		t.Error("missing -train accepted")
	}
}

func TestStreamCommand(t *testing.T) {
	dir := t.TempDir()
	trainCSV := writeFixture(t, dir, "train.csv", 7)
	feedCSV := writeFixture(t, dir, "feed.csv", 8)
	modelPath := filepath.Join(dir, "model.json")
	if err := run([]string{"train", "-in", trainCSV, "-omega", "5", "-delta", "2", "-save", modelPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"stream", "-model", modelPath, "-in", feedCSV}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"stream", "-model", modelPath, "-in", feedCSV, "-min", "0", "-max", "500"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"stream", "-in", feedCSV}); err == nil {
		t.Error("missing -model accepted")
	}
}

func TestOptimizeCommand(t *testing.T) {
	dir := t.TempDir()
	trainCSV := writeFixture(t, dir, "train.csv", 9)
	if err := run([]string{"optimize", "-in", trainCSV, "-objective", "f1", "-iters", "2", "-init", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"optimize", "-in", trainCSV, "-objective", "nope"}); err == nil {
		t.Error("bad objective accepted")
	}
	if err := run([]string{"optimize"}); err == nil {
		t.Error("missing -in accepted")
	}
}

func TestStoreCommand(t *testing.T) {
	dir := t.TempDir()
	trainCSV := writeFixture(t, dir, "train.csv", 12)
	modelPath := filepath.Join(dir, "model.json")
	storeDir := filepath.Join(dir, "store")
	if err := run([]string{"train", "-in", trainCSV, "-omega", "5", "-delta", "2", "-save", modelPath}); err != nil {
		t.Fatal(err)
	}
	// publish → promote → publish → rollback → versions → audit.
	if err := run([]string{"store", "publish", "-dir", storeDir, "-model", "cal", "-in", modelPath, "-note", "first"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"store", "promote", "-dir", storeDir, "-model", "cal", "-version", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"store", "publish", "-dir", storeDir, "-model", "cal", "-in", modelPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"store", "promote", "-dir", storeDir, "-model", "cal", "-version", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"store", "rollback", "-dir", storeDir, "-model", "cal"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"store", "versions", "-dir", storeDir}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"store", "audit", "-dir", storeDir, "-n", "3"}); err != nil {
		t.Fatal(err)
	}
	// Validation failures.
	if err := run([]string{"store"}); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"store", "bogus", "-dir", storeDir}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"store", "versions"}); err == nil {
		t.Error("missing -dir accepted")
	}
	if err := run([]string{"store", "publish", "-dir", storeDir, "-model", "cal"}); err == nil {
		t.Error("publish without -in accepted")
	}
	if err := run([]string{"store", "promote", "-dir", storeDir, "-model", "cal", "-version", "99"}); err == nil {
		t.Error("promote of unknown version accepted")
	}
	if err := run([]string{"store", "publish", "-dir", storeDir, "-model", "cal", "-in", trainCSV}); err == nil {
		t.Error("publish of a non-model file accepted")
	}
}

func TestPyramidTrainDetectStream(t *testing.T) {
	dir := t.TempDir()
	trainCSV := writeFixture(t, dir, "train.csv", 13)
	freshCSV := writeFixture(t, dir, "fresh.csv", 14)
	modelPath := filepath.Join(dir, "pyramid.json")

	if err := run([]string{"train", "-in", trainCSV, "-omega", "5", "-delta", "2",
		"-scales", "1,4", "-agg", "max", "-fusion", "any", "-save", modelPath}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatalf("pyramid not written: %v", err)
	}
	// detect and stream load pyramid artifacts through the same flags as
	// plain models.
	if err := run([]string{"detect", "-model", modelPath, "-in", freshCSV}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"stream", "-model", modelPath, "-in", freshCSV}); err != nil {
		t.Fatal(err)
	}
	// Flag validation.
	if err := run([]string{"train", "-in", trainCSV, "-scales", "4,16"}); err == nil {
		t.Error("-scales without factor 1 accepted")
	}
	if err := run([]string{"train", "-in", trainCSV, "-scales", "1,x"}); err == nil {
		t.Error("non-integer -scales accepted")
	}
	if err := run([]string{"train", "-in", trainCSV, "-scales", "1,4", "-agg", "median"}); err == nil {
		t.Error("unknown -agg accepted")
	}
	if err := run([]string{"train", "-in", trainCSV, "-scales", "1,4", "-fusion", "sometimes"}); err == nil {
		t.Error("unknown -fusion accepted")
	}
}

func TestStoreGCAndDiff(t *testing.T) {
	dir := t.TempDir()
	trainCSV := writeFixture(t, dir, "train.csv", 15)
	otherCSV := writeFixture(t, dir, "other.csv", 16)
	m1 := filepath.Join(dir, "m1.json")
	m2 := filepath.Join(dir, "m2.json")
	storeDir := filepath.Join(dir, "store")
	if err := run([]string{"train", "-in", trainCSV, "-omega", "5", "-delta", "2", "-save", m1}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"train", "-in", otherCSV, "-omega", "5", "-delta", "3", "-save", m2}); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{m1, m2} {
		if err := run([]string{"store", "publish", "-dir", storeDir, "-model", "cal", "-in", m}); err != nil {
			t.Fatal(err)
		}
	}
	if err := run([]string{"store", "diff", "-dir", storeDir, "cal", "1", "2"}); err != nil {
		t.Fatal(err)
	}
	// Same version on both sides: no rule changes.
	if err := run([]string{"store", "diff", "-dir", storeDir, "cal", "1", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"store", "gc", "-dir", storeDir}); err != nil {
		t.Fatal(err)
	}
	// Validation failures.
	if err := run([]string{"store", "diff", "-dir", storeDir, "cal", "1"}); err == nil {
		t.Error("diff with one version accepted")
	}
	if err := run([]string{"store", "diff", "-dir", storeDir, "cal", "one", "2"}); err == nil {
		t.Error("non-integer version accepted")
	}
	if err := run([]string{"store", "diff", "-dir", storeDir, "cal", "1", "99"}); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestPlotCommand(t *testing.T) {
	dir := t.TempDir()
	in := writeFixture(t, dir, "a.csv", 10)
	trainCSV := writeFixture(t, dir, "b.csv", 11)
	if err := run([]string{"plot", "-in", in}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"plot", "-in", in, "-train", trainCSV, "-omega", "5", "-delta", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"plot"}); err == nil {
		t.Error("missing -in accepted")
	}
}
