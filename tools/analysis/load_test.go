package analysis_test

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"cdt/tools/analysis"
)

// TestLoadUnits loads one real package of the parent module and checks
// the unit split: a Lib unit for the library files and a Test unit that
// merges the in-package test files but only reports into them.
func TestLoadUnits(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fset, units, err := analysis.Load(root, []string{"./internal/pattern"})
	if err != nil {
		t.Fatal(err)
	}
	byKind := make(map[analysis.UnitKind]*analysis.Unit)
	for _, u := range units {
		byKind[u.Kind] = u
	}
	lib, ok := byKind[analysis.Lib]
	if !ok {
		t.Fatal("no Lib unit for internal/pattern")
	}
	if lib.Pkg.Name() != "pattern" {
		t.Fatalf("Lib unit package = %q, want pattern", lib.Pkg.Name())
	}
	test, ok := byKind[analysis.Test]
	if !ok {
		t.Fatal("no Test unit for internal/pattern (it has _test.go files)")
	}
	if len(test.Files) <= len(lib.Files) {
		t.Fatalf("Test unit has %d files, want more than Lib's %d", len(test.Files), len(lib.Files))
	}
	// The Test unit must refuse to report into library files.
	var libPos, testPos token.Pos
	for _, f := range test.Files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			testPos = f.Pos()
		} else {
			libPos = f.Pos()
		}
	}
	if test.Reportable(fset, libPos) {
		t.Error("Test unit reports into a library file")
	}
	if !test.Reportable(fset, testPos) {
		t.Error("Test unit does not report into its own test file")
	}
	if !lib.Reportable(fset, libPos) {
		t.Error("Lib unit does not report into its own file")
	}
}

// TestRunFilter checks that the driver honors the analyzer/unit filter
// and sorts findings by position.
func TestRunFilter(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fset, units, err := analysis.Load(root, []string{"./internal/pattern"})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	a := &analysis.Analyzer{
		Name: "probe",
		Doc:  "reports once per file",
		Run: func(p *analysis.Pass) error {
			hits++
			for _, f := range p.Files {
				p.Reportf(f.Pos(), "saw file")
			}
			return nil
		},
	}
	findings, _, err := analysis.Run(fset, units, []*analysis.Analyzer{a}, func(_ *analysis.Analyzer, u *analysis.Unit) bool {
		return u.Kind == analysis.Lib
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("analyzer ran on %d units, want 1 (Lib only)", hits)
	}
	if len(findings) == 0 {
		t.Fatal("no findings from probe analyzer")
	}
	for i := 1; i < len(findings); i++ {
		if findings[i].Position.Filename < findings[i-1].Position.Filename {
			t.Fatal("findings not sorted by filename")
		}
	}
}
