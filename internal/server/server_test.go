package server

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	cdt "cdt"
)

// spiky generates a smooth seasonal series with labeled spike anomalies,
// the shape of the paper's SGE sensor feeds.
func spiky(name string, n int, spikes []int, seed int64) *cdt.Series {
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, n)
	anoms := make([]bool, n)
	for i := range values {
		values[i] = 100 + 20*math.Sin(float64(i)/8) + 2*rng.Float64()
	}
	for _, at := range spikes {
		values[at] = 400
		anoms[at] = true
	}
	return cdt.NewLabeledSeries(name, values, anoms)
}

func trainModel(tb testing.TB) *cdt.Model {
	tb.Helper()
	model, err := cdt.Fit(
		[]*cdt.Series{spiky("train", 500, []int{90, 200, 330, 430}, 7)},
		cdt.Options{Omega: 5, Delta: 2},
	)
	if err != nil {
		tb.Fatal(err)
	}
	if model.NumRules() == 0 {
		tb.Fatal("trained model has no rules")
	}
	return model
}

func writeModel(tb testing.TB, dir, name string, m *cdt.Model) {
	tb.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), buf.Bytes(), 0o644); err != nil {
		tb.Fatal(err)
	}
}

// newTestServer builds a server over a temp model dir holding one model
// named "spikes", plus an httptest frontend.
func newTestServer(tb testing.TB, cfg Config) (*Server, *httptest.Server, string) {
	tb.Helper()
	dir := tb.TempDir()
	writeModel(tb, dir, "spikes", trainModel(tb))
	cfg.ModelDir = dir
	s, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, dir
}

// doJSON issues a request with a JSON body and decodes a JSON response.
func doJSON(tb testing.TB, method, url string, body, out any) int {
	tb.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			tb.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			tb.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthzAndModelList(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if health.Status != "ok" || health.Models != 1 {
		t.Fatalf("healthz = %+v", health)
	}
	var list struct {
		Models []ModelInfo `json:"models"`
	}
	if code := doJSON(t, "GET", ts.URL+"/models", nil, &list); code != 200 {
		t.Fatalf("models = %d", code)
	}
	if len(list.Models) != 1 || list.Models[0].Name != "spikes" {
		t.Fatalf("models = %+v", list.Models)
	}
	if list.Models[0].Omega != 5 || list.Models[0].Delta != 2 || list.Models[0].NumRules == 0 {
		t.Fatalf("model info = %+v", list.Models[0])
	}
}

func TestBatchDetectReturnsRuleText(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	feed := spiky("feed", 300, []int{120, 240}, 99)
	req := batchRequest{Series: []seriesPayload{
		{Name: "feed", Values: feed.Values},
		{Name: "quiet", Values: spiky("quiet", 200, nil, 5).Values},
	}}
	var resp batchResponse
	if code := doJSON(t, "POST", ts.URL+"/models/spikes/detect", req, &resp); code != 200 {
		t.Fatalf("detect = %d", code)
	}
	if resp.Model != "spikes" || len(resp.Results) != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Results[0].Name != "feed" || resp.Results[1].Name != "quiet" {
		t.Fatalf("result order not preserved: %+v", resp.Results)
	}
	spiked := resp.Results[0]
	if spiked.Error != "" || len(spiked.Detections) == 0 {
		t.Fatalf("expected detections on the spiked feed, got %+v", spiked)
	}
	for _, d := range spiked.Detections {
		if len(d.Rules) == 0 {
			t.Fatalf("detection %+v carries no fired rules", d)
		}
		for _, r := range d.Rules {
			if r.Index < 1 || r.Text == "" {
				t.Fatalf("fired rule %+v lacks index/text", r)
			}
			if !strings.Contains(r.Text, "[") {
				t.Fatalf("rule text %q does not look like a composition predicate", r.Text)
			}
		}
		if d.End != d.Start+4 { // omega = 5
			t.Fatalf("window bounds %+v inconsistent with omega", d)
		}
	}
	if len(resp.Results[1].Detections) != 0 {
		t.Errorf("quiet series produced detections: %+v", resp.Results[1].Detections)
	}
}

func TestStreamSessionRoundTrip(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	var created createStreamResponse
	code := doJSON(t, "POST", ts.URL+"/streams",
		createStreamRequest{Model: "spikes", Min: 60, Max: 420}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create stream = %d", code)
	}
	if created.ID == "" || created.Omega != 5 || created.Model != "spikes" {
		t.Fatalf("created = %+v", created)
	}

	// Replay a synthetic SGE feed with live incidents in two chunks.
	feed := spiky("live", 300, []int{120, 240}, 3)
	streamURL := ts.URL + "/streams/" + created.ID
	var total []streamDetection
	for _, chunk := range [][]float64{feed.Values[:150], feed.Values[150:]} {
		var resp pushPointsResponse
		if code := doJSON(t, "POST", streamURL+"/points", pushPointsRequest{Points: chunk}, &resp); code != 200 {
			t.Fatalf("push = %d", code)
		}
		total = append(total, resp.Detections...)
		if !resp.Ready {
			t.Fatal("stream not ready after 150+ points")
		}
	}
	if len(total) == 0 {
		t.Fatal("no detections over a feed with two incidents")
	}
	for _, d := range total {
		if len(d.Rules) == 0 || d.Rules[0].Text == "" {
			t.Fatalf("stream detection %+v carries no human-readable rule", d)
		}
	}

	// Reset clears the window state.
	if code := doJSON(t, "POST", streamURL+"/reset", nil, nil); code != http.StatusNoContent {
		t.Fatalf("reset = %d", code)
	}
	var after pushPointsResponse
	if code := doJSON(t, "POST", streamURL+"/points", pushPointsRequest{Points: feed.Values[:3]}, &after); code != 200 {
		t.Fatalf("push after reset = %d", code)
	}
	if after.PointsConsumed != 3 {
		t.Fatalf("points consumed after reset = %d, want 3", after.PointsConsumed)
	}

	// Delete closes the session; further pushes 404.
	if code := doJSON(t, "DELETE", streamURL, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete = %d", code)
	}
	if code := doJSON(t, "POST", streamURL+"/points", pushPointsRequest{Points: []float64{1}}, nil); code != http.StatusNotFound {
		t.Fatalf("push after delete = %d, want 404", code)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown model batch", "POST", "/models/nope/detect", batchRequest{Series: []seriesPayload{{Name: "x", Values: []float64{1}}}}, 404},
		{"empty series", "POST", "/models/spikes/detect", batchRequest{}, 400},
		{"unknown stream model", "POST", "/streams", createStreamRequest{Model: "nope", Min: 0, Max: 1}, 404},
		{"degenerate scale", "POST", "/streams", createStreamRequest{Model: "spikes", Min: 5, Max: 5}, 400},
		{"unknown stream push", "POST", "/streams/deadbeef/points", pushPointsRequest{Points: []float64{1}}, 404},
		{"unknown stream delete", "DELETE", "/streams/deadbeef", nil, 404},
		{"unknown field", "POST", "/streams", map[string]any{"model": "spikes", "mim": 0, "max": 1}, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errResp errorResponse
			if code := doJSON(t, tc.method, ts.URL+tc.path, tc.body, &errResp); code != tc.want {
				t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, code, tc.want)
			}
			if errResp.Error == "" {
				t.Fatal("error response has no message")
			}
		})
	}

	// Degenerate-scale rejections must explain both failure modes of
	// Scale (zero-collapse and clamping).
	var errResp errorResponse
	doJSON(t, "POST", ts.URL+"/streams", createStreamRequest{Model: "spikes", Min: 5, Max: 5}, &errResp)
	for _, want := range []string{"normalize to 0", "clamp"} {
		if !strings.Contains(errResp.Error, want) {
			t.Errorf("scale error %q does not mention %q", errResp.Error, want)
		}
	}

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/models/spikes/detect", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON = %d, want 400", resp.StatusCode)
	}
}

func TestReloadSwapsAndAddsModels(t *testing.T) {
	_, ts, dir := newTestServer(t, Config{})

	// Add a second model and reload.
	writeModel(t, dir, "spikes-v2", trainModel(t))
	var rel struct {
		Models int `json:"models"`
	}
	if code := doJSON(t, "POST", ts.URL+"/models/reload", nil, &rel); code != 200 {
		t.Fatalf("reload = %d", code)
	}
	if rel.Models != 2 {
		t.Fatalf("reload loaded %d models, want 2", rel.Models)
	}
	var list struct {
		Models []ModelInfo `json:"models"`
	}
	doJSON(t, "GET", ts.URL+"/models", nil, &list)
	if len(list.Models) != 2 || list.Models[0].Name != "spikes" || list.Models[1].Name != "spikes-v2" {
		t.Fatalf("models after reload = %+v", list.Models)
	}
}

func TestReloadFailureKeepsServing(t *testing.T) {
	_, ts, dir := newTestServer(t, Config{})
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var errResp errorResponse
	if code := doJSON(t, "POST", ts.URL+"/models/reload", nil, &errResp); code != 500 {
		t.Fatalf("reload with corrupt artifact = %d, want 500", code)
	}
	if !strings.Contains(errResp.Error, "broken.json") {
		t.Errorf("reload error %q does not name the corrupt file", errResp.Error)
	}
	// The previous model set must still serve.
	req := batchRequest{Series: []seriesPayload{{Name: "f", Values: spiky("f", 300, []int{120}, 1).Values}}}
	var resp batchResponse
	if code := doJSON(t, "POST", ts.URL+"/models/spikes/detect", req, &resp); code != 200 {
		t.Fatalf("detect after failed reload = %d", code)
	}
	if resp.Results[0].Error != "" {
		t.Fatalf("detect after failed reload errored: %s", resp.Results[0].Error)
	}
}

func TestSessionTTLEviction(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{SessionTTL: time.Hour})
	var created createStreamResponse
	doJSON(t, "POST", ts.URL+"/streams", createStreamRequest{Model: "spikes", Min: 0, Max: 1}, &created)
	if s.sessions.Len() != 1 {
		t.Fatalf("sessions = %d, want 1", s.sessions.Len())
	}
	// Simulate the janitor firing far in the future.
	s.sessions.evictIdle(time.Now().Add(2 * time.Hour))
	if s.sessions.Len() != 0 {
		t.Fatalf("idle session survived eviction: %d live", s.sessions.Len())
	}
	if code := doJSON(t, "POST", ts.URL+"/streams/"+created.ID+"/points", pushPointsRequest{Points: []float64{1}}, nil); code != 404 {
		t.Fatalf("push to evicted session = %d, want 404", code)
	}
}

func TestRegistryRejectsEmptyOrMissingDir(t *testing.T) {
	if _, err := NewRegistry(t.TempDir()); err == nil {
		t.Error("empty model dir accepted")
	}
	if _, err := NewRegistry(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing model dir accepted")
	}
}

func TestExpvarCounters(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	before := counterValue(t, ts, "requests")
	doJSON(t, "GET", ts.URL+"/healthz", nil, nil)
	doJSON(t, "GET", ts.URL+"/healthz", nil, nil)
	after := counterValue(t, ts, "requests")
	// Other tests share the global map, so check the delta (the read
	// that observes `after` has itself been counted by then).
	if after < before+2 {
		t.Fatalf("requests counter moved %d -> %d, want +>=2", before, after)
	}
}

func counterValue(tb testing.TB, ts *httptest.Server, key string) int64 {
	tb.Helper()
	var vars struct {
		Cdtserve map[string]int64 `json:"cdtserve"`
	}
	if code := doJSON(tb, "GET", ts.URL+"/debug/vars", nil, &vars); code != 200 {
		tb.Fatalf("debug/vars = %d", code)
	}
	return vars.Cdtserve[key]
}

func TestBodyLimit(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxBodyBytes: 1024})
	big := batchRequest{Series: []seriesPayload{{Name: "big", Values: make([]float64, 4096)}}}
	b, _ := json.Marshal(big)
	resp, err := http.Post(ts.URL+"/models/spikes/detect", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
}
