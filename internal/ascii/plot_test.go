package ascii

import (
	"math"
	"strings"
	"testing"
)

func TestPlotBasicShape(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = math.Sin(float64(i) / 5)
	}
	out := Plot(values, nil, PlotOptions{Width: 40, Height: 8})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// max row + 8 grid rows + min/axis row = 10.
	if len(lines) != 10 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, ".") {
		t.Error("no data glyphs")
	}
	if strings.Contains(out, "x") {
		t.Error("anomaly glyphs without flags")
	}
}

func TestPlotMarksAnomalies(t *testing.T) {
	values := make([]float64, 50)
	flags := make([]bool, 50)
	for i := range values {
		values[i] = 1
	}
	values[25] = 10
	flags[25] = true
	out := Plot(values, flags, PlotOptions{Width: 50, Height: 6})
	if !strings.Contains(out, "x") {
		t.Errorf("anomaly column not marked:\n%s", out)
	}
	if !strings.Contains(out, "^") {
		t.Errorf("alarm row missing:\n%s", out)
	}
	if !strings.Contains(out, "alarms") {
		t.Error("alarm legend missing")
	}
}

func TestPlotBucketsLongSeries(t *testing.T) {
	values := make([]float64, 1000)
	flags := make([]bool, 1000)
	flags[500] = true
	out := Plot(values, flags, PlotOptions{Width: 40, Height: 5})
	// Bucketing must keep the anomaly visible.
	if !strings.Contains(out, "x") {
		t.Error("bucketed anomaly lost")
	}
	// Lines must not exceed the width budget plus the axis prefix.
	for _, line := range strings.Split(out, "\n") {
		if len([]rune(line)) > 40+13 {
			t.Errorf("line too wide: %q", line)
		}
	}
}

func TestPlotConstantSeries(t *testing.T) {
	values := []float64{5, 5, 5, 5}
	out := Plot(values, nil, PlotOptions{Width: 10, Height: 4})
	if !strings.Contains(out, ".") {
		t.Error("constant series not drawn")
	}
}

func TestPlotEmpty(t *testing.T) {
	if got := Plot(nil, nil, PlotOptions{}); got != "(empty series)\n" {
		t.Errorf("empty plot = %q", got)
	}
}

func TestPlotShortSeriesNarrowerThanWidth(t *testing.T) {
	out := Plot([]float64{1, 2, 3}, nil, PlotOptions{Width: 72, Height: 4})
	if strings.Count(strings.Split(out, "\n")[1], " ")+3 < 3 {
		t.Error("short series misrendered")
	}
	if !strings.Contains(out, ".") {
		t.Error("no glyphs for short series")
	}
}
