package cdt

import (
	"context"
	"strings"
	"testing"
)

// FuzzLoad feeds arbitrary JSON to the model loader: it must never
// panic, and any model it accepts must be usable for prediction.
func FuzzLoad(f *testing.F) {
	f.Add(`{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0}}`)
	f.Add(`{"version": 1, "options": {"omega": 3, "delta": 2},
	       "tree": {"normal": 2, "anomaly": 2, "composition": [[0,1,1]],
	                "true": {"normal": 0, "anomaly": 2}, "false": {"normal": 2, "anomaly": 0}}}`)
	f.Add(`{}`)
	f.Add(`null`)
	f.Add(`[1,2,3]`)
	// Malformed documents the server's registry must survive: wrong
	// version, absurd hyper-parameters, invalid labels, inconsistent
	// trees, negative counts, and syntax errors.
	f.Add(`{"version": 2, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0}}`)
	f.Add(`{"version": 1, "options": {"omega": 9000000000000000000, "delta": 2}, "tree": {"normal": 1, "anomaly": 0}}`)
	f.Add(`{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0, "composition": [[99,99,99]], "true": {"normal":0,"anomaly":0}, "false": {"normal":0,"anomaly":0}}}`)
	f.Add(`{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0, "composition": [[0,1,1]]}}`)
	f.Add(`{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": -1, "anomaly": 0}}`)
	f.Add(`{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0, "true": {"normal":0,"anomaly":0}}}`)
	f.Add(`{"version": 1, "options": {"omega": 5, "delta"`)
	// A real artifact, truncated at several byte offsets: the registry
	// can race a half-written file on reload.
	if artifact := savedModelJSON(f); artifact != "" {
		for _, frac := range []int{4, 2, 3} {
			f.Add(artifact[:len(artifact)/frac])
		}
		f.Add(artifact + artifact) // trailing garbage
	}
	// Pyramid documents: malformed shapes LoadAny/LoadPyramid must
	// reject cleanly, plus a real artifact and its truncations.
	f.Add(`{"kind": "pyramid"}`)
	f.Add(`{"kind": "mystery"}`)
	f.Add(`{"version": 1, "kind": "pyramid", "fusion": {"policy": "psychic"}, "scales": []}`)
	f.Add(`{"version": 1, "kind": "pyramid", "fusion": {"policy": "k-of-n", "k": -1}, "scales": [{"factor": 1}]}`)
	f.Add(`{"version": 1, "kind": "pyramid", "fusion": {"policy": "any"},
	       "scales": [{"factor": 2, "model": {"version": 1, "options": {"omega": 3, "delta": 2}, "tree": {"normal": 1, "anomaly": 0}}}]}`)
	if artifact := savedPyramidJSON(f); artifact != "" {
		f.Add(artifact)
		for _, frac := range []int{4, 2, 3} {
			f.Add(artifact[:len(artifact)/frac])
		}
	}
	// Composed-transform / trainable-fusion documents: malformed weighted
	// and dim shapes must be rejected cleanly, and a real learned-weights
	// artifact (plus truncations) must round-trip through the fuzz body.
	f.Add(`{"version": 1, "kind": "pyramid", "fusion": {"policy": "weighted", "threshold": 0}, "scales": [{"factor": 1, "model": {"version": 1, "options": {"omega": 3, "delta": 2}, "tree": {"normal": 1, "anomaly": 0}}}]}`)
	f.Add(`{"version": 1, "kind": "pyramid", "fusion": {"policy": "weighted", "weights": [1, 1, 1], "threshold": 1}, "scales": [{"factor": 1, "model": {"version": 1, "options": {"omega": 3, "delta": 2}, "tree": {"normal": 1, "anomaly": 0}}}]}`)
	f.Add(`{"version": 1, "kind": "pyramid", "fusion": {"policy": "weighted", "weights": [0], "threshold": 1}, "scales": [{"factor": 1, "model": {"version": 1, "options": {"omega": 3, "delta": 2}, "tree": {"normal": 1, "anomaly": 0}}}]}`)
	f.Add(`{"version": 1, "kind": "pyramid", "fusion": {"policy": "any"}, "dim": -1, "scales": [{"factor": 1, "model": {"version": 1, "options": {"omega": 3, "delta": 2}, "tree": {"normal": 1, "anomaly": 0}}}]}`)
	f.Add(`{"version": 1, "kind": "pyramid", "fusion": {"policy": "any"}, "dim": 9000000000000000000, "scales": [{"factor": 1, "model": {"version": 1, "options": {"omega": 3, "delta": 2}, "tree": {"normal": 1, "anomaly": 0}}}]}`)
	if artifact := savedWeightedPyramidJSON(f); artifact != "" {
		f.Add(artifact)
		for _, frac := range []int{4, 2, 3} {
			f.Add(artifact[:len(artifact)/frac])
		}
	}
	f.Fuzz(func(t *testing.T, doc string) {
		// LoadAny must never panic, and any artifact it accepts must
		// detect and render without panicking.
		if art, err := LoadAny(strings.NewReader(doc)); err == nil {
			_ = art.RuleText()
			_ = art.Info()
			_ = art.TrainingAnomalyRate()
			n := art.Info().Omega*4 + 8
			if pm, ok := art.(*PyramidModel); ok && pm.Config.Dim > 0 {
				// A dimension-scoring pyramid detects on multivariate
				// feeds only; probe one just wide enough, capped so an
				// accepted-but-large dim cannot drive huge allocations
				// in the harness itself.
				if width := pm.Config.Dim + 1; width*n <= 1<<22 {
					dims := make([]*Series, width)
					for d := range dims {
						values := make([]float64, n)
						for i := range values {
							values[i] = float64((i + d) % 7)
						}
						dims[d] = NewSeries("fuzz", values)
					}
					if _, err := pm.DetectPyramidMulti(&MultiSeries{Name: "fuzz", Dims: dims}); err != nil {
						t.Fatalf("accepted pyramid cannot detect multivariate: %v", err)
					}
				}
			} else {
				values := make([]float64, n)
				for i := range values {
					values[i] = float64(i % 7)
				}
				if _, err := art.DetectExplained(context.Background(), NewSeries("fuzz", values)); err != nil {
					t.Fatalf("accepted artifact cannot detect: %v", err)
				}
			}
		}
		m, err := Load(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Any accepted model must classify a window without panicking.
		labels := make([]Label, m.Opts.Omega)
		_ = m.Predict(labels)
		_ = m.RuleText()
		// And truncating any accepted document must fail or load cleanly,
		// never panic.
		if m2, err := Load(strings.NewReader(doc[:len(doc)/2])); err == nil {
			_ = m2.Predict(make([]Label, m2.Opts.Omega))
		}
	})
}

// savedPyramidJSON trains a tiny two-scale pyramid and returns its
// serialized form, for fuzz seeds. Returns "" when training fails.
func savedPyramidJSON(f *testing.F) string {
	f.Helper()
	values := make([]float64, 64)
	anoms := make([]bool, len(values))
	for i := range values {
		values[i] = float64(1 + i%3)
	}
	for _, at := range []int{11, 30, 31, 32, 33, 50} {
		values[at] = 9
		anoms[at] = true
	}
	pm, err := FitPyramid([]*Series{NewLabeledSeries("seed", values, anoms)},
		Options{Omega: 3, Delta: 2},
		PyramidConfig{Factors: []int{1, 2}, Aggregator: "max"})
	if err != nil {
		return ""
	}
	var b strings.Builder
	if err := pm.Save(&b); err != nil {
		return ""
	}
	return b.String()
}

// savedWeightedPyramidJSON trains a tiny dimension-scoring pyramid with
// learned fusion weights and returns its serialized form, for fuzz
// seeds. Returns "" when training fails.
func savedWeightedPyramidJSON(f *testing.F) string {
	f.Helper()
	n := 64
	quiet := make([]float64, n)
	noisy := make([]float64, n)
	anoms := make([]bool, n)
	for i := range noisy {
		quiet[i] = 2
		noisy[i] = float64(1 + i%3)
	}
	for _, at := range []int{11, 30, 31, 32, 33, 50} {
		noisy[at] = 9
		anoms[at] = true
	}
	feed := &MultiSeries{
		Name:      "seed",
		Dims:      []*Series{NewSeries("quiet", quiet), NewSeries("noisy", noisy)},
		Anomalies: anoms,
	}
	pm, err := FitPyramidMulti([]*MultiSeries{feed}, Options{Omega: 3, Delta: 2},
		PyramidConfig{
			Factors:    []int{1, 2},
			Aggregator: "max",
			Fusion:     Fusion{Policy: FuseWeighted, Threshold: 1},
			Dim:        1,
		})
	if err != nil {
		return ""
	}
	if err := pm.TrainFusionMulti([]*MultiSeries{feed}); err != nil {
		return ""
	}
	var b strings.Builder
	if err := pm.Save(&b); err != nil {
		return ""
	}
	return b.String()
}

// savedModelJSON trains a tiny model and returns its serialized form,
// for truncation seeds. Returns "" when training fails (the fuzz corpus
// just loses those seeds).
func savedModelJSON(f *testing.F) string {
	f.Helper()
	values := []float64{1, 2, 1, 9, 1, 2, 1, 2, 1, 9, 1, 2, 1, 2, 1}
	anoms := make([]bool, len(values))
	anoms[3], anoms[9] = true, true
	m, err := Fit([]*Series{NewLabeledSeries("seed", values, anoms)}, Options{Omega: 3, Delta: 2})
	if err != nil {
		return ""
	}
	var b strings.Builder
	if err := m.Save(&b); err != nil {
		return ""
	}
	return b.String()
}
