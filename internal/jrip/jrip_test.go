package jrip

import (
	"math/rand"
	"testing"

	"cdt/internal/c45"
)

func keyedDataset(n int, seed int64) *c45.Dataset {
	// class 1 iff (a==1 && b==2); plus a junk attribute.
	rng := rand.New(rand.NewSource(seed))
	ds := &c45.Dataset{
		AttrNames:  []string{"a", "b", "junk"},
		AttrCard:   []int{2, 3, 4},
		NumClasses: 2,
	}
	for i := 0; i < n; i++ {
		a, b := rng.Intn(2), rng.Intn(3)
		class := 0
		if a == 1 && b == 2 {
			class = 1
		}
		ds.Instances = append(ds.Instances, c45.Instance{
			Attrs: []int{a, b, rng.Intn(4)},
			Class: class,
		})
	}
	return ds
}

func TestLearnConjunction(t *testing.T) {
	ds := keyedDataset(300, 1)
	cls, err := Learn(ds, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for _, inst := range ds.Instances {
		if cls.Predict(inst.Attrs) != inst.Class {
			errs++
		}
	}
	if float64(errs)/float64(len(ds.Instances)) > 0.05 {
		t.Errorf("%d/%d errors on a clean conjunction", errs, len(ds.Instances))
	}
}

func TestRulesTargetMinorityClass(t *testing.T) {
	ds := keyedDataset(300, 2)
	cls, err := Learn(ds, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Class 1 (a==1&&b==2, ~1/6 of data) is rarer: rules should predict
	// it and the default should be class 0.
	if cls.DefaultClass != 0 {
		t.Errorf("default class = %d, want 0", cls.DefaultClass)
	}
	for _, r := range cls.Rules {
		if r.Class != 1 {
			t.Errorf("rule predicts class %d, want 1", r.Class)
		}
	}
}

func TestRulesShorterThanExhaustive(t *testing.T) {
	ds := keyedDataset(300, 3)
	cls, err := Learn(ds, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// RIPPER should find a compact description: very few rules with at
	// most ~2 conditions each for a 2-condition concept.
	if cls.NumRules() > 4 {
		t.Errorf("%d rules for a single-conjunction concept", cls.NumRules())
	}
	for _, r := range cls.Rules {
		if len(r.Conditions) > 3 {
			t.Errorf("rule has %d conditions", len(r.Conditions))
		}
	}
}

func TestLearnDeterministicGivenSeed(t *testing.T) {
	ds := keyedDataset(200, 4)
	c1, err := Learn(ds, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Learn(ds, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if c1.NumRules() != c2.NumRules() {
		t.Fatal("same seed, different rule counts")
	}
	for i := range c1.Rules {
		if len(c1.Rules[i].Conditions) != len(c2.Rules[i].Conditions) {
			t.Fatal("same seed, different rules")
		}
	}
}

func TestLearnErrors(t *testing.T) {
	ds := &c45.Dataset{AttrNames: []string{"a"}, AttrCard: []int{2}, NumClasses: 2}
	if _, err := Learn(ds, Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestLearnSingleClassData(t *testing.T) {
	ds := &c45.Dataset{
		AttrNames:  []string{"a"},
		AttrCard:   []int{2},
		NumClasses: 2,
	}
	for i := 0; i < 20; i++ {
		ds.Instances = append(ds.Instances, c45.Instance{Attrs: []int{i % 2}, Class: 0})
	}
	cls, err := Learn(ds, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cls.Predict([]int{0}) != 0 {
		t.Error("single-class data misclassified")
	}
}

func TestClassOrder(t *testing.T) {
	order := classOrder([]int{50, 10, 30})
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("order = %v, want [1 2 0]", order)
	}
}

func TestGrowRuleFindsDiscriminatingConditions(t *testing.T) {
	ds := keyedDataset(300, 5)
	var pos, neg []int
	for i, inst := range ds.Instances {
		if inst.Class == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rule := growRule(ds, pos, neg, 1)
	if len(rule.Conditions) == 0 {
		t.Fatal("no conditions grown")
	}
	// The grown rule must exclude all negatives.
	for _, i := range neg {
		if rule.Matches(ds.Instances[i].Attrs) {
			t.Fatal("grown rule covers negatives")
		}
	}
	// And cover at least one positive.
	if coverage(ds, rule, pos) == 0 {
		t.Fatal("grown rule covers no positives")
	}
}

func TestPruneRuleNeverWorsensPruneMetric(t *testing.T) {
	ds := keyedDataset(300, 6)
	var pos, neg []int
	for i, inst := range ds.Instances {
		if inst.Class == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	full := growRule(ds, pos, neg, 1)
	// Append a junk condition and check pruning removes it.
	junk := Rule{Class: 1, Conditions: append(append([]c45.Condition(nil), full.Conditions...), c45.Condition{Attr: 2, Value: 0})}
	pruned := pruneRule(ds, junk, pos, neg)
	metric := func(r Rule) float64 {
		p, n := coverage(ds, r, pos), coverage(ds, r, neg)
		if p+n == 0 {
			return -1
		}
		return float64(p-n) / float64(p+n)
	}
	if metric(pruned) < metric(junk) {
		t.Error("pruning worsened the prune metric")
	}
}

func TestLogBinomial(t *testing.T) {
	// log2 C(10,3) = log2 120 ≈ 6.9069.
	if got := logBinomial(10, 3); got < 6.9 || got > 6.91 {
		t.Errorf("logBinomial(10,3) = %v", got)
	}
	if logBinomial(5, 7) != 0 || logBinomial(0, 0) != 0 {
		t.Error("edge cases wrong")
	}
}

func TestRuleMatchesEmpty(t *testing.T) {
	r := Rule{}
	if !r.Matches([]int{1, 2}) {
		t.Error("empty rule should match")
	}
}

func TestDedupeConditions(t *testing.T) {
	r := Rule{Conditions: []c45.Condition{{Attr: 0, Value: 1}, {Attr: 0, Value: 1}, {Attr: 1, Value: 0}}}
	d := dedupeConditions(r)
	if len(d.Conditions) != 2 {
		t.Errorf("got %d conditions", len(d.Conditions))
	}
}

func TestPredictDefault(t *testing.T) {
	cls := &Classifier{DefaultClass: 1}
	if cls.Predict([]int{0}) != 1 {
		t.Error("default not used")
	}
}

// descriptionLength must grow when a redundant rule is appended: more
// rule bits, no fewer exceptions.
func TestDescriptionLengthMonotoneInRedundantRules(t *testing.T) {
	ds := keyedDataset(200, 7)
	var pos, neg []int
	for i, inst := range ds.Instances {
		if inst.Class == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	nConds := 0
	for _, card := range ds.AttrCard {
		nConds += card
	}
	good := Rule{Class: 1, Conditions: []c45.Condition{{Attr: 0, Value: 1}, {Attr: 1, Value: 2}}}
	dupe := good
	one := descriptionLength(ds, []Rule{good}, pos, neg, nConds)
	two := descriptionLength(ds, []Rule{good, dupe}, pos, neg, nConds)
	if two <= one {
		t.Errorf("DL did not grow for a redundant rule: %v -> %v", one, two)
	}
}

// A rule set that explains the data perfectly must cost fewer exception
// bits than an empty one.
func TestDescriptionLengthRewardsExplanation(t *testing.T) {
	ds := keyedDataset(300, 8)
	var pos, neg []int
	for i, inst := range ds.Instances {
		if inst.Class == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	nConds := 0
	for _, card := range ds.AttrCard {
		nConds += card
	}
	perfect := Rule{Class: 1, Conditions: []c45.Condition{{Attr: 0, Value: 1}, {Attr: 1, Value: 2}}}
	with := descriptionLength(ds, []Rule{perfect}, pos, neg, nConds)
	without := descriptionLength(ds, nil, pos, neg, nConds)
	if with >= without {
		t.Errorf("perfect rule did not reduce DL: with=%v without=%v", with, without)
	}
}
