// Package quality implements the paper's rule-quality measures (§3.5):
// the interpretability I(c) of a composition (Equation 1), the average
// interpretability M(I_Rs) of a rule predicate (Equation 2), the
// support-weighted quality Q(R) of a rule (Equation 3), and the
// optimization objective F(h) = F1 · Q(R) (Equation 5).
package quality

import (
	"cdt/internal/core"
	"cdt/internal/engine"
	"cdt/internal/evalmetrics"
	"cdt/internal/rules"
)

// Interpretability computes I(c) = 1 − (L_c · N_L) / (ω · MaxL)
// (Equation 1): shorter compositions using fewer distinct labels are more
// interpretable. omega is the window size; maxLabels is the total number
// of labels MaxL — the pattern-alphabet size (2δ+1)². The result is
// clamped to [0,1] for robustness against degenerate inputs.
func Interpretability(c core.Composition, omega, maxLabels int) float64 {
	if omega <= 0 || maxLabels <= 0 {
		return 0
	}
	v := 1 - float64(c.Len()*c.UniqueLabels())/float64(omega*maxLabels)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// PredicateQuality computes M(I_Rs) (Equation 2): the mean I(c) over the
// predicate's compositions. Following the interpretability intent, every
// composition the analyst must read — negated or not — counts. An empty
// predicate has quality 0.
func PredicateQuality(p rules.Predicate, omega, maxLabels int) float64 {
	comps := p.Compositions()
	if len(comps) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range comps {
		sum += Interpretability(c, omega, maxLabels)
	}
	return sum / float64(len(comps))
}

// Report carries the quality evaluation of a rule on a labeled
// observation set.
type Report struct {
	// Q is the rule quality Q(R) (Equation 3).
	Q float64
	// Confusion is the rule's detection confusion matrix on the set.
	Confusion evalmetrics.Confusion
	// PredicateSupports holds S_Rs per predicate: the number of true
	// positives attributed to that predicate.
	PredicateSupports []int
	// PredicateFalsePositives counts, per predicate, the normal
	// observations it (as first matcher) flagged.
	PredicateFalsePositives []int
	// PredicateQualities holds M(I_Rs) per predicate.
	PredicateQualities []float64
}

// F1 is the rule's F1 on the evaluation set.
func (r Report) F1() float64 { return r.Confusion.F1() }

// Objective is F(h) = F1 · Q(R) (Equation 5).
func (r Report) Objective() float64 { return r.F1() * r.Q }

// Evaluate measures a rule on labeled observations and computes Q(R)
// (Equation 3): Q = (1/S) Σ S_Rs · M(I_Rs), where S_Rs is the support of
// predicate Rs (true positives it detects) and S is the support of all
// rule predicates — the correctly classified observations (true positives
// and true negatives) of the whole rule. A predicate's true positive is
// attributed to the first predicate that matches, mirroring ordered rule
// evaluation; attribution does not change Q's numerator because each true
// positive counts once either way. omega and maxLabels parameterize the
// interpretability terms.
//
// marks carries the per-observation match results — r's compiled engine
// swept over obs (engine.Compile(r, ω).SweepObservations(obs)); marks
// index i must correspond to obs[i]. Evaluate itself re-matches nothing:
// the engine's bit-identity contract guarantees marks agree with
// per-window Predicate.Matches.
func Evaluate(r rules.Rule, obs []core.Observation, marks *engine.Marks, omega, maxLabels int) Report {
	rep := Report{
		PredicateSupports:       make([]int, len(r.Predicates)),
		PredicateFalsePositives: make([]int, len(r.Predicates)),
		PredicateQualities:      make([]float64, len(r.Predicates)),
	}
	for i, p := range r.Predicates {
		rep.PredicateQualities[i] = PredicateQuality(p, omega, maxLabels)
	}
	for i := range obs {
		actual := obs[i].Class == core.Anomaly
		matched := marks.First(i)
		predicted := matched >= 0
		rep.Confusion.Add(predicted, actual)
		if predicted {
			if actual {
				rep.PredicateSupports[matched]++
			} else {
				rep.PredicateFalsePositives[matched]++
			}
		}
	}
	s := rep.Confusion.TP + rep.Confusion.TN
	if s == 0 {
		return rep
	}
	num := 0.0
	for i := range r.Predicates {
		num += float64(rep.PredicateSupports[i]) * rep.PredicateQualities[i]
	}
	rep.Q = num / float64(s)
	return rep
}

// GenericPredicate abstracts a rule conjunction from any rule learner
// (PART, JRip) so the same Q(R) measure can score them (§4.3 compares
// Q(R) across CDT, PART and JRip). Length is the number of conditions in
// the conjunction (the analogue of L_c) and UniqueValues the number of
// distinct attribute values used (the analogue of N_L).
type GenericPredicate struct {
	Length       int
	UniqueValues int
	// Matches evaluates the conjunction on an observation index.
	Matches func(i int) bool
}

// EvaluateGeneric computes F1, Q(R) and F(h) for an ordered rule list
// from a generic learner over n observations with the given truth. Each
// predicate is treated as a single composition whose interpretability is
// I = 1 − (Length · UniqueValues)/(ω · MaxL); defaultPositive reports
// whether an observation matched by no predicate is classified anomalous
// (rule lists may end with an anomaly default).
func EvaluateGeneric(preds []GenericPredicate, n int, truth func(i int) bool, defaultPositive bool, omega, maxLabels int) Report {
	rep := Report{
		PredicateSupports:  make([]int, len(preds)),
		PredicateQualities: make([]float64, len(preds)),
	}
	for i, p := range preds {
		v := 1 - float64(p.Length*p.UniqueValues)/float64(omega*maxLabels)
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		rep.PredicateQualities[i] = v
	}
	for i := 0; i < n; i++ {
		actual := truth(i)
		matched := -1
		for pi := range preds {
			if preds[pi].Matches(i) {
				matched = pi
				break
			}
		}
		predicted := defaultPositive
		if matched >= 0 {
			predicted = true
		}
		rep.Confusion.Add(predicted, actual)
		if matched >= 0 && actual {
			rep.PredicateSupports[matched]++
		}
	}
	s := rep.Confusion.TP + rep.Confusion.TN
	if s == 0 {
		return rep
	}
	num := 0.0
	for i := range preds {
		num += float64(rep.PredicateSupports[i]) * rep.PredicateQualities[i]
	}
	rep.Q = num / float64(s)
	return rep
}
