package cdt

import (
	"strings"
	"testing"
)

// FuzzLoad feeds arbitrary JSON to the model loader: it must never
// panic, and any model it accepts must be usable for prediction.
func FuzzLoad(f *testing.F) {
	f.Add(`{"version": 1, "options": {"omega": 5, "delta": 2}, "tree": {"normal": 1, "anomaly": 0}}`)
	f.Add(`{"version": 1, "options": {"omega": 3, "delta": 2},
	       "tree": {"normal": 2, "anomaly": 2, "composition": [[0,1,1]],
	                "true": {"normal": 0, "anomaly": 2}, "false": {"normal": 2, "anomaly": 0}}}`)
	f.Add(`{}`)
	f.Add(`null`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, doc string) {
		m, err := Load(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Any accepted model must classify a window without panicking.
		labels := make([]Label, m.Opts.Omega)
		_ = m.Predict(labels)
		_ = m.RuleText()
	})
}
