// Package server implements cdtserve, the HTTP serving subsystem for
// trained CDT models: a hot-reloadable model registry, streaming
// detection sessions, and batch scoring over a bounded worker pool.
//
// Interpretability is the paper's point (EDBT 2021 §3.4), so every
// detection the server returns carries the fired rule predicates in
// human-readable form, not just window indices.
//
// The package is stdlib-only (net/http, sync, context, expvar, log/slog)
// plus the repo's internal/telemetry metrics core. Observability spans
// two generations: the legacy expvar map at /debug/vars (kept for
// back-compat) and the Prometheus registry at /metrics with per-endpoint
// latency histograms, request IDs, and structured access logs
// (telemetry.go).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"time"

	cdt "cdt"
	"cdt/internal/modelstore"
	"cdt/internal/trace"
)

// stats publishes the serving counters under the "cdtserve" expvar map
// (visible at GET /debug/vars): requests, detections, batch_series,
// active_sessions, sessions_evicted, reloads.
var stats = expvar.NewMap("cdtserve")

// Config tunes a Server.
type Config struct {
	// ModelDir is the directory of <name>.json model artifacts. Exactly
	// one of ModelDir and Store must be set.
	ModelDir string
	// Store serves models from a versioned model store instead of a flat
	// directory: the registry resolves "current" promotion pointers, and
	// the promote/rollback/shadow endpoints come alive.
	Store *modelstore.Store
	// DriftWindow is the sliding window (in scored windows) the drift
	// detector aggregates before comparing live fire rate against the
	// model's training-time anomaly rate (default 512).
	DriftWindow int
	// DriftBound is the absolute fire-rate deviation that marks a model
	// stale; <= 0 disables drift detection (the default).
	DriftBound float64
	// Retrainer, when set alongside Store, re-trains drifted models in
	// the background and publishes the result as an unpromoted candidate.
	Retrainer Retrainer
	// SessionTTL evicts streaming sessions idle longer than this
	// (default 15m; <= 0 keeps the default, it does not disable).
	SessionTTL time.Duration
	// Workers bounds concurrent batch-scoring goroutines server-wide
	// (default GOMAXPROCS).
	Workers int
	// MaxBodyBytes caps request bodies (default 32 MiB).
	MaxBodyBytes int64
	// SlowRequestThreshold records requests slower than this into the
	// slow-request exemplar ring on /debug/vars ("cdtserve_slow_requests":
	// request ID, endpoint, path, status, latency). <= 0 disables
	// recording (the default).
	SlowRequestThreshold time.Duration
	// AccessLog, when non-nil, receives one structured line per request
	// (endpoint, status, latency, request ID). Nil disables access
	// logging; metrics are collected either way. Background work (shadow
	// scoring, drift retraining) logs through the same logger, carrying
	// the originating request ID.
	AccessLog *slog.Logger
	// Tracer, when non-nil, enables request-scoped tracing: the
	// middleware makes the root sampling decision (honoring inbound W3C
	// traceparent headers), spans thread through the scoring hot paths,
	// and finished spans land in the tracer's ring on GET /debug/traces.
	// Nil disables tracing entirely (the endpoint serves an empty list).
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	return c
}

// Server wires the registry, the session manager, and the batch worker
// pool behind an http.Handler. Create with New, serve Handler(), and
// Close when done.
type Server struct {
	cfg      Config
	registry *Registry
	sessions *Sessions
	shadows  *Shadows
	drift    *drift
	attr     *attribution  // per-model rule-attribution cache
	sem      chan struct{} // batch worker-pool slots
	mux      *http.ServeMux
	tel      *serverMetrics
	tracer   *trace.Tracer // nil disables tracing
	logger   *slog.Logger  // access logger; nil disables access logs
}

// New loads the model backend (directory or store) and assembles the
// serving stack.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var (
		reg *Registry
		err error
	)
	if cfg.Store != nil {
		if cfg.ModelDir != "" {
			return nil, fmt.Errorf("server: Config.ModelDir and Config.Store are mutually exclusive")
		}
		reg, err = NewStoreRegistry(cfg.Store)
	} else {
		reg, err = NewRegistry(cfg.ModelDir)
	}
	if err != nil {
		return nil, err
	}
	tel := newServerMetrics()
	reg.reloads = tel.reloads
	s := &Server{
		cfg:      cfg,
		registry: reg,
		sessions: NewSessions(cfg.SessionTTL, tel),
		shadows:  NewShadows(tel, cfg.Workers, cfg.AccessLog, cfg.Tracer),
		drift:    newDrift(cfg.DriftWindow, cfg.DriftBound, cfg.Store, cfg.Retrainer, tel, cfg.AccessLog),
		attr:     newAttribution(tel),
		sem:      make(chan struct{}, cfg.Workers),
		mux:      http.NewServeMux(),
		tel:      tel,
		tracer:   cfg.Tracer,
		logger:   cfg.AccessLog,
	}
	tel.reg.GaugeFunc("cdtserve_models_loaded",
		"Models currently registered.", func() int64 { return int64(s.registry.Len()) })
	tel.reg.GaugeFunc("cdtserve_stream_sessions_active",
		"Live streaming sessions.", func() int64 { return int64(s.sessions.Len()) })
	tel.reg.GaugeFunc("cdtserve_shadows_active",
		"Candidate versions currently shadow-scoring live traffic.",
		func() int64 { return int64(s.shadows.Len()) })
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.handle("GET /healthz", "healthz", s.handleHealthz)
	s.handle("GET /models", "models_list", s.handleListModels)
	s.handle("POST /models/reload", "models_reload", s.handleReload)
	s.handle("POST /models/{name}/detect", "batch_detect", s.handleBatchDetect)
	s.handle("GET /models/{name}/shadow", "shadow_summary", s.handleShadowSummary)
	s.handle("POST /models/{name}/shadow", "shadow_start", s.handleShadowStart)
	s.handle("DELETE /models/{name}/shadow", "shadow_stop", s.handleShadowStop)
	s.handle("POST /models/{name}/promote", "model_promote", s.handlePromote)
	s.handle("POST /models/{name}/rollback", "model_rollback", s.handleRollback)
	s.handle("POST /streams", "stream_create", s.handleCreateStream)
	s.handle("POST /streams/{id}/points", "stream_push", s.handlePushPoints)
	s.handle("POST /streams/{id}/reset", "stream_reset", s.handleResetStream)
	s.handle("DELETE /streams/{id}", "stream_delete", s.handleDeleteStream)
	s.handle("GET /metrics", "metrics", s.handleMetrics)
	s.handle("GET /debug/vars", "debug_vars", expvar.Handler().ServeHTTP)
	s.handle("GET /debug/traces", "debug_traces", s.handleTraces)
}

// Handler returns the HTTP surface. The middleware applies, to every
// route: the legacy expvar request counter, body limiting, request-ID
// assignment (honoring an inbound X-Request-ID) with context propagation
// and the X-Request-ID response header, the root trace span (honoring an
// inbound W3C traceparent, emitting the outbound header when sampled),
// the in-flight gauge, and — when Config.AccessLog is set — one
// structured access-log line.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stats.Add("requests", 1)
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = nextRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w, endpoint: "other"}
		ctx := context.WithValue(r.Context(), ridKey{}, id)
		var span *trace.Span
		if s.tracer != nil {
			// nil span (unsampled) leaves ctx untouched; every downstream
			// instrumentation point no-ops on the missing span.
			ctx, span = s.tracer.StartRequest(ctx, "request", r.Header.Get("traceparent"))
			if span != nil {
				span.SetAttr("method", r.Method)
				span.SetAttr("path", r.URL.Path)
				span.SetAttr("request_id", id)
				w.Header().Set("traceparent", span.Traceparent())
			}
		}
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(rec, r.Body, s.cfg.MaxBodyBytes)
		s.tel.inFlight.Add(1)
		start := time.Now()
		s.mux.ServeHTTP(rec, r)
		s.tel.inFlight.Add(-1)
		elapsed := time.Since(start)
		if span != nil {
			span.SetAttr("endpoint", rec.endpoint)
			span.SetAttr("status", strconv.Itoa(rec.status()))
			span.End()
		}
		s.recordSlowRequest(r, rec, id, span.TraceID(), elapsed)
		if s.logger != nil {
			s.accessLog(r, rec, id, elapsed)
		}
	})
}

// Registry exposes the model registry (the SIGHUP handler reloads it).
func (s *Server) Registry() *Registry { return s.registry }

// Close releases background resources (the session janitor and the
// shadow-scoring workers).
func (s *Server) Close() {
	s.sessions.Close()
	s.shadows.Close()
}

// --- JSON plumbing -----------------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// readJSON decodes a request body, mapping size/syntax problems to 4xx.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return false
	}
	// Trailing garbage after the document is a malformed request too.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// --- rule DTOs ---------------------------------------------------------

// firedRule is the wire form of a fired rule predicate.
type firedRule struct {
	Index       int    `json:"index"`
	Text        string `json:"text"`
	Description string `json:"description,omitempty"`
}

func firedRules(fired []cdt.FiredPredicate) []firedRule {
	out := make([]firedRule, len(fired))
	for i, f := range fired {
		out[i] = firedRule{Index: f.Index, Text: f.Text, Description: f.Description}
	}
	return out
}

// --- operational handlers ----------------------------------------------

// handleHealthz is the readiness view: it verifies the model backend is
// loadable right now (store manifest readable and every current version
// resolvable, or the model dir still holding artifacts) and surfaces
// drift — a stale model degrades the report without failing readiness,
// since the incumbent is still serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := s.registry.CheckSource(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "unready",
			"error":  err.Error(),
		})
		return
	}
	body := map[string]any{
		"status":          "ok",
		"models":          s.registry.Len(),
		"active_sessions": s.sessions.Len(),
	}
	if stale := s.drift.staleModels(); len(stale) > 0 {
		body["status"] = "degraded"
		body["stale_models"] = stale
		if rules := s.drift.staleRules(); len(rules) > 0 {
			// Name the rule driving each drift — the actionable half of
			// the stale signal for a rule-based detector.
			body["stale_rules"] = rules
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.registry.List()})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	n, err := s.registry.Reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload failed (previous models still serving): %v", err)
		return
	}
	// What serves under each name may have changed; drift baselines from
	// the previous artifacts no longer apply.
	s.drift.resetAll()
	writeJSON(w, http.StatusOK, map[string]any{"models": n})
}

// --- streaming handlers ------------------------------------------------

type createStreamRequest struct {
	Model string  `json:"model"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

type createStreamResponse struct {
	ID    string `json:"id"`
	Model string `json:"model"`
	Omega int    `json:"omega"`
}

func (s *Server) handleCreateStream(w http.ResponseWriter, r *http.Request) {
	var req createStreamRequest
	if !readJSON(w, r, &req) {
		return
	}
	model, ok := s.registry.Get(req.Model)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model %q", req.Model)
		return
	}
	sess, err := s.sessions.Create(req.Model, model,
		cdt.Scale{Min: req.Min, Max: req.Max}, s.shadows.Get(req.Model), s.drift,
		s.attr.forModel(req.Model, model))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, createStreamResponse{ID: sess.ID, Model: sess.Model, Omega: sess.Omega})
}

type pushPointsRequest struct {
	Points []float64 `json:"points"`
}

type streamDetection struct {
	WindowStart int         `json:"window_start"`
	WindowEnd   int         `json:"window_end"`
	Rules       []firedRule `json:"rules"`
	// Scale and Type are set only by pyramid sessions: the downsample
	// factor of the scale that fired and the live anomaly-type tag.
	// Plain-model sessions keep their pre-pyramid response shape.
	Scale int    `json:"scale,omitempty"`
	Type  string `json:"type,omitempty"`
}

type pushPointsResponse struct {
	Detections     []streamDetection `json:"detections"`
	PointsConsumed int               `json:"points_consumed"`
	Ready          bool              `json:"ready"`
}

func (s *Server) handlePushPoints(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("id"))
		return
	}
	// Like batch detect, point pushes use the hand-rolled hot-path codec
	// (fastjson.go): live feeds push numeric payloads at high rates.
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	req, err := parsePushPoints(body)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "points must be non-empty")
		return
	}
	dets, consumed, ready := sess.Push(r.Context(), req.Points)
	resp := pushPointsResponse{
		Detections:     make([]streamDetection, len(dets)),
		PointsConsumed: consumed,
		Ready:          ready,
	}
	typeCounts := map[string]uint64{}
	for i, d := range dets {
		resp.Detections[i] = streamDetection{
			WindowStart: d.WindowStart,
			WindowEnd:   d.WindowEnd,
			Rules:       firedRules(d.Fired),
			Scale:       d.Scale,
			Type:        string(d.Type),
		}
		if d.Type != "" {
			typeCounts[string(d.Type)]++
		}
	}
	for typ, n := range typeCounts {
		s.tel.anomalyTypes.With(sess.Model, typ).Add(n)
	}
	stats.Add("detections", int64(len(dets)))
	s.tel.streamDetections.Add(uint64(len(dets)))
	bp := respBufPool.Get().(*[]byte)
	buf := appendPushPointsResponse((*bp)[:0], resp)
	writeRawJSON(w, http.StatusOK, buf)
	*bp = buf[:0]
	respBufPool.Put(bp)
}

func (s *Server) handleResetStream(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("id"))
		return
	}
	sess.Reset()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDeleteStream(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.Delete(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
