package bayesopt

import (
	"math"
	"testing"
	"testing/quick"
)

func quadratic(x []int) float64 {
	// Maximum at (7, 13).
	dx := float64(x[0] - 7)
	dy := float64(x[1] - 13)
	return 100 - dx*dx - dy*dy
}

var space2D = Space{{Name: "a", Min: 0, Max: 20}, {Name: "b", Min: 0, Max: 20}}

func TestMaximizeFindsQuadraticOptimum(t *testing.T) {
	res, err := Maximize(quadratic, space2D, Options{Seed: 1, InitPoints: 8, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue < 99 { // within distance 1 of the optimum
		t.Errorf("best value %v at %v, want >= 99", res.BestValue, res.Best)
	}
}

func TestMaximizeBeatsRandomOnBudget(t *testing.T) {
	// With the same evaluation budget, BO should find at least as good a
	// point as random search on a smooth function (averaged over seeds).
	var boWins, ties, total int
	for seed := int64(0); seed < 10; seed++ {
		bo, err := Maximize(quadratic, space2D, Options{Seed: seed, InitPoints: 5, Iterations: 20})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := RandomSearch(quadratic, space2D, 25, seed)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case bo.BestValue > rs.BestValue:
			boWins++
		case bo.BestValue == rs.BestValue:
			ties++
		}
		total++
	}
	if boWins+ties < total/2 {
		t.Errorf("BO won or tied only %d/%d runs against random search", boWins+ties, total)
	}
}

func TestMaximizeDeterministic(t *testing.T) {
	r1, err := Maximize(quadratic, space2D, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Maximize(quadratic, space2D, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestValue != r2.BestValue || len(r1.History) != len(r2.History) {
		t.Error("runs with the same seed differ")
	}
	for i := range r1.History {
		if r1.History[i].Y != r2.History[i].Y {
			t.Fatal("histories differ")
		}
	}
}

func TestMaximizeNeverRepeatsConfigurations(t *testing.T) {
	calls := make(map[[2]int]int)
	f := func(x []int) float64 {
		calls[[2]int{x[0], x[1]}]++
		return quadratic(x)
	}
	if _, err := Maximize(f, space2D, Options{Seed: 3, InitPoints: 10, Iterations: 30}); err != nil {
		t.Fatal(err)
	}
	for cfg, n := range calls {
		if n > 1 {
			t.Errorf("configuration %v evaluated %d times", cfg, n)
		}
	}
}

func TestMaximizeExhaustsSmallGrid(t *testing.T) {
	small := Space{{Name: "x", Min: 0, Max: 2}}
	res, err := Maximize(func(x []int) float64 { return float64(x[0]) }, small, Options{Seed: 1, InitPoints: 2, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > 3 {
		t.Errorf("evaluated %d cells of a 3-cell grid", res.Evaluations)
	}
	if res.Best[0] != 2 {
		t.Errorf("best = %v, want [2]", res.Best)
	}
}

func TestMaximizeBestMatchesHistory(t *testing.T) {
	res, err := Maximize(quadratic, space2D, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	max := math.Inf(-1)
	for _, s := range res.History {
		if s.Y > max {
			max = s.Y
		}
	}
	if res.BestValue != max {
		t.Errorf("BestValue %v != history max %v", res.BestValue, max)
	}
}

func TestGridSearchExact(t *testing.T) {
	res, err := GridSearch(quadratic, space2D)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 100 || res.Best[0] != 7 || res.Best[1] != 13 {
		t.Errorf("grid best = %v at %v", res.BestValue, res.Best)
	}
	if res.Evaluations != space2D.Size() {
		t.Errorf("evaluated %d, want %d", res.Evaluations, space2D.Size())
	}
}

func TestRandomSearchBudget(t *testing.T) {
	res, err := RandomSearch(quadratic, space2D, 17, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 17 {
		t.Errorf("evaluated %d, want 17", res.Evaluations)
	}
}

func TestSpaceValidate(t *testing.T) {
	if err := (Space{}).Validate(); err == nil {
		t.Error("empty space accepted")
	}
	if err := (Space{{Name: "x", Min: 5, Max: 3}}).Validate(); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := Maximize(quadratic, Space{}, Options{}); err == nil {
		t.Error("Maximize accepted empty space")
	}
	if _, err := GridSearch(quadratic, Space{}); err == nil {
		t.Error("GridSearch accepted empty space")
	}
	if _, err := RandomSearch(quadratic, Space{}, 5, 1); err == nil {
		t.Error("RandomSearch accepted empty space")
	}
}

func TestSpaceSizeAndEnumerate(t *testing.T) {
	s := Space{{Name: "x", Min: 1, Max: 3}, {Name: "y", Min: 0, Max: 1}}
	if s.Size() != 6 {
		t.Errorf("size = %d", s.Size())
	}
	cells := s.enumerate()
	if len(cells) != 6 {
		t.Fatalf("enumerated %d cells", len(cells))
	}
	seen := make(map[[2]int]bool)
	for _, c := range cells {
		seen[[2]int{c[0], c[1]}] = true
	}
	if len(seen) != 6 {
		t.Error("enumeration has duplicates")
	}
}

func TestNormalize(t *testing.T) {
	s := Space{{Name: "x", Min: 10, Max: 20}, {Name: "y", Min: 5, Max: 5}}
	n := s.normalize([]int{15, 5})
	if n[0] != 0.5 || n[1] != 0 {
		t.Errorf("normalize = %v", n)
	}
}

func TestCholeskySolveRoundTrip(t *testing.T) {
	// A = [[4,2],[2,3]] is SPD.
	a := []float64{4, 2, 2, 3}
	l, err := cholesky(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Solve A x = b for b = [8, 7]: x = LLᵀ \ b.
	y := solveLower(l, 2, []float64{8, 7})
	x := solveUpperT(l, 2, y)
	// Check A·x == b.
	b0 := 4*x[0] + 2*x[1]
	b1 := 2*x[0] + 3*x[1]
	if math.Abs(b0-8) > 1e-9 || math.Abs(b1-7) > 1e-9 {
		t.Errorf("solve wrong: A·x = [%v %v]", b0, b1)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := []float64{1, 2, 2, 1} // eigenvalues 3, -1
	if _, err := cholesky(a, 2); err == nil {
		t.Error("indefinite matrix accepted")
	}
}

func TestCholeskyPropertyReconstruction(t *testing.T) {
	f := func(v1, v2, v3 float64) bool {
		if math.IsNaN(v1) || math.IsNaN(v2) || math.IsNaN(v3) {
			return true
		}
		// Build SPD matrix A = MᵀM + I from a random 2x2 M.
		m := []float64{math.Mod(v1, 3), math.Mod(v2, 3), math.Mod(v3, 3), 1}
		a := make([]float64, 4)
		a[0] = m[0]*m[0] + m[2]*m[2] + 1
		a[1] = m[0]*m[1] + m[2]*m[3]
		a[2] = a[1]
		a[3] = m[1]*m[1] + m[3]*m[3] + 1
		l, err := cholesky(a, 2)
		if err != nil {
			return false
		}
		// L·Lᵀ must reconstruct A.
		r00 := l[0] * l[0]
		r01 := l[0] * l[2]
		r11 := l[2]*l[2] + l[3]*l[3]
		return math.Abs(r00-a[0]) < 1e-9 && math.Abs(r01-a[1]) < 1e-9 && math.Abs(r11-a[3]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormCDFBasics(t *testing.T) {
	if math.Abs(normCDF(0)-0.5) > 1e-12 {
		t.Error("CDF(0) != 0.5")
	}
	if normCDF(10) < 0.999999 || normCDF(-10) > 1e-6 {
		t.Error("CDF tails wrong")
	}
	if math.Abs(normPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Error("PDF(0) wrong")
	}
}

func TestGPInterpolatesTrainingPoints(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{1, 3, 2}
	g := fitGP(xs, ys, 0.2, 1e-4)
	for i, x := range xs {
		mu, sigma := g.predict(x)
		if math.Abs(mu-ys[i]) > 0.05 {
			t.Errorf("GP mean at training point %d: %v, want %v", i, mu, ys[i])
		}
		if sigma > 0.1 {
			t.Errorf("GP sigma at training point %d too large: %v", i, sigma)
		}
	}
}

func TestGPUncertaintyGrowsAwayFromData(t *testing.T) {
	xs := [][]float64{{0}, {0.1}}
	ys := []float64{1, 1.1}
	g := fitGP(xs, ys, 0.1, 1e-4)
	_, near := g.predict([]float64{0.05})
	_, far := g.predict([]float64{0.9})
	if far <= near {
		t.Errorf("sigma near=%v far=%v; want far > near", near, far)
	}
}

func TestGPConstantTargets(t *testing.T) {
	xs := [][]float64{{0}, {1}}
	ys := []float64{2, 2}
	g := fitGP(xs, ys, 0.2, 1e-4)
	mu, _ := g.predict([]float64{0.5})
	if math.Abs(mu-2) > 0.01 {
		t.Errorf("constant GP mean = %v, want 2", mu)
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	xs := [][]float64{{0}, {1}}
	ys := []float64{0, 1}
	g := fitGP(xs, ys, 0.3, 1e-4)
	// EI is non-negative everywhere.
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if ei := g.expectedImprovement([]float64{x}, 1, 0.01); ei < 0 {
			t.Errorf("EI(%v) = %v < 0", x, ei)
		}
	}
	// EI at a known training point with no uncertainty is ~0.
	if ei := g.expectedImprovement([]float64{1}, 1, 0.01); ei > 0.05 {
		t.Errorf("EI at best training point = %v, want ~0", ei)
	}
}

func TestResultHistoryRecordsEverything(t *testing.T) {
	res, err := Maximize(quadratic, space2D, Options{Seed: 9, InitPoints: 4, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Evaluations {
		t.Errorf("history %d != evaluations %d", len(res.History), res.Evaluations)
	}
	if res.Evaluations != 10 {
		t.Errorf("evaluations = %d, want 10", res.Evaluations)
	}
}

func TestLogMarginalLikelihoodPrefersMatchingScale(t *testing.T) {
	// Data generated from a smooth function: a long lengthscale should
	// fit it better than an absurdly short one.
	xs := make([][]float64, 15)
	ys := make([]float64, 15)
	for i := range xs {
		x := float64(i) / 14
		xs[i] = []float64{x}
		ys[i] = math.Sin(3 * x)
	}
	long := fitGP(xs, ys, 0.4, 1e-3)
	short := fitGP(xs, ys, 0.01, 1e-3)
	if long.logMarginalLikelihood(ys) <= short.logMarginalLikelihood(ys) {
		t.Error("LML does not prefer the smoother model on smooth data")
	}
}

func TestFitGPAutoSelectsUsableModel(t *testing.T) {
	xs := [][]float64{{0}, {0.3}, {0.6}, {1}}
	ys := []float64{0, 0.5, 0.8, 1}
	g := fitGPAuto(xs, ys, 1e-3)
	if g == nil {
		t.Fatal("no model selected")
	}
	mu, _ := g.predict([]float64{0.3})
	if math.Abs(mu-0.5) > 0.2 {
		t.Errorf("auto GP mean at training point = %v", mu)
	}
}

func TestMaximizeAutoLengthScale(t *testing.T) {
	// LengthScale 0 (auto) must still find the optimum.
	res, err := Maximize(quadratic, space2D, Options{Seed: 4, InitPoints: 8, Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue < 99 {
		t.Errorf("auto-lengthscale best = %v at %v", res.BestValue, res.Best)
	}
}

func TestMaximizeUCBAcquisition(t *testing.T) {
	res, err := Maximize(quadratic, space2D, Options{Seed: 6, InitPoints: 8, Iterations: 40, Acquisition: UCB})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue < 98 {
		t.Errorf("UCB best = %v at %v", res.BestValue, res.Best)
	}
	if EI.String() != "ei" || UCB.String() != "ucb" {
		t.Error("acquisition names wrong")
	}
}

func TestUpperConfidenceBound(t *testing.T) {
	xs := [][]float64{{0}, {1}}
	ys := []float64{0, 1}
	g := fitGP(xs, ys, 0.3, 1e-4)
	// UCB at an uncertain point exceeds its mean.
	mu, sigma := g.predict([]float64{0.5})
	if sigma <= 0 {
		t.Fatal("no uncertainty at midpoint")
	}
	if ucb := g.upperConfidenceBound([]float64{0.5}, 2); ucb <= mu {
		t.Errorf("UCB %v <= mean %v", ucb, mu)
	}
}
