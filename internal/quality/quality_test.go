package quality

import (
	"math"
	"testing"
	"testing/quick"

	"cdt/internal/core"
	"cdt/internal/engine"
	"cdt/internal/pattern"
	"cdt/internal/rules"
)

var cfg2 = pattern.NewConfig(2)

func lbl(v pattern.Variation, a, b int) pattern.Label {
	return pattern.Label{Var: v, Alpha: pattern.Interval(a), Beta: pattern.Interval(b)}
}

var (
	la = lbl(pattern.PP, 1, 2)
	lb = lbl(pattern.PN, -2, -1)
	lc = lbl(pattern.SCP, 1, 0)
)

func comp(labels ...pattern.Label) core.Composition {
	return core.Composition{Labels: labels}
}

func TestInterpretabilityFormula(t *testing.T) {
	// I(c) = 1 − (L_c · N_L)/(ω · MaxL); for c of length 2 with 2 unique
	// labels, ω=10, MaxL=25: I = 1 − 4/250.
	c := comp(la, lb)
	got := Interpretability(c, 10, 25)
	want := 1 - 4.0/250
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("I(c) = %v, want %v", got, want)
	}
}

func TestInterpretabilityRepeatedLabels(t *testing.T) {
	// Repeated labels reduce N_L, improving interpretability.
	same := comp(la, la, la)
	varied := comp(la, lb, lc)
	if Interpretability(same, 10, 25) <= Interpretability(varied, 10, 25) {
		t.Error("repeated-label composition should score higher")
	}
}

func TestInterpretabilityShorterIsBetter(t *testing.T) {
	short := comp(la)
	long := comp(la, lb, lc)
	if Interpretability(short, 10, 25) <= Interpretability(long, 10, 25) {
		t.Error("shorter composition should score higher")
	}
}

func TestInterpretabilityDegenerate(t *testing.T) {
	if Interpretability(comp(la), 0, 25) != 0 {
		t.Error("omega 0 should give 0")
	}
	if Interpretability(comp(la), 10, 0) != 0 {
		t.Error("maxLabels 0 should give 0")
	}
}

func TestInterpretabilityBoundsProperty(t *testing.T) {
	alphabet := cfg2.Alphabet()
	f := func(lenRaw, omegaRaw uint8) bool {
		n := int(lenRaw%10) + 1
		omega := int(omegaRaw%31) + 1
		labels := make([]pattern.Label, n)
		for i := range labels {
			labels[i] = alphabet[(int(lenRaw)+i*7)%len(alphabet)]
		}
		v := Interpretability(core.Composition{Labels: labels}, omega, cfg2.AlphabetSize())
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPredicateQualityAveraging(t *testing.T) {
	p := rules.Predicate{Literals: []rules.Literal{
		{Comp: comp(la)},
		{Comp: comp(la, lb), Neg: true},
	}}
	want := (Interpretability(comp(la), 10, 25) + Interpretability(comp(la, lb), 10, 25)) / 2
	if got := PredicateQuality(p, 10, 25); math.Abs(got-want) > 1e-12 {
		t.Errorf("M = %v, want %v", got, want)
	}
	if PredicateQuality(rules.Predicate{}, 10, 25) != 0 {
		t.Error("empty predicate should have quality 0")
	}
}

func makeObs(labels [][]pattern.Label, classes []core.Class) []core.Observation {
	obs := make([]core.Observation, len(labels))
	for i := range labels {
		obs[i] = core.Observation{Labels: labels[i], Class: classes[i]}
	}
	return obs
}

// sweep compiles the rule's engine and matches the observations — the
// marks every Evaluate caller provides.
func sweep(r rules.Rule, obs []core.Observation, omega int) *engine.Marks {
	return engine.Compile(r, omega).SweepObservations(obs)
}

func TestEvaluatePerfectRule(t *testing.T) {
	// Rule: [la] → anomaly. Obs: two anomalous with la, two normal without.
	r := rules.Rule{Predicates: []rules.Predicate{
		{Literals: []rules.Literal{{Comp: comp(la)}}},
	}}
	obs := makeObs(
		[][]pattern.Label{{la, lb}, {lc, la}, {lb, lc}, {lc, lb}},
		[]core.Class{core.Anomaly, core.Anomaly, core.Normal, core.Normal},
	)
	rep := Evaluate(r, obs, sweep(r, obs, 2), 2, 25)
	if rep.F1() != 1 {
		t.Errorf("F1 = %v, want 1", rep.F1())
	}
	if rep.PredicateSupports[0] != 2 {
		t.Errorf("support = %d, want 2", rep.PredicateSupports[0])
	}
	// Q = (1/S)·ΣS_Rs·M = (2·M)/4 where S = TP+TN = 4.
	wantQ := 2 * rep.PredicateQualities[0] / 4
	if math.Abs(rep.Q-wantQ) > 1e-12 {
		t.Errorf("Q = %v, want %v", rep.Q, wantQ)
	}
	if math.Abs(rep.Objective()-rep.F1()*rep.Q) > 1e-12 {
		t.Error("objective != F1*Q")
	}
}

func TestEvaluateAttributesToFirstMatch(t *testing.T) {
	r := rules.Rule{Predicates: []rules.Predicate{
		{Literals: []rules.Literal{{Comp: comp(la)}}},
		{Literals: []rules.Literal{{Comp: comp(lb)}}},
	}}
	// One anomalous observation matching both predicates.
	obs := makeObs(
		[][]pattern.Label{{la, lb}},
		[]core.Class{core.Anomaly},
	)
	rep := Evaluate(r, obs, sweep(r, obs, 2), 2, 25)
	if rep.PredicateSupports[0] != 1 || rep.PredicateSupports[1] != 0 {
		t.Errorf("supports = %v, want [1 0]", rep.PredicateSupports)
	}
}

func TestEvaluateNoCorrectClassifications(t *testing.T) {
	r := rules.Rule{Predicates: []rules.Predicate{
		{Literals: []rules.Literal{{Comp: comp(la)}}},
	}}
	// Rule matches the normal obs and misses the anomalous one: S = 0.
	obs := makeObs(
		[][]pattern.Label{{la}, {lb}},
		[]core.Class{core.Normal, core.Anomaly},
	)
	rep := Evaluate(r, obs, sweep(r, obs, 1), 1, 25)
	if rep.Q != 0 {
		t.Errorf("Q = %v, want 0", rep.Q)
	}
	if rep.F1() != 0 {
		t.Errorf("F1 = %v, want 0", rep.F1())
	}
}

func TestEvaluateQBounds(t *testing.T) {
	// Q is a support-weighted mean of [0,1] qualities divided by S >= ΣS_Rs,
	// so Q ∈ [0,1].
	r := rules.Rule{Predicates: []rules.Predicate{
		{Literals: []rules.Literal{{Comp: comp(la)}}},
		{Literals: []rules.Literal{{Comp: comp(lb, lc)}}},
	}}
	obs := makeObs(
		[][]pattern.Label{{la, lb}, {lb, lc}, {lc, la}, {lb, la}},
		[]core.Class{core.Anomaly, core.Anomaly, core.Normal, core.Anomaly},
	)
	rep := Evaluate(r, obs, sweep(r, obs, 2), 2, 25)
	if rep.Q < 0 || rep.Q > 1 {
		t.Errorf("Q = %v out of [0,1]", rep.Q)
	}
}

func TestEvaluateGeneric(t *testing.T) {
	truth := []bool{true, true, false, false}
	preds := []GenericPredicate{
		{Length: 2, UniqueValues: 2, Matches: func(i int) bool { return i == 0 || i == 1 }},
	}
	rep := EvaluateGeneric(preds, len(truth), func(i int) bool { return truth[i] }, false, 10, 25)
	if rep.F1() != 1 {
		t.Errorf("F1 = %v, want 1", rep.F1())
	}
	wantM := 1 - 4.0/250
	if math.Abs(rep.PredicateQualities[0]-wantM) > 1e-12 {
		t.Errorf("quality = %v, want %v", rep.PredicateQualities[0], wantM)
	}
	if rep.PredicateSupports[0] != 2 {
		t.Errorf("support = %d", rep.PredicateSupports[0])
	}
}

func TestEvaluateGenericDefaultPositive(t *testing.T) {
	truth := []bool{true, false}
	rep := EvaluateGeneric(nil, 2, func(i int) bool { return truth[i] }, true, 10, 25)
	// Everything predicted positive: TP=1, FP=1.
	if rep.Confusion.TP != 1 || rep.Confusion.FP != 1 {
		t.Errorf("confusion = %+v", rep.Confusion)
	}
}

func TestEvaluateGenericQualityClamped(t *testing.T) {
	preds := []GenericPredicate{
		{Length: 100, UniqueValues: 100, Matches: func(i int) bool { return true }},
	}
	rep := EvaluateGeneric(preds, 1, func(i int) bool { return true }, false, 3, 25)
	if rep.PredicateQualities[0] != 0 {
		t.Errorf("quality = %v, want clamp to 0", rep.PredicateQualities[0])
	}
}
