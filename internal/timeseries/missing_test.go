package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var nan = math.NaN()

func TestMissingCount(t *testing.T) {
	s := New("s", []float64{1, nan, 3, nan})
	if got := s.MissingCount(); got != 2 {
		t.Errorf("MissingCount = %d", got)
	}
}

func TestRepairLinearInterior(t *testing.T) {
	s := New("s", []float64{1, nan, nan, 4})
	out, err := Repair(s, FillLinear)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if math.Abs(out.Values[i]-want[i]) > 1e-12 {
			t.Errorf("Values[%d] = %v, want %v", i, out.Values[i], want[i])
		}
	}
	// Input untouched.
	if !math.IsNaN(s.Values[1]) {
		t.Error("Repair mutated the input")
	}
}

func TestRepairLinearEdges(t *testing.T) {
	s := New("s", []float64{nan, nan, 5, 7, nan})
	out, err := Repair(s, FillLinear)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 5, 5, 7, 7}
	for i := range want {
		if out.Values[i] != want[i] {
			t.Errorf("Values[%d] = %v, want %v", i, out.Values[i], want[i])
		}
	}
}

func TestRepairPrevious(t *testing.T) {
	s := New("s", []float64{nan, 2, nan, nan, 5})
	out, err := Repair(s, FillPrevious)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 2, 2, 2, 5}
	for i := range want {
		if out.Values[i] != want[i] {
			t.Errorf("Values[%d] = %v, want %v", i, out.Values[i], want[i])
		}
	}
}

func TestRepairErrors(t *testing.T) {
	if _, err := Repair(New("s", nil), FillLinear); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := Repair(New("s", []float64{nan, nan}), FillLinear); err == nil {
		t.Error("all-missing series accepted")
	}
	if _, err := Repair(New("s", []float64{1}), FillPolicy(99)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRepairPreservesAnomalies(t *testing.T) {
	s := NewLabeled("s", []float64{1, nan, 3}, []bool{false, true, false})
	out, err := Repair(s, FillLinear)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Anomalies[1] {
		t.Error("anomaly flag lost")
	}
}

// Repair never leaves NaN behind and never changes present values.
func TestRepairProperty(t *testing.T) {
	f := func(seed int64, policyRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		values := make([]float64, n)
		anyPresent := false
		for i := range values {
			if rng.Intn(3) == 0 {
				values[i] = nan
			} else {
				values[i] = rng.Float64() * 10
				anyPresent = true
			}
		}
		if !anyPresent {
			values[0] = 1
		}
		orig := append([]float64(nil), values...)
		policy := FillPolicy(policyRaw % 2)
		out, err := Repair(New("p", values), policy)
		if err != nil {
			return false
		}
		for i, v := range out.Values {
			if math.IsNaN(v) {
				return false
			}
			if !math.IsNaN(orig[i]) && v != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Linear interpolation stays within the bounds of its anchors.
func TestRepairLinearBounded(t *testing.T) {
	s := New("s", []float64{2, nan, nan, nan, 8})
	out, err := Repair(s, FillLinear)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Values {
		if v < 2 || v > 8 {
			t.Errorf("Values[%d] = %v escapes anchors", i, v)
		}
	}
	// Monotone between the monotone anchors.
	for i := 1; i < len(out.Values); i++ {
		if out.Values[i] < out.Values[i-1] {
			t.Error("interpolation not monotone between monotone anchors")
		}
	}
}

func TestFillPolicyString(t *testing.T) {
	if FillLinear.String() != "linear" || FillPrevious.String() != "previous" {
		t.Error("policy names wrong")
	}
}
