// Package pattern implements the paper's point-labeling alphabet (§3.2):
// every interior point of a normalized time-series is labeled by the
// variation of its two neighbors, refined by magnitude intervals.
//
// For three successive points x[i-1], x[i], x[i+1] the two signed
// differences α = x[i]-x[i-1] and β = x[i]-x[i+1] select one of nine
// variation types (Table 1): PP, PN, SCP, SCN, ECP, ECN, CST, VP, VN.
// The hyper-parameter δ splits ]0,1] and [-1,0[ into δ equal sub-intervals
// each, producing 2δ+1 magnitude codes; each label is the variation type
// plus the two magnitude codes of α and β.
package pattern

import (
	"fmt"
	"math"
	"strings"
)

// Variation is one of the nine neighbor-shape types of Table 1.
type Variation uint8

// The nine variation types. Values are stable and compact so Label can be
// used as a map key and serialized.
const (
	// PP is a positive peak: x[i-1] < x[i] > x[i+1].
	PP Variation = iota
	// PN is a negative peak: x[i-1] > x[i] < x[i+1].
	PN
	// SCP starts a constant segment after a rise: x[i-1] < x[i] = x[i+1].
	SCP
	// SCN starts a constant segment after a fall: x[i-1] > x[i] = x[i+1].
	SCN
	// ECP ends a constant segment with a rise: x[i-1] = x[i] < x[i+1].
	ECP
	// ECN ends a constant segment with a fall: x[i-1] = x[i] > x[i+1].
	ECN
	// CST is a constant run: x[i-1] = x[i] = x[i+1].
	CST
	// VP is a positive (rising) variation: x[i-1] < x[i] < x[i+1].
	VP
	// VN is a negative (falling) variation: x[i-1] > x[i] > x[i+1].
	VN

	numVariations = 9
)

var variationNames = [numVariations]string{"PP", "PN", "SCP", "SCN", "ECP", "ECN", "CST", "VP", "VN"}

// String returns the paper's name for the variation (PP, PN, ...).
func (v Variation) String() string {
	if int(v) < len(variationNames) {
		return variationNames[v]
	}
	return fmt.Sprintf("Variation(%d)", uint8(v))
}

// ParseVariation converts a name such as "PP" back to its Variation.
func ParseVariation(s string) (Variation, error) {
	for i, n := range variationNames {
		if n == s {
			return Variation(i), nil
		}
	}
	return 0, fmt.Errorf("pattern: unknown variation %q", s)
}

// Variations lists all nine variation types in Table 1 order.
func Variations() []Variation {
	out := make([]Variation, numVariations)
	for i := range out {
		out[i] = Variation(i)
	}
	return out
}

// Interval is a signed magnitude code: 0 is the exact-zero interval Z,
// +k (1 ≤ k ≤ δ) is the k-th sub-interval of ]0,1], and −k the k-th
// sub-interval of [-1,0[ counting away from zero. With δ=2 the paper's
// names apply: +1=L, +2=H, −1=-L, −2=-H, 0=Z.
type Interval int8

// Name renders an interval code using the paper's δ=2 nomenclature when
// delta == 2 (L, H, -L, -H, Z) and a generic ±k/δ form otherwise.
func (iv Interval) Name(delta int) string {
	switch {
	case iv == 0:
		return "Z"
	case delta == 2 && iv == 1:
		return "L"
	case delta == 2 && iv == 2:
		return "H"
	case delta == 2 && iv == -1:
		return "-L"
	case delta == 2 && iv == -2:
		return "-H"
	case iv > 0:
		return fmt.Sprintf("P%d", iv)
	default:
		return fmt.Sprintf("N%d", -iv)
	}
}

// Label is a pattern instance (Definition 2): a variation type plus the
// magnitude interval codes of the two differences α = x[i]-x[i-1] and
// β = x[i]-x[i+1]. Label is comparable and usable as a map key.
type Label struct {
	Var   Variation
	Alpha Interval
	Beta  Interval
}

// String renders the label as e.g. "PP[L,H]" (δ=2 names are only used by
// Name, so String uses the generic codes; see Config.LabelName for the
// δ-aware rendering).
func (l Label) String() string {
	return fmt.Sprintf("%s[%d,%d]", l.Var, l.Alpha, l.Beta)
}

// Config controls labeling.
type Config struct {
	// Delta is the paper's δ: the number of equal sub-intervals that
	// ]0,1] and [-1,0[ are each divided into. Must be >= 1.
	Delta int
	// Epsilon is the tolerance below which a difference is treated as
	// zero ("x[i-1] = x[i]"). Normalization introduces rounding error, so
	// exact equality would almost never fire on real data. Zero means
	// exact comparison.
	Epsilon float64
}

// DefaultEpsilon is the equality tolerance used by NewConfig.
const DefaultEpsilon = 1e-9

// NewConfig returns a Config for the given δ with the default tolerance.
func NewConfig(delta int) Config { return Config{Delta: delta, Epsilon: DefaultEpsilon} }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Delta < 1 {
		return fmt.Errorf("pattern: delta %d, want >= 1", c.Delta)
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("pattern: epsilon %v, want >= 0", c.Epsilon)
	}
	return nil
}

// AlphabetSize returns the number of distinct labels expressible with this
// δ: four variation types with δ² (α,β) combinations each (PP, PN, VP,
// VN), four with δ (SCP, SCN, ECP, ECN), and CST — in total
// 4δ²+4δ+1 = (2δ+1)². This is MaxL in the interpretability measure I(c).
func (c Config) AlphabetSize() int {
	n := 2*c.Delta + 1
	return n * n
}

// Classify returns the magnitude interval code of a difference value in
// [-1,1]. Differences within Epsilon of zero map to the Z interval; the
// remainder of ]0,1] is split into Delta equal sub-intervals (and
// symmetrically for negatives). Values outside [-1,1] are clamped to the
// outermost interval, so labeling never fails on slightly out-of-range
// input.
func (c Config) Classify(diff float64) Interval {
	if diff >= -c.Epsilon && diff <= c.Epsilon {
		return 0
	}
	neg := diff < 0
	if neg {
		diff = -diff
	}
	// k-th sub-interval of ]0,1]: ]((k-1)/δ, k/δ], i.e. k = ⌈diff·δ⌉.
	// An exact boundary such as 0.5 with δ=2 belongs to the lower
	// interval (]0,0.5] per the paper's L = ]0,0.5]), which is what the
	// ceiling gives.
	f := diff * float64(c.Delta)
	k := int(f)
	if float64(k) != f {
		k++
	}
	if k < 1 {
		k = 1
	}
	if k > c.Delta {
		k = c.Delta
	}
	if neg {
		return Interval(-k)
	}
	return Interval(k)
}

// LabelPoint labels the middle point of three successive values,
// returning the variation type selected by the signs of
// α = mid−prev and β = mid−next, refined by their magnitude intervals.
func (c Config) LabelPoint(prev, mid, next float64) Label {
	alpha := c.Classify(mid - prev)
	beta := c.Classify(mid - next)
	return Label{Var: variationOf(alpha, beta), Alpha: alpha, Beta: beta}
}

// variationOf selects the variation type from the signs of α and β.
func variationOf(alpha, beta Interval) Variation {
	switch {
	case alpha > 0 && beta > 0:
		return PP
	case alpha < 0 && beta < 0:
		return PN
	case alpha > 0 && beta == 0:
		return SCP
	case alpha < 0 && beta == 0:
		return SCN
	case alpha == 0 && beta < 0:
		return ECP
	case alpha == 0 && beta > 0:
		return ECN
	case alpha == 0 && beta == 0:
		return CST
	case alpha > 0 && beta < 0:
		return VP
	default: // alpha < 0 && beta > 0
		return VN
	}
}

// LabelSeries labels every interior point of values (Definition 3): the
// result has len(values)-2 labels, where label j corresponds to point
// j+1 of the input. It returns an error if the series has fewer than
// three points.
func (c Config) LabelSeries(values []float64) ([]Label, error) {
	var capacity int
	if len(values) > 2 {
		capacity = len(values) - 2
	}
	out, err := c.LabelSeriesInto(make([]Label, 0, capacity), values)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LabelSeriesInto appends the labels of every interior point of values to
// dst and returns the extended slice, allocating only when dst lacks
// capacity. Callers that relabel repeatedly — cache refills, pooled
// multi-series labelings — supply one pre-sized backing array and label
// many series into it without per-series garbage. On error dst is
// returned unchanged.
func (c Config) LabelSeriesInto(dst []Label, values []float64) ([]Label, error) {
	if err := c.Validate(); err != nil {
		return dst, err
	}
	if len(values) < 3 {
		return dst, fmt.Errorf("pattern: series of length %d, want >= 3", len(values))
	}
	// Point i's β is Classify(vᵢ−vᵢ₊₁) = −Classify(vᵢ₊₁−vᵢ) — Classify is
	// odd, and negating an (exact) IEEE difference is exact — so each
	// consecutive pair is classified once and serves as point i+1's α and
	// point i's −β, halving the classifier work of the batch labeler.
	alpha := c.Classify(values[1] - values[0])
	for i := 1; i < len(values)-1; i++ {
		next := c.Classify(values[i+1] - values[i])
		beta := -next
		dst = append(dst, Label{Var: variationOf(alpha, beta), Alpha: alpha, Beta: beta})
		alpha = next
	}
	return dst, nil
}

// LabelName renders a label with δ-aware interval names, e.g. "PP[L,H]"
// for δ=2 or "PP[P1,P3]" for larger δ.
func (c Config) LabelName(l Label) string {
	return fmt.Sprintf("%s[%s,%s]", l.Var, l.Alpha.Name(c.Delta), l.Beta.Name(c.Delta))
}

// ParseLabel parses the output of LabelName back into a Label. It accepts
// both δ=2 names (L, H, -L, -H, Z) and generic codes (P1, N3, Z).
func (c Config) ParseLabel(s string) (Label, error) {
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return Label{}, fmt.Errorf("pattern: malformed label %q", s)
	}
	v, err := ParseVariation(s[:open])
	if err != nil {
		return Label{}, err
	}
	parts := strings.Split(s[open+1:len(s)-1], ",")
	if len(parts) != 2 {
		return Label{}, fmt.Errorf("pattern: malformed label %q", s)
	}
	a, err := parseInterval(strings.TrimSpace(parts[0]))
	if err != nil {
		return Label{}, fmt.Errorf("pattern: label %q: %w", s, err)
	}
	b, err := parseInterval(strings.TrimSpace(parts[1]))
	if err != nil {
		return Label{}, fmt.Errorf("pattern: label %q: %w", s, err)
	}
	return Label{Var: v, Alpha: a, Beta: b}, nil
}

func parseInterval(s string) (Interval, error) {
	switch s {
	case "Z":
		return 0, nil
	case "L":
		return 1, nil
	case "H":
		return 2, nil
	case "-L":
		return -1, nil
	case "-H":
		return -2, nil
	}
	if len(s) >= 2 {
		var k int
		// k is bounded to math.MaxInt8 so both Interval(k) and
		// Interval(-k) stay representable; beyond that the int8
		// conversion would wrap and the label could not round-trip
		// through Name.
		switch s[0] {
		case 'P':
			if _, err := fmt.Sscanf(s[1:], "%d", &k); err == nil && k >= 1 && k <= math.MaxInt8 {
				return Interval(k), nil
			}
		case 'N':
			if _, err := fmt.Sscanf(s[1:], "%d", &k); err == nil && k >= 1 && k <= math.MaxInt8 {
				return Interval(-k), nil
			}
		}
	}
	return 0, fmt.Errorf("unknown interval %q", s)
}

// Valid reports whether a label is expressible under this configuration:
// interval codes within ±δ and signs consistent with the variation type
// per Table 1.
func (c Config) Valid(l Label) bool {
	d := Interval(c.Delta)
	if l.Alpha < -d || l.Alpha > d || l.Beta < -d || l.Beta > d {
		return false
	}
	switch l.Var {
	case PP:
		return l.Alpha > 0 && l.Beta > 0
	case PN:
		return l.Alpha < 0 && l.Beta < 0
	case SCP:
		return l.Alpha > 0 && l.Beta == 0
	case SCN:
		return l.Alpha < 0 && l.Beta == 0
	case ECP:
		return l.Alpha == 0 && l.Beta < 0
	case ECN:
		return l.Alpha == 0 && l.Beta > 0
	case CST:
		return l.Alpha == 0 && l.Beta == 0
	case VP:
		return l.Alpha > 0 && l.Beta < 0
	case VN:
		return l.Alpha < 0 && l.Beta > 0
	}
	return false
}

// Alphabet enumerates every valid label for this δ in a deterministic
// order (variation-major, then α, then β). len(result) == AlphabetSize().
func (c Config) Alphabet() []Label {
	var out []Label
	pos := make([]Interval, 0, c.Delta)
	neg := make([]Interval, 0, c.Delta)
	for k := 1; k <= c.Delta; k++ {
		pos = append(pos, Interval(k))
		neg = append(neg, Interval(-k))
	}
	zero := []Interval{0}
	ranges := func(v Variation) (alphas, betas []Interval) {
		switch v {
		case PP:
			return pos, pos
		case PN:
			return neg, neg
		case SCP:
			return pos, zero
		case SCN:
			return neg, zero
		case ECP:
			return zero, neg
		case ECN:
			return zero, pos
		case CST:
			return zero, zero
		case VP:
			return pos, neg
		default:
			return neg, pos
		}
	}
	for _, v := range Variations() {
		alphas, betas := ranges(v)
		for _, a := range alphas {
			for _, b := range betas {
				out = append(out, Label{Var: v, Alpha: a, Beta: b})
			}
		}
	}
	return out
}
