package server

// Per-rule attribution: which rule fired, per model, as bounded-
// cardinality metrics. The paper's detections are human-interpretable
// rules, so serving observability should say *which* rule is firing
// (and, for pyramids, which scale is slow), not just that detections
// happened.
//
// The metriclabel contract shapes everything here: rule labels are
// stable indices ("r3", or "x4.r2" for scale-qualified pyramid rules),
// never rendered rule text — text is unbounded, re-renders on retrain,
// and would mint a fresh child per wording. Children are resolved once
// per (model name, artifact) pair at artifact-change frequency (load,
// reload, promote) and cached; the scoring hot path indexes a slice and
// does lock-free atomic adds. A cap on the label space (maxRuleLabels)
// keeps cardinality bounded even for absurdly large rule sets — flat
// indices past the cap fold into one "other" child.

import (
	"strconv"
	"sync"

	cdt "cdt"
	"cdt/internal/telemetry"
)

// maxRuleLabels caps the per-model rule-label space. Real CDT rule sets
// hold a handful of predicates per scale; the cap is a cardinality
// backstop, not a working limit.
const maxRuleLabels = 128

// modelAttr carries one artifact's pre-resolved attribution
// instruments. All fields are immutable after build; the scoring fan-out
// reads them concurrently. A nil *modelAttr disables attribution (bare
// unit-test sessions) — every method tolerates it.
type modelAttr struct {
	// labels are the flat rule labels in stable order: "r<i>" for plain
	// models, "x<factor>.r<i>" for pyramid scales, both 1-based to match
	// RuleText numbering. Pre-rendered here so no hot path formats them.
	labels []string
	// ruleFired are the cdtserve_rule_fired_total children, aligned with
	// labels; the extra overflow child counts flat indices past the cap.
	ruleFired []*telemetry.Counter
	overflow  *telemetry.Counter

	// scaleOff maps a pyramid scale index to its flat label offset;
	// factorIdx maps a downsample factor to its scale index. Both nil
	// for plain models (flat index == rule index − 1).
	scaleOff  []int
	factorIdx map[int]int

	// scaleSweep are the cdtserve_scale_sweep_seconds children, one per
	// pyramid scale; nil for plain models.
	scaleSweep []*telemetry.Histogram
}

// attribution caches one modelAttr per registry name, rebuilt when the
// artifact serving under the name changes (reload, promote, rollback —
// interface pointer identity is the change signal).
type attribution struct {
	tel *serverMetrics

	mu sync.RWMutex
	m  map[string]*attrEntry
}

type attrEntry struct {
	art  cdt.Artifact
	attr *modelAttr
}

func newAttribution(tel *serverMetrics) *attribution {
	return &attribution{tel: tel, m: make(map[string]*attrEntry)}
}

// forModel returns name's attribution instruments, building them on the
// first request after the serving artifact changed. The fast path is a
// read-locked map hit; the build path resolves telemetry children at
// artifact-change frequency.
func (a *attribution) forModel(name string, art cdt.Artifact) *modelAttr {
	a.mu.RLock()
	e := a.m[name]
	a.mu.RUnlock()
	if e != nil && e.art == art {
		return e.attr
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if e := a.m[name]; e != nil && e.art == art {
		return e.attr
	}
	attr := buildModelAttr(a.tel, name, art)
	a.m[name] = &attrEntry{art: art, attr: attr}
	return attr
}

// buildModelAttr pre-renders the bounded rule-label table and resolves
// every telemetry child for one artifact. Runs under the attribution
// mutex at artifact-change frequency (one build per load/reload/promote
// per model), never per observation.
func buildModelAttr(tel *serverMetrics, name string, art cdt.Artifact) *modelAttr {
	info := art.Info()
	attr := &modelAttr{
		overflow: tel.ruleFired.With(name, "other"),
	}
	if len(info.Scales) > 0 {
		attr.scaleOff = make([]int, len(info.Scales))
		attr.factorIdx = make(map[int]int, len(info.Scales))
		attr.scaleSweep = make([]*telemetry.Histogram, len(info.Scales))
		off := 0
		for i, f := range info.Scales {
			attr.scaleOff[i] = off
			attr.factorIdx[f] = i
			if i < len(info.ScaleRules) {
				off += info.ScaleRules[i]
			}
			scale := "x" + strconv.Itoa(f)
			//cdtlint:ignore metriclabel resolved once per (model, artifact) under the attribution cache mutex, bounded by maxPyramidScales; scoring only Observes the cached child
			attr.scaleSweep[i] = tel.scaleSweep.With(name, scale)
			for r := 0; r < ruleCount(info.ScaleRules, i) && len(attr.labels) < maxRuleLabels; r++ {
				label := scale + ".r" + strconv.Itoa(r+1)
				attr.labels = append(attr.labels, label)
				//cdtlint:ignore metriclabel resolved once per (model, artifact) at artifact-change frequency; labels are stable bounded indices capped at maxRuleLabels, and the scoring path only Adds to the cached children
				attr.ruleFired = append(attr.ruleFired, tel.ruleFired.With(name, label))
			}
		}
		return attr
	}
	for r := 0; r < info.NumRules && r < maxRuleLabels; r++ {
		label := "r" + strconv.Itoa(r+1)
		attr.labels = append(attr.labels, label)
		//cdtlint:ignore metriclabel resolved once per (model, artifact) at artifact-change frequency; labels are stable bounded indices capped at maxRuleLabels, and the scoring path only Adds to the cached children
		attr.ruleFired = append(attr.ruleFired, tel.ruleFired.With(name, label))
	}
	return attr
}

// ruleCount reads scaleRules[i] defensively (older artifacts without
// per-scale counts attribute nothing rather than mislabeling).
func ruleCount(scaleRules []int, i int) int {
	if i < len(scaleRules) {
		return scaleRules[i]
	}
	return 0
}

// slots is the accumulation-array length: one per labeled rule plus the
// trailing overflow slot.
func (a *modelAttr) slots() int {
	if a == nil || len(a.labels) == 0 {
		return 0
	}
	return len(a.labels) + 1
}

// newCounts allocates a per-series accumulation array (nil when the
// model has no labeled rules).
func (a *modelAttr) newCounts() []uint64 {
	if n := a.slots(); n > 0 {
		return make([]uint64, n)
	}
	return nil
}

// bump accumulates one firing of flat rule index idx.
func (a *modelAttr) bump(counts []uint64, idx int) {
	if counts == nil {
		return
	}
	if idx < 0 || idx >= len(a.labels) {
		idx = len(a.labels) // overflow slot
	}
	counts[idx]++
}

// tallyWindow folds one batch detection's fired rules into counts. For
// pyramids the per-scale breakdown is the source of truth (the headline
// Fired set duplicates the fastest scale's predicates).
func (a *modelAttr) tallyWindow(counts []uint64, d cdt.WindowDetection) {
	if counts == nil {
		return
	}
	if a.factorIdx == nil {
		for _, f := range d.Fired {
			a.bump(counts, f.Index-1)
		}
		return
	}
	for _, sd := range d.Scales {
		base, ok := a.flatBase(sd.Factor)
		for _, f := range sd.Fired {
			if !ok {
				a.bump(counts, -1)
				continue
			}
			a.bump(counts, base+f.Index-1)
		}
	}
}

// tallyStream folds one stream detection's fired rules into counts
// (Detection.Scale carries the firing factor for pyramid streams, 0 for
// plain ones).
func (a *modelAttr) tallyStream(counts []uint64, d cdt.Detection) {
	if counts == nil {
		return
	}
	base := 0
	if a.factorIdx != nil {
		var ok bool
		if base, ok = a.flatBase(d.Scale); !ok {
			for range d.Fired {
				a.bump(counts, -1)
			}
			return
		}
	}
	for _, f := range d.Fired {
		a.bump(counts, base+f.Index-1)
	}
}

// flatBase resolves a downsample factor to its flat label offset.
func (a *modelAttr) flatBase(factor int) (int, bool) {
	i, ok := a.factorIdx[factor]
	if !ok {
		return 0, false
	}
	return a.scaleOff[i], true
}

// apply publishes an accumulation array to the pre-resolved counters:
// at most one atomic add per distinct rule, no child resolution.
func (a *modelAttr) apply(counts []uint64) {
	if counts == nil {
		return
	}
	for i, n := range counts[:len(counts)-1] {
		if n > 0 {
			a.ruleFired[i].Add(n)
		}
	}
	if n := counts[len(counts)-1]; n > 0 {
		a.overflow.Add(n)
	}
}

// hasScaleSweep reports whether the artifact gets per-scale sweep
// latency histograms (pyramids only).
func (a *modelAttr) hasScaleSweep() bool {
	return a != nil && len(a.scaleSweep) > 0
}

// observeSweep is the cdt.ScaleSweepObserver the batch path installs:
// one histogram observation per scale sweep, on a pre-resolved child.
func (a *modelAttr) observeSweep(scaleIndex, factor int, seconds float64) {
	if a == nil || scaleIndex < 0 || scaleIndex >= len(a.scaleSweep) {
		return
	}
	a.scaleSweep[scaleIndex].Observe(seconds)
}

// ruleLabel renders the flat index back to its label ("other" past the
// cap) — the drift tracker uses it to name the drifting rule.
func (a *modelAttr) ruleLabel(idx int) string {
	if a == nil || idx < 0 || idx >= len(a.labels) {
		return "other"
	}
	return a.labels[idx]
}
