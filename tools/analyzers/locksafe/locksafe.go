// Package locksafe checks the locking discipline the concurrent parts of
// this repository rely on: the Corpus cache (corpus.go) and the serving
// registry/sessions (internal/server) both guard shared state with
// sync.Mutex/RWMutex, and every critical section must be provably
// released on every path.
//
// Three rules, each per function body (function literals are analyzed as
// their own bodies):
//
//  1. Release: every mu.Lock()/mu.RLock() must be matched by either a
//     `defer mu.Unlock()`/`defer mu.RUnlock()` in the same function, or
//     an explicit unlock of the same flavor later in the same block (the
//     double-checked-locking idiom corpus.go uses). A lock whose release
//     lives in another block, another function, or nowhere is reported.
//
//  2. No upgrades: taking mu.Lock() while mu.RLock() is still held
//     (sync.RWMutex deadlocks on upgrade) is reported. The check is a
//     linear scan in source order: an RLock followed by a Lock on the
//     same receiver with no intervening RUnlock.
//
//  3. No blocking while locked: inside a critical section, channel
//     sends/receives, selects without a default case, time.Sleep, and
//     calls into net or net/http are reported — holding the registry or
//     cache lock across I/O turns one slow peer into a global stall.
//
// Receivers are compared textually (types.ExprString), the standard
// heuristic for lock checkers; lock helpers that release in a callee are
// out of scope and will be reported — in this codebase that is the point.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"cdt/tools/analysis"
)

// Analyzer is the locksafe check.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "flags unreleased locks, RWMutex upgrades, and blocking calls inside critical sections",
	Run:  run,
}

// flavor distinguishes write locks from read locks.
type flavor int

const (
	write flavor = iota
	read
)

func (f flavor) lockName() string {
	if f == read {
		return "RLock"
	}
	return "Lock"
}

func (f flavor) unlockName() string {
	if f == read {
		return "RUnlock"
	}
	return "Unlock"
}

// methodInfo classifies one sync locking method.
type methodInfo struct {
	fl   flavor
	lock bool
}

// lockMethods maps sync (R)Lock/(R)Unlock methods to their classification.
var lockMethods = map[string]methodInfo{
	"(*sync.Mutex).Lock":      {write, true},
	"(*sync.Mutex).Unlock":    {write, false},
	"(*sync.RWMutex).Lock":    {write, true},
	"(*sync.RWMutex).Unlock":  {write, false},
	"(*sync.RWMutex).RLock":   {read, true},
	"(*sync.RWMutex).RUnlock": {read, false},
}

// event is one lock or unlock statement.
type event struct {
	recv     string
	fl       flavor
	lock     bool
	deferred bool
	pos      token.Pos
	end      token.Pos
	block    *ast.BlockStmt
	index    int // statement index within block
}

// blocking is one potentially blocking operation.
type blocking struct {
	pos  token.Pos
	what string
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

type bodyChecker struct {
	pass     *analysis.Pass
	events   []event
	blockers []blocking
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &bodyChecker{pass: pass}
	c.walkBlock(body)

	// Rule 1: every lock needs a deferred or same-block release.
	for _, e := range c.events {
		if !e.lock || e.deferred {
			continue
		}
		release := c.release(e)
		if release == nil {
			pass.Reportf(e.pos, "%s.%s() is released neither by defer nor later in the same block; a panic or early return leaks the lock",
				e.recv, e.fl.lockName())
		}
	}

	// Rule 2: RLock → Lock upgrade without an intervening RUnlock.
	for i, e := range c.events {
		if !e.lock || e.fl != read || e.deferred {
			continue
		}
		for _, later := range c.events[i+1:] {
			if later.recv != e.recv {
				continue
			}
			if !later.lock && later.fl == read && !later.deferred {
				break // released before any upgrade
			}
			if later.lock && later.fl == write {
				c.pass.Reportf(later.pos, "%s.Lock() while %s.RLock() is still held: RWMutex upgrade deadlocks", e.recv, e.recv)
				break
			}
		}
	}

	// Rule 3: no blocking operations inside a critical section.
	for _, e := range c.events {
		if !e.lock {
			continue
		}
		start, end := e.end, token.Pos(-1)
		if rel := c.release(e); rel != nil {
			if rel.deferred {
				end = body.End()
			} else {
				end = rel.pos
			}
		}
		if end < 0 {
			continue // unreleased: already reported by rule 1
		}
		for _, b := range c.blockers {
			if b.pos > start && b.pos < end {
				c.pass.Reportf(b.pos, "%s while holding %s.%s(): blocking inside a critical section stalls every other holder",
					b.what, e.recv, e.fl.lockName())
			}
		}
	}
}

// release finds the event that releases e: a deferred unlock anywhere in
// the body, or an explicit unlock of the same receiver and flavor later
// in e's own block.
func (c *bodyChecker) release(e event) *event {
	for i := range c.events {
		r := &c.events[i]
		if r.lock || r.recv != e.recv || r.fl != e.fl {
			continue
		}
		if r.deferred {
			return r
		}
		if r.block == e.block && r.index > e.index {
			return r
		}
	}
	return nil
}

// walkBlock records lock events (with their enclosing block and index)
// and blocking operations, in source order. Function literals are
// skipped: they are separate bodies with their own discipline.
func (c *bodyChecker) walkBlock(b *ast.BlockStmt) {
	for i, stmt := range b.List {
		c.walkStmt(stmt, b, i)
	}
}

func (c *bodyChecker) walkStmt(stmt ast.Stmt, block *ast.BlockStmt, index int) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, info, ok := c.lockCall(call); ok {
				c.events = append(c.events, event{
					recv: recv, fl: info.fl, lock: info.lock,
					pos: s.Pos(), end: s.End(), block: block, index: index,
				})
				return
			}
		}
	case *ast.DeferStmt:
		if recv, info, ok := c.lockCall(s.Call); ok {
			c.events = append(c.events, event{
				recv: recv, fl: info.fl, lock: info.lock, deferred: true,
				pos: s.Pos(), end: s.End(), block: block, index: index,
			})
			return
		}
	case *ast.BlockStmt:
		c.walkBlock(s)
		return
	case *ast.IfStmt:
		c.scanExpr(s.Cond)
		c.walkBlock(s.Body)
		if s.Else != nil {
			c.walkStmt(s.Else, block, index)
		}
		return
	case *ast.ForStmt:
		c.walkBlock(s.Body)
		return
	case *ast.RangeStmt:
		c.scanExpr(s.X)
		c.walkBlock(s.Body)
		return
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if cc, ok := n.(*ast.CaseClause); ok {
				c.walkBlock(&ast.BlockStmt{List: cc.Body})
				return false
			}
			return true
		})
		return
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			c.blockers = append(c.blockers, blocking{pos: s.Pos(), what: "select without default"})
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				c.walkBlock(&ast.BlockStmt{List: cc.Body})
			}
		}
		return
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, block, index)
		return
	case *ast.GoStmt:
		// The goroutine body runs elsewhere; its discipline is its own.
		return
	}
	c.scanStmtExprs(stmt)
}

// scanStmtExprs records blocking operations in a statement's expressions.
func (c *bodyChecker) scanStmtExprs(stmt ast.Stmt) {
	if send, ok := stmt.(*ast.SendStmt); ok {
		c.blockers = append(c.blockers, blocking{pos: send.Pos(), what: "channel send"})
		c.scanExpr(send.Value)
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		return c.scanNode(n)
	})
}

func (c *bodyChecker) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		return c.scanNode(n)
	})
}

// scanNode records one potentially blocking node; it prunes function
// literals and returns whether inspection should descend.
func (c *bodyChecker) scanNode(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		return false
	case *ast.SendStmt:
		c.blockers = append(c.blockers, blocking{pos: n.Pos(), what: "channel send"})
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			c.blockers = append(c.blockers, blocking{pos: n.Pos(), what: "channel receive"})
		}
	case *ast.CallExpr:
		if fn := callee(c.pass, n); fn != nil {
			if fn.FullName() == "time.Sleep" {
				c.blockers = append(c.blockers, blocking{pos: n.Pos(), what: "time.Sleep"})
			} else if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "net" || pkg.Path() == "net/http") {
				c.blockers = append(c.blockers, blocking{pos: n.Pos(), what: "call into " + pkg.Path()})
			}
		}
	}
	return true
}

// lockCall decodes a call as a sync lock/unlock method invocation,
// returning the textual receiver and the method's classification.
func (c *bodyChecker) lockCall(call *ast.CallExpr) (string, methodInfo, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", methodInfo{}, false
	}
	fn, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", methodInfo{}, false
	}
	info, ok := lockMethods[fn.FullName()]
	if !ok {
		return "", methodInfo{}, false
	}
	return types.ExprString(sel.X), info, true
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
