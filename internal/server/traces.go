package server

// GET /debug/traces: the in-memory span ring, newest-first — the
// request-scoped view the aggregate /metrics histograms cannot give.
// A slow-request exemplar on /debug/vars carries its trace ID; pasting
// it into ?trace= narrows this endpoint to that one request's spans.

import (
	"net/http"

	"cdt/internal/trace"
)

// tracesResponse is the GET /debug/traces payload.
type tracesResponse struct {
	// Spans holds finished spans, newest first (bounded by the tracer's
	// ring size). Empty when tracing is disabled or nothing sampled yet.
	Spans []trace.SpanData `json:"spans"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	spans := s.tracer.Snapshot() // nil-safe: no tracer → no spans
	if id := r.URL.Query().Get("trace"); id != "" {
		filtered := spans[:0]
		for _, sd := range spans {
			if sd.TraceID == id {
				filtered = append(filtered, sd)
			}
		}
		spans = filtered
	}
	if spans == nil {
		spans = []trace.SpanData{}
	}
	writeJSON(w, http.StatusOK, tracesResponse{Spans: spans})
}
