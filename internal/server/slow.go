package server

// Slow-request exemplars: a fixed ring of the most recent requests that
// exceeded the configured latency threshold, published on /debug/vars as
// "cdtserve_slow_requests". Aggregate latency lives in the /metrics
// histograms; the ring answers the question histograms cannot — *which*
// requests were slow — by keeping the request ID an operator can grep
// out of the access log, alongside endpoint, path, status, and latency.
//
// The ring is package-global like the legacy expvar map it is published
// through: exemplars from every Server in the process land in one place,
// which is what a /debug/vars scrape sees anyway.

import (
	"expvar"
	"net/http"
	"sync"
	"time"
)

// slowRingSize bounds the exemplar ring. 32 is enough to catch a burst
// without turning /debug/vars into a request log.
const slowRingSize = 32

// slowRequest is one over-threshold exemplar.
type slowRequest struct {
	ID        string  `json:"id"`
	Endpoint  string  `json:"endpoint"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Status    int     `json:"status"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Time is the request completion time (unix seconds).
	Time int64 `json:"time"`
	// TraceID links the exemplar into /debug/traces?trace=<id> when the
	// request was sampled; empty otherwise. The ring is how an operator
	// goes from "something was slow" to that one request's span tree.
	TraceID string `json:"trace_id,omitempty"`
}

// slowRing keeps the last slowRingSize exemplars. A plain mutex is fine:
// the ring is touched only by requests that already blew a latency
// threshold measured in milliseconds.
type slowRing struct {
	mu  sync.Mutex
	buf [slowRingSize]slowRequest
	n   uint64 // total recorded; buf[(n-1)%size] is the newest
}

func (r *slowRing) record(e slowRequest) {
	r.mu.Lock()
	r.buf[r.n%slowRingSize] = e
	r.n++
	r.mu.Unlock()
}

// snapshot returns the retained exemplars, newest first.
func (r *slowRing) snapshot() []slowRequest {
	r.mu.Lock()
	defer r.mu.Unlock()
	count := r.n
	if count > slowRingSize {
		count = slowRingSize
	}
	out := make([]slowRequest, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, r.buf[(r.n-1-i)%slowRingSize])
	}
	return out
}

// slowRequests is the process-wide exemplar ring behind the
// "cdtserve_slow_requests" expvar.
var slowRequests = &slowRing{}

func init() {
	expvar.Publish("cdtserve_slow_requests", expvar.Func(func() any {
		return slowRequests.snapshot()
	}))
}

// recordSlowRequest folds one completed request into the ring when it
// exceeded the server's threshold (<= 0 disables recording). traceID is
// empty when the request was not sampled.
func (s *Server) recordSlowRequest(r *http.Request, rec *statusRecorder, id, traceID string, elapsed time.Duration) {
	if s.cfg.SlowRequestThreshold <= 0 || elapsed < s.cfg.SlowRequestThreshold {
		return
	}
	slowRequests.record(slowRequest{
		ID:        id,
		Endpoint:  rec.endpoint,
		Method:    r.Method,
		Path:      r.URL.Path,
		Status:    rec.status(),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		Time:      time.Now().Unix(),
		TraceID:   traceID,
	})
}
