package cdt

// Streaming detection: the paper's use case is monitoring live sensor
// feeds, so the library offers an online detector that consumes one
// reading at a time and reports rule firings as soon as they are
// decidable. A point's pattern label needs its successor, and a window
// needs ω labels, so detections for point p arrive after point p+1 (at
// the earliest) and keep arriving while p stays inside a firing window.
//
// Latency contract: the stream rides the model's incremental engine
// cursor (internal/engine), which keeps O(1) amortized state per label
// instead of re-matching the full ω-window, but the observable timing
// is exactly the sliding-window definition above — a window's detection
// is returned by the Push of its last covered point's successor, never
// earlier and never later, with identical WindowStart/WindowEnd indices
// and identical fired predicates to a batch DetectExplained over the
// same values. Reset preserves the contract: the first window of the
// new run again completes ω+2 pushes in. TestStreamMatchesBatchDetection
// holds both properties.

import (
	"fmt"

	"cdt/internal/engine"
)

// Detection reports one fired window from a stream.
type Detection struct {
	// WindowStart and WindowEnd delimit the covered points (inclusive,
	// 0-based indices into the stream). For pyramid streams these are
	// original-resolution indices regardless of the firing scale.
	WindowStart, WindowEnd int
	// Fired lists the rule predicates that matched the window, in rule
	// order (1-based indices matching RuleText) — the interpretable
	// payload a monitor shows next to the alert.
	Fired []FiredPredicate
	// Scale is the downsample factor of the scale that fired (pyramid
	// streams); 0 for single-scale streams.
	Scale int
	// Type is the anomaly-type tag (pyramid streams); empty for
	// single-scale streams.
	Type AnomalyType
}

// Stream is an online anomaly detector backed by a trained model. It is
// not safe for concurrent use.
type Stream struct {
	model *Model
	scale Scale

	// lastTwo holds the most recent raw values, pending their labels.
	lastTwo [2]float64
	n       int // points consumed

	// cur is this stream's incremental matcher over the model's shared
	// compiled engine: one label in, the completed window's fired
	// predicates out.
	cur *engine.Cursor

	detections uint64 // windows reported over the stream's lifetime
	resets     uint64 // Reset calls
}

// StreamStats is a point-in-time snapshot of a stream's activity, the
// per-session observability payload cdtserve aggregates. Points and
// Detections count over the stream's whole lifetime; Reset (counted in
// Resets) starts a new run but clears neither.
type StreamStats struct {
	// Points counts readings consumed in the current run (what Points()
	// returns).
	Points int
	// Detections counts windows reported since the stream was created,
	// across resets.
	Detections uint64
	// Resets counts Reset calls.
	Resets uint64
}

// Stats returns the stream's activity counters. Like every Stream
// method, it must not race a concurrent Push.
func (s *Stream) Stats() StreamStats {
	return StreamStats{Points: s.n, Detections: s.detections, Resets: s.resets}
}

// Scale fixes the normalization applied to incoming values. Streaming
// cannot min-max normalize retroactively, so the caller provides the
// expected value range up front (e.g. from the training data or sensor
// specification); values outside it clamp to the nearest bound.
type Scale struct {
	Min, Max float64
}

// normalize maps a raw value into [0,1] under the stream's scale.
func (sc Scale) normalize(v float64) float64 {
	if sc.Max <= sc.Min {
		return 0
	}
	n := (v - sc.Min) / (sc.Max - sc.Min)
	if n < 0 {
		return 0
	}
	if n > 1 {
		return 1
	}
	return n
}

// NewStream starts an online detector. The scale must span the values
// the sensor can produce; a degenerate scale is rejected, because
// normalize would silently map every reading to 0. Note that values
// outside a valid scale clamp to the nearest bound.
func (m *Model) NewStream(scale Scale) (*Stream, error) {
	if scale.Max <= scale.Min {
		return nil, fmt.Errorf("cdt: stream scale [%v,%v] is degenerate (Max must exceed Min): "+
			"every reading would normalize to 0; note in-range scales clamp out-of-range values to the nearest bound",
			scale.Min, scale.Max)
	}
	return &Stream{
		model: m,
		scale: scale,
		cur:   m.eng.NewCursor(),
	}, nil
}

// Push consumes the next reading and returns any window detection that
// became decidable with it. At most one new window completes per point,
// so the result is nil or a single detection.
func (s *Stream) Push(value float64) []Detection {
	v := s.scale.normalize(value)
	s.n++
	switch s.n {
	case 1:
		s.lastTwo[0] = v
		return nil
	case 2:
		s.lastTwo[1] = v
		return nil
	}
	// The previous point (0-based index s.n-2) becomes labelable now
	// that its successor arrived.
	label := s.model.pcfg.LabelPoint(s.lastTwo[0], s.lastTwo[1], v)
	s.lastTwo[0], s.lastTwo[1] = s.lastTwo[1], v

	fired, complete := s.cur.Step(label)
	if !complete || len(fired) == 0 {
		return nil
	}
	// The ω labels cover original points [first labeled .. last labeled]:
	// the newest label belongs to 0-based point s.n-2, the oldest in the
	// window to s.n-2-(omega-1).
	end := s.n - 2
	s.detections++
	return []Detection{{
		WindowStart: end - s.model.Opts.Omega + 1,
		WindowEnd:   end,
		Fired:       s.model.firedFromIndices(fired),
	}}
}

// Points returns the number of readings consumed.
func (s *Stream) Points() int { return s.n }

// Ready reports whether the stream has seen enough points to evaluate
// full windows.
func (s *Stream) Ready() bool { return s.cur.RunLen() >= s.model.Opts.Omega }

// Reset clears the stream state, keeping the model and scale. The engine
// cursor starts a new run in O(1): windows never span the boundary, and
// post-Reset detections arrive with the same latency as from a fresh
// stream.
func (s *Stream) Reset() {
	s.n = 0
	s.resets++
	s.cur.Reset()
}
