package server

// Batch scoring: POST /models/{name}/detect accepts a multi-series
// payload and fans the series across the server-wide bounded worker
// pool. Each series is scored independently (normalize → label →
// window → rule), and every detection carries the fired rule predicates
// rendered for humans.

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"sync"

	cdt "cdt"
	"cdt/internal/trace"
)

type batchRequest struct {
	Series []seriesPayload `json:"series"`
}

type seriesPayload struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

type batchDetection struct {
	Window int         `json:"window"`
	Start  int         `json:"start"`
	End    int         `json:"end"`
	Rules  []firedRule `json:"rules"`
	// Type and Scales are set only for pyramid models: the anomaly-type
	// tag (point, contextual, collective) and the per-scale fired-rule
	// breakdown. Plain-model responses keep their pre-pyramid shape.
	Type   string        `json:"type,omitempty"`
	Scales []scaleDetail `json:"scales,omitempty"`
}

// scaleDetail is the wire form of one pyramid scale's contribution to a
// fused detection.
type scaleDetail struct {
	Factor int         `json:"factor"`
	Window int         `json:"window"`
	Start  int         `json:"start"`
	End    int         `json:"end"`
	Rules  []firedRule `json:"rules"`
}

func scaleDetails(scales []cdt.ScaleDetection) []scaleDetail {
	if len(scales) == 0 {
		return nil
	}
	out := make([]scaleDetail, len(scales))
	for i, sd := range scales {
		out[i] = scaleDetail{
			Factor: sd.Factor,
			Window: sd.Window,
			Start:  sd.Start,
			End:    sd.End,
			Rules:  firedRules(sd.Fired),
		}
	}
	return out
}

type seriesResult struct {
	Name       string           `json:"name"`
	Detections []batchDetection `json:"detections"`
	Error      string           `json:"error,omitempty"`
}

type batchResponse struct {
	Model   string         `json:"model"`
	Results []seriesResult `json:"results"`
}

func (s *Server) handleBatchDetect(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	model, ok := s.registry.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model %q", name)
		return
	}
	// Request and response ride the hand-rolled hot-path codec
	// (fastjson.go): payloads here carry thousands of numbers, and
	// encoding/json would cost more than the scoring itself.
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	req, err := parseBatchRequest(body)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	if len(req.Series) == 0 {
		writeError(w, http.StatusBadRequest, "series must be non-empty")
		return
	}
	results := s.scoreBatch(r.Context(), name, model, req.Series)
	bp := respBufPool.Get().(*[]byte)
	buf := appendBatchResponse((*bp)[:0], batchResponse{Model: name, Results: results})
	writeRawJSON(w, http.StatusOK, buf)
	*bp = buf[:0]
	respBufPool.Put(bp)
}

// scoreBatch fans the series across the worker pool, preserving input
// order. The pool is server-wide, so concurrent batch requests share the
// configured parallelism instead of multiplying it. Each scored series
// also feeds the drift tracker and — when a candidate is shadowing this
// model — the shadow queue; both are off-path (a map/atomic touch and a
// non-blocking enqueue), keeping shadow overhead inside the benchmark
// gate.
func (s *Server) scoreBatch(ctx context.Context, name string, model cdt.Artifact, series []seriesPayload) []seriesResult {
	shadow := s.shadows.Get(name)
	attr := s.attr.forModel(name, model)
	omega := model.Info().Omega
	rid := RequestID(ctx)
	link := trace.LinkFromContext(ctx)
	poolCtx, poolSpan := trace.StartSpan(ctx, "batch_pool")
	if poolSpan != nil {
		poolSpan.SetAttr("model", name)
		poolSpan.SetAttr("series", strconv.Itoa(len(series)))
		defer poolSpan.End()
		// Per-scale sweep latency histograms ride the trace plumbing: the
		// observer installed here fires once per pyramid scale sweep on
		// pre-resolved children, sampled or not.
	}
	if attr.hasScaleSweep() {
		poolCtx = cdt.WithScaleSweepObserver(poolCtx, attr.observeSweep)
	}
	results := make([]seriesResult, len(series))
	// Per-slot anomaly-type tallies, merged into one Vec.With per
	// distinct type after the fan-out (metriclabel: no child resolution
	// inside the scoring loop).
	typeCounts := make([]map[string]uint64, len(series))
	var wg sync.WaitGroup
	for i := range series {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := series[i]
			results[i].Name = sp.Name
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			case <-ctx.Done():
				results[i].Error = "request canceled before scoring"
				return
			}
			if ctx.Err() != nil {
				results[i].Error = "request canceled before scoring"
				return
			}
			sctx, sspan := trace.StartSpan(poolCtx, "series")
			if sspan != nil {
				sspan.SetAttr("series", sp.Name)
				sspan.SetAttr("points", strconv.Itoa(len(sp.Values)))
				defer sspan.End()
			}
			dets, err := model.DetectExplained(sctx, cdt.NewSeries(sp.Name, sp.Values))
			if err != nil {
				results[i].Error = err.Error()
				return
			}
			ruleCounts := attr.newCounts()
			results[i].Detections = make([]batchDetection, len(dets))
			for j, d := range dets {
				results[i].Detections[j] = batchDetection{
					Window: d.Window,
					Start:  d.Start,
					End:    d.End,
					Rules:  firedRules(d.Fired),
					Type:   string(d.Type),
					Scales: scaleDetails(d.Scales),
				}
				attr.tallyWindow(ruleCounts, d)
				if d.Type != "" {
					if typeCounts[i] == nil {
						typeCounts[i] = map[string]uint64{}
					}
					typeCounts[i][string(d.Type)]++
				}
			}
			attr.apply(ruleCounts)
			stats.Add("batch_series", 1)
			stats.Add("detections", int64(len(dets)))
			s.tel.batchSeries.Inc()
			s.tel.batchDetections.Add(uint64(len(dets)))
			windows := len(sp.Values) - omega
			if windows < 0 {
				windows = 0
			}
			s.drift.observe(ctx, name, model, attr, windows, len(dets), ruleCounts)
			if shadow != nil {
				incRanges := make([][2]int, len(dets))
				for j, d := range dets {
					incRanges[j] = [2]int{d.Start, d.End}
				}
				s.shadows.enqueue(shadowJob{
					sh:        shadow,
					values:    sp.Values,
					incRanges: incRanges,
					windows:   windows,
					rid:       rid,
					link:      link,
				})
			}
		}(i)
	}
	wg.Wait()
	merged := map[string]uint64{}
	for _, tc := range typeCounts {
		for typ, n := range tc {
			merged[typ] += n
		}
	}
	for typ, n := range merged {
		s.tel.anomalyTypes.With(name, typ).Add(n)
	}
	return results
}
