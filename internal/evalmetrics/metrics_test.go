package evalmetrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestConfusionAdd(t *testing.T) {
	var c Confusion
	c.Add(true, true)
	c.Add(true, false)
	c.Add(false, true)
	c.Add(false, false)
	if c != (Confusion{TP: 1, FP: 1, FN: 1, TN: 1}) {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 4 {
		t.Errorf("total = %d", c.Total())
	}
}

func TestFromBools(t *testing.T) {
	c := FromBools([]bool{true, true, false}, []bool{true, false, false})
	if c != (Confusion{TP: 1, FP: 1, TN: 1}) {
		t.Fatalf("confusion = %+v", c)
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 4, TN: 10}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-8.0/12) > 1e-12 {
		t.Errorf("recall = %v", got)
	}
	p, r := 0.8, 8.0/12
	want := 2 * p * r / (p + r)
	if got := c.F1(); math.Abs(got-want) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, want)
	}
	if got := c.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
}

func TestMetricsDegenerateCases(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("empty confusion should yield all-zero metrics")
	}
	c = Confusion{TN: 5}
	if c.F1() != 0 {
		t.Error("no positives should give F1 0")
	}
}

func TestF1BoundsProperty(t *testing.T) {
	f := func(tp, fp, fn, tn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn), TN: int(tn)}
		f1 := c.F1()
		if f1 < 0 || f1 > 1 {
			return false
		}
		// Perfect classification iff F1 == 1 (when positives exist).
		if c.FP == 0 && c.FN == 0 && c.TP > 0 && math.Abs(f1-1) > 1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAverageRanksSimple(t *testing.T) {
	scores := [][]float64{
		{0.9, 0.5, 0.7},
		{0.8, 0.6, 0.7},
	}
	ranks := AverageRanks(scores)
	want := []float64{1, 3, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("rank[%d] = %v, want %v", i, ranks[i], want[i])
		}
	}
}

func TestAverageRanksTies(t *testing.T) {
	ranks := AverageRanks([][]float64{{0.5, 0.5, 0.1}})
	if ranks[0] != 1.5 || ranks[1] != 1.5 || ranks[2] != 3 {
		t.Errorf("ranks = %v, want [1.5 1.5 3]", ranks)
	}
}

func TestAverageRanksEmpty(t *testing.T) {
	if AverageRanks(nil) != nil {
		t.Error("nil input should give nil")
	}
}

// The sum of ranks per dataset is invariant: n(n+1)/2.
func TestAverageRanksSumProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 || len(raw) > 8 {
			return true
		}
		row := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			row[i] = v
		}
		ranks := AverageRanks([][]float64{row})
		sum := 0.0
		for _, r := range ranks {
			sum += r
		}
		n := float64(len(row))
		return math.Abs(sum-n*(n+1)/2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestThresholdByQuantile(t *testing.T) {
	scores := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	th := ThresholdByQuantile(scores, 0.2)
	flagged := 0
	for _, s := range scores {
		if s > th {
			flagged++
		}
	}
	if flagged != 2 {
		t.Errorf("flagged %d of 10 at contamination 0.2", flagged)
	}
}

func TestThresholdEdgeCases(t *testing.T) {
	if ThresholdByQuantile(nil, 0.5) != 0 {
		t.Error("empty scores")
	}
	// contamination > 1 flags everything above the minimum.
	th := ThresholdByQuantile([]float64{3, 1, 2}, 2)
	if th != 1 {
		t.Errorf("threshold = %v, want 1", th)
	}
	// contamination <= 0 falls back to a tiny positive fraction.
	th = ThresholdByQuantile([]float64{3, 1, 2}, 0)
	if th < 2 {
		t.Errorf("threshold = %v, want near top", th)
	}
}

func TestBinarizeTopFraction(t *testing.T) {
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = float64(i)
	}
	flags := BinarizeTop(scores, 0.1)
	n := 0
	for _, f := range flags {
		if f {
			n++
		}
	}
	if n != 10 {
		t.Errorf("flagged %d, want 10", n)
	}
	// The flagged entries must be the highest scores.
	var flaggedVals []float64
	for i, f := range flags {
		if f {
			flaggedVals = append(flaggedVals, scores[i])
		}
	}
	sort.Float64s(flaggedVals)
	if flaggedVals[0] != 90 {
		t.Errorf("lowest flagged = %v, want 90", flaggedVals[0])
	}
}
