package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// refDecode reproduces readJSON's decode semantics with encoding/json:
// DisallowUnknownFields, then a trailing-data check.
func refDecode(data []byte, v any) (trailing bool, err error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return false, err
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return true, nil
	}
	return false, nil
}

// requestBodies is the shared differential corpus: for every body, the
// hand-rolled parsers must accept exactly what readJSON accepts and
// produce identical values.
var requestBodies = []string{
	// Valid shapes.
	`{"series":[{"name":"a","values":[1,2,3]}]}`,
	`{"series":[]}`,
	`{"series":null}`,
	`{}`,
	`null`,
	"  {\n\t\"series\" : [ { \"name\" : \"s p a c e\" , \"values\" : [ -1.5 , 0 , 2e3 ] } ] }  ",
	`{"Series":[{"NAME":"case-fold","VaLuEs":[4]}]}`,
	`{"series":[{"values":[0.1,0.25E+2,-0],"name":"reorder"}]}`,
	`{"series":[{"name":"esc\"\\\/\b\f\n\r\t","values":[]},{"name":"unicode é€😀","values":[1]}]}`,
	`{"series":[{"name":"raw utf8 éé€","values":[3.141592653589793,1e-300,1.7976931348623157e308]}]}`,
	`{"series":[{"name":"lone surrogate \ud800 tail","values":[7]}]}`,
	`{"series":[{"name":null,"values":null}]}`,
	`{"series":[{},{"name":"empty"}]}`,
	`{"series":[{"name":"dots","values":[0.5,123456789012345,0.000001,12345678901234567890]}]}`,
	// Malformed or rejected bodies.
	``,
	`   `,
	`{nope`,
	`{"series":}`,
	`[1,2]`,
	`"series"`,
	`{"series":[{"name":"a","values":[1,2,3]}]}{}`,
	`{"series":[{"name":"a","values":[1,2,3]}]} garbage`,
	`{"serie":[]}`,
	`{"series":[{"nam":"a"}]}`,
	`{"series":[{"name":"a","values":[01]}]}`,
	`{"series":[{"name":"a","values":[+1]}]}`,
	`{"series":[{"name":"a","values":[.5]}]}`,
	`{"series":[{"name":"a","values":[1.]}]}`,
	`{"series":[{"name":"a","values":[1e]}]}`,
	`{"series":[{"name":"a","values":[nan]}]}`,
	`{"series":[{"name":"a","values":[1,]}]}`,
	`{"series":[{"name":"a","values":["x"]}]}`,
	`{"series":[{"name":"a","values":[1]}],}`,
	`{"series":[{"name":"bad escape \q","values":[]}]}`,
	`{"series":[{"name":"bad hex \u12zz","values":[]}]}`,
	`{"series":[{"name":"unterminated`,
	`nullx`,
}

func TestParseBatchRequestDifferential(t *testing.T) {
	for _, body := range requestBodies {
		t.Run(body, func(t *testing.T) {
			var want batchRequest
			trailing, refErr := refDecode([]byte(body), &want)
			got, err := parseBatchRequest([]byte(body))
			switch {
			case trailing:
				if !errors.Is(err, errTrailingData) {
					t.Fatalf("reference flags trailing data, fast parser: %v", err)
				}
			case refErr != nil:
				if err == nil {
					t.Fatalf("reference rejects (%v), fast parser accepted %+v", refErr, got)
				}
			default:
				if err != nil {
					t.Fatalf("reference accepts, fast parser rejects: %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("parsed value diverged:\nfast: %+v\nref:  %+v", got, want)
				}
			}
		})
	}
}

func TestParsePushPointsDifferential(t *testing.T) {
	bodies := []string{
		`{"points":[1,2,3]}`,
		`{"points":[]}`,
		`{"points":null}`,
		`{"Points":[0.5,-0.5,1e2]}`,
		`{}`,
		`null`,
		` { "points" : [ 42 ] } `,
		`{"points":[1],"points":[2,3]}`,
		`{"point":[1]}`,
		`{"points":[1]} trailing`,
		`{"points":[1}`,
		`{"points":{"a":1}}`,
		``,
		`{nope`,
	}
	for _, body := range bodies {
		t.Run(body, func(t *testing.T) {
			var want pushPointsRequest
			trailing, refErr := refDecode([]byte(body), &want)
			got, err := parsePushPoints([]byte(body))
			switch {
			case trailing:
				if !errors.Is(err, errTrailingData) {
					t.Fatalf("reference flags trailing data, fast parser: %v", err)
				}
			case refErr != nil:
				if err == nil {
					t.Fatalf("reference rejects (%v), fast parser accepted %+v", refErr, got)
				}
			default:
				if err != nil {
					t.Fatalf("reference accepts, fast parser rejects: %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("parsed value diverged:\nfast: %+v\nref:  %+v", got, want)
				}
			}
		})
	}
}

// TestParseUnknownFieldMessage pins the unknown-field wording to
// encoding/json's, so clients see identical 400 bodies on either path.
func TestParseUnknownFieldMessage(t *testing.T) {
	body := []byte(`{"serie":[]}`)
	var req batchRequest
	_, refErr := refDecode(body, &req)
	if refErr == nil {
		t.Fatal("reference accepted unknown field")
	}
	if _, err := parseBatchRequest(body); err == nil || err.Error() != refErr.Error() {
		t.Fatalf("unknown-field message diverged:\nfast: %v\nref:  %v", err, refErr)
	}
}

func TestAppendBatchResponseRoundTrip(t *testing.T) {
	resps := []batchResponse{
		{Model: "m", Results: []seriesResult{
			{Name: "plain", Detections: []batchDetection{
				{Window: 3, Start: 4, End: 11, Rules: []firedRule{
					{Index: 1, Text: `exists "PP[H,H]"`, Description: "spike, δ-scaled"},
					{Index: 2, Text: "t\nwo\tlines"},
				}},
			}},
			{Name: `quote " backslash \ control` + "\x01", Detections: []batchDetection{}},
			{Name: "errored", Error: `labels: "weird" failure`},
			{Name: "unicode éé€😀"},
			{Name: "pyramid", Detections: []batchDetection{
				{Window: 0, Start: 6, End: 13, Type: "collective",
					Rules: []firedRule{{Index: 1, Text: "exists"}},
					Scales: []scaleDetail{
						{Factor: 1, Window: 5, Start: 6, End: 13, Rules: []firedRule{{Index: 1, Text: "exists"}}},
						{Factor: 4, Window: 0, Start: 4, End: 27, Rules: []firedRule{}},
					}},
				{Window: 1, Start: 30, End: 37, Type: "point",
					Rules:  []firedRule{},
					Scales: []scaleDetail{{Factor: 1, Window: 29, Start: 30, End: 37, Rules: nil}}},
			}},
		}},
		{Model: ""},
		{Model: "empty", Results: []seriesResult{}},
	}
	for _, resp := range resps {
		raw := appendBatchResponse(nil, resp)
		if !json.Valid(raw) {
			t.Fatalf("invalid JSON emitted: %s", raw)
		}
		var back batchResponse
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("round trip failed: %v\nbody: %s", err, raw)
		}
		if !reflect.DeepEqual(back, resp) {
			t.Fatalf("round trip changed value:\nin:  %+v\nout: %+v", resp, back)
		}
		// Byte-for-byte match with encoding/json's compact form, so the
		// appender can never drift from the declared wire schema.
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSuffix(string(raw), "\n"); got != string(want) {
			t.Fatalf("encoding diverged:\nfast: %s\nref:  %s", got, want)
		}
	}
}

func TestAppendPushPointsResponseRoundTrip(t *testing.T) {
	resps := []pushPointsResponse{
		{Detections: []streamDetection{
			{WindowStart: 7, WindowEnd: 14, Rules: []firedRule{{Index: 1, Text: "r"}}},
			{WindowStart: 20, WindowEnd: 27, Rules: []firedRule{}},
		}, PointsConsumed: 128, Ready: true},
		{Detections: []streamDetection{}, PointsConsumed: 0, Ready: false},
		{Detections: []streamDetection{
			{WindowStart: 8, WindowEnd: 31, Rules: []firedRule{{Index: 2, Text: "p"}}, Scale: 4, Type: "contextual"},
			{WindowStart: 40, WindowEnd: 47, Rules: []firedRule{}, Scale: 1, Type: "point"},
		}, PointsConsumed: 64, Ready: true},
	}
	for _, resp := range resps {
		raw := appendPushPointsResponse(nil, resp)
		var back pushPointsResponse
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("round trip failed: %v\nbody: %s", err, raw)
		}
		if !reflect.DeepEqual(back, resp) {
			t.Fatalf("round trip changed value:\nin:  %+v\nout: %+v", resp, back)
		}
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSuffix(string(raw), "\n"); got != string(want) {
			t.Fatalf("encoding diverged:\nfast: %s\nref:  %s", got, want)
		}
	}
}
