package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	cdt "cdt"
)

// Suite runs the paper's experiments with shared, cached state: prepared
// datasets and tuned hyper-parameters are computed once and reused across
// tables (Table 3 reuses Table 2's F1 column, Table 4 and Figure 3 its
// F(h) column, exactly as in §4).
type Suite struct {
	Config Config

	mu       sync.Mutex
	prepared map[string]*Prepared
	tuned    map[tuneKey]cdt.OptimizeResult
	table4   []Table4Row
}

type tuneKey struct {
	dataset   string
	objective cdt.Objective
}

// NewSuite creates an experiment suite.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		Config:   cfg.withDefaults(),
		prepared: make(map[string]*Prepared),
		tuned:    make(map[tuneKey]cdt.OptimizeResult),
	}
}

// Dataset returns (and caches) a prepared dataset.
func (s *Suite) Dataset(name string) (*Prepared, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.prepared[name]; ok {
		return p, nil
	}
	p, err := Prepare(name, s.Config)
	if err != nil {
		return nil, err
	}
	s.prepared[name] = p
	return p, nil
}

// Tuned returns (and caches) the Bayesian-optimization result for a
// dataset and objective (§4.1's protocol: optimize on train/validation).
func (s *Suite) Tuned(name string, obj cdt.Objective) (cdt.OptimizeResult, error) {
	s.mu.Lock()
	if r, ok := s.tuned[tuneKey{name, obj}]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	p, err := s.Dataset(name)
	if err != nil {
		return cdt.OptimizeResult{}, err
	}
	// Both objectives tune over the same splits, so the searches go through
	// the dataset's shared corpora: the F(h) search re-uses every labeling
	// and window set the F1 search already computed.
	trainCorpus, err := p.TrainCorpus()
	if err != nil {
		return cdt.OptimizeResult{}, err
	}
	valCorpus, err := p.ValidationCorpus()
	if err != nil {
		return cdt.OptimizeResult{}, err
	}
	// With Progress set, stream one line per trial so a paper-scale search
	// (minutes per dataset) shows where the budget goes, and close with a
	// cache-stats summary quantifying how much the shared corpus saved.
	var trace func(cdt.OptimizeTrial)
	if w := s.Config.Progress; w != nil {
		trace = func(t cdt.OptimizeTrial) {
			fmt.Fprintf(w, "tune dataset=%s objective=%s trial=%d omega=%d delta=%d score=%.4f elapsed=%s\n",
				name, obj, t.Evaluation, t.Omega, t.Delta, t.Score, t.Elapsed.Round(time.Millisecond))
		}
	}
	res, err := cdt.OptimizeCorpus(trainCorpus, valCorpus, obj, cdt.OptimizeOptions{
		InitPoints: s.Config.BOInit,
		Iterations: s.Config.BOIters,
		Seed:       s.Config.Seed + int64(obj) + int64(len(name)),
		// Candidate compositions are capped at 4 labels in the harness:
		// the paper's reported rules use compositions of 1-2 labels, and
		// the cap keeps the full hyper-parameter sweep tractable (the
		// ablation bench quantifies its effect).
		Base:  cdt.Options{MaxCompositionLen: 4},
		Trace: trace,
	})
	if err != nil {
		return cdt.OptimizeResult{}, fmt.Errorf("experiments: tuning %s for %s: %w", name, obj, err)
	}
	if w := s.Config.Progress; w != nil {
		st := trainCorpus.Stats()
		fmt.Fprintf(w, "tune dataset=%s objective=%s done evaluations=%d best_omega=%d best_delta=%d best_score=%.4f "+
			"cache label_hits=%d label_misses=%d window_hits=%d window_misses=%d\n",
			name, obj, res.Evaluations, res.Best.Omega, res.Best.Delta, res.BestScore,
			st.LabelHits, st.LabelMisses, st.WindowHits, st.WindowMisses)
	}
	s.mu.Lock()
	s.tuned[tuneKey{name, obj}] = res
	s.mu.Unlock()
	return res, nil
}

// FitTuned trains the final CDT for a dataset with the hyper-parameters
// selected for the given objective, refitting on train+validation.
func (s *Suite) FitTuned(name string, obj cdt.Objective) (*cdt.Model, *Prepared, error) {
	p, err := s.Dataset(name)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.Tuned(name, obj)
	if err != nil {
		return nil, nil, err
	}
	// Refit over the shared train+validation corpus: both objectives refit
	// the same pool, so the second refit's preprocessing is fully cached.
	tv, err := p.TrainValCorpus()
	if err != nil {
		return nil, nil, err
	}
	model, err := tv.Fit(res.Best)
	if err != nil {
		return nil, nil, err
	}
	return model, p, nil
}

// FormatTable renders rows as a fixed-width table for terminal output.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// rankOf returns 1-based dense competition ranks (ties share) for a
// score row, highest first.
func rankOf(scores []float64) []float64 {
	type entry struct {
		idx int
		s   float64
	}
	entries := make([]entry, len(scores))
	for i, s := range scores {
		entries[i] = entry{i, s}
	}
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].s > entries[b].s })
	out := make([]float64, len(scores))
	for i := 0; i < len(entries); {
		j := i
		for j+1 < len(entries) && entries[j+1].s == entries[i].s {
			j++
		}
		rank := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[entries[k].idx] = rank
		}
		i = j + 1
	}
	return out
}
