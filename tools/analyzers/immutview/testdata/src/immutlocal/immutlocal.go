// Package immutlocal exercises immutview's tracking machinery against
// local fixtures registered into Views by the test: tuple returns,
// nested element propagation, and range-value propagation.
package immutlocal

type Box struct{}

// View is registered as a view accessor by the test.
func (b *Box) View() []int { return nil }

// MakeView mimics the (view, error) shape of pattern.Config.LabelSeries.
func MakeView() ([][]float64, error) { return nil, nil }

func tupleReturn() {
	ls, err := MakeView()
	_ = err
	ls[0] = nil // want `write through shared ls view`
}

func nested() {
	ls, _ := MakeView()
	row := ls[0]
	row[0] = 1 // want `write through shared row view`
}

func rangeValue() {
	ls, _ := MakeView()
	for _, row := range ls {
		row[0] = 1 // want `write through shared row view`
	}
}

func direct(b *Box) {
	b.View()[0] = 1 // want `write through shared`
	v := b.View()
	v[2]++ // want `write through shared v view`
}

// structCopyGap documents the accepted limitation: copying a struct
// element out of a view drops tracking, so no diagnostic here.
func ownCopies(b *Box) {
	v := b.View()
	own := make([]int, len(v))
	copy(own, v)
	own[0] = 1
}
