// Package c45 implements a C4.5-style decision-tree inducer over nominal
// attributes (Quinlan 1993): multiway splits chosen by gain ratio,
// recursion until purity or exhaustion, and pessimistic-error subtree
// replacement pruning. It is the substrate of the PART rule learner the
// paper compares against in §4.3 (WEKA's PART builds its rules from
// partial C4.5 trees).
package c45

import (
	"errors"
	"fmt"
	"math"
)

var (
	errNoInstances   = errors.New("c45: no instances")
	errEmptyIndexSet = errors.New("c45: empty index set")
)

// Instance is one training example: nominal attribute values (encoded as
// small ints) plus a class index.
type Instance struct {
	Attrs []int
	Class int
}

// Dataset is a nominal-attribute classification dataset.
type Dataset struct {
	// AttrNames names each attribute (for rule rendering).
	AttrNames []string
	// AttrCard is each attribute's cardinality: values are 0..card-1.
	AttrCard []int
	// NumClasses is the number of class labels.
	NumClasses int
	// Instances holds the examples.
	Instances []Instance
}

// Validate checks structural consistency.
func (d *Dataset) Validate() error {
	if len(d.AttrNames) != len(d.AttrCard) {
		return fmt.Errorf("c45: %d attribute names but %d cardinalities", len(d.AttrNames), len(d.AttrCard))
	}
	if d.NumClasses < 2 {
		return fmt.Errorf("c45: %d classes, want >= 2", d.NumClasses)
	}
	for i, inst := range d.Instances {
		if len(inst.Attrs) != len(d.AttrNames) {
			return fmt.Errorf("c45: instance %d has %d attributes, want %d", i, len(inst.Attrs), len(d.AttrNames))
		}
		if inst.Class < 0 || inst.Class >= d.NumClasses {
			return fmt.Errorf("c45: instance %d has class %d, want [0,%d)", i, inst.Class, d.NumClasses)
		}
		for a, v := range inst.Attrs {
			if v < 0 || v >= d.AttrCard[a] {
				return fmt.Errorf("c45: instance %d attribute %d value %d out of range [0,%d)", i, a, v, d.AttrCard[a])
			}
		}
	}
	return nil
}

// Node is a decision-tree node: either a leaf (Children nil) or a
// multiway split on Attr with one child per attribute value.
type Node struct {
	// Attr is the split attribute; -1 for leaves.
	Attr int
	// Children has AttrCard[Attr] entries for split nodes.
	Children []*Node
	// ClassCounts is the class distribution reaching the node.
	ClassCounts []int
	// MajorityClass is the locally most frequent class (ties to the
	// lower index).
	MajorityClass int
	// Unexpanded marks a placeholder leaf of a partial tree
	// (BuildPartial): usable for prediction but not eligible for rule
	// extraction, since its subset was never developed.
	Unexpanded bool
}

// Leaf reports whether the node is a leaf.
func (n *Node) Leaf() bool { return n.Attr < 0 }

// Total returns the number of training instances at the node.
func (n *Node) Total() int {
	t := 0
	for _, c := range n.ClassCounts {
		t += c
	}
	return t
}

// Errors returns the training misclassifications at the node if it
// predicted its majority class.
func (n *Node) Errors() int { return n.Total() - n.ClassCounts[n.MajorityClass] }

// Options configures induction.
type Options struct {
	// MinInstances is the minimum instances required to keep a split
	// (default 2, WEKA's -M).
	MinInstances int
	// Confidence is the pessimistic-pruning confidence factor
	// (default 0.25, WEKA's -C). Set to 1 to disable pruning.
	Confidence float64
}

func (o Options) withDefaults() Options {
	if o.MinInstances <= 0 {
		o.MinInstances = 2
	}
	if o.Confidence <= 0 {
		o.Confidence = 0.25
	}
	return o
}

// Tree is a trained C4.5 tree.
type Tree struct {
	Root *Node
	ds   *Dataset
	opts Options
}

// Build induces a pruned C4.5 tree over the instances (a subset of the
// dataset referenced by index; pass nil to use all instances).
func Build(ds *Dataset, indices []int, opts Options) (*Tree, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if len(ds.Instances) == 0 {
		return nil, errNoInstances
	}
	opts = opts.withDefaults()
	if indices == nil {
		indices = make([]int, len(ds.Instances))
		for i := range indices {
			indices[i] = i
		}
	}
	if len(indices) == 0 {
		return nil, errEmptyIndexSet
	}
	t := &Tree{ds: ds, opts: opts}
	avail := make([]bool, len(ds.AttrNames))
	for i := range avail {
		avail[i] = true
	}
	t.Root = t.grow(indices, avail)
	if opts.Confidence < 1 {
		t.prune(t.Root)
	}
	return t, nil
}

// classCounts tallies classes over an index subset.
func (t *Tree) classCounts(indices []int) []int {
	counts := make([]int, t.ds.NumClasses)
	for _, i := range indices {
		counts[t.ds.Instances[i].Class]++
	}
	return counts
}

func majority(counts []int) int {
	best, bestC := 0, counts[0]
	for c, n := range counts[1:] {
		if n > bestC {
			best, bestC = c+1, n
		}
	}
	return best
}

// entropy of a count distribution.
func entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	e := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		e -= p * math.Log2(p)
	}
	return e
}

// grow recursively builds the unpruned tree.
func (t *Tree) grow(indices []int, avail []bool) *Node {
	counts := t.classCounts(indices)
	n := &Node{Attr: -1, ClassCounts: counts, MajorityClass: majority(counts)}
	if n.Errors() == 0 {
		return n
	}
	attr, children := t.bestSplit(indices, avail)
	if attr < 0 {
		return n
	}
	n.Attr = attr
	n.Children = make([]*Node, t.ds.AttrCard[attr])
	childAvail := append([]bool(nil), avail...)
	childAvail[attr] = false
	for v, sub := range children {
		if len(sub) == 0 {
			// Empty branch: leaf predicting the parent majority.
			n.Children[v] = &Node{Attr: -1, ClassCounts: make([]int, t.ds.NumClasses), MajorityClass: n.MajorityClass}
			continue
		}
		n.Children[v] = t.grow(sub, childAvail)
	}
	return n
}

// bestSplit selects the available attribute with the best gain ratio
// among those with above-average information gain (Quinlan's heuristic),
// requiring at least two branches with MinInstances instances.
func (t *Tree) bestSplit(indices []int, avail []bool) (int, [][]int) {
	parentEntropy := entropy(t.classCounts(indices))
	total := float64(len(indices))
	type candidate struct {
		attr     int
		gain     float64
		ratio    float64
		children [][]int
	}
	var cands []candidate
	for a := range t.ds.AttrNames {
		if !avail[a] {
			continue
		}
		children := make([][]int, t.ds.AttrCard[a])
		for _, i := range indices {
			v := t.ds.Instances[i].Attrs[a]
			children[v] = append(children[v], i)
		}
		// Require a useful split.
		nonEmpty, bigEnough := 0, 0
		for _, sub := range children {
			if len(sub) > 0 {
				nonEmpty++
			}
			if len(sub) >= t.opts.MinInstances {
				bigEnough++
			}
		}
		if nonEmpty < 2 || bigEnough < 2 {
			continue
		}
		gain := parentEntropy
		splitInfo := 0.0
		for _, sub := range children {
			if len(sub) == 0 {
				continue
			}
			w := float64(len(sub)) / total
			gain -= w * entropy(t.classCounts(sub))
			splitInfo -= w * math.Log2(w)
		}
		if gain <= 1e-12 || splitInfo <= 1e-12 {
			continue
		}
		cands = append(cands, candidate{a, gain, gain / splitInfo, children})
	}
	if len(cands) == 0 {
		return -1, nil
	}
	avgGain := 0.0
	for _, c := range cands {
		avgGain += c.gain
	}
	avgGain /= float64(len(cands))
	best := -1
	for i, c := range cands {
		if c.gain+1e-12 < avgGain {
			continue
		}
		if best < 0 || c.ratio > cands[best].ratio {
			best = i
		}
	}
	if best < 0 {
		best = 0
	}
	return cands[best].attr, cands[best].children
}

// prune applies pessimistic-error subtree replacement bottom-up: a
// subtree is replaced by a leaf when the leaf's estimated error is no
// worse than the subtree's.
func (t *Tree) prune(n *Node) {
	if n.Leaf() {
		return
	}
	for _, c := range n.Children {
		t.prune(c)
	}
	subtreeErr := 0.0
	for _, c := range n.Children {
		subtreeErr += t.estimatedErrors(c)
	}
	leafErr := pessimisticErrors(n.Total(), n.Errors(), t.opts.Confidence)
	if leafErr <= subtreeErr+1e-9 {
		n.Attr = -1
		n.Children = nil
	}
}

// estimatedErrors sums the pessimistic error estimate over a subtree's
// leaves.
func (t *Tree) estimatedErrors(n *Node) float64 {
	if n.Leaf() {
		return pessimisticErrors(n.Total(), n.Errors(), t.opts.Confidence)
	}
	sum := 0.0
	for _, c := range n.Children {
		sum += t.estimatedErrors(c)
	}
	return sum
}

// pessimisticErrors is C4.5's upper confidence bound on the error count
// of a leaf covering n instances with e misclassified, using the normal
// approximation to the binomial at confidence cf.
func pessimisticErrors(n, e int, cf float64) float64 {
	if n == 0 {
		return 0
	}
	z := normQuantile(1 - cf)
	f := float64(e) / float64(n)
	nf := float64(n)
	ucb := (f + z*z/(2*nf) + z*math.Sqrt(f/nf-f*f/nf+z*z/(4*nf*nf))) / (1 + z*z/nf)
	return ucb * nf
}

// normQuantile approximates the standard normal quantile (Acklam's
// rational approximation, ample precision for pruning).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail regions.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Predict classifies an attribute vector.
func (t *Tree) Predict(attrs []int) int {
	n := t.Root
	for !n.Leaf() {
		v := attrs[n.Attr]
		if v < 0 || v >= len(n.Children) {
			return n.MajorityClass
		}
		n = n.Children[v]
	}
	return n.MajorityClass
}

// Leaves returns every leaf with its path of (attribute, value)
// conditions from the root.
type LeafInfo struct {
	Node *Node
	// Conditions is the path: pairs of attribute index and required
	// value.
	Conditions []Condition
}

// Condition is one attr==value test.
type Condition struct {
	Attr, Value int
}

// Leaves enumerates the tree's leaves left-to-right.
func (t *Tree) Leaves() []LeafInfo {
	var out []LeafInfo
	var path []Condition
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf() {
			out = append(out, LeafInfo{Node: n, Conditions: append([]Condition(nil), path...)})
			return
		}
		for v, c := range n.Children {
			path = append(path, Condition{Attr: n.Attr, Value: v})
			walk(c)
			path = path[:len(path)-1]
		}
	}
	walk(t.Root)
	return out
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int {
	var count func(n *Node) int
	count = func(n *Node) int {
		if n.Leaf() {
			return 1
		}
		s := 1
		for _, c := range n.Children {
			s += count(c)
		}
		return s
	}
	return count(t.Root)
}
