package detfloat_test

import (
	"testing"

	"cdt/tools/analysistest"
	"cdt/tools/analyzers/detfloat"
)

func TestDetFloat(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detfloat.Analyzer, "det")
}
