package iforest

import (
	"math"
	"math/rand"
	"testing"
)

// cluster generates n points around a center with the given spread.
func cluster(rng *rand.Rand, n int, center []float64, spread float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, len(center))
		for d := range p {
			p[d] = center[d] + rng.NormFloat64()*spread
		}
		out[i] = p
	}
	return out
}

func TestOutlierScoresHigherThanInliers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points := cluster(rng, 300, []float64{0, 0}, 0.1)
	outlier := []float64{5, 5}
	points = append(points, outlier)
	f, err := Fit(points, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	outScore, err := f.Score(outlier)
	if err != nil {
		t.Fatal(err)
	}
	inScore, err := f.Score([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if outScore <= inScore {
		t.Errorf("outlier score %v <= inlier score %v", outScore, inScore)
	}
	if outScore < 0.6 {
		t.Errorf("outlier score %v unexpectedly low", outScore)
	}
}

func TestScoresInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points := cluster(rng, 200, []float64{1, 2, 3}, 0.5)
	f, err := Fit(points, Options{Seed: 2, Trees: 50})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := f.ScoreAll(points)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if s <= 0 || s > 1 {
			t.Fatalf("score[%d] = %v out of (0,1]", i, s)
		}
	}
}

func TestFitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := cluster(rng, 100, []float64{0}, 1)
	f1, err := Fit(points, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fit(points, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points[:10] {
		s1, _ := f1.Score(p)
		s2, _ := f2.Score(p)
		if s1 != s2 {
			t.Fatal("same seed, different scores")
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Fit([][]float64{{}}, Options{}); err == nil {
		t.Error("zero-width vectors accepted")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, Options{}); err == nil {
		t.Error("ragged vectors accepted")
	}
}

func TestScoreDimensionMismatch(t *testing.T) {
	f, err := Fit([][]float64{{1, 2}, {3, 4}, {5, 6}}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Score([]float64{1}); err == nil {
		t.Error("wrong-width point accepted")
	}
	if _, err := f.ScoreAll([][]float64{{1}}); err == nil {
		t.Error("ScoreAll wrong-width point accepted")
	}
}

func TestConstantDataUniformScores(t *testing.T) {
	points := make([][]float64, 50)
	for i := range points {
		points[i] = []float64{1, 1}
	}
	f, err := Fit(points, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := f.Score(points[0])
	s1, _ := f.Score(points[1])
	if s0 != s1 {
		t.Error("identical points scored differently")
	}
}

func TestAvgPathLength(t *testing.T) {
	if avgPathLength(0) != 0 || avgPathLength(1) != 0 {
		t.Error("c(0), c(1) should be 0")
	}
	// c(2) = 2·H(1) − 2·1/2 = 2·(ln 1 + γ) − 1 ≈ 0.1544.
	if got := avgPathLength(2); math.Abs(got-(2*0.5772156649015329-1)) > 1e-9 {
		t.Errorf("c(2) = %v", got)
	}
	// c(n) grows with n.
	if avgPathLength(256) <= avgPathLength(64) {
		t.Error("c not increasing")
	}
}

func TestSampleSizeClamped(t *testing.T) {
	points := [][]float64{{1}, {2}, {3}}
	if _, err := Fit(points, Options{Seed: 1, SampleSize: 1000}); err != nil {
		t.Fatalf("oversized sample rejected: %v", err)
	}
}

// The contamination detection property: the top-scored fraction should
// recover planted outliers.
func TestTopScoresRecoverPlantedOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points := cluster(rng, 490, []float64{0, 0}, 0.2)
	outliers := cluster(rng, 10, []float64{4, -4}, 0.1)
	all := append(points, outliers...)
	f, err := Fit(all, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := f.ScoreAll(all)
	if err != nil {
		t.Fatal(err)
	}
	// Count how many of the top-10 scores are planted outliers.
	type idxScore struct {
		idx int
		s   float64
	}
	top := make([]idxScore, len(scores))
	for i, s := range scores {
		top[i] = idxScore{i, s}
	}
	for i := 0; i < 10; i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].s > top[i].s {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	hits := 0
	for i := 0; i < 10; i++ {
		if top[i].idx >= 490 {
			hits++
		}
	}
	if hits < 8 {
		t.Errorf("only %d/10 planted outliers in top-10 scores", hits)
	}
}
