// Package det exercises detfloat: map-order-dependent accumulation,
// wall-clock reads, and global math/rand in deterministic code.
package det

import (
	"math/rand"
	"sort"
	"time"
)

// wallClock reads the wall clock.
func wallClock() int64 {
	return time.Now().Unix() // want `time.Now in the training hot path`
}

// globalRand draws from the shared global source.
func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand.Shuffle draws from a shared unseeded source`
	return rand.Intn(10)               // want `global math/rand.Intn draws from a shared unseeded source`
}

// seededRand is the sanctioned deterministic form.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// floatAccum sums map values in iteration order.
func floatAccum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation across map iteration is order-dependent`
	}
	return total
}

// sortedKeys is the deterministic rewrite: collect keys, sort, then
// accumulate in key order. The append is dominated by the sort.
func sortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// unsortedCandidates collects candidates in map order and never
// restores determinism.
func unsortedCandidates(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `append to out under map iteration collects in map order`
	}
	return out
}

// localAccum accumulates into a variable scoped inside the loop body:
// each iteration starts fresh, so order cannot matter.
func localAccum(m map[string][]float64) {
	for _, vs := range m {
		var rowSum float64
		for _, v := range vs {
			rowSum += v
		}
		_ = rowSum
	}
}

// sliceAccum iterates a slice, which has a fixed order.
func sliceAccum(vs []float64) float64 {
	var total float64
	for _, v := range vs {
		total += v
	}
	return total
}

// looseSelection breaks extremum ties by whatever key the map yields
// last — the LRU-eviction bug class.
func looseSelection(m map[string]uint64) string {
	var victim string
	best := ^uint64(0)
	for k, u := range m {
		if u <= best { // non-strict: ties depend on iteration order
			best, victim = u, k // want `extremum selection over a map with a non-strict comparison`
		}
	}
	return victim
}

// strictSelection ties deterministically on the key itself.
func strictSelection(m map[string]uint64) string {
	var victim string
	best := ^uint64(0)
	for k, u := range m {
		if u < best || (u == best && k < victim) {
			best, victim = u, k
		}
	}
	return victim
}
