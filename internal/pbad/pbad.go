// Package pbad reimplements the Pattern-Based Anomaly Detection baseline
// (Feremans, Vercruyssen, Cule, Meert & Goethals 2019) the paper compares
// against in §4.2. The pipeline mirrors the published method:
//
//  1. cut the series into fixed windows (the paper's evaluation uses
//     length 12, step 6);
//  2. discretize each window's values into equal-width bins, giving an
//     itemset (distinct bins present) and a sequence (bin per position);
//  3. mine closed frequent itemsets and closed sequential patterns from
//     the windows;
//  4. embed each window by its weighted occurrence of every pattern
//     (exact containment = 1, otherwise the relative overlap);
//  5. score the embeddings with an isolation forest — high score = anomaly.
package pbad

import (
	"fmt"
	"sort"

	"cdt/internal/iforest"
	"cdt/internal/mining"
)

// Options configures the detector. The zero value reproduces the paper's
// recommended settings.
type Options struct {
	// WindowLen and Step cut the series (defaults 12 and 6, §4.2).
	WindowLen, Step int
	// Bins is the number of equal-width value bins over [0,1]
	// (default 10).
	Bins int
	// MinSupportRatio is the relative minimum support for pattern mining
	// (default 0.01).
	MinSupportRatio float64
	// MaxPatternLen caps mined pattern length (default 4).
	MaxPatternLen int
	// MaxPatterns caps how many patterns (of each kind) feed the
	// embedding, keeping the feature space tractable; the most frequent
	// are kept (default 50).
	MaxPatterns int
	// DisableSmoothed drops the moving-average channel. The published
	// PBAD mines patterns over both the raw series and a smoothed copy;
	// both channels are on by default.
	DisableSmoothed bool
	// SmoothWidth is the (odd) moving-average width of the smoothed
	// channel (default 5).
	SmoothWidth int
	// Forest configures the isolation-forest scorer.
	Forest iforest.Options
}

func (o Options) withDefaults() Options {
	if o.WindowLen <= 0 {
		o.WindowLen = 12
	}
	if o.Step <= 0 {
		o.Step = 6
	}
	if o.Bins <= 0 {
		o.Bins = 10
	}
	if o.MinSupportRatio <= 0 {
		o.MinSupportRatio = 0.01
	}
	if o.MaxPatternLen <= 0 {
		o.MaxPatternLen = 4
	}
	if o.MaxPatterns <= 0 {
		o.MaxPatterns = 50
	}
	if o.SmoothWidth <= 0 || o.SmoothWidth%2 == 0 {
		o.SmoothWidth = 5
	}
	return o
}

// Window is one scored window of the input series.
type Window struct {
	// Start is the index of the window's first point in the series.
	Start int
	// Len is the window length (the last window may be shorter).
	Len int
	// Score is the isolation-forest anomaly score; higher = more
	// anomalous.
	Score float64
}

// Detect runs the full PBAD pipeline on a normalized series and returns
// one scored window per stride. Values are expected in [0,1] (the shared
// preprocessing of §4.2); out-of-range values clamp to the edge bins.
func Detect(values []float64, opts Options) ([]Window, error) {
	opts = opts.withDefaults()
	if len(values) < opts.WindowLen {
		return nil, fmt.Errorf("pbad: series of %d points shorter than window %d", len(values), opts.WindowLen)
	}

	// Step 1+2: windows → bin sequences, over the raw channel and (per
	// the published PBAD) a moving-average-smoothed channel.
	channels := [][]float64{values}
	if !opts.DisableSmoothed {
		channels = append(channels, movingAverage(values, opts.SmoothWidth))
	}
	var windows []Window
	chanSeqs := make([][][]int, len(channels))
	for start := 0; start+opts.WindowLen <= len(values); start += opts.Step {
		end := start + opts.WindowLen
		windows = append(windows, Window{Start: start, Len: opts.WindowLen})
		for ci, ch := range channels {
			seq := make([]int, 0, opts.WindowLen)
			for _, v := range ch[start:end] {
				seq = append(seq, bin(v, opts.Bins))
			}
			chanSeqs[ci] = append(chanSeqs[ci], seq)
		}
	}
	seqs := chanSeqs[0]

	minSup := int(opts.MinSupportRatio * float64(len(seqs)))
	if minSup < 2 {
		minSup = 2
	}

	// Steps 3+4: per channel, mine patterns and extend each window's
	// weighted-occurrence embedding.
	embeddings := make([][]float64, len(seqs))
	anyPatterns := false
	for _, channel := range chanSeqs {
		itemsets, err := mining.MineClosedItemsets(channel, minSup, opts.MaxPatternLen)
		if err != nil {
			return nil, fmt.Errorf("pbad: itemset mining: %w", err)
		}
		sequences, err := mining.MineClosedSequences(channel, minSup, opts.MaxPatternLen)
		if err != nil {
			return nil, fmt.Errorf("pbad: sequence mining: %w", err)
		}
		itemsets = topItemsets(itemsets, opts.MaxPatterns)
		sequences = topSequences(sequences, opts.MaxPatterns)
		if len(itemsets)+len(sequences) > 0 {
			anyPatterns = true
		}
		for i, seq := range channel {
			set := toItemset(seq)
			for _, p := range itemsets {
				embeddings[i] = append(embeddings[i], itemsetSimilarity(p.Items, set))
			}
			for _, p := range sequences {
				embeddings[i] = append(embeddings[i], sequenceSimilarity(p.Seq, seq))
			}
		}
	}
	if !anyPatterns {
		// No structure to embed with: every window is equally
		// unsuspicious.
		return windows, nil
	}

	// Step 5: isolation forest over embeddings.
	forest, err := iforest.Fit(embeddings, opts.Forest)
	if err != nil {
		return nil, fmt.Errorf("pbad: isolation forest: %w", err)
	}
	scores, err := forest.ScoreAll(embeddings)
	if err != nil {
		return nil, fmt.Errorf("pbad: scoring: %w", err)
	}
	for i := range windows {
		windows[i].Score = scores[i]
	}
	return windows, nil
}

// movingAverage returns a centered moving average of odd width.
func movingAverage(values []float64, width int) []float64 {
	half := width / 2
	out := make([]float64, len(values))
	for i := range values {
		lo, hi := i-half, i+half+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(values) {
			hi = len(values)
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// bin maps a value in [0,1] to one of n equal-width bins, clamping
// out-of-range values.
func bin(v float64, n int) int {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return n - 1
	}
	return int(v * float64(n))
}

// toItemset converts a bin sequence to its sorted distinct-items form.
func toItemset(seq []int) mining.Itemset {
	seen := make(map[int]struct{}, len(seq))
	var out mining.Itemset
	for _, v := range seq {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// itemsetSimilarity is PBAD's weighted occurrence for itemsets: exact
// containment scores 1, otherwise the fraction of the pattern's items
// present.
func itemsetSimilarity(p, window mining.Itemset) float64 {
	if len(p) == 0 {
		return 0
	}
	match := 0
	i := 0
	for _, v := range p {
		for i < len(window) && window[i] < v {
			i++
		}
		if i < len(window) && window[i] == v {
			match++
		}
	}
	return float64(match) / float64(len(p))
}

// sequenceSimilarity is the weighted occurrence for sequential patterns:
// exact subsequence containment scores 1, otherwise the relative longest
// common subsequence.
func sequenceSimilarity(p, window []int) float64 {
	if len(p) == 0 {
		return 0
	}
	if mining.ContainsSequence(p, window) {
		return 1
	}
	return float64(mining.LongestCommonSubsequence(p, window)) / float64(len(p))
}

// topItemsets keeps the n most frequent itemsets (stable on the miner's
// deterministic order).
func topItemsets(in []mining.FrequentItemset, n int) []mining.FrequentItemset {
	if len(in) <= n {
		return in
	}
	out := append([]mining.FrequentItemset(nil), in...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Support > out[j].Support })
	return out[:n]
}

// topSequences keeps the n most frequent sequential patterns.
func topSequences(in []mining.FrequentSequence, n int) []mining.FrequentSequence {
	if len(in) <= n {
		return in
	}
	out := append([]mining.FrequentSequence(nil), in...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Support > out[j].Support })
	return out[:n]
}
