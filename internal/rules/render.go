package rules

import (
	"fmt"
	"strings"

	"cdt/internal/core"
	"cdt/internal/pattern"
)

// representative returns a plotting magnitude for an interval code: the
// midpoint of the k-th sub-interval of ]0,1] (or its negative), and 0 for
// the Z interval.
func representative(iv pattern.Interval, delta int) float64 {
	if iv == 0 {
		return 0
	}
	k := float64(iv)
	if iv < 0 {
		k = -k
	}
	v := (k - 0.5) / float64(delta)
	if iv < 0 {
		return -v
	}
	return v
}

// ShapePoints reconstructs a representative value path for a composition:
// len(c)+2 points whose successive differences realize each label's α and
// β magnitudes. Consecutive labels overlap in real series; the
// reconstruction honours the first label's α and every label's β, which
// is exact for labelings produced from actual data and a faithful sketch
// otherwise.
func ShapePoints(c core.Composition, cfg pattern.Config) []float64 {
	if len(c.Labels) == 0 {
		return nil
	}
	pts := make([]float64, 0, len(c.Labels)+2)
	pts = append(pts, 0)
	pts = append(pts, representative(c.Labels[0].Alpha, cfg.Delta))
	for _, l := range c.Labels {
		last := pts[len(pts)-1]
		pts = append(pts, last-representative(l.Beta, cfg.Delta))
	}
	return pts
}

// Sketch draws a composition as a small ASCII chart (height rows), the
// textual analogue of Table 5's pattern visualizations. Each point is an
// asterisk placed by value; columns are separated for readability.
func Sketch(c core.Composition, cfg pattern.Config, height int) string {
	pts := ShapePoints(c, cfg)
	if len(pts) == 0 {
		return "(empty)"
	}
	if height < 2 {
		height = 5
	}
	min, max := pts[0], pts[0]
	for _, p := range pts[1:] {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	span := max - min
	grid := make([][]byte, height)
	width := len(pts)*3 - 2
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(v float64) int {
		if span == 0 {
			return height / 2
		}
		r := int((max - v) / span * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for i, p := range pts {
		col := i * 3
		grid[rowOf(p)][col] = '*'
		// Connect to the next point with a slope glyph at the midpoint.
		if i+1 < len(pts) {
			next := pts[i+1]
			mid := (p + next) / 2
			glyph := byte('-')
			if next > p {
				glyph = '/'
			} else if next < p {
				glyph = '\\'
			}
			grid[rowOf(mid)][col+1] = glyph
			grid[rowOf(mid)][col+2] = glyph
		}
	}
	lines := make([]string, height)
	for r := range grid {
		lines[r] = strings.TrimRight(string(grid[r]), " ")
	}
	return strings.Join(lines, "\n")
}

// Explain renders a full rule with one sketch per positive composition —
// the presentation Table 5 gives to domain experts. Negative literals are
// listed textually (their shapes describe what must be absent).
func Explain(r Rule, cfg pattern.Config) string {
	if len(r.Predicates) == 0 {
		return "(no anomaly rules)\n"
	}
	var b strings.Builder
	for i, p := range r.Predicates {
		fmt.Fprintf(&b, "Rule R%d: IF %s THEN anomaly\n", i+1, p.Format(cfg))
		for _, c := range p.PositiveCompositions() {
			fmt.Fprintf(&b, "  shape of %s:\n", c.Format(cfg))
			for _, line := range strings.Split(Sketch(c, cfg, 5), "\n") {
				b.WriteString("    ")
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
		if i < len(r.Predicates)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Describe gives a one-line natural-language reading of a composition
// using the variation semantics of Table 1 (e.g. "negative peak then
// start of constant segment"), the phrasing experts used in §4.3.
func Describe(c core.Composition) string {
	names := map[pattern.Variation]string{
		pattern.PP:  "positive peak",
		pattern.PN:  "negative peak",
		pattern.SCP: "rise into constant segment",
		pattern.SCN: "fall into constant segment",
		pattern.ECP: "constant segment ending with rise",
		pattern.ECN: "constant segment ending with fall",
		pattern.CST: "constant segment",
		pattern.VP:  "steady rise",
		pattern.VN:  "steady fall",
	}
	parts := make([]string, len(c.Labels))
	for i, l := range c.Labels {
		parts[i] = names[l.Var]
	}
	return strings.Join(parts, ", then ")
}
