package locksafe_test

import (
	"testing"

	"cdt/tools/analysistest"
	"cdt/tools/analyzers/locksafe"
)

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), locksafe.Analyzer, "locks")
}
