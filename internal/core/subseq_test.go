package core

import (
	"math/rand"
	"testing"

	"cdt/internal/pattern"
)

// The latest-start NFA must agree with per-window matchSubsequence over
// a sliding sequence, including patterns longer than the window.
func TestSubseqNFALatestStartMatchesMatchedBy(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	alphabet := cfg2.Alphabet()
	seq := make([]pattern.Label, 90)
	for j := range seq {
		seq[j] = alphabet[rng.Intn(5)]
	}
	var pats [][]pattern.Label
	pats = append(pats, nil) // empty pattern matches every window
	for n := 1; n <= 7; n++ {
		p := make([]pattern.Label, n)
		for j := range p {
			p[j] = alphabet[rng.Intn(5)]
		}
		pats = append(pats, p)
	}
	pats = append(pats, seq[10:14]) // a pattern known to occur
	for _, omega := range []int{1, 3, 5} {
		nfa := NewSubseqNFA(pats)
		for i, l := range seq {
			nfa.Step(l)
			if i+1 < omega {
				continue
			}
			ws := i + 1 - omega
			window := seq[ws : i+1]
			for p := range pats {
				got := nfa.LatestStart(p) >= ws
				want := Composition{Labels: pats[p]}.MatchedBy(window, MatchSubsequence)
				if got != want {
					t.Fatalf("omega=%d window[%d:%d] pattern %d: nfa %v, MatchedBy %v",
						omega, ws, i+1, p, got, want)
				}
			}
		}
	}
}

// Stale chains from before a run boundary must never fire a window of a
// later, unrelated run: the NFA is global and never reset, so this is
// the property every engine consumer leans on.
func TestSubseqNFASurvivesRunBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := cfg2.Alphabet()
	const omega = 4
	pats := [][]pattern.Label{
		{alphabet[0], alphabet[1]},
		{alphabet[1], alphabet[0], alphabet[2]},
	}
	nfa := NewSubseqNFA(pats)
	for run := 0; run < 30; run++ {
		n := omega + rng.Intn(6)
		seq := make([]pattern.Label, n)
		for j := range seq {
			seq[j] = alphabet[rng.Intn(4)]
		}
		for i, l := range seq {
			nfa.Step(l)
			if i+1 < omega {
				continue
			}
			ws := nfa.Pos() - omega
			window := seq[i+1-omega : i+1]
			for p := range pats {
				got := nfa.LatestStart(p) >= ws
				want := Composition{Labels: pats[p]}.MatchedBy(window, MatchSubsequence)
				if got != want {
					t.Fatalf("run %d window ending at %d pattern %d: nfa %v, MatchedBy %v",
						run, i, p, got, want)
				}
			}
		}
	}
}

// The NFA-based subsequence support counting must agree exactly with
// direct per-candidate matching, over pure sliding input and mixed
// (run + isolated copies) input alike.
func TestSubsequenceSupportCountingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	alphabet := cfg2.Alphabet()
	seq := make([]pattern.Label, 110)
	for j := range seq {
		seq[j] = alphabet[rng.Intn(6)]
	}
	anoms := make([]bool, len(seq)+2)
	for j := range anoms {
		if rng.Intn(8) == 0 {
			anoms[j] = true
		}
	}
	for _, omega := range []int{2, 5, 9} {
		sliding, err := Windows(seq, anoms, omega)
		if err != nil {
			t.Fatal(err)
		}
		mixed := append([]Observation(nil), sliding[:35]...)
		for i := 35; i < 45; i++ {
			mixed = append(mixed, Observation{
				Labels: append([]pattern.Label(nil), sliding[i].Labels...),
				Class:  sliding[i].Class,
			})
		}
		mixed = append(mixed, sliding[45:]...)
		for _, obs := range [][]Observation{sliding, mixed} {
			for _, maxLen := range []int{0, 1, 3} {
				candidates := enumerateCompositions(obs, maxLen)
				if len(candidates) == 0 {
					t.Fatal("no candidates")
				}
				for _, par := range []int{1, 4} {
					opts := Options{MaxCompositionLen: maxLen, Match: MatchSubsequence, Parallelism: par}
					fast := countSubsequenceSupports(obs, candidates, opts)
					slow := countSupportsNaive(obs, candidates, opts)
					for i := range candidates {
						if fast[i] != slow[i] {
							t.Fatalf("omega=%d maxLen=%d par=%d candidate %v: fast %+v, slow %+v",
								omega, maxLen, par, candidates[i], fast[i], slow[i])
						}
					}
				}
			}
		}
	}
}
